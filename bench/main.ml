(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table II, Figures 10-13), runs the ablation benches from
   DESIGN.md, and measures real wall-clock of one representative cell per
   table/figure with Bechamel.

   Usage: dune exec bench/main.exe            (full run, ~10 minutes)
          BENCH_QUICK=1 dune exec bench/main.exe   (reduced sizes) *)

open Spdistal_workloads
open Spdistal_experiments

let quick =
  match Sys.getenv_opt "BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure, timing   *)
(* the real execution of one representative cell.                      *)
(* ------------------------------------------------------------------ *)

let bench_tests () =
  let open Bechamel in
  let matrix =
    lazy
      (Synth.power_law ~name:"bench-matrix" ~rows:4_000 ~cols:4_000 ~nnz:80_000
         ~alpha:1.0 ~seed:99)
  in
  let tensor =
    lazy
      (Synth.tensor3_uniform ~name:"bench-tensor" ~dims:[| 500; 400; 200 |]
         ~nnz:40_000 ~seed:98)
  in
  let banded = lazy (Synth.banded ~name:"bench-banded" ~n:20_000 ~band:14) in
  let cell kernel machine b () =
    ignore (Runner.run ~kernel ~system:Runner.Spdistal ~machine b)
  in
  [
    (* Table II: dataset analog construction. *)
    Test.make ~name:"table2/dataset-construction"
      (Staged.stage (fun () ->
           ignore
             (Synth.power_law ~name:"t2" ~rows:2_000 ~cols:2_000 ~nnz:30_000
                ~alpha:1.0 ~seed:1)));
    (* Fig. 10: one CPU strong-scaling cell (SpMV, 4 nodes). *)
    Test.make ~name:"fig10/spmv-cpu-4nodes"
      (Staged.stage (cell Runner.Spmv (Runner.cpu_machine ~nodes:4) (Lazy.force matrix)));
    (* Fig. 11: one GPU heatmap cell (SpMM, 4 GPUs). *)
    Test.make ~name:"fig11/spmm-gpu-4gpus"
      (Staged.stage (cell Runner.Spmm (Runner.gpu_machine ~gpus:4) (Lazy.force matrix)));
    (* Fig. 12: one GPU-vs-CPU cell (SpTTV, 4 GPUs). *)
    Test.make ~name:"fig12/spttv-gpu-4gpus"
      (Staged.stage (cell Runner.Spttv (Runner.gpu_machine ~gpus:4) (Lazy.force tensor)));
    (* Fig. 13: one weak-scaling step (banded SpMV, 8 nodes). *)
    Test.make ~name:"fig13/spmv-weak-8nodes"
      (Staged.stage (cell Runner.Spmv (Runner.cpu_machine ~nodes:8) (Lazy.force banded)));
  ]

let run_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let tests = bench_tests () in
  print_endline
    "=== Bechamel wall-clock micro-benchmarks (one per table/figure) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-36s %12.3f us/run\n%!" name (t /. 1e3)
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        results)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Domain-pool scaling: wall-clock of the six fig10 kernels with        *)
(* sequential vs parallel piece simulation.  Simulated times are        *)
(* bit-identical at every degree (the interpreter reduces piece records *)
(* in piece order); only wall-clock may differ.  Speedup requires       *)
(* cores: on a single-core host the pool degrades to ~1x.               *)
(* ------------------------------------------------------------------ *)

let run_domain_scaling () =
  let requested =
    let d = Spdistal_runtime.Machine.sim_domains () in
    if d > 1 then d else 4
  in
  let matrix =
    Synth.power_law ~name:"scale-matrix" ~rows:8_000 ~cols:8_000 ~nnz:240_000
      ~alpha:1.0 ~seed:97
  in
  let tensor =
    Synth.tensor3_uniform ~name:"scale-tensor" ~dims:[| 800; 600; 300 |]
      ~nnz:120_000 ~seed:96
  in
  let machine = Runner.cpu_machine ~nodes:16 in
  let kernels =
    [
      (Runner.Spmv, matrix); (Runner.Spmm, matrix); (Runner.Spadd3, matrix);
      (Runner.Sddmm, matrix); (Runner.Spttv, tensor); (Runner.Mttkrp, tensor);
    ]
  in
  let time_all domains =
    Spdistal_runtime.Machine.set_sim_domains domains;
    let t0 = Unix.gettimeofday () in
    let sims =
      List.map
        (fun (k, b) ->
          let r = Runner.run ~kernel:k ~system:Runner.Spdistal ~machine b in
          r.Spdistal_baselines.Common.time)
        kernels
    in
    (Unix.gettimeofday () -. t0, sims)
  in
  print_endline "=== Domain-pool scaling (fig10 kernels, 16-node machine) ===";
  ignore (time_all 1);
  (* warm expansion caches so both timed passes see the same state *)
  let seq, sims_seq = time_all 1 in
  let par, sims_par = time_all requested in
  Spdistal_runtime.Machine.set_sim_domains 1;
  Printf.printf
    "--domains 1: %.3fs   --domains %d: %.3fs   wall-clock speedup %.2fx \
     (host has %d core(s))\n"
    seq requested par (seq /. par)
    (Domain.recommended_domain_count ());
  if sims_seq = sims_par then
    print_endline "simulated times: bit-identical across degrees (as required)"
  else
    print_endline "WARNING: simulated times diverged across domain degrees!";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure reproductions (simulated time; real numerics).               *)
(* ------------------------------------------------------------------ *)

let section title f =
  let t0 = Unix.gettimeofday () in
  Printf.printf "\n";
  f ();
  Printf.printf "[%s took %.1fs]\n%!" title (Unix.gettimeofday () -. t0)

let () =
  Printf.printf "SpDISTAL reproduction benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  Printf.printf
    "machine model: Lassen scaled %.0fx (see DESIGN.md); datasets: Table II \
     analogs\n\n"
    Datasets.scale;

  run_bechamel ();
  run_domain_scaling ();

  section "table2" (fun () -> Format.printf "%a@." Datasets.pp_table2 ());

  let c10 = ref [] and c11 = ref [] and c12 = ref [] and c13 = ref [] in
  section "fig10" (fun () ->
      let cells = Fig10.compute ~quick () in
      c10 := cells;
      Format.printf "%a@." Fig10.print cells;
      (* Paper-vs-measured summary (medians the paper quotes in §VI-A1). *)
      let paper =
        [
          (Runner.Spmv, Runner.Petsc, 1.8);
          (Runner.Spmv, Runner.Trilinos, 1.2);
          (Runner.Spmv, Runner.Ctf, 299.);
          (Runner.Spmm, Runner.Petsc, 2.01);
          (Runner.Spmm, Runner.Trilinos, 3.8);
          (Runner.Spadd3, Runner.Petsc, 11.8);
          (Runner.Spadd3, Runner.Trilinos, 38.5);
          (Runner.Spadd3, Runner.Ctf, 19.2);
          (Runner.Sddmm, Runner.Ctf, 15.3);
          (Runner.Spttv, Runner.Ctf, 161.);
          (Runner.Mttkrp, Runner.Ctf, 1.03);
        ]
      in
      Format.printf "@.paper-vs-measured medians (SpDISTAL speedup over system):@.";
      List.iter
        (fun (k, s, p) ->
          match Fig10.median_speedup cells ~kernel:k ~vs:s with
          | Some m ->
              Format.printf "  %-9s vs %-9s paper %7.2fx   measured %7.2fx@."
                (Runner.kernel_name k) (Runner.system_name s) p m
          | None -> ())
        paper);

  section "fig11" (fun () ->
      let cells = Fig11.compute ~quick () in
      c11 := cells;
      Format.printf "%a@." Fig11.print cells);

  section "fig12" (fun () ->
      let cells = Fig12.compute ~quick () in
      c12 := cells;
      Format.printf "%a@." Fig12.print cells;
      List.iter
        (fun (k, p) ->
          match Fig12.median_gpu_speedup cells ~kernel:k with
          | Some m ->
              Format.printf "%s: paper median GPU speedup %.1fx, measured %.2fx@."
                (Runner.kernel_name k) p m
          | None -> ())
        [ (Runner.Spttv, 2.0); (Runner.Mttkrp, 2.2) ]);

  section "fig13" (fun () ->
      let points = Fig13.compute ~quick () in
      c13 := points;
      Format.printf "%a@." Fig13.print points);

  section "ablations" (fun () -> Format.printf "%a@." Ablations.run_all ());

  let paths =
    Csv.write_all ~dir:"results" ~fig10:!c10 ~fig11:!c11 ~fig12:!c12 ~fig13:!c13
  in
  Printf.printf "\nCSV series written: %s\n" (String.concat ", " paths);
  print_endline "All tables and figures regenerated. See EXPERIMENTS.md for";
  print_endline "the paper-vs-measured record."
