(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table II, Figures 10-13), runs the ablation benches from
   DESIGN.md, and measures real wall-clock of one representative cell per
   table/figure with Bechamel.

   Usage: dune exec bench/main.exe            (full run, ~10 minutes)
          BENCH_QUICK=1 dune exec bench/main.exe   (reduced sizes) *)

open Spdistal_workloads
open Spdistal_experiments

let quick =
  match Sys.getenv_opt "BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure, timing   *)
(* the real execution of one representative cell.                      *)
(* ------------------------------------------------------------------ *)

let bench_tests () =
  let open Bechamel in
  let matrix =
    lazy
      (Synth.power_law ~name:"bench-matrix" ~rows:4_000 ~cols:4_000 ~nnz:80_000
         ~alpha:1.0 ~seed:99)
  in
  let tensor =
    lazy
      (Synth.tensor3_uniform ~name:"bench-tensor" ~dims:[| 500; 400; 200 |]
         ~nnz:40_000 ~seed:98)
  in
  let banded = lazy (Synth.banded ~name:"bench-banded" ~n:20_000 ~band:14) in
  let cell kernel machine b () =
    ignore (Runner.run ~kernel ~system:Runner.Spdistal ~machine b)
  in
  [
    (* Table II: dataset analog construction. *)
    Test.make ~name:"table2/dataset-construction"
      (Staged.stage (fun () ->
           ignore
             (Synth.power_law ~name:"t2" ~rows:2_000 ~cols:2_000 ~nnz:30_000
                ~alpha:1.0 ~seed:1)));
    (* Fig. 10: one CPU strong-scaling cell (SpMV, 4 nodes). *)
    Test.make ~name:"fig10/spmv-cpu-4nodes"
      (Staged.stage (cell Runner.Spmv (Runner.cpu_machine ~nodes:4) (Lazy.force matrix)));
    (* Fig. 11: one GPU heatmap cell (SpMM, 4 GPUs). *)
    Test.make ~name:"fig11/spmm-gpu-4gpus"
      (Staged.stage (cell Runner.Spmm (Runner.gpu_machine ~gpus:4) (Lazy.force matrix)));
    (* Fig. 12: one GPU-vs-CPU cell (SpTTV, 4 GPUs). *)
    Test.make ~name:"fig12/spttv-gpu-4gpus"
      (Staged.stage (cell Runner.Spttv (Runner.gpu_machine ~gpus:4) (Lazy.force tensor)));
    (* Fig. 13: one weak-scaling step (banded SpMV, 8 nodes). *)
    Test.make ~name:"fig13/spmv-weak-8nodes"
      (Staged.stage (cell Runner.Spmv (Runner.cpu_machine ~nodes:8) (Lazy.force banded)));
  ]

let run_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let tests = bench_tests () in
  print_endline
    "=== Bechamel wall-clock micro-benchmarks (one per table/figure) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-36s %12.3f us/run\n%!" name (t /. 1e3)
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        results)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Domain-pool scaling: wall-clock of the six fig10 kernels with        *)
(* sequential vs parallel piece simulation.  Simulated times are        *)
(* bit-identical at every degree (the interpreter reduces piece records *)
(* in piece order); only wall-clock may differ.  Speedup requires       *)
(* cores: on a single-core host the pool degrades to ~1x.               *)
(* ------------------------------------------------------------------ *)

let run_domain_scaling () =
  let requested =
    let d = Spdistal_runtime.Machine.sim_domains () in
    if d > 1 then d else 4
  in
  let matrix =
    Synth.power_law ~name:"scale-matrix" ~rows:8_000 ~cols:8_000 ~nnz:240_000
      ~alpha:1.0 ~seed:97
  in
  let tensor =
    Synth.tensor3_uniform ~name:"scale-tensor" ~dims:[| 800; 600; 300 |]
      ~nnz:120_000 ~seed:96
  in
  let machine = Runner.cpu_machine ~nodes:16 in
  let kernels =
    [
      (Runner.Spmv, matrix); (Runner.Spmm, matrix); (Runner.Spadd3, matrix);
      (Runner.Sddmm, matrix); (Runner.Spttv, tensor); (Runner.Mttkrp, tensor);
    ]
  in
  let time_all domains =
    Spdistal_runtime.Machine.set_sim_domains domains;
    let t0 = Unix.gettimeofday () in
    let sims =
      List.map
        (fun (k, b) ->
          let r = Runner.run ~kernel:k ~system:Runner.Spdistal ~machine b in
          r.Spdistal_baselines.Common.time)
        kernels
    in
    (Unix.gettimeofday () -. t0, sims)
  in
  print_endline "=== Domain-pool scaling (fig10 kernels, 16-node machine) ===";
  ignore (time_all 1);
  (* warm expansion caches so both timed passes see the same state *)
  let seq, sims_seq = time_all 1 in
  let par, sims_par = time_all requested in
  Spdistal_runtime.Machine.set_sim_domains 1;
  Printf.printf
    "--domains 1: %.3fs   --domains %d: %.3fs   wall-clock speedup %.2fx \
     (host has %d core(s))\n"
    seq requested par (seq /. par)
    (Domain.recommended_domain_count ());
  if sims_seq = sims_par then
    print_endline "simulated times: bit-identical across degrees (as required)"
  else
    print_endline "WARNING: simulated times diverged across domain degrees!";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fault-rate sweep: the six fig10 kernels (8-node CPU) and batched    *)
(* SpMM (2x2 GPU grid) under injected crash/loss/straggler schedules.  *)
(* Recovery is priced into simulated time; outputs must stay bitwise   *)
(* identical to the fault-free run (the Legion re-execution argument). *)
(* ------------------------------------------------------------------ *)

let run_fault_sweep () =
  let open Spdistal_runtime in
  let module K = Core.Kernels in
  let module S = Core.Spdistal in
  let matrix =
    Synth.power_law ~name:"fault-matrix" ~rows:4_000 ~cols:4_000 ~nnz:80_000
      ~alpha:1.0 ~seed:95
  in
  let tensor =
    Synth.tensor3_uniform ~name:"fault-tensor" ~dims:[| 500; 400; 200 |]
      ~nnz:40_000 ~seed:94
  in
  let cpu = Runner.cpu_machine ~nodes:8 in
  let gpu2x2 =
    Spdistal_runtime.Machine.make ~params:cpu.Machine.params ~kind:Machine.Gpu
      [| 2; 2 |]
  in
  let problems =
    [
      ("SpMV", fun () -> K.spmv_problem ~machine:cpu matrix);
      ("SpMM", fun () -> K.spmm_problem ~machine:cpu ~cols:32 matrix);
      ("SpAdd3", fun () -> K.spadd3_problem ~machine:cpu matrix);
      ("SDDMM", fun () -> K.sddmm_problem ~machine:cpu ~cols:32 matrix);
      ("SpTTV", fun () -> K.spttv_problem ~machine:cpu tensor);
      ("SpMTTKRP", fun () -> K.mttkrp_problem ~machine:cpu ~cols:32 tensor);
      ( "SpMM-batched",
        fun () -> K.spmm_problem ~machine:gpu2x2 ~cols:32 ~batched:true matrix );
    ]
  in
  let rates = if quick then [ 0.0; 0.1 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  let seed = 42 in
  (* Output snapshot: every operand's dense/vals payload, bit for bit. *)
  let snapshot p =
    List.map
      (fun (name, _, _) ->
        let bits = Array.map Int64.bits_of_float in
        ( name,
          match
            (Spdistal_exec.Operand.find (S.bindings p) name)
              .Spdistal_exec.Operand.data
          with
          | Spdistal_exec.Operand.Vec v ->
              bits v.Spdistal_formats.Dense.data
          | Spdistal_exec.Operand.Mat m ->
              bits m.Spdistal_formats.Dense.data
          | Spdistal_exec.Operand.Sparse t ->
              bits (Region.F.to_array t.Spdistal_formats.Tensor.vals) ))
      p.S.operands
  in
  print_endline
    "=== Fault-injection sweep (recovery overhead; outputs must stay \
     bit-identical) ===";
  Printf.printf "%-13s %6s %12s %12s %9s %8s %12s %7s %10s\n" "kernel" "rate"
    "seconds" "baseline" "overhead" "retries" "resent_B" "faults" "identical";
  let rows =
    List.concat_map
      (fun (name, make) ->
        let base_p = make () in
        let base = S.run ~faults:Fault.disabled base_p in
        let base_t = Cost.total base.S.cost in
        let base_out = snapshot base_p in
        List.filter_map
          (fun rate ->
            if rate = 0. then None
            else
              let p = make () in
              let cfg = Fault.make ~seed ~rate () in
              let r = S.run ~faults:cfg p in
              let c = r.S.cost in
              let identical = snapshot p = base_out in
              let seconds =
                match r.S.dnc with Some _ -> None | None -> Some (Cost.total c)
              in
              (match seconds with
              | Some t ->
                  Printf.printf
                    "%-13s %6.2f %12.6f %12.6f %8.2f%% %8d %12.3e %7d %10b\n"
                    name rate t base_t
                    (100. *. (t -. base_t) /. base_t)
                    c.Cost.retries c.Cost.resent_bytes c.Cost.faults identical
              | None ->
                  Printf.printf "%-13s %6.2f %12s %12.6f\n" name rate "DNC"
                    base_t);
              Some
                {
                  Csv.f_kernel = name;
                  f_rate = rate;
                  f_seed = seed;
                  f_seconds = seconds;
                  f_baseline = base_t;
                  f_cost = c;
                  f_identical = identical;
                })
          rates)
      problems
  in
  let path = Csv.write_faults ~dir:"results" rows in
  Printf.printf "fault sweep written: %s\n\n" path

(* ------------------------------------------------------------------ *)
(* Iterative-launch amortization: SpMV run for N iterations through    *)
(* the warm-start execution context.  Cached runs pay dependent        *)
(* partitioning once (cold iteration 1) and launch from the cache      *)
(* afterwards; --no-cache rebuilds every iteration; baselines re-pay   *)
(* their full launch each iteration (PETSc re-scatters per MatMult).   *)
(* ------------------------------------------------------------------ *)

let run_amortization () =
  let open Spdistal_runtime in
  let module K = Core.Kernels in
  let module S = Core.Spdistal in
  let matrix =
    Synth.power_law ~name:"amort-matrix" ~rows:4_000 ~cols:4_000 ~nnz:80_000
      ~alpha:1.0 ~seed:91
  in
  let machine = Runner.cpu_machine ~nodes:8 in
  let iters_sweep = if quick then [ 1; 2; 8 ] else [ 1; 2; 4; 8; 16; 32 ] in
  print_endline
    "=== Iterative-launch amortization (SpMV, 8-node CPU; cf. Legion's \
     dependent-partitioning reuse) ===";
  Printf.printf "%-10s %-8s %5s %12s %12s %12s %5s %7s\n" "system" "cache"
    "iters" "total(s)" "iter1(s)" "warm(s)" "hits" "misses";
  let spdistal_row ~cache n =
    let p = K.spmv_problem ~machine matrix in
    let r = S.run ~iterations:n ~cache p in
    let totals = List.map (fun it -> Cost.total it.S.it_cost) r.S.iters in
    let iter1 = match totals with t :: _ -> Some t | [] -> None in
    let warm =
      match totals with
      | _ :: (_ :: _ as rest) ->
          Some (List.fold_left ( +. ) 0. rest /. float_of_int (List.length rest))
      | _ -> None
    in
    let count st =
      List.length (List.filter (fun it -> it.S.it_cache = st) r.S.iters)
    in
    {
      Csv.a_kernel = "SpMV";
      a_system = "SpDISTAL";
      a_iterations = n;
      a_cached = cache;
      a_seconds =
        (match r.S.dnc with Some _ -> None | None -> Some (Cost.total r.S.cost));
      a_iter1 = iter1;
      a_warm = warm;
      a_hits = count `Hit;
      a_misses = count `Miss;
    }
  in
  let baseline_row system name n =
    let r = Runner.run ~kernel:Runner.Spmv ~system ~machine ~iterations:n matrix in
    {
      Csv.a_kernel = "SpMV";
      a_system = name;
      a_iterations = n;
      a_cached = false;
      a_seconds =
        (match r.Spdistal_baselines.Common.dnc with
        | Some _ -> None
        | None -> Some r.Spdistal_baselines.Common.time);
      a_iter1 = None;
      a_warm = None;
      a_hits = 0;
      a_misses = 0;
    }
  in
  let rows =
    List.concat_map
      (fun n ->
        [
          spdistal_row ~cache:true n;
          spdistal_row ~cache:false n;
          baseline_row Runner.Petsc "PETSc" n;
          baseline_row Runner.Trilinos "Trilinos" n;
        ])
      iters_sweep
  in
  let cell = function Some t -> Printf.sprintf "%12.6f" t | None -> "           -" in
  List.iter
    (fun r ->
      Printf.printf "%-10s %-8s %5d %s %s %s %5d %7d\n" r.Csv.a_system
        (if r.Csv.a_cached then "on" else "off")
        r.Csv.a_iterations (cell r.Csv.a_seconds) (cell r.Csv.a_iter1)
        (cell r.Csv.a_warm) r.Csv.a_hits r.Csv.a_misses)
    rows;
  (match
     List.find_opt
       (fun r -> r.Csv.a_cached && r.Csv.a_iterations = List.fold_left max 1 iters_sweep)
       rows
   with
  | Some r -> (
      match (r.Csv.a_iter1, r.Csv.a_warm) with
      | Some c, Some w when c > w ->
          Printf.printf
            "amortization: cold iteration %.6fs > warm mean %.6fs (%.2fx)\n" c w
            (c /. w)
      | Some c, Some w ->
          Printf.printf
            "WARNING: no amortization visible (cold %.6fs <= warm %.6fs)\n" c w
      | _ -> ())
  | None -> ());
  let path = Csv.write_amortization ~dir:"results" rows in
  Printf.printf "amortization curve written: %s\n\n" path

(* ------------------------------------------------------------------ *)
(* Optional observability export: BENCH_TRACE_DIR=dir runs one traced  *)
(* cell per fig10 kernel and writes a Perfetto-loadable Chrome trace   *)
(* plus a per-launch metrics CSV for each.                             *)
(* ------------------------------------------------------------------ *)

let run_trace_exports dir =
  let open Spdistal_runtime in
  let module K = Core.Kernels in
  let module S = Core.Spdistal in
  let module Trace = Spdistal_obs.Trace in
  let matrix =
    Synth.power_law ~name:"trace-matrix" ~rows:4_000 ~cols:4_000 ~nnz:80_000
      ~alpha:1.0 ~seed:93
  in
  let tensor =
    Synth.tensor3_uniform ~name:"trace-tensor" ~dims:[| 500; 400; 200 |]
      ~nnz:40_000 ~seed:92
  in
  let machine = Runner.cpu_machine ~nodes:8 in
  let problems =
    [
      ("spmv", fun () -> K.spmv_problem ~machine matrix);
      ("spmm", fun () -> K.spmm_problem ~machine ~cols:32 matrix);
      ("spadd3", fun () -> K.spadd3_problem ~machine matrix);
      ("sddmm", fun () -> K.sddmm_problem ~machine ~cols:32 matrix);
      ("spttv", fun () -> K.spttv_problem ~machine tensor);
      ("mttkrp", fun () -> K.mttkrp_problem ~machine ~cols:32 tensor);
    ]
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  print_endline "=== Trace export (BENCH_TRACE_DIR) ===";
  List.iter
    (fun (name, make) ->
      let trace = Trace.create () in
      let r = S.run ~trace (make ()) in
      let tpath = Filename.concat dir (name ^ ".trace.json") in
      Spdistal_obs.Chrome_trace.write trace ~path:tpath;
      let mpath = Filename.concat dir (name ^ ".metrics.csv") in
      let oc = open_out mpath in
      output_string oc
        (Spdistal_obs.Report.to_csv (Spdistal_obs.Report.of_trace trace));
      close_out oc;
      Format.printf "  %-8s %a@.    -> %s, %s@." name Cost.pp r.S.cost tpath
        mpath)
    problems

(* ------------------------------------------------------------------ *)
(* Leaf throughput: wall-clock of the leaf kernel loop itself, compiled *)
(* closures vs the reference interpreter vs a hand-written CSR SpMV.    *)
(* One piece, whole-matrix shard, so nothing but the leaf loop is       *)
(* timed.  Writes results/leaf_throughput.csv; the CI smoke job checks  *)
(* the compiled/interp ratio against the ratcheted floor in             *)
(* bench/leaf_throughput_floor.txt.                                     *)
(* ------------------------------------------------------------------ *)

(* Repeat [f] until it has run for >= 0.3 s of wall clock (after one
   untimed warm-up call, which also builds the interpreter's memoized
   coordinate expansion); returns (reps, seconds). *)
let time_reps f =
  f ();
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 0.3 then (reps, dt) else go (reps * 2)
  in
  go 1

let run_leaf_throughput () =
  let open Spdistal_runtime in
  let module S = Core.Spdistal in
  let module E = Spdistal_exec in
  let module Loop_ir = Spdistal_ir.Loop_ir in
  let module Tensor = Spdistal_formats.Tensor in
  let module Dense = Spdistal_formats.Dense in
  let n = if quick then 100_000 else 400_000 in
  let b = Synth.banded ~name:"leaf-bench" ~n ~band:8 in
  let nnz = Tensor.nnz b in
  let p =
    Core.Kernels.spmv_problem
      ~machine:(S.machine ~kind:Machine.Cpu [| 1 |])
      b
  in
  let bindings = S.bindings p in
  let prog = S.compile ~trace:Spdistal_obs.Trace.null p in
  (* One piece covering every stored value: the timed call is exactly the
     leaf loop, no partitioning, placement or cost model around it. *)
  let shard = Iset.of_intervals [ (0, nnz - 1) ] in
  let shard_vals _ = shard in
  let leaf_of prepared =
    match
      List.find_map
        (function Loop_ir.Distributed_for { leaf; _ } -> Some leaf | _ -> None)
        prepared.E.Interp.pp_loops
    with
    | Some leaf -> leaf
    | None -> failwith "leaf-throughput: no distributed loop in the program"
  in
  let prep_i = E.Interp.prepare ~backend:E.Compile_leaf.Interp ~bindings prog in
  let leaf = leaf_of prep_i in
  let interp_run () =
    ignore
      (E.Leaf.execute ~bindings ~leaf ~shard_vals ~rows:None ~col_range:None ())
  in
  let prep_c =
    E.Interp.prepare ~backend:E.Compile_leaf.Compiled ~bindings prog
  in
  let compiled =
    match List.find_map (fun l -> l) prep_c.E.Interp.pp_leaves with
    | Some c -> c
    | None -> failwith "leaf-throughput: no compiled leaf"
  in
  let compiled_run () =
    ignore (E.Compile_leaf.execute compiled ~shard_vals ~rows:None ~col_range:None ())
  in
  let x = E.Operand.find_vec bindings "c" in
  let y = E.Operand.find_vec bindings "a" in
  let hand_run () = Spdistal_baselines.Common.seq_spmv b x y in
  print_endline
    "=== Leaf throughput (CSR SpMV leaf loop, wall clock, 1 piece) ===";
  Printf.printf "matrix: %d x %d banded, %d nnz\n" n n nnz;
  let measure name f =
    let reps, secs = time_reps f in
    let mnnz = float_of_int nnz *. float_of_int reps /. secs /. 1e6 in
    Printf.printf "%-12s %8d reps  %8.3f s  %10.1f Mnnz/s\n%!" name reps secs
      mnnz;
    (name, reps, secs, mnnz)
  in
  let r_interp = measure "interp" interp_run in
  let r_compiled = measure "compiled" compiled_run in
  let r_hand = measure "hand-csr" hand_run in
  let results = [ r_interp; r_compiled; r_hand ] in
  let rate_of want =
    List.find_map
      (fun (nm, _, _, r) -> if nm = want then Some r else None)
      results
  in
  let interp_rate = Option.get (rate_of "interp") in
  (try Unix.mkdir "results" 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = "results/leaf_throughput.csv" in
  let oc = open_out path in
  output_string oc "backend,rows,nnz,reps,seconds,mnnz_per_s,speedup_vs_interp\n";
  List.iter
    (fun (name, reps, secs, mnnz) ->
      Printf.fprintf oc "%s,%d,%d,%d,%.6f,%.3f,%.3f\n" name n nnz reps secs
        mnnz (mnnz /. interp_rate))
    results;
  close_out oc;
  let ratio = Option.get (rate_of "compiled") /. interp_rate in
  Printf.printf "compiled/interp leaf throughput: %.2fx (CSV: %s)\n%!" ratio
    path

(* ------------------------------------------------------------------ *)
(* Serving: the multi-tenant front-end under four scenarios — steady   *)
(* load, an overload burst, sustained faults, and both at once.  Every *)
(* run must keep answering (no crash) and hold the cache byte budget;  *)
(* the CSV records latency percentiles, hit/shed rates and throughput  *)
(* against the single-tenant (cold, unshared) baseline.                *)
(* ------------------------------------------------------------------ *)

let run_serve () =
  let open Spdistal_serve in
  let jobs = if quick then 80 else 240 in
  let gen burst =
    { Workload.default_gen with Workload.g_jobs = jobs; g_rate = 300.; g_burst = burst }
  in
  let burst = Some (0.05, 0.15, 4.) in
  let faults = Spdistal_runtime.Fault.make ~seed:42 ~rate:0.1 () in
  let scenarios =
    [
      ("steady", gen None, Spdistal_runtime.Fault.disabled);
      ("overload", gen burst, Spdistal_runtime.Fault.disabled);
      ("chaos", gen None, faults);
      ("overload+chaos", gen burst, faults);
    ]
  in
  print_endline
    "=== Serving (multi-tenant front-end: admission, deadlines, LRU budget, \
     degradation) ===";
  (try Unix.mkdir "results" 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = "results/serve.csv" in
  let oc = open_out path in
  output_string oc (Server.csv_comment ^ "\n");
  output_string oc (Server.csv_header ^ "\n");
  let tpath = "results/serve_tenants.csv" in
  let toc = open_out tpath in
  output_string toc (Server.tenants_csv_header ^ "\n");
  List.iter
    (fun (scenario, gen, faults) ->
      let w = Workload.generate ~gen ~catalog:Catalog.names () in
      let cfg = { Server.default_config with Server.s_faults = faults } in
      let r = Server.run ~baseline:true cfg w in
      (match cfg.Server.s_cache_budget with
      | Some budget when r.Server.r_cache.Spdistal_exec.Cache.bytes_peak > budget ->
          Printf.printf "WARNING: %s exceeded the cache byte budget (%d > %d)\n"
            scenario r.Server.r_cache.Spdistal_exec.Cache.bytes_peak budget
      | _ -> ());
      Printf.printf
        "%-15s %3d/%3d completed, %5.1f%% shed, p50 %8.3f ms, p99 %8.3f ms, \
         %5.1f%% hits, %7.2f jobs/s%s\n%!"
        scenario r.Server.r_completed r.Server.r_jobs
        (100. *. r.Server.r_shed_rate)
        r.Server.r_p50_ms r.Server.r_p99_ms
        (100. *. r.Server.r_hit_rate)
        r.Server.r_throughput
        (match r.Server.r_baseline_throughput with
        | Some b when b > 0. ->
            Printf.sprintf " (%.2fx single-tenant)" (r.Server.r_throughput /. b)
        | _ -> "");
      output_string oc (Server.csv_row ~scenario r ^ "\n");
      List.iter
        (fun row -> output_string toc (row ^ "\n"))
        (Server.tenants_csv_rows ~scenario r))
    scenarios;
  close_out oc;
  close_out toc;
  Printf.printf "serve scenarios written: %s, %s\n" path tpath

(* ------------------------------------------------------------------ *)
(* Auto-scheduler tournament: the evaluation kernels priced naive vs   *)
(* hand vs auto (no leaf execution).  Writes results/auto.csv; the CI  *)
(* auto-tournament job checks the worst auto/hand ratio against the    *)
(* ratcheted ceiling in bench/auto_ratio_floor.txt.                    *)
(* ------------------------------------------------------------------ *)

let run_auto_tournament () =
  print_endline
    "=== Auto-scheduler tournament (naive vs hand vs auto, priced) ===";
  let rows = Auto_tournament.compute ~quick () in
  Format.printf "%a@." Auto_tournament.print rows;
  let path = Auto_tournament.write ~dir:"results" rows in
  (match Auto_tournament.max_ratio rows with
  | Some m -> Printf.printf "max auto/hand ratio: %.4f (CSV: %s)\n%!" m path
  | None -> Printf.printf "no cell priced (CSV: %s)\n%!" path);
  let regressed = Auto_tournament.regressions rows in
  if regressed <> [] then begin
    Printf.printf "WARNING: %d cell(s) where auto fails to beat naive:\n"
      (List.length regressed);
    List.iter
      (fun (r : Auto_tournament.row) ->
        Printf.printf "  %s/%s/%s\n" r.Auto_tournament.t_kernel
          r.Auto_tournament.t_dataset r.Auto_tournament.t_system)
      regressed
  end

let section title f =
  let t0 = Unix.gettimeofday () in
  Printf.printf "\n";
  f ();
  Printf.printf "[%s took %.1fs]\n%!" title (Unix.gettimeofday () -. t0)

let leaf_only =
  match Sys.getenv_opt "BENCH_LEAF_ONLY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let serve_only =
  match Sys.getenv_opt "BENCH_SERVE_ONLY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let auto_only =
  match Sys.getenv_opt "BENCH_AUTO_ONLY" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let () =
  if leaf_only then begin
    (* CI smoke mode: just the leaf-throughput microbench and its CSV. *)
    section "leaf-throughput" run_leaf_throughput;
    exit 0
  end;
  if serve_only then begin
    (* CI smoke mode: just the serve scenario sweep and its CSV. *)
    section "serve" run_serve;
    exit 0
  end;
  if auto_only then begin
    (* CI smoke mode: just the auto-scheduler tournament and its CSV. *)
    section "auto-tournament" run_auto_tournament;
    exit 0
  end;
  Printf.printf "SpDISTAL reproduction benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  Printf.printf
    "machine model: Lassen scaled %.0fx (see DESIGN.md); datasets: Table II \
     analogs\n\n"
    Datasets.scale;

  run_bechamel ();
  section "leaf-throughput" run_leaf_throughput;
  run_domain_scaling ();
  section "fault-sweep" run_fault_sweep;
  section "amortization" run_amortization;
  section "serve" run_serve;
  section "auto-tournament" run_auto_tournament;
  (match Sys.getenv_opt "BENCH_TRACE_DIR" with
  | Some dir -> section "trace-export" (fun () -> run_trace_exports dir)
  | None -> ());

  section "table2" (fun () -> Format.printf "%a@." Datasets.pp_table2 ());

  let c10 = ref [] and c11 = ref [] and c12 = ref [] and c13 = ref [] in
  section "fig10" (fun () ->
      let cells = Fig10.compute ~quick () in
      c10 := cells;
      Format.printf "%a@." Fig10.print cells;
      (* Paper-vs-measured summary (medians the paper quotes in §VI-A1). *)
      let paper =
        [
          (Runner.Spmv, Runner.Petsc, 1.8);
          (Runner.Spmv, Runner.Trilinos, 1.2);
          (Runner.Spmv, Runner.Ctf, 299.);
          (Runner.Spmm, Runner.Petsc, 2.01);
          (Runner.Spmm, Runner.Trilinos, 3.8);
          (Runner.Spadd3, Runner.Petsc, 11.8);
          (Runner.Spadd3, Runner.Trilinos, 38.5);
          (Runner.Spadd3, Runner.Ctf, 19.2);
          (Runner.Sddmm, Runner.Ctf, 15.3);
          (Runner.Spttv, Runner.Ctf, 161.);
          (Runner.Mttkrp, Runner.Ctf, 1.03);
        ]
      in
      Format.printf "@.paper-vs-measured medians (SpDISTAL speedup over system):@.";
      List.iter
        (fun (k, s, p) ->
          match Fig10.median_speedup cells ~kernel:k ~vs:s with
          | Some m ->
              Format.printf "  %-9s vs %-9s paper %7.2fx   measured %7.2fx@."
                (Runner.kernel_name k) (Runner.system_name s) p m
          | None -> ())
        paper);

  section "fig11" (fun () ->
      let cells = Fig11.compute ~quick () in
      c11 := cells;
      Format.printf "%a@." Fig11.print cells);

  section "fig12" (fun () ->
      let cells = Fig12.compute ~quick () in
      c12 := cells;
      Format.printf "%a@." Fig12.print cells;
      List.iter
        (fun (k, p) ->
          match Fig12.median_gpu_speedup cells ~kernel:k with
          | Some m ->
              Format.printf "%s: paper median GPU speedup %.1fx, measured %.2fx@."
                (Runner.kernel_name k) p m
          | None -> ())
        [ (Runner.Spttv, 2.0); (Runner.Mttkrp, 2.2) ]);

  section "fig13" (fun () ->
      let points = Fig13.compute ~quick () in
      c13 := points;
      Format.printf "%a@." Fig13.print points);

  section "ablations" (fun () -> Format.printf "%a@." Ablations.run_all ());

  let paths =
    Csv.write_all ~dir:"results" ~fig10:!c10 ~fig11:!c11 ~fig12:!c12 ~fig13:!c13
  in
  Printf.printf "\nCSV series written: %s\n" (String.concat ", " paths);
  print_endline "All tables and figures regenerated. See EXPERIMENTS.md for";
  print_endline "the paper-vs-measured record."
