lib/exec/validate.ml: Array Dense Float Hashtbl List Operand Option Printf Spdistal_formats Spdistal_ir Tensor Tin
