lib/exec/interp.mli: Cost Machine Memstate Operand Part_eval Placement Spdistal_ir Spdistal_runtime
