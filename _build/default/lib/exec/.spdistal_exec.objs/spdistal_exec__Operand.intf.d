lib/exec/operand.mli: Dense Spdistal_formats Spdistal_ir Tensor
