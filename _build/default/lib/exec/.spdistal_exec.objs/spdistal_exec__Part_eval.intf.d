lib/exec/part_eval.mli: Hashtbl Iset Loop_ir Operand Partition Spdistal_ir Spdistal_runtime
