lib/exec/leaf.mli: Iset Operand Spdistal_ir Spdistal_runtime Task
