lib/exec/placement.mli: Iset Machine Operand Partition Spdistal_ir Spdistal_runtime
