lib/exec/placement.ml: Array Iset List Lower Machine Operand Part_eval Partition Spdistal_formats Spdistal_ir Spdistal_runtime Tdn
