lib/exec/leaf.ml: Array Dense Hashtbl Iset Level List Loop_ir Operand Printf Region Spdistal_formats Spdistal_ir Spdistal_runtime Task Tensor Tin
