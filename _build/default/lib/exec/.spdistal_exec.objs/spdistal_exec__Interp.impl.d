lib/exec/interp.ml: Array Cost Iset Leaf Level List Loop_ir Machine Memstate Operand Option Part_eval Partition Placement Printf Region Spdistal_formats Spdistal_ir Spdistal_runtime Task Tensor Tin
