lib/exec/validate.mli: Hashtbl Operand Spdistal_ir
