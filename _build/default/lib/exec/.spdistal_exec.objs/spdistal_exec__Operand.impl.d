lib/exec/operand.ml: Array Dense Level List Printf Spdistal_formats Spdistal_ir Tensor
