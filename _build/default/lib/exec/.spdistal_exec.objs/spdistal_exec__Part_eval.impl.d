lib/exec/part_eval.ml: Array Dense Dependent Hashtbl Iset List Loop_ir Operand Partition Printf Region Spdistal_formats Spdistal_ir Spdistal_runtime Tensor
