(** Execution of lowered programs against the simulated machine.

    The interpreter plays the role Legion plays for SpDISTAL's generated
    code: it materializes the program's partitions (dependent partitioning,
    §V-A), launches the distributed loop, moves the sub-regions each piece
    needs, runs the leaf kernels for real, and advances the simulated clock.

    Timing semantics: one [run] is one {e timed iteration} of the paper's
    benchmark protocol.  Partitioning happens at setup and is not charged.
    Dense operands are assumed invalidated between iterations (they are the
    vectors/factors an iterative application updates), so their
    communication recurs, exactly like PETSc's per-MatMult VecScatter;
    sparse inputs are charged only for the difference between their declared
    data distribution and what the computation needs (paper §II-D).
    {!Spdistal_runtime.Memstate} enforces capacities: [Oom] escapes to the
    caller, which reports a DNC cell (paper Fig. 11). *)

open Spdistal_runtime

val run :
  machine:Machine.t ->
  bindings:Operand.bindings ->
  placement:Placement.t ->
  ?memstate:Memstate.t ->
  cost:Cost.t ->
  Spdistal_ir.Loop_ir.prog ->
  unit

(** Partition-evaluation environment of the last [run], for inspection in
    tests (partitions by name). *)
val last_env : unit -> Part_eval.env option
