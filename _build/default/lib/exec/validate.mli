(** Dense reference evaluation of TIN statements, for correctness checking.

    Evaluates the statement by brute force over the full Cartesian product of
    index domains — trustworthy but only usable on small inputs (tests). *)

module Tin := Spdistal_ir.Tin

(** [reference bindings stmt] computes the statement's result densely into a
    fresh map keyed by lhs coordinates (zero entries omitted). *)
val reference : Operand.bindings -> Tin.stmt -> (int list, float) Hashtbl.t

(** [max_error bindings stmt] compares the bound output operand against the
    dense reference and returns the largest absolute difference. *)
val max_error : Operand.bindings -> Tin.stmt -> float
