open Spdistal_runtime
open Spdistal_formats

(* ------------------------------------------------------------------ *)
(* Calibration constants.  All per-element overheads are expressed in
   flop-equivalents (flops at the machine's nominal rate) so machine
   scaling applies to them uniformly; each is annotated with the paper
   observation it reproduces.                                           *)
(* ------------------------------------------------------------------ *)

(* Generic interpreted contraction, per sparse element (~20 ns/elt at
   1 Tflop/s): index arithmetic, virtualized dispatch, summation buffers.
   Target: 299x median on SpMV (paper Fig. 10a). *)
let interp_spmv_flops = 6_500.

(* Same path on 3-tensor times vector (sorting included).  Target: 161x
   median (Fig. 10e). *)
let interp_spttv_flops = 3_500.

(* Interpreted SpMM does real blocked dense work per element and column.
   Target: tens-of-x slowdown (Fig. 10b). *)
let interp_spmm_flops_per_col = 500.

(* Pairwise interpreted sparse summation.  Target: 19.2x on SpAdd3
   (Fig. 10c). *)
let interp_add_flops = 300.

(* Hand-written special kernels (Zhang et al. [31]).  SDDMM target: 15.3x
   median (Fig. 10d); MTTKRP target: parity (Fig. 10f). *)
let special_sddmm_flops = 13_000.
let special_mttkrp_flops = 0.

(* Element cost of redistribution-side sorting into cyclic layouts. *)
let sort_flops = 6_000.

(* CTF's blocked layout advantage on tensors with dense modes ("patents"):
   the paper observes CTF completing MTTKRP on patents significantly faster
   than on much smaller tensors. *)
let dense_mode_bonus = 0.6

let has_dense_second_level (t : Tensor.t) =
  Array.length t.Tensor.levels > 1
  &&
  match t.Tensor.levels.(1) with
  | Level.Dense _ -> true
  | Level.Compressed _ | Level.Singleton _ -> false

let ranks machine = Machine.pieces machine * machine.Machine.params.cpu_cores

let log2f n = log (float_of_int (max 2 n)) /. log 2.

let require_cpu machine =
  match machine.Machine.kind with
  | Machine.Cpu -> ()
  | Machine.Gpu -> invalid_arg "Ctf: no usable GPU backend (paper §VI)"

(* All-to-all redistribution of [bytes] into a cyclic layout: the data
   crosses the network twice (pack + place), nodes participate in
   parallel. *)
let redistribute machine bytes =
  let nodes = Machine.nodes machine in
  if nodes = 1 then bytes *. 2. /. machine.Machine.params.cpu_mem_bw
  else
    (2. *. machine.Machine.params.net_alpha *. log2f nodes)
    +. (2. *. bytes /. (machine.Machine.params.net_bw *. float_of_int nodes))

(* Rank-granular static imbalance: max per-rank element count at one-core
   throughput, in flop-equivalents per element. *)
let imbalanced_time machine counts ~flops_per_elt ~bytes_per_elt =
  Array.fold_left
    (fun acc n ->
      Float.max acc
        (Common.share_time machine ~den:machine.Machine.params.cpu_cores
           ~flops:(flops_per_elt *. float_of_int n)
           ~bytes:(bytes_per_elt *. float_of_int n)))
    0. counts

let barrier machine =
  machine.Machine.params.barrier_alpha *. log2f (ranks machine)

let node_mem machine = machine.Machine.params.node_mem
let nodesf machine = float_of_int (Machine.nodes machine)

(* Working set of a generic contraction: input + redistribution source and
   destination buffers, plus dense padding when CTF blocks a dense-mode
   tensor ("patents" SpTTV OOM at 1 node). *)
let generic_mem machine (t : Tensor.t) =
  let base = 3. *. float_of_int (Tensor.bytes t) /. nodesf machine in
  let padding =
    if has_dense_second_level t then
      float_of_int (Array.fold_left ( * ) 1 t.Tensor.dims) *. 8. /. nodesf machine
    else 0.
  in
  base +. padding

let check_mem machine bytes what =
  if bytes > node_mem machine then
    Some
      (Printf.sprintf "CTF %s: %.2e B/node exceeds %.2e B node memory" what
         bytes (node_mem machine))
  else None

let finish machine ~mem ~what ~time =
  match check_mem machine mem what with
  | Some reason -> Common.dnc reason
  | None -> Common.ok time

let spmv ~machine b ~x ~y =
  require_cpu machine;
  Common.seq_spmv b x y;
  let r = ranks machine in
  let counts = Common.row_block_nnz b ~blocks:r in
  let t_redis =
    redistribute machine (float_of_int (Tensor.bytes b))
    +. redistribute machine (Dense.vec_bytes x +. Dense.vec_bytes y)
  in
  let t_work =
    imbalanced_time machine counts
      ~flops_per_elt:(interp_spmv_flops +. sort_flops)
      ~bytes_per_elt:24.
  in
  finish machine
    ~mem:(generic_mem machine b)
    ~what:"SpMV"
    ~time:(t_redis +. t_work +. barrier machine)

let spmm ~machine b ~c ~a =
  require_cpu machine;
  Common.seq_spmm b c a;
  let r = ranks machine in
  let cols = float_of_int c.Dense.cols in
  let counts = Common.row_block_nnz b ~blocks:r in
  let t_redis =
    redistribute machine (float_of_int (Tensor.bytes b))
    +. redistribute machine (Dense.mat_bytes c +. Dense.mat_bytes a)
  in
  let t_work =
    imbalanced_time machine counts
      ~flops_per_elt:((interp_spmm_flops_per_col *. cols) +. sort_flops)
      ~bytes_per_elt:(16. +. (8. *. cols))
  in
  let mem =
    generic_mem machine b
    +. ((Dense.mat_bytes c +. Dense.mat_bytes a) /. nodesf machine)
  in
  finish machine ~mem ~what:"SpMM" ~time:(t_redis +. t_work +. barrier machine)

let spadd3 ~machine b c d =
  require_cpu machine;
  let result = Common.seq_add3 ~name:"A_ctf" b c d in
  let r = ranks machine in
  (* Two pairwise interpreted summations.  Operands already in the
     summation layout are not re-shuffled: the first pass moves both
     inputs, the second only the remaining operand. *)
  let pass ~redis (t1 : Tensor.t) (t2 : Tensor.t) =
    let counts =
      Array.map2 ( + )
        (Common.row_block_nnz t1 ~blocks:r)
        (Common.row_block_nnz t2 ~blocks:r)
    in
    redistribute machine (float_of_int redis)
    +. imbalanced_time machine counts ~flops_per_elt:interp_add_flops
         ~bytes_per_elt:16.
    +. barrier machine
  in
  let tmp = Common.seq_add3 ~name:"ctf_tmp" b c c in
  let time =
    pass ~redis:(Tensor.bytes b + Tensor.bytes c) b c
    +. pass ~redis:(Tensor.bytes d) tmp d
  in
  let mem = generic_mem machine b +. generic_mem machine c +. generic_mem machine d in
  match check_mem machine mem "SpAdd3" with
  | Some reason -> (None, Common.dnc reason)
  | None -> (Some result, Common.ok time)

let sddmm ~machine b ~c ~d ~a =
  require_cpu machine;
  Common.seq_sddmm b c d a;
  let r = ranks machine in
  let cols = float_of_int c.Dense.cols in
  let counts = Common.row_block_nnz b ~blocks:r in
  let t_redis = redistribute machine (float_of_int (Tensor.bytes b)) in
  let t_work =
    imbalanced_time machine counts
      ~flops_per_elt:(special_sddmm_flops +. (2. *. cols))
      ~bytes_per_elt:(16. +. (16. *. cols))
  in
  let mem =
    generic_mem machine b
    +. ((Dense.mat_bytes c +. Dense.mat_bytes d) /. nodesf machine)
  in
  finish machine ~mem ~what:"SDDMM" ~time:(t_redis +. t_work +. barrier machine)

let spttv ~machine b ~c ~a =
  require_cpu machine;
  Common.seq_spttv b c a;
  let r = ranks machine in
  (* Cyclic layouts block at fiber granularity. *)
  let counts = Common.fiber_block_nnz b ~blocks:r in
  let t_redis = redistribute machine (float_of_int (Tensor.bytes b)) in
  let t_work =
    imbalanced_time machine counts ~flops_per_elt:interp_spttv_flops
      ~bytes_per_elt:24.
  in
  finish machine
    ~mem:(generic_mem machine b)
    ~what:"SpTTV"
    ~time:(t_redis +. t_work +. barrier machine)

let mttkrp ~machine b ~c ~d ~a =
  require_cpu machine;
  Common.seq_mttkrp b c d a;
  let r = ranks machine in
  let cols = float_of_int a.Dense.cols in
  let counts = Common.fiber_block_nnz b ~blocks:r in
  let dense_path = has_dense_second_level b in
  let bonus = if dense_path then dense_mode_bonus else 1.0 in
  (* The hand-written kernel [31] contracts in the tensor's resident
     layout: no per-call redistribution. *)
  let t_redis = 0. in
  let t_work =
    bonus
    *. imbalanced_time machine counts
         ~flops_per_elt:(special_mttkrp_flops +. (4. *. cols))
         ~bytes_per_elt:(16. +. (8. *. cols))
  in
  (* Memory: redistribution buffers; per-rank replicated factor matrices on
     the hyper-sparse path (the "freebase_sampled" OOM at every node count);
     a sparse Khatri-Rao intermediate distributed across nodes (the
     "freebase_music" OOM at 1-2 nodes).  The dense-mode path blocks factor
     matrices instead of replicating them and streams the intermediate. *)
  let d1 = b.Tensor.dims.(1) and d2 = b.Tensor.dims.(2) in
  let factor_bytes = float_of_int (d1 + d2) *. cols *. 8. in
  (* Streams over the resident layout: 3x input buffers only, no dense
     padding even for dense-mode tensors. *)
  let mem =
    (3. *. float_of_int (Tensor.bytes b) /. nodesf machine)
    +. (if dense_path then factor_bytes
        else factor_bytes *. float_of_int machine.Machine.params.cpu_cores)
    +.
    if dense_path then 0.
    else 0.8 *. float_of_int (Tensor.nnz b) *. cols *. 8. /. nodesf machine
  in
  finish machine ~mem ~what:"SpMTTKRP" ~time:(t_redis +. t_work +. barrier machine)
