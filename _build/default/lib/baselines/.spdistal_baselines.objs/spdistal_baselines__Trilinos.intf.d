lib/baselines/trilinos.mli: Common Dense Machine Spdistal_formats Spdistal_runtime Tensor
