lib/baselines/ctf.ml: Array Common Dense Float Level Machine Printf Spdistal_formats Spdistal_runtime Tensor
