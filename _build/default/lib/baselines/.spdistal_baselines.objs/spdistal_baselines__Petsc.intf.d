lib/baselines/petsc.mli: Common Dense Machine Spdistal_formats Spdistal_runtime Tensor
