lib/baselines/petsc.ml: Array Common Dense Float Machine Spdistal_formats Spdistal_runtime Tensor
