lib/baselines/common.mli: Dense Machine Spdistal_formats Spdistal_runtime Tensor
