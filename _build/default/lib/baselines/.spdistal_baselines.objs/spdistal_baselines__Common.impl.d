lib/baselines/common.ml: Array Assemble Dense Float Hashtbl Level List Machine Region Spdistal_formats Spdistal_runtime Tensor
