(** PETSc-like baseline (paper §VI comparison target).

    Algorithmic profile, per the paper's methodology and observations:
    - one MPI rank per core on CPUs (so rank-granular static row blocks —
      no intra-rank threading, the source of SpDISTAL's SpMV advantage on
      skewed matrices), one rank per GPU;
    - MatMult/MatMatMult with VecScatter/row-gather ghost exchange and a
      per-operation synchronization;
    - no fused 3-matrix addition: SpAdd3 executes as two pairwise MatAXPY
      operations, each assembling an intermediate matrix with per-element
      dynamic insertion;
    - GPU SpMM pays a multi-GPU staging penalty (per the paper's
      communication with the PETSc developers);
    - no GPU sparse-add with unknown output pattern.

    Kernels compute real results (into the given outputs). *)

open Spdistal_runtime
open Spdistal_formats

val spmv : machine:Machine.t -> Tensor.t -> x:Dense.vec -> y:Dense.vec -> Common.result
val spmm : machine:Machine.t -> Tensor.t -> c:Dense.mat -> a:Dense.mat -> Common.result

(** Returns the assembled sum and the result. *)
val spadd3 :
  machine:Machine.t -> Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t option * Common.result
