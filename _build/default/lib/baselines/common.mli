(** Shared machinery for the baseline systems (PETSc, Trilinos, CTF).

    Baselines compute {e real numeric results} with straightforward
    sequential kernels (so tests can cross-check every system against
    SpDISTAL and the dense reference) and price their execution with their
    own characteristic algorithm profile against the same {!Machine}
    parameters.  Overheads that represent per-element CPU work are expressed
    as {e flop-equivalents} so that machine scaling (see
    [Machine.scale_params]) applies to them uniformly. *)

open Spdistal_runtime
open Spdistal_formats

type result = { time : float; dnc : string option }

val ok : float -> result
val dnc : string -> result

(** {1 Distribution analysis} *)

(** Non-zeros per contiguous row block when [rows] are split into [blocks]
    equal row ranges (the default layout of all three systems). *)
val row_block_nnz : Tensor.t -> blocks:int -> int array

(** Like {!row_block_nnz} but at fiber granularity (level-1 positions):
    the distribution unit of cyclic layouts over higher-order tensors, where
    a tiny first mode (e.g. "patents", 46 slices) cannot feed hundreds of
    ranks. *)
val fiber_block_nnz : Tensor.t -> blocks:int -> int array

(** Per-block ghost entries: distinct column coordinates referenced by the
    block's rows that fall outside the block's own column slice (the
    VecScatter / Import footprint). *)
val row_block_ghosts : Tensor.t -> blocks:int -> int array

(** Correction for the analogs' inflated density (see implementation). *)
val ghost_density_correction : float

(** {1 Roofline helpers} *)

(** Time of [flops]/[bytes] on an [1/den]-th share of a piece. *)
val share_time : Machine.t -> den:int -> flops:float -> bytes:float -> float

(** {1 Sequential reference kernels (real numerics)} *)

val seq_spmv : Tensor.t -> Dense.vec -> Dense.vec -> unit
val seq_spmm : Tensor.t -> Dense.mat -> Dense.mat -> unit

(** 3-way CSR addition; returns the assembled result. *)
val seq_add3 : name:string -> Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t

(** [seq_sddmm b c d a] writes into [a]'s values (pattern shared with [b]). *)
val seq_sddmm : Tensor.t -> Dense.mat -> Dense.mat -> Tensor.t -> unit

val seq_spttv : Tensor.t -> Dense.vec -> Tensor.t -> unit
val seq_mttkrp : Tensor.t -> Dense.mat -> Dense.mat -> Dense.mat -> unit
