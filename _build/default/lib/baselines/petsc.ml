open Spdistal_runtime
open Spdistal_formats

(* Flop-equivalent cost of one dynamic MatSetValues insertion during sparse
   assembly (~25 ns at Lassen's nominal 1 Tflop/s node). *)
let insert_flops = 800.

(* Device synchronization per GPU MatMult (PETSc's synchronous execution;
   Legion's deferred execution avoids this — paper §VI-B). *)
let gpu_sync = 15e-6

(* PETSc's local SpMM kernel relative to the Senanayake et al. schedule
   SpDISTAL generates (paper: 2.01x median overall on SpMM). *)
let spmm_kernel_penalty = 1.15

(* Multi-GPU SpMM staging penalty, per the paper's personal communication
   with the PETSc developers ("significant performance penalty when moving
   from one to multiple GPUs"). *)
let gpu_spmm_penalty machine c_bytes =
  c_bytes /. machine.Machine.params.net_bw

let ranks machine =
  match machine.Machine.kind with
  | Machine.Cpu -> Machine.pieces machine * machine.Machine.params.cpu_cores
  | Machine.Gpu -> Machine.pieces machine

let rank_den machine =
  match machine.Machine.kind with
  | Machine.Cpu -> machine.Machine.params.cpu_cores
  | Machine.Gpu -> 1

let log2f n = log (float_of_int (max 2 n)) /. log 2.

(* Max over ranks of a per-rank roofline, ranks executing in parallel. *)
let balance_time machine ~per_rank_flops_bytes counts =
  Array.fold_left
    (fun acc c ->
      let flops, bytes = per_rank_flops_bytes c in
      Float.max acc (Common.share_time machine ~den:(rank_den machine) ~flops ~bytes))
    0. counts

(* Ghost exchange at node granularity (node-aware MPI staging dedups the
   per-rank copies): remote fraction of per-node distinct ghost entries over
   the NIC, plus message latencies; intra-node ghosts ride shared memory. *)
let ghost_time machine node_ghosts ~elt_bytes =
  let nodes = Machine.nodes machine in
  let remote_frac = float_of_int (nodes - 1) /. float_of_int (max 1 nodes) in
  Array.fold_left
    (fun acc g ->
      let b = float_of_int g *. elt_bytes in
      let t =
        if nodes = 1 then b /. machine.Machine.params.cpu_mem_bw
        else
          (2. *. machine.Machine.params.net_alpha *. log2f nodes)
          +. (b *. remote_frac /. machine.Machine.params.net_bw)
      in
      Float.max acc t)
    0. node_ghosts

(* MatMult overlaps the off-diagonal scatter with the diagonal-block local
   compute; only the excess shows up. *)
let overlap ~compute ~comm = compute +. Float.max 0. (comm -. (0.9 *. compute))

let barrier machine =
  machine.Machine.params.barrier_alpha *. log2f (ranks machine)

let spmv ~machine b ~x ~y =
  Common.seq_spmv b x y;
  let r = ranks machine in
  let counts = Common.row_block_nnz b ~blocks:r in
  let rows = b.Tensor.dims.(0) in
  (match machine.Machine.kind with
  | Machine.Gpu ->
      let cap = Machine.piece_mem machine in
      if
        Array.exists
          (fun n ->
            (* vals + crd + amortized pos, plus the rank's local vector
               blocks (ghosts are second-order). *)
            (float_of_int n *. 20.)
            +. ((Dense.vec_bytes x +. Dense.vec_bytes y) /. float_of_int r)
            > cap)
          counts
      then raise Exit
  | Machine.Cpu -> ());
  let t_compute =
    balance_time machine counts ~per_rank_flops_bytes:(fun n ->
        ( 2. *. float_of_int n,
          (24. *. float_of_int n) +. (8. *. float_of_int (rows / r)) ))
  in
  let ghosts = Common.row_block_ghosts b ~blocks:(Machine.nodes machine) in
  let t_comm = ghost_time machine ghosts ~elt_bytes:(8. *. Common.ghost_density_correction) in
  let sync =
    barrier machine
    +.
    match machine.Machine.kind with
    | Machine.Gpu ->
        (* Synchronous execution stages the local vector block through the
           host every MatMult (Legion's deferred execution keeps data
           device-resident, paper §VI-B). *)
        gpu_sync
        +. (2. *. 8. *. float_of_int (rows / r)
            /. machine.Machine.params.nvlink_bw)
    | Machine.Cpu -> 0.
  in
  Common.ok (overlap ~compute:t_compute ~comm:t_comm +. sync)

let spmv ~machine b ~x ~y =
  try spmv ~machine b ~x ~y
  with Exit -> Common.dnc "PETSc GPU SpMV: matrix block exceeds device memory"

let spmm ~machine b ~c ~a =
  Common.seq_spmm b c a;
  let r = ranks machine in
  let cols = float_of_int c.Dense.cols in
  (* GPU memory check: each rank holds its B block, its A block, and the
     gathered C rows. *)
  let counts = Common.row_block_nnz b ~blocks:r in
  let ghosts = Common.row_block_ghosts b ~blocks:r in
  (match machine.Machine.kind with
  | Machine.Gpu ->
      let cap = Machine.piece_mem machine in
      let oom =
        Array.exists2 (fun n g ->
            let bytes =
              (float_of_int n *. 20.)
              +. (float_of_int g *. cols *. 8.)
              +. (Dense.mat_bytes c /. float_of_int r)
              +. (Dense.mat_bytes a /. float_of_int r)
            in
            bytes > cap)
          counts ghosts
      in
      if oom then raise Exit
  | Machine.Cpu -> ());
  let rows = b.Tensor.dims.(0) in
  let t_compute =
    spmm_kernel_penalty
    *. balance_time machine counts ~per_rank_flops_bytes:(fun n ->
           let nf = float_of_int n in
           ( 2. *. nf *. cols,
             (16. *. nf) +. (8. *. nf *. cols)
             +. (16. *. float_of_int (rows / r) *. cols) ))
  in
  let node_ghosts = Common.row_block_ghosts b ~blocks:(Machine.nodes machine) in
  let t_comm =
    ghost_time machine node_ghosts
      ~elt_bytes:(8. *. cols *. Common.ghost_density_correction)
  in
  let penalty =
    match machine.Machine.kind with
    | Machine.Gpu when Machine.pieces machine > 1 ->
        gpu_spmm_penalty machine (Dense.mat_bytes c) +. gpu_sync
    | Machine.Gpu -> gpu_sync
    | Machine.Cpu -> 0.
  in
  Common.ok (overlap ~compute:t_compute ~comm:t_comm +. barrier machine +. penalty)

let spmm ~machine b ~c ~a =
  try spmm ~machine b ~c ~a
  with Exit -> Common.dnc "PETSc GPU SpMM: gathered C exceeds device memory"

let spadd3 ~machine b c d =
  match machine.Machine.kind with
  | Machine.Gpu ->
      (* PETSc lacks GPU sparse addition with unknown output pattern. *)
      (None, Common.dnc "PETSc: GPU MatAXPY with unknown pattern unsupported")
  | Machine.Cpu ->
      let result = Common.seq_add3 ~name:"A_petsc" b c d in
      let r = ranks machine in
      (* Two pairwise MatAXPY passes, each assembling an intermediate with
         dynamic insertion. *)
      let tmp = Common.seq_add3 ~name:"petsc_tmp" b c c in
      (* tmp = B + C (adding c twice only perturbs values, not pattern). *)
      let pass counts_in out_nnz =
        let t_stream =
          balance_time machine counts_in ~per_rank_flops_bytes:(fun n ->
              (float_of_int n, 32. *. float_of_int n))
        in
        let t_insert =
          Common.share_time machine ~den:1
            ~flops:(insert_flops *. float_of_int out_nnz /. float_of_int (Machine.pieces machine))
            ~bytes:0.
        in
        t_stream +. t_insert +. barrier machine
      in
      let counts_bc =
        Array.map2 ( + )
          (Common.row_block_nnz b ~blocks:r)
          (Common.row_block_nnz c ~blocks:r)
      in
      let counts_td =
        Array.map2 ( + )
          (Common.row_block_nnz tmp ~blocks:r)
          (Common.row_block_nnz d ~blocks:r)
      in
      let t =
        pass counts_bc (Tensor.nnz tmp) +. pass counts_td (Tensor.nnz result)
      in
      (Some result, Common.ok t)
