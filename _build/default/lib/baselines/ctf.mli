(** Cyclops Tensor Framework (CTF)-like baseline: the interpretation-based
    comparison target (paper §I, §VI).

    CTF executes a tensor algebra expression as a {e sequence of pairwise
    contractions}; before each step, operands are redistributed into the
    step's preferred cyclic processor-grid layout.  This architecture is the
    source of the paper's headline gaps:
    - large constant-factor slowdowns on binary sparse kernels (299x SpMV,
      161x SpTTV, 19.2x SpAdd3 medians) from redistribution plus per-element
      interpretive dispatch;
    - hand-written special kernels for SDDMM and SpMTTKRP (Zhang et al.
      [31]): 15.3x on SDDMM, parity on SpMTTKRP (faster on "patents", whose
      dense modes suit CTF's blocked layout);
    - OOM on tensors whose dimensions force large per-rank factor buffers
      ("freebase_sampled" at every node count, "freebase_music" at 1-2
      nodes) or whose dense modes get padded ("patents" SpTTV at 1 node).

    Per-element overheads are flop-equivalents (see {!Common}); memory terms
    are documented at each check.  CPU only (the paper could not use CTF's
    GPU backend). *)

open Spdistal_runtime
open Spdistal_formats

val spmv : machine:Machine.t -> Tensor.t -> x:Dense.vec -> y:Dense.vec -> Common.result
val spmm : machine:Machine.t -> Tensor.t -> c:Dense.mat -> a:Dense.mat -> Common.result

val spadd3 :
  machine:Machine.t -> Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t option * Common.result

val sddmm :
  machine:Machine.t -> Tensor.t -> c:Dense.mat -> d:Dense.mat -> a:Tensor.t -> Common.result

val spttv : machine:Machine.t -> Tensor.t -> c:Dense.vec -> a:Tensor.t -> Common.result

val mttkrp :
  machine:Machine.t ->
  Tensor.t ->
  c:Dense.mat ->
  d:Dense.mat ->
  a:Dense.mat ->
  Common.result
