(** Trilinos/Tpetra-like baseline (paper §VI comparison target).

    Algorithmic profile:
    - one MPI rank per socket on CPUs (Kokkos threads inside, statically
      scheduled), one rank per GPU;
    - row map + column map with a single-gather Import per operand — one
      large message instead of SpDISTAL's chunked rounds, which wins some
      GPU SpMM configurations (paper §VI-A2);
    - pairwise TwoMatrixAdd for SpAdd3, with expensive assembly;
    - a slower SpMM leaf kernel than the Senanayake et al. schedule
      SpDISTAL generates (paper attributes its SpMM advantage to the leaf);
    - CUDA-UVM on GPUs: problems that exceed device memory run anyway, at a
      paging penalty (never DNC for capacity on SpMM/SpAdd3). *)

open Spdistal_runtime
open Spdistal_formats

val spmv : machine:Machine.t -> Tensor.t -> x:Dense.vec -> y:Dense.vec -> Common.result
val spmm : machine:Machine.t -> Tensor.t -> c:Dense.mat -> a:Dense.mat -> Common.result

val spadd3 :
  machine:Machine.t -> Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t option * Common.result
