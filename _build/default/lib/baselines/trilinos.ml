open Spdistal_runtime
open Spdistal_formats

(* Static Kokkos scheduling penalty relative to dynamic load balance. *)
let static_penalty = 1.25

(* Tpetra SpMM local kernel vs the Senanayake et al. schedule (the paper
   attributes SpDISTAL's 3.8x median SpMM advantage to the leaf kernel). *)
let spmm_kernel_penalty = 3.0

(* Flop-equivalent cost of one insertion in TwoMatrixAdd assembly (~60 ns;
   the paper measures 38.5x on SpAdd3 vs SpDISTAL's fused single pass). *)
let insert_flops = 3_000.

let socket_ranks = 2

let ranks machine =
  match machine.Machine.kind with
  | Machine.Cpu -> Machine.pieces machine * socket_ranks
  | Machine.Gpu -> Machine.pieces machine

let rank_den machine =
  match machine.Machine.kind with Machine.Cpu -> socket_ranks | Machine.Gpu -> 1

let log2f n = log (float_of_int (max 2 n)) /. log 2.

let balance_time machine ~per_rank_flops_bytes counts =
  Array.fold_left
    (fun acc c ->
      let flops, bytes = per_rank_flops_bytes c in
      Float.max acc
        (static_penalty
        *. Common.share_time machine ~den:(rank_den machine) ~flops ~bytes))
    0. counts

(* Single-gather Import: one message per rank carrying all needed remote
   entries. *)
let import_time machine ghosts ~elt_bytes =
  let nodes = Machine.nodes machine in
  if nodes = 1 then
    Array.fold_left
      (fun acc g -> Float.max acc (float_of_int g *. elt_bytes /. machine.Machine.params.cpu_mem_bw))
      0. ghosts
  else
    Array.fold_left
      (fun acc g ->
        let remote =
          float_of_int g *. elt_bytes
          *. (float_of_int (nodes - 1) /. float_of_int nodes)
        in
        Float.max acc
          (machine.Machine.params.net_alpha +. (remote /. machine.Machine.params.net_bw)))
      0. ghosts

let barrier machine =
  machine.Machine.params.barrier_alpha *. log2f (ranks machine)

(* Tpetra's apply overlaps the Import with the locally-owned compute. *)
let overlap ~compute ~comm = compute +. Float.max 0. (comm -. (0.9 *. compute))

(* UVM: overflow beyond device memory is paged in and out each iteration. *)
let uvm_penalty machine resident =
  match machine.Machine.kind with
  | Machine.Cpu -> 0.
  | Machine.Gpu ->
      let over = resident -. Machine.piece_mem machine in
      if over > 0. then 2. *. over /. machine.Machine.params.uvm_page_bw else 0.

let spmv ~machine b ~x ~y =
  Common.seq_spmv b x y;
  let r = ranks machine in
  let counts = Common.row_block_nnz b ~blocks:r in
  let rows = b.Tensor.dims.(0) in
  let t_compute =
    balance_time machine counts ~per_rank_flops_bytes:(fun n ->
        ( 2. *. float_of_int n,
          (24. *. float_of_int n) +. (8. *. float_of_int (rows / r)) ))
  in
  let ghosts = Common.row_block_ghosts b ~blocks:(Machine.nodes machine) in
  let t_comm = import_time machine ghosts ~elt_bytes:(8. *. Common.ghost_density_correction) in
  let staging =
    match machine.Machine.kind with
    | Machine.Gpu ->
        (* UVM-managed vectors fault through the host each apply. *)
        4. *. 8. *. float_of_int (rows / r) /. machine.Machine.params.nvlink_bw
    | Machine.Cpu -> 0.
  in
  Common.ok (overlap ~compute:t_compute ~comm:t_comm +. barrier machine +. staging)

let spmm ~machine b ~c ~a =
  Common.seq_spmm b c a;
  let r = ranks machine in
  let cols = float_of_int c.Dense.cols in
  let rows = b.Tensor.dims.(0) in
  let counts = Common.row_block_nnz b ~blocks:r in
  let ghosts = Common.row_block_ghosts b ~blocks:r in
  let t_compute =
    spmm_kernel_penalty
    *. balance_time machine counts ~per_rank_flops_bytes:(fun n ->
           let nf = float_of_int n in
           ( 2. *. nf *. cols,
             (16. *. nf) +. (8. *. nf *. cols)
             +. (16. *. float_of_int (rows / r) *. cols) ))
  in
  let node_ghosts = Common.row_block_ghosts b ~blocks:(Machine.nodes machine) in
  let t_comm =
    import_time machine node_ghosts
      ~elt_bytes:(8. *. cols *. Common.ghost_density_correction)
  in
  (* Per-rank residency for the UVM model. *)
  let resident =
    Array.fold_left Float.max 0.
      (Array.map2
         (fun n g ->
           (float_of_int n *. 20.)
           +. (float_of_int g *. cols *. 8.)
           +. ((Dense.mat_bytes c +. Dense.mat_bytes a) /. float_of_int r))
         counts ghosts)
  in
  Common.ok
    (overlap ~compute:t_compute ~comm:t_comm
    +. barrier machine
    +. uvm_penalty machine resident)

let spadd3 ~machine b c d =
  let result = Common.seq_add3 ~name:"A_trilinos" b c d in
  let r = ranks machine in
  let tmp = Common.seq_add3 ~name:"trilinos_tmp" b c c in
  let pass counts_in out_nnz =
    let t_stream =
      balance_time machine counts_in ~per_rank_flops_bytes:(fun n ->
          (float_of_int n, 32. *. float_of_int n))
    in
    let t_insert =
      Common.share_time machine ~den:1
        ~flops:
          (insert_flops *. float_of_int out_nnz
          /. float_of_int (Machine.pieces machine))
        ~bytes:0.
    in
    t_stream +. t_insert +. barrier machine
  in
  let counts_bc =
    Array.map2 ( + ) (Common.row_block_nnz b ~blocks:r) (Common.row_block_nnz c ~blocks:r)
  in
  let counts_td =
    Array.map2 ( + ) (Common.row_block_nnz tmp ~blocks:r) (Common.row_block_nnz d ~blocks:r)
  in
  let resident =
    float_of_int (Tensor.bytes b + Tensor.bytes c + Tensor.bytes d + Tensor.bytes tmp)
    /. float_of_int (Machine.pieces machine)
  in
  let t =
    pass counts_bc (Tensor.nnz tmp)
    +. pass counts_td (Tensor.nnz result)
    +. uvm_penalty machine resident
  in
  (Some result, Common.ok t)
