(** Dependent partitioning (Treichler et al., paper §III-A, Fig. 6):
    deriving partitions of one region from partitions of another through the
    pointer structure stored in region values.

    Two value shapes occur in sparse tensor storage:
    - {e range-valued} regions — the [pos] array stores [(lo, hi)] index
      ranges naming positions of the [crd] array (paper Fig. 7);
    - {e int-valued} regions — the [crd] array stores coordinate values naming
      indices of the child level's universe.

    [image] colors all destinations of pointers with the color of their
    source; [preimage] colors all sources with the colors of their
    destinations.  Preimages of shared structure may produce aliased
    partitions (Fig. 6b). *)

(** [image_ranges pos p target] where [p] partitions [pos]'s index space:
    color [c] receives the union of ranges [pos.(i)] over [i] in [p(c)],
    clipped to [target]. *)
val image_ranges : (int * int) Region.t -> Partition.t -> Iset.t -> Partition.t

(** [preimage_ranges pos p] where [p] partitions the pointed-to space: color
    [c] receives every [i] whose range [pos.(i)] intersects [p(c)]. *)
val preimage_ranges : (int * int) Region.t -> Partition.t -> Partition.t

(** [image_values crd p target] where [p] partitions [crd]'s index space:
    color [c] receives the set [{crd.(i) | i in p(c)}], clipped to
    [target]. *)
val image_values : int Region.t -> Partition.t -> Iset.t -> Partition.t

(** [preimage_values crd p] where [p] partitions the value space: color [c]
    receives every position [i] with [crd.(i)] in [p(c)]. *)
val preimage_values : int Region.t -> Partition.t -> Partition.t
