(** Sets of integer indices represented as sorted lists of disjoint, inclusive
    intervals.

    Interval sets are the universal currency of the runtime: index spaces,
    partition subsets and transfer footprints are all interval sets.  The
    representation is canonical — intervals are sorted, disjoint and
    non-adjacent — so structural equality coincides with set equality. *)

type t

(** {1 Construction} *)

val empty : t

(** [interval lo hi] is the set [{lo, ..., hi}] (inclusive). Empty if
    [hi < lo]. *)
val interval : int -> int -> t

val singleton : int -> t

(** [range n] is the set [{0, ..., n-1}], the universe of an [n]-element
    dimension. *)
val range : int -> t

(** [of_intervals l] builds a set from arbitrary (possibly overlapping,
    unsorted) inclusive intervals. *)
val of_intervals : (int * int) list -> t

(** [of_list xs] builds a set from arbitrary elements. *)
val of_list : int list -> t

(** {1 Queries} *)

val is_empty : t -> bool
val mem : int -> t -> bool
val cardinal : t -> int

(** Number of maximal intervals in the canonical form. *)
val interval_count : t -> int

(** [min_elt t] and [max_elt t] raise [Not_found] on the empty set. *)
val min_elt : t -> int

val max_elt : t -> int
val equal : t -> t -> bool
val subset : t -> t -> bool

(** [disjoint a b] is [true] iff [a] and [b] share no element. *)
val disjoint : t -> t -> bool

(** [intersects_interval t lo hi] is [true] iff [t] contains an element of
    [{lo..hi}]. *)
val intersects_interval : t -> int -> int -> bool

(** {1 Set operations} *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val union_list : t list -> t

(** {1 Traversal} *)

val to_intervals : t -> (int * int) list
val fold_intervals : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_intervals : (int -> int -> unit) -> t -> unit

(** [iter f t] applies [f] to every element in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list

(** [nth t k] is the [k]-th smallest element. Raises [Invalid_argument] when
    [k] is out of bounds. *)
val nth : t -> int -> int

val pp : Format.formatter -> t -> unit
