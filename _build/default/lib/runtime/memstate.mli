(** Instance manager: which (sub-)regions are resident in which piece memory.

    Physical data lives once in the OCaml heap; this module tracks the bytes
    that the simulated machine would hold per piece, enforces memory
    capacities (raising {!Oom} exactly where the paper reports OOM/DNC cells,
    Fig. 11), and tells the executor whether a requested instance is already
    valid — a hit costs nothing, a miss is charged as a transfer by the
    caller.  An optional CUDA-UVM mode models Trilinos's ability to oversubscribe
    GPU memory at a paging penalty. *)

exception Oom of string

type fetch = Hit | Miss of float  (** bytes to transfer *) | Paged of float
      (** bytes resident beyond capacity, to be paged each access (UVM) *)

type t

(** [create machine ~uvm] — capacities come from [Machine.piece_mem]. *)
val create : Machine.t -> uvm:bool -> t

(** [ensure t ~piece ~key ~bytes] requests that instance [key] ([bytes] large)
    be valid in [piece]'s memory.  Returns [Hit] if already valid.  On a miss,
    reserves the bytes and returns [Miss bytes]; if the reservation exceeds
    capacity, raises [Oom] (or returns [Paged overflow] under UVM). *)
val ensure : t -> piece:int -> key:string -> bytes:float -> fetch

(** Drop an instance from every piece (data was mutated elsewhere). *)
val invalidate : t -> key:string -> unit

val resident_bytes : t -> piece:int -> float
