exception Oom of string

type fetch = Hit | Miss of float | Paged of float

type t = {
  capacity : float;
  uvm : bool;
  resident : float array;  (** bytes per piece *)
  tables : (string, float) Hashtbl.t array;  (** key -> bytes, per piece *)
}

let create machine ~uvm =
  let n = Machine.pieces machine in
  {
    capacity = Machine.piece_mem machine;
    uvm;
    resident = Array.make n 0.;
    tables = Array.init n (fun _ -> Hashtbl.create 16);
  }

let ensure t ~piece ~key ~bytes =
  let tbl = t.tables.(piece) in
  match Hashtbl.find_opt tbl key with
  | Some _ -> Hit
  | None ->
      let after = t.resident.(piece) +. bytes in
      if after > t.capacity && not t.uvm then
        raise
          (Oom
             (Printf.sprintf
                "piece %d: %.2e B requested for %s, %.2e/%.2e B resident"
                piece bytes key t.resident.(piece) t.capacity));
      Hashtbl.replace tbl key bytes;
      t.resident.(piece) <- after;
      if after > t.capacity then Paged (after -. t.capacity) else Miss bytes

let invalidate t ~key =
  Array.iteri
    (fun p tbl ->
      match Hashtbl.find_opt tbl key with
      | None -> ()
      | Some bytes ->
          Hashtbl.remove tbl key;
          t.resident.(p) <- t.resident.(p) -. bytes)
    t.tables

let resident_bytes t ~piece = t.resident.(piece)
