type t = {
  mutable total : float;
  mutable compute : float;
  mutable comm : float;
  mutable overhead : float;
  mutable bytes_moved : float;
  mutable messages : int;
  mutable launches : int;
  mutable flops : float;
}

let create () =
  {
    total = 0.;
    compute = 0.;
    comm = 0.;
    overhead = 0.;
    bytes_moved = 0.;
    messages = 0;
    launches = 0;
    flops = 0.;
  }

let reset t =
  t.total <- 0.;
  t.compute <- 0.;
  t.comm <- 0.;
  t.overhead <- 0.;
  t.bytes_moved <- 0.;
  t.messages <- 0;
  t.launches <- 0;
  t.flops <- 0.

let add_compute t dt =
  t.compute <- t.compute +. dt;
  t.total <- t.total +. dt

let add_comm t ?(bytes = 0.) ?(messages = 0) dt =
  t.comm <- t.comm +. dt;
  t.bytes_moved <- t.bytes_moved +. bytes;
  t.messages <- t.messages + messages;
  t.total <- t.total +. dt

let add_overhead t dt =
  t.overhead <- t.overhead +. dt;
  t.total <- t.total +. dt

let add_flops t f = t.flops <- t.flops +. f

let record_launch t ~machine ~piece_times =
  let critical = Array.fold_left Float.max 0. piece_times in
  t.launches <- t.launches + 1;
  add_compute t critical;
  add_overhead t (Machine.launch_overhead machine)

let record_launch_split t ~machine ~comm_times ~leaf_times =
  let critical = ref 0. and leaf_max = ref 0. in
  Array.iteri
    (fun i c ->
      critical := Float.max !critical (c +. leaf_times.(i));
      leaf_max := Float.max !leaf_max leaf_times.(i))
    comm_times;
  t.launches <- t.launches + 1;
  add_compute t !leaf_max;
  add_comm t (Float.max 0. (!critical -. !leaf_max));
  add_overhead t (Machine.launch_overhead machine)

let total t = t.total

let pp fmt t =
  Format.fprintf fmt
    "%.6fs (compute %.6fs, comm %.6fs, overhead %.6fs; %.3e B moved, %d msgs, \
     %d launches, %.3e flops)"
    t.total t.compute t.comm t.overhead t.bytes_moved t.messages t.launches
    t.flops
