lib/runtime/region.ml: Array Iset Printf
