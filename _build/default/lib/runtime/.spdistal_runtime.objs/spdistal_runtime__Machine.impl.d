lib/runtime/machine.ml: Array Float Format
