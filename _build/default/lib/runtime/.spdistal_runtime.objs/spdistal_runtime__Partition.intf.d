lib/runtime/partition.mli: Format Iset Region
