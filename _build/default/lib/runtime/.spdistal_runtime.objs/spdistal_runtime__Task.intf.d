lib/runtime/task.mli: Cost Machine
