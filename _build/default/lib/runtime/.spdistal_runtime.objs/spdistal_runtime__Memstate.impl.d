lib/runtime/memstate.ml: Array Hashtbl Machine Printf
