lib/runtime/partition.ml: Array Format Iset Region
