lib/runtime/task.ml: Array Cost List Machine
