lib/runtime/memstate.mli: Machine
