lib/runtime/iset.ml: Format List
