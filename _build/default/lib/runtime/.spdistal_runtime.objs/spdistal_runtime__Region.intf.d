lib/runtime/region.mli: Iset
