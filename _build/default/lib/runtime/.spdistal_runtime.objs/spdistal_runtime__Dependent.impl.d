lib/runtime/dependent.ml: Array Iset Partition Region
