lib/runtime/dependent.mli: Iset Partition Region
