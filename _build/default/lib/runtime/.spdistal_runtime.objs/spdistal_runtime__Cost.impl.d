lib/runtime/cost.ml: Array Float Format Machine
