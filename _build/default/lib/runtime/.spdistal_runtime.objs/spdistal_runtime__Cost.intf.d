lib/runtime/cost.mli: Format Machine
