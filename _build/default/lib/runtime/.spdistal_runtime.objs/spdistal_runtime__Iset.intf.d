lib/runtime/iset.mli: Format
