(** Regions: typed multi-element arrays addressed by a (linearized) index
    space, the Legion-style storage abstraction of the runtime (paper §III-A).

    A region couples an index space — the set of valid indices — with backing
    storage.  Sub-regions produced by partitioning share the parent's backing
    storage, exactly as Legion logical sub-regions view the same field data;
    only the index space shrinks. *)

type 'a t = private {
  name : string;
  id : int;  (** unique per allocation (sub-regions share their parent's) *)
  ispace : Iset.t;  (** valid indices *)
  data : 'a array;  (** backing store, addressed by global index *)
}

(** [create name n init] makes a region over [{0..n-1}] filled with [init]. *)
val create : string -> int -> 'a -> 'a t

(** [of_array name a] wraps an existing array (no copy). *)
val of_array : string -> 'a array -> 'a t

(** [subregion r is] is the view of [r] restricted to [is] (shared storage).
    Raises [Invalid_argument] if [is] is not a subset of [r]'s index space. *)
val subregion : 'a t -> Iset.t -> 'a t

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val size : 'a t -> int

(** Number of addressable slots in the backing store (the parent extent). *)
val extent : 'a t -> int

(** [iter f r] applies [f idx value] over the region's index space. *)
val iter : (int -> 'a -> unit) -> 'a t -> unit

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** Footprint in bytes given per-element size. *)
val bytes : elt_bytes:int -> 'a t -> int
