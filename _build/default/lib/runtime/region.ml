type 'a t = { name : string; id : int; ispace : Iset.t; data : 'a array }

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let create name n init =
  { name; id = next_id (); ispace = Iset.range n; data = Array.make (max n 0) init }

let of_array name a =
  { name; id = next_id (); ispace = Iset.range (Array.length a); data = a }

let subregion r is =
  if not (Iset.subset is r.ispace) then
    invalid_arg (Printf.sprintf "Region.subregion: %s: not a subset" r.name);
  { r with ispace = is }

let get r i =
  assert (Iset.mem i r.ispace);
  r.data.(i)

let set r i v =
  assert (Iset.mem i r.ispace);
  r.data.(i) <- v

let size r = Iset.cardinal r.ispace
let extent r = Array.length r.data
let iter f r = Iset.iter (fun i -> f i r.data.(i)) r.ispace
let fold f r init = Iset.fold (fun i acc -> f i r.data.(i) acc) r.ispace init
let bytes ~elt_bytes r = elt_bytes * size r
