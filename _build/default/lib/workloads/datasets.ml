open Spdistal_formats

(* Nominal: individual analogs range ~3000-9000x; shapes are insensitive to
   the residual because the cost model is linear in non-zeros. *)
let scale = 5000.

type kind = Matrix | Tensor3

type entry = {
  ds_name : string;
  domain : string;
  paper_nnz : float;
  ds_kind : kind;
  structure : string;
  load : unit -> Tensor.t;
}

let cache : (string, Tensor.t) Hashtbl.t = Hashtbl.create 16
let clear_cache () = Hashtbl.reset cache

let memo name f () =
  match Hashtbl.find_opt cache name with
  | Some t -> t
  | None ->
      let t = f () in
      Hashtbl.replace cache name t;
      t

let m ds_name domain paper_nnz structure f =
  { ds_name; domain; paper_nnz; ds_kind = Matrix; structure; load = memo ds_name f }

let t3 ds_name domain paper_nnz structure f =
  { ds_name; domain; paper_nnz; ds_kind = Tensor3; structure; load = memo ds_name f }

(* Matrices: the SuiteSparse group of Table II. *)
let matrices =
  [
    m "arabic-2005" "Web Connectivity" 6.39e8 "power-law (alpha=1.0)" (fun () ->
        Synth.power_law ~name:"arabic-2005" ~rows:10_000 ~cols:10_000
          ~nnz:190_000 ~alpha:1.0 ~seed:1001);
    m "it-2004" "Web Connectivity" 1.15e9 "power-law (alpha=1.1)" (fun () ->
        Synth.power_law ~name:"it-2004" ~rows:12_000 ~cols:12_000 ~nnz:230_000
          ~alpha:1.1 ~seed:1002);
    m "kmer_A2a" "Protein Structure" 3.60e8 "bounded degree 2-4" (fun () ->
        Synth.bounded_degree ~name:"kmer_A2a" ~rows:60_000 ~cols:60_000 ~lo:2
          ~hi:4 ~seed:1003);
    m "kmer_V1r" "Protein Structure" 4.65e8 "bounded degree 2-4" (fun () ->
        Synth.bounded_degree ~name:"kmer_V1r" ~rows:75_000 ~cols:75_000 ~lo:2
          ~hi:4 ~seed:1004);
    m "mycielskian19" "Synthetic" 9.03e8 "uniform heavy rows" (fun () ->
        Synth.dense_rows ~name:"mycielskian19" ~rows:700 ~cols:700 ~row_nnz:280
          ~seed:1005);
    m "nlpkkt240" "PDE's" 7.60e8 "27-point stencil" (fun () ->
        Synth.stencil ~name:"nlpkkt240" ~n:7_000 ~points:27);
    m "sk-2005" "Web Connectivity" 1.94e9 "power-law (alpha=1.2)" (fun () ->
        Synth.power_law ~name:"sk-2005" ~rows:15_000 ~cols:15_000 ~nnz:380_000
          ~alpha:1.2 ~seed:1006);
    m "twitter7" "Social Network" 1.46e9 "power-law (alpha=0.8, hubs)" (fun () ->
        Synth.power_law ~name:"twitter7" ~rows:10_000 ~cols:10_000 ~nnz:290_000
          ~alpha:0.8 ~seed:1007);
    m "uk-2005" "Web Connectivity" 9.36e8 "power-law (alpha=1.0)" (fun () ->
        Synth.power_law ~name:"uk-2005" ~rows:11_000 ~cols:11_000 ~nnz:190_000
          ~alpha:1.0 ~seed:1008);
    m "webbase-2001" "Web Connectivity" 1.01e9 "power-law (alpha=0.9)" (fun () ->
        Synth.power_law ~name:"webbase-2001" ~rows:13_000 ~cols:13_000
          ~nnz:200_000 ~alpha:0.9 ~seed:1009);
  ]

(* 3-tensors: the FROSTT / Freebase group. *)
let tensors3 =
  [
    t3 "freebase_music" "Data Mining" 1.74e9 "skewed slices, dense-ish domain"
      (fun () ->
        Synth.tensor3_skewed ~name:"freebase_music" ~dims:[| 1_400; 1_400; 200 |]
          ~nnz:330_000 ~alpha:1.2 ~seed:2001);
    t3 "freebase_sampled" "Data Mining" 9.95e7
      "hyper-sparse (full Freebase dims, sampled non-zeros)" (fun () ->
        Synth.tensor3_skewed ~name:"freebase_sampled"
          ~dims:[| 6_000; 6_000; 100 |] ~nnz:60_000 ~alpha:1.1 ~seed:2002);
    t3 "nell-2" "NLP" 7.68e7 "moderately dense slices" (fun () ->
        Synth.tensor3_uniform ~name:"nell-2" ~dims:[| 1_200; 900; 300 |]
          ~nnz:55_000 ~seed:2003);
    t3 "patents" "Data Mining" 3.59e9 "dense outer modes (Dense,Dense,Compressed)"
      (fun () ->
        Synth.tensor3_dense_modes ~name:"patents" ~dims:[| 8; 240; 2_400 |]
          ~nnz:600_000 ~seed:2004);
  ]

let all = matrices @ tensors3

let find name =
  match List.find_opt (fun e -> e.ds_name = name) all with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Datasets.find: unknown dataset %s" name)

let pp_table2 fmt () =
  Format.fprintf fmt
    "@[<v>Table II: tensors and matrices (paper originals and scaled analogs)@,";
  Format.fprintf fmt "%-18s %-18s %12s %12s  %s@," "Tensor" "Domain" "paper nnz"
    "analog nnz" "structure class";
  List.iter
    (fun e ->
      let t = e.load () in
      Format.fprintf fmt "%-18s %-18s %12.2e %12d  %s@," e.ds_name e.domain
        e.paper_nnz (Tensor.nnz t) e.structure)
    all;
  Format.fprintf fmt "@]"
