lib/workloads/synth.mli: Spdistal_formats Tensor
