lib/workloads/datasets.ml: Format Hashtbl List Printf Spdistal_formats Synth Tensor
