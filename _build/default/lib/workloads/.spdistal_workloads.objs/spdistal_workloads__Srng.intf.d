lib/workloads/srng.mli:
