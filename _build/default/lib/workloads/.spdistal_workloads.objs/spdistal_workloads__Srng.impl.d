lib/workloads/srng.ml: Int64
