lib/workloads/datasets.mli: Format Spdistal_formats Tensor
