lib/workloads/synth.ml: Array Coo Level List Spdistal_formats Srng Tensor
