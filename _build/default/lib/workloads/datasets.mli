(** Scaled structural analogs of the paper's dataset (Table II).

    The paper evaluates 14 real tensors of 10^8–10^9 non-zeros from
    SuiteSparse, FROSTT and Freebase.  Those files are data gates; each entry
    here is a deterministic generator preserving the original's {e structure
    class} — degree distribution, aspect ratio, density regime — scaled down
    by roughly 5000x in non-zero count (the cost model is linear in
    non-zeros, so relative shapes are preserved).  See DESIGN.md. *)

open Spdistal_formats

(** Non-zero scale-down factor of every analog relative to its paper
    original.  Use [Machine.scale_params scale] when building experiment
    machines so bandwidth/latency ratios and memory boundaries match the
    full-size runs. *)
val scale : float

type kind = Matrix | Tensor3

type entry = {
  ds_name : string;  (** paper name, e.g. "arabic-2005" *)
  domain : string;  (** Table II domain column *)
  paper_nnz : float;  (** Table II non-zero count *)
  ds_kind : kind;
  structure : string;  (** generator/structure class, for documentation *)
  load : unit -> Tensor.t;  (** memoized *)
}

(** All 14 entries, in Table II order. *)
val all : entry list

val matrices : entry list
val tensors3 : entry list
val find : string -> entry

(** Drop memoized tensors. *)
val clear_cache : unit -> unit

(** Render Table II (paper and analog columns). *)
val pp_table2 : Format.formatter -> unit -> unit
