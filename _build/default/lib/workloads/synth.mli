(** Synthetic sparse matrix and tensor generators.

    Each generator targets one of the structure classes of the paper's
    dataset (Table II): banded PDE-like matrices, uniform random, power-law
    (web/social graph) degree distributions, bounded-degree (protein k-mer)
    graphs, and hyper-sparse or dense-mode 3-tensors.  Generators are
    deterministic in their seed; non-zero counts are approximate targets
    (duplicates are merged). *)

open Spdistal_formats

(** [banded ~name ~n ~band] — square [n x n], [band] diagonals (the weak
    scaling workload of paper Fig. 13). *)
val banded : name:string -> n:int -> band:int -> Tensor.t

(** [uniform ~name ~rows ~cols ~nnz ~seed] — uniformly random positions. *)
val uniform : name:string -> rows:int -> cols:int -> nnz:int -> seed:int -> Tensor.t

(** [power_law ~name ~rows ~cols ~nnz ~alpha ~seed] — Zipf row degrees
    (web-graph / social-network class).  Larger [alpha] = heavier skew. *)
val power_law :
  name:string -> rows:int -> cols:int -> nnz:int -> alpha:float -> seed:int -> Tensor.t

(** [bounded_degree ~name ~rows ~cols ~lo ~hi ~seed] — every row has between
    [lo] and [hi] entries (protein-structure k-mer class). *)
val bounded_degree :
  name:string -> rows:int -> cols:int -> lo:int -> hi:int -> seed:int -> Tensor.t

(** [dense_rows ~name ~rows ~cols ~row_nnz ~seed] — every row has exactly
    [row_nnz] entries (Mycielskian-like heavy uniform rows). *)
val dense_rows :
  name:string -> rows:int -> cols:int -> row_nnz:int -> seed:int -> Tensor.t

(** [stencil ~name ~n ~points] — [points]-diagonal symmetric band structure
    with gaps (PDE/KKT class). *)
val stencil : name:string -> n:int -> points:int -> Tensor.t

(** [tensor3_uniform ~name ~dims ~nnz ~seed] — CSF (Dense, Compressed,
    Compressed) 3-tensor with uniform coordinates. *)
val tensor3_uniform : name:string -> dims:int array -> nnz:int -> seed:int -> Tensor.t

(** [tensor3_skewed ~name ~dims ~nnz ~alpha ~seed] — Zipf-skewed slice sizes
    (Freebase/NELL class). *)
val tensor3_skewed :
  name:string -> dims:int array -> nnz:int -> alpha:float -> seed:int -> Tensor.t

(** [tensor3_dense_modes ~name ~dims ~nnz ~seed] — small dense outer modes
    with many entries per (i, j) fiber, stored (Dense, Dense, Compressed)
    like the "patents" tensor. *)
val tensor3_dense_modes :
  name:string -> dims:int array -> nnz:int -> seed:int -> Tensor.t
