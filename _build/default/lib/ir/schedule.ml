type proc = Cpu_thread | Gpu_thread

type cmd =
  | Divide of { v : string; outer : string; inner : string }
  | Split of { v : string; outer : string; inner : string; factor : int }
  | Fuse of { f : string; a : string; b : string }
  | Pos of { v : string; pv : string; tensor : string }
  | Reorder of string list
  | Distribute of string list
  | Communicate of { tensors : string list; at : string }
  | Parallelize of { v : string; proc : proc }
  | Precompute of { v : string; tensors : string list }

type t = cmd list

type strategy =
  | Universe_dist of { var : string }
  | Non_zero_dist of { tensor : string; fused : string list }

type plan = {
  strategy : strategy;
  dist_vars : string list;
  secondary_var : string option;
  communicated : (string list * string) list;
  parallel_leaf : proc option;
  workspace : bool;
}

(* Provenance of a derived variable back to the statement's original
   variables. *)
type root =
  | Orig of string
  | Fused_root of string list
  | Pos_root of { tensor : string; fused : string list }

let analyze stmt sched =
  let originals = Tin.index_vars stmt in
  let roots : (string, root) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace roots v (Orig v)) originals;
  let root_of v =
    match Hashtbl.find_opt roots v with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Schedule.analyze: unknown variable %s" v)
  in
  let vars_of_root = function
    | Orig v -> [ v ]
    | Fused_root vs -> vs
    | Pos_root { fused; _ } -> fused
  in
  let communicated = ref [] and parallel_leaf = ref None in
  let distributed = ref [] and workspace = ref false in
  List.iter
    (fun cmd ->
      match cmd with
      | Divide { v; outer; inner } | Split { v; outer; inner; _ } ->
          let r = root_of v in
          Hashtbl.replace roots outer r;
          Hashtbl.replace roots inner r
      | Fuse { f; a; b } ->
          let va = vars_of_root (root_of a) and vb = vars_of_root (root_of b) in
          Hashtbl.replace roots f (Fused_root (va @ vb))
      | Pos { v; pv; tensor } ->
          let fused = vars_of_root (root_of v) in
          Hashtbl.replace roots pv (Pos_root { tensor; fused })
      | Reorder _ -> ()
      | Distribute vs ->
          List.iter (fun v -> ignore (root_of v)) vs;
          distributed := !distributed @ vs
      | Communicate { tensors; at } ->
          ignore (root_of at);
          communicated := (tensors, at) :: !communicated
      | Parallelize { proc; _ } -> parallel_leaf := Some proc
      | Precompute _ -> workspace := true)
    sched;
  let dist_vars = !distributed in
  (match dist_vars with
  | [] -> invalid_arg "Schedule.analyze: no distribute command"
  | _ :: _ :: _ :: _ ->
      invalid_arg "Schedule.analyze: at most two distributed variables"
  | _ -> ());
  let primary = List.hd dist_vars in
  let secondary_var = match dist_vars with [ _; s ] -> Some s | _ -> None in
  let strategy =
    match root_of primary with
    | Orig v -> Universe_dist { var = v }
    | Fused_root _ ->
        invalid_arg
          "Schedule.analyze: distributing a fused coordinate loop requires a \
           pos transformation first"
    | Pos_root { tensor; fused } -> Non_zero_dist { tensor; fused }
  in
  (match (strategy, secondary_var) with
  | Non_zero_dist _, Some _ ->
      invalid_arg
        "Schedule.analyze: 2-D distribution is only supported for \
         coordinate-value loops"
  | _ -> ());
  {
    strategy;
    dist_vars;
    secondary_var;
    communicated = List.rev !communicated;
    parallel_leaf = !parallel_leaf;
    workspace = !workspace;
  }

let pp_proc fmt = function
  | Cpu_thread -> Format.fprintf fmt "CPUThread"
  | Gpu_thread -> Format.fprintf fmt "GPUThread"

let pp_cmd fmt = function
  | Divide { v; outer; inner } ->
      Format.fprintf fmt "divide(%s, %s, %s, M)" v outer inner
  | Split { v; outer; inner; factor } ->
      Format.fprintf fmt "split(%s, %s, %s, %d)" v outer inner factor
  | Fuse { f; a; b } -> Format.fprintf fmt "fuse(%s, %s, %s)" f a b
  | Pos { v; pv; tensor } -> Format.fprintf fmt "pos(%s, %s, %s)" v pv tensor
  | Reorder vs -> Format.fprintf fmt "reorder(%s)" (String.concat ", " vs)
  | Distribute vs -> Format.fprintf fmt "distribute(%s)" (String.concat ", " vs)
  | Communicate { tensors; at } ->
      Format.fprintf fmt "communicate({%s}, %s)" (String.concat ", " tensors) at
  | Parallelize { v; proc } ->
      Format.fprintf fmt "parallelize(%s, %a)" v pp_proc proc
  | Precompute { v; tensors } ->
      Format.fprintf fmt "precompute(%s, {%s})" v (String.concat ", " tensors)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt ".%a" pp_cmd c)
    t;
  Format.fprintf fmt "@]"
