type t =
  | Blocked of { tensor_dim : int; machine_dim : int }
  | Tiled of { mappings : (int * int) list }
  | Non_zero of { tensor_dim : int; machine_dim : int }
  | Fused_non_zero of { dims : int list; machine_dim : int }
  | Replicated

let dim_vars = [| "x"; "y"; "z"; "w" |]
let var d = if d < Array.length dim_vars then dim_vars.(d) else Printf.sprintf "d%d" d

let identity_stmt ~tensor ~order =
  let vars = List.init order var in
  Tin.assign tensor vars (Tin.access tensor vars)

(* Fuse dims 0..k into a single variable, left to right. *)
let fuse_chain dims =
  match dims with
  | [] | [ _ ] -> invalid_arg "Tdn: fusion needs at least two dimensions"
  | d0 :: rest ->
      let cmds, last =
        List.fold_left
          (fun (cmds, prev) d ->
            let f = prev ^ var d in
            (Schedule.Fuse { f; a = prev; b = var d } :: cmds, f))
          ([], var d0) rest
      in
      (List.rev cmds, last)

let to_schedule ~tensor ~order tdn =
  let stmt = identity_stmt ~tensor ~order in
  let sched =
    match tdn with
    | Replicated -> invalid_arg "Tdn.to_schedule: Replicated has no partition"
    | Blocked { tensor_dim; _ } | Tiled { mappings = [ (tensor_dim, _) ] } ->
        let v = var tensor_dim in
        [
          Schedule.Divide { v; outer = v ^ "o"; inner = v ^ "i" };
          Schedule.Distribute [ v ^ "o" ];
          Schedule.Communicate { tensors = [ tensor ]; at = v ^ "o" };
        ]
    | Tiled _ ->
        invalid_arg "Tdn.to_schedule: multi-dim tilings are mapping-only here"
    | Non_zero { tensor_dim; _ } ->
        (* Non-zero split of one dimension's stored coordinates: iterate that
           dimension in position space, then divide/distribute. *)
        let v = var tensor_dim in
        let pv = v ^ "p" in
        [
          Schedule.Pos { v; pv; tensor };
          Schedule.Divide { v = pv; outer = pv ^ "o"; inner = pv ^ "i" };
          Schedule.Distribute [ pv ^ "o" ];
          Schedule.Communicate { tensors = [ tensor ]; at = pv ^ "o" };
        ]
    | Fused_non_zero { dims; _ } ->
        let fuses, f = fuse_chain dims in
        let pv = f ^ "p" in
        fuses
        @ [
            Schedule.Pos { v = f; pv; tensor };
            Schedule.Divide { v = pv; outer = pv ^ "o"; inner = pv ^ "i" };
            Schedule.Distribute [ pv ^ "o" ];
            Schedule.Communicate { tensors = [ tensor ]; at = pv ^ "o" };
          ]
  in
  (stmt, sched)

let pp ~tensor fmt tdn =
  let subs dims = String.concat "" (List.map var dims) in
  match tdn with
  | Blocked { tensor_dim; machine_dim } ->
      Format.fprintf fmt "%s |->_%s M.%d" tensor (var tensor_dim) machine_dim
  | Tiled { mappings } ->
      Format.fprintf fmt "%s_{%s} |-> M" tensor
        (subs (List.map fst mappings))
  | Non_zero { tensor_dim; machine_dim } ->
      Format.fprintf fmt "%s |->_~%s M.%d" tensor (var tensor_dim) machine_dim
  | Fused_non_zero { dims; machine_dim } ->
      Format.fprintf fmt "%s |->^{%s->f}_~f M.%d" tensor (subs dims) machine_dim
  | Replicated -> Format.fprintf fmt "%s replicated on M" tensor
