type access = { tensor : string; indices : string list }

type expr =
  | Access of access
  | Add of expr * expr
  | Mul of expr * expr
  | Lit of float

type stmt = { lhs : access; rhs : expr }

let access tensor indices = Access { tensor; indices }
let ( + ) a b = Add (a, b)
let ( * ) a b = Mul (a, b)
let assign tensor indices rhs = { lhs = { tensor; indices }; rhs }

let rec expr_accesses = function
  | Access a -> [ a ]
  | Add (a, b) | Mul (a, b) -> expr_accesses a @ expr_accesses b
  | Lit _ -> []

let rhs_accesses s = expr_accesses s.rhs

let index_vars s =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  List.iter note s.lhs.indices;
  List.iter (fun a -> List.iter note a.indices) (rhs_accesses s);
  List.rev !out

let reduction_vars s =
  List.filter (fun v -> not (List.mem v s.lhs.indices)) (index_vars s)

let is_pure_addition s =
  let rec go = function
    | Access _ | Lit _ -> true
    | Add (a, b) -> go a && go b
    | Mul _ -> false
  in
  go s.rhs

let validate ~order_of s =
  let check a =
    let expected = order_of a.tensor in
    if List.length a.indices <> expected then
      invalid_arg
        (Printf.sprintf "Tin.validate: %s accessed with %d indices, order %d"
           a.tensor (List.length a.indices) expected)
  in
  check s.lhs;
  List.iter check (rhs_accesses s);
  let rhs_vars =
    List.concat_map (fun a -> a.indices) (rhs_accesses s)
  in
  List.iter
    (fun v ->
      if not (List.mem v rhs_vars) then
        invalid_arg
          (Printf.sprintf "Tin.validate: lhs var %s not bound on the rhs" v))
    s.lhs.indices

let pp_access fmt a =
  Format.fprintf fmt "%s(%s)" a.tensor (String.concat "," a.indices)

let rec pp_expr fmt = function
  | Access a -> pp_access fmt a
  | Add (a, b) -> Format.fprintf fmt "%a + %a" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf fmt "%a * %a" pp_mul a pp_mul b
  | Lit f -> Format.fprintf fmt "%g" f

and pp_mul fmt = function
  | Add _ as e -> Format.fprintf fmt "(%a)" pp_expr e
  | e -> pp_expr fmt e

let pp fmt s = Format.fprintf fmt "%a = %a" pp_access s.lhs pp_expr s.rhs
let to_string s = Format.asprintf "%a" pp s

let spmv = assign "a" [ "i" ] (access "B" [ "i"; "j" ] * access "c" [ "j" ])

let spmm =
  assign "A" [ "i"; "j" ] (access "B" [ "i"; "k" ] * access "C" [ "k"; "j" ])

let spadd3 =
  assign "A" [ "i"; "j" ]
    (access "B" [ "i"; "j" ] + access "C" [ "i"; "j" ] + access "D" [ "i"; "j" ])

let sddmm =
  assign "A" [ "i"; "j" ]
    (access "B" [ "i"; "j" ] * access "C" [ "i"; "k" ] * access "D" [ "k"; "j" ])

let spttv =
  assign "A" [ "i"; "j" ] (access "B" [ "i"; "j"; "k" ] * access "c" [ "k" ])

let spmttkrp =
  assign "A" [ "i"; "l" ]
    (access "B" [ "i"; "j"; "k" ] * access "C" [ "j"; "l" ] * access "D" [ "k"; "l" ])
