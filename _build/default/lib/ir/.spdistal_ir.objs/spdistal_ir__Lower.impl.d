lib/ir/lower.ml: Array Level_funcs List Loop_ir Option Printf Schedule Spdistal_formats Tdn Tin
