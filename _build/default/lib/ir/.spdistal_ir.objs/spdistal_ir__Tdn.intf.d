lib/ir/tdn.mli: Format Schedule Tin
