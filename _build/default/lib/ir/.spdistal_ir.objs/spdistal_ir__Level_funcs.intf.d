lib/ir/level_funcs.mli: Loop_ir Spdistal_formats
