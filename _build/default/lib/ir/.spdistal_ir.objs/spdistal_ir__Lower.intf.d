lib/ir/lower.mli: Loop_ir Schedule Spdistal_formats Tdn Tin
