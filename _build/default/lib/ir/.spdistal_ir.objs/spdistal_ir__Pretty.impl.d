lib/ir/pretty.ml: Format List Loop_ir Printf String Tin
