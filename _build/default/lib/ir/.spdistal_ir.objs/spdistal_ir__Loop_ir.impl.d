lib/ir/loop_ir.ml: Array List Tin
