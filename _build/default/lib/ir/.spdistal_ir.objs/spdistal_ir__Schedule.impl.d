lib/ir/schedule.ml: Format Hashtbl List Printf String Tin
