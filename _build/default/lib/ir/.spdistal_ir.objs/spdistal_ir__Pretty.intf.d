lib/ir/pretty.mli: Format Loop_ir
