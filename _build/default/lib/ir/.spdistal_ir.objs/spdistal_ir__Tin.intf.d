lib/ir/tin.mli: Format
