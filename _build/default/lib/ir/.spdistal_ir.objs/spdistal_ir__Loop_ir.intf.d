lib/ir/loop_ir.mli: Tin
