lib/ir/schedule.mli: Format Tin
