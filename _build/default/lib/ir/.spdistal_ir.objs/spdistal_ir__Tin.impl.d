lib/ir/tin.ml: Format Hashtbl List Printf String
