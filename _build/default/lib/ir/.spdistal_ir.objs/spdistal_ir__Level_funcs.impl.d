lib/ir/level_funcs.ml: Loop_ir Printf Spdistal_formats
