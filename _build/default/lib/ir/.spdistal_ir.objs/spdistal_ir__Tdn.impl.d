lib/ir/tdn.ml: Array Format List Printf Schedule String Tin
