(** Tensor distribution notation (TDN), the data distribution language
    (paper §II-B, Fig. 4/5).

    A TDN statement maps tensor dimensions onto machine grid dimensions.
    SpDISTAL extends DISTAL's TDN with {e non-zero partitions} (the tilde
    operator: equal split of stored coordinates rather than of the coordinate
    universe) and {e coordinate fusion} (collapse several dimensions into one
    logical dimension, then non-zero split it) — e.g.
    [T_xy |->^{xy->f}_{~f} M] distributes a matrix's non-zeros evenly.

    Per paper §V-C, a TDN statement is implemented by translating it to a
    scheduled TIN statement ([divide] + [distribute], with [fuse] and the
    position-space [divide] for non-zero partitions); see
    {!to_schedule}. *)

type t =
  | Blocked of { tensor_dim : int; machine_dim : int }
      (** universe partition of one dimension: [T_x.. |->_x M] *)
  | Tiled of { mappings : (int * int) list }
      (** several dimensions blocked onto several machine dims (Fig. 4c) *)
  | Non_zero of { tensor_dim : int; machine_dim : int }
      (** non-zero partition of one dimension: [T |->_~x M] (Fig. 5b) *)
  | Fused_non_zero of { dims : int list; machine_dim : int }
      (** coordinate fusion then non-zero partition (Fig. 5c) *)
  | Replicated  (** every piece holds the whole tensor *)

(** [to_schedule ~tensor ~order tdn] builds the §V-C scheduled identity
    statement: a TIN access of every mode of [tensor] plus the schedule that
    partitions it as [tdn] prescribes.  Raises on [Replicated] (replication
    is a mapping decision, not a partition) and on multi-dim [Tiled] (only
    its first mapping is partition-relevant for 1-D machines). *)
val to_schedule : tensor:string -> order:int -> t -> Tin.stmt * Schedule.t

(** Render in the paper's notation, e.g. ["B_{xy} |->^{xy->f}_{~f} M"]. *)
val pp : tensor:string -> Format.formatter -> t -> unit
