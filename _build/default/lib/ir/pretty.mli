(** Rendering of lowered programs in the style of the paper's generated
    pseudo-code (Fig. 9b), so compiled partitioning plans are inspectable. *)

val pp_aexpr : Format.formatter -> Loop_ir.aexpr -> unit
val pp_rref : Format.formatter -> Loop_ir.rref -> unit
val pp_stmt : Format.formatter -> Loop_ir.stmt -> unit
val pp_prog : Format.formatter -> Loop_ir.prog -> unit
val prog_to_string : Loop_ir.prog -> string
