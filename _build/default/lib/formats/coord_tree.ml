type node = { coord : int; children : node list; value : float option }
type t = { dims : int array; roots : node list }

let of_tensor tensor =
  let ord = Tensor.order tensor in
  (* Gather storage-order paths, then fold the sorted paths into a tree. *)
  let paths = ref [] in
  Tensor.iter_nnz tensor (fun logical _ v ->
      let storage =
        Array.to_list
          (Array.map (fun m -> logical.(m)) tensor.Tensor.mode_order)
      in
      paths := (storage, v) :: !paths);
  let paths = List.rev !paths in
  let rec build depth paths =
    if depth = ord then []
    else
      (* Group consecutive paths by head coordinate. *)
      let rec group = function
        | [] -> []
        | (c :: rest, v) :: more ->
            let same, others =
              List.partition (fun (p, _) -> List.hd p = c) ((c :: rest, v) :: more)
            in
            let tails = List.map (fun (p, v) -> (List.tl p, v)) same in
            let value =
              if depth = ord - 1 then Some (snd (List.hd same)) else None
            in
            { coord = c; children = build (depth + 1) tails; value } :: group others
        | ([], _) :: _ -> invalid_arg "Coord_tree: ragged path"
      in
      group paths
  in
  { dims = tensor.Tensor.dims; roots = build 0 paths }

let paths t =
  let acc = ref [] in
  let rec go prefix n =
    match (n.children, n.value) with
    | [], Some v -> acc := (List.rev (n.coord :: prefix), v) :: !acc
    | children, _ -> List.iter (go (n.coord :: prefix)) children
  in
  List.iter (go []) t.roots;
  List.rev !acc

let level_width t k =
  let rec count depth nodes =
    if depth = k then List.length nodes
    else count (depth + 1) (List.concat_map (fun n -> n.children) nodes)
  in
  count 0 t.roots

let rec pp_node fmt n =
  match n.value with
  | Some v -> Format.fprintf fmt "%d=%g" n.coord v
  | None ->
      Format.fprintf fmt "%d(%a)" n.coord
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") pp_node)
        n.children

let pp fmt t =
  Format.fprintf fmt "@[<h>root(%a)@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") pp_node)
    t.roots
