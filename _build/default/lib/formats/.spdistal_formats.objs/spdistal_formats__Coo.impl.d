lib/formats/coo.ml: Array List Printf
