lib/formats/coo.mli:
