lib/formats/tensor.mli: Coo Format Level Region Spdistal_runtime
