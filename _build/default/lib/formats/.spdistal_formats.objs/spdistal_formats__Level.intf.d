lib/formats/level.mli: Format Region Spdistal_runtime
