lib/formats/convert.ml: Array Coo Level Tensor
