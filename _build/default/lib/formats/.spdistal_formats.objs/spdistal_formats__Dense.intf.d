lib/formats/dense.mli:
