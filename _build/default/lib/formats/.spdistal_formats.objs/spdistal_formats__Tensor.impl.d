lib/formats/tensor.ml: Array Coo Format Level List Region Spdistal_runtime
