lib/formats/assemble.mli: Tensor
