lib/formats/coord_tree.mli: Format Tensor
