lib/formats/coord_tree.ml: Array Format List Tensor
