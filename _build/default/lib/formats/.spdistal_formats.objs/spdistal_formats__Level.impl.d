lib/formats/level.ml: Format Region Spdistal_runtime
