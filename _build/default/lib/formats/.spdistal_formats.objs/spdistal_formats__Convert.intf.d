lib/formats/convert.mli: Level Tensor
