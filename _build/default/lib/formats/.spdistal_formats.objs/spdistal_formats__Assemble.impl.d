lib/formats/assemble.ml: Array Level Region Spdistal_runtime Tensor
