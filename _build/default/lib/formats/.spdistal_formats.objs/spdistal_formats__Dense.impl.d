lib/formats/dense.ml: Array Float
