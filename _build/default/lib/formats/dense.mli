(** Dense vectors and matrices — the dense operands of the evaluation kernels
    (SpMV's [c], SpMM's [C], SDDMM's factors, MTTKRP's factor matrices). *)

type vec = { name : string; n : int; data : float array }

type mat = {
  name : string;
  rows : int;
  cols : int;
  data : float array;  (** row-major *)
}

val vec_create : string -> int -> vec
val vec_init : string -> int -> (int -> float) -> vec
val vec_get : vec -> int -> float
val vec_set : vec -> int -> float -> unit
val vec_fill : vec -> float -> unit
val vec_bytes : vec -> float

(** Infinity-norm distance, for approximate equality in tests. *)
val vec_dist : vec -> vec -> float

val mat_create : string -> int -> int -> mat
val mat_init : string -> int -> int -> (int -> int -> float) -> mat
val mat_get : mat -> int -> int -> float
val mat_set : mat -> int -> int -> float -> unit
val mat_fill : mat -> float -> unit
val mat_bytes : mat -> float
val mat_dist : mat -> mat -> float

(** Bytes of one matrix row. *)
val mat_row_bytes : mat -> float
