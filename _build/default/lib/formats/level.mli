(** Level formats: per-dimension storage of a tensor's coordinate tree
    (paper §II-B, §III-B, Fig. 7).

    A level maps each {e parent position} to the coordinates present at this
    tree level and to the {e positions} that index the next level:
    - [Dense] stores every coordinate of the dimension: position arithmetic
      is [parent_pos * dim + coord]; nothing is materialized except the
      universe size.
    - [Compressed] stores non-zero coordinates in a [crd] region and, per
      parent position, an inclusive [(lo, hi)] range of [crd] indices in a
      [pos] region — the tuple encoding SpDISTAL uses so that [pos] values
      are index spaces amenable to image/preimage (paper Fig. 7). *)

open Spdistal_runtime

type kind =
  | Dense_k
  | Compressed_k
  | Compressed_nonunique_k
      (** like [Compressed_k] but duplicate coordinates under one parent are
          kept as distinct positions — the row level of a COO matrix (paper
          Fig. 3's coordinate encoding) *)
  | Singleton_k
      (** exactly one coordinate per parent position, stored in a [crd]
          parallel to the parent's positions — the trailing levels of COO *)

type t =
  | Dense of { dim : int }
  | Compressed of { pos : (int * int) Region.t; crd : int Region.t }
  | Singleton of { crd : int Region.t }

val kind : t -> kind

(** Number of positions this level exposes to its child, given the parent's
    position extent. *)
val extent : parent_extent:int -> t -> int

(** Storage footprint in bytes (8 B per pos tuple half / crd entry). *)
val bytes : t -> int

val pp : Format.formatter -> t -> unit
