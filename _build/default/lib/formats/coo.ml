type t = { dims : int array; coords : int array array; vals : float array }

let order t = Array.length t.dims
let nnz t = Array.length t.vals

let make dims entries =
  let order = Array.length dims in
  let n = List.length entries in
  let coords = Array.init order (fun _ -> Array.make n 0) in
  let vals = Array.make n 0. in
  List.iteri
    (fun k (c, v) ->
      if Array.length c <> order then invalid_arg "Coo.make: arity mismatch";
      Array.iteri
        (fun d cd ->
          if cd < 0 || cd >= dims.(d) then
            invalid_arg
              (Printf.sprintf "Coo.make: coord %d out of bounds [0,%d) in dim %d"
                 cd dims.(d) d);
          coords.(d).(k) <- cd)
        c;
      vals.(k) <- v)
    entries;
  { dims; coords; vals }

let compare_at t i j =
  let rec go d =
    if d = order t then 0
    else
      let c = compare t.coords.(d).(i) t.coords.(d).(j) in
      if c <> 0 then c else go (d + 1)
  in
  go 0

let sort_dedup ?(drop_zeros = false) t =
  let n = nnz t in
  let idx = Array.init n (fun i -> i) in
  Array.sort (compare_at t) idx;
  (* Walk sorted entries, summing runs of equal coordinates. *)
  let out_coords = Array.map (fun _ -> ref []) t.coords in
  let out_vals = ref [] in
  let emit k v =
    if not (drop_zeros && v = 0.) then begin
      Array.iteri (fun d l -> l := t.coords.(d).(k) :: !l) out_coords;
      out_vals := v :: !out_vals
    end
  in
  let i = ref 0 in
  while !i < n do
    let k = idx.(!i) in
    let acc = ref t.vals.(k) in
    incr i;
    while !i < n && compare_at t k idx.(!i) = 0 do
      acc := !acc +. t.vals.(idx.(!i));
      incr i
    done;
    emit k !acc
  done;
  {
    dims = t.dims;
    coords = Array.map (fun l -> Array.of_list (List.rev !l)) out_coords;
    vals = Array.of_list (List.rev !out_vals);
  }

let permute t perm =
  if Array.length perm <> order t then invalid_arg "Coo.permute";
  {
    dims = Array.map (fun d -> t.dims.(d)) perm;
    coords = Array.map (fun d -> t.coords.(d)) perm;
    vals = t.vals;
  }

let iter f t =
  let ord = order t in
  let c = Array.make ord 0 in
  for k = 0 to nnz t - 1 do
    for d = 0 to ord - 1 do
      c.(d) <- t.coords.(d).(k)
    done;
    f c t.vals.(k)
  done

let to_alist t =
  let acc = ref [] in
  iter (fun c v -> acc := (Array.to_list c, v) :: !acc) t;
  List.rev !acc

let equal a b =
  a.dims = b.dims
  && to_alist (sort_dedup a) = to_alist (sort_dedup b)
