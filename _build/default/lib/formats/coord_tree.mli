(** Explicit coordinate trees (paper Fig. 7): the semantic model behind level
    formats.  One tree level per tensor dimension; each root-to-leaf path is
    a stored coordinate.  Used by tests to validate level-format encodings
    and by the partitioning layer's documentation of derived partitions
    (paper Fig. 8). *)

type node = { coord : int; children : node list; value : float option }
type t = { dims : int array; roots : node list }

(** Build the coordinate tree of a tensor (in storage order). *)
val of_tensor : Tensor.t -> t

(** All root-to-leaf coordinate paths with their values, in order. *)
val paths : t -> (int list * float) list

(** Number of nodes at tree level [k] (0-based). *)
val level_width : t -> int -> int

val pp : Format.formatter -> t -> unit
