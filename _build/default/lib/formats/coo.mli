(** Coordinate-list (COO) tensors: the interchange format every level-based
    tensor is assembled from and lowered back to.

    Stored struct-of-arrays: [coords.(d).(k)] is the coordinate of non-zero
    [k] along dimension [d]. *)

type t = {
  dims : int array;  (** universe size of each dimension *)
  coords : int array array;  (** [order] arrays of length [nnz] *)
  vals : float array;
}

val order : t -> int
val nnz : t -> int

(** [make dims entries] from a list of (coordinate tuple, value). Validates
    bounds. *)
val make : int array -> (int array * float) list -> t

(** Lexicographic sort (by coordinate tuple) combined with summing duplicate
    coordinates. Drops explicit zeros produced by cancellation only if
    [drop_zeros]. *)
val sort_dedup : ?drop_zeros:bool -> t -> t

(** [permute t perm] reorders dimensions: new dimension [d] is old dimension
    [perm.(d)] (e.g. [|1;0|] transposes a matrix). *)
val permute : t -> int array -> t

val iter : (int array -> float -> unit) -> t -> unit

(** Association list view, for tests. *)
val to_alist : t -> (int list * float) list

val equal : t -> t -> bool
