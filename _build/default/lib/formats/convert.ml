let reformat ~name ~formats ?mode_order t =
  Tensor.of_coo ~name ~formats ?mode_order (Tensor.to_coo t)

let csr_to_csc t =
  Tensor.csc ~name:(t.Tensor.name ^ "_csc") (Tensor.to_coo t)

let csc_to_csr t =
  Tensor.csr ~name:(t.Tensor.name ^ "_csr") (Tensor.to_coo t)

let transpose ~name t =
  if Tensor.order t <> 2 then invalid_arg "Convert.transpose: order <> 2";
  let coo = Tensor.to_coo t in
  let swapped = Coo.permute coo [| 1; 0 |] in
  Tensor.of_coo ~name
    ~formats:(Array.map Level.kind t.Tensor.levels)
    swapped
