open Spdistal_runtime

type kind = Dense_k | Compressed_k | Compressed_nonunique_k | Singleton_k

type t =
  | Dense of { dim : int }
  | Compressed of { pos : (int * int) Region.t; crd : int Region.t }
  | Singleton of { crd : int Region.t }

let kind = function
  | Dense _ -> Dense_k
  | Compressed _ -> Compressed_k
  | Singleton _ -> Singleton_k

let extent ~parent_extent = function
  | Dense { dim } -> parent_extent * dim
  | Compressed { crd; _ } -> Region.extent crd
  | Singleton _ -> parent_extent

let bytes = function
  | Dense _ -> 0
  | Compressed { pos; crd } ->
      Region.bytes ~elt_bytes:16 pos + Region.bytes ~elt_bytes:8 crd
  | Singleton { crd } -> Region.bytes ~elt_bytes:8 crd

let pp fmt = function
  | Dense { dim } -> Format.fprintf fmt "Dense(%d)" dim
  | Compressed { crd; _ } ->
      Format.fprintf fmt "Compressed(%d nnz)" (Region.extent crd)
  | Singleton { crd } ->
      Format.fprintf fmt "Singleton(%d nnz)" (Region.extent crd)
