(** Matrix format conversions (CSR/CSC/COO round trips) and transposition,
    built on the COO interchange representation. *)

val csr_to_csc : Tensor.t -> Tensor.t
val csc_to_csr : Tensor.t -> Tensor.t

(** Transpose a 2-tensor, keeping its storage format kinds. *)
val transpose : name:string -> Tensor.t -> Tensor.t

(** [reformat ~name ~formats ?mode_order t] re-assembles [t] with new level
    kinds / storage order. *)
val reformat :
  name:string ->
  formats:Level.kind array ->
  ?mode_order:int array ->
  Tensor.t ->
  Tensor.t
