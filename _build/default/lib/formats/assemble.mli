(** Two-phase parallel assembly of sparse outputs with unknown sparsity
    (Chou et al. [28]; paper §V-B).

    Phase one symbolically executes the kernel to {e count} output non-zeros
    per row; a prefix sum then fixes every row's output range so phase two can
    {e fill} coordinates and values without synchronization.  The same
    mechanism serves sparse additions and format conversions. *)

type staged = {
  pos : (int * int) array;  (** per-row inclusive output ranges *)
  total : int;
}

(** [stage ~rows ~count] runs the symbolic phase: [count r] is the number of
    output non-zeros of row [r]. *)
val stage : rows:int -> count:(int -> int) -> staged

(** [fill st ~row_fill ~name ~dims] runs the numeric phase into freshly
    allocated [crd]/[vals] storage and returns a CSR-shaped 2-tensor.
    [row_fill r emit] must call [emit col value] exactly [count r] times, in
    increasing column order. *)
val fill :
  staged ->
  row_fill:(int -> (int -> float -> unit) -> unit) ->
  name:string ->
  dims:int array ->
  Tensor.t

(** [copy_pattern ~name ?levels src] allocates an output tensor sharing the
    first [levels] (default: all) levels of [src]'s coordinate metadata — the
    §V-B fast path for pattern-preserving statements (SDDMM keeps all of
    [B]'s pattern; SpTTV keeps the first two levels of a 3-tensor) — with
    fresh zero values sized by the last kept level's extent. *)
val copy_pattern : name:string -> ?levels:int -> Tensor.t -> Tensor.t
