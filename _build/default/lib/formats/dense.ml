type vec = { name : string; n : int; data : float array }
type mat = { name : string; rows : int; cols : int; data : float array }

let vec_create name n = { name; n; data = Array.make n 0. }
let vec_init name n f = { name; n; data = Array.init n f }
let vec_get (v : vec) i = v.data.(i)
let vec_set (v : vec) i x = v.data.(i) <- x
let vec_fill (v : vec) x = Array.fill v.data 0 v.n x
let vec_bytes (v : vec) = 8. *. float_of_int v.n

let vec_dist (a : vec) (b : vec) =
  if a.n <> b.n then invalid_arg "Dense.vec_dist";
  let d = ref 0. in
  for i = 0 to a.n - 1 do
    d := Float.max !d (Float.abs (a.data.(i) -. b.data.(i)))
  done;
  !d

let mat_create name rows cols = { name; rows; cols; data = Array.make (rows * cols) 0. }

let mat_init name rows cols f =
  { name; rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let mat_get m i j = m.data.((i * m.cols) + j)
let mat_set m i j x = m.data.((i * m.cols) + j) <- x
let mat_fill m x = Array.fill m.data 0 (m.rows * m.cols) x
let mat_bytes m = 8. *. float_of_int (m.rows * m.cols)

let mat_dist a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Dense.mat_dist";
  let d = ref 0. in
  for k = 0 to (a.rows * a.cols) - 1 do
    d := Float.max !d (Float.abs (a.data.(k) -. b.data.(k)))
  done;
  !d

let mat_row_bytes m = 8. *. float_of_int m.cols
