open Spdistal_runtime

let time_cell = function
  | Some t -> Printf.sprintf "%.9f" t
  | None -> "DNC"

let fig10 cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kernel,system,nodes,tensor,seconds\n";
  List.iter
    (fun (c : Fig10.cell) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%s,%s\n"
           (Runner.kernel_name c.Fig10.kernel)
           (Runner.system_name c.Fig10.system)
           c.Fig10.nodes c.Fig10.tensor (time_cell c.Fig10.time)))
    cells;
  Buffer.contents b

let fig11 cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kernel,system,gpus,tensor,seconds\n";
  List.iter
    (fun (c : Fig11.cell) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%s,%s\n"
           (Runner.kernel_name c.Fig11.kernel)
           (Runner.system_name c.Fig11.system)
           c.Fig11.gpus c.Fig11.tensor (time_cell c.Fig11.time)))
    cells;
  Buffer.contents b

let fig12 cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kernel,nodes,tensor,gpu_seconds,cpu_seconds\n";
  List.iter
    (fun (c : Fig12.cell) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%s,%s\n"
           (Runner.kernel_name c.Fig12.kernel)
           c.Fig12.nodes c.Fig12.tensor
           (time_cell c.Fig12.gpu_time)
           (time_cell c.Fig12.cpu_time)))
    cells;
  Buffer.contents b

let fig13 points =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kind,pieces,system,seconds\n";
  List.iter
    (fun (p : Fig13.point) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%s\n"
           (match p.Fig13.kind with Machine.Cpu -> "cpu" | Machine.Gpu -> "gpu")
           p.Fig13.pieces
           (Runner.system_name p.Fig13.system)
           (time_cell p.Fig13.time)))
    points;
  Buffer.contents b

let write_all ~dir ~fig10:c10 ~fig11:c11 ~fig12:c12 ~fig13:c13 =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  [
    write "fig10.csv" (fig10 c10);
    write "fig11.csv" (fig11 c11);
    write "fig12.csv" (fig12 c12);
    write "fig13.csv" (fig13 c13);
  ]
