open Spdistal_workloads

type cell = {
  kernel : Runner.kernel;
  nodes : int;
  tensor : string;
  gpu_time : float option;
  cpu_time : float option;
}

let node_counts = [ 1; 2; 4; 8; 16 ]
let kernels = [ Runner.Spttv; Runner.Mttkrp ]

let time_of (r : Spdistal_baselines.Common.result) =
  match r.Spdistal_baselines.Common.dnc with
  | None -> Some r.Spdistal_baselines.Common.time
  | Some _ -> None

let compute ?(quick = false) () =
  let node_counts = if quick then [ 1; 4 ] else node_counts in
  let datasets =
    if quick then List.filteri (fun i _ -> i < 2) Datasets.tensors3
    else Datasets.tensors3
  in
  List.concat_map
    (fun kernel ->
      List.concat_map
        (fun (e : Datasets.entry) ->
          let b = e.Datasets.load () in
          List.map
            (fun nodes ->
              let gm = Runner.gpu_machine ~gpus:(4 * nodes) in
              let cm = Runner.cpu_machine ~nodes in
              let g = Runner.run ~kernel ~system:Runner.Spdistal ~machine:gm b in
              let c =
                Runner.run ~kernel ~system:Runner.Spdistal_cpu_leaf ~machine:cm b
              in
              {
                kernel;
                nodes;
                tensor = e.Datasets.ds_name;
                gpu_time = time_of g;
                cpu_time = time_of c;
              })
            node_counts)
        datasets)
    kernels

let median = function
  | [] -> None
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      Some (if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.)

let median_gpu_speedup cells ~kernel =
  median
    (List.filter_map
       (fun c ->
         if c.kernel = kernel then
           match (c.gpu_time, c.cpu_time) with
           | Some g, Some cp when g > 0. -> Some (cp /. g)
           | _ -> None
         else None)
       cells)

let print fmt cells =
  Format.fprintf fmt
    "@[<v>=== Figure 12: SpDISTAL GPU vs CPU kernels (speedup of the faster \
     system per box) ===@,";
  List.iter
    (fun kernel ->
      let kcells = List.filter (fun c -> c.kernel = kernel) cells in
      if kcells <> [] then begin
        let counts = List.sort_uniq compare (List.map (fun c -> c.nodes) kcells) in
        let tensors = List.sort_uniq compare (List.map (fun c -> c.tensor) kcells) in
        Format.fprintf fmt "@,-- %s --@," (Runner.kernel_name kernel);
        Format.fprintf fmt "%-18s" "tensor \\ nodes";
        List.iter (fun n -> Format.fprintf fmt " %12d" n) counts;
        Format.fprintf fmt "@,";
        List.iter
          (fun tensor ->
            Format.fprintf fmt "%-18s" tensor;
            List.iter
              (fun nodes ->
                match
                  List.find_opt (fun c -> c.tensor = tensor && c.nodes = nodes) kcells
                with
                | Some { gpu_time = Some g; cpu_time = Some c; _ } ->
                    if g <= c then Format.fprintf fmt " %9.2fxGPU" (c /. g)
                    else Format.fprintf fmt " %9.2fxCPU" (g /. c)
                | Some { gpu_time = None; cpu_time = Some _; _ } ->
                    Format.fprintf fmt " %12s" "GPU-DNC"
                | Some { gpu_time = Some _; cpu_time = None; _ } ->
                    Format.fprintf fmt " %12s" "CPU-DNC"
                | _ -> Format.fprintf fmt " %12s" "DNC")
              counts;
            Format.fprintf fmt "@,")
          tensors;
        match median_gpu_speedup cells ~kernel with
        | Some m -> Format.fprintf fmt "median GPU speedup: %.2fx@," m
        | None -> ()
      end)
    kernels;
  Format.fprintf fmt "@]"
