(** Reproduction of paper Figure 12: GPU-vs-CPU heatmaps for SpTTV and
    SpMTTKRP.  Each box compares SpDISTAL's GPU kernel (non-zero-based, 4
    GPUs per node) against SpDISTAL's CPU kernel (row-based, all cores) on
    the same number of nodes, reporting the speedup of the faster system. *)

type cell = {
  kernel : Runner.kernel;
  nodes : int;
  tensor : string;
  gpu_time : float option;
  cpu_time : float option;
}

val compute : ?quick:bool -> unit -> cell list
val print : Format.formatter -> cell list -> unit

(** Median GPU speedup over completing cells for a kernel (paper: 2.0x
    SpTTV, 2.2x SpMTTKRP when data fits). *)
val median_gpu_speedup : cell list -> kernel:Runner.kernel -> float option
