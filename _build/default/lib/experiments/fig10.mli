(** Reproduction of paper Figure 10: CPU strong scaling of SpMV, SpMM,
    SpAdd3, SDDMM, SpTTV and SpMTTKRP for SpDISTAL, PETSc, Trilinos and CTF
    over the Table II dataset analogs.

    Each cell is one (kernel, system, node count, tensor) run; the printed
    series are speedups normalized to SpDISTAL on one node, averaged
    (geometric mean) over tensors, matching the paper's presentation, plus
    the per-system median speedup the paper quotes in §VI-A1. *)

type cell = {
  kernel : Runner.kernel;
  system : Runner.system;
  nodes : int;
  tensor : string;
  time : float option;  (** [None] = DNC *)
  dnc_reason : string option;
}

(** [compute ~quick ()] — [quick] restricts to two tensors per kernel and
    node counts {1,4} (used by tests). *)
val compute : ?quick:bool -> unit -> cell list

val print : Format.formatter -> cell list -> unit

(** Median over (tensor, nodes) cells of [t_other / t_spdistal] at equal
    node count; the paper's headline numbers. *)
val median_speedup :
  cell list -> kernel:Runner.kernel -> vs:Runner.system -> float option
