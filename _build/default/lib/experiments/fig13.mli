(** Reproduction of paper Figure 13: SpMV weak scaling on synthetic banded
    matrices, SpDISTAL vs PETSc, CPUs and GPUs.

    The problem grows with the machine (a constant number of non-zeros per
    piece); ideal weak scaling keeps iteration time flat.  The paper reports
    PETSc scaling perfectly, SpDISTAL's CPU kernel at 90-92% of PETSc, and
    SpDISTAL's GPU kernel 1.05-1.29x {e faster} than PETSc's (deferred
    execution hiding synchronization). *)

type point = {
  kind : Spdistal_runtime.Machine.proc_kind;
  pieces : int;  (** nodes (CPU) or GPUs *)
  system : Runner.system;
  time : float option;
}

(** [compute ~quick ()] — full mode scales CPUs to 64 nodes and GPUs to 256
    GPUs with ~35k non-zeros per piece (a further 4x size reduction from the
    dataset scale, noted in EXPERIMENTS.md). *)
val compute : ?quick:bool -> unit -> point list

val print : Format.formatter -> point list -> unit
