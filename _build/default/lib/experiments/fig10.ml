open Spdistal_runtime
open Spdistal_workloads

type cell = {
  kernel : Runner.kernel;
  system : Runner.system;
  nodes : int;
  tensor : string;
  time : float option;
  dnc_reason : string option;
}

let node_counts = [ 1; 2; 4; 8; 16; 32 ]

let datasets_for kernel =
  match kernel with
  | Runner.Spttv | Runner.Mttkrp -> Datasets.tensors3
  | Runner.Spmv | Runner.Spmm | Runner.Spadd3 | Runner.Sddmm -> Datasets.matrices

let compute ?(quick = false) () =
  let node_counts = if quick then [ 1; 4 ] else node_counts in
  let cells = ref [] in
  List.iter
    (fun kernel ->
      let datasets = datasets_for kernel in
      let datasets =
        if quick then List.filteri (fun i _ -> i < 2) datasets else datasets
      in
      List.iter
        (fun (e : Datasets.entry) ->
          let b = e.Datasets.load () in
          List.iter
            (fun nodes ->
              let machine = Runner.cpu_machine ~nodes in
              List.iter
                (fun system ->
                  let r = Runner.run ~kernel ~system ~machine b in
                  cells :=
                    {
                      kernel;
                      system;
                      nodes;
                      tensor = e.Datasets.ds_name;
                      time =
                        (match r.Spdistal_baselines.Common.dnc with
                        | None -> Some r.Spdistal_baselines.Common.time
                        | Some _ -> None);
                      dnc_reason = r.Spdistal_baselines.Common.dnc;
                    }
                    :: !cells)
                (Runner.systems_for kernel Machine.Cpu))
            node_counts)
        datasets)
    Runner.all_kernels;
  List.rev !cells

let find cells ~kernel ~system ~nodes ~tensor =
  List.find_opt
    (fun c ->
      c.kernel = kernel && c.system = system && c.nodes = nodes
      && c.tensor = tensor)
    cells

let geomean = function
  | [] -> None
  | xs ->
      Some (exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs)))

let median = function
  | [] -> None
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      Some (if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.)

let median_speedup cells ~kernel ~vs =
  let ratios =
    List.filter_map
      (fun c ->
        if c.kernel = kernel && c.system = vs then
          match
            ( c.time,
              Option.bind
                (find cells ~kernel ~system:Runner.Spdistal ~nodes:c.nodes
                   ~tensor:c.tensor)
                (fun s -> s.time) )
          with
          | Some t_other, Some t_spd when t_spd > 0. -> Some (t_other /. t_spd)
          | _ -> None
        else None)
      cells
  in
  median ratios

let print fmt cells =
  let kernels = List.sort_uniq compare (List.map (fun c -> c.kernel) cells) in
  let nodes_list = List.sort_uniq compare (List.map (fun c -> c.nodes) cells) in
  Format.fprintf fmt
    "@[<v>=== Figure 10: CPU strong scaling (speedup vs SpDISTAL on 1 node, \
     geomean over tensors) ===@,";
  List.iter
    (fun kernel ->
      Format.fprintf fmt "@,-- %s --@," (Runner.kernel_name kernel);
      Format.fprintf fmt "%-18s" "system \\ nodes";
      List.iter (fun n -> Format.fprintf fmt "%10d" n) nodes_list;
      Format.fprintf fmt "@,";
      let systems =
        List.sort_uniq compare
          (List.filter_map
             (fun c -> if c.kernel = kernel then Some c.system else None)
             cells)
      in
      List.iter
        (fun system ->
          Format.fprintf fmt "%-18s" (Runner.system_name system);
          List.iter
            (fun nodes ->
              let speedups =
                List.filter_map
                  (fun c ->
                    if c.kernel = kernel && c.system = system && c.nodes = nodes
                    then
                      match
                        ( c.time,
                          Option.bind
                            (find cells ~kernel ~system:Runner.Spdistal ~nodes:1
                               ~tensor:c.tensor)
                            (fun s -> s.time) )
                      with
                      | Some t, Some base when t > 0. -> Some (base /. t)
                      | _ -> None
                    else None)
                  cells
              in
              match geomean speedups with
              | Some g -> Format.fprintf fmt "%10.2f" g
              | None -> Format.fprintf fmt "%10s" "DNC")
            nodes_list;
          (match median_speedup cells ~kernel ~vs:system with
          | Some m when system <> Runner.Spdistal ->
              Format.fprintf fmt "   (SpDISTAL %.1fx median)" m
          | _ -> ());
          Format.fprintf fmt "@,")
        systems)
    kernels;
  Format.fprintf fmt "@]"
