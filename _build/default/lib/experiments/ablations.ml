open Spdistal_runtime
open Spdistal_formats
open Spdistal_exec
module K = Core.Kernels
module S = Core.Spdistal

let time problem =
  let res = S.run problem in
  match res.S.dnc with
  | Some r -> Error r
  | None -> Ok (Cost.total res.S.cost)

let pp_time fmt = function
  | Ok t -> Format.fprintf fmt "%10.3f ms" (1000. *. t)
  | Error r -> Format.fprintf fmt "DNC (%s)" r

(* A matrix with half its mass in the first 1/16th of the row space:
   universe partitions cannot balance it. *)
let hub_matrix ~rows ~cols ~nnz =
  let rng = ref 17 in
  let next n =
    rng := ((!rng * 1103515245) + 12345) land 0x3fffffff;
    !rng mod n
  in
  let entries = ref [] in
  for _ = 1 to nnz do
    let i = if next 2 = 0 then next (rows / 16) else next rows in
    entries := ([| i; next cols |], 1. +. float_of_int (next 5)) :: !entries
  done;
  Tensor.csr ~name:"hub" (Coo.make [| rows; cols |] !entries)

let run_partition fmt () =
  let machine = Runner.cpu_machine ~nodes:16 in
  let skewed = hub_matrix ~rows:20_000 ~cols:20_000 ~nnz:300_000 in
  let uniform =
    Spdistal_workloads.Synth.uniform ~name:"uni" ~rows:20_000 ~cols:20_000
      ~nnz:300_000 ~seed:12
  in
  Format.fprintf fmt
    "@[<v>=== Ablation: universe vs non-zero partitions (SpMV, 16 nodes) ===@,";
  List.iter
    (fun (label, b) ->
      Format.fprintf fmt "%-14s row-based %a   non-zero-based %a@," label
        pp_time (time (K.spmv_problem ~machine b))
        pp_time
        (time
           (K.spmv_problem ~machine ~nonzero_dist:true
              ~schedule:(K.spmv_nnz ()) b)))
    [ ("hub-skewed", skewed); ("uniform", uniform) ];
  Format.fprintf fmt
    "(non-zero split wins on skew, loses its reduction overhead on uniform \
     data)@,@]"

let run_mismatch fmt () =
  let machine = Runner.cpu_machine ~nodes:16 in
  let b =
    Spdistal_workloads.Synth.uniform ~name:"mm" ~rows:20_000 ~cols:20_000
      ~nnz:300_000 ~seed:13
  in
  Format.fprintf fmt
    "@[<v>=== Ablation: matched vs mismatched data distribution (SpMV, 16 \
     nodes) ===@,";
  Format.fprintf fmt "matched   (row data, row compute): %a@," pp_time
    (time (K.spmv_problem ~machine b));
  Format.fprintf fmt "mismatched (nnz data, row compute): %a@," pp_time
    (time (K.spmv_problem ~machine ~nonzero_dist:true ~schedule:(K.spmv_row ()) b));
  Format.fprintf fmt
    "(the mismatched program is valid but reshapes the data every iteration, \
     paper \xc2\xa7II-D)@,@]"

(* Pairwise addition inside SpDISTAL: two 2-operand merges with an
   assembled intermediate. *)
let pairwise_add machine b c d =
  let open Spdistal_ir in
  let blocked = Tdn.Blocked { tensor_dim = 0; machine_dim = 0 } in
  let rows = b.Tensor.dims.(0) and cols = b.Tensor.dims.(1) in
  let sched =
    [
      Schedule.Divide { v = "i"; outer = "io"; inner = "ii" };
      Schedule.Distribute [ "io" ];
      Schedule.Communicate { tensors = [ "A"; "B"; "C" ]; at = "io" };
      Schedule.Parallelize { v = "ii"; proc = Schedule.Cpu_thread };
    ]
  in
  let stmt = Tin.assign "A" [ "i"; "j" ] Tin.(access "B" [ "i"; "j" ] + access "C" [ "i"; "j" ]) in
  let empty = Tensor.csr ~name:"A" (Coo.make [| rows; cols |] []) in
  let p1 =
    S.problem ~machine
      ~operands:
        [
          ("A", Operand.sparse empty, blocked);
          ("B", Operand.sparse b, blocked);
          ("C", Operand.sparse c, blocked);
        ]
      ~stmt ~schedule:sched
  in
  match time p1 with
  | Error r -> Error r
  | Ok t1 -> (
      let tmp = Operand.find_sparse (S.bindings p1) "A" in
      let empty2 = Tensor.csr ~name:"A" (Coo.make [| rows; cols |] []) in
      let p2 =
        S.problem ~machine
          ~operands:
            [
              ("A", Operand.sparse empty2, blocked);
              ("B", Operand.sparse { tmp with Tensor.name = "T" }, blocked);
              ("C", Operand.sparse d, blocked);
            ]
          ~stmt ~schedule:sched
      in
      match time p2 with Error r -> Error r | Ok t2 -> Ok (t1 +. t2))

let run_fusion fmt () =
  let machine = Runner.cpu_machine ~nodes:8 in
  let b =
    Spdistal_workloads.Synth.uniform ~name:"fa" ~rows:15_000 ~cols:15_000
      ~nnz:250_000 ~seed:14
  in
  let c = K.shift_last_dim ~name:"C" ~by:1 b in
  let d = K.shift_last_dim ~name:"D" ~by:2 b in
  Format.fprintf fmt "@[<v>=== Ablation: fused vs pairwise SpAdd3 (8 nodes) ===@,";
  Format.fprintf fmt "fused single pass:        %a@," pp_time
    (time (K.spadd3_problem ~machine ~c ~d b));
  Format.fprintf fmt "two pairwise additions:   %a@," pp_time
    (pairwise_add machine b c d);
  Format.fprintf fmt "fused, dense workspace:   %a@," pp_time
    (time
       (K.spadd3_problem ~machine ~c ~d ~schedule:(K.spadd3_workspace ()) b));
  Format.fprintf fmt
    "(fusion avoids materializing and re-reading the intermediate sum, the \
     mechanism behind the paper's 11.8x/38.5x SpAdd3 gaps)@,@]"

let run_spmm_gpu fmt () =
  let b =
    Spdistal_workloads.Synth.uniform ~name:"sg" ~rows:12_000 ~cols:12_000
      ~nnz:250_000 ~seed:15
  in
  Format.fprintf fmt
    "@[<v>=== Ablation: GPU SpMM load-balanced vs batched across memory \
     pressure ===@,";
  List.iter
    (fun cols ->
      let m1 = Runner.gpu_machine ~gpus:8 in
      let m2 =
        Machine.make ~params:m1.Machine.params ~kind:Machine.Gpu [| 4; 2 |]
      in
      Format.fprintf fmt "cols=%-3d  load-balanced %a   batched %a@," cols
        pp_time (time (K.spmm_problem ~machine:m1 ~cols ~nonzero_dist:true b))
        pp_time (time (K.spmm_problem ~machine:m2 ~cols ~batched:true b)))
    [ 8; 32; 128 ];
  Format.fprintf fmt
    "(as the dense width grows the replicated operand stops fitting and the \
     memory-conserving schedule takes over, paper Fig. 11)@,@]"

let run_format fmt () =
  let machine = Runner.cpu_machine ~nodes:8 in
  let coo =
    Tensor.to_coo
      (Spdistal_workloads.Synth.power_law ~name:"fmt" ~rows:15_000 ~cols:15_000
         ~nnz:250_000 ~alpha:1.0 ~seed:16)
  in
  let formats =
    [
      ("CSR (Dense,Compressed)", Tensor.csr ~name:"B" coo);
      ( "DCSR (Compressed,Compressed)",
        Tensor.of_coo ~name:"B"
          ~formats:[| Level.Compressed_k; Level.Compressed_k |]
          coo );
      ("CSC (cols first)", Tensor.csc ~name:"B" coo);
      ("COO (nonunique+singleton)", Tensor.coo_matrix ~name:"B" coo);
    ]
  in
  Format.fprintf fmt
    "@[<v>=== Ablation: format language (row-distributed SpMV, 8 nodes) ===@,";
  List.iter
    (fun (label, b) ->
      (* The same statement, schedule and data distribution; only the
         format declaration changes (paper Â§II-B). *)
      let n = b.Tensor.dims.(0) and m = b.Tensor.dims.(1) in
      let a = Dense.vec_create "a" n in
      let cvec = Dense.vec_init "c" m (fun i -> 1. +. float_of_int (i mod 7)) in
      let open Spdistal_ir in
      let p =
        S.problem ~machine
          ~operands:
            [
              ("a", Operand.vec a, Tdn.Blocked { tensor_dim = 0; machine_dim = 0 });
              ("B", Operand.sparse b, Tdn.Blocked { tensor_dim = 0; machine_dim = 0 });
              ("c", Operand.vec cvec, Tdn.Replicated);
            ]
          ~stmt:Tin.spmv ~schedule:(K.spmv_row ())
      in
      Format.fprintf fmt "%-30s %a@," label pp_time (time p))
    formats;
  Format.fprintf fmt
    "(one schedule serves every format: the level functions specialize the      partitioning code)@,@]"

let run_all fmt () =
  run_partition fmt ();
  Format.fprintf fmt "@.";
  run_mismatch fmt ();
  Format.fprintf fmt "@.";
  run_fusion fmt ();
  Format.fprintf fmt "@.";
  run_spmm_gpu fmt ();
  Format.fprintf fmt "@.";
  run_format fmt ()
