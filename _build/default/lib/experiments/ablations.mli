(** Ablation benches for the design choices DESIGN.md calls out.

    - {b partition}: row-based vs non-zero-based SpMV on balanced vs
      hub-concentrated matrices (the §II-D tradeoff: load balance vs
      reduction communication).
    - {b mismatch}: matched vs mismatched data/computation distributions
      (§II-D: "valid but comes at a performance cost").
    - {b fusion}: fused 3-way addition vs two pairwise additions within
      SpDISTAL itself (the SpAdd3 argument without library confounds).
    - {b spmm-gpu}: load-balanced vs batched GPU SpMM across memory
      pressure (§VI-A2).
    - {b format}: the format language's independence — the same row-based
      distributed SpMV over CSR, DCSR and CSC storage (§II-B). *)

val run_partition : Format.formatter -> unit -> unit
val run_mismatch : Format.formatter -> unit -> unit
val run_fusion : Format.formatter -> unit -> unit
val run_spmm_gpu : Format.formatter -> unit -> unit
val run_format : Format.formatter -> unit -> unit

(** All of the above. *)
val run_all : Format.formatter -> unit -> unit
