(** Reproduction of paper Figure 11: GPU strong scaling heatmaps for SpMV,
    SpMM (plus SpDISTAL-Batched), SpAdd3 and SDDMM.

    Each heatmap box is the time in milliseconds of each system's GPU kernel
    on a (tensor, GPU count) pair; DNC marks OOM/unsupported cells, as in
    the paper.  SpMV scales only to 8 GPUs (its runtimes are ~10 ms);
    Trilinos runs under CUDA-UVM. *)

type cell = {
  kernel : Runner.kernel;
  system : Runner.system;
  gpus : int;
  tensor : string;
  time : float option;
  dnc_reason : string option;
}

val compute : ?quick:bool -> unit -> cell list
val print : Format.formatter -> cell list -> unit

(** Fraction of configurations where SpDISTAL (any variant) is the fastest
    completing system, per kernel — the paper's "x/y configurations"
    summaries. *)
val win_rate : cell list -> kernel:Runner.kernel -> int * int
