(** CSV export of every figure's cells, so the regenerated series can be
    plotted directly against the paper's figures. *)

val fig10 : Fig10.cell list -> string
val fig11 : Fig11.cell list -> string
val fig12 : Fig12.cell list -> string
val fig13 : Fig13.point list -> string

(** [write_all ~dir ...] writes fig10.csv .. fig13.csv under [dir] (created
    if missing) and returns the paths. *)
val write_all :
  dir:string ->
  fig10:Fig10.cell list ->
  fig11:Fig11.cell list ->
  fig12:Fig12.cell list ->
  fig13:Fig13.point list ->
  string list
