open Spdistal_runtime
open Spdistal_workloads
open Spdistal_baselines

type point = {
  kind : Machine.proc_kind;
  pieces : int;
  system : Runner.system;
  time : float option;
}

let nnz_per_piece = 35_000
let band = 14

let matrix pieces =
  let n = nnz_per_piece * pieces / band in
  Synth.banded ~name:(Printf.sprintf "banded-%d" pieces) ~n ~band

let time_of (r : Common.result) =
  match r.Common.dnc with None -> Some r.Common.time | Some _ -> None

let compute ?(quick = false) () =
  let cpu_counts = if quick then [ 1; 4 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let gpu_counts = if quick then [ 1; 4 ] else [ 1; 4; 16; 64; 128; 256 ] in
  let run kind pieces =
    let b = matrix pieces in
    let machine =
      match kind with
      | Machine.Cpu -> Runner.cpu_machine ~nodes:pieces
      | Machine.Gpu -> Runner.gpu_machine ~gpus:pieces
    in
    let cells =
      List.map
        (fun system ->
          let r = Runner.run ~kernel:Runner.Spmv ~system ~machine b in
          { kind; pieces; system; time = time_of r })
        [ Runner.Spdistal; Runner.Petsc ]
    in
    (* Weak-scaling matrices are single-use: drop caches to bound memory. *)
    Spdistal_exec.Leaf.clear_cache ();
    cells
  in
  List.concat_map (run Machine.Cpu) cpu_counts
  @ List.concat_map (run Machine.Gpu) gpu_counts

let print fmt points =
  Format.fprintf fmt
    "@[<v>=== Figure 13: SpMV weak scaling, banded matrices (%d nnz/piece) \
     ===@,"
    nnz_per_piece;
  List.iter
    (fun kind ->
      let kpoints = List.filter (fun p -> p.kind = kind) points in
      if kpoints <> [] then begin
        Format.fprintf fmt "@,-- %s --@,"
          (match kind with Machine.Cpu -> "CPUs (nodes)" | Machine.Gpu -> "GPUs");
        Format.fprintf fmt "%-10s %14s %14s %18s@," "pieces" "SpDISTAL (ms)"
          "PETSc (ms)" "SpDISTAL/PETSc";
        let counts = List.sort_uniq compare (List.map (fun p -> p.pieces) kpoints) in
        List.iter
          (fun pieces ->
            let t sys =
              List.find_opt (fun p -> p.pieces = pieces && p.system = sys) kpoints
              |> Fun.flip Option.bind (fun p -> p.time)
            in
            match (t Runner.Spdistal, t Runner.Petsc) with
            | Some s, Some p ->
                Format.fprintf fmt "%-10d %14.3f %14.3f %17.2f%%@," pieces
                  (s *. 1000.) (p *. 1000.)
                  (100. *. p /. s)
            | _ -> Format.fprintf fmt "%-10d %14s@," pieces "DNC")
          counts
      end)
    [ Machine.Cpu; Machine.Gpu ];
  Format.fprintf fmt
    "(SpDISTAL/PETSc > 100%% means SpDISTAL is faster; paper: 90-92%% on \
     CPUs, 105-129%% on GPUs)@,@]"
