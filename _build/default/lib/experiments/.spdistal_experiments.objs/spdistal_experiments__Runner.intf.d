lib/experiments/runner.mli: Machine Spdistal_baselines Spdistal_formats Spdistal_runtime Tensor
