lib/experiments/runner.ml: Array Assemble Common Core Cost Ctf Datasets Dense Machine Petsc Spdistal_baselines Spdistal_formats Spdistal_runtime Spdistal_workloads Tensor Trilinos
