lib/experiments/fig13.mli: Format Runner Spdistal_runtime
