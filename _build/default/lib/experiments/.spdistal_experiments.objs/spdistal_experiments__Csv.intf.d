lib/experiments/csv.mli: Fig10 Fig11 Fig12 Fig13
