lib/experiments/fig10.ml: Array Datasets Format List Machine Option Runner Spdistal_baselines Spdistal_runtime Spdistal_workloads
