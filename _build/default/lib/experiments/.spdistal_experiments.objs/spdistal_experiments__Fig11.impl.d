lib/experiments/fig11.ml: Datasets Format List Machine Printf Runner Spdistal_baselines Spdistal_runtime Spdistal_workloads String
