lib/experiments/csv.ml: Buffer Fig10 Fig11 Fig12 Fig13 Filename List Machine Printf Runner Spdistal_runtime Sys
