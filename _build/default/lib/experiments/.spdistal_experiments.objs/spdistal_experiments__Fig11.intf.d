lib/experiments/fig11.mli: Format Runner
