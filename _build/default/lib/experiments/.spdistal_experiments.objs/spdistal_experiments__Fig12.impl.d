lib/experiments/fig12.ml: Array Datasets Format List Runner Spdistal_baselines Spdistal_workloads
