lib/experiments/ablations.ml: Array Coo Core Cost Dense Format Level List Machine Operand Runner Schedule Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Spdistal_workloads Tdn Tensor Tin
