lib/experiments/fig13.ml: Common Format Fun List Machine Option Printf Runner Spdistal_baselines Spdistal_exec Spdistal_runtime Spdistal_workloads Synth
