open Spdistal_runtime
open Spdistal_workloads

type cell = {
  kernel : Runner.kernel;
  system : Runner.system;
  gpus : int;
  tensor : string;
  time : float option;
  dnc_reason : string option;
}

let gpu_counts = function
  | Runner.Spmv -> [ 1; 2; 4; 8 ]
  | _ -> [ 1; 2; 4; 8; 16; 32 ]

let kernels = [ Runner.Spmv; Runner.Spmm; Runner.Spadd3; Runner.Sddmm ]

let compute ?(quick = false) () =
  let cells = ref [] in
  List.iter
    (fun kernel ->
      let counts = if quick then [ 1; 4 ] else gpu_counts kernel in
      let datasets =
        if quick then List.filteri (fun i _ -> i < 2) Datasets.matrices
        else Datasets.matrices
      in
      List.iter
        (fun (e : Datasets.entry) ->
          let b = e.Datasets.load () in
          List.iter
            (fun gpus ->
              let machine = Runner.gpu_machine ~gpus in
              List.iter
                (fun system ->
                  let r = Runner.run ~kernel ~system ~machine b in
                  cells :=
                    {
                      kernel;
                      system;
                      gpus;
                      tensor = e.Datasets.ds_name;
                      time =
                        (match r.Spdistal_baselines.Common.dnc with
                        | None -> Some r.Spdistal_baselines.Common.time
                        | Some _ -> None);
                      dnc_reason = r.Spdistal_baselines.Common.dnc;
                    }
                    :: !cells)
                (Runner.systems_for kernel Machine.Gpu))
            counts)
        datasets)
    kernels;
  List.rev !cells

let win_rate cells ~kernel =
  let keys =
    List.sort_uniq compare
      (List.filter_map
         (fun c -> if c.kernel = kernel then Some (c.tensor, c.gpus) else None)
         cells)
  in
  let wins =
    List.fold_left
      (fun acc (tensor, gpus) ->
        let group =
          List.filter
            (fun c -> c.kernel = kernel && c.tensor = tensor && c.gpus = gpus)
            cells
        in
        let best =
          List.fold_left
            (fun acc c ->
              match (c.time, acc) with
              | Some t, None -> Some (c.system, t)
              | Some t, Some (_, bt) when t < bt -> Some (c.system, t)
              | _ -> acc)
            None group
        in
        match best with
        | Some ((Runner.Spdistal | Runner.Spdistal_batched), _) -> acc + 1
        | _ -> acc)
      0 keys
  in
  (wins, List.length keys)

let print fmt cells =
  Format.fprintf fmt
    "@[<v>=== Figure 11: GPU strong scaling heatmaps (ms per box; DNC = \
     OOM/unsupported) ===@,";
  List.iter
    (fun kernel ->
      let kcells = List.filter (fun c -> c.kernel = kernel) cells in
      if kcells <> [] then begin
        let systems =
          List.sort_uniq compare (List.map (fun c -> c.system) kcells)
        in
        let counts = List.sort_uniq compare (List.map (fun c -> c.gpus) kcells) in
        let tensors = List.sort_uniq compare (List.map (fun c -> c.tensor) kcells) in
        Format.fprintf fmt "@,-- %s (systems: %s) --@," (Runner.kernel_name kernel)
          (String.concat " / " (List.map Runner.system_name systems));
        Format.fprintf fmt "%-18s" "tensor \\ GPUs";
        List.iter (fun g -> Format.fprintf fmt " %20d" g) counts;
        Format.fprintf fmt "@,";
        List.iter
          (fun tensor ->
            Format.fprintf fmt "%-18s" tensor;
            List.iter
              (fun gpus ->
                let entries =
                  List.map
                    (fun system ->
                      match
                        List.find_opt
                          (fun c ->
                            c.system = system && c.gpus = gpus && c.tensor = tensor)
                          kcells
                      with
                      | Some { time = Some t; _ } ->
                          Printf.sprintf "%.1f" (t *. 1000.)
                      | _ -> "DNC")
                    systems
                in
                Format.fprintf fmt " %20s" (String.concat "/" entries))
              counts;
            Format.fprintf fmt "@,")
          tensors;
        let w, n = win_rate cells ~kernel in
        Format.fprintf fmt "SpDISTAL fastest in %d/%d configurations@," w n
      end)
    kernels;
  Format.fprintf fmt "@]"
