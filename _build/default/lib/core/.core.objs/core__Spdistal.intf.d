lib/core/spdistal.mli: Cost Loop_ir Machine Operand Schedule Spdistal_exec Spdistal_ir Spdistal_runtime Tdn Tin
