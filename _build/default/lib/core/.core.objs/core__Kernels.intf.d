lib/core/kernels.mli: Dense Machine Schedule Spdistal Spdistal_formats Spdistal_ir Spdistal_runtime Tensor
