lib/core/kernels.ml: Array Assemble Coo Dense Fun Level List Machine Operand Schedule Spdistal Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Tdn Tensor Tin
