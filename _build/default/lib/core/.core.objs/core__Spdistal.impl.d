lib/core/spdistal.ml: Cost Interp List Lower Machine Memstate Operand Placement Pretty Schedule Spdistal_exec Spdistal_ir Spdistal_runtime Tdn Tin
