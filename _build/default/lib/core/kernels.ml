open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec

(* ------------------------------------------------------------------ *)
(* Schedules                                                            *)
(* ------------------------------------------------------------------ *)

let row_sched ?(proc = Schedule.Cpu_thread) ~tensors () =
  [
    Schedule.Divide { v = "i"; outer = "io"; inner = "ii" };
    Schedule.Distribute [ "io" ];
    Schedule.Communicate { tensors; at = "io" };
    Schedule.Parallelize { v = "ii"; proc };
  ]

let spmv_row ?proc () = row_sched ?proc ~tensors:[ "a"; "B"; "c" ] ()
let spmm_row ?proc () = row_sched ?proc ~tensors:[ "A"; "B"; "C" ] ()
let spadd3_row ?proc () = row_sched ?proc ~tensors:[ "A"; "B"; "C"; "D" ] ()
let spadd3_workspace ?proc () =
  row_sched ?proc ~tensors:[ "A"; "B"; "C"; "D" ] ()
  @ [ Schedule.Precompute { v = "j"; tensors = [ "A" ] } ]

let spttv_row ?proc () = row_sched ?proc ~tensors:[ "A"; "B"; "c" ] ()
let mttkrp_row ?proc () = row_sched ?proc ~tensors:[ "A"; "B"; "C"; "D" ] ()

(* Fuse the given variables left to right, then strip-mine the fused
   position space of [tensor] and distribute. *)
let nnz_sched ?(proc = Schedule.Cpu_thread) ~vars ~tensor ~tensors () =
  let fuses, fused =
    match vars with
    | [] | [ _ ] -> invalid_arg "Kernels.nnz_sched"
    | v0 :: rest ->
        List.fold_left
          (fun (cmds, prev) v ->
            let f = prev ^ v in
            (cmds @ [ Schedule.Fuse { f; a = prev; b = v } ], f))
          ([], v0) rest
  in
  fuses
  @ [
      Schedule.Pos { v = fused; pv = "fp"; tensor };
      Schedule.Divide { v = "fp"; outer = "fpo"; inner = "fpi" };
      Schedule.Distribute [ "fpo" ];
      Schedule.Communicate { tensors; at = "fpo" };
      Schedule.Parallelize { v = "fpi"; proc };
    ]

let spmv_nnz ?proc () =
  nnz_sched ?proc ~vars:[ "i"; "j" ] ~tensor:"B" ~tensors:[ "a"; "B"; "c" ] ()

let sddmm_nnz ?proc () =
  nnz_sched ?proc ~vars:[ "i"; "j" ] ~tensor:"B"
    ~tensors:[ "A"; "B"; "C"; "D" ] ()

let spttv_nnz ?proc () =
  nnz_sched ?proc ~vars:[ "i"; "j"; "k" ] ~tensor:"B" ~tensors:[ "A"; "B"; "c" ] ()

let mttkrp_nnz ?proc () =
  nnz_sched ?proc ~vars:[ "i"; "j"; "k" ] ~tensor:"B"
    ~tensors:[ "A"; "B"; "C"; "D" ] ()

let spmm_nnz ?proc () =
  nnz_sched ?proc ~vars:[ "i"; "k" ] ~tensor:"B" ~tensors:[ "A"; "B"; "C" ] ()

let spmm_batched ?(proc = Schedule.Cpu_thread) () =
  [
    Schedule.Divide { v = "i"; outer = "io"; inner = "ii" };
    Schedule.Divide { v = "j"; outer = "jo"; inner = "ji" };
    Schedule.Distribute [ "io"; "jo" ];
    Schedule.Communicate { tensors = [ "A"; "B"; "C" ]; at = "jo" };
    Schedule.Parallelize { v = "ii"; proc };
  ]

(* ------------------------------------------------------------------ *)
(* Operand builders                                                     *)
(* ------------------------------------------------------------------ *)

let dval i =
  let h = i * 2654435761 land 0x3fffffff in
  0.5 +. (float_of_int (h land 0xff) /. 256.)

let dense_vec name n = Dense.vec_init name n dval
let dense_mat name rows cols = Dense.mat_init name rows cols (fun i j -> dval ((i * cols) + j))

let shift_last_dim ~name ~by (t : Tensor.t) =
  let coo = Tensor.to_coo t in
  let last = Coo.order coo - 1 in
  let d = coo.Coo.dims.(last) in
  let coords =
    Array.mapi
      (fun dim a -> if dim = last then Array.map (fun c -> (c + by) mod d) a else a)
      coo.Coo.coords
  in
  Tensor.of_coo ~name
    ~formats:(Array.map Level.kind t.Tensor.levels)
    { coo with Coo.coords }

let blocked = Tdn.Blocked { tensor_dim = 0; machine_dim = 0 }
let fused_nnz order = Tdn.Fused_non_zero { dims = List.init order Fun.id; machine_dim = 0 }

let gpu_of m = m.Machine.kind = Machine.Gpu

let default_proc machine =
  if gpu_of machine then Schedule.Gpu_thread else Schedule.Cpu_thread

let spmv_problem ~machine ?schedule ?(nonzero_dist = false) b =
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        if nonzero_dist then spmv_nnz ~proc:(default_proc machine) ()
        else spmv_row ~proc:(default_proc machine) ()
  in
  let n = b.Tensor.dims.(0) and m = b.Tensor.dims.(1) in
  let a = Dense.vec_create "a" n and c = dense_vec "c" m in
  Spdistal.problem ~machine
    ~operands:
      [
        ("a", Operand.vec a, blocked);
        ("B", Operand.sparse b, if nonzero_dist then fused_nnz 2 else blocked);
        ("c", Operand.vec c, Tdn.Replicated);
      ]
    ~stmt:Tin.spmv ~schedule

let spmm_problem ~machine ?schedule ?(cols = 32) ?(batched = false)
    ?(nonzero_dist = false) b =
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        if batched then spmm_batched ~proc:(default_proc machine) ()
        else if nonzero_dist then spmm_nnz ~proc:(default_proc machine) ()
        else spmm_row ~proc:(default_proc machine) ()
  in
  let n = b.Tensor.dims.(0) and k = b.Tensor.dims.(1) in
  let a = Dense.mat_create "A" n cols and c = dense_mat "C" k cols in
  let c_dist =
    if batched then Tdn.Tiled { mappings = [ (1, 1) ] } else Tdn.Replicated
  in
  let b_dist = if nonzero_dist then fused_nnz 2 else blocked in
  Spdistal.problem ~machine
    ~operands:
      [
        ("A", Operand.mat a, blocked);
        ("B", Operand.sparse b, b_dist);
        ("C", Operand.mat c, c_dist);
      ]
    ~stmt:Tin.spmm ~schedule

let empty_csr name rows cols =
  Tensor.csr ~name (Coo.make [| rows; cols |] [])

let spadd3_problem ~machine ?schedule ?c ?d b =
  let schedule =
    match schedule with
    | Some s -> s
    | None -> spadd3_row ~proc:(default_proc machine) ()
  in
  let rows = b.Tensor.dims.(0) and cols = b.Tensor.dims.(1) in
  let c = match c with Some t -> t | None -> shift_last_dim ~name:"C" ~by:1 b in
  let d = match d with Some t -> t | None -> shift_last_dim ~name:"D" ~by:2 b in
  let a = empty_csr "A" rows cols in
  Spdistal.problem ~machine
    ~operands:
      [
        ("A", Operand.sparse a, blocked);
        ("B", Operand.sparse b, blocked);
        ("C", Operand.sparse c, blocked);
        ("D", Operand.sparse d, blocked);
      ]
    ~stmt:Tin.spadd3 ~schedule

let sddmm_problem ~machine ?schedule ?(cols = 32) b =
  let schedule =
    match schedule with
    | Some s -> s
    | None -> sddmm_nnz ~proc:(default_proc machine) ()
  in
  let n = b.Tensor.dims.(0) and m = b.Tensor.dims.(1) in
  let a = Assemble.copy_pattern ~name:"A" b in
  let c = dense_mat "C" n cols and d0 = dense_mat "Dm" cols m in
  (* D is (k, j): rows = cols of the factor width, cols = m. *)
  let d = { d0 with Dense.name = "D" } in
  let dist_b = fused_nnz 2 in
  Spdistal.problem ~machine
    ~operands:
      [
        ("A", Operand.sparse a, dist_b);
        ("B", Operand.sparse b, dist_b);
        ("C", Operand.mat c, Tdn.Replicated);
        ("D", Operand.mat d, Tdn.Replicated);
      ]
    ~stmt:Tin.sddmm ~schedule

let spttv_problem ~machine ?schedule ?(nonzero_dist = false) b =
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        if nonzero_dist then spttv_nnz ~proc:(default_proc machine) ()
        else spttv_row ~proc:(default_proc machine) ()
  in
  let k = b.Tensor.dims.(2) in
  let a = Assemble.copy_pattern ~name:"A" ~levels:2 b in
  let c = dense_vec "c" k in
  let dist_b = if nonzero_dist then fused_nnz 3 else blocked in
  let dist_a = if nonzero_dist then fused_nnz 2 else blocked in
  Spdistal.problem ~machine
    ~operands:
      [
        ("A", Operand.sparse a, dist_a);
        ("B", Operand.sparse b, dist_b);
        ("c", Operand.vec c, Tdn.Replicated);
      ]
    ~stmt:Tin.spttv ~schedule

let mttkrp_problem ~machine ?schedule ?(cols = 32) ?(nonzero_dist = false) b =
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
        if nonzero_dist then mttkrp_nnz ~proc:(default_proc machine) ()
        else mttkrp_row ~proc:(default_proc machine) ()
  in
  let ni = b.Tensor.dims.(0) and nj = b.Tensor.dims.(1) and nk = b.Tensor.dims.(2) in
  let a = Dense.mat_create "A" ni cols in
  let c = dense_mat "C" nj cols and d = dense_mat "D" nk cols in
  let dist_b = if nonzero_dist then fused_nnz 3 else blocked in
  Spdistal.problem ~machine
    ~operands:
      [
        ("A", Operand.mat a, blocked);
        ("B", Operand.sparse b, dist_b);
        ("C", Operand.mat c, Tdn.Replicated);
        ("D", Operand.mat d, Tdn.Replicated);
      ]
    ~stmt:Tin.spmttkrp ~schedule
