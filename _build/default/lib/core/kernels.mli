(** The paper's evaluation kernels with their standard schedules and data
    distributions (§II-D, §VI-A).

    Schedules come in the two families the paper evaluates:
    - {e row-based} (outer-dimension) algorithms: universe partition of the
      first dimension, matched row-blocked data distribution — used on CPUs
      for SpMV/SpMM/SpAdd3/SpTTV/SpMTTKRP;
    - {e non-zero-based} algorithms: coordinate fusion + non-zero partition,
      statically load balanced — used for SDDMM everywhere and for the GPU
      variants of SpMM/SpTTV/SpMTTKRP.

    [*_problem] builders assemble full {!Spdistal.problem}s from a sparse
    input: dense factors are deterministic pseudo-random, outputs are zeroed,
    and data distributions match the chosen schedule (paper §II-D). *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir

(** {1 Schedules} *)

val spmv_row : ?proc:Schedule.proc -> unit -> Schedule.t
val spmv_nnz : ?proc:Schedule.proc -> unit -> Schedule.t
val spmm_row : ?proc:Schedule.proc -> unit -> Schedule.t

(** Load-balanced GPU SpMM (§VI-A2): non-zero split of [B], replicating the
    dense [C] (the OOM-prone variant). *)
val spmm_nnz : ?proc:Schedule.proc -> unit -> Schedule.t

(** Memory-conserving 2-D "SpDISTAL-Batched" GPU SpMM schedule (§VI-A2):
    distributes both [i] and [j]. *)
val spmm_batched : ?proc:Schedule.proc -> unit -> Schedule.t

val spadd3_row : ?proc:Schedule.proc -> unit -> Schedule.t

(** SpAdd3 with a dense row workspace instead of the k-way merge (the
    precompute transformation, Kjolstad et al. [22]). *)
val spadd3_workspace : ?proc:Schedule.proc -> unit -> Schedule.t
val sddmm_nnz : ?proc:Schedule.proc -> unit -> Schedule.t
val spttv_row : ?proc:Schedule.proc -> unit -> Schedule.t
val spttv_nnz : ?proc:Schedule.proc -> unit -> Schedule.t
val mttkrp_row : ?proc:Schedule.proc -> unit -> Schedule.t
val mttkrp_nnz : ?proc:Schedule.proc -> unit -> Schedule.t

(** {1 Problem builders} *)

(** Deterministic pseudo-random value in [0.5, 1.5) for element [i]. *)
val dval : int -> float

val dense_vec : string -> int -> Dense.vec
val dense_mat : string -> int -> int -> Dense.mat

(** [spmv_problem ~machine ~schedule b].  [nonzero_dist] selects the fused
    non-zero data distribution for [b] instead of row blocking (§II-D's
    second algorithm); defaults to matching the schedule. *)
val spmv_problem :
  machine:Machine.t ->
  ?schedule:Schedule.t ->
  ?nonzero_dist:bool ->
  Tensor.t ->
  Spdistal.problem

(** [spmm_problem ~machine ~cols b] — [cols] is the dense width (default 32).
    [nonzero_dist] selects the load-balanced replicated-C variant. *)
val spmm_problem :
  machine:Machine.t ->
  ?schedule:Schedule.t ->
  ?cols:int ->
  ?batched:bool ->
  ?nonzero_dist:bool ->
  Tensor.t ->
  Spdistal.problem

(** [spadd3_problem ~machine b] builds the two shifted copies per Henry &
    Hsu et al. [30] internally unless [c]/[d] are supplied. *)
val spadd3_problem :
  machine:Machine.t ->
  ?schedule:Schedule.t ->
  ?c:Tensor.t ->
  ?d:Tensor.t ->
  Tensor.t ->
  Spdistal.problem

val sddmm_problem :
  machine:Machine.t ->
  ?schedule:Schedule.t ->
  ?cols:int ->
  Tensor.t ->
  Spdistal.problem

val spttv_problem :
  machine:Machine.t ->
  ?schedule:Schedule.t ->
  ?nonzero_dist:bool ->
  Tensor.t ->
  Spdistal.problem

val mttkrp_problem :
  machine:Machine.t ->
  ?schedule:Schedule.t ->
  ?cols:int ->
  ?nonzero_dist:bool ->
  Tensor.t ->
  Spdistal.problem

(** Shift a tensor's last dimension by [by] (mod its size), the Henry & Hsu
    trick for deriving additional sparse operands. *)
val shift_last_dim : name:string -> by:int -> Tensor.t -> Tensor.t
