open Spdistal_runtime

(* The CSR matrix of paper Fig. 7:
   rows:  0 -> cols {0, 2}; 1 -> {}; 2 -> {1} (a 3x3 example). *)
let pos = Region.of_array "pos" [| (0, 1); (2, 1); (2, 2) |]
let crd = Region.of_array "crd" [| 0; 2; 1 |]

let test_image_ranges () =
  (* Partition rows {0} | {1,2}; image through pos colors crd positions. *)
  let rows = Partition.by_bounds (Iset.range 3) [| (0, 0); (1, 2) |] in
  let p = Dependent.image_ranges pos rows (Iset.range 3) in
  Alcotest.(check (list int)) "row 0 owns crd 0,1" [ 0; 1 ]
    (Iset.elements (Partition.subset p 0));
  Alcotest.(check (list int)) "rows 1-2 own crd 2" [ 2 ]
    (Iset.elements (Partition.subset p 1));
  Alcotest.(check bool) "disjoint" true p.Partition.disjoint

let test_preimage_ranges () =
  (* Partition crd positions {0} | {1,2}; row 0 spans both colors. *)
  let crdp = Partition.by_bounds (Iset.range 3) [| (0, 0); (1, 2) |] in
  let p = Dependent.preimage_ranges pos crdp in
  Alcotest.(check (list int)) "color 0 = row 0" [ 0 ]
    (Iset.elements (Partition.subset p 0));
  Alcotest.(check (list int)) "color 1 = rows 0 and 2" [ 0; 2 ]
    (Iset.elements (Partition.subset p 1));
  Alcotest.(check bool) "aliased (paper Fig. 6b)" false p.Partition.disjoint

let test_image_values () =
  let crdp = Partition.by_bounds (Iset.range 3) [| (0, 1); (2, 2) |] in
  let p = Dependent.image_values crd crdp (Iset.range 3) in
  Alcotest.(check (list int)) "values of positions 0,1" [ 0; 2 ]
    (Iset.elements (Partition.subset p 0));
  Alcotest.(check (list int)) "value of position 2" [ 1 ]
    (Iset.elements (Partition.subset p 1))

let test_preimage_values () =
  let vals = Partition.by_bounds (Iset.range 3) [| (0, 0); (1, 2) |] in
  let p = Dependent.preimage_values crd vals in
  Alcotest.(check (list int)) "positions holding value 0" [ 0 ]
    (Iset.elements (Partition.subset p 0));
  Alcotest.(check (list int)) "positions holding values 1-2" [ 1; 2 ]
    (Iset.elements (Partition.subset p 1))

(* Property: image/preimage soundness on random CSR structures. *)
let arb_csr_parts =
  let open QCheck in
  let gen =
    Gen.(
      let* coo = QCheck.gen Helpers.arb_coo_matrix in
      let* pieces = int_range 1 4 in
      Gen.return (Spdistal_formats.Tensor.csr ~name:"B" coo, pieces))
  in
  make ~print:(fun (t, p) ->
      Printf.sprintf "%d nnz csr, %d pieces" (Spdistal_formats.Tensor.nnz t) p)
    gen

let prop_image_covers_children =
  Helpers.qtest ~count:100 "image of complete row partition covers all crd"
    arb_csr_parts
    (fun (t, pieces) ->
      let open Spdistal_formats in
      if Tensor.nnz t = 0 then true
      else begin
        let pos = Tensor.pos_of t 1 and crd = Tensor.crd_of t 1 in
        let rows = Partition.equal_blocks pos.Region.ispace pieces in
        let p = Dependent.image_ranges pos rows crd.Region.ispace in
        Partition.is_complete p && p.Partition.disjoint
      end)

let prop_preimage_sound =
  Helpers.qtest ~count:100
    "preimage contains exactly the rows whose ranges intersect" arb_csr_parts
    (fun (t, pieces) ->
      let open Spdistal_formats in
      if Tensor.nnz t = 0 then true
      else begin
        let pos = Tensor.pos_of t 1 and crd = Tensor.crd_of t 1 in
        let crdp = Partition.equal_cardinality crd.Region.ispace pieces in
        let p = Dependent.preimage_ranges pos crdp in
        let ok = ref true in
        for c = 0 to pieces - 1 do
          Region.iter
            (fun r (lo, hi) ->
              let expected =
                lo <= hi
                && Iset.intersects_interval (Partition.subset crdp c) lo hi
              in
              if expected <> Iset.mem r (Partition.subset p c) then ok := false)
            pos
        done;
        !ok
      end)

let prop_galois =
  Helpers.qtest ~count:100
    "image of preimage covers the original subsets (Galois-style)"
    arb_csr_parts
    (fun (t, pieces) ->
      let open Spdistal_formats in
      if Tensor.nnz t = 0 then true
      else begin
        let pos = Tensor.pos_of t 1 and crd = Tensor.crd_of t 1 in
        let crdp = Partition.equal_cardinality crd.Region.ispace pieces in
        let rowp = Dependent.preimage_ranges pos crdp in
        let back = Dependent.image_ranges pos rowp crd.Region.ispace in
        Array.for_all2
          (fun orig img -> Iset.subset orig img)
          crdp.Partition.subsets back.Partition.subsets
      end)

let suite =
  [
    Alcotest.test_case "image of ranges" `Quick test_image_ranges;
    Alcotest.test_case "preimage of ranges" `Quick test_preimage_ranges;
    Alcotest.test_case "image of values" `Quick test_image_values;
    Alcotest.test_case "preimage of values" `Quick test_preimage_values;
    prop_image_covers_children;
    prop_preimage_sound;
    prop_galois;
  ]
