(* Numeric agreement of every baseline kernel against the shared sequential
   reference, plus cost-profile invariants the paper's evaluation relies
   on. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_baselines

let machine nodes = Machine.make ~kind:Machine.Cpu [| nodes |]
let b = lazy (Helpers.rand_csr ~seed:51 18 18 0.3)
let b3 = lazy (Helpers.rand_csf ~seed:52 6 7 8 0.12)

let test_ctf_spmm_numerics () =
  let b = Lazy.force b in
  let c = Core.Kernels.dense_mat "C" 18 4 in
  let a = Dense.mat_create "A" 18 4 in
  let expect = Dense.mat_create "E" 18 4 in
  Common.seq_spmm b c expect;
  let r = Ctf.spmm ~machine:(machine 2) b ~c ~a in
  Alcotest.(check bool) "completes" true (r.Common.dnc = None);
  Helpers.check_float "values" 0. (Dense.mat_dist a expect)

let test_petsc_trilinos_spmm_numerics () =
  let b = Lazy.force b in
  let expect = Dense.mat_create "E" 18 4 in
  Common.seq_spmm b (Core.Kernels.dense_mat "C" 18 4) expect;
  List.iter
    (fun (name, run) ->
      let c = Core.Kernels.dense_mat "C" 18 4 in
      let a = Dense.mat_create "A" 18 4 in
      let r = run ~c ~a in
      Alcotest.(check bool) (name ^ " ok") true (r.Common.dnc = None);
      Helpers.check_float (name ^ " values") 0. (Dense.mat_dist a expect))
    [
      ("petsc", fun ~c ~a -> Petsc.spmm ~machine:(machine 2) b ~c ~a);
      ("trilinos", fun ~c ~a -> Trilinos.spmm ~machine:(machine 2) b ~c ~a);
    ]

let test_ctf_sddmm_numerics () =
  let b = Lazy.force b in
  let c = Core.Kernels.dense_mat "C" 18 4 in
  let d = Core.Kernels.dense_mat "D" 4 18 in
  let a = Assemble.copy_pattern ~name:"A" b in
  let expect = Assemble.copy_pattern ~name:"E" b in
  Common.seq_sddmm b c d expect;
  let r = Ctf.sddmm ~machine:(machine 2) b ~c ~d ~a in
  Alcotest.(check bool) "completes" true (r.Common.dnc = None);
  Alcotest.(check bool) "values" true
    (Coo.equal (Tensor.to_coo a) (Tensor.to_coo expect))

let test_ctf_spttv_mttkrp_numerics () =
  let b = Lazy.force b3 in
  let cvec = Core.Kernels.dense_vec "c" 8 in
  let a = Assemble.copy_pattern ~name:"A" ~levels:2 b in
  let expect = Assemble.copy_pattern ~name:"E" ~levels:2 b in
  Common.seq_spttv b cvec expect;
  let r = Ctf.spttv ~machine:(machine 2) b ~c:cvec ~a in
  Alcotest.(check bool) "spttv completes" true (r.Common.dnc = None);
  Alcotest.(check bool) "spttv values" true
    (Coo.equal (Tensor.to_coo a) (Tensor.to_coo expect));
  let c = Core.Kernels.dense_mat "C" 7 4 and d = Core.Kernels.dense_mat "D" 8 4 in
  let am = Dense.mat_create "A" 6 4 and em = Dense.mat_create "E" 6 4 in
  Common.seq_mttkrp b c d em;
  let r = Ctf.mttkrp ~machine:(machine 2) b ~c ~d ~a:am in
  Alcotest.(check bool) "mttkrp completes" true (r.Common.dnc = None);
  Helpers.check_float "mttkrp values" 0. (Dense.mat_dist am em)

let test_seq_kernels_vs_dense_reference () =
  (* The shared sequential kernels themselves against the brute-force dense
     evaluator (they anchor every baseline's numerics). *)
  let open Spdistal_exec in
  let b = Lazy.force b in
  let x = Core.Kernels.dense_vec "c" 18 in
  let y = Dense.vec_create "a" 18 in
  Common.seq_spmv b x y;
  let bindings =
    [ ("a", Operand.vec y); ("B", Operand.sparse b); ("c", Operand.vec x) ]
  in
  Helpers.check_float "seq_spmv = dense reference" 0.
    (Validate.max_error bindings Spdistal_ir.Tin.spmv)

let test_baselines_scale_down_with_nodes () =
  (* On the dataset-scaled machine, compute dominates latency and the
     baselines strong-scale. *)
  let machine n =
    Machine.make
      ~params:(Machine.scale_params 5_000. Machine.lassen)
      ~kind:Machine.Cpu [| n |]
  in
  let big =
    Spdistal_workloads.Synth.uniform ~name:"S" ~rows:3000 ~cols:3000
      ~nnz:60_000 ~seed:53
  in
  List.iter
    (fun (name, run) ->
      let t n = (run (machine n)).Common.time in
      Alcotest.(check bool) (name ^ " strong-scales") true (t 8 < t 1))
    [
      ( "petsc",
        fun m ->
          let x = Core.Kernels.dense_vec "x" 3000 in
          let y = Dense.vec_create "y" 3000 in
          Petsc.spmv ~machine:m big ~x ~y );
      ( "trilinos",
        fun m ->
          let x = Core.Kernels.dense_vec "x" 3000 in
          let y = Dense.vec_create "y" 3000 in
          Trilinos.spmv ~machine:m big ~x ~y );
      ( "ctf",
        fun m ->
          let x = Core.Kernels.dense_vec "x" 3000 in
          let y = Dense.vec_create "y" 3000 in
          Ctf.spmv ~machine:m big ~x ~y );
    ]

let test_petsc_gpu_staging_penalty () =
  (* PETSc's GPU SpMV pays per-iteration host staging that SpDISTAL's
     deferred execution avoids (paper Fig. 13: 1.05-1.29x). *)
  let banded = Spdistal_workloads.Synth.banded ~name:"wk" ~n:10_000 ~band:14 in
  let params = Machine.scale_params 5_000. Machine.lassen in
  let mg = Machine.make ~params ~kind:Machine.Gpu [| 4 |] in
  let x = Core.Kernels.dense_vec "x" 10_000 in
  let y = Dense.vec_create "y" 10_000 in
  let petsc = Petsc.spmv ~machine:mg banded ~x ~y in
  let spd = Core.Spdistal.run (Core.Kernels.spmv_problem ~machine:mg banded) in
  match spd.Core.Spdistal.dnc with
  | Some r -> Alcotest.fail r
  | None ->
      let ratio = petsc.Common.time /. Cost.total spd.Core.Spdistal.cost in
      Alcotest.(check bool)
        (Printf.sprintf "SpDISTAL faster on GPU weak scaling (%.2fx)" ratio)
        true (ratio > 1.0 && ratio < 1.5)

let test_gpu_vs_cpu_node_ratio () =
  (* 4 GPUs vs one 40-core node lands near the paper's 2x for sparse
     kernels (Fig. 12). *)
  let b3 =
    Spdistal_workloads.Synth.tensor3_uniform ~name:"r" ~dims:[| 400; 300; 200 |]
      ~nnz:50_000 ~seed:54
  in
  let params = Machine.scale_params 5_000. Machine.lassen in
  let cm = Machine.make ~params ~kind:Machine.Cpu [| 1 |] in
  let gm = Machine.make ~params ~kind:Machine.Gpu [| 4 |] in
  let t machine nonzero_dist =
    match
      Core.Spdistal.time_of
        (Core.Spdistal.run
           (Core.Kernels.spttv_problem ~machine ~nonzero_dist b3))
    with
    | Some t -> t
    | None -> Alcotest.fail "DNC"
  in
  let ratio = t cm false /. t gm true in
  Alcotest.(check bool)
    (Printf.sprintf "GPU node ~2x CPU node (%.2fx)" ratio)
    true
    (ratio > 1.4 && ratio < 3.2)

let suite =
  [
    Alcotest.test_case "CTF SpMM numerics" `Quick test_ctf_spmm_numerics;
    Alcotest.test_case "PETSc/Trilinos SpMM numerics" `Quick
      test_petsc_trilinos_spmm_numerics;
    Alcotest.test_case "CTF SDDMM numerics" `Quick test_ctf_sddmm_numerics;
    Alcotest.test_case "CTF SpTTV/MTTKRP numerics" `Quick
      test_ctf_spttv_mttkrp_numerics;
    Alcotest.test_case "sequential kernels vs dense reference" `Quick
      test_seq_kernels_vs_dense_reference;
    Alcotest.test_case "baselines strong-scale" `Quick
      test_baselines_scale_down_with_nodes;
    Alcotest.test_case "PETSc GPU staging penalty (Fig 13)" `Quick
      test_petsc_gpu_staging_penalty;
    Alcotest.test_case "GPU/CPU node ratio (Fig 12)" `Quick
      test_gpu_vs_cpu_node_ratio;
  ]
