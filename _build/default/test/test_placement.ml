(* Placement: materializing TDN declarations into initial residency. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec

let machine = Machine.make ~kind:Machine.Cpu [| 4 |]

let bindings () =
  let b = Helpers.rand_csr ~seed:81 20 20 0.3 in
  [
    ("B", Operand.sparse b);
    ("v", Operand.vec (Dense.vec_create "v" 20));
    ("M", Operand.mat (Dense.mat_create "M" 20 6));
  ]

let test_replicated () =
  let b = bindings () in
  match Placement.of_tdn ~machine ~bindings:b "v" Tdn.Replicated with
  | Placement.Replicated_everywhere -> ()
  | _ -> Alcotest.fail "expected replication"

let test_vec_blocked () =
  let b = bindings () in
  match
    Placement.of_tdn ~machine ~bindings:b "v"
      (Tdn.Blocked { tensor_dim = 0; machine_dim = 0 })
  with
  | Placement.Dim_partitioned { dim = 0; part } ->
      Alcotest.(check int) "4 colors" 4 (Partition.colors part);
      Alcotest.(check bool) "complete" true (Partition.is_complete part)
  | _ -> Alcotest.fail "expected dim partition"

let test_mat_col_blocked () =
  let b = bindings () in
  match
    Placement.of_tdn ~machine ~bindings:b "M"
      (Tdn.Blocked { tensor_dim = 1; machine_dim = 0 })
  with
  | Placement.Dim_partitioned { dim = 1; part } ->
      Alcotest.(check int) "covers cols" 6
        (Iset.cardinal (Partition.union_of_colors part))
  | _ -> Alcotest.fail "expected column partition"

let test_sparse_blocked_vs_nnz () =
  let b = bindings () in
  let tensor = Operand.find_sparse b "B" in
  let n = Tensor.nnz tensor in
  (match
     Placement.of_tdn ~machine ~bindings:b "B"
       (Tdn.Blocked { tensor_dim = 0; machine_dim = 0 })
   with
  | Placement.Vals_partitioned part ->
      Alcotest.(check int) "all nnz placed" n
        (Iset.cardinal (Partition.union_of_colors part))
  | _ -> Alcotest.fail "expected vals partition");
  match
    Placement.of_tdn ~machine ~bindings:b "B"
      (Tdn.Fused_non_zero { dims = [ 0; 1 ]; machine_dim = 0 })
  with
  | Placement.Vals_partitioned part ->
      Array.iter
        (fun s ->
          let c = Iset.cardinal s in
          Alcotest.(check bool) "balanced nnz" true
            (c >= n / 4 && c <= (n / 4) + 1))
        part.Partition.subsets
  | _ -> Alcotest.fail "expected vals partition"

let test_sparse_single_dim_nnz () =
  (* T |->_~x M on a sparse vector: equal split of the stored coords. *)
  let vec_coo = Coo.make [| 50 |] (List.init 13 (fun i -> ([| 2 + (3 * i) |], 1.))) in
  let sv =
    Tensor.of_coo ~name:"s" ~formats:[| Level.Compressed_k |] vec_coo
  in
  let b = [ ("s", Operand.sparse sv) ] in
  match
    Placement.of_tdn ~machine ~bindings:b "s"
      (Tdn.Non_zero { tensor_dim = 0; machine_dim = 0 })
  with
  | Placement.Vals_partitioned part ->
      Alcotest.(check bool) "balanced" true
        (Array.for_all
           (fun s -> Iset.cardinal s >= 13 / 4 && Iset.cardinal s <= (13 / 4) + 1)
           part.Partition.subsets)
  | _ -> Alcotest.fail "expected vals partition"

let test_resident_set () =
  let b = bindings () in
  let placement =
    [
      ("v", Placement.Replicated_everywhere);
      ( "M",
        Placement.of_tdn ~machine ~bindings:b "M"
          (Tdn.Blocked { tensor_dim = 0; machine_dim = 0 }) );
    ]
  in
  (match
     Placement.resident_set placement ~tensor:"v" ~comm_dim:0
       ~piece_subset:(fun _ -> Iset.empty)
   with
  | `All -> ()
  | _ -> Alcotest.fail "replicated = All");
  (match
     Placement.resident_set placement ~tensor:"unknown" ~comm_dim:0
       ~piece_subset:(fun _ -> Iset.empty)
   with
  | `Nothing -> ()
  | _ -> Alcotest.fail "unknown = Nothing");
  (* A mismatched dimension yields nothing resident. *)
  match
    Placement.resident_set placement ~tensor:"M" ~comm_dim:1
      ~piece_subset:(fun p -> Partition.subset p 0)
  with
  | `Nothing -> ()
  | _ -> Alcotest.fail "wrong dim = Nothing"

let suite =
  [
    Alcotest.test_case "replicated" `Quick test_replicated;
    Alcotest.test_case "blocked vector" `Quick test_vec_blocked;
    Alcotest.test_case "column-blocked matrix" `Quick test_mat_col_blocked;
    Alcotest.test_case "sparse blocked vs fused nnz" `Quick
      test_sparse_blocked_vs_nnz;
    Alcotest.test_case "single-dim nnz split (Fig 5b)" `Quick
      test_sparse_single_dim_nnz;
    Alcotest.test_case "resident sets" `Quick test_resident_set;
  ]
