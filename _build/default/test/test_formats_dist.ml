(* Distribution over non-CSR formats: these exercise the Table I level
   functions that CSR never reaches — universe partitions of Compressed
   levels (partitionByValueRanges + preimage) for CSC and DCSR drivers. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec

let machine pieces = Core.Spdistal.machine ~kind:Machine.Cpu [| pieces |]
let blocked = Tdn.Blocked { tensor_dim = 0; machine_dim = 0 }

let spmv_problem_with b ~pieces =
  let n = b.Tensor.dims.(0) and m = b.Tensor.dims.(1) in
  let a = Dense.vec_create "a" n in
  let c = Dense.vec_init "c" m (fun i -> 1. +. float_of_int (i mod 5)) in
  Core.Spdistal.problem ~machine:(machine pieces)
    ~operands:
      [
        ("a", Operand.vec a, blocked);
        ("B", Operand.sparse b, blocked);
        ("c", Operand.vec c, Tdn.Replicated);
      ]
    ~stmt:Tin.spmv
    ~schedule:(Core.Kernels.spmv_row ())

let check problem =
  let res = Core.Spdistal.run problem in
  match res.Core.Spdistal.dnc with
  | Some r -> Alcotest.fail r
  | None ->
      Helpers.check_float "matches reference" 0.
        (Validate.max_error (Core.Spdistal.bindings problem)
           problem.Core.Spdistal.stmt)

let coo = lazy (Helpers.rand_coo_matrix ~seed:41 14 16 0.3)

let test_spmv_csc () =
  (* CSC stores columns first: distributing rows (i) partitions the
     Compressed level by coordinate value ranges. *)
  let b = Tensor.csc ~name:"B" (Lazy.force coo) in
  List.iter (fun p -> check (spmv_problem_with b ~pieces:p)) [ 1; 3; 5 ]

let test_spmv_dcsr () =
  (* DCSR: both levels compressed; the row level's universe partition
     buckets the stored row coordinates. *)
  let b =
    Tensor.of_coo ~name:"B"
      ~formats:[| Level.Compressed_k; Level.Compressed_k |]
      (Lazy.force coo)
  in
  List.iter (fun p -> check (spmv_problem_with b ~pieces:p)) [ 1; 3; 5 ]

let test_spmv_coo_like () =
  (* A fully-dense first level with compressed second is CSR; a dense-dense
     matrix exercises the dense-leaf value path. *)
  let b = Tensor.dense_of_coo ~name:"B" (Lazy.force coo) in
  List.iter (fun p -> check (spmv_problem_with b ~pieces:p)) [ 1; 4 ]

let test_dcsr_partition_structure () =
  (* The universe partition of a DCSR row level is a value-range bucketing
     of its crd region; verify against the interpreter's environment. *)
  let b =
    Tensor.of_coo ~name:"B"
      ~formats:[| Level.Compressed_k; Level.Compressed_k |]
      (Lazy.force coo)
  in
  let problem = spmv_problem_with b ~pieces:2 in
  ignore (Core.Spdistal.run problem);
  match Interp.last_env () with
  | None -> Alcotest.fail "no environment"
  | Some env ->
      let crd_part = Part_eval.find_partition env "B1CrdPart" in
      Alcotest.(check bool) "row buckets are disjoint" true
        crd_part.Partition.disjoint;
      Alcotest.(check bool) "complete" true (Partition.is_complete crd_part);
      (* Every bucketed position's row coordinate falls in its block. *)
      let crd = Tensor.crd_of b 0 in
      let rows = b.Tensor.dims.(0) in
      Array.iteri
        (fun c s ->
          Iset.iter
            (fun p ->
              let v = Region.get crd p in
              let lo = c * rows / 2 and hi = ((c + 1) * rows / 2) - 1 in
              Alcotest.(check bool) "value in range" true (v >= lo && v <= hi))
            s)
        crd_part.Partition.subsets

let test_coo_roundtrip () =
  let coo = Lazy.force coo in
  let t = Tensor.coo_matrix ~name:"B" coo in
  Alcotest.(check int) "one position per nnz at level 0"
    (Coo.nnz (Coo.sort_dedup coo))
    (Tensor.level_extent t 0);
  Alcotest.(check bool) "roundtrip" true (Coo.equal coo (Tensor.to_coo t));
  (* Pointwise agreement with the CSR encoding. *)
  let csr = Tensor.csr ~name:"C" coo in
  for i = 0 to coo.Coo.dims.(0) - 1 do
    for j = 0 to coo.Coo.dims.(1) - 1 do
      Helpers.check_float "entry" (Tensor.get csr [| i; j |])
        (Tensor.get t [| i; j |])
    done
  done

let test_spmv_coo_format () =
  (* Distributed SpMV over a COO matrix: the row level is non-unique
     compressed (value-range universe partition), the column level is
     Singleton. *)
  let b = Tensor.coo_matrix ~name:"B" (Lazy.force coo) in
  List.iter (fun p -> check (spmv_problem_with b ~pieces:p)) [ 1; 2; 4 ]

let test_spmv_coo_nnz_split () =
  (* Non-zero split over COO: equal split of the fused position space. *)
  let b = Tensor.coo_matrix ~name:"B" (Lazy.force coo) in
  let n = b.Tensor.dims.(0) and m = b.Tensor.dims.(1) in
  let a = Dense.vec_create "a" n in
  let c = Dense.vec_init "c" m (fun i -> 1. +. float_of_int (i mod 5)) in
  let problem =
    Core.Spdistal.problem ~machine:(machine 3)
      ~operands:
        [
          ("a", Operand.vec a, blocked);
          ("B", Operand.sparse b, Tdn.Fused_non_zero { dims = [ 0; 1 ]; machine_dim = 0 });
          ("c", Operand.vec c, Tdn.Replicated);
        ]
      ~stmt:Tin.spmv
      ~schedule:(Core.Kernels.spmv_nnz ())
  in
  check problem

let test_singleton_under_shared_parent_rejected () =
  Alcotest.check_raises "needs unique parents"
    (Invalid_argument
       "Tensor.of_coo: Singleton level under shared parent positions")
    (fun () ->
      ignore
        (Tensor.of_coo ~name:"X"
           ~formats:[| Level.Compressed_k; Level.Singleton_k |]
           (Coo.make [| 2; 3 |] [ ([| 0; 1 |], 1.); ([| 0; 2 |], 2.) ])))

let test_spttv_csf_nnz_pieces () =
  (* Deeper non-zero splits of a 3-tensor across odd piece counts. *)
  let b3 = Helpers.rand_csf ~seed:43 7 9 11 0.08 in
  List.iter
    (fun p ->
      let problem =
        Core.Kernels.spttv_problem ~machine:(machine p) ~nonzero_dist:true b3
      in
      check problem)
    [ 1; 3; 7 ]

let test_mttkrp_patents_format () =
  (* (Dense, Dense, Compressed) driver: the inner dense level uses the
     Scale/Unscale dense partition propagation. *)
  let b =
    Spdistal_workloads.Synth.tensor3_dense_modes ~name:"P" ~dims:[| 3; 5; 40 |]
      ~nnz:300 ~seed:44
  in
  List.iter
    (fun p ->
      check (Core.Kernels.mttkrp_problem ~machine:(machine p) ~cols:4 b))
    [ 1; 2; 4 ]

let test_dense_gemm_via_format_language () =
  (* DISTAL's dense subset falls out of the format language: a matrix with
     two Dense levels drives the same universe-partition machinery, giving a
     distributed dense GEMM with no special casing. *)
  let coo = Helpers.rand_coo_matrix ~seed:45 8 6 0.9 in
  let b = Tensor.dense_of_coo ~name:"B" coo in
  let cmat = Dense.mat_init "C" 6 5 (fun i j -> float_of_int ((i * 5) + j + 1)) in
  let a = Dense.mat_create "A" 8 5 in
  let problem =
    Core.Spdistal.problem ~machine:(machine 3)
      ~operands:
        [
          ("A", Operand.mat a, blocked);
          ("B", Operand.sparse b, blocked);
          ("C", Operand.mat cmat, Tdn.Replicated);
        ]
      ~stmt:Tin.spmm
      ~schedule:(Core.Kernels.spmm_row ())
  in
  check problem

let suite =
  [
    Alcotest.test_case "distributed SpMV over CSC" `Quick test_spmv_csc;
    Alcotest.test_case "distributed SpMV over DCSR" `Quick test_spmv_dcsr;
    Alcotest.test_case "distributed SpMV over dense-dense" `Quick
      test_spmv_coo_like;
    Alcotest.test_case "DCSR value-range partition structure" `Quick
      test_dcsr_partition_structure;
    Alcotest.test_case "COO (nonunique+singleton) roundtrip" `Quick
      test_coo_roundtrip;
    Alcotest.test_case "distributed SpMV over COO" `Quick test_spmv_coo_format;
    Alcotest.test_case "non-zero split over COO" `Quick test_spmv_coo_nnz_split;
    Alcotest.test_case "singleton validation" `Quick
      test_singleton_under_shared_parent_rejected;
    Alcotest.test_case "SpTTV CSF non-zero split, odd pieces" `Quick
      test_spttv_csf_nnz_pieces;
    Alcotest.test_case "MTTKRP over (D,D,C)" `Quick test_mttkrp_patents_format;
    Alcotest.test_case "dense GEMM via the format language" `Quick
      test_dense_gemm_via_format_language;
  ]
