test/test_pretty.ml: Alcotest Core Format Helpers List Loop_ir Lower Pretty Schedule Spdistal_formats Spdistal_ir Tin
