test/test_ir.ml: Alcotest Core Format Helpers List Loop_ir Lower Pretty Printf Schedule Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Tdn Tin
