test/test_dependent.ml: Alcotest Array Dependent Gen Helpers Iset Partition Printf QCheck Region Spdistal_formats Spdistal_runtime Tensor
