test/helpers.ml: Alcotest Array Coo Format Gen Level QCheck QCheck_alcotest Spdistal_formats Spdistal_runtime String Tensor
