test/test_partition.ml: Alcotest Array Helpers Iset Partition QCheck Region Spdistal_runtime
