test/test_machine.ml: Alcotest Cost Helpers Machine Memstate Spdistal_runtime Task
