test/test_placement.ml: Alcotest Array Coo Dense Helpers Iset Level List Machine Operand Partition Placement Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Tdn Tensor
