test/test_workloads.ml: Alcotest Array Coo Datasets Format Helpers Level List Region Spdistal_baselines Spdistal_formats Spdistal_runtime Spdistal_workloads Srng Synth Tensor
