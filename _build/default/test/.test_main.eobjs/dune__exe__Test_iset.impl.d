test/test_iset.ml: Alcotest Helpers Iset List QCheck Spdistal_runtime
