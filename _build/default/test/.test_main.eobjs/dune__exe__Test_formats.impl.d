test/test_formats.ml: Alcotest Array Assemble Convert Coo Coord_tree Dense Helpers Level List Region Spdistal_formats Spdistal_runtime Tensor
