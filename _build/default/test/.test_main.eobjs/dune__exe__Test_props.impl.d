test/test_props.ml: Array Coo Core Dense Gen Helpers Level Machine Operand Printf QCheck Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Tensor Validate
