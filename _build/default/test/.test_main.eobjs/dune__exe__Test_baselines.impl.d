test/test_baselines.ml: Alcotest Array Common Coo Core Cost Ctf Dense Helpers Lazy List Machine Petsc Spdistal_baselines Spdistal_formats Spdistal_runtime Spdistal_workloads Tensor Trilinos
