test/test_runtime_more.ml: Alcotest Array Cost Format Fun Helpers Iset List Machine Partition Region Spdistal_formats Spdistal_runtime Task
