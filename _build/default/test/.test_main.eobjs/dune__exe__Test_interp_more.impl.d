test/test_interp_more.ml: Alcotest Array Core Cost Dense Helpers List Machine Operand Printf Schedule Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Tdn Tensor Tin Validate
