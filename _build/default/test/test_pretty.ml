(* Pretty-printer coverage: the rendered plans are the user-facing artifact
   (paper Fig. 9b), so their shape is pinned here. *)

open Spdistal_ir

let spmv_env =
  [
    ("a", Lower.Vec_op);
    ( "B",
      Lower.Sparse_op
        {
          formats =
            [| Spdistal_formats.Level.Dense_k; Spdistal_formats.Level.Compressed_k |];
          mode_order = [| 0; 1 |];
        } );
    ("c", Lower.Vec_op);
  ]

let render sched =
  Pretty.prog_to_string (Lower.lower ~env:spmv_env ~grid:[| 2 |] Tin.spmv sched)

let test_row_plan_shape () =
  let s = render (Core.Kernels.spmv_row ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (Helpers.contains s needle))
    [
      "Coloring B1Coloring = {};";
      "for (int io = 0; io < 2; io++)";
      "B1Coloring[color] = {io * B[0].dim / 2, (io + 1) * B[0].dim / 2 - 1};";
      "auto B1Part = partitionByBounds(B1Coloring, B[0].dom);";
      "auto B2PosPart = copy(B1Part);";
      "auto B2CrdPart = image(B[1].pos, B2PosPart, B[1].crd);";
      "auto BValsPart = copy(B2CrdPart);";
      "imageValues(B[1].crd, B2CrdPart, c[0].dom)";
      "distributed for io in pieces";
      "leaf: a(i) = B(i,j) * c(j) over B [parallel]";
    ]

let test_nnz_plan_shape () =
  let s = render (Core.Kernels.spmv_nnz ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (Helpers.contains s needle))
    [
      "B.nnz";
      "auto B2CrdPart = partitionByBounds(B2Coloring, B[1].crd);";
      "auto B2PosPart = preimage(B[1].pos, B2CrdPart);";
      "[nnz-split]";
      "// output: communicate a by dim 0[B2PosPart] (reduction)";
    ]

let test_aexpr_precedence () =
  let open Loop_ir in
  let e = Mul (Add (Color_var "c", Int 1), Dim (Nnz_of "B")) in
  Alcotest.(check string) "parenthesized" "(c + 1) * B.nnz"
    (Format.asprintf "%a" Pretty.pp_aexpr e);
  let e2 = Sub (Div (Color_var "c", Int 2), Int 1) in
  Alcotest.(check string) "division" "c / 2 - 1"
    (Format.asprintf "%a" Pretty.pp_aexpr e2)

let test_rref_rendering () =
  let open Loop_ir in
  Alcotest.(check string) "pos" "B[1].pos"
    (Format.asprintf "%a" Pretty.pp_rref (Pos_r ("B", 1)));
  Alcotest.(check string) "vals" "B.vals"
    (Format.asprintf "%a" Pretty.pp_rref (Vals_r "B"));
  Alcotest.(check string) "dom" "c[0].dom"
    (Format.asprintf "%a" Pretty.pp_rref (Dom_r ("c", 0)))

let test_schedule_rendering () =
  let s = Format.asprintf "%a" Schedule.pp (Core.Kernels.spmv_nnz ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (Helpers.contains s needle))
    [ ".fuse(ij, i, j)"; ".pos(ij, fp, B)"; ".divide(fp, fpo, fpi, M)";
      ".distribute(fpo)"; ".communicate({a, B, c}, fpo)";
      ".parallelize(fpi, CPUThread)" ]

let suite =
  [
    Alcotest.test_case "row plan renders like Fig 9b" `Quick test_row_plan_shape;
    Alcotest.test_case "nnz plan renders" `Quick test_nnz_plan_shape;
    Alcotest.test_case "aexpr precedence" `Quick test_aexpr_precedence;
    Alcotest.test_case "rref rendering" `Quick test_rref_rendering;
    Alcotest.test_case "schedule rendering" `Quick test_schedule_rendering;
  ]
