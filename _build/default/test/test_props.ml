(* Property tests over the full compile-partition-execute pipeline: every
   kernel on random tensors, random piece counts, both distribution
   strategies — the distributed result must equal the dense reference. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_exec

let machine pieces = Core.Spdistal.machine ~kind:Machine.Cpu [| pieces |]

let arb_coo3 =
  let open QCheck in
  let gen =
    Gen.(
      let* d1 = int_range 1 7 in
      let* d2 = int_range 1 7 in
      let* d3 = int_range 1 7 in
      let* n = int_range 0 25 in
      let* entries =
        list_repeat n
          (let* i = int_range 0 (d1 - 1) in
           let* j = int_range 0 (d2 - 1) in
           let* k = int_range 0 (d3 - 1) in
           let* v = int_range 1 9 in
           Gen.return ([| i; j; k |], float_of_int v))
      in
      Gen.return (Coo.make [| d1; d2; d3 |] entries))
  in
  make
    ~print:(fun c ->
      Printf.sprintf "%dx%dx%d coo, %d entries" c.Coo.dims.(0) c.Coo.dims.(1)
        c.Coo.dims.(2) (Coo.nnz c))
    gen

let exact problem =
  let res = Core.Spdistal.run problem in
  res.Core.Spdistal.dnc = None
  && Validate.max_error (Core.Spdistal.bindings problem) problem.Core.Spdistal.stmt
     < 1e-9

let with_matrix coo f =
  let b = Tensor.csr ~name:"B" coo in
  if Tensor.nnz b = 0 then true else f b

let with_tensor3 coo f =
  let b =
    Tensor.of_coo ~name:"B"
      ~formats:[| Level.Dense_k; Level.Compressed_k; Level.Compressed_k |]
      coo
  in
  if Tensor.nnz b = 0 then true else f b

let prop_spmm =
  Helpers.qtest ~count:50 "random SpMM (row) exact"
    QCheck.(pair Helpers.arb_coo_matrix (int_range 1 5))
    (fun (coo, pieces) ->
      with_matrix coo (fun b ->
          exact (Core.Kernels.spmm_problem ~machine:(machine pieces) ~cols:3 b)))

let prop_sddmm =
  Helpers.qtest ~count:50 "random SDDMM (nnz) exact"
    QCheck.(pair Helpers.arb_coo_matrix (int_range 1 5))
    (fun (coo, pieces) ->
      with_matrix coo (fun b ->
          exact (Core.Kernels.sddmm_problem ~machine:(machine pieces) ~cols:3 b)))

let prop_spttv =
  Helpers.qtest ~count:50 "random SpTTV (row and nnz) exact"
    QCheck.(pair arb_coo3 (int_range 1 5))
    (fun (coo, pieces) ->
      with_tensor3 coo (fun b ->
          exact (Core.Kernels.spttv_problem ~machine:(machine pieces) b)
          && exact
               (Core.Kernels.spttv_problem ~machine:(machine pieces)
                  ~nonzero_dist:true b)))

let prop_mttkrp =
  Helpers.qtest ~count:50 "random SpMTTKRP (row and nnz) exact"
    QCheck.(pair arb_coo3 (int_range 1 5))
    (fun (coo, pieces) ->
      with_tensor3 coo (fun b ->
          exact (Core.Kernels.mttkrp_problem ~machine:(machine pieces) ~cols:3 b)
          && exact
               (Core.Kernels.mttkrp_problem ~machine:(machine pieces) ~cols:3
                  ~nonzero_dist:true b)))

let prop_formats_agree =
  Helpers.qtest ~count:40 "CSR, CSC, DCSR, COO drivers all exact"
    QCheck.(pair Helpers.arb_coo_matrix (int_range 1 4))
    (fun (coo, pieces) ->
      if Coo.nnz (Coo.sort_dedup coo) = 0 then true
      else
        let blocked = Spdistal_ir.Tdn.Blocked { tensor_dim = 0; machine_dim = 0 } in
        let check b =
          let n = b.Tensor.dims.(0) and m = b.Tensor.dims.(1) in
          let a = Dense.vec_create "a" n in
          let c = Dense.vec_init "c" m (fun i -> float_of_int (i + 1)) in
          exact
            (Core.Spdistal.problem ~machine:(machine pieces)
               ~operands:
                 [
                   ("a", Operand.vec a, blocked);
                   ("B", Operand.sparse b, blocked);
                   ("c", Operand.vec c, Spdistal_ir.Tdn.Replicated);
                 ]
               ~stmt:Spdistal_ir.Tin.spmv
               ~schedule:(Core.Kernels.spmv_row ()))
        in
        check (Tensor.csr ~name:"B" coo)
        && check (Tensor.csc ~name:"B" coo)
        && check
             (Tensor.of_coo ~name:"B"
                ~formats:[| Level.Compressed_k; Level.Compressed_k |]
                coo)
        && check (Tensor.coo_matrix ~name:"B" coo))

let prop_workspace_equals_merge =
  Helpers.qtest ~count:40 "workspace SpAdd3 = merge SpAdd3"
    QCheck.(pair Helpers.arb_coo_matrix (int_range 1 4))
    (fun (coo, pieces) ->
      with_matrix coo (fun b ->
          let p1 = Core.Kernels.spadd3_problem ~machine:(machine pieces) b in
          let p2 =
            Core.Kernels.spadd3_problem ~machine:(machine pieces)
              ~schedule:(Core.Kernels.spadd3_workspace ()) b
          in
          exact p1 && exact p2
          &&
          let a1 = Operand.find_sparse (Core.Spdistal.bindings p1) "A" in
          let a2 = Operand.find_sparse (Core.Spdistal.bindings p2) "A" in
          Coo.equal (Tensor.to_coo a1) (Tensor.to_coo a2)))

let prop_gpu_equals_cpu_numerics =
  Helpers.qtest ~count:30 "GPU and CPU schedules produce identical numbers"
    QCheck.(pair Helpers.arb_coo_matrix (int_range 1 4))
    (fun (coo, pieces) ->
      with_matrix coo (fun b ->
          let pc = Core.Kernels.spmv_problem ~machine:(machine pieces) b in
          let pg =
            Core.Kernels.spmv_problem
              ~machine:(Core.Spdistal.machine ~kind:Machine.Gpu [| pieces |])
              b
          in
          exact pc && exact pg
          &&
          let a1 = Operand.find_vec (Core.Spdistal.bindings pc) "a" in
          let a2 = Operand.find_vec (Core.Spdistal.bindings pg) "a" in
          Dense.vec_dist a1 a2 < 1e-12))

let suite =
  [
    prop_spmm;
    prop_sddmm;
    prop_spttv;
    prop_mttkrp;
    prop_formats_agree;
    prop_workspace_equals_merge;
    prop_gpu_equals_cpu_numerics;
  ]
