open Spdistal_runtime

let m_cpu = Machine.make ~kind:Machine.Cpu [| 4 |]
let m_gpu = Machine.make ~kind:Machine.Gpu [| 8 |]

let test_shape () =
  Alcotest.(check int) "pieces" 4 (Machine.pieces m_cpu);
  Alcotest.(check int) "cpu nodes" 4 (Machine.nodes m_cpu);
  Alcotest.(check int) "gpu nodes (4/node)" 2 (Machine.nodes m_gpu);
  Alcotest.(check int) "gpu node of piece 5" 1 (Machine.node_of_piece m_gpu 5);
  let m2 = Machine.make ~kind:Machine.Cpu [| 2; 3 |] in
  Alcotest.(check int) "2-D grid pieces" 6 (Machine.pieces m2);
  Alcotest.check_raises "bad grid"
    (Invalid_argument "Machine.make: grid dimensions must be positive")
    (fun () -> ignore (Machine.make ~kind:Machine.Cpu [| 0 |]))

let test_compute_time () =
  (* Memory-bound: bytes dominate. *)
  let t = Machine.compute_time m_cpu ~flops:1. ~bytes:340e9 in
  Helpers.check_float "bw-bound 1s" 1. t;
  (* Flop-bound. *)
  let t = Machine.compute_time m_cpu ~flops:1e12 ~bytes:1. in
  Helpers.check_float "flop-bound 1s" 1. t;
  (* A GPU node (4 pieces in parallel) outperforms a CPU node, though a
     single GPU's effective sparse throughput is below the 40-core node
     aggregate (see the Machine.lassen comment / paper Fig. 12). *)
  Alcotest.(check bool) "gpu node faster than cpu node" true
    (Machine.compute_time m_gpu ~flops:0. ~bytes:1e9
    < 4. *. Machine.compute_time m_cpu ~flops:0. ~bytes:1e9)

let test_p2p () =
  Helpers.check_float "zero bytes free" 0.
    (Machine.p2p_time m_cpu ~intra_node:false ~bytes:0.);
  Helpers.check_float "cpu intra-node free" 0.
    (Machine.p2p_time m_cpu ~intra_node:true ~bytes:1e6);
  Alcotest.(check bool) "gpu intra-node rides nvlink" true
    (Machine.p2p_time m_gpu ~intra_node:true ~bytes:1e6 > 0.);
  Alcotest.(check bool) "network includes latency" true
    (Machine.p2p_time m_cpu ~intra_node:false ~bytes:1.
    >= Machine.lassen.Machine.net_alpha)

let test_collectives () =
  Helpers.check_float "bcast on 1 piece free" 0.
    (Machine.bcast_time (Machine.make ~kind:Machine.Cpu [| 1 |]) ~bytes:1e6);
  Alcotest.(check bool) "reduce costs twice the bandwidth of bcast" true
    (Machine.reduce_time m_cpu ~bytes:1e8 > Machine.bcast_time m_cpu ~bytes:1e8)

let test_overheads () =
  Alcotest.(check bool) "launch overhead grows with pieces" true
    (Machine.launch_overhead (Machine.make ~kind:Machine.Cpu [| 64 |])
    > Machine.launch_overhead m_cpu);
  Helpers.check_float "barrier on 1 piece free" 0.
    (Machine.barrier_time (Machine.make ~kind:Machine.Cpu [| 1 |]))

let test_scaling () =
  let s = Machine.scale_params 100. Machine.lassen in
  Helpers.check_float "rates scale" (Machine.lassen.Machine.cpu_flops /. 100.)
    s.Machine.cpu_flops;
  Helpers.check_float "capacity scales" (Machine.lassen.Machine.gpu_mem /. 100.)
    s.Machine.gpu_mem;
  Helpers.check_float "latency does not scale" Machine.lassen.Machine.net_alpha
    s.Machine.net_alpha;
  (* Scale invariance: workload scaled with the machine keeps its time. *)
  let m1 = Machine.make ~kind:Machine.Cpu [| 2 |] in
  let m2 = Machine.make ~params:s ~kind:Machine.Cpu [| 2 |] in
  Helpers.check_float "scaled run = full-size run"
    (Machine.compute_time m1 ~flops:1e10 ~bytes:1e10)
    (Machine.compute_time m2 ~flops:1e8 ~bytes:1e8)

let test_cost_accounting () =
  let c = Cost.create () in
  Cost.add_compute c 1.;
  Cost.add_comm c ~bytes:10. ~messages:2 0.5;
  Cost.add_overhead c 0.25;
  Helpers.check_float "total" 1.75 (Cost.total c);
  Alcotest.(check int) "messages" 2 c.Cost.messages;
  Cost.record_launch c ~machine:m_cpu ~piece_times:[| 0.1; 0.5; 0.2; 0.05 |];
  Helpers.check_float "critical path added" (1.75 +. 0.5 +. Machine.launch_overhead m_cpu)
    (Cost.total c);
  Alcotest.(check int) "launches" 1 c.Cost.launches;
  Cost.reset c;
  Helpers.check_float "reset" 0. (Cost.total c)

let test_task_work () =
  let open Task in
  let w1 = { flops = 1.; bytes_read = 2.; bytes_written = 3.; atomics = false } in
  let w2 = { flops = 10.; bytes_read = 20.; bytes_written = 30.; atomics = true } in
  let w = w1 ++ w2 in
  Helpers.check_float "flops add" 11. w.flops;
  Alcotest.(check bool) "atomics or" true w.atomics;
  (* Atomic penalty applies on CPU. *)
  let base = leaf_time m_cpu { w with atomics = false } in
  let pen = leaf_time m_cpu w in
  Helpers.check_float "cpu atomic penalty"
    (base *. Machine.lassen.Machine.atomic_penalty_cpu) pen

let test_memstate () =
  let small =
    Machine.make
      ~params:{ Machine.lassen with Machine.gpu_mem = 100. }
      ~kind:Machine.Gpu [| 2 |]
  in
  let ms = Memstate.create small ~uvm:false in
  (match Memstate.ensure ms ~piece:0 ~key:"a" ~bytes:60. with
  | Memstate.Miss b -> Helpers.check_float "miss bytes" 60. b
  | _ -> Alcotest.fail "expected miss");
  (match Memstate.ensure ms ~piece:0 ~key:"a" ~bytes:60. with
  | Memstate.Hit -> ()
  | _ -> Alcotest.fail "expected hit");
  Helpers.check_float "resident" 60. (Memstate.resident_bytes ms ~piece:0);
  (try
     ignore (Memstate.ensure ms ~piece:0 ~key:"b" ~bytes:60.);
     Alcotest.fail "expected OOM"
   with Memstate.Oom _ -> ());
  (* Other piece unaffected. *)
  (match Memstate.ensure ms ~piece:1 ~key:"b" ~bytes:60. with
  | Memstate.Miss _ -> ()
  | _ -> Alcotest.fail "expected miss on piece 1");
  Memstate.invalidate ms ~key:"a";
  Helpers.check_float "invalidated" 0. (Memstate.resident_bytes ms ~piece:0);
  (* UVM pages instead of failing. *)
  let uvm = Memstate.create small ~uvm:true in
  ignore (Memstate.ensure uvm ~piece:0 ~key:"a" ~bytes:80.);
  match Memstate.ensure uvm ~piece:0 ~key:"b" ~bytes:50. with
  | Memstate.Paged over -> Helpers.check_float "paged overflow" 30. over
  | _ -> Alcotest.fail "expected paging"

let suite =
  [
    Alcotest.test_case "machine shape" `Quick test_shape;
    Alcotest.test_case "compute roofline" `Quick test_compute_time;
    Alcotest.test_case "p2p" `Quick test_p2p;
    Alcotest.test_case "collectives" `Quick test_collectives;
    Alcotest.test_case "overheads" `Quick test_overheads;
    Alcotest.test_case "scaled params" `Quick test_scaling;
    Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
    Alcotest.test_case "task work" `Quick test_task_work;
    Alcotest.test_case "memstate" `Quick test_memstate;
  ]
