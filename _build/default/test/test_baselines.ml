open Spdistal_runtime
open Spdistal_formats
open Spdistal_baselines

let machine nodes = Machine.make ~kind:Machine.Cpu [| nodes |]

let b = lazy (Helpers.rand_csr ~seed:31 20 20 0.25)

(* Dense reference SpMV. *)
let ref_spmv (t : Tensor.t) (x : Dense.vec) =
  let y = Dense.vec_create "ref" t.Tensor.dims.(0) in
  Tensor.iter_nnz t (fun c _ v ->
      Dense.vec_set y c.(0) (Dense.vec_get y c.(0) +. (v *. Dense.vec_get x c.(1))));
  y

let test_numerics_agree () =
  let b = Lazy.force b in
  let x = Dense.vec_init "x" 20 (fun i -> float_of_int (i + 1)) in
  let expect = ref_spmv b x in
  List.iter
    (fun (name, runner) ->
      let y = Dense.vec_create "y" 20 in
      let r = runner y in
      Alcotest.(check bool) (name ^ " completes") true (r.Common.dnc = None);
      Helpers.check_float (name ^ " numerics") 0. (Dense.vec_dist expect y))
    [
      ("petsc", fun y -> Petsc.spmv ~machine:(machine 2) b ~x ~y);
      ("trilinos", fun y -> Trilinos.spmv ~machine:(machine 2) b ~x ~y);
      ("ctf", fun y -> Ctf.spmv ~machine:(machine 2) b ~x ~y);
    ]

let test_add3_agree () =
  let b = Lazy.force b in
  let c = Core.Kernels.shift_last_dim ~name:"C" ~by:1 b in
  let d = Core.Kernels.shift_last_dim ~name:"D" ~by:2 b in
  let expect = Common.seq_add3 ~name:"ref" b c d in
  List.iter
    (fun (name, out) ->
      match out with
      | Some t, (r : Common.result) ->
          Alcotest.(check bool) (name ^ " ok") true (r.Common.dnc = None);
          Alcotest.(check bool) (name ^ " numerics") true
            (Coo.equal (Tensor.to_coo expect) (Tensor.to_coo t))
      | None, _ -> Alcotest.fail (name ^ " returned no result"))
    [
      ("petsc", Petsc.spadd3 ~machine:(machine 2) b c d);
      ("trilinos", Trilinos.spadd3 ~machine:(machine 2) b c d);
      ("ctf", Ctf.spadd3 ~machine:(machine 2) b c d);
    ]

let test_seq_add3_matches_reference () =
  (* Against an independent dense sum. *)
  let b = Lazy.force b in
  let c = Core.Kernels.shift_last_dim ~name:"C" ~by:1 b in
  let d = Core.Kernels.shift_last_dim ~name:"D" ~by:2 b in
  let sum = Common.seq_add3 ~name:"S" b c d in
  for i = 0 to 19 do
    for j = 0 to 19 do
      Helpers.check_float "sum entry"
        (Tensor.get b [| i; j |] +. Tensor.get c [| i; j |] +. Tensor.get d [| i; j |])
        (Tensor.get sum [| i; j |])
    done
  done

let test_ctf_slower_than_spdistal () =
  let b =
    Spdistal_workloads.Synth.uniform ~name:"U2" ~rows:1500 ~cols:1500
      ~nnz:30_000 ~seed:6
  in
  let m = machine 2 in
  let x = Core.Kernels.dense_vec "x" 1500 and y = Dense.vec_create "y" 1500 in
  let ctf = Ctf.spmv ~machine:m b ~x ~y in
  let spd = Core.Spdistal.run (Core.Kernels.spmv_problem ~machine:m b) in
  match spd.Core.Spdistal.dnc with
  | Some r -> Alcotest.fail r
  | None ->
      Alcotest.(check bool) "interpretation is orders of magnitude slower" true
        (ctf.Common.time > 20. *. Cost.total spd.Core.Spdistal.cost)

let test_petsc_pairwise_add_penalty () =
  let b = Lazy.force b in
  let c = Core.Kernels.shift_last_dim ~name:"C" ~by:1 b in
  let d = Core.Kernels.shift_last_dim ~name:"D" ~by:2 b in
  let m = machine 2 in
  let _, petsc = Petsc.spadd3 ~machine:m b c d in
  let spd = Core.Spdistal.run (Core.Kernels.spadd3_problem ~machine:m b ~c ~d) in
  Alcotest.(check bool) "pairwise adds slower than fusion" true
    (petsc.Common.time > Cost.total spd.Core.Spdistal.cost)

let test_petsc_unsupported () =
  let m = machine 2 in
  let mg = Machine.make ~kind:Machine.Gpu [| 2 |] in
  let b = Lazy.force b in
  let c = Core.Kernels.shift_last_dim ~name:"C" ~by:1 b in
  let d = Core.Kernels.shift_last_dim ~name:"D" ~by:2 b in
  let _, r = Petsc.spadd3 ~machine:mg b c d in
  Alcotest.(check bool) "petsc gpu spadd3 is DNC" true (r.Common.dnc <> None);
  ignore m

let test_ctf_requires_cpu () =
  let mg = Machine.make ~kind:Machine.Gpu [| 2 |] in
  let b = Lazy.force b in
  let x = Core.Kernels.dense_vec "x" 20 and y = Dense.vec_create "y" 20 in
  Alcotest.check_raises "ctf gpu rejected"
    (Invalid_argument "Ctf: no usable GPU backend (paper \xc2\xa7VI)") (fun () ->
      ignore (Ctf.spmv ~machine:mg b ~x ~y))

let test_trilinos_uvm_pages_instead_of_oom () =
  (* Trilinos fits oversize GPU problems via UVM at a paging penalty. *)
  let b = Helpers.rand_csr ~seed:33 60 60 0.4 in
  let params = Machine.scale_params 5e8 Machine.lassen in
  let mg = Machine.make ~params ~kind:Machine.Gpu [| 2 |] in
  let c = Core.Kernels.dense_mat "C" 60 8 and a = Dense.mat_create "A" 60 8 in
  let r = Trilinos.spmm ~machine:mg b ~c ~a in
  Alcotest.(check bool) "trilinos completes under memory pressure" true
    (r.Common.dnc = None);
  (* PETSc DNCs on the same configuration. *)
  let c2 = Core.Kernels.dense_mat "C" 60 8 and a2 = Dense.mat_create "A" 60 8 in
  let rp = Petsc.spmm ~machine:mg b ~c:c2 ~a:a2 in
  Alcotest.(check bool) "petsc OOMs" true (rp.Common.dnc <> None)

let test_row_block_analysis () =
  let coo =
    Coo.make [| 4; 4 |]
      [ ([| 0; 0 |], 1.); ([| 0; 3 |], 1.); ([| 1; 1 |], 1.); ([| 3; 0 |], 1.) ]
  in
  let t = Tensor.csr ~name:"T" coo in
  Alcotest.(check (list int)) "nnz per 2 blocks" [ 3; 1 ]
    (Array.to_list (Common.row_block_nnz t ~blocks:2));
  (* Ghosts: block 0 owns cols 0-1, its rows touch col 3 -> 1 ghost;
     block 1 owns cols 2-3, its rows touch col 0 -> 1 ghost. *)
  Alcotest.(check (list int)) "ghosts" [ 1; 1 ]
    (Array.to_list (Common.row_block_ghosts t ~blocks:2))

let suite =
  [
    Alcotest.test_case "baseline numerics agree (spmv)" `Quick test_numerics_agree;
    Alcotest.test_case "baseline numerics agree (spadd3)" `Quick test_add3_agree;
    Alcotest.test_case "seq_add3 reference" `Quick test_seq_add3_matches_reference;
    Alcotest.test_case "CTF interpretation penalty" `Quick
      test_ctf_slower_than_spdistal;
    Alcotest.test_case "PETSc pairwise-add penalty" `Quick
      test_petsc_pairwise_add_penalty;
    Alcotest.test_case "PETSc GPU spadd3 unsupported" `Quick test_petsc_unsupported;
    Alcotest.test_case "CTF is CPU-only" `Quick test_ctf_requires_cpu;
    Alcotest.test_case "Trilinos UVM vs PETSc OOM" `Quick
      test_trilinos_uvm_pages_instead_of_oom;
    Alcotest.test_case "row block analysis" `Quick test_row_block_analysis;
  ]
