(* Runtime-layer coverage not exercised elsewhere: Task launches, transfer
   pricing, region semantics, coordinate-tree printing. *)

open Spdistal_runtime

let m_cpu = Machine.make ~kind:Machine.Cpu [| 4 |]
let m_gpu = Machine.make ~kind:Machine.Gpu [| 8 |]

let test_transfers_time () =
  let open Task in
  Helpers.check_float "empty list free" 0. (transfers_time m_cpu []);
  let t = { bytes = 1e6; intra_node = false; messages = 1 } in
  Alcotest.(check bool) "one transfer priced" true (transfers_time m_cpu [ t ] > 0.);
  (* Extra messages add latency. *)
  let t3 = { t with messages = 3 } in
  Alcotest.(check bool) "messages add alpha" true
    (transfers_time m_cpu [ t3 ] > transfers_time m_cpu [ t ]);
  (* Serialization: two transfers cost the sum. *)
  Helpers.check_float "serialized"
    (2. *. transfers_time m_cpu [ t ])
    (transfers_time m_cpu [ t; t ])

let test_index_launch () =
  let cost = Cost.create () in
  let executed = Array.make 4 false in
  Task.index_launch cost m_cpu
    ~comm:(fun p ->
      if p = 0 then [ { Task.bytes = 1e6; intra_node = false; messages = 1 } ]
      else [])
    ~work:(fun p ->
      executed.(p) <- true;
      { Task.flops = 1e9; bytes_read = 1e8; bytes_written = 0.; atomics = false })
    ();
  Alcotest.(check bool) "all pieces executed" true (Array.for_all Fun.id executed);
  Alcotest.(check int) "one launch" 1 cost.Cost.launches;
  Helpers.check_float "bytes recorded" 1e6 cost.Cost.bytes_moved;
  Helpers.check_float "flops recorded" 4e9 cost.Cost.flops;
  Alcotest.(check bool) "clock advanced" true (Cost.total cost > 0.)

let test_region_semantics () =
  let r = Region.create "r" 5 0 in
  Region.set r 2 42;
  Alcotest.(check int) "get after set" 42 (Region.get r 2);
  Alcotest.(check int) "size" 5 (Region.size r);
  let sub = Region.subregion r (Iset.interval 1 3) in
  Alcotest.(check int) "subregion shares storage" 42 (Region.get sub 2);
  Region.set sub 3 7;
  Alcotest.(check int) "writes visible through parent" 7 (Region.get r 3);
  Alcotest.(check int) "subregion size" 3 (Region.size sub);
  Alcotest.(check int) "extent is parent's" 5 (Region.extent sub);
  Alcotest.(check bool) "ids distinct across allocations" true
    ((Region.create "a" 1 0).Region.id <> (Region.create "b" 1 0).Region.id);
  Alcotest.(check int) "subregion keeps parent id" r.Region.id sub.Region.id;
  Alcotest.check_raises "subregion escaping parent"
    (Invalid_argument "Region.subregion: r: not a subset") (fun () ->
      ignore (Region.subregion r (Iset.interval 3 9)));
  Helpers.check_float "fold sums" (42. +. 7.)
    (Region.fold (fun _ v acc -> float_of_int v +. acc) sub 0.)

let test_gpu_p2p_vs_network () =
  Alcotest.(check bool) "nvlink faster than network" true
    (Machine.p2p_time m_gpu ~intra_node:true ~bytes:1e7
    < Machine.p2p_time m_gpu ~intra_node:false ~bytes:1e7)

let test_coord_tree_pp () =
  let t =
    Spdistal_formats.Tensor.csr ~name:"B"
      (Spdistal_formats.Coo.make [| 2; 2 |]
         [ ([| 0; 0 |], 1.); ([| 1; 1 |], 2. ) ])
  in
  let s =
    Format.asprintf "%a" Spdistal_formats.Coord_tree.pp
      (Spdistal_formats.Coord_tree.of_tensor t)
  in
  Alcotest.(check bool) "renders values" true (Helpers.contains s "0=1");
  Alcotest.(check bool) "renders second row" true (Helpers.contains s "1=2")

let test_iset_stress () =
  (* Large interval algebra stays consistent. *)
  let evens = Iset.of_intervals (List.init 500 (fun i -> (4 * i, (4 * i) + 1))) in
  let all = Iset.range 2000 in
  let odds = Iset.diff all evens in
  Alcotest.(check int) "cardinalities partition" 2000
    (Iset.cardinal evens + Iset.cardinal odds);
  Alcotest.(check bool) "disjoint" true (Iset.disjoint evens odds);
  Alcotest.(check bool) "union restores" true
    (Iset.equal all (Iset.union evens odds));
  Alcotest.(check int) "interval count" 500 (Iset.interval_count evens)

let test_partition_pp () =
  let p = Partition.equal_blocks (Iset.range 6) 2 in
  let s = Format.asprintf "%a" Partition.pp p in
  Alcotest.(check bool) "labels disjoint" true (Helpers.contains s "disjoint")

let suite =
  [
    Alcotest.test_case "transfers pricing" `Quick test_transfers_time;
    Alcotest.test_case "index launch" `Quick test_index_launch;
    Alcotest.test_case "region semantics" `Quick test_region_semantics;
    Alcotest.test_case "nvlink vs network" `Quick test_gpu_p2p_vs_network;
    Alcotest.test_case "coord tree printing" `Quick test_coord_tree_pp;
    Alcotest.test_case "iset stress" `Quick test_iset_stress;
    Alcotest.test_case "partition printing" `Quick test_partition_pp;
  ]
