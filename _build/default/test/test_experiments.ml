open Spdistal_runtime
open Spdistal_experiments
module Common = Spdistal_baselines.Common

(* These tests pin the paper's *qualitative* results: who wins, where the
   crossovers and DNC cells fall. *)

let test_runner_systems () =
  Alcotest.(check int) "CPU SpMV compares four systems" 4
    (List.length (Runner.systems_for Runner.Spmv Machine.Cpu));
  Alcotest.(check bool) "GPU has no CTF" true
    (not (List.mem Runner.Ctf (Runner.systems_for Runner.Spmv Machine.Gpu)));
  Alcotest.(check bool) "GPU SpMM includes the batched variant" true
    (List.mem Runner.Spdistal_batched (Runner.systems_for Runner.Spmm Machine.Gpu))

let small_matrix =
  lazy
    (Spdistal_workloads.Synth.power_law ~name:"pl-test" ~rows:2_000 ~cols:2_000
       ~nnz:30_000 ~alpha:1.0 ~seed:77)

let test_runner_cells () =
  let b = Lazy.force small_matrix in
  let m = Runner.cpu_machine ~nodes:2 in
  List.iter
    (fun system ->
      let r = Runner.run ~kernel:Runner.Spmv ~system ~machine:m b in
      Alcotest.(check bool)
        (Runner.system_name system ^ " completes")
        true
        (r.Common.dnc = None && r.Common.time > 0.))
    (Runner.systems_for Runner.Spmv Machine.Cpu)

let test_spdistal_beats_ctf_by_orders () =
  let b = Lazy.force small_matrix in
  let m = Runner.cpu_machine ~nodes:2 in
  let spd = Runner.run ~kernel:Runner.Spmv ~system:Runner.Spdistal ~machine:m b in
  let ctf = Runner.run ~kernel:Runner.Spmv ~system:Runner.Ctf ~machine:m b in
  Alcotest.(check bool) "order-of-magnitude gap (paper: 299x median)" true
    (ctf.Common.time > 50. *. spd.Common.time)

let test_petsc_competitive_on_spmv () =
  let b = Lazy.force small_matrix in
  let m = Runner.cpu_machine ~nodes:2 in
  let spd = Runner.run ~kernel:Runner.Spmv ~system:Runner.Spdistal ~machine:m b in
  let petsc = Runner.run ~kernel:Runner.Spmv ~system:Runner.Petsc ~machine:m b in
  let ratio = petsc.Common.time /. spd.Common.time in
  Alcotest.(check bool)
    (Printf.sprintf "PETSc within hand-written range (got %.2fx)" ratio)
    true
    (ratio > 0.5 && ratio < 6.)

(* DNC pattern pins (paper Fig. 10 captions). *)
let test_ctf_dnc_patterns () =
  let music = (Spdistal_workloads.Datasets.find "freebase_music").Spdistal_workloads.Datasets.load () in
  let sampled = (Spdistal_workloads.Datasets.find "freebase_sampled").Spdistal_workloads.Datasets.load () in
  let patents = (Spdistal_workloads.Datasets.find "patents").Spdistal_workloads.Datasets.load () in
  let run k nodes t =
    Runner.run ~kernel:k ~system:Runner.Ctf ~machine:(Runner.cpu_machine ~nodes) t
  in
  (* "CTF OOM'ed on the freebase_music tensor on 1 and 2 nodes" *)
  Alcotest.(check bool) "music MTTKRP DNC at 1 node" true
    ((run Runner.Mttkrp 1 music).Common.dnc <> None);
  Alcotest.(check bool) "music MTTKRP DNC at 2 nodes" true
    ((run Runner.Mttkrp 2 music).Common.dnc <> None);
  Alcotest.(check bool) "music MTTKRP completes at 4 nodes" true
    ((run Runner.Mttkrp 4 music).Common.dnc = None);
  (* "on the freebase_sampled tensor at all node counts" *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "sampled MTTKRP DNC at %d nodes" n)
        true
        ((run Runner.Mttkrp n sampled).Common.dnc <> None))
    [ 1; 2; 4; 8; 16; 32 ];
  (* "CTF OOM'ed on the patents tensor on 1 node" (SpTTV) *)
  Alcotest.(check bool) "patents SpTTV DNC at 1 node" true
    ((run Runner.Spttv 1 patents).Common.dnc <> None);
  Alcotest.(check bool) "patents SpTTV completes at 2 nodes" true
    ((run Runner.Spttv 2 patents).Common.dnc = None);
  (* CTF completes patents MTTKRP (and competitively, paper Fig. 10f). *)
  Alcotest.(check bool) "patents MTTKRP completes at 1 node" true
    ((run Runner.Mttkrp 1 patents).Common.dnc = None)

let test_fig10_quick_pipeline () =
  let cells = Fig10.compute ~quick:true () in
  Alcotest.(check bool) "produced cells" true (List.length cells > 50);
  let s = Format.asprintf "%a" Fig10.print cells in
  Alcotest.(check bool) "renders SpMV section" true (Helpers.contains s "SpMV");
  match Fig10.median_speedup cells ~kernel:Runner.Spmv ~vs:Runner.Ctf with
  | Some m -> Alcotest.(check bool) "CTF median speedup large" true (m > 20.)
  | None -> Alcotest.fail "no median"

let test_fig12_quick_pipeline () =
  let cells = Fig12.compute ~quick:true () in
  Alcotest.(check bool) "produced cells" true (List.length cells > 0);
  let s = Format.asprintf "%a" Fig12.print cells in
  Alcotest.(check bool) "renders" true (Helpers.contains s "SpTTV")

let test_fig13_quick_pipeline () =
  let points = Fig13.compute ~quick:true () in
  let cpu_spd =
    List.filter
      (fun p ->
        p.Fig13.kind = Machine.Cpu && p.Fig13.system = Runner.Spdistal)
      points
  in
  Alcotest.(check int) "two CPU points" 2 (List.length cpu_spd);
  List.iter
    (fun p ->
      Alcotest.(check bool) "completes" true (p.Fig13.time <> None))
    points;
  (* Weak scaling: times stay within 2x across piece counts. *)
  (match cpu_spd with
  | [ a; b ] -> (
      match (a.Fig13.time, b.Fig13.time) with
      | Some ta, Some tb ->
          Alcotest.(check bool) "flat-ish weak scaling" true
            (Float.max ta tb /. Float.min ta tb < 2.)
      | _ -> Alcotest.fail "missing times")
  | _ -> ());
  let s = Format.asprintf "%a" Fig13.print points in
  Alcotest.(check bool) "renders" true (Helpers.contains s "weak scaling")

let test_gpu_spmv_spdistal_vs_petsc () =
  (* Paper: SpDISTAL outperforms PETSc on most GPU SpMV configurations. *)
  let b = Lazy.force small_matrix in
  let m = Runner.gpu_machine ~gpus:4 in
  let spd = Runner.run ~kernel:Runner.Spmv ~system:Runner.Spdistal ~machine:m b in
  let petsc = Runner.run ~kernel:Runner.Spmv ~system:Runner.Petsc ~machine:m b in
  Alcotest.(check bool) "both complete" true
    (spd.Common.dnc = None && petsc.Common.dnc = None);
  Alcotest.(check bool) "SpDISTAL at least competitive" true
    (spd.Common.time < 1.5 *. petsc.Common.time)

let test_gpu_sddmm_fits_at_scale () =
  (* Fig. 11 SDDMM: the nnz-based GPU kernel OOMs at small GPU counts (B plus
     gathered factors exceed device memory) and completes once spread. *)
  let b = (Spdistal_workloads.Datasets.find "arabic-2005").Spdistal_workloads.Datasets.load () in
  let at gpus =
    Runner.run ~kernel:Runner.Sddmm ~system:Runner.Spdistal
      ~machine:(Runner.gpu_machine ~gpus) b
  in
  Alcotest.(check bool) "DNC at 1 GPU" true ((at 1).Common.dnc <> None);
  Alcotest.(check bool) "completes at 16 GPUs" true ((at 16).Common.dnc = None)

let test_csv_export () =
  let cells = Fig13.compute ~quick:true () in
  let csv = Csv.fig13 cells in
  Alcotest.(check bool) "header" true
    (Helpers.contains csv "kind,pieces,system,seconds");
  Alcotest.(check bool) "has cpu rows" true (Helpers.contains csv "cpu,1,SpDISTAL");
  let dir = Filename.temp_file "spdistal" "" in
  Sys.remove dir;
  let paths =
    Csv.write_all ~dir ~fig10:[] ~fig11:[] ~fig12:[] ~fig13:cells
  in
  Alcotest.(check int) "four files" 4 (List.length paths);
  List.iter (fun p -> Alcotest.(check bool) p true (Sys.file_exists p)) paths

let test_ablations_smoke () =
  let s = Format.asprintf "%a" Ablations.run_all () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (Helpers.contains s needle))
    [
      "universe vs non-zero partitions";
      "matched vs mismatched";
      "fused vs pairwise";
      "load-balanced";
      "format language";
      "COO (nonunique+singleton)";
    ]

let suite =
  [
    Alcotest.test_case "runner system lists" `Quick test_runner_systems;
    Alcotest.test_case "runner cells complete" `Quick test_runner_cells;
    Alcotest.test_case "CTF gap (Fig 10a)" `Quick test_spdistal_beats_ctf_by_orders;
    Alcotest.test_case "PETSc competitive (Fig 10a)" `Quick
      test_petsc_competitive_on_spmv;
    Alcotest.test_case "CTF DNC patterns (Fig 10 captions)" `Slow
      test_ctf_dnc_patterns;
    Alcotest.test_case "fig10 quick pipeline" `Slow test_fig10_quick_pipeline;
    Alcotest.test_case "fig12 quick pipeline" `Slow test_fig12_quick_pipeline;
    Alcotest.test_case "fig13 quick pipeline" `Slow test_fig13_quick_pipeline;
    Alcotest.test_case "GPU SpMV vs PETSc (Fig 11)" `Quick
      test_gpu_spmv_spdistal_vs_petsc;
    Alcotest.test_case "GPU SDDMM OOM boundary (Fig 11)" `Slow
      test_gpu_sddmm_fits_at_scale;
    Alcotest.test_case "ablations render" `Slow test_ablations_smoke;
    Alcotest.test_case "csv export" `Slow test_csv_export;
  ]
