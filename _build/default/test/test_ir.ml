open Spdistal_ir

(* --- TIN ---------------------------------------------------------------- *)

let test_tin_vars () =
  Alcotest.(check (list string)) "spmv vars" [ "i"; "j" ] (Tin.index_vars Tin.spmv);
  Alcotest.(check (list string)) "spmv reductions" [ "j" ]
    (Tin.reduction_vars Tin.spmv);
  Alcotest.(check (list string)) "mttkrp vars" [ "i"; "l"; "j"; "k" ]
    (Tin.index_vars Tin.spmttkrp);
  Alcotest.(check (list string)) "sddmm reductions" [ "k" ]
    (Tin.reduction_vars Tin.sddmm)

let test_tin_shape () =
  Alcotest.(check bool) "spadd3 is pure addition" true
    (Tin.is_pure_addition Tin.spadd3);
  Alcotest.(check bool) "spmv is not" false (Tin.is_pure_addition Tin.spmv);
  Alcotest.(check int) "spadd3 rhs accesses" 3
    (List.length (Tin.rhs_accesses Tin.spadd3))

let test_tin_pp () =
  Alcotest.(check string) "spmv renders" "a(i) = B(i,j) * c(j)"
    (Tin.to_string Tin.spmv);
  Alcotest.(check string) "spadd3 renders" "A(i,j) = B(i,j) + C(i,j) + D(i,j)"
    (Tin.to_string Tin.spadd3)

let test_tin_validate () =
  let orders = [ ("a", 1); ("B", 2); ("c", 1) ] in
  let order_of n = List.assoc n orders in
  Tin.validate ~order_of Tin.spmv;
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Tin.validate: a accessed with 1 indices, order 3")
    (fun () -> Tin.validate ~order_of:(fun _ -> 3) Tin.spmv);
  let bad = Tin.assign "a" [ "i" ] (Tin.access "B" [ "j"; "k" ]) in
  Alcotest.check_raises "unbound lhs var"
    (Invalid_argument "Tin.validate: lhs var i not bound on the rhs")
    (fun () ->
      Tin.validate ~order_of:(fun n -> if n = "a" then 1 else 2) bad)

(* --- Schedule ----------------------------------------------------------- *)

let test_analyze_universe () =
  let plan = Schedule.analyze Tin.spmv (Core.Kernels.spmv_row ()) in
  (match plan.Schedule.strategy with
  | Schedule.Universe_dist { var } -> Alcotest.(check string) "root var" "i" var
  | Schedule.Non_zero_dist _ -> Alcotest.fail "expected universe");
  Alcotest.(check (list string)) "dist vars" [ "io" ] plan.Schedule.dist_vars;
  Alcotest.(check bool) "parallel leaf" true (plan.Schedule.parallel_leaf <> None)

let test_analyze_nnz () =
  let plan = Schedule.analyze Tin.sddmm (Core.Kernels.sddmm_nnz ()) in
  match plan.Schedule.strategy with
  | Schedule.Non_zero_dist { tensor; fused } ->
      Alcotest.(check string) "pos tensor" "B" tensor;
      Alcotest.(check (list string)) "fused vars" [ "i"; "j" ] fused
  | Schedule.Universe_dist _ -> Alcotest.fail "expected non-zero"

let test_analyze_2d () =
  let plan = Schedule.analyze Tin.spmm (Core.Kernels.spmm_batched ()) in
  Alcotest.(check (list string)) "two dist vars" [ "io"; "jo" ]
    plan.Schedule.dist_vars;
  Alcotest.(check bool) "secondary" true (plan.Schedule.secondary_var <> None)

let test_analyze_errors () =
  Alcotest.check_raises "no distribute"
    (Invalid_argument "Schedule.analyze: no distribute command") (fun () ->
      ignore (Schedule.analyze Tin.spmv []));
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Schedule.analyze: unknown variable z") (fun () ->
      ignore (Schedule.analyze Tin.spmv [ Schedule.Distribute [ "z" ] ]));
  (* Distributing a fused var without pos needs the transformation first. *)
  Alcotest.check_raises "fused without pos"
    (Invalid_argument
       "Schedule.analyze: distributing a fused coordinate loop requires a pos \
        transformation first") (fun () ->
      ignore
        (Schedule.analyze Tin.spmv
           [
             Schedule.Fuse { f = "f"; a = "i"; b = "j" };
             Schedule.Distribute [ "f" ];
           ]))

let test_analyze_split_reorder () =
  (* split and reorder pass through provenance without affecting the
     distribution strategy. *)
  let sched =
    [
      Schedule.Split { v = "i"; outer = "io"; inner = "ii"; factor = 64 };
      Schedule.Reorder [ "io"; "j"; "ii" ];
      Schedule.Distribute [ "io" ];
      Schedule.Communicate { tensors = [ "a"; "B"; "c" ]; at = "io" };
      Schedule.Parallelize { v = "ii"; proc = Schedule.Cpu_thread };
    ]
  in
  let plan = Schedule.analyze Tin.spmv sched in
  (match plan.Schedule.strategy with
  | Schedule.Universe_dist { var } -> Alcotest.(check string) "root" "i" var
  | _ -> Alcotest.fail "expected universe");
  Alcotest.(check bool) "no workspace" false plan.Schedule.workspace;
  (* And the lowered program still executes correctly. *)
  let b = Helpers.rand_csr ~seed:91 10 10 0.4 in
  let prob =
    Core.Kernels.spmv_problem
      ~machine:(Core.Spdistal.machine ~kind:Spdistal_runtime.Machine.Cpu [| 2 |])
      ~schedule:sched b
  in
  let res = Core.Spdistal.run prob in
  Alcotest.(check bool) "runs" true (res.Core.Spdistal.dnc = None);
  Alcotest.(check bool) "exact" true
    (Spdistal_exec.Validate.max_error (Core.Spdistal.bindings prob) Tin.spmv
     < 1e-9)

(* --- TDN ---------------------------------------------------------------- *)

let test_tdn_blocked () =
  let stmt, sched =
    Tdn.to_schedule ~tensor:"B" ~order:2 (Tdn.Blocked { tensor_dim = 0; machine_dim = 0 })
  in
  Alcotest.(check string) "identity stmt" "B(x,y) = B(x,y)" (Tin.to_string stmt);
  let plan = Schedule.analyze stmt sched in
  match plan.Schedule.strategy with
  | Schedule.Universe_dist { var } -> Alcotest.(check string) "blocks x" "x" var
  | _ -> Alcotest.fail "expected universe"

let test_tdn_fused_nnz () =
  let stmt, sched =
    Tdn.to_schedule ~tensor:"B" ~order:3
      (Tdn.Fused_non_zero { dims = [ 0; 1; 2 ]; machine_dim = 0 })
  in
  let plan = Schedule.analyze stmt sched in
  match plan.Schedule.strategy with
  | Schedule.Non_zero_dist { tensor; fused } ->
      Alcotest.(check string) "tensor" "B" tensor;
      Alcotest.(check (list string)) "all dims fused" [ "x"; "y"; "z" ] fused
  | _ -> Alcotest.fail "expected non-zero"

let test_tdn_replicated_rejected () =
  Alcotest.check_raises "replicated has no partition"
    (Invalid_argument "Tdn.to_schedule: Replicated has no partition") (fun () ->
      ignore (Tdn.to_schedule ~tensor:"c" ~order:1 Tdn.Replicated))

let test_tdn_pp () =
  Alcotest.(check string) "fused notation" "B |->^{xy->f}_~f M.0"
    (Format.asprintf "%a" (Tdn.pp ~tensor:"B")
       (Tdn.Fused_non_zero { dims = [ 0; 1 ]; machine_dim = 0 }))

(* --- Lower -------------------------------------------------------------- *)

let spmv_env =
  [
    ("a", Lower.Vec_op);
    ( "B",
      Lower.Sparse_op
        {
          formats = [| Spdistal_formats.Level.Dense_k; Spdistal_formats.Level.Compressed_k |];
          mode_order = [| 0; 1 |];
        } );
    ("c", Lower.Vec_op);
  ]

let test_lower_spmv_row () =
  let prog = Lower.lower ~env:spmv_env ~grid:[| 4 |] Tin.spmv (Core.Kernels.spmv_row ()) in
  Alcotest.(check int) "pieces" 4 (Loop_ir.pieces prog);
  (* The generated partition chain matches paper Fig. 9b: a bounds partition
     of the rows, pos copy, crd image, vals copy. *)
  Alcotest.(check (list string)) "partitions"
    [ "B1Part"; "B2PosPart"; "B2CrdPart"; "BValsPart"; "cGatherPart_j" ]
    (Loop_ir.defined_partitions prog);
  (* Exactly one distributed loop with a row-based leaf. *)
  let leafs =
    List.filter_map
      (function
        | Loop_ir.Distributed_for { leaf; _ } -> Some leaf
        | _ -> None)
      prog.Loop_ir.stmts
  in
  match leafs with
  | [ leaf ] ->
      Alcotest.(check bool) "not nnz split" false leaf.Loop_ir.nnz_split;
      Alcotest.(check bool) "no reduction" false leaf.Loop_ir.out_reduce;
      Alcotest.(check bool) "parallel" true leaf.Loop_ir.parallel
  | _ -> Alcotest.fail "expected one distributed loop"

let test_lower_spmv_nnz () =
  let prog = Lower.lower ~env:spmv_env ~grid:[| 4 |] Tin.spmv (Core.Kernels.spmv_nnz ()) in
  (* Non-zero strategy: crd bounds partition first, then preimage up. *)
  Alcotest.(check (list string)) "partitions"
    [ "B2CrdPart"; "B2PosPart"; "BValsPart"; "cGatherPart_j" ]
    (Loop_ir.defined_partitions prog);
  let leafs =
    List.filter_map
      (function
        | Loop_ir.Distributed_for { leaf; out_comm; _ } -> Some (leaf, out_comm)
        | _ -> None)
      prog.Loop_ir.stmts
  in
  match leafs with
  | [ (leaf, out_comm) ] ->
      Alcotest.(check bool) "nnz split" true leaf.Loop_ir.nnz_split;
      Alcotest.(check bool) "output reduction" true leaf.Loop_ir.out_reduce;
      Alcotest.(check bool) "output comm present" true (out_comm <> None)
  | _ -> Alcotest.fail "expected one distributed loop"

let test_lower_rejects_multi_sparse_product () =
  let env =
    [
      ("a", Lower.Vec_op);
      ( "B",
        Lower.Sparse_op
          {
            formats = [| Spdistal_formats.Level.Dense_k; Spdistal_formats.Level.Compressed_k |];
            mode_order = [| 0; 1 |];
          } );
      ( "c",
        Lower.Sparse_op
          {
            formats = [| Spdistal_formats.Level.Compressed_k |];
            mode_order = [| 0 |];
          } );
    ]
  in
  Alcotest.check_raises "two sparse operands in a product"
    (Invalid_argument "Lower: products need exactly one sparse operand")
    (fun () ->
      ignore (Lower.lower ~env ~grid:[| 2 |] Tin.spmv (Core.Kernels.spmv_row ())))

let test_pretty_output () =
  let prog = Lower.lower ~env:spmv_env ~grid:[| 2 |] Tin.spmv (Core.Kernels.spmv_row ()) in
  let s = Pretty.prog_to_string prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %s" needle) true
        (Helpers.contains s needle))
    [ "partitionByBounds"; "image"; "distributed for"; "B2PosPart" ]

let suite =
  [
    Alcotest.test_case "tin index vars" `Quick test_tin_vars;
    Alcotest.test_case "tin shapes" `Quick test_tin_shape;
    Alcotest.test_case "tin printing" `Quick test_tin_pp;
    Alcotest.test_case "tin validation" `Quick test_tin_validate;
    Alcotest.test_case "analyze universe schedule" `Quick test_analyze_universe;
    Alcotest.test_case "analyze nnz schedule" `Quick test_analyze_nnz;
    Alcotest.test_case "analyze 2-D schedule" `Quick test_analyze_2d;
    Alcotest.test_case "analyze errors" `Quick test_analyze_errors;
    Alcotest.test_case "split and reorder" `Quick test_analyze_split_reorder;
    Alcotest.test_case "tdn blocked" `Quick test_tdn_blocked;
    Alcotest.test_case "tdn fused nnz" `Quick test_tdn_fused_nnz;
    Alcotest.test_case "tdn replicated rejected" `Quick test_tdn_replicated_rejected;
    Alcotest.test_case "tdn notation" `Quick test_tdn_pp;
    Alcotest.test_case "lower spmv row (Fig 9b)" `Quick test_lower_spmv_row;
    Alcotest.test_case "lower spmv nnz" `Quick test_lower_spmv_nnz;
    Alcotest.test_case "lower rejects sparse products" `Quick
      test_lower_rejects_multi_sparse_product;
    Alcotest.test_case "pretty printer" `Quick test_pretty_output;
  ]
