(* GPU SpMM: the load-balanced vs memory-conserving tradeoff of paper §VI-A2.

   The load-balanced schedule non-zero-splits B and gathers the needed rows
   of the dense C everywhere — fastest when it fits, OOM when it does not.
   The "SpDISTAL-Batched" schedule distributes both i and j on a 2-D machine
   grid, chunking C's columns to conserve memory at the cost of extra
   communication rounds.

   Run with: dune exec examples/spmm_gpu.exe *)

open Spdistal_runtime
open Spdistal_exec

let run name problem =
  let res = Core.Spdistal.run problem in
  match res.Core.Spdistal.dnc with
  | Some r -> Printf.printf "%-28s DNC (%s)\n" name r
  | None ->
      Printf.printf "%-28s %8.3f ms\n" name
        (1000. *. Cost.total res.Core.Spdistal.cost);
      (* Cheap spot-check against a sequential SpMM. *)
      let bindings = Core.Spdistal.bindings problem in
      let b = Operand.find_sparse bindings "B" in
      let a = Operand.find_mat bindings "A" in
      let c = Operand.find_mat bindings "C" in
      let expect =
        Spdistal_formats.Dense.mat_create "ref" a.Spdistal_formats.Dense.rows
          a.Spdistal_formats.Dense.cols
      in
      Spdistal_baselines.Common.seq_spmm b c expect;
      assert (Spdistal_formats.Dense.mat_dist a expect < 1e-9)

let () =
  let gpus = 8 in
  (* Scaled-down GPUs so the example exhibits the OOM boundary without
     gigabyte-scale inputs (cf. Machine.scale_params). *)
  let params = Machine.scale_params 14_500. Machine.lassen in
  let gpu1d = Core.Spdistal.machine ~params ~kind:Machine.Gpu [| gpus |] in
  let gpu2d = Core.Spdistal.machine ~params ~kind:Machine.Gpu [| gpus / 2; 2 |] in

  let b =
    Spdistal_workloads.Synth.uniform ~name:"B" ~rows:4_000 ~cols:4_000
      ~nnz:120_000 ~seed:3
  in
  Printf.printf "B: %d x %d, %d nnz; C: %d x 32; per-GPU memory %.2e B\n\n"
    b.Spdistal_formats.Tensor.dims.(0)
    b.Spdistal_formats.Tensor.dims.(1)
    (Spdistal_formats.Tensor.nnz b) b.Spdistal_formats.Tensor.dims.(1)
    (Machine.piece_mem gpu1d);

  (* The load-balanced kernel replicates C per GPU: OOM at this scale. *)
  run "load-balanced (nnz split)"
    (Core.Kernels.spmm_problem ~machine:gpu1d ~cols:32 ~nonzero_dist:true b);
  (* The batched kernel partitions C's columns over the grid's second dim. *)
  run "SpDISTAL-Batched (2-D)"
    (Core.Kernels.spmm_problem ~machine:gpu2d ~cols:32 ~batched:true b);

  (* With a narrower C both fit, and the load-balanced kernel wins. *)
  Printf.printf "\nnarrower C (8 columns):\n";
  run "load-balanced (nnz split)"
    (Core.Kernels.spmm_problem ~machine:gpu1d ~cols:8 ~nonzero_dist:true b);
  run "SpDISTAL-Batched (2-D)"
    (Core.Kernels.spmm_problem ~machine:gpu2d ~cols:8 ~batched:true b);
  print_newline ();
  print_endline
    "Paper Fig. 11: the load-balanced kernel is fastest once data fits into\n\
     GPU memory; the memory-conserving kernel wins when it does not."
