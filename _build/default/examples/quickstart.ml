(* Quickstart: the paper's Figure 1 — a distributed CPU SpMV.

   Declares the machine, the tensors (with formats and data distributions),
   the computation in tensor index notation, and a row-based schedule; then
   compiles (printing the generated partitioning plan, cf. paper Fig. 9b)
   and runs one timed iteration on the simulated machine.

   Run with: dune exec examples/quickstart.exe [pieces] *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec

let () =
  let pieces =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4
  in
  (* Define the machine M as a 1-D grid of processors (Fig. 1 line 5). *)
  let machine = Core.Spdistal.machine ~kind:Machine.Cpu [| pieces |] in

  (* A small sparse matrix B, a dense output a and a dense input c. *)
  let n = 1_000 and m = 1_200 in
  let b =
    Spdistal_workloads.Synth.power_law ~name:"B" ~rows:n ~cols:m ~nnz:20_000
      ~alpha:0.9 ~seed:42
  in
  let a = Dense.vec_create "a" n in
  let c = Dense.vec_init "c" m (fun i -> 1. +. float_of_int (i mod 7)) in

  (* Tensors with their formats and data distributions (Fig. 1 lines 12-22):
     a blocked, B row-wise blocked CSR, c replicated. *)
  let blocked = Tdn.Blocked { tensor_dim = 0; machine_dim = 0 } in
  let operands =
    [
      ("a", Operand.vec a, blocked);
      ("B", Operand.sparse b, blocked);
      ("c", Operand.vec c, Tdn.Replicated);
    ]
  in

  (* The computation (line 26) and the row-based schedule (lines 30-39):
     divide i, distribute the blocks, communicate, parallelize the leaf. *)
  let schedule =
    [
      Schedule.Divide { v = "i"; outer = "io"; inner = "ii" };
      Schedule.Distribute [ "io" ];
      Schedule.Communicate { tensors = [ "a"; "B"; "c" ]; at = "io" };
      Schedule.Parallelize { v = "ii"; proc = Schedule.Cpu_thread };
    ]
  in
  let problem = Core.Spdistal.problem ~machine ~operands ~stmt:Tin.spmv ~schedule in

  Printf.printf "statement:  %s\nschedule:\n%s\n\n" (Tin.to_string Tin.spmv)
    (Format.asprintf "%a" Schedule.pp schedule);
  Printf.printf "generated partitioning plan (cf. paper Fig. 9b):\n%s\n\n"
    (Core.Spdistal.show problem);

  let res = Core.Spdistal.run problem in
  (match res.Core.Spdistal.dnc with
  | Some r -> Printf.printf "DNC: %s\n" r
  | None ->
      Printf.printf "one timed iteration on %d node(s): %s\n" pieces
        (Format.asprintf "%a" Cost.pp res.Core.Spdistal.cost));

  (* Cross-check the distributed result against the dense reference. *)
  let err = Validate.max_error (Core.Spdistal.bindings problem) Tin.spmv in
  Printf.printf "max |distributed - reference| = %g %s\n" err
    (if err < 1e-9 then "(exact)" else "(MISMATCH!)")
