(* Tensor factorization workloads: SpTTV and SpMTTKRP on a 3-tensor (the
   data-analytics motivation of the paper's intro), on CPU and GPU machines,
   with row-based and non-zero-based schedules.

   Run with: dune exec examples/tensor_factorization.exe *)

open Spdistal_runtime
let run name problem =
  let res = Core.Spdistal.run problem in
  match res.Core.Spdistal.dnc with
  | Some r -> Printf.printf "%-34s DNC: %s\n" name r
  | None ->
      Printf.printf "%-34s %8.3f ms\n" name
        (1000. *. Cost.total res.Core.Spdistal.cost)

let () =
  let nodes = 4 in
  let cpu = Core.Spdistal.machine ~kind:Machine.Cpu [| nodes |] in
  let gpu = Core.Spdistal.machine ~kind:Machine.Gpu [| 4 * nodes |] in

  (* An NELL-like moderately dense 3-tensor. *)
  let b =
    Spdistal_workloads.Synth.tensor3_uniform ~name:"B" ~dims:[| 600; 500; 300 |]
      ~nnz:60_000 ~seed:11
  in
  Printf.printf "3-tensor: %s\n\n" (Format.asprintf "%a" Spdistal_formats.Tensor.pp b);

  Printf.printf "SpTTV: %s\n" (Spdistal_ir.Tin.to_string Spdistal_ir.Tin.spttv);
  run "CPU, row-based" (Core.Kernels.spttv_problem ~machine:cpu b);
  run "CPU, non-zero-based"
    (Core.Kernels.spttv_problem ~machine:cpu ~nonzero_dist:true b);
  run "GPU, non-zero-based (paper's pick)"
    (Core.Kernels.spttv_problem ~machine:gpu ~nonzero_dist:true b);

  Printf.printf "\nSpMTTKRP: %s\n" (Spdistal_ir.Tin.to_string Spdistal_ir.Tin.spmttkrp);
  run "CPU, row-based (paper's pick)"
    (Core.Kernels.mttkrp_problem ~machine:cpu ~cols:32 b);
  run "CPU, non-zero-based"
    (Core.Kernels.mttkrp_problem ~machine:cpu ~cols:32 ~nonzero_dist:true b);
  run "GPU, non-zero-based (paper's pick)"
    (Core.Kernels.mttkrp_problem ~machine:gpu ~cols:32 ~nonzero_dist:true b);
  print_newline ();
  print_endline
    "Paper §VI-A: on CPUs the leaf synchronization of the non-zero split\n\
     costs more than the load balance gains; on GPUs the balance across all\n\
     GPU threads wins (hence the paper's GPU kernels use the non-zero-based\n\
     schedules for SpTTV and SpMTTKRP)."
