(* Load balance: the two SpMV algorithms of paper §II-D on a skewed matrix.

   The row-based algorithm (universe partition of i) assigns each processor
   an equal range of rows — heavily skewed rows make some processors do far
   more work.  The non-zero-based algorithm fuses i and j, non-zero-splits
   the fused space (B |->^{ij->f}_~f M), and pays a reduction into a instead;
   its leaf work is perfectly balanced.

   Run with: dune exec examples/load_balance.exe *)

open Spdistal_runtime
open Spdistal_exec

let run name problem =
  let res = Core.Spdistal.run problem in
  match res.Core.Spdistal.dnc with
  | Some r -> Printf.printf "%-24s DNC: %s\n" name r
  | None ->
      let c = res.Core.Spdistal.cost in
      Printf.printf
        "%-24s time %8.3f ms   compute %8.3f ms   comm %8.3f ms   %.2e B moved\n"
        name
        (1000. *. Cost.total c)
        (1000. *. c.Cost.compute) (1000. *. c.Cost.comm) c.Cost.bytes_moved;
      (* Cheap correctness spot-check against a sequential SpMV. *)
      let b = Operand.find_sparse (Core.Spdistal.bindings problem) "B" in
      let a = Operand.find_vec (Core.Spdistal.bindings problem) "a" in
      let c_in = Operand.find_vec (Core.Spdistal.bindings problem) "c" in
      let expect = Spdistal_formats.Dense.vec_create "ref" a.Spdistal_formats.Dense.n in
      Spdistal_baselines.Common.seq_spmv b c_in expect;
      assert (Spdistal_formats.Dense.vec_dist a expect < 1e-9)

let () =
  let pieces = 16 in
  (* Lassen scaled to the workload size, so times read like full-size runs
     (see Machine.scale_params). *)
  let params = Machine.scale_params 5_000. Machine.lassen in
  let machine = Core.Spdistal.machine ~params ~kind:Machine.Cpu [| pieces |] in
  Printf.printf "machine: %s\n\n" (Format.asprintf "%a" Machine.pp machine);

  (* A matrix whose non-zeros concentrate in one region of the row space:
     universe partitions of i cannot balance it (paper Fig. 5's point), the
     fused non-zero partition can. *)
  let skewed =
    let rng = ref 99 in
    let next n = rng := ((!rng * 1103515245) + 12345) land 0x3fffffff; !rng mod n in
    let entries = ref [] in
    let rows = 20_000 and cols = 20_000 in
    for _ = 1 to 400_000 do
      (* Half the mass lands in the first 1/16th of the rows. *)
      let i = if next 2 = 0 then next (rows / 16) else next rows in
      entries := ([| i; next cols |], 1.) :: !entries
    done;
    Spdistal_formats.Tensor.csr ~name:"skewed"
      (Spdistal_formats.Coo.make [| rows; cols |] !entries)
  in
  (* A balanced banded matrix for contrast. *)
  let banded = Spdistal_workloads.Synth.banded ~name:"banded" ~n:30_000 ~band:13 in

  Printf.printf "--- hub-concentrated matrix (%d nnz) ---\n"
    (Spdistal_formats.Tensor.nnz skewed);
  Printf.printf "data distributions: row-blocked vs fused non-zero (%s)\n"
    (Format.asprintf "%a" (Spdistal_ir.Tdn.pp ~tensor:"B")
       (Spdistal_ir.Tdn.Fused_non_zero { dims = [ 0; 1 ]; machine_dim = 0 }));
  run "row-based" (Core.Kernels.spmv_problem ~machine skewed);
  run "non-zero-based"
    (Core.Kernels.spmv_problem ~machine ~nonzero_dist:true
       ~schedule:(Core.Kernels.spmv_nnz ()) skewed);
  (* §II-D's closing remark: a row-based schedule over non-zero-placed data
     is valid but pays to reshape the data every iteration. *)
  run "mismatched (row/nnz)"
    (Core.Kernels.spmv_problem ~machine ~nonzero_dist:true
       ~schedule:(Core.Kernels.spmv_row ()) skewed);

  Printf.printf "\n--- balanced banded matrix (%d nnz) ---\n"
    (Spdistal_formats.Tensor.nnz banded);
  run "row-based" (Core.Kernels.spmv_problem ~machine banded);
  run "non-zero-based"
    (Core.Kernels.spmv_problem ~machine ~nonzero_dist:true
       ~schedule:(Core.Kernels.spmv_nnz ()) banded);
  print_newline ();
  print_endline
    "On the skewed matrix the non-zero split balances the leaf work; on the\n\
     balanced matrix it only adds reduction traffic (paper §II-D tradeoff)."
