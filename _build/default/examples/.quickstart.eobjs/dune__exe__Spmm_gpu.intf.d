examples/spmm_gpu.mli:
