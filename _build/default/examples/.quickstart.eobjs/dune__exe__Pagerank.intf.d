examples/pagerank.mli:
