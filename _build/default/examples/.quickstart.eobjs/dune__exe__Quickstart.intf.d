examples/quickstart.mli:
