examples/spmm_gpu.ml: Array Core Cost Machine Operand Printf Spdistal_baselines Spdistal_exec Spdistal_formats Spdistal_runtime Spdistal_workloads
