examples/quickstart.ml: Array Core Cost Dense Format Machine Operand Printf Schedule Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Spdistal_workloads Sys Tdn Tin Validate
