examples/pagerank.ml: Array Coo Core Cost Dense Float Machine Operand Printf Spdistal_exec Spdistal_formats Spdistal_ir Spdistal_runtime Spdistal_workloads Sys Tdn Tensor Tin
