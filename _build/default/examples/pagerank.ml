(* PageRank by power iteration: the kind of iterative sparse workload the
   paper's introduction motivates.  The matrix's partitions are compiled
   once; every iteration re-runs the same distributed SpMV while the rank
   vector changes — which is exactly the timed-iteration cost the simulator
   charges (sparse data stays put, vectors move).

   Run with: dune exec examples/pagerank.exe [iterations] *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec

let () =
  let iters = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let nodes_m = 8 in
  let params = Machine.scale_params 5_000. Machine.lassen in
  let machine = Core.Spdistal.machine ~params ~kind:Machine.Cpu [| nodes_m |] in

  (* A web-like link matrix, column-normalized (each page distributes its
     rank evenly over its outgoing links). *)
  let n = 20_000 in
  let g =
    Spdistal_workloads.Synth.power_law ~name:"G" ~rows:n ~cols:n ~nnz:300_000
      ~alpha:1.0 ~seed:23
  in
  let coo = Tensor.to_coo g in
  let outdeg = Array.make n 0 in
  Coo.iter (fun c _ -> outdeg.(c.(1)) <- outdeg.(c.(1)) + 1) coo;
  let entries = ref [] in
  Coo.iter
    (fun c _ ->
      entries := (Array.copy c, 1. /. float_of_int outdeg.(c.(1))) :: !entries)
    coo;
  let b = Tensor.csr ~name:"B" (Coo.make [| n; n |] !entries) in

  let damping = 0.85 in
  let rank = Dense.vec_init "c" n (fun _ -> 1. /. float_of_int n) in
  let next = Dense.vec_create "a" n in
  let blocked = Tdn.Blocked { tensor_dim = 0; machine_dim = 0 } in
  let problem =
    Core.Spdistal.problem ~machine
      ~operands:
        [
          ("a", Operand.vec next, blocked);
          ("B", Operand.sparse b, blocked);
          ("c", Operand.vec rank, Tdn.Replicated);
        ]
      ~stmt:Tin.spmv
      ~schedule:(Core.Kernels.spmv_row ())
  in

  Printf.printf "PageRank on a %d-page graph (%d links), %d nodes, %d iterations\n\n"
    n (Tensor.nnz b) nodes_m iters;
  let total = ref 0. in
  for it = 1 to iters do
    Dense.vec_fill next 0.;
    let res = Core.Spdistal.run problem in
    (match res.Core.Spdistal.dnc with
    | Some r -> failwith r
    | None -> total := !total +. Cost.total res.Core.Spdistal.cost);
    (* rank <- damping * B rank + (1 - damping)/n, and measure the change. *)
    let delta = ref 0. in
    for i = 0 to n - 1 do
      let v =
        (damping *. Dense.vec_get next i) +. ((1. -. damping) /. float_of_int n)
      in
      delta := !delta +. Float.abs (v -. Dense.vec_get rank i);
      Dense.vec_set rank i v
    done;
    if it <= 5 || it = iters then
      Printf.printf "iteration %2d: |delta|_1 = %.2e\n" it !delta
  done;
  let mass = Array.fold_left ( +. ) 0. rank.Dense.data in
  Printf.printf
    "\nrank mass %.6f (should stay ~1); simulated time %.3f ms per iteration\n"
    mass
    (1000. *. !total /. float_of_int iters);
  (* Top pages. *)
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare rank.Dense.data.(j) rank.Dense.data.(i)) idx;
  Printf.printf "top pages:";
  for k = 0 to 4 do
    Printf.printf " %d (%.2e)" idx.(k) rank.Dense.data.(idx.(k))
  done;
  print_newline ()
