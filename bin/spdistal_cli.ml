(* spdistal: command-line driver.

   Subcommands:
     run      -- run one kernel on one dataset/system/machine cell
     prof     -- run one kernel traced and print a Legion-Prof-style report
     show     -- print the compiled partitioning plan for a kernel
     table2   -- print the dataset inventory (paper Table II)
     fig10 | fig11 | fig12 | fig13 -- regenerate an evaluation figure
     datasets -- list the dataset analogs
     trace-check -- validate a Chrome trace-event JSON file *)

open Cmdliner
open Spdistal_runtime
open Spdistal_workloads
open Spdistal_experiments
module Trace = Spdistal_obs.Trace
module Chrome_trace = Spdistal_obs.Chrome_trace
module Report = Spdistal_obs.Report
module Metrics = Spdistal_obs.Metrics
module Log = Spdistal_obs.Log
module Slo = Spdistal_obs.Slo

let kernel_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "spmv" -> Ok Runner.Spmv
    | "spmm" -> Ok Runner.Spmm
    | "spadd3" -> Ok Runner.Spadd3
    | "sddmm" -> Ok Runner.Sddmm
    | "spttv" -> Ok Runner.Spttv
    | "mttkrp" | "spmttkrp" -> Ok Runner.Mttkrp
    | _ -> Error (`Msg (Printf.sprintf "unknown kernel %s" s))
  in
  Arg.conv (parse, fun fmt k -> Format.fprintf fmt "%s" (Runner.kernel_name k))

let system_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "spdistal" -> Ok Runner.Spdistal
    | "spdistal-batched" | "batched" -> Ok Runner.Spdistal_batched
    | "petsc" -> Ok Runner.Petsc
    | "trilinos" -> Ok Runner.Trilinos
    | "ctf" -> Ok Runner.Ctf
    | _ -> Error (`Msg (Printf.sprintf "unknown system %s" s))
  in
  Arg.conv (parse, fun fmt s -> Format.fprintf fmt "%s" (Runner.system_name s))

let kernel_arg =
  Arg.(required & pos 0 (some kernel_conv) None & info [] ~docv:"KERNEL")

let dataset_arg =
  Arg.(
    value
    & opt string "uk-2005"
    & info [ "d"; "dataset" ] ~docv:"NAME" ~doc:"Table II dataset analog")

let system_arg =
  Arg.(
    value
    & opt system_conv Runner.Spdistal
    & info [ "s"; "system" ] ~doc:"System: spdistal, spdistal-batched, petsc, trilinos, ctf")

let pieces_arg =
  Arg.(value & opt int 4 & info [ "n"; "pieces" ] ~doc:"Nodes (CPU) or GPUs")

let gpu_arg = Arg.(value & opt bool false & info [ "gpu" ] ~doc:"Use a GPU machine")
let cols_arg = Arg.(value & opt int 32 & info [ "cols" ] ~doc:"Dense width")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:
          "OCaml domains used to simulate the pieces of each distributed \
           launch concurrently (wall-clock only; results are bit-identical \
           at every degree).  0 defers to $(b,SPDISTAL_DOMAINS), which \
           defaults to 1 (sequential).")

(* Fold the --domains option into a command's action. *)
let set_domains d = if d > 0 then Machine.set_sim_domains d

let leaf_backend_conv =
  let module CL = Spdistal_exec.Compile_leaf in
  Arg.conv
    ( (fun s -> Result.map_error (fun m -> `Msg m) (CL.backend_of_string s)),
      fun fmt b -> Format.fprintf fmt "%s" (CL.backend_name b) )

let leaf_backend_arg =
  Arg.(
    value
    & opt (some leaf_backend_conv) None
    & info [ "leaf-backend" ] ~docv:"BACKEND"
        ~doc:
          "Leaf-kernel execution backend: $(b,compiled) (default) runs the \
           monomorphized per-(format x expression) closures specialized at \
           compile time; $(b,interp) runs the reference interpreter.  \
           Outputs, launch records and simulated cost are bit-identical \
           across backends (the interpreter is the differential oracle).  \
           Unset defers to $(b,SPDISTAL_LEAF_BACKEND).")

(* Fold --leaf-backend into a command's action: an explicit flag overrides
   SPDISTAL_LEAF_BACKEND for the whole process. *)
let set_leaf_backend = function
  | Some b -> Spdistal_exec.Compile_leaf.set_backend b
  | None -> ()

let fault_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the deterministic fault schedule (only meaningful with \
           $(b,--fault-rate) > 0).")

let fault_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "fault-rate" ] ~docv:"RATE"
        ~doc:
          "Per-event probability of node crash, message loss and straggler \
           injection.  Recovery is priced into the simulated cost; computed \
           tensors stay bit-identical to the fault-free run.  0 (default) \
           defers to $(b,SPDISTAL_FAULTS), which defaults to no faults.")

let max_retries_arg =
  Arg.(
    value & opt int 5
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Recovery attempts per fault before the run is declared DNC \
           (with $(b,--fault-rate)).")

(* Fold the fault options into a command's action: an explicit --fault-rate
   overrides SPDISTAL_FAULTS for the whole process. *)
let set_faults seed rate retries =
  if rate > 0. then Fault.set_default (Fault.make ~seed ~rate ~retries ())

let auto_arg =
  Arg.(
    value & flag
    & info [ "auto" ]
        ~doc:
          "Replace the hand-written schedule of SpDISTAL systems with the \
           auto-scheduler's pick: candidates from the statistics-driven \
           search are priced against the cost model (no leaf execution) and \
           the cheapest — never worse than the hand schedule — is run.  \
           Baseline systems are unaffected.")

let iterations_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "i"; "iterations" ] ~docv:"N"
        ~doc:
          "Run the kernel for $(docv) iterations through the warm-start \
           execution context: partitions are computed once on the cold first \
           iteration, cached, and reused by every subsequent launch \
           (Legion's dependent-partitioning amortization).  Baseline \
           systems re-pay their full launch each iteration.  Without this \
           flag the legacy single-shot protocol is used.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the partition/kernel cache: with $(b,--iterations), \
           partitions are rebuilt and re-priced on every iteration \
           (the unamortized curve).  Outputs are bit-identical either way.")

let load_dataset name =
  let e = Datasets.find name in
  e.Datasets.load ()

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv) (open in \
           Perfetto or chrome://tracing).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write per-launch metrics CSV of the run to $(docv).")

(* Install an ambient trace when any observability output was requested (the
   run path reaches the interpreter through the baselines' Runner, which
   takes no explicit trace), and export it afterwards. *)
let start_trace trace_out metrics_out =
  if trace_out <> None || metrics_out <> None then begin
    let t = Trace.create () in
    Trace.set_default t;
    t
  end
  else Trace.null

let finish_trace t trace_out metrics_out =
  (match trace_out with
  | Some path ->
      Chrome_trace.write t ~path;
      Printf.printf "trace written to %s\n" path
  | None -> ());
  match metrics_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Report.to_csv (Report.of_trace t));
      close_out oc;
      Printf.printf "metrics written to %s\n" path
  | None -> ()

let run_cmd =
  let f kernel dataset system pieces gpu cols auto domains leaf_backend fseed
      frate fretries trace_out metrics_out iterations no_cache =
    set_domains domains;
    set_leaf_backend leaf_backend;
    set_faults fseed frate fretries;
    let trace = start_trace trace_out metrics_out in
    let b = load_dataset dataset in
    let machine =
      if gpu then Runner.gpu_machine ~gpus:pieces else Runner.cpu_machine ~nodes:pieces
    in
    let r =
      Runner.run ~kernel ~system ~machine ~cols ~auto ?iterations
        ~cache:(not no_cache) b
    in
    (match r.Spdistal_baselines.Common.dnc with
    | Some reason -> Printf.printf "DNC: %s\n" reason
    | None ->
        let iters =
          match iterations with
          | Some n -> Printf.sprintf " (%d iterations%s)" n
                        (if no_cache then ", no cache" else "")
          | None -> ""
        in
        Printf.printf "%s on %s, %s, %d %s: %.3f ms%s\n"
          (Runner.kernel_name kernel) dataset (Runner.system_name system) pieces
          (if gpu then "GPU(s)" else "node(s)")
          (1000. *. r.Spdistal_baselines.Common.time)
          iters);
    finish_trace trace trace_out metrics_out;
    0
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one kernel/system/dataset cell")
    Term.(
      const f $ kernel_arg $ dataset_arg $ system_arg $ pieces_arg $ gpu_arg
      $ cols_arg $ auto_arg $ domains_arg $ leaf_backend_arg $ fault_seed_arg
      $ fault_rate_arg $ max_retries_arg $ trace_out_arg $ metrics_out_arg
      $ iterations_arg $ no_cache_arg)

(* The SpDISTAL problem of one kernel cell (shared by show, prof and auto). *)
let problem_for = Runner.problem_for

let prof_cmd =
  let f kernel dataset pieces gpu cols auto domains leaf_backend fseed frate
      fretries trace_out metrics_out iterations no_cache =
    set_domains domains;
    set_leaf_backend leaf_backend;
    set_faults fseed frate fretries;
    let b = load_dataset dataset in
    let machine =
      if gpu then Runner.gpu_machine ~gpus:pieces else Runner.cpu_machine ~nodes:pieces
    in
    let problem = problem_for ~kernel ~machine ~cols b in
    let problem = if auto then Spdistal_opt.Auto.schedule problem else problem in
    let trace = Trace.create () in
    Trace.set_meta trace "dataset" dataset;
    let r =
      Core.Spdistal.run ~trace ?iterations ~cache:(not no_cache) problem
    in
    (match r.Core.Spdistal.dnc with
    | Some reason -> Printf.printf "DNC: %s\n" reason
    | None ->
        Format.printf "%s on %s: %a@.@." (Runner.kernel_name kernel) dataset
          Cost.pp r.Core.Spdistal.cost;
        Format.printf "%a@." Report.pp (Report.of_trace trace));
    finish_trace trace trace_out metrics_out;
    if r.Core.Spdistal.dnc = None then 0 else 1
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:
         "Run one SpDISTAL kernel with tracing on and print a \
          Legion-Prof-style report: critical-path breakdown per launch, \
          per-node utilization, the node-to-node communication matrix and \
          piece-time imbalance")
    Term.(
      const f $ kernel_arg $ dataset_arg $ pieces_arg $ gpu_arg $ cols_arg
      $ auto_arg $ domains_arg $ leaf_backend_arg $ fault_seed_arg
      $ fault_rate_arg $ max_retries_arg $ trace_out_arg $ metrics_out_arg
      $ iterations_arg $ no_cache_arg)

let trace_check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let f path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Chrome_trace.validate s with
    | Ok () ->
        Printf.printf "%s: ok\n" path;
        0
    | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        1
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a Chrome trace-event JSON file (well-formed, monotone \
          timestamps per track)")
    Term.(const f $ file_arg)

let show_cmd =
  let f kernel dataset pieces gpu cols =
    let b = load_dataset dataset in
    let machine =
      if gpu then Runner.gpu_machine ~gpus:pieces else Runner.cpu_machine ~nodes:pieces
    in
    print_endline (Core.Spdistal.show (problem_for ~kernel ~machine ~cols b));
    0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the compiled partitioning plan (cf. paper Fig. 9b)")
    Term.(const f $ kernel_arg $ dataset_arg $ pieces_arg $ gpu_arg $ cols_arg)

let table2_cmd =
  let f () =
    Format.printf "%a@." Datasets.pp_table2 ();
    0
  in
  Cmd.v (Cmd.info "table2" ~doc:"Print the dataset inventory (paper Table II)")
    Term.(const f $ const ())

let datasets_cmd =
  let f () =
    List.iter
      (fun (e : Datasets.entry) -> Printf.printf "%s\n" e.Datasets.ds_name)
      Datasets.all;
    0
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List dataset analog names") Term.(const f $ const ())

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced tensors and machine sizes")

let fig_cmd name doc compute print =
  let f quick domains fseed frate fretries =
    set_domains domains;
    set_faults fseed frate fretries;
    let cells = compute ~quick () in
    Format.printf "%a@." print cells;
    0
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const f $ quick_arg $ domains_arg $ fault_seed_arg $ fault_rate_arg
      $ max_retries_arg)

let fig10_cmd =
  fig_cmd "fig10" "CPU strong scaling (paper Fig. 10)"
    (fun ~quick () -> Fig10.compute ~quick ())
    Fig10.print

let fig11_cmd =
  fig_cmd "fig11" "GPU strong scaling heatmaps (paper Fig. 11)"
    (fun ~quick () -> Fig11.compute ~quick ())
    Fig11.print

let fig12_cmd =
  fig_cmd "fig12" "GPU vs CPU heatmaps (paper Fig. 12)"
    (fun ~quick () -> Fig12.compute ~quick ())
    Fig12.print

let fig13_cmd =
  fig_cmd "fig13" "SpMV weak scaling (paper Fig. 13)"
    (fun ~quick () -> Fig13.compute ~quick ())
    Fig13.print

let ablations_cmd =
  let f domains fseed frate fretries =
    set_domains domains;
    set_faults fseed frate fretries;
    Format.printf "%a@." Spdistal_experiments.Ablations.run_all ();
    0
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Run the DESIGN.md ablation benches")
    Term.(
      const f $ domains_arg $ fault_seed_arg $ fault_rate_arg $ max_retries_arg)

let fuzz_cmd =
  let open Spdistal_fuzz in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed")
  in
  let count_arg =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"K" ~doc:"Cases to run")
  in
  let max_dim_arg =
    Arg.(
      value & opt int Gen.default_params.Gen.max_dim
      & info [ "max-dim" ] ~docv:"D" ~doc:"Largest index-variable dimension")
  in
  let max_pieces_arg =
    Arg.(
      value & opt int Gen.default_params.Gen.max_pieces
      & info [ "max-pieces" ] ~docv:"P" ~doc:"Largest 1-D machine grid")
  in
  let fault_prob_arg =
    Arg.(
      value & opt float Gen.default_params.Gen.fault_prob
      & info [ "fault-prob" ] ~docv:"P"
          ~doc:"Probability a case carries a fault schedule")
  in
  let budget_arg =
    Arg.(
      value & opt float 0.
      & info [ "budget-seconds" ] ~docv:"S"
          ~doc:"Stop after S seconds of CPU time (0 = no time box)")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print a line per case")
  in
  let inject_bug_arg =
    Arg.(
      value & flag
      & info [ "inject-bug" ]
          ~doc:
            "Flip a block bound inside the lowerer (debug hook) to exercise \
             the failure path end to end: the campaign should catch and \
             shrink it")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"SPEC" ~doc:"Check one serialized spec and exit")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Replay every *.case file in DIR and exit")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the shrunk reproducer report to FILE on failure")
  in
  let f seed count max_dim max_pieces fault_prob budget verbose inject_bug
      replay corpus out domains leaf_backend =
    set_domains domains;
    set_leaf_backend leaf_backend;
    Fault.set_default Fault.disabled;
    if inject_bug then Spdistal_ir.Lower.set_debug_flip_block_bound true;
    match (replay, corpus) with
    | Some line, _ ->
        let v = Campaign.replay_line line in
        print_endline (Check.verdict_to_string v);
        (match v with Check.Fail _ | Check.Reject _ -> 1 | _ -> 0)
    | None, Some dir ->
        let results = Campaign.replay_corpus ~dir in
        let bad =
          List.filter
            (fun (_, v) ->
              match v with Check.Fail _ | Check.Reject _ -> true | _ -> false)
            results
        in
        List.iter
          (fun (loc, v) ->
            Printf.printf "%s: %s\n" loc (Check.verdict_to_string v))
          (if verbose then results else bad);
        Printf.printf "corpus: %d cases, %d bad\n" (List.length results)
          (List.length bad);
        if bad = [] then 0 else 1
    | None, None ->
        let params =
          { Gen.default_params with Gen.max_dim; max_pieces; fault_prob }
        in
        let progress =
          if verbose then
            Some
              (fun ~index ~spec v ->
                Printf.printf "case %d: %s\n  %s\n%!" index
                  (Check.verdict_to_string v) (Spec.to_string spec))
          else None
        in
        let report =
          Campaign.run ~params ?progress ~budget_seconds:budget ~seed ~count ()
        in
        print_endline (Campaign.report_to_string report);
        (match (report.Campaign.failure, out) with
        | Some fc, Some path ->
            let oc = open_out path in
            output_string oc fc.Campaign.text;
            close_out oc;
            Printf.printf "reproducer written to %s\n" path
        | _ -> ());
        if report.Campaign.failure = None then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Randomized differential testing across the four sub-languages \
          (statements, formats, distributions, schedules), with shrinking")
    Term.(
      const f $ seed_arg $ count_arg $ max_dim_arg $ max_pieces_arg
      $ fault_prob_arg $ budget_arg $ verbose_arg $ inject_bug_arg $ replay_arg
      $ corpus_arg $ out_arg $ domains_arg $ leaf_backend_arg)

let auto_cmd =
  let open Spdistal_opt in
  let kernel_opt_arg =
    Arg.(value & pos 0 (some kernel_conv) None & info [] ~docv:"KERNEL")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run the full tournament over the evaluation kernels (fig10 CPU \
             sweep, fig11/fig12 GPU kernels, batched SpMM, fig13 banded \
             synthetic) instead of one cell; with $(b,--out) the table is \
             also written as auto.csv.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Limit the sweep to two datasets per kernel.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write auto.csv under $(docv) (with $(b,--sweep)).")
  in
  let print_report kernel dataset rp =
    Printf.printf "%s on %s — candidates priced against the cost model:\n"
      (Runner.kernel_name kernel) dataset;
    List.iter
      (fun v ->
        match v.Auto.v_priced with
        | Ok pr ->
            Printf.printf "  %-12s %.6e s   (%d launches, partitioning %.3e s)\n"
              v.Auto.v_label (Price.total pr) pr.Price.pr_launches
              pr.Price.pr_part_seconds
        | Error e -> Printf.printf "  %-12s infeasible: %s\n" v.Auto.v_label e)
      rp.Auto.rp_verdicts;
    (match rp.Auto.rp_naive with
    | Ok pr -> Printf.printf "  %-12s %.6e s\n" "naive" (Price.total pr)
    | Error e -> Printf.printf "  %-12s infeasible: %s\n" "naive" e);
    match rp.Auto.rp_winner with
    | Some (c, pr) ->
        Printf.printf "winner: %s at %.6e s\n" c.Search.c_label
          (Price.total pr)
    | None -> Printf.printf "winner: none (no candidate priced)\n"
  in
  let f kernel dataset pieces gpu cols sweep quick out =
    if sweep then begin
      let rows = Auto_tournament.compute ~quick () in
      Format.printf "%a@." Auto_tournament.print rows;
      (match out with
      | Some dir ->
          let path = Auto_tournament.write ~dir rows in
          Printf.printf "csv written to %s\n" path
      | None -> ());
      if Auto_tournament.regressions rows = [] then 0 else 1
    end
    else
      match kernel with
      | None ->
          prerr_endline "spdistal auto: KERNEL required (or use --sweep)";
          2
      | Some kernel ->
          let b = load_dataset dataset in
          let machine =
            if gpu then Runner.gpu_machine ~gpus:pieces
            else Runner.cpu_machine ~nodes:pieces
          in
          let problem = problem_for ~kernel ~machine ~cols b in
          print_report kernel dataset (Auto.report problem);
          0
  in
  Cmd.v
    (Cmd.info "auto"
       ~doc:
         "Price the auto-scheduler's candidate schedules for one kernel cell \
          (or, with $(b,--sweep), the whole evaluation suite) and report the \
          winner against the hand schedule and the naive default")
    Term.(
      const f $ kernel_opt_arg $ dataset_arg $ pieces_arg $ gpu_arg $ cols_arg
      $ sweep_arg $ quick_arg $ out_arg)

let serve_cmd =
  let open Spdistal_serve in
  let trace_in_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Replay the workload trace in $(docv) (written by \
             $(b,--save-trace)) instead of generating one.")
  in
  let save_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"Write the (generated or replayed) workload trace to $(docv).")
  in
  let jobs_arg =
    Arg.(
      value & opt int Workload.default_gen.Workload.g_jobs
      & info [ "jobs" ] ~docv:"N" ~doc:"Jobs in the generated trace")
  in
  let tenants_arg =
    Arg.(
      value & opt int Workload.default_gen.Workload.g_tenants
      & info [ "tenants" ] ~docv:"N" ~doc:"Tenants in the generated trace")
  in
  let rate_arg =
    Arg.(
      value & opt float Workload.default_gen.Workload.g_rate
      & info [ "rate" ] ~docv:"R"
          ~doc:"Mean arrivals per simulated second (Poisson)")
  in
  let alpha_arg =
    Arg.(
      value & opt float Workload.default_gen.Workload.g_alpha
      & info [ "alpha" ] ~docv:"A" ~doc:"Zipf exponent of query popularity")
  in
  let seed_arg =
    Arg.(
      value & opt int Workload.default_gen.Workload.g_seed
      & info [ "seed" ] ~docv:"S" ~doc:"Workload generator seed")
  in
  let deadline_arg =
    Arg.(
      value & opt float Workload.default_gen.Workload.g_deadline
      & info [ "deadline" ] ~docv:"D"
          ~doc:"Mean relative deadline, simulated seconds")
  in
  let burst_conv =
    let parse s =
      match String.split_on_char ',' s with
      | [ a; b; c ] -> (
          match
            (float_of_string_opt a, float_of_string_opt b, float_of_string_opt c)
          with
          | Some a, Some b, Some c -> Ok (a, b, c)
          | _ -> Error (`Msg "burst must be START,LEN,MULT (floats)"))
      | _ -> Error (`Msg "burst must be START,LEN,MULT")
    in
    Arg.conv
      (parse, fun fmt (a, b, c) -> Format.fprintf fmt "%g,%g,%g" a b c)
  in
  let burst_arg =
    Arg.(
      value
      & opt (some burst_conv) None
      & info [ "burst" ] ~docv:"START,LEN,MULT"
          ~doc:
            "Overload window: multiply the arrival rate by MULT for LEN \
             simulated seconds starting at START.")
  in
  let nodes_arg =
    Arg.(
      value & opt int Server.default_config.Server.s_nodes
      & info [ "nodes" ] ~docv:"N" ~doc:"CPU nodes of the serving machine")
  in
  let queue_bound_arg =
    Arg.(
      value & opt int Server.default_config.Server.s_queue_bound
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Admission bound on in-flight jobs; arrivals beyond it are shed \
             with a structured admission error (backpressure).")
  in
  let cache_budget_arg =
    Arg.(
      value
      & opt int
          (Option.value ~default:0
             Server.default_config.Server.s_cache_budget)
      & info [ "cache-budget" ] ~docv:"BYTES"
          ~doc:
            "LRU byte budget of the shared partition/kernel cache (0 = \
             unlimited).")
  in
  let retry_budget_arg =
    Arg.(
      value & opt int Server.default_config.Server.s_retry_budget
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"Per-tenant re-admissions after a job-level failure (DNC)")
  in
  let blacklist_arg =
    Arg.(
      value & opt int Server.default_config.Server.s_blacklist_after
      & info [ "blacklist-after" ] ~docv:"N"
          ~doc:
            "Crash strikes before a node is blacklisted and the machine \
             rebuilt on the survivors")
  in
  let baseline_arg =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Also price the single-tenant baseline (every job cold, no \
             sharing) and report the speedup.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write a one-row CSV report to $(docv).")
  in
  let scenario_arg =
    Arg.(
      value & opt string "serve"
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Scenario label of the CSV row")
  in
  let chrome_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the serve run (tenant job \
             spans + runtime spans) to $(docv).")
  in
  let metrics_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"DIR"
          ~doc:
            "Enable the live metrics plane and write its outputs under \
             $(docv): $(b,metrics.csv)/$(b,metrics.jsonl) (snapshot rows \
             scraped on the simulated clock — bit-identical across \
             $(b,--domains)), $(b,metrics.prom) (Prometheus text \
             exposition of the final state) and $(b,events.jsonl) (the \
             structured event log).")
  in
  let slo_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"FILE"
          ~doc:
            "Evaluate the service-level objectives in $(docv) (one per \
             line, e.g. $(b,p99_ms <= 200), optional $(b,budget=F)) over \
             the scraped metric windows and exit non-zero on violation.  \
             Implies the metrics plane even without $(b,--metrics).")
  in
  let metrics_interval_arg =
    Arg.(
      value & opt float 0.05
      & info [ "metrics-interval" ] ~docv:"S"
          ~doc:"Scrape interval on the simulated clock, seconds.")
  in
  let f trace_in save_trace jobs tenants rate alpha seed deadline burst nodes
      queue_bound cache_budget retry_budget blacklist_after auto fseed frate
      fretries baseline out scenario chrome_trace metrics_dir slo_file
      metrics_interval domains leaf_backend =
    set_domains domains;
    set_leaf_backend leaf_backend;
    let workload =
      match trace_in with
      | Some path -> Workload.load path
      | None ->
          let gen =
            {
              Workload.g_seed = seed;
              g_jobs = jobs;
              g_tenants = tenants;
              g_rate = rate;
              g_alpha = alpha;
              g_deadline = deadline;
              g_burst = burst;
            }
          in
          Workload.generate ~gen ~catalog:Catalog.names ()
    in
    (match save_trace with
    | Some path ->
        Workload.save path workload;
        Printf.printf "workload trace written to %s\n" path
    | None -> ());
    let faults =
      if frate > 0. then Fault.make ~seed:fseed ~rate:frate ~retries:fretries ()
      else Fault.disabled
    in
    let cfg =
      {
        Server.s_nodes = nodes;
        s_queue_bound = queue_bound;
        s_cache_cap = Server.default_config.Server.s_cache_cap;
        s_cache_budget = (if cache_budget > 0 then Some cache_budget else None);
        s_retry_budget = retry_budget;
        s_blacklist_after = blacklist_after;
        s_faults = faults;
        s_auto = auto;
      }
    in
    (* The metrics plane: one registry + event log installed as the ambient
       defaults (every instrumented library writes to them), and a scraper
       that the serve loop ticks on its virtual clock. *)
    let want_obs = metrics_dir <> None || slo_file <> None in
    let registry = if want_obs then Metrics.create () else Metrics.null in
    let logger = if want_obs then Log.create ~level:Log.Debug () else Log.null in
    let scrape =
      if want_obs then
        Some (Metrics.Scrape.create ~interval:metrics_interval registry)
      else None
    in
    if want_obs then begin
      Metrics.set_default registry;
      Log.set_default logger
    end;
    let trace = if chrome_trace <> None then Trace.create () else Trace.null in
    let report = Server.run ~trace ?scrape ~baseline cfg workload in
    Format.printf "%a@." Server.pp_report report;
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc (Server.csv_comment ^ "\n");
        output_string oc (Server.csv_header ^ "\n");
        output_string oc (Server.csv_row ~scenario report ^ "\n");
        close_out oc;
        Printf.printf "report written to %s\n" path
    | None -> ());
    (match metrics_dir with
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let write_file name s =
          let oc = open_out (Filename.concat dir name) in
          output_string oc s;
          close_out oc
        in
        Option.iter
          (fun s ->
            write_file "metrics.csv" (Metrics.Scrape.to_csv s);
            write_file "metrics.jsonl" (Metrics.Scrape.to_jsonl s))
          scrape;
        write_file "metrics.prom" (Metrics.expose registry);
        Log.write logger ~path:(Filename.concat dir "events.jsonl");
        Printf.printf "metrics written to %s\n" dir
    | None -> ());
    finish_trace trace chrome_trace None;
    match slo_file with
    | None -> 0
    | Some path -> (
        match Slo.load path with
        | Error msg ->
            Printf.eprintf "slo: %s\n" msg;
            2
        | Ok objectives -> (
            let windows =
              match scrape with
              | Some s -> Slo.windows_of_samples (Metrics.Scrape.rows s)
              | None -> []
            in
            match Slo.evaluate objectives windows with
            | Error msg ->
                Printf.eprintf "slo: %s\n" msg;
                2
            | Ok verdicts ->
                print_endline (Slo.report verdicts);
                if Slo.ok verdicts then 0 else 1))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a multi-tenant job stream over one shared cache: bounded \
          admission, per-job deadlines priced against the cost clock, \
          per-tenant retry budgets, LRU cache byte budget and graceful \
          degradation under sustained faults")
    Term.(
      const f $ trace_in_arg $ save_trace_arg $ jobs_arg $ tenants_arg
      $ rate_arg $ alpha_arg $ seed_arg $ deadline_arg $ burst_arg $ nodes_arg
      $ queue_bound_arg $ cache_budget_arg $ retry_budget_arg $ blacklist_arg
      $ auto_arg $ fault_seed_arg $ fault_rate_arg $ max_retries_arg
      $ baseline_arg $ out_arg $ scenario_arg $ chrome_trace_arg
      $ metrics_dir_arg $ slo_file_arg $ metrics_interval_arg $ domains_arg
      $ leaf_backend_arg)

let slo_cmd =
  let csv_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CSV")
  in
  let slo_file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "slo" ] ~docv:"FILE"
          ~doc:
            "Objective file, one per line: $(b,METRIC OP BOUND) with OP one \
             of <=, >=, <, >, optionally followed by $(b,budget=F) (allowed \
             violating window fraction).  $(b,#) starts a comment.")
  in
  let select_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "select" ] ~docv:"KEY=VALUE"
          ~doc:
            "Keep only windows whose tag $(b,KEY) equals $(b,VALUE) — e.g. \
             $(b,scenario=chaos) on results/serve.csv.")
  in
  let check =
    let f csv slo select =
      let read path =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let ( let* ) r k =
        match r with
        | Error msg ->
            Printf.eprintf "slo: %s\n" msg;
            Error 2
        | Ok v -> k v
      in
      let result =
        let* objectives = Slo.load slo in
        let* windows = Slo.windows_of_csv (read csv) in
        let* windows =
          match select with
          | None -> Ok windows
          | Some kv -> (
              match String.index_opt kv '=' with
              | None -> Error "--select expects KEY=VALUE"
              | Some i ->
                  Ok
                    (Slo.select
                       ~key:(String.sub kv 0 i)
                       ~value:
                         (String.sub kv (i + 1) (String.length kv - i - 1))
                       windows))
        in
        let* verdicts = Slo.evaluate objectives windows in
        print_endline (Slo.report verdicts);
        Ok (if Slo.ok verdicts then 0 else 1)
      in
      match result with Ok code -> code | Error code -> code
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Evaluate the objectives in $(b,--slo) against a CSV: the \
            scraper's long format (results/metrics.csv, one window per \
            snapshot time) or a wide results table (results/serve.csv, one \
            window per row).  Exit 0 when every objective holds within its \
            error budget, 1 on violation, 2 on malformed input.")
      Term.(const f $ csv_arg $ slo_file_arg $ select_arg)
  in
  Cmd.group
    (Cmd.info "slo"
       ~doc:"Service-level objectives over scraped metrics and results CSVs")
    [ check ]

let main =
  Cmd.group
    (Cmd.info "spdistal" ~version:"1.0.0"
       ~doc:"SpDISTAL reproduction: distributed sparse tensor algebra compiler")
    [
      run_cmd; prof_cmd; show_cmd; auto_cmd; table2_cmd; datasets_cmd;
      fig10_cmd; fig11_cmd; fig12_cmd; fig13_cmd; ablations_cmd; fuzz_cmd;
      trace_check_cmd; serve_cmd; slo_cmd;
    ]

let () = exit (Cmd.eval' main)
