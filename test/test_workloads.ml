open Spdistal_formats
open Spdistal_workloads

let test_banded () =
  let t = Synth.banded ~name:"b" ~n:100 ~band:5 in
  Alcotest.(check int) "rows" 100 t.Tensor.dims.(0);
  (* Interior rows have exactly [band] entries. *)
  let open Spdistal_runtime in
  let pos = Tensor.pos_of t 1 in
  let lo, hi = Region.get pos 50 in
  Alcotest.(check int) "interior row width" 5 (hi - lo + 1);
  Alcotest.(check bool) "nnz close to n*band" true
    (abs (Tensor.nnz t - 500) < 20)

let test_uniform_deterministic () =
  let a = Synth.uniform ~name:"u" ~rows:50 ~cols:50 ~nnz:300 ~seed:9 in
  let b = Synth.uniform ~name:"u" ~rows:50 ~cols:50 ~nnz:300 ~seed:9 in
  Alcotest.(check bool) "same seed, same tensor" true
    (Coo.equal (Tensor.to_coo a) (Tensor.to_coo b));
  let c = Synth.uniform ~name:"u" ~rows:50 ~cols:50 ~nnz:300 ~seed:10 in
  Alcotest.(check bool) "different seed differs" false
    (Coo.equal (Tensor.to_coo a) (Tensor.to_coo c))

let test_power_law_structure () =
  let t = Synth.power_law ~name:"p" ~rows:500 ~cols:500 ~nnz:5000 ~alpha:1.0 ~seed:3 in
  let counts = Spdistal_baselines.Common.row_block_nnz t ~blocks:500 in
  let mx = Array.fold_left max 0 counts in
  let mean = Tensor.nnz t / 500 in
  Alcotest.(check bool) "has hubs (max >> mean)" true (mx > 4 * mean);
  Alcotest.(check bool) "hubs are capped" true (mx <= max 32 (200 * 5000 / 500))

let test_bounded_degree () =
  let t = Synth.bounded_degree ~name:"k" ~rows:300 ~cols:300 ~lo:2 ~hi:4 ~seed:4 in
  let counts = Spdistal_baselines.Common.row_block_nnz t ~blocks:300 in
  Array.iter
    (fun c -> Alcotest.(check bool) "degree within bounds" true (c >= 1 && c <= 4))
    counts

let test_stencil () =
  let t = Synth.stencil ~name:"s" ~n:200 ~points:9 in
  Alcotest.(check bool) "about points per row" true
    (abs (Tensor.nnz t - (200 * 9)) < 100)

let test_tensor3_generators () =
  let u = Synth.tensor3_uniform ~name:"t3" ~dims:[| 20; 20; 20 |] ~nnz:500 ~seed:5 in
  Alcotest.(check int) "order" 3 (Tensor.order u);
  let s =
    Synth.tensor3_skewed ~name:"t3s" ~dims:[| 50; 50; 20 |] ~nnz:2000 ~alpha:1.2 ~seed:6
  in
  Alcotest.(check bool) "skewed built" true (Tensor.nnz s > 1000);
  let d = Synth.tensor3_dense_modes ~name:"t3d" ~dims:[| 3; 4; 500 |] ~nnz:600 ~seed:7 in
  (match d.Tensor.levels.(1) with
  | Level.Dense _ -> ()
  | Level.Compressed _ | Level.Singleton _ ->
      Alcotest.fail "patents-style tensor needs dense mode 1");
  Alcotest.(check bool) "dense-modes nnz near target" true
    (abs (Tensor.nnz d - 600) < 60)

let test_datasets_table () =
  Alcotest.(check int) "14 datasets" 14 (List.length Datasets.all);
  Alcotest.(check int) "10 matrices" 10 (List.length Datasets.matrices);
  Alcotest.(check int) "4 tensors" 4 (List.length Datasets.tensors3);
  let e = Datasets.find "patents" in
  Alcotest.(check bool) "patents is a 3-tensor" true (e.Datasets.ds_kind = Datasets.Tensor3);
  Alcotest.check_raises "unknown dataset"
    (Invalid_argument "Datasets.find: unknown dataset nope") (fun () ->
      ignore (Datasets.find "nope"))

let test_datasets_memoized () =
  let e = Datasets.find "nell-2" in
  let a = e.Datasets.load () and b = e.Datasets.load () in
  Alcotest.(check bool) "same physical tensor" true (a == b);
  Datasets.clear_cache ();
  let c = e.Datasets.load () in
  Alcotest.(check bool) "rebuilt after clear" true (a != c)

let test_table2_renders () =
  let s = Format.asprintf "%a" Datasets.pp_table2 () in
  Alcotest.(check bool) "mentions freebase_music" true
    (Helpers.contains s "freebase_music")

let test_srng () =
  let open Spdistal_runtime in
  let r = Srng.create 1 in
  let a = Srng.int r 100 and b = Srng.int r 100 in
  Alcotest.(check bool) "stream advances" true (a <> b || Srng.int r 100 <> b);
  let r2 = Srng.create 1 in
  Alcotest.(check int) "deterministic" a (Srng.int r2 100);
  for _ = 1 to 100 do
    let z = Srng.zipf r ~n:50 ~alpha:1.0 in
    Alcotest.(check bool) "zipf in range" true (z >= 0 && z < 50);
    let f = Srng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 1.)
  done

let suite =
  [
    Alcotest.test_case "banded" `Quick test_banded;
    Alcotest.test_case "uniform deterministic" `Quick test_uniform_deterministic;
    Alcotest.test_case "power law structure" `Quick test_power_law_structure;
    Alcotest.test_case "bounded degree" `Quick test_bounded_degree;
    Alcotest.test_case "stencil" `Quick test_stencil;
    Alcotest.test_case "3-tensor generators" `Quick test_tensor3_generators;
    Alcotest.test_case "datasets table" `Quick test_datasets_table;
    Alcotest.test_case "datasets memoized" `Quick test_datasets_memoized;
    Alcotest.test_case "table II renders" `Quick test_table2_renders;
    Alcotest.test_case "srng" `Quick test_srng;
  ]
