(* Golden-file tests for the Obs.Report renderings of a fixed-seed SpMV
   trace (3 warm-start iterations of the comm-heavy SpMV, so the goldens
   pin down the amortization table too).

   The simulated-clock side of a report is a pure function of the problem,
   so both artifacts are byte-deterministic once host-wall lines (the only
   wall-clock content) are stripped.

   Regenerate with either of
     dune exec test/test_main.exe -- golden --update-golden
     SPDISTAL_UPDATE_GOLDEN=1 dune runtest
   from the repository root, then review the diff like any other code
   change. *)

module Report = Spdistal_obs.Report

(* Set from test_main's argv ([--update-golden]) or the environment. *)
let update =
  ref
    (match Sys.getenv_opt "SPDISTAL_UPDATE_GOLDEN" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let golden_dir () =
  match Sys.getenv_opt "SPDISTAL_GOLDEN_DIR" with
  | Some d -> d
  | None ->
      (* "golden" when running under dune (cwd = _build/.../test, with the
         files declared as deps); "test/golden" when run from the root. *)
      if Sys.file_exists "golden" then "golden"
      else if Sys.file_exists "test/golden" then "test/golden"
      else Alcotest.fail "no golden directory (set SPDISTAL_GOLDEN_DIR)"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Drop the host-wall tail: the only wall-clock (hence nondeterministic)
   lines in a rendered report. *)
let strip_wall text =
  String.split_on_char '\n' text
  |> List.filter (fun line -> not (Helpers.contains line "wall"))
  |> String.concat "\n"

let fixed_report () =
  let res, trace = Helpers.run_traced ~iterations:3 (Helpers.comm_spmv ()) in
  (match res.Core.Spdistal.dnc with Some r -> Alcotest.fail r | None -> ());
  Report.of_trace trace

let check_golden name actual =
  let path = Filename.concat (golden_dir ()) name in
  if !update then begin
    write_file path actual;
    Printf.printf "golden updated: %s\n%!" path
  end
  else if not (Sys.file_exists path) then
    Alcotest.failf "missing golden %s (regenerate with --update-golden)" path
  else
    Alcotest.(check string) (name ^ " matches golden") (read_file path) actual

let test_report_csv () =
  check_golden "spmv_iter3_report.csv" (Report.to_csv (fixed_report ()))

let test_report_text () =
  check_golden "spmv_iter3_report.txt"
    (strip_wall (Format.asprintf "%a" Report.pp (fixed_report ())))

(* The auto-scheduler's pricing table over the fixed-seed kernel catalog:
   every candidate's priced cost (or infeasibility) plus the winner per
   kernel.  The prices are pure functions of the (seeded) problems, so the
   table is byte-deterministic; a diff here means the search space, the
   cost model or the tie-breaking changed. *)
let auto_report_table () =
  let open Spdistal_opt in
  let b = Buffer.create 4096 in
  Buffer.add_string b "kernel,candidate,total_s\n";
  List.iter
    (fun (name, make) ->
      let rp = Auto.report (make ()) in
      let row label = function
        | Ok pr -> Printf.sprintf "%s,%s,%.9e\n" name label (Price.total pr)
        | Error _ -> Printf.sprintf "%s,%s,infeasible\n" name label
      in
      List.iter
        (fun v -> Buffer.add_string b (row v.Auto.v_label v.Auto.v_priced))
        rp.Auto.rp_verdicts;
      Buffer.add_string b (row "naive" rp.Auto.rp_naive);
      Buffer.add_string b
        (match rp.Auto.rp_winner with
        | Some (c, pr) ->
            Printf.sprintf "%s,winner=%s,%.9e\n" name c.Search.c_label
              (Price.total pr)
        | None -> Printf.sprintf "%s,winner=none,\n" name))
    (Helpers.kernel_problems () @ Helpers.nnz_kernel_problems ());
  Buffer.contents b

let test_auto_report () =
  check_golden "auto_report.csv" (auto_report_table ())

let suite =
  [
    Alcotest.test_case "report csv golden" `Quick test_report_csv;
    Alcotest.test_case "report text golden" `Quick test_report_text;
    Alcotest.test_case "auto report golden" `Quick test_auto_report;
  ]
