(* Pretty-printer coverage: the rendered plans are the user-facing artifact
   (paper Fig. 9b), so their shape is pinned here. *)

open Spdistal_ir

let spmv_env =
  [
    ("a", Lower.Vec_op);
    ( "B",
      Lower.Sparse_op
        {
          formats =
            [| Spdistal_formats.Level.Dense_k; Spdistal_formats.Level.Compressed_k |];
          mode_order = [| 0; 1 |];
        } );
    ("c", Lower.Vec_op);
  ]

let render sched =
  Pretty.prog_to_string (Lower.lower ~env:spmv_env ~grid:[| 2 |] Tin.spmv sched)

let test_row_plan_shape () =
  let s = render (Core.Kernels.spmv_row ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (Helpers.contains s needle))
    [
      "Coloring B1Coloring = {};";
      "for (int io = 0; io < 2; io++)";
      "B1Coloring[color] = {io * B[0].dim / 2, (io + 1) * B[0].dim / 2 - 1};";
      "auto B1Part = partitionByBounds(B1Coloring, B[0].dom);";
      "auto B2PosPart = copy(B1Part);";
      "auto B2CrdPart = image(B[1].pos, B2PosPart, B[1].crd);";
      "auto BValsPart = copy(B2CrdPart);";
      "imageValues(B[1].crd, B2CrdPart, c[0].dom)";
      "distributed for io in pieces";
      "leaf: a(i) = B(i,j) * c(j) over B [parallel]";
    ]

let test_nnz_plan_shape () =
  let s = render (Core.Kernels.spmv_nnz ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (Helpers.contains s needle))
    [
      "B.nnz";
      "auto B2CrdPart = partitionByBounds(B2Coloring, B[1].crd);";
      "auto B2PosPart = preimage(B[1].pos, B2CrdPart);";
      "[nnz-split]";
      "// output: communicate a by dim 0[B2PosPart] (reduction)";
    ]

let test_aexpr_precedence () =
  let open Loop_ir in
  let e = Mul (Add (Color_var "c", Int 1), Dim (Nnz_of "B")) in
  Alcotest.(check string) "parenthesized" "(c + 1) * B.nnz"
    (Format.asprintf "%a" Pretty.pp_aexpr e);
  let e2 = Sub (Div (Color_var "c", Int 2), Int 1) in
  Alcotest.(check string) "division" "c / 2 - 1"
    (Format.asprintf "%a" Pretty.pp_aexpr e2)

let test_rref_rendering () =
  let open Loop_ir in
  Alcotest.(check string) "pos" "B[1].pos"
    (Format.asprintf "%a" Pretty.pp_rref (Pos_r ("B", 1)));
  Alcotest.(check string) "vals" "B.vals"
    (Format.asprintf "%a" Pretty.pp_rref (Vals_r "B"));
  Alcotest.(check string) "dom" "c[0].dom"
    (Format.asprintf "%a" Pretty.pp_rref (Dom_r ("c", 0)))

let test_schedule_rendering () =
  let s = Format.asprintf "%a" Schedule.pp (Core.Kernels.spmv_nnz ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (Helpers.contains s needle))
    [ ".fuse(ij, i, j)"; ".pos(ij, fp, B)"; ".divide(fp, fpo, fpi, M)";
      ".distribute(fpo)"; ".communicate({a, B, c}, fpo)";
      ".parallelize(fpi, CPUThread)" ]

(* --- Sub-language round-trips -------------------------------------------
   TIN statements and schedules print to a textual form the fuzzer replays
   through [of_string]; parsing must invert printing on every stock kernel,
   and the printed forms themselves are pinned as goldens. *)

let all_stmts =
  [
    ("spmv", Tin.spmv);
    ("spmm", Tin.spmm);
    ("spadd3", Tin.spadd3);
    ("sddmm", Tin.sddmm);
    ("spttv", Tin.spttv);
    ("mttkrp", Tin.spmttkrp);
  ]

let test_tin_roundtrip () =
  List.iter
    (fun (name, s) ->
      let txt = Tin.to_string s in
      Alcotest.(check bool)
        (name ^ " reparses to the same AST")
        true
        (Tin.of_string_exn txt = s);
      Alcotest.(check string)
        (name ^ " reprints identically")
        txt
        (Tin.to_string (Tin.of_string_exn txt)))
    all_stmts

let test_tin_golden () =
  Alcotest.(check string) "spmv" "a(i) = B(i,j) * c(j)" (Tin.to_string Tin.spmv);
  Alcotest.(check string) "sddmm" "A(i,j) = B(i,j) * C(i,k) * D(k,j)"
    (Tin.to_string Tin.sddmm);
  Alcotest.(check string) "spadd3" "A(i,j) = B(i,j) + C(i,j) + D(i,j)"
    (Tin.to_string Tin.spadd3)

let test_tin_parse_errors () =
  List.iter
    (fun bad ->
      match Tin.of_string bad with
      | Ok _ -> Alcotest.fail ("parsed: " ^ bad)
      | Error _ -> ())
    [ ""; "a(i)"; "a(i) ="; "a(i) = B(i,"; "a(i) = B(i,j) *"; "= B(i,j)" ]

let all_schedules =
  [
    ("spmv-row", Core.Kernels.spmv_row ());
    ("spmv-row-gpu", Core.Kernels.spmv_row ~proc:Schedule.Gpu_thread ());
    ("spmv-nnz", Core.Kernels.spmv_nnz ());
    ("spadd3-workspace", Core.Kernels.spadd3_workspace ());
    ("spmm-batched", Core.Kernels.spmm_batched ());
    ("mttkrp-nnz", Core.Kernels.mttkrp_nnz ());
  ]

let test_schedule_roundtrip () =
  List.iter
    (fun (name, s) ->
      let txt = Schedule.to_string s in
      Alcotest.(check bool)
        (name ^ " reparses to the same schedule")
        true
        (Schedule.of_string_exn txt = s);
      Alcotest.(check string)
        (name ^ " reprints identically")
        txt
        (Schedule.to_string (Schedule.of_string_exn txt)))
    all_schedules

let test_schedule_golden () =
  Alcotest.(check string) "spmv row schedule"
    ".divide(i, io, ii, M)\n.distribute(io)\n.communicate({a, B, c}, io)\n\
     .parallelize(ii, CPUThread)"
    (Schedule.to_string (Core.Kernels.spmv_row ()));
  Alcotest.(check string) "spmm batched schedule"
    ".divide(i, io, ii, M)\n.divide(j, jo, ji, M)\n.distribute(io, jo)\n\
     .communicate({A, B, C}, jo)\n.parallelize(ii, CPUThread)"
    (Schedule.to_string (Core.Kernels.spmm_batched ()))

let suite =
  [
    Alcotest.test_case "row plan renders like Fig 9b" `Quick test_row_plan_shape;
    Alcotest.test_case "nnz plan renders" `Quick test_nnz_plan_shape;
    Alcotest.test_case "aexpr precedence" `Quick test_aexpr_precedence;
    Alcotest.test_case "rref rendering" `Quick test_rref_rendering;
    Alcotest.test_case "schedule rendering" `Quick test_schedule_rendering;
    Alcotest.test_case "tin roundtrip" `Quick test_tin_roundtrip;
    Alcotest.test_case "tin golden strings" `Quick test_tin_golden;
    Alcotest.test_case "tin parse errors" `Quick test_tin_parse_errors;
    Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip;
    Alcotest.test_case "schedule golden strings" `Quick test_schedule_golden;
  ]
