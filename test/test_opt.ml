(* The auto-scheduler's differential suite.

   The load-bearing property is bit-identity: whatever schedule the search
   picks, executing it must produce outputs bitwise equal to executing the
   hand schedule — over the whole kernel catalog, under both leaf backends,
   and with faults injected.  The pricing side is pinned by construction:
   the winner never prices above the hand schedule (it competes against it)
   and must strictly beat the naive strawman; and a priced candidate's
   partitioning bill is bit-equal to what a cold run of that same schedule
   charges. *)

open Spdistal_runtime
open Spdistal_opt
module Spdistal = Core.Spdistal
module Snapshot = Spdistal_fuzz.Snapshot
module CL = Spdistal_exec.Compile_leaf

let all_kernels () = Helpers.kernel_problems () @ Helpers.nnz_kernel_problems ()

let run_ok ?faults ?leaf_backend p =
  let r = Spdistal.run ?faults ?leaf_backend p in
  (match r.Spdistal.dnc with Some reason -> Alcotest.fail reason | None -> ());
  r

(* ------------------------------------------------------------------ *)
(* Differential bit-identity: auto output == hand output               *)
(* ------------------------------------------------------------------ *)

(* Each catalog entry is a thunk building a fresh problem (fresh output
   slots), so the hand run and the auto run cannot alias. *)
let check_identical ?faults ~leaf_backend (name, make) =
  let hand = make () in
  ignore (run_ok ?faults ~leaf_backend hand);
  let hand_snap = Snapshot.outputs hand in
  let auto = make () in
  match Auto.choose auto with
  | None -> Alcotest.failf "%s: no feasible auto candidate" name
  | Some ch ->
      ignore (run_ok ?faults ~leaf_backend ch.Auto.ch_problem);
      Alcotest.(check bool)
        (Printf.sprintf "%s: auto (%s) bit-identical to hand" name
           ch.Auto.ch_label)
        true
        (Snapshot.equal hand_snap (Snapshot.outputs ch.Auto.ch_problem))

let test_identical_interp () =
  List.iter (check_identical ~leaf_backend:CL.Interp) (all_kernels ())

let test_identical_compiled () =
  List.iter (check_identical ~leaf_backend:CL.Compiled) (all_kernels ())

let test_identical_faulty () =
  let faults = Fault.make ~seed:7 ~rate:0.05 () in
  List.iter
    (check_identical ~faults ~leaf_backend:CL.Compiled)
    (all_kernels ())

(* Faults also must not change *what* auto computes: the faulted auto run
   matches the fault-free hand run bit-for-bit. *)
let test_faulty_matches_fault_free () =
  let faults = Fault.make ~seed:11 ~rate:0.1 () in
  List.iter
    (fun (name, make) ->
      let hand = make () in
      ignore (run_ok ~faults:Fault.disabled ~leaf_backend:CL.Compiled hand);
      let auto = Auto.schedule (make ()) in
      ignore (run_ok ~faults ~leaf_backend:CL.Compiled auto);
      Alcotest.(check bool)
        (name ^ ": faulted auto == fault-free hand") true
        (Snapshot.equal (Snapshot.outputs hand) (Snapshot.outputs auto)))
    (all_kernels ())

(* ------------------------------------------------------------------ *)
(* Pricing invariants                                                  *)
(* ------------------------------------------------------------------ *)

(* The hand schedule competes in the tournament, so the winner can never
   price above it; and it must strictly beat the naive strawman. *)
let test_never_worse_than_hand () =
  List.iter
    (fun (name, make) ->
      let p = make () in
      let rp = Auto.report p in
      let winner =
        match rp.Auto.rp_winner with
        | Some (_, pr) -> Price.total pr
        | None -> Alcotest.failf "%s: no winner" name
      in
      let hand =
        match
          List.find_opt (fun v -> v.Auto.v_label = "hand") rp.Auto.rp_verdicts
        with
        | Some { Auto.v_priced = Ok pr; _ } -> Price.total pr
        | _ -> Alcotest.failf "%s: hand schedule did not price" name
      in
      Alcotest.(check bool)
        (name ^ ": winner <= hand") true (winner <= hand);
      match rp.Auto.rp_naive with
      | Ok pr ->
          Alcotest.(check bool)
            (name ^ ": winner < naive") true
            (winner < Price.total pr)
      | Error e -> Alcotest.failf "%s: naive did not price: %s" name e)
    (all_kernels ())

(* A priced candidate's partitioning bill is bit-equal to the partitioning
   cost a cold run of the same schedule records — pricing runs the same
   placement/compile/materialize pipeline and charges the same
   [Cache.partition_seconds]. *)
let test_partitioning_matches_cold_run () =
  List.iter
    (fun (name, make) ->
      let priced =
        match Price.price (make ()) with
        | Ok pr -> pr
        | Error e -> Alcotest.failf "%s: hand did not price: %s" name e
      in
      (* [~iterations:1] = the warm-start protocol on a fresh context — the
         only path that bills dependent partitioning. *)
      let cold =
        let r = Spdistal.run ~leaf_backend:CL.Interp ~iterations:1 (make ()) in
        (match r.Spdistal.dnc with
        | Some reason -> Alcotest.fail reason
        | None -> ());
        r
      in
      Alcotest.(check int64)
        (name ^ ": priced partitioning bit-equals cold run")
        (Int64.bits_of_float cold.Spdistal.cost.Cost.partitioning)
        (Int64.bits_of_float priced.Price.pr_cost.Cost.partitioning))
    (all_kernels ())

(* qcheck: over random sparse matrices, the chosen schedule never prices
   above the naive default (the hand point is SpMV's row split). *)
let prop_price_le_naive =
  Helpers.qtest ~count:40 "auto prices <= naive on random SpMV"
    Helpers.arb_coo_matrix (fun coo ->
      let b = Spdistal_formats.Tensor.csr ~name:"B" coo in
      let machine = Helpers.cpu_machine 4 in
      let p = Core.Kernels.spmv_problem ~machine b in
      let rp = Auto.report p in
      match (rp.Auto.rp_winner, rp.Auto.rp_naive) with
      | Some (_, w), Ok n -> Price.total w <= Price.total n
      | Some _, Error _ -> true  (* naive infeasible: nothing to beat *)
      | None, _ -> false)

(* ------------------------------------------------------------------ *)
(* Winner cache                                                        *)
(* ------------------------------------------------------------------ *)

(* Same (machine, TIN, pattern): first choose prices, second replays the
   remembered winner without pricing — and the replayed problem still
   executes bit-identically. *)
let test_winner_cache_replays () =
  let cache = Spdistal_exec.Cache.create ~cap:8 () in
  let make = List.assoc "spmv" (Helpers.kernel_problems ()) in
  let c1 =
    match Auto.choose ~cache (make ()) with
    | Some c -> c
    | None -> Alcotest.fail "no choice"
  in
  Alcotest.(check bool) "first choice priced" false c1.Auto.ch_cached;
  let c2 =
    match Auto.choose ~cache (make ()) with
    | Some c -> c
    | None -> Alcotest.fail "no cached choice"
  in
  Alcotest.(check bool) "second choice replayed" true c2.Auto.ch_cached;
  Alcotest.(check string) "same winner" c1.Auto.ch_label c2.Auto.ch_label;
  ignore (run_ok c1.Auto.ch_problem);
  ignore (run_ok c2.Auto.ch_problem);
  Alcotest.(check bool) "replayed run bit-identical" true
    (Snapshot.equal
       (Snapshot.outputs c1.Auto.ch_problem)
       (Snapshot.outputs c2.Auto.ch_problem))

(* A different sparsity pattern must not hit the remembered winner. *)
let test_winner_cache_keyed_by_pattern () =
  let cache = Spdistal_exec.Cache.create ~cap:8 () in
  let p1 = Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 4)
      (Helpers.rand_csr ~seed:1 40 40 0.1) in
  let p2 = Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 4)
      (Helpers.rand_csr ~seed:2 40 40 0.1) in
  (match Auto.choose ~cache p1 with
  | Some c -> Alcotest.(check bool) "cold" false c.Auto.ch_cached
  | None -> Alcotest.fail "no choice");
  match Auto.choose ~cache p2 with
  | Some c ->
      Alcotest.(check bool) "different pattern misses" false c.Auto.ch_cached
  | None -> Alcotest.fail "no choice"

let suite =
  [
    Alcotest.test_case "auto == hand, interp leaves" `Quick
      test_identical_interp;
    Alcotest.test_case "auto == hand, compiled leaves" `Quick
      test_identical_compiled;
    Alcotest.test_case "auto == hand under faults" `Quick
      test_identical_faulty;
    Alcotest.test_case "faulted auto == fault-free hand" `Quick
      test_faulty_matches_fault_free;
    Alcotest.test_case "winner <= hand, < naive" `Quick
      test_never_worse_than_hand;
    Alcotest.test_case "priced partitioning == cold run" `Quick
      test_partitioning_matches_cold_run;
    prop_price_le_naive;
    Alcotest.test_case "winner cache replays" `Quick test_winner_cache_replays;
    Alcotest.test_case "winner cache keyed by pattern" `Quick
      test_winner_cache_keyed_by_pattern;
  ]
