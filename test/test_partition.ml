open Spdistal_runtime

let test_equal_blocks () =
  let is = Iset.range 10 in
  let p = Partition.equal_blocks is 3 in
  Alcotest.(check int) "colors" 3 (Partition.colors p);
  Alcotest.(check bool) "disjoint" true p.Partition.disjoint;
  Alcotest.(check bool) "complete" true (Partition.is_complete p);
  (* Blocks partition the universe span. *)
  Alcotest.(check (list int))
    "block 0" [ 0; 1; 2 ]
    (Iset.elements (Partition.subset p 0))

let test_equal_blocks_sparse_universe () =
  (* Universe partition of a sparse set: members bucketed by span blocks. *)
  let is = Iset.of_list [ 0; 9 ] in
  let p = Partition.equal_blocks is 2 in
  Alcotest.(check (list int)) "left" [ 0 ] (Iset.elements (Partition.subset p 0));
  Alcotest.(check (list int)) "right" [ 9 ] (Iset.elements (Partition.subset p 1))

let test_equal_cardinality () =
  (* Skewed set: cardinality split balances counts, unlike universe split. *)
  let is = Iset.of_intervals [ (0, 7); (100, 101) ] in
  let p = Partition.equal_cardinality is 2 in
  Alcotest.(check int) "half" 5 (Iset.cardinal (Partition.subset p 0));
  Alcotest.(check int) "other half" 5 (Iset.cardinal (Partition.subset p 1));
  Alcotest.(check bool) "complete" true (Partition.is_complete p);
  Alcotest.(check bool) "disjoint" true p.Partition.disjoint

let test_by_bounds () =
  let is = Iset.range 10 in
  let p = Partition.by_bounds is [| (0, 4); (5, 9) |] in
  Alcotest.(check bool) "disjoint" true p.Partition.disjoint;
  let p2 = Partition.by_bounds is [| (0, 6); (4, 9) |] in
  Alcotest.(check bool) "aliased bounds" false p2.Partition.disjoint

let test_by_value_ranges () =
  let values = Region.of_array "v" [| 5; 1; 9; 1; 5 |] in
  let p =
    Partition.by_value_ranges ~values (Iset.range 5) [| (0, 4); (5, 9) |]
  in
  Alcotest.(check (list int)) "small values" [ 1; 3 ]
    (Iset.elements (Partition.subset p 0));
  Alcotest.(check (list int)) "large values" [ 0; 2; 4 ]
    (Iset.elements (Partition.subset p 1))

let test_make_validates () =
  try
    ignore (Partition.make (Iset.range 3) [| Iset.interval 2 5 |]);
    Alcotest.fail "expected Error.Error for escaping subset"
  with Error.Error e ->
    Alcotest.(check string)
      "phase and message"
      "partition-eval: Partition.make: subset escapes parent"
      (Error.to_string e)

let prop_equal_blocks_laws =
  Helpers.qtest "equal_blocks: disjoint and complete"
    QCheck.(pair Helpers.arb_iset (int_range 1 8))
    (fun (is, pieces) ->
      let p = Partition.equal_blocks is pieces in
      p.Partition.disjoint && Partition.is_complete p)

let prop_equal_cardinality_balance =
  Helpers.qtest "equal_cardinality: near-equal counts, disjoint, complete"
    QCheck.(pair Helpers.arb_iset (int_range 1 8))
    (fun (is, pieces) ->
      let p = Partition.equal_cardinality is pieces in
      let n = Iset.cardinal is in
      let ok_balance =
        Array.for_all
          (fun s ->
            let c = Iset.cardinal s in
            c >= n / pieces && c <= (n / pieces) + 1)
          p.Partition.subsets
      in
      p.Partition.disjoint && Partition.is_complete p && ok_balance)

let suite =
  [
    Alcotest.test_case "equal_blocks" `Quick test_equal_blocks;
    Alcotest.test_case "equal_blocks on sparse universe" `Quick
      test_equal_blocks_sparse_universe;
    Alcotest.test_case "equal_cardinality" `Quick test_equal_cardinality;
    Alcotest.test_case "by_bounds" `Quick test_by_bounds;
    Alcotest.test_case "by_value_ranges" `Quick test_by_value_ranges;
    Alcotest.test_case "make validates" `Quick test_make_validates;
    prop_equal_blocks_laws;
    prop_equal_cardinality_balance;
  ]
