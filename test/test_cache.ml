(* The execution-context cache (warm-start protocol).

   Load-bearing invariants:
   - amortization: the cold first iteration pays dependent partitioning,
     warm iterations are strictly cheaper and hit the cache;
   - bit-identity: cached and uncached (--no-cache) runs produce bitwise
     equal outputs and per-iteration launch records, with and without
     fault injection — the cache may only change WHEN partitioning runs,
     never what the launches do;
   - the digest is injective across distinct (tin, formats, tdn, schedule,
     machine) tuples and insensitive to stored values;
   - a node crash invalidates the entry, forcing a re-partition (re-paid). *)

open Spdistal_runtime
open Spdistal_exec
module S = Core.Spdistal
module Report = Spdistal_obs.Report
module Trace = Spdistal_obs.Trace

let iter_totals r = List.map (fun it -> Cost.total it.S.it_cost) r.S.iters
let statuses r = List.map (fun it -> it.S.it_cache) r.S.iters

(* Everything a launch contributes to the clock except the partitioning
   charge itself: bitwise equal between cached and uncached runs. *)
let launch_sig (c : Cost.t) =
  ( Int64.bits_of_float c.Cost.compute,
    Int64.bits_of_float c.Cost.comm,
    Int64.bits_of_float c.Cost.overhead,
    Int64.bits_of_float c.Cost.bytes_moved,
    c.Cost.messages,
    c.Cost.launches,
    Int64.bits_of_float c.Cost.flops,
    Int64.bits_of_float c.Cost.recovery,
    c.Cost.retries,
    Int64.bits_of_float c.Cost.resent_bytes,
    c.Cost.faults )

(* ------------------------------------------------------------------ *)
(* Amortization: cold miss pays, warm hits don't                       *)
(* ------------------------------------------------------------------ *)

let test_amortization () =
  let res, trace = Helpers.run_traced ~iterations:4 (Helpers.comm_spmv ()) in
  Alcotest.(check (option string)) "completes" None res.S.dnc;
  Alcotest.(check int) "one stat per iteration" 4 (List.length res.S.iters);
  (match statuses res with
  | [ `Miss; `Hit; `Hit; `Hit ] -> ()
  | _ -> Alcotest.fail "expected Miss, Hit, Hit, Hit");
  (match iter_totals res with
  | cold :: (warm :: _ as warms) ->
      Alcotest.(check bool)
        "cold iteration strictly dearer than warm" true (cold > warm);
      (* Equal up to accumulator rounding: each warm iteration adds the same
         dt sequence, but at a different running-sum offset. *)
      List.iter
        (fun w -> Helpers.check_float "warm iterations cost the same" warm w)
        warms
  | _ -> Alcotest.fail "no iterations");
  let c = res.S.cost in
  Alcotest.(check bool) "partitioning charged" true (c.Cost.partitioning > 0.);
  Alcotest.(check bool) "dep ops counted" true (c.Cost.part_ops > 0);
  (* Charged exactly once: the whole partitioning column sits in iteration 0. *)
  (match res.S.iters with
  | it0 :: rest ->
      Alcotest.(check bool)
        "all partitioning in the cold iteration" true
        (it0.S.it_cost.Cost.partitioning = c.Cost.partitioning);
      List.iter
        (fun it ->
          Alcotest.(check (float 0.)) "warm iterations pay nothing" 0.
            it.S.it_cost.Cost.partitioning)
        rest
  | [] -> Alcotest.fail "no iterations");
  (* The trace carries the hit/miss instants and the partition span. *)
  let spans cat name =
    List.filter
      (fun sp ->
        sp.Trace.sp_track = Trace.Runtime
        && sp.Trace.sp_cat = cat && sp.Trace.sp_name = name)
      (Trace.spans trace)
  in
  Alcotest.(check int) "one cache_miss instant" 1 (List.length (spans "cache" "cache_miss"));
  Alcotest.(check int) "three cache_hit instants" 3 (List.length (spans "cache" "cache_hit"));
  Alcotest.(check int)
    "one dependent_partitioning span" 1
    (List.length (spans "partition" "dependent_partitioning"));
  Alcotest.(check int) "four iteration spans" 4 (List.length (spans "iteration" "iteration"));
  (* And the report reads them back. *)
  let r = Report.of_trace trace in
  Alcotest.(check int) "report iterations" 4 (List.length r.Report.r_iterations);
  Alcotest.(check int) "report hits" 3 r.Report.r_cache_hits;
  Alcotest.(check int) "report misses" 1 r.Report.r_cache_misses;
  List.iter
    (fun ir ->
      if ir.Report.ir_index = 0 then
        Alcotest.(check bool) "cold row pays partitioning" true (ir.Report.ir_partition > 0.)
      else
        Alcotest.(check (float 0.)) "warm rows pay nothing" 0. ir.Report.ir_partition)
    r.Report.r_iterations

let test_no_cache_repays_every_iteration () =
  let res, _ = Helpers.run_traced ~iterations:4 ~cache:false (Helpers.comm_spmv ()) in
  Alcotest.(check (option string)) "completes" None res.S.dnc;
  Alcotest.(check bool)
    "every iteration bypasses the cache" true
    (List.for_all (fun s -> s = `Uncached) (statuses res));
  (match iter_totals res with
  | t0 :: rest ->
      List.iter
        (fun t ->
          Helpers.check_float
            "uncached iterations all cost the same (partitioning re-paid)" t0 t)
        rest
  | [] -> Alcotest.fail "no iterations");
  List.iter
    (fun it ->
      Alcotest.(check bool)
        "each uncached iteration pays partitioning" true
        (it.S.it_cost.Cost.partitioning > 0.))
    res.S.iters

let test_legacy_protocol_unchanged () =
  (* No [iterations]: the single-shot path, no cache, no partitioning column,
     no per-iteration stats — byte-compatible with the seed protocol. *)
  let r = S.run (Helpers.comm_spmv ()) in
  Alcotest.(check (option string)) "completes" None r.S.dnc;
  Alcotest.(check bool) "no iteration stats" true (r.S.iters = []);
  Alcotest.(check (float 0.)) "no partitioning charged" 0. r.S.cost.Cost.partitioning;
  Alcotest.(check int) "no dep ops charged" 0 r.S.cost.Cost.part_ops;
  (* A warm iteration's launch work equals the legacy run's whole clock. *)
  let res, _ = Helpers.run_traced ~iterations:3 (Helpers.comm_spmv ()) in
  match List.rev (iter_totals res) with
  | warm :: _ ->
      Helpers.check_float "warm iteration = legacy total" (Cost.total r.S.cost) warm
  | [] -> Alcotest.fail "no iterations"

(* ------------------------------------------------------------------ *)
(* Bit-identity: cached vs uncached, including under faults            *)
(* ------------------------------------------------------------------ *)

let check_bit_identity ?faults ~iterations name make =
  let p_c = make () in
  let r_c = S.run ?faults ~iterations ~cache:true p_c in
  let p_u = make () in
  let r_u = S.run ?faults ~iterations ~cache:false p_u in
  match (r_c.S.dnc, r_u.S.dnc) with
  | Some _, Some _ -> true (* recovery exhausted under both: same verdict *)
  | None, None ->
      if Helpers.snapshot p_c <> Helpers.snapshot p_u then
        Alcotest.failf "%s: outputs differ cached vs uncached" name;
      let sigs r = List.map (fun it -> launch_sig it.S.it_cost) r.S.iters in
      if sigs r_c <> sigs r_u then
        Alcotest.failf "%s: per-iteration launch records differ" name;
      true
  | _ -> Alcotest.failf "%s: DNC only in one mode" name

let test_bit_identity_under_faults () =
  (* ISSUE acceptance: 10% fault rate, every kernel, cached and uncached
     agree bit for bit. *)
  let faults = Fault.make ~seed:7 ~rate:0.1 () in
  List.iter
    (fun (name, make) ->
      ignore (check_bit_identity ~faults ~iterations:3 name make))
    (Helpers.kernel_problems ())

let prop_bit_identity =
  let open QCheck in
  let arb =
    make
      ~print:(fun (s, k, n, rate) ->
        Printf.sprintf "seed=%d kernel=%d iterations=%d rate=%d%%" s k n rate)
      Gen.(
        let* s = int_range 0 1000 in
        let* k = int_range 0 6 in
        let* n = int_range 1 4 in
        let* rate = int_range 0 30 in
        return (s, k, n, rate))
  in
  Helpers.qtest ~count:10 "cached = uncached (outputs, launch records)" arb
    (fun (seed, k, iterations, rate_pct) ->
      let name, make = List.nth (Helpers.kernel_problems ()) k in
      let faults =
        if rate_pct = 0 then None
        else Some (Fault.make ~seed ~rate:(float_of_int rate_pct /. 100.) ())
      in
      check_bit_identity ?faults ~iterations name make)

(* ------------------------------------------------------------------ *)
(* Digest                                                              *)
(* ------------------------------------------------------------------ *)

let digest_of (p : S.problem) =
  Cache.digest ~machine:p.S.machine ~operands:p.S.operands ~stmt:p.S.stmt
    ~schedule:p.S.schedule

let test_digest_injective () =
  (* A corpus of pairwise-distinct problems: every fig10 kernel (both
     distribution schedules), two machine sizes, two sparsity patterns.
     All digests must differ; rebuilding the same problem must not. *)
  let catalog mseed tseed =
    Helpers.kernel_problems ~mseed ~tseed () @ Helpers.nnz_kernel_problems ~mseed ~tseed ()
  in
  let corpus =
    List.map (fun (n, make) -> ("a-" ^ n, digest_of (make ()))) (catalog 71 72)
    @ List.map (fun (n, make) -> ("b-" ^ n, digest_of (make ()))) (catalog 171 172)
    @ [
        ( "spmv-4pieces",
          digest_of
            (Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 4)
               (Helpers.rand_csr ~seed:71 80 80 0.06)) );
      ]
  in
  List.iteri
    (fun i (ni, di) ->
      List.iteri
        (fun j (nj, dj) ->
          if i < j && di = dj then
            Alcotest.failf "digest collision: %s = %s" ni nj)
        corpus)
    corpus;
  List.iter
    (fun (n, make) ->
      Alcotest.(check string)
        (n ^ ": digest deterministic across rebuilds")
        (digest_of (make ())) (digest_of (make ())))
    (catalog 71 72)

let test_digest_ignores_values () =
  (* Same sparsity structure, different stored values: the whole point of
     the cache is that iterative value updates keep the partitions. *)
  let make () =
    Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 8)
      (Helpers.rand_csr ~seed:71 80 80 0.06)
  in
  let p = make () in
  let d0 = digest_of p in
  (match (Operand.find (S.bindings p) "B").Operand.data with
  | Operand.Sparse t ->
      let vals = t.Spdistal_formats.Tensor.vals in
      Region.F.set vals 0 (Region.F.get vals 0 +. 1.)
  | _ -> Alcotest.fail "B is not sparse");
  Alcotest.(check string) "value update keeps the digest" d0 (digest_of p);
  (* A different pattern (other seed) changes it. *)
  let p2 =
    Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 8)
      (Helpers.rand_csr ~seed:72 80 80 0.06)
  in
  Alcotest.(check bool)
    "pattern change changes the digest" true
    (d0 <> digest_of p2)

let test_digest_sees_machine_params () =
  (* The digest renders the machine params field by field (Marshal's byte
     layout is not a stable canonical form): perturbing any single field —
     including ones the simulated kernel may never consult — must change
     the key, because a cached plan priced under different params is stale. *)
  let problem_with params =
    Core.Kernels.spmv_problem
      ~machine:(S.machine ~params ~kind:Machine.Cpu [| 8 |])
      (Helpers.rand_csr ~seed:71 80 80 0.06)
  in
  let base = Machine.lassen in
  let d0 = digest_of (problem_with base) in
  Alcotest.(check string)
    "same params, same digest" d0
    (digest_of (problem_with { base with Machine.cpu_cores = base.Machine.cpu_cores }));
  let perturbed =
    [
      ("scaled 2x", Machine.scale_params 2.0 base);
      ("cpu_cores+1", { base with Machine.cpu_cores = base.Machine.cpu_cores + 1 });
      ("gpus_per_node+1",
       { base with Machine.gpus_per_node = base.Machine.gpus_per_node + 1 });
      ("task_overhead*2",
       { base with Machine.task_overhead = base.Machine.task_overhead *. 2. });
      ("atomic_penalty_cpu*2",
       { base with
         Machine.atomic_penalty_cpu = base.Machine.atomic_penalty_cpu *. 2. });
      ("atomic_penalty_gpu*2",
       { base with
         Machine.atomic_penalty_gpu = base.Machine.atomic_penalty_gpu *. 2. });
      ("legion_leaf_efficiency/2",
       { base with
         Machine.legion_leaf_efficiency =
           base.Machine.legion_leaf_efficiency /. 2. });
      ("uvm_page_bw*2",
       { base with Machine.uvm_page_bw = base.Machine.uvm_page_bw *. 2. });
      (* A tiny relative nudge: %h rendering is exact, so even the last bit
         of a float must be visible to the key. *)
      ("net_alpha ulp-ish",
       { base with Machine.net_alpha = base.Machine.net_alpha *. (1. +. 1e-15) });
    ]
  in
  List.iter
    (fun (what, params) ->
      Alcotest.(check bool)
        (what ^ " changes the digest")
        true
        (d0 <> digest_of (problem_with params)))
    perturbed;
  (* Grid and kind perturbations, same params. *)
  let with_machine machine =
    Core.Kernels.spmv_problem ~machine (Helpers.rand_csr ~seed:71 80 80 0.06)
  in
  Alcotest.(check bool)
    "grid change changes the digest" true
    (d0 <> digest_of (with_machine (S.machine ~params:base ~kind:Machine.Cpu [| 4 |])));
  Alcotest.(check bool)
    "kind change changes the digest" true
    (d0 <> digest_of (with_machine (S.machine ~params:base ~kind:Machine.Gpu [| 8 |])))

(* ------------------------------------------------------------------ *)
(* Fault-driven invalidation                                           *)
(* ------------------------------------------------------------------ *)

let test_crash_invalidates () =
  (* Find a deterministic schedule that crashes a node mid-run; the cache
     must invalidate and the next iteration must re-partition (a second
     miss, with the partitioning column charged again). *)
  let exercised =
    List.exists
      (fun seed ->
        let p =
          Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 8)
            (Helpers.rand_csr ~seed:71 80 80 0.06)
        in
        let ctx = S.Context.create p in
        let faults = Fault.make ~seed ~crash:0.4 ~retries:50 () in
        let r = S.Context.run ~faults ~iterations:6 ctx in
        match (r.S.dnc, S.Context.cache_stats ctx) with
        | None, Some st when st.Cache.invalidations > 0 ->
            Alcotest.(check bool)
              "re-partition after invalidation (>= 2 misses)" true
              (st.Cache.misses >= 2);
            let repaid =
              List.filter
                (fun it ->
                  it.S.it_index > 0 && it.S.it_cost.Cost.partitioning > 0.)
                r.S.iters
            in
            Alcotest.(check bool)
              "a later iteration re-pays partitioning" true (repaid <> []);
            true
        | _ -> false)
      (List.init 32 (fun i -> i + 1))
  in
  Alcotest.(check bool)
    "some seed in 1..32 crashes a node and invalidates" true exercised

(* ------------------------------------------------------------------ *)
(* Context reuse                                                       *)
(* ------------------------------------------------------------------ *)

let test_context_reuse_all_hits () =
  let p = Helpers.comm_spmv () in
  let ctx = S.Context.create p in
  let r1 = S.Context.run ~iterations:2 ctx in
  Alcotest.(check (option string)) "first run completes" None r1.S.dnc;
  let out1 = Helpers.snapshot p in
  (match statuses r1 with
  | [ `Miss; `Hit ] -> ()
  | _ -> Alcotest.fail "first run: expected Miss, Hit");
  let r2 = S.Context.run ~iterations:2 ctx in
  Alcotest.(check (option string)) "second run completes" None r2.S.dnc;
  Alcotest.(check bool)
    "second run is all hits" true
    (List.for_all (fun s -> s = `Hit) (statuses r2));
  Alcotest.(check (float 0.)) "second run pays no partitioning" 0.
    r2.S.cost.Cost.partitioning;
  Alcotest.(check bool)
    "reused context computes the same outputs" true
    (Helpers.snapshot p = out1);
  match S.Context.cache_stats ctx with
  | Some st ->
      Alcotest.(check int) "one live entry" 1 st.Cache.entries;
      Alcotest.(check int) "one miss overall" 1 st.Cache.misses;
      Alcotest.(check int) "three hits overall" 3 st.Cache.hits
  | None -> Alcotest.fail "context has no cache"

(* ------------------------------------------------------------------ *)
(* LRU recency and the byte budget                                     *)
(* ------------------------------------------------------------------ *)

let test_lru_recency () =
  (* Three distinct problems over one shared 2-entry cache, touched
     A B A C: with true LRU (hits refresh recency) the eviction forced by C
     drops B — A, re-used more recently, survives.  Insertion-order FIFO
     would wrongly drop A. *)
  let problem seed =
    Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 2)
      (Helpers.rand_csr ~seed 40 40 0.08)
  in
  let cache = Cache.create ~cap:2 () in
  let ctx_of p = S.Context.create ~shared_cache:cache p in
  let a = ctx_of (problem 81)
  and b = ctx_of (problem 82)
  and c = ctx_of (problem 83) in
  let run ctx = Alcotest.(check (option string)) "completes" None (S.Context.run ctx).S.dnc in
  run a;
  run b;
  run a;
  (* a: hit, refreshing its recency *)
  run c;
  (* evicts the LRU entry — b, not a *)
  let st = Cache.stats cache in
  Alcotest.(check int) "one eviction" 1 st.Cache.evictions;
  Alcotest.(check int) "cap holds" 2 st.Cache.entries;
  Alcotest.(check bool) "bytes accounted" true (st.Cache.bytes > 0);
  Alcotest.(check bool) "peak >= live bytes" true
    (st.Cache.bytes_peak >= st.Cache.bytes);
  run a;
  Alcotest.(check int) "A survived (hit, not rebuild)"
    (st.Cache.misses)
    (Cache.stats cache).Cache.misses;
  run b;
  Alcotest.(check int) "B was the one evicted (miss on return)"
    (st.Cache.misses + 1)
    (Cache.stats cache).Cache.misses

let test_byte_budget_evicts () =
  (* A budget that holds one entry but not two: the second problem's insert
     evicts the first, and the resting footprint never exceeds the budget. *)
  let problem seed =
    Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 2)
      (Helpers.rand_csr ~seed 40 40 0.08)
  in
  let probe = Cache.create () in
  ignore (S.Context.run (S.Context.create ~shared_cache:probe (problem 84)));
  let one = (Cache.stats probe).Cache.bytes in
  Alcotest.(check bool) "probe entry has bytes" true (one > 0);
  let budget = one + (one / 2) in
  let cache = Cache.create ~byte_budget:budget () in
  ignore (S.Context.run (S.Context.create ~shared_cache:cache (problem 84)));
  ignore (S.Context.run (S.Context.create ~shared_cache:cache (problem 85)));
  let st = Cache.stats cache in
  Alcotest.(check int) "budget evicted the older entry" 1 st.Cache.evictions;
  Alcotest.(check bool) "resting bytes under budget" true (st.Cache.bytes <= budget);
  Alcotest.(check bool) "peak sampled under budget" true
    (st.Cache.bytes_peak <= budget);
  Alcotest.(check bool) "non-positive budget rejected" true
    (try
       ignore (Cache.create ~byte_budget:0 ());
       false
     with Error.Error { Error.phase = Error.Config; _ } -> true)

let test_crash_soak_under_budget () =
  (* Satellite soak: one context reused across many fault-bearing runs.
     Repeated crashes keep invalidating the entry; outputs stay
     bit-identical to the fault-free run and the accounted bytes never
     leave the budget. *)
  let make () =
    Core.Kernels.spmv_problem ~machine:(Helpers.cpu_machine 8)
      (Helpers.rand_csr ~seed:71 80 80 0.06)
  in
  let clean = make () in
  ignore (S.run ~faults:Fault.disabled clean);
  let expected = Helpers.snapshot clean in
  let p = make () in
  let probe = Cache.create () in
  ignore (S.Context.run (S.Context.create ~shared_cache:probe (make ())));
  let budget = 2 * (Cache.stats probe).Cache.bytes in
  let cache = Cache.create ~byte_budget:budget () in
  let ctx = S.Context.create ~shared_cache:cache p in
  let invalidations = ref 0 in
  List.iter
    (fun seed ->
      let faults = Fault.make ~seed ~crash:0.4 ~retries:50 () in
      let r = S.Context.run ~faults ~iterations:4 ctx in
      Alcotest.(check (option string)) "soak run completes" None r.S.dnc;
      Alcotest.(check bool)
        "outputs bit-identical under crashes" true
        (Helpers.snapshot p = expected);
      let st = Cache.stats cache in
      invalidations := st.Cache.invalidations;
      Alcotest.(check bool) "bytes under budget" true (st.Cache.bytes <= budget);
      Alcotest.(check bool) "peak under budget" true
        (st.Cache.bytes_peak <= budget))
    (List.init 12 (fun i -> i + 1));
  Alcotest.(check bool)
    "crashes kept invalidating across the soak" true (!invalidations >= 3)

let suite =
  [
    Alcotest.test_case "amortization: miss then hits" `Quick test_amortization;
    Alcotest.test_case "--no-cache re-pays every iteration" `Quick
      test_no_cache_repays_every_iteration;
    Alcotest.test_case "legacy protocol unchanged" `Quick
      test_legacy_protocol_unchanged;
    Alcotest.test_case "bit-identity at 10% fault rate" `Quick
      test_bit_identity_under_faults;
    prop_bit_identity;
    Alcotest.test_case "digest injective on a corpus" `Quick
      test_digest_injective;
    Alcotest.test_case "digest ignores stored values" `Quick
      test_digest_ignores_values;
    Alcotest.test_case "digest sees every machine param" `Quick
      test_digest_sees_machine_params;
    Alcotest.test_case "crash invalidates the entry" `Quick
      test_crash_invalidates;
    Alcotest.test_case "context reuse: all hits" `Quick
      test_context_reuse_all_hits;
    Alcotest.test_case "true LRU: hits refresh recency" `Quick test_lru_recency;
    Alcotest.test_case "byte budget evicts" `Quick test_byte_budget_evicts;
    Alcotest.test_case "crash soak stays under budget" `Quick
      test_crash_soak_under_budget;
  ]
