let () =
  (* Hermeticity: a SPDISTAL_FAULTS env override (the CI chaos matrix sets
     one) must not leak into golden/numeric tests — only Test_fault reads
     the env, explicitly.  Costs under faults are covered there. *)
  Spdistal_runtime.Fault.set_default Spdistal_runtime.Fault.disabled;
  (* --update-golden is ours, not Alcotest's: strip it from argv before the
     runner parses the rest (e.g. `test_main.exe golden --update-golden`). *)
  let argv =
    Array.of_list
      (List.filter
         (fun a ->
           if a = "--update-golden" then begin
             Test_golden.update := true;
             false
           end
           else true)
         (Array.to_list Sys.argv))
  in
  Alcotest.run ~argv "spdistal"
    [
      ("iset", Test_iset.suite);
      ("partition", Test_partition.suite);
      ("dependent", Test_dependent.suite);
      ("formats", Test_formats.suite);
      ("formats-dist", Test_formats_dist.suite);
      ("machine", Test_machine.suite);
      ("runtime-more", Test_runtime_more.suite);
      ("ir", Test_ir.suite);
      ("pretty", Test_pretty.suite);
      ("exec", Test_exec.suite);
      ("baselines", Test_baselines.suite);
      ("baselines-more", Test_baselines_more.suite);
      ("interp-more", Test_interp_more.suite);
      ("pool", Test_pool.suite);
      ("parallel", Test_parallel.suite);
      ("fault", Test_fault.suite);
      ("props", Test_props.suite);
      ("fuzz", Test_fuzz.suite);
      ("placement", Test_placement.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("cache", Test_cache.suite);
      ("golden", Test_golden.suite);
      ("cli", Test_cli.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("serve", Test_serve.suite);
      ("opt", Test_opt.suite);
    ]
