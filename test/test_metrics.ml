(* The metrics plane: registry semantics (kinds, labels, null no-op),
   deterministic histogram quantiles, the sim-clock scraper, the structured
   event log, SLO parsing/evaluation — and the load-bearing determinism
   property: a serve run's scraped snapshots and Prometheus exposition are
   byte-identical across [--domains] and invariant under the fault seed
   when the fault rate is 0. *)

open Spdistal_serve
module Metrics = Spdistal_obs.Metrics
module Log = Spdistal_obs.Log
module Slo = Spdistal_obs.Slo
module Trace = Spdistal_obs.Trace

(* Every test that installs ambient defaults must restore [null]: the rest
   of the test binary assumes an uninstrumented process. *)
let with_defaults f =
  let reg = Metrics.create () in
  let lg = Log.create ~level:Log.Debug () in
  Metrics.set_default reg;
  Log.set_default lg;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_default Metrics.null;
      Log.set_default Log.null)
    (fun () -> f reg lg)

(* ------------------------------------------------------------------ *)
(* Registry basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let m = Metrics.create () in
  Metrics.inc m "jobs_total";
  Metrics.inc m ~by:2.5 "jobs_total";
  Alcotest.(check (option (float 1e-9)))
    "counter accumulates" (Some 3.5)
    (Metrics.value m "jobs_total");
  Metrics.set m "depth" 7.;
  Metrics.set m "depth" 3.;
  Alcotest.(check (option (float 1e-9)))
    "gauge overwrites" (Some 3.)
    (Metrics.value m "depth");
  (* Label order never distinguishes series. *)
  Metrics.inc m ~labels:[ ("a", "1"); ("b", "2") ] "labeled_total";
  Metrics.inc m ~labels:[ ("b", "2"); ("a", "1") ] "labeled_total";
  Alcotest.(check (option (float 1e-9)))
    "labels sorted internally" (Some 2.)
    (Metrics.value m ~labels:[ ("a", "1"); ("b", "2") ] "labeled_total");
  Alcotest.(check (option (float 1e-9)))
    "missing series" None
    (Metrics.value m ~labels:[ ("a", "9") ] "labeled_total")

let invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let test_kind_mismatch () =
  let m = Metrics.create () in
  Metrics.inc m "x_total";
  Alcotest.(check bool)
    "set on a counter" true
    (invalid (fun () -> Metrics.set m "x_total" 1.));
  Alcotest.(check bool)
    "observe on a counter" true
    (invalid (fun () -> Metrics.observe m "x_total" 1.));
  Alcotest.(check bool)
    "negative counter increment" true
    (invalid (fun () -> Metrics.inc m ~by:(-1.) "x_total"));
  Alcotest.(check bool)
    "bad metric name" true
    (invalid (fun () -> Metrics.inc m "has space"));
  Alcotest.(check bool)
    "duplicate label key" true
    (invalid (fun () -> Metrics.inc m ~labels:[ ("k", "a"); ("k", "b") ] "y_total"))

let test_null_noop () =
  Alcotest.(check bool) "null disabled" false (Metrics.enabled Metrics.null);
  Metrics.inc Metrics.null "ignored_total";
  Metrics.set Metrics.null "ignored" 1.;
  Metrics.observe Metrics.null "ignored_seconds" 1.;
  Alcotest.(check (option (float 1e-9)))
    "null records nothing" None
    (Metrics.value Metrics.null "ignored_total");
  Alcotest.(check int)
    "null snapshot empty" 0
    (List.length (Metrics.snapshot Metrics.null));
  Alcotest.(check bool) "null log disabled" false (Log.enabled Log.null);
  Log.event Log.null "ignored";
  Alcotest.(check int) "null log empty" 0 (List.length (Log.entries Log.null))

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_basics () =
  let m = Metrics.create () in
  List.iter
    (fun v -> Metrics.observe m "lat_seconds" v)
    [ 0.001; 0.002; 0.004; 0.008; 0.1 ];
  (match Metrics.hist_stats m "lat_seconds" with
  | Some (n, sum) ->
      Alcotest.(check int) "count" 5 n;
      Alcotest.(check (float 1e-9)) "sum" 0.115 sum
  | None -> Alcotest.fail "histogram missing");
  let q p =
    match Metrics.quantile m "lat_seconds" p with
    | Some v -> v
    | None -> Alcotest.fail "quantile missing"
  in
  Alcotest.(check bool) "p50 <= p95" true (q 0.50 <= q 0.95);
  Alcotest.(check bool) "p95 <= p99" true (q 0.95 <= q 0.99);
  (* Each observation v lands in the bucket whose upper bound is the first
     boundary >= v, so every quantile dominates the observation at its
     rank; with 5 observations p99's rank is the max, 0.1. *)
  Alcotest.(check bool) "p99 covers the max" true (q 0.99 >= 0.1);
  Alcotest.(check (option (float 1e-9)))
    "empty histogram has no quantile" None
    (Metrics.quantile m "lat_seconds" 0.5 ~labels:[ ("t", "none") ])

let prop_quantile_monotone =
  Helpers.qtest ~count:100 "histogram quantiles monotone, count exact"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (float_range 1e-7 1e4))
    (fun obs ->
      let m = Metrics.create () in
      List.iter (fun v -> Metrics.observe m "h_seconds" v) obs;
      let q p =
        match Metrics.quantile m "h_seconds" p with
        | Some v -> v
        | None -> QCheck.Test.fail_report "quantile missing"
      in
      let qs = List.map q [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ] in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone qs
      && Metrics.hist_stats m "h_seconds" = Some (List.length obs, List.fold_left ( +. ) 0. obs)
      || (* float sums compare exactly only when accumulation order matches;
            tolerate rounding on the sum, the count must be exact. *)
      match Metrics.hist_stats m "h_seconds" with
      | Some (n, sum) ->
          monotone qs
          && n = List.length obs
          && abs_float (sum -. List.fold_left ( +. ) 0. obs) <= 1e-6 *. abs_float sum
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Scraper                                                             *)
(* ------------------------------------------------------------------ *)

let test_scrape_boundaries () =
  let m = Metrics.create () in
  let s = Metrics.Scrape.create ~interval:0.05 m in
  Metrics.inc m "ticks_total";
  Metrics.Scrape.tick s ~now:0.01;
  Alcotest.(check int) "no boundary crossed" 0 (List.length (Metrics.Scrape.rows s));
  Metrics.Scrape.tick s ~now:0.12;
  let times () = List.map fst (Metrics.Scrape.rows s) in
  Alcotest.(check (list (float 1e-9)))
    "boundaries 0.05 and 0.10" [ 0.05; 0.10 ] (times ());
  Metrics.Scrape.tick s ~now:0.12;
  Alcotest.(check int) "tick is idempotent" 2 (List.length (Metrics.Scrape.rows s));
  Metrics.Scrape.force s ~now:0.12;
  Alcotest.(check (list (float 1e-9)))
    "force appends the partial window" [ 0.05; 0.10; 0.12 ] (times ());
  Alcotest.(check bool)
    "csv carries the series" true
    (Helpers.contains (Metrics.Scrape.to_csv s) "0.05,ticks_total,1");
  Alcotest.(check bool)
    "non-positive interval rejected" true
    (invalid (fun () -> ignore (Metrics.Scrape.create ~interval:0. m)))

let test_wall_exclusion () =
  let m = Metrics.create () in
  Metrics.inc m "det_total";
  Metrics.inc m ~wall:true "wall_seconds_total";
  let names ?wall () =
    List.map (fun s -> s.Metrics.sm_name) (Metrics.snapshot ?wall m)
  in
  Alcotest.(check (list string))
    "wall families excluded by default" [ "det_total" ] (names ());
  Alcotest.(check (list string))
    "included on request"
    [ "det_total"; "wall_seconds_total" ]
    (names ~wall:true ());
  Alcotest.(check bool)
    "exposition skips wall families" false
    (Helpers.contains (Metrics.expose m) "wall_seconds_total")

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)
(* ------------------------------------------------------------------ *)

let test_log_jsonl () =
  let lg = Log.create ~level:Log.Info () in
  Log.event lg ~level:Log.Debug "dropped_below_level";
  Log.event lg ~level:Log.Warn ~time:1.25 ~track:(Trace.Tenant 1)
    ~span:"job 3 spmv-web"
    ~fields:
      [ ("job", Trace.I 3); ("reason", Trace.S "queue \"full\""); ("ok", Trace.B false) ]
    "job_shed";
  Alcotest.(check int) "below-level dropped" 1 (List.length (Log.entries lg));
  let line = String.trim (Log.to_jsonl lg) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "jsonl has %s" needle)
        true
        (Helpers.contains line needle))
    [
      "\"seq\":0";
      "\"t\":1.25";
      "\"level\":\"warn\"";
      "\"event\":\"job_shed\"";
      "\"span\":\"job 3 spmv-web\"";
      "\"job\":3";
      "\"reason\":\"queue \\\"full\\\"\"";
      "\"ok\":false";
    ];
  (* track renders with the same pid/tid the Chrome exporter uses. *)
  Alcotest.(check bool) "pid present" true (Helpers.contains line "\"pid\":");
  Alcotest.(check bool) "tid present" true (Helpers.contains line "\"tid\":")

(* ------------------------------------------------------------------ *)
(* SLOs                                                                *)
(* ------------------------------------------------------------------ *)

let test_slo_parse () =
  let text =
    "# latency\np99_ms <= 200\nshed_rate <= 0.05 budget=0.1\n\nhit_rate >= 0.4\n"
  in
  (match Slo.parse text with
  | Ok [ a; b; c ] ->
      Alcotest.(check string) "metric" "p99_ms" a.Slo.o_metric;
      Alcotest.(check bool) "op" true (a.Slo.o_op = Slo.Le);
      Alcotest.(check (float 1e-9)) "bound" 200. a.Slo.o_bound;
      Alcotest.(check (float 1e-9)) "default budget" 0. a.Slo.o_budget;
      Alcotest.(check (float 1e-9)) "explicit budget" 0.1 b.Slo.o_budget;
      Alcotest.(check bool) "ge op" true (c.Slo.o_op = Slo.Ge)
  | Ok l -> Alcotest.failf "expected 3 objectives, got %d" (List.length l)
  | Error e -> Alcotest.fail e);
  (match Slo.parse "p99_ms <= not_a_number" with
  | Error e ->
      Alcotest.(check bool)
        "error names the offender" true
        (Helpers.contains e "not_a_number")
  | Ok _ -> Alcotest.fail "bad bound accepted");
  match Slo.parse "# only comments\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty objective file accepted"

let window t values = { Slo.w_time = t; w_tags = []; w_values = values }

let test_slo_evaluate () =
  let windows =
    [
      window 0.1 [ ("spdistal_serve_p99_ms", 150.) ];
      window 0.2 [ ("spdistal_serve_p99_ms", 250.) ];
      window 0.3 [ ("spdistal_serve_p99_ms", 120.) ];
      window 0.4 [ ("spdistal_serve_p99_ms", 130.) ];
    ]
  in
  let eval line =
    match Slo.parse line with
    | Error e -> Alcotest.fail e
    | Ok objectives -> (
        match Slo.evaluate objectives windows with
        | Error e -> Alcotest.fail e
        | Ok vs -> vs)
  in
  (* Suffix resolution: p99_ms finds spdistal_serve_p99_ms.  One of four
     windows violates; burn 0.25. *)
  (match eval "p99_ms <= 200" with
  | [ v ] ->
      Alcotest.(check (list string))
        "resolved key" [ "spdistal_serve_p99_ms" ] v.Slo.d_keys;
      Alcotest.(check int) "windows" 4 v.Slo.d_windows;
      Alcotest.(check int) "violations" 1 v.Slo.d_violations;
      Alcotest.(check (float 1e-9)) "burn" 0.25 v.Slo.d_burn;
      Alcotest.(check bool) "zero budget fails" false v.Slo.d_ok;
      (match v.Slo.d_worst with
      | Some (t, value) ->
          Alcotest.(check (float 1e-9)) "worst window" 0.2 t;
          Alcotest.(check (float 1e-9)) "worst value" 250. value
      | None -> Alcotest.fail "no worst window")
  | vs -> Alcotest.failf "expected 1 verdict, got %d" (List.length vs));
  (match eval "p99_ms <= 200 budget=0.3" with
  | [ v ] -> Alcotest.(check bool) "burn within budget" true v.Slo.d_ok
  | _ -> Alcotest.fail "expected 1 verdict");
  match Slo.parse "nonexistent <= 1" with
  | Error e -> Alcotest.fail e
  | Ok objectives -> (
      match Slo.evaluate objectives windows with
      | Error e ->
          Alcotest.(check bool)
            "unresolved metric is an error" true
            (Helpers.contains e "nonexistent")
      | Ok _ -> Alcotest.fail "unresolved metric accepted")

let test_slo_wide_csv () =
  let csv =
    "# a comment\n\
     scenario,jobs,p99_ms,shed_rate\n\
     steady,240,80.5,0.01\n\
     chaos,240,300.0,0.20\n"
  in
  match Slo.windows_of_csv csv with
  | Error e -> Alcotest.fail e
  | Ok windows ->
      Alcotest.(check int) "one window per data row" 2 (List.length windows);
      let chaos = Slo.select ~key:"scenario" ~value:"chaos" windows in
      Alcotest.(check int) "select keeps the tagged row" 1 (List.length chaos);
      let objectives =
        match Slo.parse "p99_ms <= 200" with Ok o -> o | Error e -> Alcotest.fail e
      in
      (match Slo.evaluate objectives chaos with
      | Ok vs -> Alcotest.(check bool) "chaos violates" false (Slo.ok vs)
      | Error e -> Alcotest.fail e);
      (match
         Slo.evaluate objectives (Slo.select ~key:"scenario" ~value:"steady" windows)
       with
      | Ok vs -> Alcotest.(check bool) "steady holds" true (Slo.ok vs)
      | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* Golden: Prometheus exposition of a hand-built registry              *)
(* ------------------------------------------------------------------ *)

let test_expose_golden () =
  let m = Metrics.create () in
  Metrics.inc m ~help:"settled jobs" ~labels:[ ("outcome", "completed") ]
    ~by:12. "demo_jobs_total";
  Metrics.inc m ~labels:[ ("outcome", "shed") ] ~by:3. "demo_jobs_total";
  Metrics.set m ~help:"queue depth" "demo_queue_depth" 4.;
  Metrics.observe m ~help:"latency" ~buckets:[| 0.01; 0.1; 1. |]
    "demo_latency_seconds" 0.005;
  Metrics.observe m "demo_latency_seconds" 0.05;
  Metrics.observe m "demo_latency_seconds" 0.05;
  Metrics.observe m "demo_latency_seconds" 2.;
  Metrics.inc m ~wall:true "demo_wall_seconds_total" ~by:1.5;
  Test_golden.check_golden "metrics_expose.prom" (Metrics.expose m)

(* ------------------------------------------------------------------ *)
(* Determinism across domains and fault seeds                          *)
(* ------------------------------------------------------------------ *)

(* One serve run with the metrics plane on: returns (scrape csv, scrape
   jsonl, exposition) — the full deterministic surface. *)
let serve_metrics ~domains ~fault_rate ~fault_seed seed =
  with_defaults (fun reg _lg ->
      let scrape = Metrics.Scrape.create ~interval:0.02 reg in
      let gen =
        {
          Workload.default_gen with
          Workload.g_seed = seed;
          g_jobs = 30;
          g_rate = 300.;
        }
      in
      let w = Workload.generate ~gen ~catalog:Catalog.names () in
      let faults =
        if fault_rate > 0. then
          Spdistal_runtime.Fault.make ~seed:fault_seed ~rate:fault_rate ()
        else Spdistal_runtime.Fault.disabled
      in
      let cfg = { Server.default_config with Server.s_faults = faults } in
      ignore (Server.run ~domains ~scrape cfg w);
      ( Metrics.Scrape.to_csv scrape,
        Metrics.Scrape.to_jsonl scrape,
        Metrics.expose reg ))

let prop_domains_identical =
  Helpers.qtest ~count:4 "snapshots byte-identical across --domains 1 vs 4"
    QCheck.(int_range 1 1000)
    (fun seed ->
      serve_metrics ~domains:1 ~fault_rate:0.1 ~fault_seed:7 seed
      = serve_metrics ~domains:4 ~fault_rate:0.1 ~fault_seed:7 seed)

let prop_fault_seed_invariant_at_rate0 =
  Helpers.qtest ~count:4 "snapshots invariant under fault seed at rate 0"
    QCheck.(pair (int_range 1 1000) (pair (int_range 0 99) (int_range 100 199)))
    (fun (seed, (s1, s2)) ->
      serve_metrics ~domains:1 ~fault_rate:0. ~fault_seed:s1 seed
      = serve_metrics ~domains:1 ~fault_rate:0. ~fault_seed:s2 seed)

let suite =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
    Alcotest.test_case "kind and argument validation" `Quick test_kind_mismatch;
    Alcotest.test_case "null registry and log are no-ops" `Quick test_null_noop;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    prop_quantile_monotone;
    Alcotest.test_case "scrape boundaries" `Quick test_scrape_boundaries;
    Alcotest.test_case "wall families excluded" `Quick test_wall_exclusion;
    Alcotest.test_case "event log jsonl" `Quick test_log_jsonl;
    Alcotest.test_case "slo parsing" `Quick test_slo_parse;
    Alcotest.test_case "slo evaluation and budgets" `Quick test_slo_evaluate;
    Alcotest.test_case "slo over a wide results csv" `Quick test_slo_wide_csv;
    Alcotest.test_case "prometheus exposition golden" `Quick test_expose_golden;
    prop_domains_identical;
    prop_fault_seed_invariant_at_rate0;
  ]
