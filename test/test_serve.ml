(* The serving front-end.

   Load-bearing invariants:
   - workload generation is a pure function of the seed, and trace files
     round-trip bit-exactly;
   - admission is a hard bound: beyond it jobs are shed with a structured
     [Admission] error, and deadline-hopeless jobs are shed with [Deadline]
     before costing the server anything;
   - a job cancelled at its deadline is charged only for the work done;
   - the whole serve loop is deterministic: same trace + config, same
     report, down to the CSV row;
   - under an overload burst plus sustained faults the server never raises,
     never exceeds the cache byte budget, accounts every job, and degrades
     (blacklists crashing nodes, tightens admission) instead of dying. *)

open Spdistal_runtime
open Spdistal_serve
module Cache = Spdistal_exec.Cache

let is_config_error f =
  try
    ignore (f ());
    false
  with Error.Error { Error.phase = Error.Config; _ } -> true

(* ------------------------------------------------------------------ *)
(* Workload generation                                                 *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  let gen = { Workload.default_gen with Workload.g_jobs = 64 } in
  let w1 = Workload.generate ~gen ~catalog:Catalog.names () in
  let w2 = Workload.generate ~gen ~catalog:Catalog.names () in
  Alcotest.(check bool) "same seed, same trace" true (w1 = w2);
  let w3 =
    Workload.generate
      ~gen:{ gen with Workload.g_seed = 43 }
      ~catalog:Catalog.names ()
  in
  Alcotest.(check bool) "different seed, different trace" true (w1 <> w3);
  Alcotest.(check int) "job count" 64 (List.length w1.Workload.w_jobs);
  (* Arrivals ascend; deadlines positive; queries come from the catalog. *)
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        a.Workload.j_arrival <= b.Workload.j_arrival && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals ascend" true (ascending w1.Workload.w_jobs);
  List.iter
    (fun j ->
      Alcotest.(check bool) "deadline positive" true (j.Workload.j_deadline > 0.);
      Alcotest.(check bool)
        "query from the catalog" true
        (List.mem j.Workload.j_query Catalog.names))
    w1.Workload.w_jobs

let test_trace_roundtrip () =
  let gen =
    {
      Workload.default_gen with
      Workload.g_jobs = 40;
      g_burst = Some (0.02, 0.05, 3.);
    }
  in
  let w = Workload.generate ~gen ~catalog:Catalog.names () in
  (match Workload.of_string (Workload.to_string w) with
  | Ok w' -> Alcotest.(check bool) "string round trip is bit-exact" true (w = w')
  | Error msg -> Alcotest.fail msg);
  let path = Filename.temp_file "spdistal-serve" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.save path w;
      Alcotest.(check bool)
        "file round trip is bit-exact" true
        (Workload.load path = w));
  (* Malformed inputs are structured errors, not exceptions from parsing. *)
  Alcotest.(check bool)
    "garbage header rejected" true
    (match Workload.of_string "not a trace\n" with
    | Error _ -> true
    | Ok _ -> false)

let test_generator_validation () =
  let check what gen =
    Alcotest.(check bool) what true
      (is_config_error (fun () ->
           Workload.generate ~gen ~catalog:Catalog.names ()))
  in
  let g = Workload.default_gen in
  check "NaN rate rejected" { g with Workload.g_rate = Float.nan };
  check "infinite rate rejected" { g with Workload.g_rate = Float.infinity };
  check "zero rate rejected" { g with Workload.g_rate = 0. };
  check "NaN alpha rejected" { g with Workload.g_alpha = Float.nan };
  check "NaN deadline rejected" { g with Workload.g_deadline = Float.nan };
  check "negative deadline rejected" { g with Workload.g_deadline = -1. };
  check "no jobs rejected" { g with Workload.g_jobs = 0 };
  check "NaN burst rejected"
    { g with Workload.g_burst = Some (Float.nan, 1., 2.) };
  check "sub-1 burst multiplier rejected"
    { g with Workload.g_burst = Some (0., 1., 0.5) };
  Alcotest.(check bool) "empty catalog rejected" true
    (is_config_error (fun () -> Workload.generate ~catalog:[] ()))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_admission_bound () =
  let a = Admission.create ~queue_bound:2 in
  (match Admission.decide a ~query:"q" ~depth:0 ~backlog:0. ~deadline:1. with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "empty queue must admit");
  (match Admission.decide a ~query:"q" ~depth:2 ~backlog:0.5 ~deadline:1. with
  | Admission.Reject e ->
      Alcotest.(check string) "queue-full phase" "admission"
        (Error.phase_name e.Error.phase)
  | Admission.Admit -> Alcotest.fail "full queue must shed");
  Alcotest.(check int) "full-queue sheds counted" 1 (Admission.sheds_full a);
  Alcotest.(check bool) "bound validated" true
    (is_config_error (fun () -> Admission.create ~queue_bound:0))

let test_admission_deadline_shedding () =
  let a = Admission.create ~queue_bound:8 in
  (* Unknown query: no estimate, so a tight deadline is still admitted (the
     server has to run it once to learn). *)
  (match Admission.decide a ~query:"q" ~depth:0 ~backlog:10. ~deadline:0.01 with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "no estimate: must admit");
  Admission.observe a "q" 0.2;
  (match Admission.estimate a "q" with
  | Some e -> Alcotest.(check (float 1e-9)) "estimate learned" 0.2 e
  | None -> Alcotest.fail "estimate missing");
  (* backlog + estimate > deadline: hopeless, shed with the Deadline phase. *)
  (match Admission.decide a ~query:"q" ~depth:0 ~backlog:0.5 ~deadline:0.6 with
  | Admission.Reject e ->
      Alcotest.(check string) "hopeless phase" "deadline"
        (Error.phase_name e.Error.phase)
  | Admission.Admit -> Alcotest.fail "hopeless job must shed");
  Alcotest.(check int) "hopeless sheds counted" 1 (Admission.sheds_hopeless a);
  (* The same job fits when the backlog clears. *)
  match Admission.decide a ~query:"q" ~depth:0 ~backlog:0.1 ~deadline:0.6 with
  | Admission.Admit -> ()
  | Admission.Reject _ -> Alcotest.fail "feasible job must admit"

let test_admission_degrade () =
  let a = Admission.create ~queue_bound:32 in
  Admission.observe a "q" 0.1;
  Admission.degrade a ~alive:1 ~total:4;
  Alcotest.(check int) "bound contracts with capacity" 8 (Admission.bound a);
  (match Admission.estimate a "q" with
  | Some e ->
      Alcotest.(check (float 1e-9)) "estimates inflate by total/alive" 0.4 e
  | None -> Alcotest.fail "estimate missing");
  Alcotest.(check bool) "degrade validated" true
    (is_config_error (fun () -> Admission.degrade a ~alive:0 ~total:4))

let test_tenant_budget () =
  Alcotest.(check bool) "negative budget rejected" true
    (is_config_error (fun () -> Tenant.create ~retry_budget:(-1) 0));
  let t = Tenant.create ~retry_budget:2 7 in
  Alcotest.(check bool) "first retry granted" true (Tenant.try_retry t);
  Alcotest.(check bool) "second retry granted" true (Tenant.try_retry t);
  Alcotest.(check bool) "third retry refused" false (Tenant.try_retry t);
  Alcotest.(check int) "retries counted" 2 t.Tenant.retries;
  Alcotest.(check int) "budget exhausted" 0 t.Tenant.budget

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)
(* ------------------------------------------------------------------ *)

let small_workload ?burst ?(jobs = 48) ?(deadline = 0.5) () =
  let gen =
    {
      Workload.default_gen with
      Workload.g_jobs = jobs;
      g_rate = 300.;
      g_deadline = deadline;
      g_burst = burst;
    }
  in
  Workload.generate ~gen ~catalog:Catalog.names ()

let accounted r =
  r.Server.r_completed + r.Server.r_shed + r.Server.r_deadline
  + r.Server.r_failed

let test_serve_deterministic () =
  let w = small_workload () in
  let r1 = Server.run Server.default_config w in
  let r2 = Server.run Server.default_config w in
  Alcotest.(check string) "same trace, same CSV row"
    (Server.csv_row ~scenario:"t" r1)
    (Server.csv_row ~scenario:"t" r2);
  Alcotest.(check int) "every job accounted" r1.Server.r_jobs (accounted r1);
  Alcotest.(check bool) "some jobs complete" true (r1.Server.r_completed > 0);
  Alcotest.(check bool) "cache hits across jobs" true
    (r1.Server.r_cache.Cache.hits > 0);
  (* p50 <= p99, throughput and makespan are consistent. *)
  Alcotest.(check bool) "p50 <= p99" true
    (r1.Server.r_p50_ms <= r1.Server.r_p99_ms);
  Alcotest.(check bool) "busy <= makespan" true
    (r1.Server.r_busy <= r1.Server.r_makespan +. 1e-9)

let test_deadline_charging () =
  (* Deadlines far below any service time: the first admitted job of each
     query runs (no estimate yet), blows its deadline and is cancelled —
     charged at most its deadline.  Once estimates exist, later jobs are
     shed as hopeless at admission instead of wasting the lane. *)
  let w = small_workload ~deadline:1e-4 () in
  let r = Server.run Server.default_config w in
  Alcotest.(check int) "nothing completes" 0 r.Server.r_completed;
  Alcotest.(check bool) "cancellations happened" true (r.Server.r_deadline > 0);
  Alcotest.(check bool) "estimates turn the rest into sheds" true
    (r.Server.r_shed > 0);
  List.iter
    (fun l ->
      match l.Server.l_outcome with
      | Server.Deadline_exceeded charged ->
          Alcotest.(check bool) "charged only up to the deadline" true
            (charged >= 0. && charged <= l.Server.l_job.Workload.j_deadline +. 1e-12)
      | _ -> ())
    r.Server.r_log;
  (* The lane was never occupied longer than the sum of deadlines. *)
  let deadline_sum =
    List.fold_left
      (fun acc l -> acc +. l.Server.l_job.Workload.j_deadline)
      0. r.Server.r_log
  in
  Alcotest.(check bool) "busy bounded by cancellations" true
    (r.Server.r_busy <= deadline_sum +. 1e-9)

let test_backpressure_under_overload () =
  (* A tight queue bound under a hard burst: the server sheds with the
     admission phase instead of building an unbounded backlog. *)
  let w = small_workload ~burst:(0.0, 0.2, 6.) ~jobs:64 () in
  let cfg = { Server.default_config with Server.s_queue_bound = 4 } in
  let r = Server.run cfg w in
  Alcotest.(check bool) "sheds under overload" true (r.Server.r_shed > 0);
  let admission_sheds =
    List.filter
      (fun l ->
        match l.Server.l_outcome with
        | Server.Shed e -> e.Error.phase = Error.Admission
        | _ -> false)
      r.Server.r_log
  in
  Alcotest.(check bool) "some sheds are queue-full backpressure" true
    (admission_sheds <> []);
  Alcotest.(check int) "every job accounted" r.Server.r_jobs (accounted r)

let test_overload_chaos_soak () =
  (* The acceptance scenario: Zipf workload, overload burst, 10% faults.
     The server must keep answering, account every job, blacklist repeat
     offenders (tightening admission), and never exceed the cache byte
     budget. *)
  let w = small_workload ~burst:(0.03, 0.1, 4.) ~jobs:80 ~deadline:1. () in
  let budget = 1_048_576 in
  let cfg =
    {
      Server.default_config with
      Server.s_cache_budget = Some budget;
      s_faults = Fault.make ~seed:42 ~rate:0.1 ();
    }
  in
  let r = Server.run cfg w in
  Alcotest.(check int) "every job accounted" r.Server.r_jobs (accounted r);
  Alcotest.(check bool) "still answering" true (r.Server.r_completed > 0);
  Alcotest.(check bool) "cache bytes never exceed the budget" true
    (r.Server.r_cache.Cache.bytes_peak <= budget);
  Alcotest.(check bool) "cache bytes at rest under the budget" true
    (r.Server.r_cache.Cache.bytes <= budget);
  (* Determinism holds under chaos too. *)
  let r2 = Server.run cfg w in
  Alcotest.(check string) "chaos run is deterministic"
    (Server.csv_row ~scenario:"t" r)
    (Server.csv_row ~scenario:"t" r2)

let test_blacklist_degradation () =
  (* Sustained crashes: nodes collect strikes, get blacklisted, the machine
     shrinks and admission tightens — and the server still completes
     work. *)
  let w = small_workload ~jobs:40 ~deadline:5. () in
  let cfg =
    {
      Server.default_config with
      Server.s_faults = Fault.make ~seed:42 ~rate:0.35 ~retries:1 ();
      s_retry_budget = 2;
    }
  in
  let r = Server.run cfg w in
  Alcotest.(check bool) "nodes blacklisted" true (r.Server.r_blacklisted <> []);
  Alcotest.(check bool) "admission tightened" true
    (r.Server.r_final_bound < cfg.Server.s_queue_bound);
  Alcotest.(check bool) "server still answers" true (r.Server.r_completed > 0);
  Alcotest.(check bool) "retries spent on re-admissions" true
    (r.Server.r_retries > 0);
  Alcotest.(check int) "every job accounted" r.Server.r_jobs (accounted r)

let test_csv_shape () =
  let field_count s = List.length (String.split_on_char ',' s) in
  let w = small_workload ~jobs:12 () in
  let r = Server.run ~baseline:true Server.default_config w in
  Alcotest.(check int) "row matches header"
    (field_count Server.csv_header)
    (field_count (Server.csv_row ~scenario:"t" r));
  match r.Server.r_baseline_throughput with
  | Some b -> Alcotest.(check bool) "baseline priced" true (b > 0.)
  | None -> Alcotest.fail "baseline requested but missing"

let test_serve_traced () =
  (* Tenant job spans land on tenant tracks with non-negative durations and
     the Chrome export validates. *)
  let module Trace = Spdistal_obs.Trace in
  let w = small_workload ~jobs:24 () in
  let trace = Trace.create () in
  let r = Server.run ~trace Server.default_config w in
  let job_spans =
    List.filter
      (fun sp ->
        sp.Trace.sp_cat = "job"
        && match sp.Trace.sp_track with Trace.Tenant _ -> true | _ -> false)
      (Trace.spans trace)
  in
  Alcotest.(check int) "one job span per job" r.Server.r_jobs
    (List.length job_spans);
  List.iter
    (fun sp ->
      Alcotest.(check bool) "span duration non-negative" true
        (sp.Trace.sp_dur >= 0.))
    job_spans;
  match
    Spdistal_obs.Chrome_trace.validate (Spdistal_obs.Chrome_trace.to_json trace)
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("chrome export: " ^ msg)

let test_server_config_validation () =
  Alcotest.(check bool) "zero nodes rejected" true
    (is_config_error (fun () ->
         Server.create { Server.default_config with Server.s_nodes = 0 }));
  Alcotest.(check bool) "zero blacklist threshold rejected" true
    (is_config_error (fun () ->
         Server.create
           { Server.default_config with Server.s_blacklist_after = 0 }));
  Alcotest.(check bool) "unknown catalog query rejected" true
    (is_config_error (fun () -> Catalog.find "no-such-query"))

let suite =
  [
    Alcotest.test_case "workload generation is seed-pure" `Quick
      test_generator_deterministic;
    Alcotest.test_case "trace files round-trip bit-exactly" `Quick
      test_trace_roundtrip;
    Alcotest.test_case "generator rejects NaN/inf parameters" `Quick
      test_generator_validation;
    Alcotest.test_case "admission: bounded queue sheds" `Quick
      test_admission_bound;
    Alcotest.test_case "admission: hopeless deadlines shed" `Quick
      test_admission_deadline_shedding;
    Alcotest.test_case "admission: degradation tightens" `Quick
      test_admission_degrade;
    Alcotest.test_case "tenant retry budgets" `Quick test_tenant_budget;
    Alcotest.test_case "serve is deterministic" `Quick test_serve_deterministic;
    Alcotest.test_case "deadline cancellation charges work done" `Quick
      test_deadline_charging;
    Alcotest.test_case "backpressure under overload" `Quick
      test_backpressure_under_overload;
    Alcotest.test_case "overload + chaos soak" `Quick test_overload_chaos_soak;
    Alcotest.test_case "blacklist and degrade under crashes" `Quick
      test_blacklist_degradation;
    Alcotest.test_case "CSV row shape + baseline" `Quick test_csv_shape;
    Alcotest.test_case "tenant tracks in the trace" `Quick test_serve_traced;
    Alcotest.test_case "config validation" `Quick test_server_config_validation;
  ]
