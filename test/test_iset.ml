open Spdistal_runtime

let check_list = Alcotest.(check (list int))

let test_construction () =
  check_list "interval" [ 3; 4; 5 ] (Iset.elements (Iset.interval 3 5));
  check_list "empty interval" [] (Iset.elements (Iset.interval 5 3));
  check_list "range" [ 0; 1; 2 ] (Iset.elements (Iset.range 3));
  check_list "singleton" [ 7 ] (Iset.elements (Iset.singleton 7));
  check_list "of_list dedups and sorts" [ 1; 2; 9 ]
    (Iset.elements (Iset.of_list [ 9; 1; 2; 2; 1 ]));
  check_list "of_intervals merges overlaps" [ 1; 2; 3; 4; 5 ]
    (Iset.elements (Iset.of_intervals [ (3, 5); (1, 2) ]));
  Alcotest.(check int)
    "adjacent intervals merge" 1
    (Iset.interval_count (Iset.of_intervals [ (0, 2); (3, 5) ]))

let test_queries () =
  let s = Iset.of_intervals [ (0, 2); (5, 7) ] in
  Alcotest.(check bool) "mem inside" true (Iset.mem 6 s);
  Alcotest.(check bool) "mem gap" false (Iset.mem 3 s);
  Alcotest.(check bool) "mem outside" false (Iset.mem 9 s);
  Alcotest.(check int) "cardinal" 6 (Iset.cardinal s);
  Alcotest.(check int) "min" 0 (Iset.min_elt s);
  Alcotest.(check int) "max" 7 (Iset.max_elt s);
  Alcotest.(check int) "nth across gap" 5 (Iset.nth s 3);
  Alcotest.check_raises "nth out of bounds" (Invalid_argument "Iset.nth")
    (fun () -> ignore (Iset.nth s 6));
  Alcotest.(check bool) "intersects overlapping" true
    (Iset.intersects_interval s 2 4);
  Alcotest.(check bool) "intersects gap" false (Iset.intersects_interval s 3 4)

let test_operations () =
  let a = Iset.of_intervals [ (0, 4) ] and b = Iset.of_intervals [ (3, 8) ] in
  check_list "union" [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] (Iset.elements (Iset.union a b));
  check_list "inter" [ 3; 4 ] (Iset.elements (Iset.inter a b));
  check_list "diff" [ 0; 1; 2 ] (Iset.elements (Iset.diff a b));
  Alcotest.(check bool) "subset" true (Iset.subset (Iset.interval 1 2) a);
  Alcotest.(check bool) "not subset" false (Iset.subset b a);
  Alcotest.(check bool) "disjoint" true
    (Iset.disjoint (Iset.interval 0 1) (Iset.interval 5 6))

(* Reference implementation via sorted lists. *)
let model s = Iset.elements s

let prop_union =
  Helpers.qtest "union = model union"
    QCheck.(pair Helpers.arb_iset Helpers.arb_iset)
    (fun (a, b) ->
      model (Iset.union a b)
      = List.sort_uniq compare (model a @ model b))

let prop_inter =
  Helpers.qtest "inter = model inter"
    QCheck.(pair Helpers.arb_iset Helpers.arb_iset)
    (fun (a, b) ->
      model (Iset.inter a b) = List.filter (fun x -> Iset.mem x b) (model a))

let prop_diff =
  Helpers.qtest "diff = model diff"
    QCheck.(pair Helpers.arb_iset Helpers.arb_iset)
    (fun (a, b) ->
      model (Iset.diff a b)
      = List.filter (fun x -> not (Iset.mem x b)) (model a))

let prop_canonical =
  Helpers.qtest "union with self is identity" Helpers.arb_iset (fun a ->
      Iset.equal a (Iset.union a a))

let prop_cardinal =
  Helpers.qtest "cardinal counts elements" Helpers.arb_iset (fun a ->
      Iset.cardinal a = List.length (model a))

let prop_nth =
  Helpers.qtest "nth enumerates in order" Helpers.arb_iset (fun a ->
      List.mapi (fun k _ -> Iset.nth a k) (model a) = model a)

let prop_intersects_interval =
  Helpers.qtest "intersects_interval = model"
    QCheck.(triple Helpers.arb_iset (int_range 0 70) (int_range (-4) 10))
    (fun (s, lo, len) ->
      let hi = lo + len in
      Iset.intersects_interval s lo hi
      = List.exists (fun x -> lo <= x && x <= hi) (model s))

let prop_intersects_agrees_with_inter =
  Helpers.qtest "intersects_interval = non-empty inter"
    QCheck.(triple Helpers.arb_iset (int_range 0 70) (int_range 0 10))
    (fun (s, lo, len) ->
      let hi = lo + len in
      Iset.intersects_interval s lo hi
      = not (Iset.is_empty (Iset.inter s (Iset.interval lo hi))))

let test_edge_cases () =
  let e = Iset.empty in
  check_list "union with empty" [ 1; 2 ]
    (Iset.elements (Iset.union e (Iset.interval 1 2)));
  check_list "diff from empty" [] (Iset.elements (Iset.diff e (Iset.interval 1 2)));
  check_list "diff of empty rhs" [ 1; 2 ]
    (Iset.elements (Iset.diff (Iset.interval 1 2) e));
  check_list "inter with empty" [] (Iset.elements (Iset.inter (Iset.interval 1 2) e));
  Alcotest.(check bool)
    "intersects on empty set" false (Iset.intersects_interval e 0 10);
  Alcotest.(check bool)
    "intersects with inverted interval" false
    (Iset.intersects_interval (Iset.interval 0 10) 5 3);
  Alcotest.(check bool)
    "intersects at a shared endpoint" true
    (Iset.intersects_interval (Iset.interval 0 4) 4 8);
  (* Adjacent intervals: union coalesces, inter stays empty, diff splits. *)
  let u = Iset.union (Iset.interval 0 3) (Iset.interval 4 7) in
  Alcotest.(check int) "adjacent union coalesces" 1 (Iset.interval_count u);
  check_list "adjacent inter is empty" []
    (Iset.elements (Iset.inter (Iset.interval 0 3) (Iset.interval 4 7)));
  let d = Iset.diff (Iset.interval 0 7) (Iset.interval 4 4) in
  Alcotest.(check int) "punching a hole splits" 2 (Iset.interval_count d);
  check_list "hole contents" [ 0; 1; 2; 3; 5; 6; 7 ] (Iset.elements d)

(* Stack-safety at partition scale: 10^6 disjoint intervals.  [union]'s merge
   used to be non-tail-recursive and overflowed the stack well below this. *)
let big_iset ~offset ~n =
  Iset.of_intervals (List.init n (fun i -> ((6 * i) + offset, (6 * i) + offset + 1)))

let test_large_interval_lists () =
  let n = 1_000_000 in
  let a = big_iset ~offset:0 ~n and b = big_iset ~offset:3 ~n in
  let u = Iset.union a b in
  Alcotest.(check int) "union interval count" (2 * n) (Iset.interval_count u);
  Alcotest.(check int) "union cardinal" (4 * n) (Iset.cardinal u);
  Alcotest.(check bool) "inter of disjoint" true (Iset.is_empty (Iset.inter a b));
  Alcotest.(check bool) "diff recovers left operand" true
    (Iset.equal a (Iset.diff u b));
  Alcotest.(check bool) "union with self is identity" true
    (Iset.equal a (Iset.union a a))

let prop_union_inter_large =
  Helpers.qtest ~count:3 "union/inter/diff identities at 1e6 intervals"
    QCheck.(pair (int_range 0 2) (int_range 3 4))
    (fun (off_a, off_b) ->
      let n = 1_000_000 in
      let a = big_iset ~offset:off_a ~n and b = big_iset ~offset:off_b ~n in
      let u = Iset.union a b in
      Iset.cardinal u = Iset.cardinal a + Iset.cardinal b - Iset.cardinal (Iset.inter a b)
      && Iset.equal u (Iset.union (Iset.diff u b) b)
      && Iset.subset a u && Iset.subset b u)

let prop_diff_union_partition =
  Helpers.qtest "diff and inter partition the left operand"
    QCheck.(pair Helpers.arb_iset Helpers.arb_iset)
    (fun (a, b) ->
      Iset.equal a (Iset.union (Iset.diff a b) (Iset.inter a b)))

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "queries" `Quick test_queries;
    Alcotest.test_case "operations" `Quick test_operations;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    Alcotest.test_case "1e6-interval lists" `Quick test_large_interval_lists;
    prop_union_inter_large;
    prop_union;
    prop_inter;
    prop_diff;
    prop_canonical;
    prop_cardinal;
    prop_nth;
    prop_diff_union_partition;
    prop_intersects_interval;
    prop_intersects_agrees_with_inter;
  ]
