(* Deterministic fault injection and Legion-style recovery.

   The load-bearing invariant: under ANY fault schedule the computed tensors
   are bit-identical to the fault-free run — leaves commit exactly once on
   the reducing domain, recovery is priced purely as cost — and the
   schedule itself is a pure function of (seed, event coordinates), hence
   independent of the host's --domains degree. *)

open Spdistal_runtime
open Core

(* ------------------------------------------------------------------ *)
(* Config parsing                                                      *)
(* ------------------------------------------------------------------ *)

let test_of_string () =
  (match Fault.of_string "0.1" with
  | Ok c ->
      Alcotest.(check (float 0.)) "bare rate: crash" 0.1 c.Fault.crash_rate;
      Alcotest.(check (float 0.)) "bare rate: loss" 0.1 c.Fault.loss_rate;
      Alcotest.(check (float 0.)) "bare rate: straggle" 0.1 c.Fault.straggle_rate
  | Error m -> Alcotest.fail m);
  (match Fault.of_string "seed=7,rate=0.1,loss=0.25,retries=3,factor=16" with
  | Ok c ->
      Alcotest.(check int) "seed" 7 c.Fault.seed;
      Alcotest.(check (float 0.)) "crash from rate" 0.1 c.Fault.crash_rate;
      Alcotest.(check (float 0.)) "loss overridden" 0.25 c.Fault.loss_rate;
      Alcotest.(check int) "retries" 3 c.Fault.max_retries;
      Alcotest.(check (float 0.)) "factor" 16. c.Fault.straggle_factor
  | Error m -> Alcotest.fail m);
  (match Fault.of_string "rate=zebra" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  Alcotest.(check bool) "disabled is disabled" false (Fault.enabled Fault.disabled);
  Alcotest.(check bool)
    "rate 0 is disabled" false
    (Fault.enabled (Fault.make ~rate:0. ()))

(* ------------------------------------------------------------------ *)
(* Draws: pure, seed-separated, domain-degree independent              *)
(* ------------------------------------------------------------------ *)

let test_draws_pure () =
  let cfg = Fault.make ~seed:11 ~rate:0.3 () in
  let draw () =
    List.init 64 (fun i ->
        ( Fault.node_crashed cfg ~launch:(i mod 4) ~node:(i / 4) ~attempt:0,
          Fault.msg_lost cfg ~launch:(i mod 4) ~piece:(i / 4) ~msg:0 ~attempt:1,
          Fault.straggler cfg ~launch:(i mod 4) ~piece:(i / 4) ))
  in
  (* Re-evaluating the same coordinates, in any order, gives the same
     schedule: there is no hidden mutable stream to advance. *)
  let a = draw () in
  let b = List.rev (List.rev_map (fun x -> x) (draw ())) in
  Alcotest.(check bool) "pure draws" true (a = b);
  (* A different seed gives a different schedule somewhere. *)
  let cfg2 = Fault.make ~seed:12 ~rate:0.3 () in
  let c =
    List.init 64 (fun i ->
        ( Fault.node_crashed cfg2 ~launch:(i mod 4) ~node:(i / 4) ~attempt:0,
          Fault.msg_lost cfg2 ~launch:(i mod 4) ~piece:(i / 4) ~msg:0 ~attempt:1,
          Fault.straggler cfg2 ~launch:(i mod 4) ~piece:(i / 4) ))
  in
  Alcotest.(check bool) "seeds separate schedules" true (a <> c)

let test_backoff () =
  let cfg = Fault.make ~rate:0.1 ~backoff:1e-4 () in
  Alcotest.(check (float 1e-12)) "attempt 0" 1e-4 (Fault.backoff_time cfg 0);
  Alcotest.(check (float 1e-12)) "attempt 3" 8e-4 (Fault.backoff_time cfg 3)

let test_make_rejects_non_finite () =
  (* NaN passes naive range guards ([r < 0. || r >= 1.] is false for NaN),
     so every numeric parameter must be validated with positively-phrased
     finite checks.  A NaN rate silently disabling (or corrupting) fault
     injection would be invisible until a serve run misbehaves. *)
  let rejects what f =
    Alcotest.(check bool) what true
      (try
         ignore (f ());
         false
       with Error.Error { Error.phase = Error.Config; _ } -> true)
  in
  rejects "NaN rate" (fun () -> Fault.make ~rate:Float.nan ());
  rejects "NaN crash" (fun () -> Fault.make ~crash:Float.nan ());
  rejects "NaN loss" (fun () -> Fault.make ~loss:Float.nan ());
  rejects "NaN straggle" (fun () -> Fault.make ~straggle:Float.nan ());
  rejects "infinite rate" (fun () -> Fault.make ~rate:Float.infinity ());
  rejects "negative rate" (fun () -> Fault.make ~rate:(-0.1) ());
  rejects "NaN factor" (fun () -> Fault.make ~factor:Float.nan ());
  rejects "infinite factor" (fun () -> Fault.make ~factor:Float.infinity ());
  rejects "sub-1 factor" (fun () -> Fault.make ~factor:0.5 ());
  rejects "NaN backoff" (fun () -> Fault.make ~backoff:Float.nan ());
  rejects "infinite backoff" (fun () -> Fault.make ~backoff:Float.infinity ());
  rejects "negative backoff" (fun () -> Fault.make ~backoff:(-1e-6) ());
  rejects "NaN deadline" (fun () -> Fault.make ~deadline:Float.nan ());
  rejects "infinite deadline" (fun () ->
      Fault.make ~deadline:Float.infinity ());
  rejects "sub-1 deadline" (fun () -> Fault.make ~deadline:0.9 ());
  (* The of_string path flows through the same checks. *)
  Alcotest.(check bool) "of_string rejects NaN rate" true
    (match Fault.of_string "rate=nan" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "of_string rejects infinite backoff" true
    (match Fault.of_string "rate=0.1,backoff=inf" with
    | Error _ -> true
    | Ok _ -> false)

let test_crashed_nodes_single_node () =
  (* A single-node machine has no fault domain to fail over to. *)
  let m = Machine.make ~kind:Machine.Cpu [| 1 |] in
  let cfg = Fault.make ~seed:1 ~crash:0.99 () in
  Alcotest.(check bool)
    "rates live in [0, 1)" true
    (try
       ignore (Fault.make ~crash:1.0 ());
       false
     with Error.Error { Error.phase = Error.Config; _ } -> true);
  Alcotest.(check (list int))
    "no crash injection on one node" []
    (Fault.crashed_nodes cfg ~machine:m ~launch:0)

(* ------------------------------------------------------------------ *)
(* Recovery pricing                                                    *)
(* ------------------------------------------------------------------ *)

let cpu8 = Machine.make ~kind:Machine.Cpu [| 8 |]

let test_recover_prices_faults () =
  (* With loss at 0.99 and a budget of 2 retries, the budget exhausts on
     nearly every piece; the schedule is deterministic, so SOME piece in
     0..15 exhausts, and exhaustion surfaces as the Recovery phase. *)
  let cfg = Fault.make ~seed:5 ~loss:0.99 ~retries:2 () in
  let exhausted =
    List.exists
      (fun piece ->
        try
          ignore
            (Fault.recover_piece cfg ~machine:cpu8 ~launch:0 ~piece
               ~msg_bytes:[ 1e6 ] ~footprint:1e6 ~comm_time:1e-3 ~leaf_time:1e-3);
          false
        with Error.Error e -> e.Error.phase = Error.Recovery)
      (List.init 16 Fun.id)
  in
  Alcotest.(check bool) "retry budget exhausts as Recovery" true exhausted;
  (* A surviving recovery at a moderate rate prices the re-sends. *)
  let mild = Fault.make ~seed:5 ~loss:0.3 ~retries:50 () in
  let r =
    List.fold_left
      (fun acc piece ->
        let r =
          Fault.recover_piece mild ~machine:cpu8 ~launch:0 ~piece
            ~msg_bytes:[ 1e6; 1e6 ] ~footprint:2e6 ~comm_time:1e-3
            ~leaf_time:1e-3
        in
        ( (fun (a, b, c) (x, y, z) -> (a + x, b +. y, c +. z))
            acc
            (r.Fault.losses, r.Fault.resent_bytes, r.Fault.extra_comm) ))
      (0, 0., 0.)
      (List.init 16 Fun.id)
  in
  let losses, bytes, dt = r in
  Alcotest.(check bool) "losses injected" true (losses > 0);
  Alcotest.(check bool) "re-sent bytes priced" true (bytes > 0.);
  Alcotest.(check bool) "recovery time priced" true (dt > 0.)

let test_straggler_pricing () =
  (* Find a (deterministically) straggling piece, then check the pricing:
     with a generous deadline the extra leaf time is (factor - 1) * leaf. *)
  let cfg = Fault.make ~seed:3 ~straggle:0.99 ~factor:4. ~deadline:100. () in
  let piece =
    match
      List.find_opt
        (fun p -> Fault.straggler cfg ~launch:0 ~piece:p <> None)
        (List.init 64 Fun.id)
    with
    | Some p -> p
    | None -> Alcotest.fail "no straggler in 64 pieces at rate 0.99"
  in
  let r =
    Fault.recover_piece cfg ~machine:cpu8 ~launch:0 ~piece ~msg_bytes:[]
      ~footprint:1e6 ~comm_time:0. ~leaf_time:2e-3
  in
  Alcotest.(check int) "one straggler event" 1 r.Fault.stragglers;
  Alcotest.(check (float 1e-9)) "inflation" (3. *. 2e-3) r.Fault.extra_leaf;
  (* With a tight deadline, speculative re-execution caps the damage below
     full inflation. *)
  let spec =
    Fault.recover_piece
      (Fault.make ~seed:3 ~straggle:0.99 ~factor:100. ~deadline:1.5 ())
      ~machine:cpu8 ~launch:0 ~piece ~msg_bytes:[] ~footprint:1e6
      ~comm_time:0. ~leaf_time:2e-3
  in
  Alcotest.(check bool)
    "speculation beats waiting out the straggler" true
    (spec.Fault.extra_leaf < 99. *. 2e-3)

let test_remap_piece () =
  let open Spdistal_exec in
  Alcotest.(check int)
    "identity when nothing crashed" 3
    (Placement.remap_piece ~machine:cpu8 ~crashed:[] 3);
  let p = Placement.remap_piece ~machine:cpu8 ~crashed:[ 3 ] 3 in
  Alcotest.(check bool)
    "remapped off the crashed node" true
    (Machine.node_of_piece cpu8 p <> 3);
  (try
     ignore
       (Placement.remap_piece ~machine:cpu8 ~crashed:(List.init 8 Fun.id) 0);
     Alcotest.fail "expected Recovery error"
   with Error.Error e ->
     Alcotest.(check bool) "Recovery" true (e.Error.phase = Error.Recovery))

let test_index_launch_charges_recovery () =
  let cost = Cost.create () in
  let cfg = Fault.make ~seed:9 ~rate:0.3 ~retries:10 () in
  Task.index_launch cost cpu8 ~faults:cfg
    ~comm:(fun _ -> [ { Task.bytes = 1e6; intra_node = false; messages = 4 } ])
    ~work:(fun _ ->
      { Task.flops = 1e6; bytes_read = 1e6; bytes_written = 1e5; atomics = false })
    ();
  Alcotest.(check bool) "faults injected" true (cost.Cost.faults > 0);
  Alcotest.(check bool) "recovery time charged" true (cost.Cost.recovery > 0.)

(* ------------------------------------------------------------------ *)
(* End-to-end: every kernel recovers; outputs bit-identical            *)
(* ------------------------------------------------------------------ *)

(* The fig10 kernels + batched SpMM, and the baseline/faulty run pair, are
   Helpers (shared with the parallel and cache suites). *)
let problems () = Helpers.kernel_problems ()
let run_pair = Helpers.run_pair

let acceptance_cfg = Fault.make ~seed:7 ~rate:0.1 ()

let test_acceptance () =
  (* ISSUE acceptance: crash+loss+straggler all at >= 10%, every fig10
     kernel (and batched SpMM) completes via recovery, outputs bit-identical
     to the fault-free run, recovery overhead strictly positive. *)
  List.iter
    (fun (name, make) ->
      let (base, base_out), (faulty, fault_out) =
        run_pair ~faults:acceptance_cfg make
      in
      Alcotest.(check (option string)) (name ^ ": baseline completes") None
        base.Spdistal.dnc;
      Alcotest.(check (option string)) (name ^ ": recovers to completion") None
        faulty.Spdistal.dnc;
      Alcotest.(check bool)
        (name ^ ": outputs bit-identical under faults")
        true (base_out = fault_out);
      let c = faulty.Spdistal.cost in
      Alcotest.(check bool) (name ^ ": fault events injected") true (c.Cost.faults > 0);
      Alcotest.(check bool) (name ^ ": recovery time positive") true
        (c.Cost.recovery > 0.);
      Alcotest.(check bool)
        (name ^ ": clock no faster than fault-free")
        true
        (Cost.total c >= Cost.total base.Spdistal.cost))
    (problems ())

let test_rate_zero_invariance () =
  (* --fault-rate 0 must leave every pre-existing Cost field (and the
     recovery counters) exactly as the seed produced them. *)
  List.iter
    (fun (name, make) ->
      let p0 = make () in
      let r0 = Spdistal.run p0 in
      let p1 = make () in
      let r1 = Spdistal.run ~faults:(Fault.make ~seed:42 ~rate:0. ()) p1 in
      Alcotest.(check bool)
        (name ^ ": cost fields unchanged at rate 0")
        true
        (Helpers.cost_sig r0.Spdistal.cost
        = Helpers.cost_sig r1.Spdistal.cost);
      Alcotest.(check (float 0.)) (name ^ ": no recovery") 0.
        r1.Spdistal.cost.Cost.recovery;
      Alcotest.(check int) (name ^ ": no faults") 0 r1.Spdistal.cost.Cost.faults;
      Alcotest.(check bool)
        (name ^ ": outputs unchanged")
        true
        (Helpers.snapshot p0 = Helpers.snapshot p1))
    (problems ())

let fault_sig = Helpers.fault_sig

let prop_fault_schedules_bit_identical =
  Helpers.qtest ~count:8 "random fault schedules: outputs bit-identical"
    QCheck.(pair (int_range 0 1000) (int_range 1 30))
    (fun (seed, rate_pct) ->
      let faults = Fault.make ~seed ~rate:(float_of_int rate_pct /. 100.) () in
      List.for_all
        (fun (_, make) ->
          let (base, base_out), (f1, out1) = run_pair ~domains:1 ~faults make in
          let _, (f4, out4) = run_pair ~domains:4 ~faults make in
          match (f1.Spdistal.dnc, f4.Spdistal.dnc) with
          | Some _, Some _ -> true (* recovery exhausted: same verdict *)
          | None, None ->
              (* Outputs bitwise equal to fault-free; injection and pricing
                 identical across host domain degrees. *)
              base.Spdistal.dnc <> None
              || (base_out = out1 && out1 = out4
                 && fault_sig f1.Spdistal.cost = fault_sig f4.Spdistal.cost)
          | _ -> false)
        (problems ()))

(* ------------------------------------------------------------------ *)
(* Chaos hook: when SPDISTAL_FAULTS is set (CI matrix), also run the   *)
(* acceptance invariant under that exact schedule.                     *)
(* ------------------------------------------------------------------ *)

let test_chaos_env () =
  match Fault.of_env () with
  | None -> ()
  | Some cfg when not (Fault.enabled cfg) -> ()
  | Some cfg ->
      List.iter
        (fun (name, make) ->
          let (base, base_out), (faulty, fault_out) =
            run_pair ~faults:cfg make
          in
          match (base.Spdistal.dnc, faulty.Spdistal.dnc) with
          | None, None ->
              Alcotest.(check bool)
                (name ^ ": chaos outputs bit-identical")
                true (base_out = fault_out)
          | None, Some _ ->
              (* Recovery exhaustion is a legal verdict under extreme
                 schedules; outputs are unspecified then. *)
              ()
          | Some d, _ -> Alcotest.fail (name ^ ": baseline DNC: " ^ d))
        (problems ())

let suite =
  [
    Alcotest.test_case "config parsing" `Quick test_of_string;
    Alcotest.test_case "draws are pure" `Quick test_draws_pure;
    Alcotest.test_case "backoff" `Quick test_backoff;
    Alcotest.test_case "single node: no crashes" `Quick
      test_crashed_nodes_single_node;
    Alcotest.test_case "make rejects NaN/inf parameters" `Quick
      test_make_rejects_non_finite;
    Alcotest.test_case "recovery exhaustion" `Quick test_recover_prices_faults;
    Alcotest.test_case "straggler pricing" `Quick test_straggler_pricing;
    Alcotest.test_case "remap piece" `Quick test_remap_piece;
    Alcotest.test_case "index_launch charges recovery" `Quick
      test_index_launch_charges_recovery;
    Alcotest.test_case "acceptance: recover + bit-identical" `Quick
      test_acceptance;
    Alcotest.test_case "rate 0 invariance" `Quick test_rate_zero_invariance;
    prop_fault_schedules_bit_identical;
    Alcotest.test_case "chaos from SPDISTAL_FAULTS" `Quick test_chaos_env;
  ]
