(* Piece-to-color mapping on multi-dimensional grids (the square-grid
   ambiguity fix) and bit-exact determinism of parallel piece simulation. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_exec
open Core

(* ------------------------------------------------------------------ *)
(* color_for: axis dispatch, square 2x2 grid                           *)
(* ------------------------------------------------------------------ *)

let part ~axis colors =
  Partition.make ~axis (Iset.range (colors * 10))
    (Array.init colors (fun c -> Iset.interval (c * 10) ((c * 10) + 9)))

let test_color_for_square_grid () =
  (* On a 2x2 grid a row partition and a column partition both have two
     colors; only the axis tag can tell them apart.  Pieces are row-major:
     piece = x * gy + y. *)
  let grid = [| 2; 2 |] and pieces = 4 in
  let rows = part ~axis:(Partition.Grid_dim 0) 2 in
  let cols = part ~axis:(Partition.Grid_dim 1) 2 in
  let colors p piece = Interp.color_for ~grid ~pieces p piece in
  Alcotest.(check (list int))
    "row partition follows grid dim 0" [ 0; 0; 1; 1 ]
    (List.init 4 (colors rows));
  Alcotest.(check (list int))
    "column partition follows grid dim 1" [ 0; 1; 0; 1 ]
    (List.init 4 (colors cols));
  let flat = part ~axis:Partition.Flat 4 in
  Alcotest.(check (list int))
    "flat partition is indexed by piece id" [ 0; 1; 2; 3 ]
    (List.init 4 (colors flat))

let test_color_for_rejects_mismatch () =
  let grid = [| 2; 2 |] and pieces = 4 in
  let check_rejects name p =
    try
      ignore (Interp.color_for ~grid ~pieces p 0);
      Alcotest.fail (name ^ ": expected Error.Error")
    with Error.Error { Error.phase = Error.Launch; _ } -> ()
  in
  (* A flat partition must have one color per piece — the old color-count
     heuristic silently accepted 2 colors here. *)
  check_rejects "flat with 2 colors" (part ~axis:Partition.Flat 2);
  check_rejects "axis beyond grid" (part ~axis:(Partition.Grid_dim 2) 2);
  check_rejects "wrong color count for axis" (part ~axis:(Partition.Grid_dim 0) 3)

let test_color_for_3d () =
  let grid = [| 2; 3; 2 |] and pieces = 12 in
  let p1 = part ~axis:(Partition.Grid_dim 1) 3 in
  Alcotest.(check (list int))
    "middle axis, stride = trailing dims"
    [ 0; 0; 1; 1; 2; 2; 0; 0; 1; 1; 2; 2 ]
    (List.init 12 (Interp.color_for ~grid ~pieces p1))

(* ------------------------------------------------------------------ *)
(* Batched SpMM on a square 2x2 GPU grid: numeric regression           *)
(* ------------------------------------------------------------------ *)

let mat_data p name =
  match (Operand.find (Spdistal.bindings p) name).Operand.data with
  | Operand.Mat m -> m
  | _ -> Alcotest.fail (name ^ " is not a dense matrix")

let test_batched_spmm_2x2 () =
  let b = Helpers.rand_csr ~seed:31 40 40 0.08 in
  let machine = Spdistal.machine ~kind:Machine.Gpu [| 2; 2 |] in
  let cols = 8 in
  let p = Kernels.spmm_problem ~machine ~cols ~batched:true b in
  let r = Spdistal.run p in
  Alcotest.(check (option string)) "completes" None r.Spdistal.dnc;
  let a = mat_data p "A" and c = mat_data p "C" in
  (* Dense reference in the driver's storage order. *)
  let reference = Array.make (40 * cols) 0. in
  let coo = Tensor.to_coo b in
  for e = 0 to Coo.nnz coo - 1 do
    let i = coo.Coo.coords.(0).(e) and k = coo.Coo.coords.(1).(e) in
    let v = coo.Coo.vals.(e) in
    for j = 0 to cols - 1 do
      reference.((i * cols) + j) <-
        reference.((i * cols) + j) +. (v *. c.Dense.data.((k * cols) + j))
    done
  done;
  Array.iteri
    (fun i expect ->
      Helpers.check_float (Printf.sprintf "A.(%d)" i) expect a.Dense.data.(i))
    reference

(* ------------------------------------------------------------------ *)
(* Determinism: parallel simulation is bit-identical to sequential     *)
(* ------------------------------------------------------------------ *)

(* Run the same freshly-built problem at both degrees and require every Cost
   field and every operand's storage to match bit for bit.  Signatures come
   from Helpers.snapshot / Helpers.cost_sig (shared with the fuzzer). *)
let check_deterministic name make =
  let run_with domains =
    let p = make () in
    let r = Spdistal.run ~domains p in
    (r.Spdistal.dnc, Helpers.cost_sig r.Spdistal.cost, Helpers.snapshot p)
  in
  let dnc1, cost1, out1 = run_with 1 in
  let dnc4, cost4, out4 = run_with 4 in
  Alcotest.(check (option string)) (name ^ ": same dnc") dnc1 dnc4;
  Alcotest.(check bool) (name ^ ": cost fields bit-identical") true (cost1 = cost4);
  Alcotest.(check bool) (name ^ ": outputs bit-identical") true (out1 = out4)

let test_determinism_fig10 () =
  List.iter
    (fun (name, make) -> check_deterministic name make)
    (Helpers.kernel_problems ~mseed:41 ~tseed:42 ~batched:false ())

let test_determinism_reductions () =
  (* nnz-split schedules take the deferred-leaf path (overlapping output
     writes reduce on the reducing domain). *)
  List.iter
    (fun (name, make) -> check_deterministic name make)
    (Helpers.nnz_kernel_problems ())

let test_determinism_batched () =
  let machine = Helpers.gpu_machine [| 2; 2 |] in
  let matrix = Helpers.rand_csr ~seed:45 40 40 0.08 in
  check_deterministic "spmm-batched-2x2" (fun () ->
      Kernels.spmm_problem ~machine ~cols:8 ~batched:true matrix)

let suite =
  [
    Alcotest.test_case "color_for on a square grid" `Quick test_color_for_square_grid;
    Alcotest.test_case "color_for rejects mismatches" `Quick test_color_for_rejects_mismatch;
    Alcotest.test_case "color_for on a 3-d grid" `Quick test_color_for_3d;
    Alcotest.test_case "batched SpMM on 2x2 grid" `Quick test_batched_spmm_2x2;
    Alcotest.test_case "fig10 kernels deterministic" `Quick test_determinism_fig10;
    Alcotest.test_case "nnz-split kernels deterministic" `Quick test_determinism_reductions;
    Alcotest.test_case "batched SpMM deterministic" `Quick test_determinism_batched;
  ]
