(* Tier-1 entry for the differential fuzzer: a small fixed budget that must
   stay green and deterministic, the injected-bug canary (the harness must
   still be able to catch and shrink a real miscompile), and replay of the
   frozen regression corpus. *)

open Spdistal_fuzz

(* Keep the tier-1 budget small and the cases cheap. *)
let params = { Gen.default_params with Gen.max_dim = 6 }

let test_gen_deterministic () =
  for i = 0 to 24 do
    let a = Gen.case ~params ~seed:5 i and b = Gen.case ~params ~seed:5 i in
    Alcotest.(check string)
      (Printf.sprintf "case %d stable" i)
      (Spec.to_string a) (Spec.to_string b)
  done;
  let distinct =
    List.sort_uniq compare
      (List.init 25 (fun i -> Spec.to_string (Gen.case ~params ~seed:5 i)))
  in
  Alcotest.(check bool) "cases vary with index" true (List.length distinct > 20)

(* Spec lines are the corpus interchange format: parsing must invert
   printing exactly, including the float fields (density, literal
   coefficients, fault rates). *)
let arb_spec =
  let g =
    QCheck.Gen.map
      (fun (seed, i) -> Gen.case ~params ~seed i)
      (QCheck.Gen.pair (QCheck.Gen.int_range 0 100_000) (QCheck.Gen.int_range 0 500))
  in
  QCheck.make ~print:Spec.to_string g

let prop_spec_roundtrip =
  Helpers.qtest ~count:300 "spec line printing/parsing roundtrip" arb_spec
    (fun s -> Spec.equal (Spec.of_string_exn (Spec.to_string s)) s)

let test_clean_campaign () =
  let r = Campaign.run ~params ~seed:42 ~count:60 () in
  Alcotest.(check int) "all cases ran" 60 r.Campaign.total;
  (match r.Campaign.failure with
  | None -> ()
  | Some f -> Alcotest.fail ("unexpected failure:\n" ^ f.Campaign.text));
  Alcotest.(check int) "no rejected cases" 0 r.Campaign.rejected

let test_injected_bug_caught_and_shrunk () =
  let r =
    Fun.protect
      ~finally:(fun () -> Spdistal_ir.Lower.set_debug_flip_block_bound false)
      (fun () ->
        Spdistal_ir.Lower.set_debug_flip_block_bound true;
        Campaign.run ~params ~seed:42 ~count:50 ())
  in
  match r.Campaign.failure with
  | None -> Alcotest.fail "flipped block bound survived 50 cases"
  | Some f ->
      Alcotest.(check bool)
        "shrunk to at most two operands" true
        (Spec.operand_count f.Campaign.shrunk <= 2);
      Alcotest.(check bool)
        "reproducer quotes both specs" true
        (Helpers.contains f.Campaign.text (Spec.to_string f.Campaign.shrunk));
      (* With the bug gone the minimized case must pass again — otherwise
         the shrinker wandered onto an unrelated failure. *)
      (match Check.run f.Campaign.shrunk with
      | Check.Pass -> ()
      | v ->
          Alcotest.fail
            ("shrunk case still fails with the bug off: "
            ^ Check.verdict_to_string v))

let test_corpus_replay () =
  let results = Campaign.replay_corpus ~dir:"corpus" in
  Alcotest.(check bool) "corpus is non-empty" true (List.length results >= 10);
  List.iter
    (fun (loc, v) ->
      match v with
      | Check.Pass -> ()
      | v -> Alcotest.fail (loc ^ ": " ^ Check.verdict_to_string v))
    results

let suite =
  [
    Alcotest.test_case "generator is deterministic" `Quick test_gen_deterministic;
    prop_spec_roundtrip;
    Alcotest.test_case "clean campaign (seed 42)" `Slow test_clean_campaign;
    Alcotest.test_case "injected bug caught and shrunk" `Slow
      test_injected_bug_caught_and_shrunk;
    Alcotest.test_case "regression corpus replays" `Slow test_corpus_replay;
  ]
