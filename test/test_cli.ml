(* End-to-end tests of the built CLI binary: spawn it as a subprocess and
   assert on exit codes and printed output.  Covers the warm-start flags
   (--iterations / --no-cache), the prof report, trace-check, and the fuzz
   replay entry points. *)

(* Tests run from _build/default/test; the driver lives one directory over. *)
let cli_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/spdistal_cli.exe"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Run [cli_exe args], capturing stdout+stderr; returns (exit code, output). *)
let run_cli args =
  if not (Sys.file_exists cli_exe) then
    Alcotest.failf "CLI binary not found at %s" cli_exe;
  let out = Filename.temp_file "spdistal_cli" ".out" in
  let code =
    Sys.command (Filename.quote cli_exe ^ " " ^ args ^ " > " ^ Filename.quote out ^ " 2>&1")
  in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let check_contains what output needle =
  if not (Helpers.contains output needle) then
    Alcotest.failf "%s: expected %S in output:\n%s" what needle output

let test_run_iterations () =
  let code, out = run_cli "run spmv -n 2 --iterations 6" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "run --iterations" out "6 iterations";
  check_contains "run --iterations" out "ms"

let test_run_no_cache () =
  let code, out = run_cli "run spmv -n 2 --iterations 4 --no-cache" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "run --no-cache" out "4 iterations, no cache"

let test_run_legacy () =
  (* Without --iterations the single-shot banner has no iteration suffix. *)
  let code, out = run_cli "run spmv -n 2" in
  Alcotest.(check int) "exit code" 0 code;
  Alcotest.(check bool)
    "no iteration suffix" false
    (Helpers.contains out "iterations")

let test_prof_amortization () =
  let code, out = run_cli "prof spmv -n 2 --iterations 3" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "prof report" out "amortization by iteration";
  (* One cold miss, then warm hits. *)
  check_contains "prof report" out "miss";
  check_contains "prof report" out "hit"

let test_prof_trace_roundtrip () =
  let trace = Filename.temp_file "spdistal_trace" ".json" in
  let code, _ =
    run_cli (Printf.sprintf "prof spmv -n 2 --iterations 3 --trace %s" (Filename.quote trace))
  in
  Alcotest.(check int) "prof exit code" 0 code;
  let json = read_file trace in
  check_contains "trace json" json "cache_miss";
  check_contains "trace json" json "cache_hit";
  check_contains "trace json" json "dependent_partitioning";
  let code, out = run_cli ("trace-check " ^ Filename.quote trace) in
  Sys.remove trace;
  Alcotest.(check int) "trace-check exit code" 0 code;
  check_contains "trace-check" out "ok"

let test_trace_check_rejects_garbage () =
  let bad = Filename.temp_file "spdistal_bad" ".json" in
  let oc = open_out bad in
  output_string oc "this is not a trace";
  close_out oc;
  let code, _ = run_cli ("trace-check " ^ Filename.quote bad) in
  Sys.remove bad;
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

(* A known-good spec line lifted from test/corpus/kernels.case. *)
let replay_spec =
  "vars=i:8,j:8;driver=B:i.j:dc:10:0.39493080450893192:152386;facts=c:v:i;\
   out=a:v:j;sched=u:i:0;tdn=a:r,B:r,c:r;gpu=1;grid=2;dom=3;\
   flt=82059:0.039598285964062896"

let test_fuzz_replay () =
  let code, out = run_cli ("fuzz --replay '" ^ replay_spec ^ "'") in
  Alcotest.(check int) ("exit code for: " ^ out) 0 code

let test_fuzz_corpus () =
  (* "corpus" when run via dune runtest (a declared dep in the sandbox cwd),
     "test/corpus" when the runner is launched from the repository root. *)
  let dir =
    if Sys.file_exists "corpus" then "corpus"
    else if Sys.file_exists "test/corpus" then "test/corpus"
    else Alcotest.fail "corpus directory not found"
  in
  let code, out = run_cli ("fuzz --corpus " ^ dir) in
  Alcotest.(check int) ("exit code for: " ^ out) 0 code;
  check_contains "corpus summary" out "0 bad"

let test_bad_kernel_rejected () =
  let code, _ = run_cli "run no-such-kernel -n 2" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

let test_iterations_validation () =
  let code, out = run_cli "prof spmv -n 2 --iterations 0" in
  Alcotest.(check bool) ("nonzero exit for: " ^ out) true (code <> 0)

let suite =
  [
    Alcotest.test_case "run --iterations" `Quick test_run_iterations;
    Alcotest.test_case "run --no-cache" `Quick test_run_no_cache;
    Alcotest.test_case "run legacy banner" `Quick test_run_legacy;
    Alcotest.test_case "prof amortization table" `Quick test_prof_amortization;
    Alcotest.test_case "prof trace + trace-check" `Quick test_prof_trace_roundtrip;
    Alcotest.test_case "trace-check rejects garbage" `Quick test_trace_check_rejects_garbage;
    Alcotest.test_case "fuzz --replay" `Quick test_fuzz_replay;
    Alcotest.test_case "fuzz --corpus" `Quick test_fuzz_corpus;
    Alcotest.test_case "unknown kernel rejected" `Quick test_bad_kernel_rejected;
    Alcotest.test_case "--iterations 0 rejected" `Quick test_iterations_validation;
  ]
