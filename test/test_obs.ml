(* Observability: tracing must never change results, and what it records
   must reconcile exactly with the Cost clock. *)

open Spdistal_runtime
module Trace = Spdistal_obs.Trace
module Chrome_trace = Spdistal_obs.Chrome_trace
module Report = Spdistal_obs.Report

(* Problem construction and traced-run plumbing live in Helpers (shared with
   the cache and golden suites). *)
let comm_spmv = Helpers.comm_spmv
let run_traced ?domains ?faults p = Helpers.run_traced ?domains ?faults p
let sim_spans = Helpers.sim_spans
let launch_spans = Helpers.launch_spans

(* --- tracing is invisible: bit-identical outputs and costs -------------- *)

let test_traced_untraced_identical () =
  let p1 = comm_spmv () in
  let c1 = Helpers.run_ok p1 in
  let p2 = comm_spmv () in
  let res, trace = run_traced p2 in
  (match res.Core.Spdistal.dnc with Some r -> Alcotest.fail r | None -> ());
  Alcotest.(check bool)
    "outputs bit-identical under tracing" true
    (Helpers.snapshot p1 = Helpers.snapshot p2);
  Alcotest.(check bool)
    "cost bit-identical under tracing" true
    (Helpers.cost_sig c1 = Helpers.cost_sig res.Core.Spdistal.cost);
  Alcotest.(check bool) "trace saw spans" true (Trace.spans trace <> [])

let test_sim_spans_domain_independent () =
  (* The simulated-clock part of a trace is a pure function of the problem:
     identical at every host parallelism degree. *)
  let _, t1 = run_traced ~domains:1 (comm_spmv ()) in
  let _, t4 = run_traced ~domains:4 (comm_spmv ()) in
  Alcotest.(check bool)
    "sim spans identical at --domains 1 and 4" true
    (sim_spans t1 = sim_spans t4);
  Alcotest.(check bool)
    "comm matrices identical" true
    (Trace.comm_matrix t1 = Trace.comm_matrix t4)

let test_null_trace_records_nothing () =
  Trace.span Trace.null ~track:Trace.Runtime ~clock:Trace.Sim ~cat:"launch"
    ~start:0. ~dur:1. "x";
  Trace.counter Trace.null ~name:"c" ~time:0. [ ("a", 1.) ];
  Trace.comm_edge Trace.null ~src:0 ~dst:1 8.;
  Alcotest.(check bool) "no spans" true (Trace.spans Trace.null = []);
  Alcotest.(check bool) "no counters" true (Trace.counters Trace.null = []);
  Alcotest.(check bool)
    "no edges" true
    (Trace.comm_matrix Trace.null = [||])

(* --- the span-sum invariant: launch spans reconstruct the clock --------- *)

let span_sum_matches ?domains ?faults problem =
  let res, trace = run_traced ?domains ?faults problem in
  match res.Core.Spdistal.dnc with
  | Some _ -> true (* recovery exhausted: a DNC cell, nothing to reconcile *)
  | None ->
      let total = Cost.total res.Core.Spdistal.cost in
      let sum =
        List.fold_left
          (fun acc sp -> acc +. sp.Trace.sp_dur)
          0. (launch_spans trace)
      in
      Float.abs (sum -. total) <= 1e-9 *. Float.max 1. total

let arb_span_sum_case =
  let open QCheck in
  let gen =
    Gen.(
      let* seed = int_range 0 1000 in
      let* pieces = Gen.oneofl [ 1; 3; 4 ] in
      let* domains = Gen.oneofl [ 1; 4 ] in
      let* faulty = Gen.bool in
      Gen.return (seed, pieces, domains, faulty))
  in
  make
    ~print:(fun (s, p, d, f) ->
      Printf.sprintf "seed=%d pieces=%d domains=%d faults=%b" s p d f)
    gen

let test_span_sum =
  Helpers.qtest ~count:40 "sum of launch-span durations = Cost.total"
    arb_span_sum_case (fun (seed, pieces, domains, faulty) ->
      let faults =
        if faulty then Some (Fault.make ~seed:(seed + 1) ~rate:0.05 ())
        else None
      in
      span_sum_matches ~domains ?faults (comm_spmv ~pieces ~seed ()))

(* --- Chrome trace-event export ------------------------------------------ *)

let test_chrome_export_valid () =
  let _, trace = run_traced (comm_spmv ()) in
  (match Chrome_trace.validate (Chrome_trace.to_json trace) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "garbage rejected" true
    (Chrome_trace.validate "not json" |> Result.is_error);
  Alcotest.(check bool)
    "missing traceEvents rejected" true
    (Chrome_trace.validate "{}" |> Result.is_error);
  let non_monotone =
    {|{"traceEvents":[
        {"ph":"X","pid":1,"tid":0,"ts":5.0,"dur":1.0,"name":"a"},
        {"ph":"X","pid":1,"tid":0,"ts":1.0,"dur":1.0,"name":"b"}]}|}
  in
  Alcotest.(check bool)
    "non-monotone track rejected" true
    (Chrome_trace.validate non_monotone |> Result.is_error)

(* --- report ------------------------------------------------------------- *)

let test_report_reconciles () =
  let res, trace = run_traced (comm_spmv ()) in
  let cost = res.Core.Spdistal.cost in
  let r = Report.of_trace trace in
  Helpers.check_float "report total = Cost.total" (Cost.total cost) r.Report.r_total;
  Alcotest.(check int)
    "one report row per launch" cost.Cost.launches
    (List.length r.Report.r_launches);
  let matrix_bytes =
    Array.fold_left
      (fun acc row -> Array.fold_left ( +. ) acc row)
      0. r.Report.r_comm
  in
  Alcotest.(check bool) "spmv with blocked c moves bytes" true (matrix_bytes > 0.);
  Helpers.check_float "comm matrix sums to bytes_moved" cost.Cost.bytes_moved
    matrix_bytes;
  List.iter
    (fun n ->
      let u = Report.utilization r n in
      Alcotest.(check bool) "utilization in [0, 1]" true (u >= 0. && u <= 1.))
    r.Report.r_nodes;
  Alcotest.(check bool) "imbalance >= 1" true (r.Report.r_imbalance >= 1.);
  (* The rendered report and metrics CSV carry the headline number. *)
  let txt = Format.asprintf "%a" Report.pp r in
  Alcotest.(check bool)
    "report names the critical path" true
    (Helpers.contains txt "critical path by launch");
  let csv = Report.to_csv r in
  Alcotest.(check bool)
    "metrics csv has a total row" true
    (Helpers.contains csv "total,")

let test_cost_csv_row () =
  let c = Cost.create () in
  Cost.add_comm c ~bytes:10. ~messages:2 0.5;
  let fields s = List.length (String.split_on_char ',' s) in
  Alcotest.(check int)
    "csv row matches header arity" (fields Cost.csv_header)
    (fields (Cost.to_csv_row c));
  Alcotest.(check bool)
    "row carries the total" true
    (Helpers.contains (Cost.to_csv_row c) "0.500000000")

let suite =
  [
    Alcotest.test_case "traced = untraced (outputs and cost)" `Quick
      test_traced_untraced_identical;
    Alcotest.test_case "sim spans independent of --domains" `Quick
      test_sim_spans_domain_independent;
    Alcotest.test_case "null trace records nothing" `Quick
      test_null_trace_records_nothing;
    test_span_sum;
    Alcotest.test_case "chrome export validates" `Quick test_chrome_export_valid;
    Alcotest.test_case "report reconciles with cost" `Quick test_report_reconciles;
    Alcotest.test_case "cost csv row" `Quick test_cost_csv_row;
  ]
