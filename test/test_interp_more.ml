(* Deeper interpreter invariants: cost-model behavior, reductions under
   aliased output partitions, column chunking, placement variants. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec

let cpu = Helpers.cpu_machine

let run_ok = Helpers.run_ok

let test_flops_counted () =
  let b = Helpers.rand_csr ~seed:61 20 20 0.3 in
  let n = float_of_int (Tensor.nnz b) in
  let cost = run_ok (Core.Kernels.spmv_problem ~machine:(cpu 3) b) in
  Helpers.check_float "SpMV flops = 2 nnz" (2. *. n) cost.Cost.flops;
  let cost = run_ok (Core.Kernels.spmm_problem ~machine:(cpu 3) ~cols:5 b) in
  Helpers.check_float "SpMM flops = 2 nnz cols" (2. *. n *. 5.) cost.Cost.flops

let test_nnz_split_reduction_charged () =
  let b = Helpers.rand_csr ~seed:62 40 40 0.4 in
  let cost =
    run_ok
      (Core.Kernels.spmv_problem ~machine:(cpu 4) ~nonzero_dist:true
         ~schedule:(Core.Kernels.spmv_nnz ()) b)
  in
  (* The aliased row partition forces output reduction messages. *)
  Alcotest.(check bool) "reduction messages recorded" true (cost.Cost.messages > 0);
  Alcotest.(check bool) "reduction bytes recorded" true (cost.Cost.bytes_moved > 0.)

let test_launch_overhead_grows () =
  let b = Helpers.rand_csr ~seed:63 30 30 0.3 in
  let o pieces =
    (run_ok (Core.Kernels.spmv_problem ~machine:(cpu pieces) b)).Cost.overhead
  in
  Alcotest.(check bool) "more pieces, more runtime overhead" true (o 8 > o 1)

let test_batched_grid_partial_results () =
  (* On a 2-D grid, row partitions have grid.(0) colors and each piece
     computes a column chunk; the combination must still cover A exactly
     once. *)
  let b = Helpers.rand_csr ~seed:64 16 16 0.35 in
  List.iter
    (fun grid ->
      let m = Core.Spdistal.machine ~kind:Machine.Gpu grid in
      let p = Core.Kernels.spmm_problem ~machine:m ~cols:6 ~batched:true b in
      ignore (run_ok p);
      Helpers.check_float
        (Printf.sprintf "grid %dx%d exact" grid.(0) grid.(1))
        0.
        (Validate.max_error (Core.Spdistal.bindings p) p.Core.Spdistal.stmt))
    [ [| 1; 2 |]; [| 2; 2 |]; [| 4; 2 |]; [| 2; 4 |] ]

let test_atomic_penalty_in_cost () =
  (* The same work costs more under a non-zero split on CPUs (reduction
     atomics, paper §VI-A1): compare compute components at 1 piece where
     partitioning effects vanish. *)
  let b = Helpers.rand_csr ~seed:65 60 60 0.3 in
  let row = run_ok (Core.Kernels.spmv_problem ~machine:(cpu 1) b) in
  let nnz =
    run_ok
      (Core.Kernels.spmv_problem ~machine:(cpu 1) ~nonzero_dist:true
         ~schedule:(Core.Kernels.spmv_nnz ()) b)
  in
  Alcotest.(check bool) "atomics make the nnz leaf slower" true
    (nnz.Cost.compute > row.Cost.compute)

let test_replicated_placement_no_bcast () =
  (* With c replicated, no broadcast; with c blocked (mismatched vs the
     needed gather), bytes move. *)
  let b = Helpers.rand_csr ~seed:66 30 30 0.4 in
  let blocked = Tdn.Blocked { tensor_dim = 0; machine_dim = 0 } in
  let mk c_dist =
    let a = Dense.vec_create "a" 30 in
    let c = Dense.vec_init "c" 30 float_of_int in
    Core.Spdistal.problem ~machine:(cpu 3)
      ~operands:
        [
          ("a", Operand.vec a, blocked);
          ("B", Operand.sparse b, blocked);
          ("c", Operand.vec c, c_dist);
        ]
      ~stmt:Tin.spmv
      ~schedule:(Core.Kernels.spmv_row ())
  in
  let repl = run_ok (mk Tdn.Replicated) in
  Helpers.check_float "replicated: nothing moves" 0. repl.Cost.bytes_moved;
  let blk = run_ok (mk blocked) in
  Alcotest.(check bool) "blocked c: gather traffic" true (blk.Cost.bytes_moved > 0.)

let test_one_piece_equals_sequential_flops () =
  (* A single piece must see every stored value exactly once. *)
  let b3 = Helpers.rand_csf ~seed:67 5 6 7 0.15 in
  let cost = run_ok (Core.Kernels.spttv_problem ~machine:(cpu 1) b3) in
  Helpers.check_float "SpTTV flops = 2 nnz"
    (2. *. float_of_int (Tensor.nnz b3))
    cost.Cost.flops

let test_cost_split_components () =
  let c = Cost.create () in
  let m = cpu 2 in
  Cost.record_launch_split c ~machine:m ~comm_times:[| 0.5; 0.1 |]
    ~leaf_times:[| 0.2; 0.6 |];
  (* critical = max(0.7, 0.7) = 0.7; leaf critical = 0.6; comm = 0.1. *)
  Helpers.check_float "compute part" 0.6 c.Cost.compute;
  Helpers.check_float "comm part" 0.1 c.Cost.comm;
  Helpers.check_float "total"
    (0.7 +. Machine.launch_overhead m)
    (Cost.total c)

let test_sddmm_no_atomics_under_nnz () =
  (* SDDMM writes each non-zero's own output position: the nnz split needs
     no atomics, which is why the paper uses it everywhere for SDDMM. *)
  let b = Helpers.rand_csr ~seed:68 50 50 0.3 in
  let sd = run_ok (Core.Kernels.sddmm_problem ~machine:(cpu 1) ~cols:4 b) in
  (* Compare against SpMV-nnz on the same data, which does pay atomics. *)
  let b2 = Helpers.rand_csr ~seed:68 50 50 0.3 in
  let mv =
    run_ok
      (Core.Kernels.spmv_problem ~machine:(cpu 1) ~nonzero_dist:true
         ~schedule:(Core.Kernels.spmv_nnz ()) b2)
  in
  (* Both are nnz-split; only SpMV's compute includes the atomic factor.
     Scale-free check: SDDMM (4 cols) does ~4x SpMV's flops, so compute
     ratio under ~8 confirms no extra multiplier. Crude but effective. *)
  Alcotest.(check bool) "sddmm not atomically penalized" true
    (sd.Cost.compute /. mv.Cost.compute < 8.)

let test_distributed_reduction_loop () =
  (* Distributing over the reduction variable j: valid, numerically exact,
     and every piece's full partial output must be reduced. *)
  let b = Helpers.rand_csr ~seed:69 30 30 0.4 in
  let sched =
    [
      Schedule.Divide { v = "j"; outer = "jo"; inner = "ji" };
      Schedule.Distribute [ "jo" ];
      Schedule.Communicate { tensors = [ "a"; "B"; "c" ]; at = "jo" };
      Schedule.Parallelize { v = "ji"; proc = Schedule.Cpu_thread };
    ]
  in
  let p = Core.Kernels.spmv_problem ~machine:(cpu 4) ~schedule:sched b in
  let cost = run_ok p in
  Helpers.check_float "exact" 0.
    (Validate.max_error (Core.Spdistal.bindings p) Tin.spmv);
  (* Reduction traffic: (pieces-1) full copies of a. *)
  Alcotest.(check bool) "reduction bytes charged" true
    (cost.Cost.bytes_moved >= 3. *. 30. *. 8.)

let suite =
  [
    Alcotest.test_case "flops accounting" `Quick test_flops_counted;
    Alcotest.test_case "nnz split charges reduction" `Quick
      test_nnz_split_reduction_charged;
    Alcotest.test_case "launch overhead grows with pieces" `Quick
      test_launch_overhead_grows;
    Alcotest.test_case "2-D grids stay exact" `Quick
      test_batched_grid_partial_results;
    Alcotest.test_case "atomic penalty visible" `Quick test_atomic_penalty_in_cost;
    Alcotest.test_case "replication vs blocked gather" `Quick
      test_replicated_placement_no_bcast;
    Alcotest.test_case "single piece flop exactness" `Quick
      test_one_piece_equals_sequential_flops;
    Alcotest.test_case "cost split components" `Quick test_cost_split_components;
    Alcotest.test_case "SDDMM needs no atomics" `Quick
      test_sddmm_no_atomics_under_nnz;
    Alcotest.test_case "distributed reduction loop" `Quick
      test_distributed_reduction_loop;
  ]
