(* The interpreter's domain pool: index-ordered results, sequential
   degradation, exception propagation, shared-pool registry. *)

open Spdistal_runtime

let test_map_indexed () =
  let pool = Pool.create 2 in
  let r = Pool.map pool (fun i -> i * i) 50 in
  Alcotest.(check (list int))
    "results indexed by input"
    (List.init 50 (fun i -> i * i))
    (Array.to_list r);
  (* Reuse across calls, including the n=1 and n=0 shortcuts. *)
  for n = 0 to 5 do
    Alcotest.(check int) "length" n (Array.length (Pool.map pool (fun i -> i) n))
  done;
  Pool.shutdown pool

let test_sequential_order () =
  let pool = Pool.create 0 in
  Alcotest.(check int) "no workers" 0 (Pool.workers pool);
  let order = ref [] in
  let r =
    Pool.map pool
      (fun i ->
        order := i :: !order;
        i)
      10
  in
  Alcotest.(check (list int))
    "ascending evaluation order" (List.init 10 Fun.id) (List.rev !order);
  Alcotest.(check (list int)) "results" (List.init 10 Fun.id) (Array.to_list r);
  Pool.shutdown pool

let test_exceptions () =
  let pool = Pool.create 2 in
  (try
     ignore
       (Pool.map pool
          (fun i ->
            if i = 3 then failwith "three"
            else if i = 7 then failwith "seven"
            else i)
          10);
     Alcotest.fail "expected an exception"
   with Failure m ->
     Alcotest.(check string) "smallest-index failure re-raised" "three" m);
  (* The pool survives a failed map. *)
  Alcotest.(check int) "still works" 4 (Pool.map pool (fun i -> i) 5).(4);
  Pool.shutdown pool

let test_structured_error_once () =
  (* A leaf raising a structured error through the SHARED pool (the one the
     interpreter uses at --domains 4): the error surfaces exactly once on
     the main domain, and the pool keeps its full worker complement — a
     worker dying silently would shrink every later parallel run. *)
  let pool = Pool.get (Pool.effective_workers 4) in
  let raised = ref 0 in
  (try
     ignore
       (Pool.map pool
          (fun i ->
            if i = 5 then Error.fail ~piece:i Error.Leaf "injected leaf failure"
            else i)
          64)
   with Error.Error e ->
     incr raised;
     Alcotest.(check string)
       "structured leaf error" "leaf piece 5: injected leaf failure"
       (Error.to_string e));
  Alcotest.(check int) "raised exactly once on the main domain" 1 !raised;
  let r = Pool.map pool (fun i -> 3 * i) 64 in
  Alcotest.(check int) "shared pool reusable at full width" (3 * 63) r.(63)

let test_registry () =
  let a = Pool.get 1 and b = Pool.get 1 in
  Alcotest.(check bool) "get memoizes by worker count" true (a == b);
  Alcotest.(check int) "worker count" 1 (Pool.workers a);
  let s = Pool.get 0 in
  Alcotest.(check int) "sequential shared pool" 0 (Pool.workers s)

let test_effective_workers () =
  Alcotest.(check int) "degree 1 is sequential" 0 (Pool.effective_workers 1);
  Alcotest.(check int) "degree 0 is sequential" 0 (Pool.effective_workers 0);
  Alcotest.(check int) "negative is sequential" 0 (Pool.effective_workers (-3));
  Alcotest.(check bool)
    "degree >= 2 keeps at least one worker" true
    (Pool.effective_workers 2 >= 1);
  Alcotest.(check bool)
    "never more workers than requested - 1" true
    (Pool.effective_workers 4 <= 3);
  Alcotest.(check bool)
    "capped by the host recommendation" true
    (Pool.effective_workers 64
    <= max 1 (Domain.recommended_domain_count () - 1))

let suite =
  [
    Alcotest.test_case "map is indexed" `Quick test_map_indexed;
    Alcotest.test_case "sequential order" `Quick test_sequential_order;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "structured error once, pool reusable" `Quick
      test_structured_error_once;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "effective workers" `Quick test_effective_workers;
  ]
