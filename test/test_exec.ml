open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec

(* --- Operand ------------------------------------------------------------ *)

let test_operand () =
  let t = Helpers.rand_csr 5 6 0.3 in
  let b = [ ("B", Operand.sparse t); ("v", Operand.vec (Dense.vec_create "v" 6)) ] in
  Alcotest.(check int) "dim" 6 (Operand.dim (Operand.find b "B").Operand.data 1);
  Alcotest.(check int) "vec order" 1 (Operand.order (Operand.find b "v").Operand.data);
  Helpers.check_float "vec slice bytes" 8.
    (Operand.slice_bytes (Operand.find b "v").Operand.data 0);
  (try
     ignore (Operand.find_vec b "B");
     Alcotest.fail "expected Error.Error for wrong operand kind"
   with Error.Error e ->
     Alcotest.(check string)
       "wrong kind" "config[B]: operand is not a vector" (Error.to_string e));
  let env = Operand.env_of_bindings b in
  Alcotest.(check int) "env size" 2 (List.length env)

(* --- Part_eval ---------------------------------------------------------- *)

let spmv_bindings ?(rows = 8) ?(cols = 9) ?(density = 0.3) () =
  let b = Helpers.rand_csr rows cols density in
  [
    ("a", Operand.vec (Dense.vec_create "a" rows));
    ("B", Operand.sparse b);
    ("c", Operand.vec (Dense.vec_init "c" cols float_of_int));
  ]

let test_part_eval_spmv () =
  let bindings = spmv_bindings () in
  let env_l = Operand.env_of_bindings bindings in
  let prog = Lower.lower ~env:env_l ~grid:[| 2 |] Tin.spmv (Core.Kernels.spmv_row ()) in
  let penv = Part_eval.create bindings in
  let loops = Part_eval.eval_partitions penv prog in
  Alcotest.(check int) "one distributed loop" 1 (List.length loops);
  let rows_part = Part_eval.find_partition penv "B1Part" in
  Alcotest.(check bool) "row partition complete" true (Partition.is_complete rows_part);
  let vals_part = Part_eval.find_partition penv "BValsPart" in
  let b = Operand.find_sparse bindings "B" in
  Alcotest.(check int) "vals partition covers nnz" (Tensor.nnz b)
    (Iset.cardinal (Partition.union_of_colors vals_part));
  Alcotest.(check bool) "vals disjoint under row split" true
    vals_part.Partition.disjoint;
  (* The gather partition of c names the columns each piece touches. *)
  let gather = Part_eval.find_partition penv "cGatherPart_j" in
  Alcotest.(check int) "gather colors" 2 (Partition.colors gather)

let test_part_eval_nnz_alias () =
  let bindings = spmv_bindings ~rows:6 ~cols:6 ~density:0.5 () in
  let env_l = Operand.env_of_bindings bindings in
  let prog = Lower.lower ~env:env_l ~grid:[| 3 |] Tin.spmv (Core.Kernels.spmv_nnz ()) in
  let penv = Part_eval.create bindings in
  ignore (Part_eval.eval_partitions penv prog);
  let vals_part = Part_eval.find_partition penv "BValsPart" in
  let b = Operand.find_sparse bindings "B" in
  let n = Tensor.nnz b in
  (* Equal-cardinality split of the stored values. *)
  Array.iter
    (fun s ->
      let c = Iset.cardinal s in
      Alcotest.(check bool) "balanced" true (c >= n / 3 && c <= (n / 3) + 1))
    vals_part.Partition.subsets;
  Alcotest.(check bool) "dependent ops executed" true (penv.Part_eval.dep_ops > 0)

(* --- Leaf work accounting ------------------------------------------------ *)

let test_leaf_work_counts () =
  let bindings = spmv_bindings ~rows:10 ~cols:10 ~density:0.4 () in
  let b = Operand.find_sparse bindings "B" in
  let leaf =
    {
      Loop_ir.leaf_stmt = Tin.spmv;
      driver = Loop_ir.Sparse_driver "B";
      nnz_split = false;
      parallel = true;
      out_reduce = false;
      leaf_row_part = None;
      use_workspace = false;
      col_split = 1;
    }
  in
  let n = Tensor.nnz b in
  let res =
    Leaf.execute ~bindings ~leaf
      ~shard_vals:(fun _ -> Iset.range n)
      ~rows:None ~col_range:None ()
  in
  Helpers.check_float "2 flops per nnz" (2. *. float_of_int n)
    res.Leaf.work.Task.flops;
  Alcotest.(check bool) "no atomics on row split" false
    res.Leaf.work.Task.atomics;
  (* Same leaf under nnz split with a dense output reduces atomically. *)
  let res2 =
    Leaf.execute ~bindings
      ~leaf:{ leaf with Loop_ir.nnz_split = true }
      ~shard_vals:(fun _ -> Iset.range n)
      ~rows:None ~col_range:None ()
  in
  Alcotest.(check bool) "atomics under nnz split" true res2.Leaf.work.Task.atomics

let test_leaf_partial_shard () =
  (* Executing two disjoint half-shards equals executing the whole. *)
  let bindings = spmv_bindings ~rows:10 ~cols:10 ~density:0.4 () in
  let bindings2 = spmv_bindings ~rows:10 ~cols:10 ~density:0.4 () in
  let b = Operand.find_sparse bindings "B" in
  let n = Tensor.nnz b in
  let leaf =
    {
      Loop_ir.leaf_stmt = Tin.spmv;
      driver = Loop_ir.Sparse_driver "B";
      nnz_split = true;
      parallel = true;
      out_reduce = true;
      leaf_row_part = None;
      use_workspace = false;
      col_split = 1;
    }
  in
  let run bs shards =
    List.iter
      (fun s ->
        ignore
          (Leaf.execute ~bindings:bs ~leaf ~shard_vals:(fun _ -> s) ~rows:None
             ~col_range:None ()))
      shards
  in
  run bindings [ Iset.range n ];
  run bindings2 [ Iset.interval 0 ((n / 2) - 1); Iset.interval (n / 2) (n - 1) ];
  let a1 = Operand.find_vec bindings "a" and a2 = Operand.find_vec bindings2 "a" in
  Helpers.check_float "halves equal whole" 0. (Dense.vec_dist a1 a2)

(* --- Interp end-to-end --------------------------------------------------- *)

let run_problem = Helpers.run_validated

let machine = Helpers.cpu_machine

let test_all_kernels_all_pieces () =
  let b = Helpers.rand_csr ~seed:21 12 14 0.25 in
  let b3 = Helpers.rand_csf ~seed:22 6 7 8 0.1 in
  List.iter
    (fun pieces ->
      let m = machine pieces in
      ignore (run_problem (Core.Kernels.spmv_problem ~machine:m b));
      ignore
        (run_problem
           (Core.Kernels.spmv_problem ~machine:m ~nonzero_dist:true
              ~schedule:(Core.Kernels.spmv_nnz ()) b));
      ignore (run_problem (Core.Kernels.spmm_problem ~machine:m ~cols:5 b));
      ignore (run_problem (Core.Kernels.spadd3_problem ~machine:m b));
      ignore (run_problem (Core.Kernels.sddmm_problem ~machine:m ~cols:5 b));
      ignore (run_problem (Core.Kernels.spttv_problem ~machine:m b3));
      ignore
        (run_problem (Core.Kernels.spttv_problem ~machine:m ~nonzero_dist:true b3));
      ignore (run_problem (Core.Kernels.mttkrp_problem ~machine:m ~cols:5 b3));
      ignore
        (run_problem
           (Core.Kernels.mttkrp_problem ~machine:m ~cols:5 ~nonzero_dist:true b3)))
    [ 1; 2; 5 ]

let test_gpu_and_batched () =
  let b = Helpers.rand_csr ~seed:23 12 14 0.25 in
  let mg = Core.Spdistal.machine ~kind:Machine.Gpu [| 4 |] in
  ignore (run_problem (Core.Kernels.spmv_problem ~machine:mg b));
  ignore
    (run_problem (Core.Kernels.spmm_problem ~machine:mg ~cols:6 ~nonzero_dist:true b));
  let m2 = Core.Spdistal.machine ~kind:Machine.Gpu [| 2; 2 |] in
  ignore (run_problem (Core.Kernels.spmm_problem ~machine:m2 ~cols:6 ~batched:true b))

let test_more_pieces_not_slower_on_big_input () =
  (* Strong scaling sanity on a large enough matrix. *)
  let b =
    Spdistal_workloads.Synth.uniform ~name:"U" ~rows:2000 ~cols:2000 ~nnz:40_000
      ~seed:5
  in
  let t1 = run_problem (Core.Kernels.spmv_problem ~machine:(machine 1) b) in
  let t8 = run_problem (Core.Kernels.spmv_problem ~machine:(machine 8) b) in
  Alcotest.(check bool) "8 nodes faster than 1" true (t8 < t1)

let test_oom_dnc () =
  (* A tiny GPU memory forces a DNC, like the paper's Fig. 11 cells. *)
  let b = Helpers.rand_csr ~seed:25 40 40 0.5 in
  let params =
    { (Machine.scale_params 1e9 Machine.lassen) with Machine.net_alpha = 1e-6 }
  in
  let m = Core.Spdistal.machine ~params ~kind:Machine.Gpu [| 2 |] in
  let res = Core.Spdistal.run (Core.Kernels.spmm_problem ~machine:m ~cols:8 b) in
  Alcotest.(check bool) "DNC reported" true (res.Core.Spdistal.dnc <> None)

let test_show_compiles () =
  let b = Helpers.rand_csr ~seed:26 6 6 0.4 in
  let p = Core.Kernels.spmv_problem ~machine:(machine 2) b in
  let s = Core.Spdistal.show p in
  Alcotest.(check bool) "pretty plan nonempty" true (String.length s > 100)

(* --- Placement ----------------------------------------------------------- *)

let test_placement_matching_avoids_comm () =
  (* Matched data/computation distribution: zero bytes moved (paper §II-D);
     a mismatched distribution pays to reshape. *)
  let b = Helpers.rand_csr ~seed:27 30 30 0.2 in
  let m = machine 3 in
  let matched = Core.Kernels.spmv_problem ~machine:m b in
  let r1 = Core.Spdistal.run matched in
  Helpers.check_float "no bytes moved when matched" 0.
    r1.Core.Spdistal.cost.Cost.bytes_moved;
  let mismatched =
    Core.Kernels.spmv_problem ~machine:m ~nonzero_dist:true
      ~schedule:(Core.Kernels.spmv_row ()) b
  in
  let r2 = Core.Spdistal.run mismatched in
  Alcotest.(check bool) "mismatch moves data" true
    (r2.Core.Spdistal.cost.Cost.bytes_moved > 0.);
  Alcotest.(check bool) "mismatch is slower" true
    (Cost.total r2.Core.Spdistal.cost > Cost.total r1.Core.Spdistal.cost)

(* --- Random cross-validation --------------------------------------------- *)

let prop_random_spmv =
  Helpers.qtest ~count:60 "random SpMV matches dense reference (row and nnz)"
    QCheck.(pair Helpers.arb_coo_matrix (QCheck.int_range 1 5))
    (fun (coo, pieces) ->
      let b = Tensor.csr ~name:"B" coo in
      if Tensor.nnz b = 0 then true
      else begin
        let m = machine pieces in
        let ok p =
          let res = Core.Spdistal.run p in
          res.Core.Spdistal.dnc = None
          && Validate.max_error (Core.Spdistal.bindings p) p.Core.Spdistal.stmt
             < 1e-9
        in
        ok (Core.Kernels.spmv_problem ~machine:m b)
        && ok
             (Core.Kernels.spmv_problem ~machine:m ~nonzero_dist:true
                ~schedule:(Core.Kernels.spmv_nnz ()) b)
      end)

let test_workspace_spadd3 () =
  (* The workspace strategy must produce the identical output to the k-way
     merge. *)
  let b = Helpers.rand_csr ~seed:71 25 25 0.3 in
  let p1 = Core.Kernels.spadd3_problem ~machine:(machine 3) b in
  let p2 =
    Core.Kernels.spadd3_problem ~machine:(machine 3)
      ~schedule:(Core.Kernels.spadd3_workspace ()) b
  in
  ignore (run_problem p1);
  ignore (run_problem p2);
  let a1 = Operand.find_sparse (Core.Spdistal.bindings p1) "A" in
  let a2 = Operand.find_sparse (Core.Spdistal.bindings p2) "A" in
  Alcotest.(check bool) "identical outputs" true
    (Coo.equal (Tensor.to_coo a1) (Tensor.to_coo a2))

let prop_random_spadd3 =
  Helpers.qtest ~count:40 "random SpAdd3 matches dense reference"
    QCheck.(pair Helpers.arb_coo_matrix (QCheck.int_range 1 4))
    (fun (coo, pieces) ->
      let b = Tensor.csr ~name:"B" coo in
      if Tensor.nnz b = 0 then true
      else begin
        let p = Core.Kernels.spadd3_problem ~machine:(machine pieces) b in
        let res = Core.Spdistal.run p in
        res.Core.Spdistal.dnc = None
        && Validate.max_error (Core.Spdistal.bindings p) p.Core.Spdistal.stmt
           < 1e-9
      end)

(* --- Compiled vs interpreter leaf backends ------------------------------ *)

(* The compiled closures must be indistinguishable from the reference
   interpreter: bit-identical outputs, launch records and Cost, on every
   kernel of the catalog, under fault injection, and across warm-cache
   iterations (which replay cached compiled leaves). *)

let launch_sig trace =
  let module Trace = Spdistal_obs.Trace in
  List.map
    (fun sp ->
      ( sp.Trace.sp_name,
        Int64.bits_of_float sp.Trace.sp_start,
        Int64.bits_of_float sp.Trace.sp_dur ))
    (Helpers.launch_spans trace)

let run_with backend ?faults ?iterations make =
  let p = make () in
  let res, trace =
    Helpers.run_traced ?faults ?iterations ~leaf_backend:backend p
  in
  match res.Core.Spdistal.dnc with
  | Some r -> `Dnc r
  | None ->
      `Ok
        ( Helpers.snapshot p,
          Helpers.cost_sig res.Core.Spdistal.cost,
          launch_sig trace )

let check_backends_agree name ?faults ?iterations make =
  let ri = run_with Compile_leaf.Interp ?faults ?iterations make in
  let rc = run_with Compile_leaf.Compiled ?faults ?iterations make in
  match (ri, rc) with
  | `Dnc a, `Dnc b -> Alcotest.(check string) (name ^ ": same DNC") a b
  | `Ok (o_i, c_i, l_i), `Ok (o_c, c_c, l_c) ->
      Alcotest.(check bool)
        (name ^ ": outputs bit-identical")
        true
        (Spdistal_fuzz.Snapshot.equal o_i o_c);
      Alcotest.(check bool)
        (name ^ ": cost bit-identical")
        true
        (Spdistal_fuzz.Snapshot.equal c_i c_c);
      Alcotest.(check bool) (name ^ ": launch records identical") true (l_i = l_c)
  | `Dnc r, `Ok _ -> Alcotest.fail (name ^ ": DNC only on interp: " ^ r)
  | `Ok _, `Dnc r -> Alcotest.fail (name ^ ": DNC only on compiled: " ^ r)

let test_backend_equivalence_sweep () =
  List.iter
    (fun (name, make) ->
      check_backends_agree name make;
      check_backends_agree
        (name ^ "+faults")
        ~faults:(Fault.make ~seed:5 ~rate:0.1 ~retries:8 ())
        make;
      check_backends_agree (name ^ "+warm") ~iterations:3 make)
    (Helpers.kernel_problems () @ Helpers.nnz_kernel_problems ())

let suite =
  [
    Alcotest.test_case "operand bindings" `Quick test_operand;
    Alcotest.test_case "partition evaluation (spmv row)" `Quick
      test_part_eval_spmv;
    Alcotest.test_case "partition evaluation (spmv nnz)" `Quick
      test_part_eval_nnz_alias;
    Alcotest.test_case "leaf work accounting" `Quick test_leaf_work_counts;
    Alcotest.test_case "leaf shards compose" `Quick test_leaf_partial_shard;
    Alcotest.test_case "all kernels x pieces vs reference" `Slow
      test_all_kernels_all_pieces;
    Alcotest.test_case "gpu and batched schedules" `Quick test_gpu_and_batched;
    Alcotest.test_case "strong scaling sanity" `Quick
      test_more_pieces_not_slower_on_big_input;
    Alcotest.test_case "OOM becomes DNC" `Quick test_oom_dnc;
    Alcotest.test_case "show pretty plan" `Quick test_show_compiles;
    Alcotest.test_case "matched distribution avoids communication" `Quick
      test_placement_matching_avoids_comm;
    Alcotest.test_case "workspace SpAdd3 = merge SpAdd3" `Quick
      test_workspace_spadd3;
    Alcotest.test_case "compiled = interp leaves (catalog, faults, warm)" `Slow
      test_backend_equivalence_sweep;
    prop_random_spmv;
    prop_random_spadd3;
  ]
