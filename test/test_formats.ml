open Spdistal_formats

let coo_small =
  Coo.make [| 4; 5 |]
    [
      ([| 0; 1 |], 1.);
      ([| 0; 3 |], 2.);
      ([| 2; 0 |], 3.);
      ([| 2; 4 |], 4.);
      ([| 3; 2 |], 5.);
    ]

let test_coo_sort_dedup () =
  let c =
    Coo.make [| 3; 3 |] [ ([| 2; 1 |], 1.); ([| 0; 0 |], 2.); ([| 2; 1 |], 3.) ]
  in
  let s = Coo.sort_dedup c in
  Alcotest.(check int) "deduped" 2 (Coo.nnz s);
  Alcotest.(check (list (pair (list int) (float 0.))))
    "sorted, summed"
    [ ([ 0; 0 ], 2.); ([ 2; 1 ], 4.) ]
    (Coo.to_alist s)

let test_coo_drop_zeros () =
  let c = Coo.make [| 2; 2 |] [ ([| 0; 0 |], 1.); ([| 0; 0 |], -1.) ] in
  Alcotest.(check int) "kept explicit zero" 1 (Coo.nnz (Coo.sort_dedup c));
  Alcotest.(check int) "dropped zero" 0
    (Coo.nnz (Coo.sort_dedup ~drop_zeros:true c))

let test_coo_permute () =
  let p = Coo.permute coo_small [| 1; 0 |] in
  Alcotest.(check (list int)) "dims swapped" [ 5; 4 ] (Array.to_list p.Coo.dims);
  Alcotest.(check bool) "transposed entry" true
    (List.mem ([ 1; 0 ], 1.) (Coo.to_alist p))

let test_coo_bounds () =
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Coo.make: coord 5 out of bounds [0,5) in dim 1")
    (fun () -> ignore (Coo.make [| 4; 5 |] [ ([| 0; 5 |], 1.) ]))

let test_csr_construction () =
  let t = Tensor.csr ~name:"B" coo_small in
  Alcotest.(check int) "nnz" 5 (Tensor.nnz t);
  Helpers.check_float "get present" 4. (Tensor.get t [| 2; 4 |]);
  Helpers.check_float "get absent" 0. (Tensor.get t [| 1; 1 |]);
  Alcotest.(check int) "level extent rows" 4 (Tensor.level_extent t 0);
  Alcotest.(check int) "level extent nnz" 5 (Tensor.level_extent t 1);
  Alcotest.(check int) "leaf parent of (2,4)" 2 (Tensor.leaf_parent t 3)

let test_csc_construction () =
  let t = Tensor.csc ~name:"B" coo_small in
  Helpers.check_float "get via csc" 3. (Tensor.get t [| 2; 0 |]);
  Alcotest.(check bool) "roundtrip" true (Coo.equal coo_small (Tensor.to_coo t))

let test_dense_tensor () =
  let t = Tensor.dense_of_coo ~name:"D" coo_small in
  Alcotest.(check int) "dense stores everything" 20 (Tensor.nnz t);
  Helpers.check_float "dense get" 5. (Tensor.get t [| 3; 2 |]);
  Helpers.check_float "dense zero" 0. (Tensor.get t [| 1; 1 |])

let test_csf_3tensor () =
  let coo =
    Coo.make [| 3; 3; 3 |]
      [ ([| 0; 0; 1 |], 1.); ([| 0; 2; 2 |], 2.); ([| 2; 2; 2 |], 4. ) ]
  in
  let t =
    Tensor.of_coo ~name:"T"
      ~formats:[| Level.Dense_k; Level.Compressed_k; Level.Compressed_k |]
      coo
  in
  Alcotest.(check int) "nnz" 3 (Tensor.nnz t);
  Alcotest.(check int) "level 1 extent (fibers)" 3 (Tensor.level_extent t 1);
  Alcotest.(check bool) "roundtrip" true (Coo.equal coo (Tensor.to_coo t))

let test_patents_format () =
  let coo =
    Coo.make [| 2; 2; 4 |]
      [ ([| 0; 0; 1 |], 1.); ([| 0; 1; 2 |], 2.); ([| 1; 1; 3 |], 3.) ]
  in
  let t =
    Tensor.of_coo ~name:"P"
      ~formats:[| Level.Dense_k; Level.Dense_k; Level.Compressed_k |]
      coo
  in
  (* Two dense levels collapse into 4 fiber positions. *)
  Alcotest.(check int) "dense pair positions" 4 (Tensor.level_extent t 1);
  Alcotest.(check bool) "roundtrip" true (Coo.equal coo (Tensor.to_coo t));
  Helpers.check_float "get" 2. (Tensor.get t [| 0; 1; 2 |])

let test_iter_matches_get () =
  let t = Helpers.rand_csr 9 7 0.3 in
  Tensor.iter_nnz t (fun coords _ v ->
      Helpers.check_float "iter value = get" v (Tensor.get t (Array.copy coords)))

let prop_roundtrip_csr =
  Helpers.qtest "COO -> CSR -> COO roundtrip" Helpers.arb_coo_matrix (fun coo ->
      let t = Tensor.csr ~name:"B" coo in
      Coo.equal coo (Tensor.to_coo t))

let prop_roundtrip_csc =
  Helpers.qtest "COO -> CSC -> COO roundtrip" Helpers.arb_coo_matrix (fun coo ->
      let t = Tensor.csc ~name:"B" coo in
      Coo.equal coo (Tensor.to_coo t))

(* Every supported matrix format, not just CSR/CSC.  Equality is on the
   non-zero multiset ([drop_zeros]): all-dense level combinations surface
   structural zeros as explicit entries, which are not part of the logical
   tensor.  Singleton only appears under a non-unique parent — elsewhere
   duplicate coordinates would collide on a shared parent position. *)
let matrix_formats =
  [
    ("dd", [| Level.Dense_k; Level.Dense_k |], [| 0; 1 |]);
    ("dc", [| Level.Dense_k; Level.Compressed_k |], [| 0; 1 |]);
    ("dc-csc", [| Level.Dense_k; Level.Compressed_k |], [| 1; 0 |]);
    ("cd", [| Level.Compressed_k; Level.Dense_k |], [| 0; 1 |]);
    ("cc", [| Level.Compressed_k; Level.Compressed_k |], [| 0; 1 |]);
    ("nc", [| Level.Compressed_nonunique_k; Level.Compressed_k |], [| 0; 1 |]);
    ("ns", [| Level.Compressed_nonunique_k; Level.Singleton_k |], [| 0; 1 |]);
    ("nn", [| Level.Compressed_nonunique_k; Level.Compressed_nonunique_k |], [| 0; 1 |]);
  ]

let nonzeros coo = Coo.to_alist (Coo.sort_dedup ~drop_zeros:true coo)

let roundtrips_all_formats coo =
  List.for_all
    (fun (name, formats, mode_order) ->
      let t = Tensor.of_coo ~name ~formats ~mode_order coo in
      nonzeros coo = nonzeros (Tensor.to_coo t))
    matrix_formats

let prop_roundtrip_all_formats =
  Helpers.qtest "COO -> every format -> COO preserves the nnz multiset"
    Helpers.arb_coo_matrix roundtrips_all_formats

let test_roundtrip_edge_inputs () =
  (* The empty tensor (the phantom-Singleton-position regression the fuzzer
     found) and duplicate coordinates (summed on construction). *)
  let empty = Coo.make [| 3; 4 |] [] in
  Alcotest.(check bool) "empty roundtrips" true (roundtrips_all_formats empty);
  List.iter
    (fun (name, formats, mode_order) ->
      let t = Tensor.of_coo ~name ~formats ~mode_order empty in
      Alcotest.(check int) ("empty " ^ name ^ " stores nothing") 0
        (List.length (nonzeros (Tensor.to_coo t))))
    matrix_formats;
  let dups =
    Coo.make [| 3; 4 |]
      [ ([| 1; 2 |], 2.); ([| 1; 2 |], 3.); ([| 0; 0 |], 1.); ([| 1; 2 |], 4. ) ]
  in
  Alcotest.(check bool) "duplicates roundtrip" true (roundtrips_all_formats dups);
  let t = Tensor.csr ~name:"B" dups in
  Helpers.check_float "duplicates summed" 9. (Tensor.get t [| 1; 2 |]);
  Alcotest.(check int) "two stored entries" 2 (Tensor.nnz t)

let prop_csr_csc_agree =
  Helpers.qtest "CSR and CSC agree pointwise" Helpers.arb_coo_matrix (fun coo ->
      let a = Tensor.csr ~name:"B" coo and b = Tensor.csc ~name:"B" coo in
      let ok = ref true in
      for i = 0 to coo.Coo.dims.(0) - 1 do
        for j = 0 to coo.Coo.dims.(1) - 1 do
          if Tensor.get a [| i; j |] <> Tensor.get b [| i; j |] then ok := false
        done
      done;
      !ok)

let prop_leaf_parent =
  Helpers.qtest "leaf_parent inverts row ranges" Helpers.arb_coo_matrix
    (fun coo ->
      let t = Tensor.csr ~name:"B" coo in
      if Tensor.nnz t = 0 then true
      else begin
        let open Spdistal_runtime in
        let pos = Tensor.pos_of t 1 in
        let ok = ref true in
        Region.iter
          (fun r (lo, hi) ->
            for p = lo to hi do
              if Tensor.leaf_parent t p <> r then ok := false
            done)
          pos;
        !ok
      end)

let test_convert_transpose () =
  let t = Tensor.csr ~name:"B" coo_small in
  let tt = Convert.transpose ~name:"Bt" t in
  Helpers.check_float "transposed entry" 4. (Tensor.get tt [| 4; 2 |]);
  let back = Convert.transpose ~name:"Btt" tt in
  Alcotest.(check bool) "double transpose" true
    (Coo.equal (Tensor.to_coo t) (Tensor.to_coo back))

let test_convert_csr_csc () =
  let t = Tensor.csr ~name:"B" coo_small in
  let c = Convert.csr_to_csc t in
  Alcotest.(check bool) "csr->csc preserves entries" true
    (Coo.equal (Tensor.to_coo t) (Tensor.to_coo c));
  let r = Convert.csc_to_csr c in
  Alcotest.(check bool) "csc->csr roundtrip" true
    (Coo.equal (Tensor.to_coo t) (Tensor.to_coo r))

let test_assemble () =
  let st = Assemble.stage ~rows:3 ~count:(fun r -> r) in
  Alcotest.(check int) "total" 3 st.Assemble.total;
  let t =
    Assemble.fill st
      ~row_fill:(fun r emit ->
        for k = 0 to r - 1 do
          emit k (float_of_int (r * 10 + k))
        done)
      ~name:"A" ~dims:[| 3; 4 |]
  in
  Helpers.check_float "filled (2,1)" 21. (Tensor.get t [| 2; 1 |]);
  Helpers.check_float "absent" 0. (Tensor.get t [| 0; 0 |])

let test_assemble_underflow () =
  let st = Assemble.stage ~rows:1 ~count:(fun _ -> 2) in
  Alcotest.check_raises "underflow detected"
    (Invalid_argument "Assemble.fill: row underflow") (fun () ->
      ignore
        (Assemble.fill st ~row_fill:(fun _ emit -> emit 0 1.) ~name:"A"
           ~dims:[| 1; 3 |]))

let test_copy_pattern () =
  let b = Helpers.rand_csf 4 5 6 0.2 in
  let a = Assemble.copy_pattern ~name:"A" ~levels:2 b in
  Alcotest.(check int) "order" 2 (Tensor.order a);
  Alcotest.(check int) "vals extent = level-1 extent"
    (Tensor.level_extent b 1) (Tensor.nnz a);
  Tensor.iter_nnz a (fun _ _ v -> Helpers.check_float "zeroed" 0. v);
  let full = Assemble.copy_pattern ~name:"A2" b in
  Alcotest.(check int) "full copy keeps nnz" (Tensor.nnz b) (Tensor.nnz full)

let test_coord_tree () =
  let t = Tensor.csr ~name:"B" coo_small in
  let tree = Coord_tree.of_tensor t in
  Alcotest.(check int) "paths = nnz" 5 (List.length (Coord_tree.paths tree));
  (* The coordinate tree stores only non-empty paths: row 1 is absent. *)
  Alcotest.(check int) "level 0 width = rows with entries" 3
    (Coord_tree.level_width tree 0);
  Alcotest.(check int) "level 1 width = nnz" 5 (Coord_tree.level_width tree 1)

let test_dense_containers () =
  let v = Dense.vec_init "v" 4 float_of_int in
  Helpers.check_float "vec get" 2. (Dense.vec_get v 2);
  Dense.vec_set v 2 9.;
  Helpers.check_float "vec set" 9. (Dense.vec_get v 2);
  let m = Dense.mat_init "m" 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  Helpers.check_float "mat get" 5. (Dense.mat_get m 1 2);
  Helpers.check_float "mat bytes" 48. (Dense.mat_bytes m);
  let m2 = Dense.mat_create "m2" 2 3 in
  Helpers.check_float "dist" 5. (Dense.mat_dist m m2)

let suite =
  [
    Alcotest.test_case "coo sort/dedup" `Quick test_coo_sort_dedup;
    Alcotest.test_case "coo drop zeros" `Quick test_coo_drop_zeros;
    Alcotest.test_case "coo permute" `Quick test_coo_permute;
    Alcotest.test_case "coo bounds check" `Quick test_coo_bounds;
    Alcotest.test_case "csr construction" `Quick test_csr_construction;
    Alcotest.test_case "csc construction" `Quick test_csc_construction;
    Alcotest.test_case "dense tensor" `Quick test_dense_tensor;
    Alcotest.test_case "csf 3-tensor" `Quick test_csf_3tensor;
    Alcotest.test_case "patents format (D,D,C)" `Quick test_patents_format;
    Alcotest.test_case "iter matches get" `Quick test_iter_matches_get;
    prop_roundtrip_csr;
    prop_roundtrip_csc;
    prop_roundtrip_all_formats;
    Alcotest.test_case "roundtrip edge inputs" `Quick test_roundtrip_edge_inputs;
    prop_csr_csc_agree;
    prop_leaf_parent;
    Alcotest.test_case "transpose" `Quick test_convert_transpose;
    Alcotest.test_case "csr<->csc" `Quick test_convert_csr_csc;
    Alcotest.test_case "two-phase assembly" `Quick test_assemble;
    Alcotest.test_case "assembly underflow" `Quick test_assemble_underflow;
    Alcotest.test_case "copy_pattern" `Quick test_copy_pattern;
    Alcotest.test_case "coordinate tree" `Quick test_coord_tree;
    Alcotest.test_case "dense containers" `Quick test_dense_containers;
  ]
