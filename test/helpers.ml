(* Shared test utilities: deterministic random sparse structures, qcheck
   generators, and comparison helpers. *)

open Spdistal_formats

let rng_state = ref 7

let rand n =
  rng_state := ((!rng_state * 1103515245) + 12345) land 0x3fffffff;
  !rng_state mod n

let reset_rng seed = rng_state := seed

(* Random COO matrix with approximately [density] fill. *)
let rand_coo_matrix ?(seed = 11) rows cols density =
  reset_rng seed;
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if rand 1000 < int_of_float (density *. 1000.) then
        entries := ([| i; j |], float_of_int (1 + rand 9)) :: !entries
    done
  done;
  Coo.make [| rows; cols |] !entries

let rand_csr ?seed ?(name = "B") rows cols density =
  Tensor.csr ~name (rand_coo_matrix ?seed rows cols density)

let rand_coo3 ?(seed = 13) d1 d2 d3 density =
  reset_rng seed;
  let entries = ref [] in
  for i = 0 to d1 - 1 do
    for j = 0 to d2 - 1 do
      for k = 0 to d3 - 1 do
        if rand 1000 < int_of_float (density *. 1000.) then
          entries := ([| i; j; k |], float_of_int (1 + rand 9)) :: !entries
      done
    done
  done;
  Coo.make [| d1; d2; d3 |] !entries

let rand_csf ?seed ?(name = "B") d1 d2 d3 density =
  Tensor.of_coo ~name
    ~formats:[| Level.Dense_k; Level.Compressed_k; Level.Compressed_k |]
    (rand_coo3 ?seed d1 d2 d3 density)

(* qcheck: a small random COO matrix (dims <= 12). *)
let arb_coo_matrix =
  let open QCheck in
  let gen =
    Gen.(
      let* rows = int_range 1 12 in
      let* cols = int_range 1 12 in
      let* n = int_range 0 30 in
      let* entries =
        list_repeat n
          (let* i = int_range 0 (rows - 1) in
           let* j = int_range 0 (cols - 1) in
           let* v = int_range 1 9 in
           Gen.return ([| i; j |], float_of_int v))
      in
      Gen.return (Coo.make [| rows; cols |] entries))
  in
  make ~print:(fun c -> Format.asprintf "%d x %d coo, %d entries" c.Coo.dims.(0) c.Coo.dims.(1) (Coo.nnz c)) gen

let arb_iset =
  let open QCheck in
  let gen =
    Gen.(
      let* n = int_range 0 8 in
      let* ivals =
        list_repeat n
          (let* lo = int_range 0 60 in
           let* len = int_range 0 8 in
           Gen.return (lo, lo + len))
      in
      Gen.return (Spdistal_runtime.Iset.of_intervals ivals))
  in
  make ~print:(Format.asprintf "%a" Spdistal_runtime.Iset.pp) gen

let check_float = Alcotest.(check (float 1e-9))

(* Substring search, for asserting on rendered output. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0
let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Problem-level scaffolding ------------------------------------------
   Shared by the exec / interp / parallel / fault / fuzz suites, which each
   used to carry private copies. *)

let cpu_machine pieces =
  Core.Spdistal.machine ~kind:Spdistal_runtime.Machine.Cpu [| pieces |]

let gpu_machine grid = Core.Spdistal.machine ~kind:Spdistal_runtime.Machine.Gpu grid

(* Run a problem and fail the test on any did-not-complete outcome. *)
let run_ok problem =
  let res = Core.Spdistal.run problem in
  match res.Core.Spdistal.dnc with
  | Some r -> Alcotest.fail r
  | None -> res.Core.Spdistal.cost

(* Bit-exact signatures of a problem's operand storage and of a cost record,
   shared with the fuzzer's invariant checks. *)
let snapshot = Spdistal_fuzz.Snapshot.outputs
let cost_sig = Spdistal_fuzz.Snapshot.cost

(* Run a problem and check the result against the dense reference evaluator;
   returns the simulated total. *)
let run_validated problem =
  let res = Core.Spdistal.run problem in
  match res.Core.Spdistal.dnc with
  | Some r -> Alcotest.fail ("unexpected DNC: " ^ r)
  | None ->
      check_float "matches dense reference" 0.
        (Spdistal_exec.Validate.max_error
           (Core.Spdistal.bindings problem)
           problem.Core.Spdistal.stmt);
      Spdistal_runtime.Cost.total res.Core.Spdistal.cost

(* --- Kernel problem catalogs --------------------------------------------
   The fig10 kernels (plus batched SpMM on a 2x2 GPU grid) over fixed random
   operands: shared by the parallel / fault / cache suites, which each used
   to carry a private copy. *)

let kernel_problems ?(mseed = 71) ?(tseed = 72) ?(cols = 8) ?(batched = true)
    () =
  let matrix = rand_csr ~seed:mseed 80 80 0.06 in
  let tensor = rand_csf ~seed:tseed 24 20 16 0.02 in
  let cpu = cpu_machine 8 in
  let gpu2x2 = gpu_machine [| 2; 2 |] in
  let module K = Core.Kernels in
  [
    ("spmv", fun () -> K.spmv_problem ~machine:cpu matrix);
    ("spmm", fun () -> K.spmm_problem ~machine:cpu ~cols matrix);
    ("spadd3", fun () -> K.spadd3_problem ~machine:cpu matrix);
    ("sddmm", fun () -> K.sddmm_problem ~machine:cpu ~cols matrix);
    ("spttv", fun () -> K.spttv_problem ~machine:cpu tensor);
    ("mttkrp", fun () -> K.mttkrp_problem ~machine:cpu ~cols tensor);
  ]
  @
  if batched then
    [
      ( "spmm-batched",
        fun () -> K.spmm_problem ~machine:gpu2x2 ~cols ~batched:true matrix );
    ]
  else []

(* The nnz-split schedules (deferred-leaf reduction path). *)
let nnz_kernel_problems ?(mseed = 43) ?(tseed = 44) ?(cols = 8) () =
  let matrix = rand_csr ~seed:mseed 80 80 0.06 in
  let tensor = rand_csf ~seed:tseed 24 20 16 0.02 in
  let cpu = cpu_machine 8 in
  let module K = Core.Kernels in
  [
    ( "spmv-nnz",
      fun () -> K.spmv_problem ~machine:cpu ~nonzero_dist:true matrix );
    ( "spttv-nnz",
      fun () -> K.spttv_problem ~machine:cpu ~nonzero_dist:true tensor );
    ( "mttkrp-nnz",
      fun () -> K.mttkrp_problem ~machine:cpu ~cols ~nonzero_dist:true tensor );
  ]

(* --- Traced runs (obs / cache / golden suites) -------------------------- *)

let blocked_tdn = Spdistal_ir.Tdn.Blocked { tensor_dim = 0; machine_dim = 0 }

(* SpMV with a blocked (mis-distributed) input vector, so every piece
   gathers remote columns: exercises the comm spans and the comm matrix. *)
let comm_spmv ?(pieces = 3) ?(seed = 66) () =
  let open Spdistal_exec in
  let b = rand_csr ~seed 30 30 0.4 in
  let a = Dense.vec_create "a" 30 in
  let c = Dense.vec_init "c" 30 float_of_int in
  Core.Spdistal.problem ~machine:(cpu_machine pieces)
    ~operands:
      [
        ("a", Operand.vec a, blocked_tdn);
        ("B", Operand.sparse b, blocked_tdn);
        ("c", Operand.vec c, blocked_tdn);
      ]
    ~stmt:Spdistal_ir.Tin.spmv
    ~schedule:(Core.Kernels.spmv_row ())

let run_traced ?domains ?faults ?iterations ?cache ?leaf_backend problem =
  let trace = Spdistal_obs.Trace.create () in
  let res =
    Core.Spdistal.run ?domains ?faults ?iterations ?cache ?leaf_backend ~trace
      problem
  in
  (res, trace)

let sim_spans trace =
  let module Trace = Spdistal_obs.Trace in
  List.filter (fun sp -> sp.Trace.sp_clock = Trace.Sim) (Trace.spans trace)

let launch_spans trace =
  let module Trace = Spdistal_obs.Trace in
  List.filter
    (fun sp -> sp.Trace.sp_track = Trace.Runtime && sp.Trace.sp_cat = "launch")
    (Trace.spans trace)

(* --- Fault-pair runs ---------------------------------------------------- *)

(* Baseline and faulty runs of one freshly-built problem each; returns
   (result, outputs) per run. *)
let run_pair ?domains ~faults make =
  let base_p = make () in
  let base =
    Core.Spdistal.run ?domains ~faults:Spdistal_runtime.Fault.disabled base_p
  in
  let fault_p = make () in
  let faulty = Core.Spdistal.run ?domains ~faults fault_p in
  ((base, snapshot base_p), (faulty, snapshot fault_p))

(* Fault cost fields, for cross-domain comparison. *)
let fault_sig (c : Spdistal_runtime.Cost.t) =
  let open Spdistal_runtime in
  ( cost_sig c,
    Int64.bits_of_float c.Cost.recovery,
    c.Cost.retries,
    Int64.bits_of_float c.Cost.resent_bytes,
    c.Cost.faults )
