open Spdistal_runtime
open Spdistal_ir
open Spdistal_exec

type problem = {
  machine : Machine.t;
  operands : (string * Operand.slot * Tdn.t) list;
  stmt : Tin.stmt;
  schedule : Schedule.t;
}

let machine ?params ~kind grid = Machine.make ?params ~kind grid

let problem ~machine ~operands ~stmt ~schedule =
  { machine; operands; stmt; schedule }

(* Same data, different plan: the auto-scheduler applies its chosen
   schedule and data distributions to the user's problem without touching
   the operand slots (so outputs land in the same bindings). *)
let with_schedule p ~schedule ~tdns =
  {
    p with
    schedule;
    operands =
      List.map
        (fun (n, s, tdn) ->
          (n, s, match List.assoc_opt n tdns with Some t -> t | None -> tdn))
        p.operands;
  }

let bindings p = List.map (fun (n, s, _) -> (n, s)) p.operands

module Trace = Spdistal_obs.Trace
module Metrics = Spdistal_obs.Metrics

let host_track () = Trace.Host (Domain.self () :> int)

let compile ?trace p =
  let trace = match trace with Some t -> t | None -> Trace.default () in
  Trace.with_wall_span trace ~track:(host_track ()) ~cat:"phase" ~name:"lower"
    (fun () ->
      let env = Operand.env_of_bindings (bindings p) in
      Lower.lower ~env ~grid:p.machine.Machine.grid p.stmt p.schedule)

let show p = Pretty.prog_to_string (compile p)

type cache_status = [ `Hit | `Miss | `Uncached ]

type iter_stat = {
  it_index : int;
  it_cache : cache_status;
  it_cost : Cost.t;
}

type run_result = {
  cost : Cost.t;
  dnc : string option;
  iters : iter_stat list;
  crashed : int list;
}

let set_run_meta trace p =
  if Trace.enabled trace then begin
    Trace.set_meta trace "kernel" p.stmt.Tin.lhs.Tin.tensor;
    Trace.set_meta trace "proc_kind"
      (match p.machine.Machine.kind with Machine.Cpu -> "cpu" | Machine.Gpu -> "gpu");
    Trace.set_meta trace "pieces" (string_of_int (Machine.pieces p.machine))
  end

let run_once ?(uvm = false) ?domains ?faults ?trace ?leaf_backend p =
  let trace = match trace with Some t -> t | None -> Trace.default () in
  let b = bindings p in
  let cost = Cost.create () in
  set_run_meta trace p;
  try
    let placement =
      Trace.with_wall_span trace ~track:(host_track ()) ~cat:"phase"
        ~name:"placement" (fun () ->
          List.map
            (fun (name, _, tdn) ->
              (name, Placement.of_tdn ~machine:p.machine ~bindings:b name tdn))
            p.operands)
    in
    let prog = compile ~trace p in
    let memstate = Memstate.create p.machine ~uvm in
    Interp.run ~machine:p.machine ~bindings:b ~placement ~memstate ~cost
      ?domains ?faults ~trace ?backend:leaf_backend prog;
    { cost; dnc = None; iters = []; crashed = [] }
  with
  | Memstate.Oom reason -> { cost; dnc = Some reason; iters = []; crashed = [] }
  | Error.Error ({ Error.phase = Error.Recovery; _ } as e) ->
      (* A fault that recovery could not absorb (retries exhausted, or no
         surviving node).  Like OOM it is a property of the run, not a bug:
         report a DNC cell.  Other [Error.Error] phases keep escaping. *)
      {
        cost;
        dnc = Some ("fault recovery exhausted: " ^ Error.to_string e);
        iters = [];
        crashed = Option.to_list e.Error.node;
      }

let time_of r = match r.dnc with Some _ -> None | None -> Some (Cost.total r.cost)

(* ------------------------------------------------------------------ *)
(* Warm-start execution contexts                                       *)
(* ------------------------------------------------------------------ *)

module Context = struct
  type ctx = {
    problem : problem;
    cache : Cache.t option;
    out_name : string;
    pristine_out : Operand.data;
        (** the output operand's state at context creation, restored before
            every iteration after the first so each iteration computes
            exactly what a single application computes *)
    mutable ran : bool;  (** a previous [run] left results in the output *)
  }

  let create ?(cache = true) ?shared_cache p =
    let out_name = p.stmt.Tin.lhs.Tin.tensor in
    {
      problem = p;
      cache =
        (match shared_cache with
        | Some c -> Some c
        | None -> if cache then Some (Cache.create ()) else None);
      out_name;
      pristine_out =
        Operand.copy_data (Operand.find (bindings p) out_name).Operand.data;
      ran = false;
    }

  let cache_stats ctx = Option.map Cache.stats ctx.cache

  (* Cold path: placement, lowering and dependent partitioning, with the
     partitioning work tallied for the cost model. *)
  let build ~trace ~backend ~key ctx =
    let p = ctx.problem in
    let b = bindings p in
    let stats = Part_eval.stats () in
    let placement =
      Trace.with_wall_span trace ~track:(host_track ()) ~cat:"phase"
        ~name:"placement" (fun () ->
          List.map
            (fun (name, _, tdn) ->
              ( name,
                Placement.of_tdn ~stats ~machine:p.machine ~bindings:b name tdn
              ))
            p.operands)
    in
    let prog = compile ~trace p in
    let prepared = Interp.prepare ~trace ~backend ~bindings:b prog in
    Part_eval.accum_stats stats prepared.Interp.pp_penv;
    let launches = List.length prepared.Interp.pp_loops in
    {
      Cache.e_key = key;
      e_placement = placement;
      e_prog = prog;
      e_prepared = prepared;
      e_launches = launches;
      e_part_seconds = Cache.partition_seconds p.machine stats;
      e_part_ops = stats.Part_eval.s_parts + stats.Part_eval.s_dep_ops;
      e_part_elems = stats.Part_eval.s_dep_elems;
      e_bytes =
        Cache.approx_bytes
          ~pieces:(Machine.pieces p.machine)
          ~launches ~part_elems:stats.Part_eval.s_dep_elems;
      e_hits = 0;
    }

  let run ?(uvm = false) ?domains ?faults ?trace ?leaf_backend
      ?(iterations = 1) ctx =
    if iterations < 1 then
      Error.fail Error.Config "iterations must be >= 1 (got %d)" iterations;
    let p = ctx.problem in
    let trace = match trace with Some t -> t | None -> Trace.default () in
    let b = bindings p in
    let cost = Cost.create () in
    set_run_meta trace p;
    if Trace.enabled trace then
      Trace.set_meta trace "iterations" (string_of_int iterations);
    let fcfg =
      let c = match faults with Some c -> c | None -> Fault.default () in
      if Fault.enabled c then Some c else None
    in
    let key =
      lazy
        (Cache.digest ~machine:p.machine ~operands:p.operands ~stmt:p.stmt
           ~schedule:p.schedule)
    in
    let stats = ref [] in
    let crashed_acc = ref [] in
    let finish dnc =
      {
        cost;
        dnc;
        iters = List.rev !stats;
        crashed = List.sort_uniq compare !crashed_acc;
      }
    in
    let was_run = ctx.ran in
    ctx.ran <- true;
    try
      let memstate = Memstate.create p.machine ~uvm in
      for i = 0 to iterations - 1 do
        if i > 0 || was_run then
          (Operand.find b ctx.out_name).Operand.data <-
            Operand.copy_data ctx.pristine_out;
        let before = Cost.copy cost in
        let t_start = Cost.total cost in
        let backend =
          match leaf_backend with
          | Some b -> b
          | None -> Compile_leaf.default_backend ()
        in
        let status, entry =
          match ctx.cache with
          | None -> (`Uncached, build ~trace ~backend ~key:"" ctx)
          | Some c -> (
              let key = Lazy.force key in
              match Cache.find c key with
              | Some e -> (`Hit, e)
              | None ->
                  let e = build ~trace ~backend ~key ctx in
                  Cache.add c e;
                  (`Miss, e))
        in
        (* A hit prepared under the other backend keeps its partitions and
           respecializes only the leaves. *)
        if entry.Cache.e_prepared.Interp.pp_backend <> backend then
          entry.Cache.e_prepared <-
            Interp.relink ~trace ~bindings:b ~backend entry.Cache.e_prepared;
        if Trace.enabled trace then
          Trace.span trace ~track:Trace.Runtime ~clock:Trace.Sim ~cat:"cache"
            ~args:[ ("iteration", Trace.I i) ]
            ~start:t_start ~dur:0.
            (match status with
            | `Hit -> "cache_hit"
            | `Miss -> "cache_miss"
            | `Uncached -> "cache_bypass");
        (if status = `Uncached then
           let m = Metrics.default () in
           if Metrics.enabled m then
             Metrics.inc m
               ~help:"iterations that skipped the launch-plan cache"
               "spdistal_cache_bypass_total");
        (* Dependent partitioning is charged only when it actually ran: on
           the cold miss (and on every iteration of an uncached run).  Warm
           iterations reuse the cached partitions for free — the paper's
           (and Legion's) amortization. *)
        if status <> `Hit then begin
          Cost.add_partitioning cost ~ops:entry.Cache.e_part_ops
            entry.Cache.e_part_seconds;
          if Trace.enabled trace then
            Trace.span trace ~track:Trace.Runtime ~clock:Trace.Sim
              ~cat:"partition"
              ~args:
                [
                  ("iteration", Trace.I i);
                  ("dep_ops", Trace.I entry.Cache.e_part_ops);
                  ("elems", Trace.I entry.Cache.e_part_elems);
                ]
              ~start:t_start ~dur:entry.Cache.e_part_seconds
              "dependent_partitioning"
        end;
        Interp.run ~machine:p.machine ~bindings:b
          ~placement:entry.Cache.e_placement ~memstate ~cost ?domains ?faults
          ~trace
          ~prepared:entry.Cache.e_prepared
          ~launch_base:(i * entry.Cache.e_launches)
          entry.Cache.e_prog;
        if Trace.enabled trace then
          Trace.span trace ~track:Trace.Runtime ~clock:Trace.Sim
            ~cat:"iteration"
            ~args:
              [
                ("iteration", Trace.I i);
                ( "cache",
                  Trace.S
                    (match status with
                    | `Hit -> "hit"
                    | `Miss -> "miss"
                    | `Uncached -> "bypass") );
                ( "partition_seconds",
                  Trace.F
                    (if status = `Hit then 0. else entry.Cache.e_part_seconds)
                );
              ]
            ~start:t_start
            ~dur:(Cost.total cost -. t_start)
            "iteration";
        (* Live cache pressure on its own counter track, sampled once per
           iteration (sim clock, so the series is deterministic). *)
        (if Trace.enabled trace then
           match ctx.cache with
           | Some c ->
               let s = Cache.stats c in
               Trace.counter trace ~name:"cache_bytes" ~time:(Cost.total cost)
                 [
                   ("bytes", float_of_int s.Cache.bytes);
                   ("entries", float_of_int s.Cache.entries);
                 ]
           | None -> ());
        stats :=
          { it_index = i; it_cache = status; it_cost = Cost.diff cost before }
          :: !stats;
        (* A node crash during this iteration leaves cached placements
           naming dead slots: validate survivors and drop the entry so the
           next iteration re-partitions (and pays for it).  Crashes are
           also reported to the caller — a serving front-end blacklists
           repeat offenders across jobs. *)
        match fcfg with
        | Some cfg ->
            let crashed =
              List.init entry.Cache.e_launches (fun l ->
                  Fault.crashed_nodes cfg ~machine:p.machine
                    ~launch:((i * entry.Cache.e_launches) + l))
              |> List.concat |> List.sort_uniq compare
            in
            if crashed <> [] then begin
              crashed_acc := crashed @ !crashed_acc;
              match ctx.cache with
              | Some c ->
                  Cache.invalidate c ~machine:p.machine ~crashed
                    (Lazy.force key);
                  if Trace.enabled trace then
                    Trace.span trace ~track:Trace.Runtime ~clock:Trace.Sim
                      ~cat:"cache"
                      ~args:
                        [
                          ("iteration", Trace.I i);
                          ("crashed_nodes", Trace.I (List.length crashed));
                        ]
                      ~start:(Cost.total cost) ~dur:0. "cache_invalidate"
              | None -> ()
            end
        | None -> ()
      done;
      finish None
    with
    | Memstate.Oom reason -> finish (Some reason)
    | Error.Error ({ Error.phase = Error.Recovery; _ } as e) ->
        (match e.Error.node with
        | Some n -> crashed_acc := n :: !crashed_acc
        | None -> ());
        finish (Some ("fault recovery exhausted: " ^ Error.to_string e))
end

(* [iterations = None] is the legacy single-shot protocol: one timed
   steady-state iteration, partitioning at setup and uncharged.  Asking for
   an explicit iteration count switches to the warm-start protocol: a fresh
   execution context runs [n] iterations end-to-end, the cold first
   iteration paying (and every warm one skipping) dependent partitioning. *)
let run ?uvm ?domains ?faults ?trace ?leaf_backend ?iterations ?(cache = true)
    p =
  match iterations with
  | None -> run_once ?uvm ?domains ?faults ?trace ?leaf_backend p
  | Some n ->
      Context.run ?uvm ?domains ?faults ?trace ?leaf_backend ~iterations:n
        (Context.create ~cache p)
