open Spdistal_runtime
open Spdistal_ir
open Spdistal_exec

type problem = {
  machine : Machine.t;
  operands : (string * Operand.slot * Tdn.t) list;
  stmt : Tin.stmt;
  schedule : Schedule.t;
}

let machine ?params ~kind grid = Machine.make ?params ~kind grid

let problem ~machine ~operands ~stmt ~schedule =
  { machine; operands; stmt; schedule }

let bindings p = List.map (fun (n, s, _) -> (n, s)) p.operands

module Trace = Spdistal_obs.Trace

let host_track () = Trace.Host (Domain.self () :> int)

let compile ?trace p =
  let trace = match trace with Some t -> t | None -> Trace.default () in
  Trace.with_wall_span trace ~track:(host_track ()) ~cat:"phase" ~name:"lower"
    (fun () ->
      let env = Operand.env_of_bindings (bindings p) in
      Lower.lower ~env ~grid:p.machine.Machine.grid p.stmt p.schedule)

let show p = Pretty.prog_to_string (compile p)

type run_result = { cost : Cost.t; dnc : string option }

let run ?(uvm = false) ?domains ?faults ?trace p =
  let trace = match trace with Some t -> t | None -> Trace.default () in
  let b = bindings p in
  let cost = Cost.create () in
  if Trace.enabled trace then begin
    Trace.set_meta trace "kernel" p.stmt.Tin.lhs.Tin.tensor;
    Trace.set_meta trace "proc_kind"
      (match p.machine.Machine.kind with Machine.Cpu -> "cpu" | Machine.Gpu -> "gpu");
    Trace.set_meta trace "pieces" (string_of_int (Machine.pieces p.machine))
  end;
  try
    let placement =
      Trace.with_wall_span trace ~track:(host_track ()) ~cat:"phase"
        ~name:"placement" (fun () ->
          List.map
            (fun (name, _, tdn) ->
              (name, Placement.of_tdn ~machine:p.machine ~bindings:b name tdn))
            p.operands)
    in
    let prog = compile ~trace p in
    let memstate = Memstate.create p.machine ~uvm in
    Interp.run ~machine:p.machine ~bindings:b ~placement ~memstate ~cost
      ?domains ?faults ~trace prog;
    { cost; dnc = None }
  with
  | Memstate.Oom reason -> { cost; dnc = Some reason }
  | Error.Error ({ Error.phase = Error.Recovery; _ } as e) ->
      (* A fault that recovery could not absorb (retries exhausted, or no
         surviving node).  Like OOM it is a property of the run, not a bug:
         report a DNC cell.  Other [Error.Error] phases keep escaping. *)
      { cost; dnc = Some ("fault recovery exhausted: " ^ Error.to_string e) }

let time_of r = match r.dnc with Some _ -> None | None -> Some (Cost.total r.cost)
