open Spdistal_runtime
open Spdistal_ir
open Spdistal_exec

type problem = {
  machine : Machine.t;
  operands : (string * Operand.slot * Tdn.t) list;
  stmt : Tin.stmt;
  schedule : Schedule.t;
}

let machine ?params ~kind grid = Machine.make ?params ~kind grid

let problem ~machine ~operands ~stmt ~schedule =
  { machine; operands; stmt; schedule }

let bindings p = List.map (fun (n, s, _) -> (n, s)) p.operands

let compile p =
  let env = Operand.env_of_bindings (bindings p) in
  Lower.lower ~env ~grid:p.machine.Machine.grid p.stmt p.schedule

let show p = Pretty.prog_to_string (compile p)

type run_result = { cost : Cost.t; dnc : string option }

let run ?(uvm = false) ?domains ?faults p =
  let b = bindings p in
  let cost = Cost.create () in
  try
    let placement =
      List.map
        (fun (name, _, tdn) ->
          (name, Placement.of_tdn ~machine:p.machine ~bindings:b name tdn))
        p.operands
    in
    let prog = compile p in
    let memstate = Memstate.create p.machine ~uvm in
    Interp.run ~machine:p.machine ~bindings:b ~placement ~memstate ~cost
      ?domains ?faults prog;
    { cost; dnc = None }
  with
  | Memstate.Oom reason -> { cost; dnc = Some reason }
  | Error.Error ({ Error.phase = Error.Recovery; _ } as e) ->
      (* A fault that recovery could not absorb (retries exhausted, or no
         surviving node).  Like OOM it is a property of the run, not a bug:
         report a DNC cell.  Other [Error.Error] phases keep escaping. *)
      { cost; dnc = Some ("fault recovery exhausted: " ^ Error.to_string e) }

let time_of r = match r.dnc with Some _ -> None | None -> Some (Cost.total r.cost)
