(** SpDISTAL's user-facing API, mirroring the paper's Fig. 1 program shape:
    declare a machine, declare tensors with formats and data distributions,
    state the computation in tensor index notation, schedule it, then
    compile and run.

    {[
      let m = Spdistal.machine ~kind:Machine.Cpu [| pieces |] in
      let problem =
        Spdistal.problem ~machine:m
          ~operands:
            [
              ("a", Operand.vec a, Tdn.Blocked { tensor_dim = 0; machine_dim = 0 });
              ("B", Operand.sparse b, Tdn.Blocked { tensor_dim = 0; machine_dim = 0 });
              ("c", Operand.vec c, Tdn.Replicated);
            ]
          ~stmt:Tin.spmv ~schedule:(Kernels.spmv_row ())
      in
      let prog = Spdistal.compile problem in
      let res = Spdistal.run problem
    ]} *)

open Spdistal_runtime
open Spdistal_ir
open Spdistal_exec

(** A fully-specified distributed computation. *)
type problem = {
  machine : Machine.t;
  operands : (string * Operand.slot * Tdn.t) list;
  stmt : Tin.stmt;
  schedule : Schedule.t;
}

val machine : ?params:Machine.params -> kind:Machine.proc_kind -> int array -> Machine.t

val problem :
  machine:Machine.t ->
  operands:(string * Operand.slot * Tdn.t) list ->
  stmt:Tin.stmt ->
  schedule:Schedule.t ->
  problem

(** Lower the problem to its partitioning-and-compute program (Fig. 9).
    [trace] (default {!Spdistal_obs.Trace.default}) gets a host-clock
    "lower" phase span. *)
val compile : ?trace:Spdistal_obs.Trace.t -> problem -> Loop_ir.prog

(** Render the compiled program as paper-style pseudo-code. *)
val show : problem -> string

type run_result = {
  cost : Cost.t;  (** simulated time of one timed iteration *)
  dnc : string option;
      (** [Some reason] when the run OOMed or fault recovery was exhausted
          (a DNC cell) *)
}

(** Execute one timed iteration: materializes data distributions, runs the
    distributed program (real numerics), returns simulated cost.  On OOM the
    result carries [dnc] and the outputs are unspecified.  [domains] bounds
    the OCaml domains used to simulate pieces concurrently (default
    {!Spdistal_runtime.Machine.sim_domains}); it affects wall-clock only —
    costs and outputs are bit-identical at every degree.

    [faults] (default {!Spdistal_runtime.Fault.default}) injects a
    deterministic fault schedule and prices Legion-style recovery into the
    cost; outputs stay bit-identical to the fault-free run.  When recovery
    is exhausted (a fault recurring past [max_retries]) the run reports a
    DNC instead of raising.

    [trace] (default {!Spdistal_obs.Trace.default}) records the whole run:
    compile/placement phase spans on the host clock and every runtime event
    on the simulated clock (see {!Spdistal_exec.Interp.run}).  Tracing never
    changes outputs or cost. *)
val run :
  ?uvm:bool ->
  ?domains:int ->
  ?faults:Fault.config ->
  ?trace:Spdistal_obs.Trace.t ->
  problem ->
  run_result

(** Simulated seconds, or [None] on DNC. *)
val time_of : run_result -> float option

(** Bindings view of a problem's operands (for validation in tests). *)
val bindings : problem -> Operand.bindings
