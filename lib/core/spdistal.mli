(** SpDISTAL's user-facing API, mirroring the paper's Fig. 1 program shape:
    declare a machine, declare tensors with formats and data distributions,
    state the computation in tensor index notation, schedule it, then
    compile and run.

    {[
      let m = Spdistal.machine ~kind:Machine.Cpu [| pieces |] in
      let problem =
        Spdistal.problem ~machine:m
          ~operands:
            [
              ("a", Operand.vec a, Tdn.Blocked { tensor_dim = 0; machine_dim = 0 });
              ("B", Operand.sparse b, Tdn.Blocked { tensor_dim = 0; machine_dim = 0 });
              ("c", Operand.vec c, Tdn.Replicated);
            ]
          ~stmt:Tin.spmv ~schedule:(Kernels.spmv_row ())
      in
      let prog = Spdistal.compile problem in
      let res = Spdistal.run problem
    ]} *)

open Spdistal_runtime
open Spdistal_ir
open Spdistal_exec

(** A fully-specified distributed computation. *)
type problem = {
  machine : Machine.t;
  operands : (string * Operand.slot * Tdn.t) list;
  stmt : Tin.stmt;
  schedule : Schedule.t;
}

val machine : ?params:Machine.params -> kind:Machine.proc_kind -> int array -> Machine.t

val problem :
  machine:Machine.t ->
  operands:(string * Operand.slot * Tdn.t) list ->
  stmt:Tin.stmt ->
  schedule:Schedule.t ->
  problem

(** [with_schedule p ~schedule ~tdns] is [p] with the schedule replaced and
    each operand's TDN overridden by its entry in [tdns] (operands absent
    from [tdns] keep theirs).  The operand {e slots} are shared with [p], so
    outputs land in the same bindings — this is how the auto-scheduler
    re-plans a problem without re-binding data. *)
val with_schedule :
  problem -> schedule:Schedule.t -> tdns:(string * Tdn.t) list -> problem

(** Lower the problem to its partitioning-and-compute program (Fig. 9).
    [trace] (default {!Spdistal_obs.Trace.default}) gets a host-clock
    "lower" phase span. *)
val compile : ?trace:Spdistal_obs.Trace.t -> problem -> Loop_ir.prog

(** Render the compiled program as paper-style pseudo-code. *)
val show : problem -> string

(** How one warm-start iteration obtained its launch plan: [`Miss] built and
    cached it (paying dependent partitioning), [`Hit] reused the cache for
    free, [`Uncached] rebuilt it with caching disabled (paying every time). *)
type cache_status = [ `Hit | `Miss | `Uncached ]

type iter_stat = {
  it_index : int;
  it_cache : cache_status;
  it_cost : Cost.t;
      (** this iteration's cost delta; [it_cost.partitioning] is non-zero
          exactly when the iteration was cold *)
}

type run_result = {
  cost : Cost.t;  (** simulated time of one timed iteration *)
  dnc : string option;
      (** [Some reason] when the run OOMed or fault recovery was exhausted
          (a DNC cell) *)
  iters : iter_stat list;
      (** per-iteration statistics of a warm-start ([?iterations]) run, in
          iteration order; empty on the legacy single-shot protocol *)
  crashed : int list;
      (** nodes that crashed during a warm-start run (sorted, deduplicated):
          transient crashes recovery absorbed, plus the node whose repeated
          crashes exhausted recovery when [dnc] is set.  Empty on the legacy
          single-shot protocol.  A serving front-end uses this to blacklist
          repeat offenders. *)
}

(** Execute one timed iteration: materializes data distributions, runs the
    distributed program (real numerics), returns simulated cost.  On OOM the
    result carries [dnc] and the outputs are unspecified.  [domains] bounds
    the OCaml domains used to simulate pieces concurrently (default
    {!Spdistal_runtime.Machine.sim_domains}); it affects wall-clock only —
    costs and outputs are bit-identical at every degree.

    [faults] (default {!Spdistal_runtime.Fault.default}) injects a
    deterministic fault schedule and prices Legion-style recovery into the
    cost; outputs stay bit-identical to the fault-free run.  When recovery
    is exhausted (a fault recurring past [max_retries]) the run reports a
    DNC instead of raising.

    [leaf_backend] (default {!Spdistal_exec.Compile_leaf.default_backend},
    i.e. the CLI's [--leaf-backend] or [SPDISTAL_LEAF_BACKEND], else the
    compiled backend) selects how leaf kernels execute: [Compiled] runs the
    monomorphized per-(format × expression) closures, [Interp] the
    reference interpreter.  Outputs, launch records and cost are
    bit-identical across backends.

    [trace] (default {!Spdistal_obs.Trace.default}) records the whole run:
    compile/placement phase spans on the host clock and every runtime event
    on the simulated clock (see {!Spdistal_exec.Interp.run}).  Tracing never
    changes outputs or cost.

    [iterations] switches to the {e warm-start protocol}: a fresh
    {!Context} executes the kernel [n] times end-to-end.  The cold first
    iteration pays dependent partitioning (charged into
    [cost.partitioning]); warm iterations reuse the cached partitions,
    placements and lowered program for the price of the index launches
    alone — Legion's amortization for iterative solvers.  [cache] (default
    true; the CLI's [--no-cache]) disables the cache, so {e every}
    iteration rebuilds and pays — the uncached baseline of the amortization
    curve.  Outputs and per-iteration launch costs are bit-identical with
    and without the cache; the output operand is restored to its pristine
    state before each iteration after the first, so the final outputs equal
    a single application's. *)
val run :
  ?uvm:bool ->
  ?domains:int ->
  ?faults:Fault.config ->
  ?trace:Spdistal_obs.Trace.t ->
  ?leaf_backend:Compile_leaf.backend ->
  ?iterations:int ->
  ?cache:bool ->
  problem ->
  run_result

(** Simulated seconds, or [None] on DNC. *)
val time_of : run_result -> float option

(** Warm-start execution contexts: the cache-carrying handle behind
    [run ?iterations].  Create one per problem and call {!Context.run}
    repeatedly to keep partitions warm {e across} calls (the first call's
    first iteration is the only cold one, until a fault invalidates). *)
module Context : sig
  type ctx

  (** [create ?cache ?shared_cache p] snapshots [p]'s output operand and
      allocates the partition/kernel cache ([cache] defaults to true;
      [false] = always rebuild, the [--no-cache] baseline).
      [shared_cache] overrides both: the context joins an existing cache —
      the serving front-end passes one cache to every tenant's contexts so
      all jobs share one LRU byte budget.  Entries of {e distinct} problems
      never collide (digests differ), but note that a cache hit replays
      prepared closures bound to the operand slots of the context that
      built the entry, so contexts sharing a cache must be the unique
      owners of their problem instances. *)
  val create : ?cache:bool -> ?shared_cache:Spdistal_exec.Cache.t -> problem -> ctx

  (** Hit/miss/invalidation counters, [None] when caching is disabled. *)
  val cache_stats : ctx -> Spdistal_exec.Cache.stats option

  (** Execute [iterations] (default 1) warm-start iterations; see
      {!Spdistal.run}'s [?iterations] documentation.  Each iteration [i]
      draws fault coordinates at launch indices [i * launches-per-iteration
      ..], identical with and without the cache; a node crash invalidates
      the cached entry (validating surviving slots via
      {!Spdistal_exec.Placement.remap_piece}), so the next iteration
      re-partitions and is charged for it. *)
  val run :
    ?uvm:bool ->
    ?domains:int ->
    ?faults:Fault.config ->
    ?trace:Spdistal_obs.Trace.t ->
    ?leaf_backend:Compile_leaf.backend ->
    ?iterations:int ->
    ctx ->
    run_result
end

(** Bindings view of a problem's operands (for validation in tests). *)
val bindings : problem -> Operand.bindings
