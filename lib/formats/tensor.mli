(** Sparse tensors as stacks of level formats over shared regions — the
    distributed sparse tensor encoding of paper §III-B (Fig. 7).

    Levels are stored in {e storage order}; [mode_order.(k)] names the logical
    tensor dimension stored at level [k] (CSR: [[|0;1|]], CSC: [[|1;0|]]).
    Values live in a [vals] region indexed by the leaf level's positions. *)

open Spdistal_runtime

type t = {
  name : string;
  dims : int array;  (** logical dimension sizes *)
  mode_order : int array;  (** storage level -> logical dimension *)
  levels : Level.t array;  (** one per level, storage order *)
  vals : Region.F.t;  (** Bigarray-backed value buffer, leaf-position indexed *)
}

val order : t -> int

(** Stored (leaf) value count. For tensors with a compressed leaf this is the
    non-zero count. *)
val nnz : t -> int

(** Total storage footprint in bytes (levels + values). *)
val bytes : t -> int

(** Position extent of level [k] (number of level-[k] positions). *)
val level_extent : t -> int -> int

(** {1 Construction} *)

(** [of_coo ~name ~formats ?mode_order coo] assembles a tensor.  [formats]
    are per {e storage level}; the COO input is permuted by [mode_order]
    (default identity) before assembly and must then be deduplicated (it is
    sorted internally).  Pass [~assume_sorted:true] when the (permuted) input
    is already lexicographically sorted and duplicate-free to skip the sort —
    used by large generated workloads. *)
val of_coo :
  name:string ->
  formats:Level.kind array ->
  ?mode_order:int array ->
  ?assume_sorted:bool ->
  Coo.t ->
  t

(** Standard matrix formats. *)
val csr : name:string -> Coo.t -> t

val csc : name:string -> Coo.t -> t

(** All-dense tensor (paper's Dense vector / matrix formats). *)
val dense_of_coo : name:string -> Coo.t -> t

(** COO encoding (paper Fig. 3): a non-unique compressed row level holding
    every stored row coordinate, with Singleton levels for the remaining
    dimensions. *)
val coo_matrix : name:string -> Coo.t -> t

(** {1 Access} *)

(** [iter_nnz t f] calls [f logical_coords leaf_pos value] for every stored
    value in storage order.  [logical_coords] is reused between calls. *)
val iter_nnz : t -> (int array -> int -> float -> unit) -> unit

(** Lower back to COO (logical dimension order). Structural zeros stored by
    dense leaf levels are kept. *)
val to_coo : t -> Coo.t

(** [get t coords] is the stored value at logical [coords] (0 if absent). *)
val get : t -> int array -> float

(** Compressed-level accessors (raise [Invalid_argument] on dense levels). *)
val pos_of : t -> int -> (int * int) Region.t

val crd_of : t -> int -> int Region.t

(** [leaf_parent t p] is the parent position of leaf position [p] when the
    leaf level is compressed with a monotone [pos] (binary search). *)
val leaf_parent : t -> int -> int

val pp : Format.formatter -> t -> unit
