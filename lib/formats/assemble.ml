open Spdistal_runtime

type staged = { pos : (int * int) array; total : int }

let stage ~rows ~count =
  let pos = Array.make rows (0, -1) in
  let cursor = ref 0 in
  for r = 0 to rows - 1 do
    let c = count r in
    pos.(r) <- (!cursor, !cursor + c - 1);
    cursor := !cursor + c
  done;
  { pos; total = !cursor }

let fill st ~row_fill ~name ~dims =
  let crd = Array.make (max st.total 1) 0 in
  let vals = Array.make (max st.total 1) 0. in
  Array.iteri
    (fun r (lo, hi) ->
      let k = ref lo in
      let emit col v =
        if !k > hi then invalid_arg "Assemble.fill: row overflow";
        crd.(!k) <- col;
        vals.(!k) <- v;
        incr k
      in
      row_fill r emit;
      if !k <> hi + 1 then invalid_arg "Assemble.fill: row underflow")
    st.pos;
  {
    Tensor.name;
    dims;
    mode_order = [| 0; 1 |];
    levels =
      [|
        Level.Dense { dim = Array.length st.pos };
        Level.Compressed
          {
            pos = Region.of_array (name ^ ".pos") st.pos;
            crd = Region.of_array (name ^ ".crd") (Array.sub crd 0 (max st.total 1));
          };
      |];
    vals = Region.F.of_array (name ^ ".vals") (Array.sub vals 0 (max st.total 1));
  }

let copy_pattern ~name ?levels (src : Tensor.t) =
  let keep = match levels with Some k -> k | None -> Array.length src.levels in
  if keep <= 0 || keep > Array.length src.levels then
    invalid_arg "Assemble.copy_pattern";
  let levels = Array.sub src.levels 0 keep in
  let mode_order = Array.sub src.mode_order 0 keep in
  (* The kept modes must form a prefix permutation so logical dims make
     sense on their own. *)
  Array.iter
    (fun m -> if m >= keep then invalid_arg "Assemble.copy_pattern: mode order")
    mode_order;
  let dims = Array.init keep (fun d -> src.dims.(d)) in
  let extent =
    Array.fold_left
      (fun e l -> Level.extent ~parent_extent:e l)
      1 levels
  in
  {
    Tensor.name;
    dims;
    mode_order;
    levels;
    vals = Region.F.create (name ^ ".vals") (max extent 1) 0.;
  }
