open Spdistal_runtime

type t = {
  name : string;
  dims : int array;
  mode_order : int array;
  levels : Level.t array;
  vals : Region.F.t;
}

let order t = Array.length t.dims
let nnz t = Region.F.extent t.vals

let bytes t =
  Array.fold_left (fun n l -> n + Level.bytes l) 0 t.levels
  + Region.F.bytes t.vals

let level_extent t k =
  let e = ref 1 in
  for i = 0 to k do
    e := Level.extent ~parent_extent:!e t.levels.(i)
  done;
  !e

let identity n = Array.init n (fun i -> i)

let of_coo ~name ~formats ?mode_order ?(assume_sorted = false) coo =
  let ord = Coo.order coo in
  if Array.length formats <> ord then invalid_arg "Tensor.of_coo: format arity";
  let mode_order = match mode_order with Some p -> p | None -> identity ord in
  let coo =
    let permuted = Coo.permute coo mode_order in
    if assume_sorted then permuted else Coo.sort_dedup permuted
  in
  let n = Coo.nnz coo in
  let dims_storage = coo.Coo.dims in
  (* [pp.(i)] is non-zero [i]'s position at the level under construction. *)
  let pp = Array.make (max n 1) 0 in
  let parent_extent = ref 1 in
  let levels =
    Array.init ord (fun k ->
        let coord i = coo.Coo.coords.(k).(i) in
        match formats.(k) with
        | Level.Dense_k ->
            let dim = dims_storage.(k) in
            for i = 0 to n - 1 do
              pp.(i) <- (pp.(i) * dim) + coord i
            done;
            parent_extent := !parent_extent * dim;
            Level.Dense { dim }
        | Level.Singleton_k ->
            (* One coordinate per parent position: positions pass through.
               Requires unique parent positions (a COO-style non-unique
               ancestor). *)
            for i = 1 to n - 1 do
              if pp.(i) = pp.(i - 1) then
                invalid_arg
                  "Tensor.of_coo: Singleton level under shared parent \
                   positions"
            done;
            (* Exactly one slot per parent position — notably zero slots for
               an empty parent level.  A [max 1] guard here used to mint a
               phantom position on empty tensors, whose partitions then
               escaped the sibling crd regions (found by the fuzzer). *)
            let crd = Array.make !parent_extent 0 in
            for i = 0 to n - 1 do
              crd.(pp.(i)) <- coord i
            done;
            Level.Singleton { crd = Region.of_array (name ^ ".crd") crd }
        | Level.Compressed_k | Level.Compressed_nonunique_k ->
            (* Distinct (parent position, coordinate) pairs appear as
               consecutive runs because the COO is lexicographically sorted
               and parent positions are monotone in sorted order.  The
               non-unique variant (COO row levels) keeps every entry as its
               own position instead of collapsing runs. *)
            let unique = formats.(k) = Level.Compressed_k in
            let firsts = Array.make !parent_extent (-1) in
            let lasts = Array.make !parent_extent (-1) in
            let crd_rev = ref [] and count = ref 0 in
            let cur_parent = ref (-1) and cur_coord = ref (-1) in
            for i = 0 to n - 1 do
              let p = pp.(i) and c = coord i in
              if (not unique) || p <> !cur_parent || c <> !cur_coord then begin
                let j = !count in
                incr count;
                crd_rev := c :: !crd_rev;
                if firsts.(p) < 0 then firsts.(p) <- j;
                lasts.(p) <- j;
                cur_parent := p;
                cur_coord := c
              end;
              pp.(i) <- !count - 1
            done;
            let crd = Array.of_list (List.rev !crd_rev) in
            (* Normalize empty parents to monotone empty ranges so that
               position lookups can binary search. *)
            let pos = Array.make !parent_extent (0, -1) in
            let cursor = ref 0 in
            for p = 0 to !parent_extent - 1 do
              if firsts.(p) < 0 then pos.(p) <- (!cursor, !cursor - 1)
              else begin
                pos.(p) <- (firsts.(p), lasts.(p));
                cursor := lasts.(p) + 1
              end
            done;
            parent_extent := !count;
            Level.Compressed
              {
                pos = Region.of_array (name ^ ".pos") pos;
                crd = Region.of_array (name ^ ".crd") crd;
              })
  in
  let vals = Array.make !parent_extent 0. in
  for i = 0 to n - 1 do
    vals.(pp.(i)) <- vals.(pp.(i)) +. coo.Coo.vals.(i)
  done;
  let dims = Array.make ord 0 in
  Array.iteri (fun k logical -> dims.(logical) <- dims_storage.(k)) mode_order;
  { name; dims; mode_order; levels; vals = Region.F.of_array (name ^ ".vals") vals }

let csr ~name coo =
  of_coo ~name ~formats:[| Level.Dense_k; Level.Compressed_k |] coo

let csc ~name coo =
  of_coo ~name
    ~formats:[| Level.Dense_k; Level.Compressed_k |]
    ~mode_order:[| 1; 0 |] coo

let dense_of_coo ~name coo =
  of_coo ~name ~formats:(Array.map (fun _ -> Level.Dense_k) coo.Coo.dims) coo

let coo_matrix ~name coo =
  let formats =
    Array.mapi
      (fun i _ ->
        if i = 0 then Level.Compressed_nonunique_k else Level.Singleton_k)
      coo.Coo.dims
  in
  of_coo ~name ~formats coo

let iter_nnz t f =
  let ord = order t in
  let coords = Array.make ord 0 in
  let rec go k parent_pos =
    if k = ord then f coords parent_pos (Region.F.get t.vals parent_pos)
    else
      match t.levels.(k) with
      | Level.Dense { dim } ->
          for c = 0 to dim - 1 do
            coords.(t.mode_order.(k)) <- c;
            go (k + 1) ((parent_pos * dim) + c)
          done
      | Level.Compressed { pos; crd } ->
          let lo, hi = Region.get pos parent_pos in
          for p = lo to hi do
            coords.(t.mode_order.(k)) <- Region.get crd p;
            go (k + 1) p
          done
      | Level.Singleton { crd } ->
          coords.(t.mode_order.(k)) <- Region.get crd parent_pos;
          go (k + 1) parent_pos
  in
  if nnz t > 0 then go 0 0

let to_coo t =
  let acc = ref [] in
  iter_nnz t (fun c _ v -> acc := (Array.copy c, v) :: !acc);
  Coo.make t.dims (List.rev !acc)

let get t coords =
  let ord = order t in
  if Array.length coords <> ord then invalid_arg "Tensor.get";
  let rec go k parent_pos =
    if k = ord then Region.F.get t.vals parent_pos
    else
      let c = coords.(t.mode_order.(k)) in
      match t.levels.(k) with
      | Level.Dense { dim } ->
          if c < 0 || c >= dim then invalid_arg "Tensor.get: out of bounds"
          else go (k + 1) ((parent_pos * dim) + c)
      | Level.Compressed { pos; crd } -> (
          let lo, hi = Region.get pos parent_pos in
          (* Binary search for [c] in the sorted slice crd[lo..hi]. *)
          let rec bs lo hi =
            if lo > hi then None
            else
              let mid = (lo + hi) / 2 in
              let v = Region.get crd mid in
              if v = c then Some mid else if v < c then bs (mid + 1) hi else bs lo (mid - 1)
          in
          match bs lo hi with
          | None -> 0.
          | Some p ->
              (* Non-unique levels (COO rows) store duplicate coordinates:
                 descend through the whole run of equal values.  At most one
                 full path matches, so summing is exact. *)
              let first = ref p in
              while !first > lo && Region.get crd (!first - 1) = c do
                decr first
              done;
              let acc = ref 0. and q = ref !first in
              while !q <= hi && Region.get crd !q = c do
                acc := !acc +. go (k + 1) !q;
                incr q
              done;
              !acc)
      | Level.Singleton { crd } ->
          if Region.get crd parent_pos = c then go (k + 1) parent_pos else 0.
  in
  if nnz t = 0 then 0. else go 0 0

let pos_of t k =
  match t.levels.(k) with
  | Level.Compressed { pos; _ } -> pos
  | Level.Dense _ | Level.Singleton _ ->
      invalid_arg "Tensor.pos_of: level has no pos region"

let crd_of t k =
  match t.levels.(k) with
  | Level.Compressed { crd; _ } | Level.Singleton { crd } -> crd
  | Level.Dense _ -> invalid_arg "Tensor.crd_of: dense level"

let leaf_parent t p =
  let leaf = Array.length t.levels - 1 in
  match t.levels.(leaf) with
  | Level.Singleton _ -> p
  | Level.Dense _ | Level.Compressed _ ->
  let pos = pos_of t leaf in
  let n = Region.extent pos in
  (* Binary search for the parent whose (monotone) range contains [p]. *)
  let rec bs lo hi =
    if lo > hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      let l, h = Region.get pos mid in
      if p < l then bs lo (mid - 1)
      else if p > h then bs (mid + 1) hi
      else mid
  in
  bs 0 (n - 1)

let pp fmt t =
  Format.fprintf fmt "@[<v>tensor %s: dims %a, levels [%a], %d stored@]" t.name
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "x")
       Format.pp_print_int)
    (Array.to_list t.dims)
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "; ")
       Level.pp)
    (Array.to_list t.levels)
    (nnz t)
