open Spdistal_runtime
open Spdistal_formats
module A1 = Bigarray.Array1

type result = { time : float; dnc : string option }

let ok time = { time; dnc = None }
let dnc reason = { time = infinity; dnc = Some reason }

(* Row range [lo, hi) of block [b] out of [blocks] over [rows]. *)
let block_range rows blocks b =
  (b * rows / blocks, (b + 1) * rows / blocks)

let row_block_nnz (t : Tensor.t) ~blocks =
  if Tensor.order t < 2 then invalid_arg "Common.row_block_nnz";
  let rows = t.Tensor.dims.(0) in
  let counts = Array.make blocks 0 in
  (* Count stored leaf values per row by walking level-0 position spans.
     For (Dense, Compressed, ...) tensors, a row's leaf count is the extent
     difference across the level-1 pos entries it owns; recurse generically
     by walking each level's pos. *)
  (* Count leaves under the position range [plo..phi] of level [lvl]. *)
  let rec count_below lvl plo phi =
    if lvl >= Tensor.order t then phi - plo + 1
    else
      match t.Tensor.levels.(lvl) with
      | Level.Dense { dim } ->
          count_below (lvl + 1) (plo * dim) (((phi + 1) * dim) - 1)
      | Level.Compressed { pos; _ } ->
          let l1, _ = Region.get pos plo and _, h2 = Region.get pos phi in
          if h2 < l1 then 0 else count_below (lvl + 1) l1 h2
      | Level.Singleton _ -> count_below (lvl + 1) plo phi
  in
  let row_leaf_count =
    match t.Tensor.levels.(1) with
    | Level.Compressed { pos; _ } ->
        fun r ->
          let lo, hi = Region.get pos r in
          if hi < lo then 0 else count_below 2 lo hi
    | Level.Singleton _ -> fun r -> count_below 2 r r
    | Level.Dense _ ->
        (* Dense second level (e.g. "patents"): uniform per row. *)
        let per_row = Tensor.nnz t / max 1 t.Tensor.dims.(0) in
        fun _ -> per_row
  in
  for r = 0 to rows - 1 do
    let b = min (blocks - 1) (r * blocks / rows) in
    counts.(b) <- counts.(b) + row_leaf_count r
  done;
  counts

let fiber_block_nnz (t : Tensor.t) ~blocks =
  if Tensor.order t < 3 then invalid_arg "Common.fiber_block_nnz";
  let fibers = Tensor.level_extent t 1 in
  let counts = Array.make blocks 0 in
  let leaf_count =
    match t.Tensor.levels.(2) with
    | Level.Compressed { pos; _ } ->
        fun f ->
          let lo, hi = Region.get pos f in
          if hi < lo then 0 else hi - lo + 1
    | Level.Dense { dim } -> fun _ -> dim
    | Level.Singleton _ -> fun _ -> 1
  in
  for f = 0 to fibers - 1 do
    let b = min (blocks - 1) (f * blocks / fibers) in
    counts.(b) <- counts.(b) + leaf_count f
  done;
  counts

let row_block_ghosts (t : Tensor.t) ~blocks =
  if Tensor.order t <> 2 then invalid_arg "Common.row_block_ghosts";
  let rows = t.Tensor.dims.(0) and cols = t.Tensor.dims.(1) in
  let pos = (Tensor.pos_of t 1).Region.data in
  let crd = (Tensor.crd_of t 1).Region.data in
  let ghosts = Array.make blocks 0 in
  for b = 0 to blocks - 1 do
    let rlo, rhi = block_range rows blocks b in
    let clo, chi = block_range cols blocks b in
    let seen = Hashtbl.create 64 in
    for r = rlo to rhi - 1 do
      let lo, hi = pos.(r) in
      for p = lo to hi do
        let c = crd.(p) in
        if (c < clo || c >= chi) && not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          ghosts.(b) <- ghosts.(b) + 1
        end
      done
    done
  done;
  ghosts

(* The scaled analogs are ~4x denser than the originals (dimension scale
   cannot match non-zero scale), so a row block touches a ~4x larger
   fraction of the vector universe than at full size.  Ghost/Import volumes
   are corrected by this factor to keep communication-to-compute ratios
   faithful. *)
let ghost_density_correction = 0.25

let share_time machine ~den ~flops ~bytes =
  let den = float_of_int den in
  let rate, bw =
    match machine.Machine.kind with
    | Machine.Cpu ->
        (machine.Machine.params.cpu_flops /. den, machine.Machine.params.cpu_mem_bw /. den)
    | Machine.Gpu ->
        (machine.Machine.params.gpu_flops /. den, machine.Machine.params.gpu_mem_bw /. den)
  in
  Float.max (flops /. rate) (bytes /. bw)

(* --- sequential kernels ------------------------------------------------ *)

let seq_spmv (b : Tensor.t) (x : Dense.vec) (y : Dense.vec) =
  let pos = (Tensor.pos_of b 1).Region.data in
  let crd = (Tensor.crd_of b 1).Region.data in
  let vals = b.Tensor.vals.Region.F.data in
  let xd = x.Dense.data and yd = y.Dense.data in
  for r = 0 to b.Tensor.dims.(0) - 1 do
    let lo, hi = pos.(r) in
    let acc = ref 0. in
    for p = lo to hi do
      acc := !acc +. (A1.get vals p *. xd.(crd.(p)))
    done;
    yd.(r) <- yd.(r) +. !acc
  done

let seq_spmm (b : Tensor.t) (c : Dense.mat) (a : Dense.mat) =
  let pos = (Tensor.pos_of b 1).Region.data in
  let crd = (Tensor.crd_of b 1).Region.data in
  let vals = b.Tensor.vals.Region.F.data in
  let cols = c.Dense.cols in
  for r = 0 to b.Tensor.dims.(0) - 1 do
    let lo, hi = pos.(r) in
    for p = lo to hi do
      let k = crd.(p) and v = A1.get vals p in
      for j = 0 to cols - 1 do
        a.Dense.data.((r * cols) + j) <-
          a.Dense.data.((r * cols) + j) +. (v *. c.Dense.data.((k * cols) + j))
      done
    done
  done

let seq_add3 ~name (b : Tensor.t) (c : Tensor.t) (d : Tensor.t) =
  let rows = b.Tensor.dims.(0) and cols = b.Tensor.dims.(1) in
  let ops =
    List.map
      (fun (t : Tensor.t) ->
        ((Tensor.pos_of t 1).Region.data, (Tensor.crd_of t 1).Region.data, t.Tensor.vals.Region.F.data))
      [ b; c; d ]
  in
  let merge_row r emit =
    let cursors =
      List.map
        (fun (pos, crd, vals) ->
          let lo, hi = pos.(r) in
          (ref lo, hi, crd, vals))
        ops
    in
    let rec step () =
      let mincol =
        List.fold_left
          (fun m (i, hi, crd, _) -> if !i <= hi then min m crd.(!i) else m)
          max_int cursors
      in
      if mincol < max_int then begin
        let sum = ref 0. in
        List.iter
          (fun (i, hi, crd, vals) ->
            while !i <= hi && crd.(!i) = mincol do
              sum := !sum +. A1.get vals !i;
              incr i
            done)
          cursors;
        emit mincol !sum;
        step ()
      end
    in
    step ()
  in
  let counts = Array.make rows 0 in
  for r = 0 to rows - 1 do
    merge_row r (fun _ _ -> counts.(r) <- counts.(r) + 1)
  done;
  let st = Assemble.stage ~rows ~count:(fun r -> counts.(r)) in
  Assemble.fill st
    ~row_fill:(fun r emit -> merge_row r emit)
    ~name ~dims:[| rows; cols |]

let seq_sddmm (b : Tensor.t) (c : Dense.mat) (d : Dense.mat) (a : Tensor.t) =
  let pos = (Tensor.pos_of b 1).Region.data in
  let crd = (Tensor.crd_of b 1).Region.data in
  let vals = b.Tensor.vals.Region.F.data in
  let av = a.Tensor.vals.Region.F.data in
  let kk = c.Dense.cols in
  for r = 0 to b.Tensor.dims.(0) - 1 do
    let lo, hi = pos.(r) in
    for p = lo to hi do
      let j = crd.(p) in
      let acc = ref 0. in
      for k = 0 to kk - 1 do
        acc := !acc +. (c.Dense.data.((r * kk) + k) *. d.Dense.data.((k * d.Dense.cols) + j))
      done;
      A1.set av p (A1.get av p +. (A1.get vals p *. !acc))
    done
  done

let seq_spttv (b : Tensor.t) (c : Dense.vec) (a : Tensor.t) =
  (* b is (Dense, Compressed, Compressed); a shares the first two levels. *)
  let pos2 = (Tensor.pos_of b 2).Region.data in
  let crd2 = (Tensor.crd_of b 2).Region.data in
  let vals = b.Tensor.vals.Region.F.data in
  let av = a.Tensor.vals.Region.F.data in
  let cd = c.Dense.data in
  for q = 0 to Array.length pos2 - 1 do
    let lo, hi = pos2.(q) in
    let acc = ref 0. in
    for p = lo to hi do
      acc := !acc +. (A1.get vals p *. cd.(crd2.(p)))
    done;
    A1.set av q (A1.get av q +. !acc)
  done

let seq_mttkrp (b : Tensor.t) (c : Dense.mat) (d : Dense.mat) (a : Dense.mat) =
  let cols = a.Dense.cols in
  Tensor.iter_nnz b (fun coords _ v ->
      let i = coords.(0) and j = coords.(1) and k = coords.(2) in
      for l = 0 to cols - 1 do
        a.Dense.data.((i * cols) + l) <-
          a.Dense.data.((i * cols) + l)
          +. (v *. c.Dense.data.((j * cols) + l) *. d.Dense.data.((k * cols) + l))
      done)
