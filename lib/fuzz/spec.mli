(** Serializable fuzz-case descriptions spanning all four sub-languages.

    A {!t} is a pure value: the TIN statement shape, the driver tensor's
    level formats and mode order, each operand's data distribution (TDN), the
    schedule, the machine shape, the host simulation degree and an optional
    fault schedule.  It materializes deterministically into a runnable
    {!Core.Spdistal.problem} via {!build}, and round-trips through the
    one-line seed spec ({!to_string} / {!of_string}) that reproducers and the
    regression corpus quote. *)

open Spdistal_formats
open Spdistal_ir

type dense_kind = Dvec | Dmat

type factor = { f_name : string; f_kind : dense_kind; f_vars : string list }

type out_spec =
  | Out_dense of { o_name : string; o_kind : dense_kind; o_vars : string list }
  | Out_sparse_prefix of { o_name : string; depth : int }
  | Out_sparse_merge of { o_name : string }

type sched_spec =
  | S_universe of { var : string; par : bool }
  | S_nnz of { fuse : int; par : bool }
  | S_batched of { par : bool }

type tdn_spec = T_rep | T_block of int | T_fused | T_pos of int | T_tiled

type t = {
  vars : (string * int) list;
  driver : string;
  driver_vars : string list;
  driver_kinds : Level.kind array;
  driver_mode : int array;
  density : float;
  dseed : int;
  merge_extra : int;
  factors : factor list;
  lit : float option;
  out : out_spec;
  sched : sched_spec;
  tdns : (string * tdn_spec) list;
  gpu : bool;
  grid : int array;
  domains : int;
  faults : (int * float) option;
  workspace : bool;
  auto : bool;
      (** also run the case through the auto-scheduler and check the chosen
          schedule agrees with the spec's own (the auto-vs-hand property) *)
}

val dim : t -> string -> int
val is_merge : t -> bool
val merge_names : t -> string list
val out_name : t -> string
val operand_names : t -> string list
val operand_count : t -> int

(** The TIN statement the case states. *)
val stmt : t -> Tin.stmt

(** The schedule the case applies. *)
val schedule : t -> Schedule.t

(** Materialize deterministically (same spec -> bit-identical operands). *)
val build : t -> Core.Spdistal.problem

(** One-line seed spec, e.g.
    [vars=i:4,j:7;driver=B:i.j:dc:01:0.25:7;out=a:v:i;sched=u:i:1;tdn=a:b0,B:b0;grid=4]. *)
val to_string : t -> string

val of_string : string -> (t, string) result
val of_string_exn : string -> t
val equal : t -> t -> bool
