(** Bit-exact snapshots of problem operands and costs.

    Every dense payload and sparse level region is captured via
    [Int64.bits_of_float] / array copies, so {!equal} is bit-for-bit
    equality — the currency of the determinism, domain-invariance and
    fault-invariance properties. *)

open Spdistal_runtime

type t

(** Snapshot every operand of the problem (post-run: call after
    [Spdistal.run]). *)
val outputs : Core.Spdistal.problem -> t

(** Snapshot all fields of a cost record. *)
val cost : Cost.t -> t

val equal : t -> t -> bool
