(* Bit-exact snapshots of a problem's operand storage and of a Cost record,
   used to assert PR-1/PR-2 invariants: outputs and costs are bit-identical
   across simulation degrees and under fault injection. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_exec
open Core

type level_snap = D of int | C of (int * int) array * int array | S of int array

type data_snap =
  | Dense of int64 array
  | Sparse of int array * level_snap array * int64 array

type t =
  | Outputs of (string * data_snap) list
  | Cost_sig of
      (int64 * int64 * int64 * int64 * int64 * int * int * int64 * int64 * int)

let bits = Array.map Int64.bits_of_float

let snap_data = function
  | Operand.Vec v -> Dense (bits v.Dense.data)
  | Operand.Mat m -> Dense (bits m.Dense.data)
  | Operand.Sparse t ->
      Sparse
        ( t.Tensor.dims,
          Array.map
            (function
              | Level.Dense { dim } -> D dim
              | Level.Compressed { pos; crd } ->
                  C (Array.copy pos.Region.data, Array.copy crd.Region.data)
              | Level.Singleton { crd } -> S (Array.copy crd.Region.data))
            t.Tensor.levels,
          bits (Region.F.to_array t.Tensor.vals) )

let outputs p =
  Outputs
    (List.map
       (fun (name, _, _) ->
         (name, snap_data (Operand.find (Spdistal.bindings p) name).Operand.data))
       p.Spdistal.operands)

let cost (c : Cost.t) =
  Cost_sig
    ( Int64.bits_of_float c.Cost.total,
      Int64.bits_of_float c.Cost.compute,
      Int64.bits_of_float c.Cost.comm,
      Int64.bits_of_float c.Cost.overhead,
      Int64.bits_of_float c.Cost.bytes_moved,
      c.Cost.messages,
      c.Cost.launches,
      Int64.bits_of_float c.Cost.flops,
      Int64.bits_of_float c.Cost.partitioning,
      c.Cost.part_ops )

let equal (a : t) (b : t) = a = b
