(* A fuzz case is a pure, serializable description drawing from all four
   sub-languages: the statement shape (TIN), the driver's level formats, the
   per-operand data distributions (TDN), and the schedule — plus the machine
   shape, the host simulation degree and an optional fault schedule.  [build]
   materializes it into a runnable problem deterministically; [to_string] /
   [of_string] round-trip it as the one-line seed spec reproducers quote. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec
open Core

type dense_kind = Dvec | Dmat

type factor = { f_name : string; f_kind : dense_kind; f_vars : string list }

type out_spec =
  | Out_dense of { o_name : string; o_kind : dense_kind; o_vars : string list }
  | Out_sparse_prefix of { o_name : string; depth : int }
      (** pattern-preserving output sharing the driver's first [depth]
          levels (§V-B); requires an identity driver mode order *)
  | Out_sparse_merge of { o_name : string }
      (** unknown-pattern output of an additive merge, assembled two-phase *)

type sched_spec =
  | S_universe of { var : string; par : bool }
  | S_nnz of { fuse : int; par : bool }
      (** fuse the first [fuse] driver vars, then position-split the driver *)
  | S_batched of { par : bool }
      (** 2-D distribution: rows of the driver x the dense inner variable *)

type tdn_spec = T_rep | T_block of int | T_fused | T_pos of int | T_tiled

type t = {
  vars : (string * int) list;  (** index variable -> dimension size *)
  driver : string;
  driver_vars : string list;
  driver_kinds : Level.kind array;
  driver_mode : int array;
  density : float;
  dseed : int;  (** seed of the driver's (and merge inputs') coordinates *)
  merge_extra : int;  (** 0 = product statement; n>0 = merge of 1+n inputs *)
  factors : factor list;  (** dense factors of a product *)
  lit : float option;  (** literal coefficient multiplied into the product *)
  out : out_spec;
  sched : sched_spec;
  tdns : (string * tdn_spec) list;  (** per-operand data distribution *)
  gpu : bool;
  grid : int array;
  domains : int;  (** host simulation degree checked against domains=1 *)
  faults : (int * float) option;  (** fault schedule (seed, rate) to inject *)
  workspace : bool;  (** Precompute: merge via dense workspace *)
  auto : bool;  (** also auto-schedule the case and check agreement *)
}

let dim spec v =
  match List.assoc_opt v spec.vars with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Spec: unbound variable %s" v)

let is_merge spec = spec.merge_extra > 0

let merge_names spec =
  List.init spec.merge_extra (fun i -> String.make 1 (Char.chr (Char.code 'C' + i)))

let out_name spec =
  match spec.out with
  | Out_dense { o_name; _ }
  | Out_sparse_prefix { o_name; _ }
  | Out_sparse_merge { o_name } ->
      o_name

let operand_names spec =
  (out_name spec :: spec.driver :: [])
  @ (if is_merge spec then merge_names spec
     else List.map (fun f -> f.f_name) spec.factors)

let operand_count spec = List.length (operand_names spec)

(* ------------------------------------------------------------------ *)
(* Statement and schedule                                              *)
(* ------------------------------------------------------------------ *)

let out_vars spec =
  match spec.out with
  | Out_dense { o_vars; _ } -> o_vars
  | Out_sparse_prefix { depth; _ } ->
      List.filteri (fun i _ -> i < depth) spec.driver_vars
  | Out_sparse_merge _ -> spec.driver_vars

let stmt spec =
  let rhs =
    if is_merge spec then
      List.fold_left
        (fun e name -> Tin.(e + access name spec.driver_vars))
        (Tin.access spec.driver spec.driver_vars)
        (merge_names spec)
    else
      let base = Tin.access spec.driver spec.driver_vars in
      let with_factors =
        List.fold_left
          (fun e f -> Tin.(e * access f.f_name f.f_vars))
          base spec.factors
      in
      match spec.lit with
      | None -> with_factors
      | Some l -> Tin.(with_factors * Lit l)
  in
  Tin.assign (out_name spec) (out_vars spec) rhs

let schedule spec =
  let tensors = operand_names spec in
  let par v =
    [
      Schedule.Parallelize
        {
          v;
          proc = (if spec.gpu then Schedule.Gpu_thread else Schedule.Cpu_thread);
        };
    ]
  in
  let base =
    match spec.sched with
    | S_universe { var; par = p } ->
        [
          Schedule.Divide { v = var; outer = var ^ "o"; inner = var ^ "i" };
          Schedule.Distribute [ var ^ "o" ];
          Schedule.Communicate { tensors; at = var ^ "o" };
        ]
        @ (if p then par (var ^ "i") else [])
    | S_nnz { fuse; par = p } ->
        let vars = List.filteri (fun i _ -> i < fuse) spec.driver_vars in
        let fuses, fused =
          match vars with
          | [] -> invalid_arg "Spec.schedule: nnz fuse arity"
          | [ v ] -> ([], v)
          | v0 :: rest ->
              List.fold_left
                (fun (cmds, prev) v ->
                  let f = prev ^ v in
                  (cmds @ [ Schedule.Fuse { f; a = prev; b = v } ], f))
                ([], v0) rest
        in
        fuses
        @ [
            Schedule.Pos { v = fused; pv = "fp"; tensor = spec.driver };
            Schedule.Divide { v = "fp"; outer = "fpo"; inner = "fpi" };
            Schedule.Distribute [ "fpo" ];
            Schedule.Communicate { tensors; at = "fpo" };
          ]
        @ (if p then par "fpi" else [])
    | S_batched { par = p } ->
        let d0 = List.hd spec.driver_vars in
        let e =
          match spec.out with
          | Out_dense { o_vars; _ } -> List.nth o_vars (List.length o_vars - 1)
          | _ -> invalid_arg "Spec.schedule: batched needs a dense output"
        in
        [
          Schedule.Divide { v = d0; outer = d0 ^ "o"; inner = d0 ^ "i" };
          Schedule.Divide { v = e; outer = e ^ "o"; inner = e ^ "i" };
          Schedule.Distribute [ d0 ^ "o"; e ^ "o" ];
          Schedule.Communicate { tensors; at = e ^ "o" };
        ]
        @ (if p then par (d0 ^ "i") else [])
  in
  base
  @
  if spec.workspace && is_merge spec then
    [
      Schedule.Precompute
        { v = List.nth spec.driver_vars 1; tensors = [ out_name spec ] };
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Operand materialization                                             *)
(* ------------------------------------------------------------------ *)

let gen_coo ~dims ~density ~seed =
  let r = Srng.create seed in
  let entries = ref [] in
  let rec cells prefix = function
    | [] ->
        if Srng.float r < density then begin
          let v = float_of_int (1 + Srng.int r 8) in
          let v = if Srng.int r 4 = 0 then -.v else v in
          entries := (Array.of_list (List.rev prefix), v) :: !entries
        end
    | d :: rest ->
        for x = 0 to d - 1 do
          cells (x :: prefix) rest
        done
  in
  cells [] dims;
  Coo.make (Array.of_list dims) (List.rev !entries)

let driver_dims spec = List.map (dim spec) spec.driver_vars

let driver_tensor spec ~name ~seed =
  let coo = gen_coo ~dims:(driver_dims spec) ~density:spec.density ~seed in
  Tensor.of_coo ~name ~formats:spec.driver_kinds ~mode_order:spec.driver_mode
    coo

let dense_val salt i = Kernels.dval ((salt * 7919) + i)

let tdn_of ~order = function
  | T_rep -> Tdn.Replicated
  | T_block d -> Tdn.Blocked { tensor_dim = d; machine_dim = 0 }
  | T_fused -> Tdn.Fused_non_zero { dims = List.init order Fun.id; machine_dim = 0 }
  | T_pos d -> Tdn.Non_zero { tensor_dim = d; machine_dim = 0 }
  | T_tiled -> Tdn.Tiled { mappings = [ (1, 1) ] }

let tdn_spec_of spec name =
  Option.value ~default:T_rep (List.assoc_opt name spec.tdns)

let build spec : Spdistal.problem =
  let machine =
    Spdistal.machine
      ~kind:(if spec.gpu then Machine.Gpu else Machine.Cpu)
      spec.grid
  in
  let driver_t = driver_tensor spec ~name:spec.driver ~seed:spec.dseed in
  let driver_order = List.length spec.driver_vars in
  let out_order = List.length (out_vars spec) in
  let out_slot =
    match spec.out with
    | Out_dense { o_name; o_kind = Dvec; o_vars } ->
        Operand.vec (Dense.vec_create o_name (dim spec (List.hd o_vars)))
    | Out_dense { o_name; o_kind = Dmat; o_vars } -> (
        match o_vars with
        | [ r; c ] ->
            Operand.mat (Dense.mat_create o_name (dim spec r) (dim spec c))
        | _ -> invalid_arg "Spec.build: dense matrix output needs two vars")
    | Out_sparse_prefix { o_name; depth } ->
        Operand.sparse (Assemble.copy_pattern ~name:o_name ~levels:depth driver_t)
    | Out_sparse_merge { o_name } ->
        let rows = dim spec (List.nth spec.driver_vars 0)
        and cols = dim spec (List.nth spec.driver_vars 1) in
        Operand.sparse (Tensor.csr ~name:o_name (Coo.make [| rows; cols |] []))
  in
  let with_tdn name order slot = (name, slot, tdn_of ~order (tdn_spec_of spec name)) in
  let rest =
    if is_merge spec then
      List.mapi
        (fun i name ->
          let t = driver_tensor { spec with driver_kinds = spec.driver_kinds }
              ~name ~seed:(spec.dseed + i + 1)
          in
          with_tdn name driver_order (Operand.sparse t))
        (merge_names spec)
    else
      List.mapi
        (fun i (f : factor) ->
          let salt = i + 1 in
          let slot =
            match (f.f_kind, f.f_vars) with
            | Dvec, [ v ] ->
                Operand.vec (Dense.vec_init f.f_name (dim spec v) (dense_val salt))
            | Dmat, [ r; c ] ->
                let cols = dim spec c in
                Operand.mat
                  (Dense.mat_init f.f_name (dim spec r) cols (fun x y ->
                       dense_val salt ((x * cols) + y)))
            | _ -> invalid_arg "Spec.build: factor arity"
          in
          let order = match f.f_kind with Dvec -> 1 | Dmat -> 2 in
          with_tdn f.f_name order slot)
        spec.factors
  in
  let operands =
    with_tdn (out_name spec) out_order out_slot
    :: with_tdn spec.driver driver_order (Operand.sparse driver_t)
    :: rest
  in
  Spdistal.problem ~machine ~operands ~stmt:(stmt spec) ~schedule:(schedule spec)

(* ------------------------------------------------------------------ *)
(* Serialization: the one-line seed spec                               *)
(* ------------------------------------------------------------------ *)

let kind_char = function
  | Level.Dense_k -> 'd'
  | Level.Compressed_k -> 'c'
  | Level.Compressed_nonunique_k -> 'n'
  | Level.Singleton_k -> 's'

let kind_of_char = function
  | 'd' -> Ok Level.Dense_k
  | 'c' -> Ok Level.Compressed_k
  | 'n' -> Ok Level.Compressed_nonunique_k
  | 's' -> Ok Level.Singleton_k
  | c -> Error (Printf.sprintf "bad level kind '%c'" c)

let dense_kind_str = function Dvec -> "v" | Dmat -> "m"

let tdn_str = function
  | T_rep -> "r"
  | T_block d -> Printf.sprintf "b%d" d
  | T_fused -> "f"
  | T_pos d -> Printf.sprintf "p%d" d
  | T_tiled -> "t"

(* Shortest decimal form that parses back to exactly the same float. *)
let fstr f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string spec =
  let b = Buffer.create 160 in
  let field k v = Buffer.add_string b (Printf.sprintf "%s=%s;" k v) in
  field "vars"
    (String.concat ","
       (List.map (fun (v, d) -> Printf.sprintf "%s:%d" v d) spec.vars));
  field "driver"
    (Printf.sprintf "%s:%s:%s:%s:%d" spec.driver
       (String.concat "." spec.driver_vars)
       ((Array.to_list spec.driver_kinds
        |> List.map (fun k -> String.make 1 (kind_char k))
        |> String.concat "")
       ^ ":"
       ^ (Array.to_list spec.driver_mode
         |> List.map string_of_int
         |> String.concat ""))
       (fstr spec.density) spec.dseed);
  if spec.merge_extra > 0 then field "merge" (string_of_int spec.merge_extra);
  if spec.factors <> [] then
    field "facts"
      (String.concat ","
         (List.map
            (fun f ->
              Printf.sprintf "%s:%s:%s" f.f_name (dense_kind_str f.f_kind)
                (String.concat "." f.f_vars))
            spec.factors));
  (match spec.lit with Some l -> field "lit" (fstr l) | None -> ());
  field "out"
    (match spec.out with
    | Out_dense { o_name; o_kind; o_vars } ->
        Printf.sprintf "%s:%s:%s" o_name (dense_kind_str o_kind)
          (String.concat "." o_vars)
    | Out_sparse_prefix { o_name; depth } -> Printf.sprintf "%s:p:%d" o_name depth
    | Out_sparse_merge { o_name } -> Printf.sprintf "%s:g" o_name);
  field "sched"
    (match spec.sched with
    | S_universe { var; par } -> Printf.sprintf "u:%s:%d" var (Bool.to_int par)
    | S_nnz { fuse; par } -> Printf.sprintf "n:%d:%d" fuse (Bool.to_int par)
    | S_batched { par } -> Printf.sprintf "b:%d" (Bool.to_int par));
  field "tdn"
    (String.concat ","
       (List.map (fun (n, t) -> Printf.sprintf "%s:%s" n (tdn_str t)) spec.tdns));
  if spec.gpu then field "gpu" "1";
  field "grid"
    (String.concat "x" (List.map string_of_int (Array.to_list spec.grid)));
  if spec.domains > 1 then field "dom" (string_of_int spec.domains);
  (match spec.faults with
  | Some (s, r) -> field "flt" (Printf.sprintf "%d:%s" s (fstr r))
  | None -> ());
  if spec.workspace then field "ws" "1";
  if spec.auto then field "at" "1";
  let s = Buffer.contents b in
  String.sub s 0 (String.length s - 1)

let split_on c s = String.split_on_char c s

let of_string line =
  let ( let* ) = Result.bind in
  let parse_int what s =
    match int_of_string_opt s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "bad %s %S" what s)
  in
  let parse_float what s =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad %s %S" what s)
  in
  let rec each f = function
    | [] -> Ok []
    | x :: rest ->
        let* y = f x in
        let* ys = each f rest in
        Ok (y :: ys)
  in
  let fields = split_on ';' (String.trim line) in
  let kvs = ref [] in
  let* () =
    List.fold_left
      (fun acc field ->
        let* () = acc in
        match String.index_opt field '=' with
        | Some i ->
            kvs :=
              ( String.sub field 0 i,
                String.sub field (i + 1) (String.length field - i - 1) )
              :: !kvs;
            Ok ()
        | None -> Error (Printf.sprintf "malformed field %S" field))
      (Ok ()) fields
  in
  let find k = List.assoc_opt k !kvs in
  let require k =
    match find k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %s" k)
  in
  let* vars_s = require "vars" in
  let* vars =
    each
      (fun vd ->
        match split_on ':' vd with
        | [ v; d ] ->
            let* d = parse_int "dimension" d in
            Ok (v, d)
        | _ -> Error (Printf.sprintf "bad vars entry %S" vd))
      (split_on ',' vars_s)
  in
  let* driver_s = require "driver" in
  let* driver, driver_vars, driver_kinds, driver_mode, density, dseed =
    match split_on ':' driver_s with
    | [ name; dvars; kinds; mode; dens; seed ] ->
        let* kinds =
          each kind_of_char (List.init (String.length kinds) (String.get kinds))
        in
        let* mode =
          each
            (fun c -> parse_int "mode digit" (String.make 1 c))
            (List.init (String.length mode) (String.get mode))
        in
        let* dens = parse_float "density" dens in
        let* seed = parse_int "dseed" seed in
        Ok
          ( name,
            split_on '.' dvars,
            Array.of_list kinds,
            Array.of_list mode,
            dens,
            seed )
    | _ -> Error (Printf.sprintf "bad driver field %S" driver_s)
  in
  let* merge_extra =
    match find "merge" with None -> Ok 0 | Some m -> parse_int "merge" m
  in
  let* factors =
    match find "facts" with
    | None -> Ok []
    | Some fs ->
        each
          (fun f ->
            match split_on ':' f with
            | [ f_name; "v"; vars ] ->
                Ok { f_name; f_kind = Dvec; f_vars = split_on '.' vars }
            | [ f_name; "m"; vars ] ->
                Ok { f_name; f_kind = Dmat; f_vars = split_on '.' vars }
            | _ -> Error (Printf.sprintf "bad factor %S" f))
          (split_on ',' fs)
  in
  let* lit =
    match find "lit" with
    | None -> Ok None
    | Some l ->
        let* l = parse_float "lit" l in
        Ok (Some l)
  in
  let* out_s = require "out" in
  let* out =
    match split_on ':' out_s with
    | [ o_name; "v"; vars ] ->
        Ok (Out_dense { o_name; o_kind = Dvec; o_vars = split_on '.' vars })
    | [ o_name; "m"; vars ] ->
        Ok (Out_dense { o_name; o_kind = Dmat; o_vars = split_on '.' vars })
    | [ o_name; "p"; depth ] ->
        let* depth = parse_int "depth" depth in
        Ok (Out_sparse_prefix { o_name; depth })
    | [ o_name; "g" ] -> Ok (Out_sparse_merge { o_name })
    | _ -> Error (Printf.sprintf "bad out field %S" out_s)
  in
  let* sched_s = require "sched" in
  let* sched =
    match split_on ':' sched_s with
    | [ "u"; var; p ] ->
        let* p = parse_int "par" p in
        Ok (S_universe { var; par = p <> 0 })
    | [ "n"; fuse; p ] ->
        let* fuse = parse_int "fuse" fuse in
        let* p = parse_int "par" p in
        Ok (S_nnz { fuse; par = p <> 0 })
    | [ "b"; p ] ->
        let* p = parse_int "par" p in
        Ok (S_batched { par = p <> 0 })
    | _ -> Error (Printf.sprintf "bad sched field %S" sched_s)
  in
  let* tdns =
    match find "tdn" with
    | None -> Ok []
    | Some ts ->
        each
          (fun entry ->
            match split_on ':' entry with
            | [ name; code ] -> (
                match code with
                | "r" -> Ok (name, T_rep)
                | "f" -> Ok (name, T_fused)
                | "t" -> Ok (name, T_tiled)
                | _ when String.length code = 2 && code.[0] = 'b' ->
                    let* d = parse_int "tdn dim" (String.make 1 code.[1]) in
                    Ok (name, T_block d)
                | _ when String.length code = 2 && code.[0] = 'p' ->
                    let* d = parse_int "tdn dim" (String.make 1 code.[1]) in
                    Ok (name, T_pos d)
                | _ -> Error (Printf.sprintf "bad tdn code %S" code))
            | _ -> Error (Printf.sprintf "bad tdn entry %S" entry))
          (split_on ',' ts)
  in
  let gpu = find "gpu" = Some "1" in
  let* grid_s = require "grid" in
  let* grid = each (parse_int "grid") (split_on 'x' grid_s) in
  let* domains =
    match find "dom" with None -> Ok 1 | Some d -> parse_int "dom" d
  in
  let* faults =
    match find "flt" with
    | None -> Ok None
    | Some f -> (
        match split_on ':' f with
        | [ s; r ] ->
            let* s = parse_int "fault seed" s in
            let* r = parse_float "fault rate" r in
            Ok (Some (s, r))
        | _ -> Error (Printf.sprintf "bad flt field %S" f))
  in
  let workspace = find "ws" = Some "1" in
  let auto = find "at" = Some "1" in
  Ok
    {
      vars;
      driver;
      driver_vars;
      driver_kinds;
      driver_mode;
      density;
      dseed;
      merge_extra;
      factors;
      lit;
      out;
      sched;
      tdns;
      gpu;
      grid = Array.of_list grid;
      domains;
      faults;
      workspace;
      auto;
    }

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error m -> invalid_arg ("Spec.of_string: " ^ m)

let equal (a : t) (b : t) = a = b
