(* The differential oracle.  One case exercises, in order:
   - round-trips: the spec line, the TIN statement and the schedule each
     re-parse to what they printed (the sub-language pretty-printers are
     load-bearing in reproducers, so they are checked on every case);
   - the full pipeline (Lower -> Part_eval -> Placement -> Interp) against
     the dense reference evaluator, within float tolerances;
   - build determinism: rebuilding and re-running is bit-identical;
   - backend equivalence: the compiled leaf closures and the reference
     interpreter produce bit-identical outputs and costs;
   - domain invariance: the host simulation degree never changes outputs or
     costs (PR-1 invariant);
   - fault invariance: an injected fault schedule never changes outputs
     (PR-2 invariant); runs that exhaust recovery report DNC, which is a
     legitimate outcome, not a failure. *)

open Spdistal_runtime
open Spdistal_exec
open Core

type failure = { prop : string; detail : string }

type verdict =
  | Pass
  | Skip of string  (** ran but produced nothing checkable (e.g. DNC) *)
  | Reject of string  (** compiler refused a case the generator emitted *)
  | Fail of failure

let rtol = 1e-9
let atol = 1e-12

type exec_result =
  | Ran of Cost.t
  | Dnc of string
  | Rejected of string
  | Crashed of string

let exec ?(domains = 1) ?(faults = Fault.disabled) ?leaf_backend p =
  match Spdistal.run ~domains ~faults ?leaf_backend p with
  | { cost; dnc = None; _ } -> Ran cost
  | { dnc = Some reason; _ } -> Dnc reason
  | exception Invalid_argument m -> Rejected m
  | exception Error.Error e -> (
      match e.Error.phase with
      | Error.Compile | Error.Config -> Rejected (Error.to_string e)
      | _ -> Crashed (Error.to_string e))
  | exception exn -> Crashed (Printexc.to_string exn)

let fail prop fmt = Printf.ksprintf (fun detail -> Fail { prop; detail }) fmt

let check_roundtrips spec =
  let line = Spec.to_string spec in
  match Spec.of_string line with
  | Error m -> fail "spec-roundtrip" "%S does not re-parse: %s" line m
  | Ok spec' when not (Spec.equal spec spec') ->
      fail "spec-roundtrip" "%S re-parses to %S" line (Spec.to_string spec')
  | Ok _ -> (
      let stmt = Spec.stmt spec in
      let s = Spdistal_ir.Tin.to_string stmt in
      match Spdistal_ir.Tin.of_string s with
      | Error m -> fail "tin-roundtrip" "%S does not re-parse: %s" s m
      | Ok stmt' when stmt' <> stmt ->
          fail "tin-roundtrip" "%S re-parses to %S" s
            (Spdistal_ir.Tin.to_string stmt')
      | Ok _ -> (
          let sched = Spec.schedule spec in
          let s = Spdistal_ir.Schedule.to_string sched in
          match Spdistal_ir.Schedule.of_string s with
          | Error m -> fail "schedule-roundtrip" "%S does not re-parse: %s" s m
          | Ok sched' when sched' <> sched ->
              fail "schedule-roundtrip" "%S re-parses to %S" s
                (Spdistal_ir.Schedule.to_string sched')
          | Ok _ -> Pass))

let faults_of spec =
  match spec.Spec.faults with
  | None -> Fault.disabled
  | Some (seed, rate) -> Fault.make ~seed ~rate ~retries:8 ()

exception Done of verdict

let run spec =
  let stop v = raise (Done v) in
  try
    (match check_roundtrips spec with Pass -> () | v -> stop v);
    let p =
      match Spec.build spec with
      | p -> p
      | exception Invalid_argument m -> stop (Reject ("build: " ^ m))
      | exception exn ->
          stop (Fail { prop = "build"; detail = Printexc.to_string exn })
    in
    let cost =
      match exec p with
      | Ran cost -> cost
      | Rejected m -> stop (Reject m)
      | Crashed m -> stop (Fail { prop = "pipeline"; detail = m })
      | Dnc reason -> stop (Skip ("DNC: " ^ reason))
    in
    (* differential check against the dense reference *)
    let cmp =
      Validate.compare ~rtol ~atol (Spdistal.bindings p) (Spec.stmt spec)
    in
    if not (Validate.ok cmp) then
      stop (fail "differential" "%s" (Validate.diff_to_string cmp));
    let base_out = Snapshot.outputs p in
    let base_cost = Snapshot.cost cost in
    (* rebuild determinism: a fresh build + run is bit-identical *)
    let p2 = Spec.build spec in
    (match exec p2 with
    | Ran cost2
      when Snapshot.equal base_out (Snapshot.outputs p2)
           && Snapshot.equal base_cost (Snapshot.cost cost2) ->
        ()
    | Ran _ ->
        stop (fail "rebuild-determinism" "fresh build + run is not bit-identical")
    | Dnc r -> stop (fail "rebuild-determinism" "DNC only on rebuild: %s" r)
    | Rejected m | Crashed m ->
        stop (fail "rebuild-determinism" "failed on rebuild: %s" m));
    (* backend equivalence: the compiled leaf closures and the reference
       interpreter must agree bit for bit — outputs, launch records (via the
       cost signature's launch counters) and Cost.  Run the case again under
       whichever backend the base run did not use. *)
    (let other =
       match Compile_leaf.default_backend () with
       | Compile_leaf.Compiled -> Compile_leaf.Interp
       | Compile_leaf.Interp -> Compile_leaf.Compiled
     in
     let p_b = Spec.build spec in
     match exec ~leaf_backend:other p_b with
     | Ran cost_b
       when Snapshot.equal base_out (Snapshot.outputs p_b)
            && Snapshot.equal base_cost (Snapshot.cost cost_b) ->
         ()
     | Ran _ ->
         stop
           (fail "backend-equivalence"
              "outputs or cost differ under the %s leaf backend"
              (Compile_leaf.backend_name other))
     | Dnc r ->
         stop
           (fail "backend-equivalence" "DNC only under the %s leaf backend: %s"
              (Compile_leaf.backend_name other) r)
     | Rejected m | Crashed m ->
         stop
           (fail "backend-equivalence" "failed under the %s leaf backend: %s"
              (Compile_leaf.backend_name other) m));
    (* domain invariance (PR-1) *)
    if spec.Spec.domains > 1 then begin
      let p3 = Spec.build spec in
      match exec ~domains:spec.Spec.domains p3 with
      | Ran cost3
        when Snapshot.equal base_out (Snapshot.outputs p3)
             && Snapshot.equal base_cost (Snapshot.cost cost3) ->
          ()
      | Ran _ ->
          stop
            (fail "domain-invariance" "outputs or cost differ at domains=%d"
               spec.Spec.domains)
      | Dnc r ->
          stop
            (fail "domain-invariance" "DNC only at domains=%d: %s"
               spec.Spec.domains r)
      | Rejected m | Crashed m ->
          stop
            (fail "domain-invariance" "failed at domains=%d: %s"
               spec.Spec.domains m)
    end;
    (* fault invariance (PR-2): outputs identical; DNC under faults is a
       legitimate outcome *)
    (match spec.Spec.faults with
    | None -> ()
    | Some _ -> (
        let p4 = Spec.build spec in
        match exec ~faults:(faults_of spec) p4 with
        | Ran _ when Snapshot.equal base_out (Snapshot.outputs p4) -> ()
        | Ran _ -> stop (fail "fault-invariance" "outputs differ under fault injection")
        | Dnc _ -> ()
        | Rejected m | Crashed m ->
            stop (fail "fault-invariance" "failed under fault injection: %s" m)));
    (* auto-vs-hand equivalence: whatever schedule the auto-scheduler picks
       for the same (machine, TIN, tensors), executing it must agree with
       the dense reference exactly as the spec's own schedule did.  No
       feasible candidate is a legitimate outcome (the hand schedule
       stands), and so is a DNC of the rescheduled run. *)
    (if spec.Spec.auto then
       let p5 = Spec.build spec in
       match Spdistal_opt.Auto.choose p5 with
       | None | (exception Invalid_argument _) -> ()
       | exception Error.Error _ -> ()
       | Some ch -> (
           match exec ch.Spdistal_opt.Auto.ch_problem with
           | Ran _ ->
               let cmp =
                 Validate.compare ~rtol ~atol
                   (Spdistal.bindings ch.Spdistal_opt.Auto.ch_problem)
                   (Spec.stmt spec)
               in
               if not (Validate.ok cmp) then
                 stop
                   (fail "auto-vs-hand" "auto schedule (%s) disagrees: %s"
                      ch.Spdistal_opt.Auto.ch_label
                      (Validate.diff_to_string cmp))
           | Dnc _ -> ()
           | Rejected m | Crashed m ->
               stop
                 (fail "auto-vs-hand" "auto schedule (%s) failed: %s"
                    ch.Spdistal_opt.Auto.ch_label m)));
    Pass
  with Done v -> v

let verdict_to_string = function
  | Pass -> "pass"
  | Skip m -> "skip: " ^ m
  | Reject m -> "reject: " ^ m
  | Fail { prop; detail } -> Printf.sprintf "FAIL [%s]: %s" prop detail
