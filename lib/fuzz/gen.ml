(* Random well-formed case generation.  Everything is driven by one splitmix64
   stream seeded from [seed + index * 1000003], so a (seed, index) pair fully
   determines the case.  The sampler only emits cases inside the leaf-fragment
   the compiler supports (one sparse driver per product, pure sums for merges,
   at most one non-driver variable); the checker treats compile-time rejects
   of generated cases as generator bugs. *)

open Spdistal_runtime
open Spdistal_formats

type params = {
  max_dim : int;  (** index-variable dimensions drawn from 1..max_dim *)
  max_pieces : int;  (** 1-D machine grids drawn from 1..max_pieces *)
  fault_prob : float;  (** probability a case carries a fault schedule *)
  gpu_prob : float;  (** probability the machine is a GPU machine *)
}

let default_params =
  { max_dim = 8; max_pieces = 6; fault_prob = 0.25; gpu_prob = 0.15 }

let pick r xs = List.nth xs (Srng.int r (List.length xs))

let chance r p = Srng.float r < p

(* Driver format pools: (level kinds, mode order).  Mode orders other than
   the identity (e.g. CSC) preclude pattern-sharing sparse outputs. *)
let formats2 =
  Level.
    [
      ([| Dense_k; Compressed_k |], [| 0; 1 |]);
      ([| Dense_k; Compressed_k |], [| 1; 0 |]);
      ([| Compressed_k; Compressed_k |], [| 0; 1 |]);
      ([| Dense_k; Dense_k |], [| 0; 1 |]);
      ([| Compressed_nonunique_k; Singleton_k |], [| 0; 1 |]);
      ([| Compressed_k; Dense_k |], [| 0; 1 |]);
    ]

let formats3 =
  Level.
    [
      ([| Dense_k; Compressed_k; Compressed_k |], [| 0; 1; 2 |]);
      ([| Compressed_k; Compressed_k; Compressed_k |], [| 0; 1; 2 |]);
      ([| Dense_k; Dense_k; Compressed_k |], [| 0; 1; 2 |]);
      ([| Compressed_nonunique_k; Singleton_k; Singleton_k |], [| 0; 1; 2 |]);
      ([| Dense_k; Compressed_k; Compressed_k |], [| 1; 0; 2 |]);
      ([| Dense_k; Compressed_nonunique_k; Singleton_k |], [| 0; 1; 2 |]);
    ]

let identity_mode mode = Array.to_list mode = List.init (Array.length mode) Fun.id

(* Data distributions valid for a given operand role. *)
let driver_tdns ~order ~identity =
  [ Spec.T_block 0; Spec.T_block 0; Spec.T_rep; Spec.T_fused ]
  @ (if order >= 2 then [ Spec.T_block (order - 1) ] else [])
  @ if identity then [ Spec.T_pos 0 ] else []

let dense_tdns = function
  | Spec.Dvec, _ -> [ Spec.T_rep; Spec.T_block 0 ]
  | Spec.Dmat, _ -> [ Spec.T_rep; Spec.T_block 0; Spec.T_block 1 ]

let sample_tdns r (spec : Spec.t) =
  let identity = identity_mode spec.driver_mode in
  let order = List.length spec.driver_vars in
  let for_out =
    match spec.out with
    | Spec.Out_dense { o_kind = Dvec; _ } -> [ Spec.T_rep; Spec.T_block 0 ]
    | Spec.Out_dense { o_kind = Dmat; _ } -> (
        match spec.sched with
        | Spec.S_batched _ -> [ Spec.T_block 0; Spec.T_tiled ]
        | _ -> [ Spec.T_rep; Spec.T_block 0; Spec.T_block 1 ])
    | Spec.Out_sparse_prefix { depth; _ } ->
        [ Spec.T_block 0; Spec.T_rep ] @ if depth >= 2 then [ Spec.T_fused ] else []
    | Spec.Out_sparse_merge _ -> [ Spec.T_block 0; Spec.T_rep ]
  in
  let entry name choices = (name, pick r choices) in
  entry (Spec.out_name spec) for_out
  :: entry spec.driver (driver_tdns ~order ~identity)
  :: (if Spec.is_merge spec then
        List.map
          (fun n -> entry n [ Spec.T_block 0; Spec.T_rep ])
          (Spec.merge_names spec)
      else
        List.map
          (fun (f : Spec.factor) -> entry f.f_name (dense_tdns (f.f_kind, f.f_vars)))
          spec.factors)

let sample_merge r ~params ~dseed =
  let max_dim = params.max_dim in
  let vars =
    [ ("i", 1 + Srng.int r max_dim); ("j", 1 + Srng.int r max_dim) ]
  in
  let merge_extra = 1 + Srng.int r 2 in
  let spec : Spec.t =
    {
      vars;
      driver = "B";
      driver_vars = [ "i"; "j" ];
      driver_kinds = [| Level.Dense_k; Level.Compressed_k |];
      driver_mode = [| 0; 1 |];
      density = 0.05 +. (0.45 *. Srng.float r);
      dseed;
      merge_extra;
      factors = [];
      lit = None;
      out = Spec.Out_sparse_merge { o_name = "A" };
      sched = Spec.S_universe { var = "i"; par = chance r 0.7 };
      tdns = [];
      gpu = false;
      grid = [| 1 + Srng.int r params.max_pieces |];
      domains = 1 + Srng.int r 3;
      faults = None;
      workspace = chance r 0.4;
      auto = chance r 0.3;
    }
  in
  { spec with tdns = sample_tdns r spec }

let var_names = [ "i"; "j"; "k" ]

let sample_product r ~params ~dseed =
  let max_dim = params.max_dim in
  let order = if chance r 0.35 then 3 else 2 in
  let driver_vars = List.filteri (fun i _ -> i < order) var_names in
  let vars = List.map (fun v -> (v, 1 + Srng.int r max_dim)) driver_vars in
  let driver_kinds, driver_mode =
    pick r (if order = 2 then formats2 else formats3)
  in
  let identity = identity_mode driver_mode in
  (* Optional extra variable beyond the driver's, either produced (batched
     dense dimension) or reduced (contraction with a dense factor). *)
  let extra =
    if chance r 0.4 then
      Some (("l", 1 + Srng.int r max_dim), chance r 0.5 (* true = output var *))
    else None
  in
  let vars =
    match extra with Some (vd, _) -> vars @ [ vd ] | None -> vars
  in
  let extra_var = Option.map (fun ((v, _), _) -> v) extra in
  let extra_is_out = match extra with Some (_, o) -> o | None -> false in
  (* Dense factors over driver vars plus the extra var.  A reduced extra var
     must be carried by at least one factor. *)
  let factor_names = [ "c"; "D"; "E" ] in
  let n_factors =
    match extra_var with
    | Some _ -> 1 + Srng.int r 2
    | None -> Srng.int r 3
  in
  let factor_vars i =
    match extra_var with
    | Some l when i = 0 ->
        (* carry the extra var; pair with a random driver var half the time *)
        if chance r 0.5 then [ pick r driver_vars; l ] else [ l ]
    | _ ->
        if chance r 0.5 then [ pick r driver_vars ]
        else
          let a = pick r driver_vars in
          let b = pick r (List.filter (fun v -> v <> a) driver_vars) in
          [ a; b ]
  in
  let factors =
    List.init n_factors (fun i ->
        let f_vars = factor_vars i in
        {
          Spec.f_name = List.nth factor_names i;
          f_kind = (if List.length f_vars = 1 then Spec.Dvec else Spec.Dmat);
          f_vars;
        })
  in
  let lit =
    if chance r 0.25 then Some (float_of_int (1 + Srng.int r 4) /. 2.) else None
  in
  let out =
    if extra_is_out then
      (* the extra var must appear in the output *)
      let l = Option.get extra_var in
      match Srng.int r 3 with
      | 0 -> Spec.Out_dense { o_name = "a"; o_kind = Spec.Dvec; o_vars = [ l ] }
      | 1 ->
          Spec.Out_dense
            { o_name = "A"; o_kind = Spec.Dmat; o_vars = [ pick r driver_vars; l ] }
      | _ ->
          Spec.Out_dense
            { o_name = "A"; o_kind = Spec.Dmat; o_vars = [ l; pick r driver_vars ] }
    else if identity && chance r 0.3 then
      Spec.Out_sparse_prefix { o_name = "A"; depth = 1 + Srng.int r order }
    else
      match Srng.int r 3 with
      | 0 ->
          Spec.Out_dense
            { o_name = "a"; o_kind = Spec.Dvec; o_vars = [ pick r driver_vars ] }
      | _ ->
          let v1 = pick r driver_vars in
          let v2 = pick r (List.filter (fun v -> v <> v1) driver_vars) in
          Spec.Out_dense { o_name = "A"; o_kind = Spec.Dmat; o_vars = [ v1; v2 ] }
  in
  let out_vs =
    match out with
    | Spec.Out_dense { o_vars; _ } -> o_vars
    | Spec.Out_sparse_prefix { depth; _ } ->
        List.filteri (fun i _ -> i < depth) driver_vars
    | Spec.Out_sparse_merge _ -> driver_vars
  in
  let batched_ok =
    (* batched 2-D distribution: dense matrix output whose last var is the
       extra (dense) variable *)
    match (out, extra_var) with
    | Spec.Out_dense { o_kind = Spec.Dmat; o_vars; _ }, Some l ->
        extra_is_out && List.nth o_vars 1 = l
    | _ -> false
  in
  let sparse_out = match out with Spec.Out_dense _ -> false | _ -> true in
  let sched =
    if batched_ok && chance r 0.5 then Spec.S_batched { par = chance r 0.7 }
    else if chance r 0.6 then
      (* universe distribution; with a sparse prefix output only output vars
         may be distributed (no reduction aliasing) *)
      let candidates = if sparse_out then out_vs else driver_vars in
      Spec.S_universe { var = pick r candidates; par = chance r 0.7 }
    else
      Spec.S_nnz { fuse = 1 + Srng.int r order; par = chance r 0.7 }
  in
  let grid =
    match sched with
    | Spec.S_batched _ -> [| 1 + Srng.int r 3; 1 + Srng.int r 3 |]
    | _ -> [| 1 + Srng.int r params.max_pieces |]
  in
  let spec : Spec.t =
    {
      vars;
      driver = "B";
      driver_vars;
      driver_kinds;
      driver_mode;
      density = 0.05 +. (0.45 *. Srng.float r);
      dseed;
      merge_extra = 0;
      factors;
      lit;
      out;
      sched;
      tdns = [];
      gpu = chance r params.gpu_prob;
      grid;
      domains = 1 + Srng.int r 3;
      faults = None;
      workspace = false;
      auto = chance r 0.3;
    }
  in
  { spec with tdns = sample_tdns r spec }

let case ?(params = default_params) ~seed index =
  let r = Srng.create (seed + (index * 1000003)) in
  let dseed = Srng.int r 1_000_000 in
  let spec =
    if chance r 0.2 then sample_merge r ~params ~dseed
    else sample_product r ~params ~dseed
  in
  let faults =
    if chance r params.fault_prob then
      Some (Srng.int r 100_000, 0.02 +. (0.1 *. Srng.float r))
    else None
  in
  { spec with faults }
