(** Campaign driver: generate, check, shrink, report.

    A campaign runs [count] generated cases from one seed, stops at the
    first failing case, minimizes it with {!Shrink.minimize} and packages a
    reproducer.  Corpus replay re-checks frozen regression specs. *)

type failure_case = {
  index : int;
  original : Spec.t;
  shrunk : Spec.t;
  failure : Check.failure;
  text : string;
}

type report = {
  total : int;
  passed : int;
  skipped : int;
  rejected : int;
  failure : failure_case option;
}

(** [run ~seed ~count ()].  [budget_seconds <= 0.] (default) means no time
    box; a positive budget stops the campaign (not mid-case) when CPU time
    exceeds it.  [progress] is invoked after each case. *)
val run :
  ?params:Gen.params ->
  ?progress:(index:int -> spec:Spec.t -> Check.verdict -> unit) ->
  ?budget_seconds:float ->
  ?shrink_steps:int ->
  seed:int ->
  count:int ->
  unit ->
  report

val report_to_string : report -> string

(** Check one serialized spec line. *)
val replay_line : string -> Check.verdict

(** Replay every spec line of every [*.case] file in [dir] (sorted);
    returns [(location, verdict)] pairs, where location is [file:line]. *)
val replay_corpus : dir:string -> (string * Check.verdict) list
