(* Greedy first-improvement shrinking.  [candidates] proposes simpler specs
   in priority order (structural simplifications first, then data-size
   reductions); [minimize] repeatedly takes the first candidate that still
   fails, until a fixpoint or the step budget runs out.  Candidates must stay
   well-formed: each transformation repairs dependent fields (schedules that
   reference dropped structure, TDNs of dropped operands, workspaces of
   un-merged statements). *)

open Spdistal_formats

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

(* Keep only TDN entries whose operand still exists. *)
let prune_tdns (spec : Spec.t) =
  let names = Spec.operand_names spec in
  { spec with tdns = List.filter (fun (n, _) -> List.mem n names) spec.tdns }

(* A universe schedule over the first driver variable is valid for every
   statement shape the generator emits (it is always an output variable of
   sparse-output cases). *)
let simplest_sched (spec : Spec.t) =
  Spec.S_universe { var = List.hd spec.driver_vars; par = false }

let candidates (spec : Spec.t) : Spec.t list =
  let structural =
    (* drop dense factors one at a time *)
    List.mapi
      (fun i _ -> prune_tdns { spec with factors = drop_nth i spec.factors })
      spec.factors
    (* drop the literal coefficient *)
    @ (match spec.lit with
      | Some _ -> [ { spec with lit = None } ]
      | None -> [])
    (* fewer merge inputs; reaching zero turns the merge into a pattern
       - preserving identity, whose output must become prefix-shaped and
       whose workspace request must go *)
    @ (if spec.merge_extra > 1 then
         [ prune_tdns { spec with merge_extra = spec.merge_extra - 1 } ]
       else if spec.merge_extra = 1 then
         [
           prune_tdns
             {
               spec with
               merge_extra = 0;
               out = Spec.Out_sparse_prefix { o_name = Spec.out_name spec; depth = 2 };
               workspace = false;
             };
         ]
       else [])
  in
  let sched =
    (match spec.sched with
    | Spec.S_universe { var; par = true } ->
        [ { spec with sched = Spec.S_universe { var; par = false } } ]
    | Spec.S_nnz { fuse; par } ->
        [ { spec with sched = simplest_sched spec; grid = [| spec.grid.(0) |] } ]
        @ (if par then [ { spec with sched = Spec.S_nnz { fuse; par = false } } ]
           else [])
        @
        if fuse > 1 then
          [ { spec with sched = Spec.S_nnz { fuse = fuse - 1; par } } ]
        else []
    | Spec.S_batched { par } ->
        [
          {
            spec with
            sched = simplest_sched spec;
            grid = [| Array.fold_left ( * ) 1 spec.grid |];
          };
        ]
        @
        if par then [ { spec with sched = Spec.S_batched { par = false } } ]
        else []
    | Spec.S_universe { par = false; _ } -> [])
  in
  let environment =
    (match spec.faults with Some _ -> [ { spec with faults = None } ] | None -> [])
    @ (if spec.domains > 1 then [ { spec with domains = 1 } ] else [])
    @ (if spec.gpu then [ { spec with gpu = false } ] else [])
    @
    let shrunk_grid = Array.map (fun g -> max 1 (g / 2)) spec.grid in
    if shrunk_grid <> spec.grid then [ { spec with grid = shrunk_grid } ] else []
  in
  let tdns =
    let all_rep = List.map (fun (n, _) -> (n, Spec.T_rep)) spec.tdns in
    (if List.exists (fun (_, t) -> t <> Spec.T_rep) spec.tdns then
       [ { spec with tdns = all_rep } ]
     else [])
    @ List.filter_map
        (fun (n, t) ->
          if t = Spec.T_rep then None
          else
            Some
              {
                spec with
                tdns =
                  List.map
                    (fun (n', t') -> if n' = n then (n', Spec.T_rep) else (n', t'))
                    spec.tdns;
              })
        spec.tdns
  in
  let formats =
    (* canonical CSR/CSF driver; only when the output does not share the
       driver's pattern levels in a way the canonical formats would change *)
    let order = List.length spec.driver_vars in
    let canonical, mode =
      if order = 2 then ([| Level.Dense_k; Level.Compressed_k |], [| 0; 1 |])
      else
        ( [| Level.Dense_k; Level.Compressed_k; Level.Compressed_k |],
          [| 0; 1; 2 |] )
    in
    if spec.driver_kinds <> canonical || spec.driver_mode <> mode then
      [ { spec with driver_kinds = canonical; driver_mode = mode } ]
    else []
  in
  let data =
    List.concat_map
      (fun (v, d) ->
        if d > 1 then
          [
            {
              spec with
              vars =
                List.map
                  (fun (v', d') -> if v' = v then (v', (d' + 1) / 2) else (v', d'))
                  spec.vars;
            };
          ]
        else [])
      spec.vars
    @
    if spec.density > 0.06 then
      [ { spec with density = spec.density /. 2. } ]
    else []
  in
  structural @ sched @ environment @ tdns @ formats @ data

let minimize ?(max_steps = 300) ~still_fails spec =
  let steps = ref 0 in
  let rec go spec =
    if !steps >= max_steps then spec
    else
      match
        List.find_opt
          (fun c ->
            incr steps;
            !steps <= max_steps && still_fails c)
          (candidates spec)
      with
      | Some smaller -> go smaller
      | None -> spec
  in
  go spec

let reproducer ~original ~shrunk (failure : Check.failure) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "property violated: %s\n%s\n\n" failure.Check.prop
       failure.Check.detail);
  Buffer.add_string b
    (Printf.sprintf "original spec:\n  %s\n" (Spec.to_string original));
  Buffer.add_string b
    (Printf.sprintf "shrunk spec:\n  %s\n\n" (Spec.to_string shrunk));
  Buffer.add_string b
    (Printf.sprintf "replay:\n  spdistal fuzz --replay '%s'\n\n"
       (Spec.to_string shrunk));
  Buffer.add_string b "OCaml reproducer:\n";
  Buffer.add_string b
    (Printf.sprintf
       "  let spec = Spdistal_fuzz.Spec.of_string_exn\n\
       \    %S in\n\
       \  match Spdistal_fuzz.Check.run spec with\n\
       \  | Spdistal_fuzz.Check.Pass -> print_endline \"fixed\"\n\
       \  | v -> print_endline (Spdistal_fuzz.Check.verdict_to_string v)\n"
       (Spec.to_string shrunk));
  Buffer.contents b
