(* Campaign driver: generate -> check -> (on failure) shrink -> report.
   Stops at the first failure; a campaign's job is to find one bug and hand
   back a minimal reproducer, not to enumerate every consequence of it. *)

type failure_case = {
  index : int;
  original : Spec.t;
  shrunk : Spec.t;
  failure : Check.failure;
  text : string;  (** the full reproducer report *)
}

type report = {
  total : int;
  passed : int;
  skipped : int;
  rejected : int;
  failure : failure_case option;
}

let shrink_failure ~max_steps index original failure =
  let still_fails spec =
    match Check.run spec with Check.Fail _ -> true | _ -> false
  in
  let shrunk = Shrink.minimize ~max_steps ~still_fails original in
  (* re-run the minimum to report its (possibly different) failure *)
  let failure =
    match Check.run shrunk with Check.Fail f -> f | _ -> failure
  in
  { index; original; shrunk; failure; text = Shrink.reproducer ~original ~shrunk failure }

let run ?(params = Gen.default_params) ?progress ?(budget_seconds = 0.)
    ?(shrink_steps = 300) ~seed ~count () =
  let t0 = Sys.time () in
  let passed = ref 0 and skipped = ref 0 and rejected = ref 0 in
  let total = ref 0 in
  let failure = ref None in
  let i = ref 0 in
  while
    !i < count
    && !failure = None
    && (budget_seconds <= 0. || Sys.time () -. t0 < budget_seconds)
  do
    let index = !i in
    let spec = Gen.case ~params ~seed index in
    let verdict = Check.run spec in
    incr total;
    (match progress with
    | Some f -> f ~index ~spec verdict
    | None -> ());
    (match verdict with
    | Check.Pass -> incr passed
    | Check.Skip _ -> incr skipped
    | Check.Reject _ -> incr rejected
    | Check.Fail f ->
        failure := Some (shrink_failure ~max_steps:shrink_steps index spec f));
    incr i
  done;
  {
    total = !total;
    passed = !passed;
    skipped = !skipped;
    rejected = !rejected;
    failure = !failure;
  }

let report_to_string r =
  match r.failure with
  | None ->
      Printf.sprintf "%d cases: %d passed, %d skipped (DNC), %d rejected"
        r.total r.passed r.skipped r.rejected
  | Some fc ->
      Printf.sprintf
        "%d cases: %d passed, %d skipped, %d rejected, 1 FAILURE (case %d)\n\n%s"
        r.total r.passed r.skipped r.rejected fc.index fc.text

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay_line line =
  match Spec.of_string line with
  | Error m -> Check.Reject (Printf.sprintf "unparseable spec %S: %s" line m)
  | Ok spec -> Check.run spec

(* Corpus files: one spec per line; '#' lines and blanks are comments. *)
let replay_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let results = ref [] in
      (try
         let lineno = ref 0 in
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line <> "" && line.[0] <> '#' then
             results := (Printf.sprintf "%s:%d" path !lineno, replay_line line) :: !results
         done
       with End_of_file -> ());
      List.rev !results)

let replay_corpus ~dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort String.compare
  in
  List.concat_map (fun f -> replay_file (Filename.concat dir f)) files
