(** Deterministic random generation of well-formed fuzz cases.

    A (seed, index) pair fully determines the case — the sampler draws from
    a private splitmix64 stream, never OCaml's global RNG.  Generated cases
    stay inside the compiler's supported leaf fragment: one sparse driver
    per product, pure sums of sparse accesses for merges, at most one
    non-driver variable; schedules, formats and TDNs are drawn from pools
    valid for the sampled statement. *)

type params = {
  max_dim : int;
  max_pieces : int;
  fault_prob : float;
  gpu_prob : float;
}

val default_params : params

(** [case ?params ~seed index] — the [index]-th case of campaign [seed]. *)
val case : ?params:params -> seed:int -> int -> Spec.t
