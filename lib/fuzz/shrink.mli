(** Greedy minimization of failing fuzz cases.

    Proposes progressively simpler well-formed specs (drop operands,
    simplify the schedule, neutralize TDNs, canonicalize formats, shrink
    dimensions and densities) and keeps the first candidate that still
    fails, to a fixpoint. *)

(** Simpler variants of a spec, in priority order; every candidate is
    well-formed. *)
val candidates : Spec.t -> Spec.t list

(** [minimize ?max_steps ~still_fails spec] — greedy first-improvement
    descent; [still_fails] is consulted at most [max_steps] (default 300)
    times. *)
val minimize : ?max_steps:int -> still_fails:(Spec.t -> bool) -> Spec.t -> Spec.t

(** Human-readable report: the violated property, both spec lines, a CLI
    replay command and a paste-able OCaml snippet. *)
val reproducer : original:Spec.t -> shrunk:Spec.t -> Check.failure -> string
