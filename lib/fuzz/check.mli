(** The differential oracle run on every fuzz case.

    Properties checked, in order: sub-language round-trips (spec line, TIN
    statement, schedule), the full pipeline against the dense reference
    evaluator ({!Spdistal_exec.Validate}), rebuild determinism, leaf-backend
    equivalence (the compiled closures and the reference interpreter must be
    bit-identical in outputs and cost — whichever backend the process
    default did not select is re-run on a fresh build), simulation domain
    invariance, and fault invariance.  DNC (OOM / recovery exhaustion) is a
    legitimate outcome, reported as [Skip]. *)

type failure = { prop : string; detail : string }

type verdict =
  | Pass
  | Skip of string
  | Reject of string
      (** the compiler refused a generated case — a generator bug worth a
          report, but distinct from a wrong answer *)
  | Fail of failure

(** Comparison tolerances of the differential property. *)
val rtol : float

val atol : float

(** Run all properties on one case. *)
val run : Spec.t -> verdict

val verdict_to_string : verdict -> string
