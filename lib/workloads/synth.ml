open Spdistal_formats
module Srng = Spdistal_runtime.Srng

let value rng = 1. +. Srng.float rng

let of_entries ~name ~dims ?formats ?mode_order entries =
  let formats =
    match formats with
    | Some f -> f
    | None ->
        Array.mapi
          (fun i _ -> if i = 0 then Level.Dense_k else Level.Compressed_k)
          dims
  in
  Tensor.of_coo ~name ~formats ?mode_order (Coo.make dims entries)

let banded ~name ~n ~band =
  (* Built directly in sorted order, array-backed: weak scaling instantiates
     multi-million-non-zero instances of this generator. *)
  let half = band / 2 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for o = -half to band - half - 1 do
      let j = i + o in
      if j >= 0 && j < n then incr count
    done
  done;
  let is = Array.make !count 0 and js = Array.make !count 0 in
  let vs = Array.make !count 0. in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for o = -half to band - half - 1 do
      let j = i + o in
      if j >= 0 && j < n then begin
        is.(!k) <- i;
        js.(!k) <- j;
        vs.(!k) <- 1. +. float_of_int ((i + j) mod 5);
        incr k
      end
    done
  done;
  Tensor.of_coo ~name
    ~formats:[| Level.Dense_k; Level.Compressed_k |]
    ~assume_sorted:true
    { Coo.dims = [| n; n |]; coords = [| is; js |]; vals = vs }

let uniform ~name ~rows ~cols ~nnz ~seed =
  let rng = Srng.create seed in
  let entries = ref [] in
  for _ = 1 to nnz do
    entries := ([| Srng.int rng rows; Srng.int rng cols |], value rng) :: !entries
  done;
  of_entries ~name ~dims:[| rows; cols |] !entries

(* Scatter skewed draws over the id space: real graphs do not sort vertices
   by degree, so heavy rows/slices must land at uncorrelated indices (block
   distributions would otherwise see pathological imbalance). *)
let scatter i n = (i * 0x9E3779B1) land 0x3FFFFFFF mod n

let power_law ~name ~rows ~cols ~nnz ~alpha ~seed =
  let rng = Srng.create seed in
  let entries = ref [] in
  (* Cap hub degrees: scaled-down universes over-concentrate a raw Zipf head
     (a single analog row would carry ~10% of all non-zeros, which no
     Table II matrix does).  Hubs top out near 1-2% of the non-zeros, like
     the originals at this resolution. *)
  let cap = max 32 (200 * nnz / rows) in
  let degree = Array.make rows 0 in
  for _ = 1 to nnz do
    let i =
      let z = scatter (Srng.zipf rng ~n:rows ~alpha) rows in
      if degree.(z) >= cap then Srng.int rng rows else z
    in
    degree.(i) <- degree.(i) + 1;
    let j =
      (* Columns mix a skewed hub component with a uniform tail, like web
         link structure. *)
      if Srng.float rng < 0.5 then scatter (Srng.zipf rng ~n:cols ~alpha) cols
      else Srng.int rng cols
    in
    entries := ([| i; j |], value rng) :: !entries
  done;
  of_entries ~name ~dims:[| rows; cols |] !entries

let bounded_degree ~name ~rows ~cols ~lo ~hi ~seed =
  let rng = Srng.create seed in
  let entries = ref [] in
  for i = 0 to rows - 1 do
    let d = lo + Srng.int rng (hi - lo + 1) in
    for _ = 1 to d do
      entries := ([| i; Srng.int rng cols |], value rng) :: !entries
    done
  done;
  of_entries ~name ~dims:[| rows; cols |] !entries

let dense_rows ~name ~rows ~cols ~row_nnz ~seed =
  let rng = Srng.create seed in
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for _ = 1 to row_nnz do
      entries := ([| i; Srng.int rng cols |], value rng) :: !entries
    done
  done;
  of_entries ~name ~dims:[| rows; cols |] !entries

let stencil ~name ~n ~points =
  let entries = ref [] in
  let offsets =
    (* Near diagonal plus widening strided bands, KKT-like. *)
    List.init points (fun k ->
        match k with
        | 0 -> 0
        | k when k mod 2 = 1 -> (k + 1) / 2
        | k -> -(k / 2) * (1 + (k / 4)))
  in
  for i = 0 to n - 1 do
    List.iter
      (fun o ->
        let j = i + o in
        if j >= 0 && j < n then
          entries := ([| i; j |], 1. +. float_of_int (abs o mod 7)) :: !entries)
      offsets
  done;
  of_entries ~name ~dims:[| n; n |] !entries

let csf = [| Level.Dense_k; Level.Compressed_k; Level.Compressed_k |]

let tensor3_uniform ~name ~dims ~nnz ~seed =
  let rng = Srng.create seed in
  let entries = ref [] in
  for _ = 1 to nnz do
    entries :=
      ( [| Srng.int rng dims.(0); Srng.int rng dims.(1); Srng.int rng dims.(2) |],
        value rng )
      :: !entries
  done;
  of_entries ~name ~dims ~formats:csf !entries

let tensor3_skewed ~name ~dims ~nnz ~alpha ~seed =
  let rng = Srng.create seed in
  let entries = ref [] in
  (* Slice sizes are skewed but capped (cf. the matrix hub cap): no analog
     slice may hold more than ~50x the mean. *)
  let cap = max 16 (50 * nnz / dims.(0)) in
  let slice = Array.make dims.(0) 0 in
  for _ = 1 to nnz do
    let i =
      let z = scatter (Srng.zipf rng ~n:dims.(0) ~alpha) dims.(0) in
      if slice.(z) >= cap then Srng.int rng dims.(0) else z
    in
    slice.(i) <- slice.(i) + 1;
    entries :=
      ( [|
          i;
          scatter (Srng.zipf rng ~n:dims.(1) ~alpha:(alpha /. 2.)) dims.(1);
          Srng.int rng dims.(2);
        |],
        value rng )
      :: !entries
  done;
  of_entries ~name ~dims ~formats:csf !entries

let tensor3_dense_modes ~name ~dims ~nnz ~seed =
  let rng = Srng.create seed in
  let entries = ref [] in
  let pairs = dims.(0) * dims.(1) in
  let per_pair = max 1 (nnz / pairs) in
  for i = 0 to dims.(0) - 1 do
    for j = 0 to dims.(1) - 1 do
      for _ = 1 to per_pair do
        entries := ([| i; j; Srng.int rng dims.(2) |], value rng) :: !entries
      done
    done
  done;
  of_entries ~name ~dims
    ~formats:[| Level.Dense_k; Level.Dense_k; Level.Compressed_k |]
    !entries
