(* Srng moved into [Spdistal_runtime] so the runtime's fault-injection
   schedule can draw from the same deterministic streams; workloads keep
   their historical [Srng] name through this alias. *)
include Spdistal_runtime.Srng
