(** The auto-scheduler tournament: the evaluation kernels (fig10 CPU sweep,
    fig11/fig12 GPU kernels, batched 2-D SpMM, fig13 banded synthetic)
    priced three ways — naive strawman, the paper's hand schedule, and the
    auto-scheduler's pick — with no leaf execution.  [results/auto.csv]
    records the table; the CI ratchet bounds [max_ratio] by
    [bench/auto_ratio_floor.txt]. *)

type row = {
  t_kernel : string;
  t_dataset : string;
  t_system : string;  (** ["cpu"], ["gpu"] or ["gpu-2d"] *)
  t_pieces : int;
  t_naive : float option;  (** priced seconds; [None] = did not price *)
  t_hand : float option;
  t_auto : float option;
  t_winner : string;  (** winning candidate label; ["DNC"] if none priced *)
}

(** auto/hand of one row, when both priced. *)
val ratio : row -> float option

(** [quick] limits each kernel to its first two datasets. *)
val compute : ?quick:bool -> unit -> row list

(** Worst auto/hand ratio over the rows — what the CI ratchet bounds. *)
val max_ratio : row list -> float option

(** Rows where auto failed to strictly beat naive (or priced nothing). *)
val regressions : row list -> row list

val csv : row list -> string

(** Writes [auto.csv] under [dir] (created if missing); returns the path. *)
val write : dir:string -> row list -> string

val print : Format.formatter -> row list -> unit
