(** Uniform dispatch of (kernel, system, machine, dataset) cells: the engine
    behind every evaluation figure.

    Machines are Lassen nodes scaled by [Datasets.scale] (see
    [Machine.scale_params]) so the ~5000x-scaled dataset analogs reproduce
    the paper's absolute times and memory boundaries. *)

open Spdistal_runtime
open Spdistal_formats

type kernel = Spmv | Spmm | Spadd3 | Sddmm | Spttv | Mttkrp

type system =
  | Spdistal  (** the schedule the paper uses for this kernel/machine kind *)
  | Spdistal_batched  (** memory-conserving 2-D GPU SpMM *)
  | Spdistal_cpu_leaf  (** SpDISTAL's CPU kernel (Fig. 12 comparisons) *)
  | Petsc
  | Trilinos
  | Ctf

val kernel_name : kernel -> string
val system_name : system -> string

val all_kernels : kernel list

(** Systems compared for a kernel on the given processor kind, in the
    paper's order (§VI-A). *)
val systems_for : kernel -> Machine.proc_kind -> system list

(** Scaled-Lassen machine constructors. *)
val cpu_machine : nodes:int -> Machine.t

val gpu_machine : gpus:int -> Machine.t

(** The hand-scheduled problem the paper uses for this (kernel, machine)
    cell — what [run] executes for the SpDISTAL systems, and what the
    auto-tournament reschedules.  [batched] picks the 2-D memory-conserving
    SpMM (the machine is re-gridded to a near-square 2-D grid). *)
val problem_for :
  kernel:kernel ->
  machine:Machine.t ->
  cols:int ->
  ?batched:bool ->
  Tensor.t ->
  Core.Spdistal.problem

(** [run ~kernel ~system ~machine tensor] executes one cell: real numerics,
    simulated time.  [cols] is the dense width for SpMM/SDDMM/MTTKRP
    (default 32).  Trilinos GPU runs use UVM.

    [auto] replaces the hand schedule of SpDISTAL systems with the
    auto-scheduler's choice ({!Spdistal_opt.Auto.schedule}); baselines are
    unaffected.

    [iterations] switches the cell to the iterative protocol: SpDISTAL
    systems run through the warm-start execution context (partitions are
    computed on the first iteration and cached; [cache:false] rebuilds them
    every iteration), while baseline systems re-pay their full launch each
    iteration, so their time scales linearly. *)
val run :
  kernel:kernel ->
  system:system ->
  machine:Machine.t ->
  ?cols:int ->
  ?auto:bool ->
  ?iterations:int ->
  ?cache:bool ->
  Tensor.t ->
  Spdistal_baselines.Common.result

(** Which kernels a dataset kind applies to. *)
val kernels_for_matrix : kernel list

val kernels_for_tensor3 : kernel list
