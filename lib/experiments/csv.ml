open Spdistal_runtime

let time_cell = function
  | Some t -> Printf.sprintf "%.9f" t
  | None -> "DNC"

let fig10 cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kernel,system,nodes,tensor,seconds\n";
  List.iter
    (fun (c : Fig10.cell) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%s,%s\n"
           (Runner.kernel_name c.Fig10.kernel)
           (Runner.system_name c.Fig10.system)
           c.Fig10.nodes c.Fig10.tensor (time_cell c.Fig10.time)))
    cells;
  Buffer.contents b

let fig11 cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kernel,system,gpus,tensor,seconds\n";
  List.iter
    (fun (c : Fig11.cell) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%s,%s\n"
           (Runner.kernel_name c.Fig11.kernel)
           (Runner.system_name c.Fig11.system)
           c.Fig11.gpus c.Fig11.tensor (time_cell c.Fig11.time)))
    cells;
  Buffer.contents b

let fig12 cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kernel,nodes,tensor,gpu_seconds,cpu_seconds\n";
  List.iter
    (fun (c : Fig12.cell) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%s,%s\n"
           (Runner.kernel_name c.Fig12.kernel)
           c.Fig12.nodes c.Fig12.tensor
           (time_cell c.Fig12.gpu_time)
           (time_cell c.Fig12.cpu_time)))
    cells;
  Buffer.contents b

let fig13 points =
  let b = Buffer.create 4096 in
  Buffer.add_string b "kind,pieces,system,seconds\n";
  List.iter
    (fun (p : Fig13.point) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%s\n"
           (match p.Fig13.kind with Machine.Cpu -> "cpu" | Machine.Gpu -> "gpu")
           p.Fig13.pieces
           (Runner.system_name p.Fig13.system)
           (time_cell p.Fig13.time)))
    points;
  Buffer.contents b

type fault_row = {
  f_kernel : string;
  f_rate : float;
  f_seed : int;
  f_seconds : float option;  (** [None] = DNC (recovery exhausted) *)
  f_baseline : float;  (** fault-free simulated seconds *)
  f_cost : Cost.t;  (** the faulted run's full cost record *)
  f_identical : bool;  (** outputs bitwise equal to the fault-free run *)
}

let faults rows =
  let b = Buffer.create 4096 in
  (* The cost columns come verbatim from {!Cost.csv_header} — one source of
     truth for cost serialization. *)
  Buffer.add_string b
    ("kernel,rate,seed,seconds,baseline_seconds,overhead_pct,outputs_identical,"
   ^ Cost.csv_header ^ "\n");
  List.iter
    (fun r ->
      let overhead =
        match r.f_seconds with
        | Some t when r.f_baseline > 0. ->
            Printf.sprintf "%.3f" (100. *. (t -. r.f_baseline) /. r.f_baseline)
        | _ -> "DNC"
      in
      Buffer.add_string b
        (Printf.sprintf "%s,%.3f,%d,%s,%.9f,%s,%b,%s\n" r.f_kernel r.f_rate
           r.f_seed (time_cell r.f_seconds) r.f_baseline overhead r.f_identical
           (Cost.to_csv_row r.f_cost)))
    rows;
  Buffer.contents b

type amort_row = {
  a_kernel : string;
  a_system : string;
  a_iterations : int;
  a_cached : bool;
  a_seconds : float option;  (** [None] = DNC *)
  a_iter1 : float option;  (** cold first-iteration seconds (SpDISTAL only) *)
  a_warm : float option;  (** mean warm-iteration seconds (SpDISTAL only) *)
  a_hits : int;
  a_misses : int;
}

let amortization rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "kernel,system,iterations,cached,seconds,iter1_seconds,warm_mean_seconds,cache_hits,cache_misses\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%b,%s,%s,%s,%d,%d\n" r.a_kernel r.a_system
           r.a_iterations r.a_cached (time_cell r.a_seconds)
           (time_cell r.a_iter1) (time_cell r.a_warm) r.a_hits r.a_misses))
    rows;
  Buffer.contents b

let write_file ~dir name contents =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let write_faults ~dir rows = write_file ~dir "faults.csv" (faults rows)

let write_amortization ~dir rows =
  write_file ~dir "amortization.csv" (amortization rows)

let write_all ~dir ~fig10:c10 ~fig11:c11 ~fig12:c12 ~fig13:c13 =
  [
    write_file ~dir "fig10.csv" (fig10 c10);
    write_file ~dir "fig11.csv" (fig11 c11);
    write_file ~dir "fig12.csv" (fig12 c12);
    write_file ~dir "fig13.csv" (fig13 c13);
  ]
