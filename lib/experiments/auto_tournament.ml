(* The auto-scheduler tournament: every evaluation kernel (the fig10 CPU
   sweep, the fig11/fig12 GPU kernels, the batched 2-D SpMM and the fig13
   banded synthetic) priced three ways — the naive strawman, the paper's
   hand schedule, and the auto-scheduler's pick — without executing leaves.
   The CI ratchet holds the worst auto/hand ratio under the floor in
   bench/auto_ratio_floor.txt. *)

open Spdistal_runtime
open Spdistal_workloads
open Spdistal_opt

type row = {
  t_kernel : string;
  t_dataset : string;
  t_system : string;  (* "cpu" | "gpu" | "gpu-2d" *)
  t_pieces : int;
  t_naive : float option;
  t_hand : float option;
  t_auto : float option;
  t_winner : string;  (* winning candidate label; "DNC" when nothing priced *)
}

let ratio r =
  match (r.t_auto, r.t_hand) with
  | Some a, Some h when h > 0. -> Some (a /. h)
  | _ -> None

let price_of = function Ok pr -> Some (Price.total pr) | Error _ -> None

let row_of ~kernel ~dataset ~system ~pieces problem =
  let rp = Auto.report problem in
  let hand =
    List.find_opt (fun v -> v.Auto.v_label = "hand") rp.Auto.rp_verdicts
  in
  {
    t_kernel = kernel;
    t_dataset = dataset;
    t_system = system;
    t_pieces = pieces;
    t_naive = price_of rp.Auto.rp_naive;
    t_hand = Option.bind hand (fun v -> price_of v.Auto.v_priced);
    t_auto = Option.map (fun (_, pr) -> Price.total pr) rp.Auto.rp_winner;
    t_winner =
      (match rp.Auto.rp_winner with
      | Some (c, _) -> c.Search.c_label
      | None -> "DNC");
  }

let cpu_kernels = Runner.all_kernels
let gpu_kernels = Runner.all_kernels

let datasets_for kernel =
  match kernel with
  | Runner.Spttv | Runner.Mttkrp -> Datasets.tensors3
  | Runner.Spmv | Runner.Spmm | Runner.Spadd3 | Runner.Sddmm ->
      Datasets.matrices

let compute ?(quick = false) () =
  let take2 l = if quick then List.filteri (fun i _ -> i < 2) l else l in
  let cols = 32 in
  let rows = ref [] in
  let add r = rows := r :: !rows in
  let cell ~kernel ~system ~machine ?(batched = false) (e : Datasets.entry) =
    let b = e.Datasets.load () in
    let p = Runner.problem_for ~kernel ~machine ~cols ~batched b in
    add
      (row_of ~kernel:(Runner.kernel_name kernel) ~dataset:e.Datasets.ds_name
         ~system ~pieces:(Machine.pieces p.Core.Spdistal.machine) p)
  in
  (* fig10: the CPU sweep at 4 nodes. *)
  let cpu = Runner.cpu_machine ~nodes:4 in
  List.iter
    (fun kernel ->
      List.iter (cell ~kernel ~system:"cpu" ~machine:cpu)
        (take2 (datasets_for kernel)))
    cpu_kernels;
  (* fig11/fig12: the GPU kernels at 4 GPUs. *)
  let gpu = Runner.gpu_machine ~gpus:4 in
  List.iter
    (fun kernel ->
      List.iter (cell ~kernel ~system:"gpu" ~machine:gpu)
        (take2 (datasets_for kernel)))
    gpu_kernels;
  (* The memory-conserving 2-D batched SpMM (problem_for re-grids). *)
  List.iter
    (cell ~kernel:Runner.Spmm ~system:"gpu-2d" ~machine:gpu ~batched:true)
    (take2 Datasets.matrices);
  (* fig13: the banded weak-scaling synthetic at 4 pieces. *)
  let banded =
    Synth.banded ~name:"banded-4" ~n:(35_000 * 4 / 14) ~band:14
  in
  let p = Runner.problem_for ~kernel:Runner.Spmv ~machine:cpu ~cols banded in
  add
    (row_of ~kernel:"SpMV" ~dataset:"banded-4" ~system:"cpu" ~pieces:4 p);
  Spdistal_exec.Leaf.clear_cache ();
  List.rev !rows

let max_ratio rows =
  List.fold_left
    (fun acc r ->
      match (ratio r, acc) with
      | Some x, Some m -> Some (Float.max x m)
      | Some x, None -> Some x
      | None, _ -> acc)
    None rows

(* Every row where the auto pick fails to strictly beat the naive strawman
   (the acceptance bar of the search), or prices worse than the hand
   schedule at all — candidates the ratchet and tests inspect. *)
let regressions rows =
  List.filter
    (fun r ->
      match (r.t_auto, r.t_naive) with
      | Some a, Some n -> a >= n
      | None, _ -> true
      | _, None -> false)
    rows

let time_cell = function Some t -> Printf.sprintf "%.9f" t | None -> "DNC"

let csv rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "kernel,dataset,system,pieces,naive_total,hand_total,auto_total,auto_vs_hand,winner\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%s,%d,%s,%s,%s,%s,%s\n" r.t_kernel r.t_dataset
           r.t_system r.t_pieces (time_cell r.t_naive) (time_cell r.t_hand)
           (time_cell r.t_auto)
           (match ratio r with
           | Some x -> Printf.sprintf "%.4f" x
           | None -> "DNC")
           r.t_winner))
    rows;
  Buffer.contents b

let write ~dir rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "auto.csv" in
  let oc = open_out path in
  output_string oc (csv rows);
  close_out oc;
  path

let print fmt rows =
  Format.fprintf fmt
    "@[<v>=== Auto-scheduler tournament (priced seconds, lower is better) \
     ===@,";
  Format.fprintf fmt "%-10s %-14s %-7s %6s %14s %14s %14s %8s  %s@," "kernel"
    "dataset" "system" "pieces" "naive" "hand" "auto" "auto/h" "winner";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %-14s %-7s %6d %14s %14s %14s %8s  %s@,"
        r.t_kernel r.t_dataset r.t_system r.t_pieces (time_cell r.t_naive)
        (time_cell r.t_hand) (time_cell r.t_auto)
        (match ratio r with
        | Some x -> Printf.sprintf "%.4f" x
        | None -> "DNC")
        r.t_winner)
    rows;
  (match max_ratio rows with
  | Some m -> Format.fprintf fmt "@,max auto/hand ratio: %.4f@," m
  | None -> ());
  Format.fprintf fmt "@]"
