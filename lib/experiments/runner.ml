open Spdistal_runtime
open Spdistal_formats
open Spdistal_workloads
open Spdistal_baselines
module K = Core.Kernels
module S = Core.Spdistal

type kernel = Spmv | Spmm | Spadd3 | Sddmm | Spttv | Mttkrp

type system =
  | Spdistal
  | Spdistal_batched
  | Spdistal_cpu_leaf
  | Petsc
  | Trilinos
  | Ctf

let kernel_name = function
  | Spmv -> "SpMV"
  | Spmm -> "SpMM"
  | Spadd3 -> "SpAdd3"
  | Sddmm -> "SDDMM"
  | Spttv -> "SpTTV"
  | Mttkrp -> "SpMTTKRP"

let system_name = function
  | Spdistal -> "SpDISTAL"
  | Spdistal_batched -> "SpDISTAL-Batched"
  | Spdistal_cpu_leaf -> "SpDISTAL-CPU"
  | Petsc -> "PETSc"
  | Trilinos -> "Trilinos"
  | Ctf -> "CTF"

let all_kernels = [ Spmv; Spmm; Spadd3; Sddmm; Spttv; Mttkrp ]
let kernels_for_matrix = [ Spmv; Spmm; Spadd3; Sddmm ]
let kernels_for_tensor3 = [ Spttv; Mttkrp ]

let systems_for kernel kind =
  match (kernel, kind) with
  | (Spmv | Spmm), Machine.Cpu -> [ Spdistal; Petsc; Trilinos; Ctf ]
  | Spadd3, Machine.Cpu -> [ Spdistal; Petsc; Trilinos; Ctf ]
  | (Sddmm | Spttv | Mttkrp), Machine.Cpu -> [ Spdistal; Ctf ]
  | Spmv, Machine.Gpu -> [ Spdistal; Petsc; Trilinos ]
  | Spmm, Machine.Gpu -> [ Spdistal; Spdistal_batched; Petsc; Trilinos ]
  | Spadd3, Machine.Gpu -> [ Spdistal; Trilinos ]
  | (Sddmm | Spttv | Mttkrp), Machine.Gpu -> [ Spdistal; Spdistal_cpu_leaf ]

let scaled_params () = Machine.scale_params Datasets.scale Machine.lassen

let cpu_machine ~nodes =
  Machine.make ~params:(scaled_params ()) ~kind:Machine.Cpu [| nodes |]

let gpu_machine ~gpus =
  Machine.make ~params:(scaled_params ()) ~kind:Machine.Gpu [| gpus |]

(* Near-square 2-D grid for the batched SpMM schedule. *)
let gpu_machine_2d ~gpus =
  let rec pick gy = if gy * gy > gpus || gpus mod gy <> 0 then gy / 2 else pick (gy * 2) in
  let gy = max 1 (pick 2) in
  Machine.make ~params:(scaled_params ()) ~kind:Machine.Gpu [| gpus / gy; gy |]

let of_spdistal (res : S.run_result) =
  match res.S.dnc with
  | Some reason -> Common.dnc ("SpDISTAL: " ^ reason)
  | None -> Common.ok (Cost.total res.S.cost)

(* The hand-scheduled problem the paper uses for this (kernel, machine)
   cell — the baseline both [run_spdistal] and the auto-tournament price. *)
let problem_for ~kernel ~machine ~cols ?(batched = false) b =
  let gpu = machine.Machine.kind = Machine.Gpu in
  match kernel with
  | Spmv -> K.spmv_problem ~machine b
  | Spmm ->
      if batched then
        let m2 = gpu_machine_2d ~gpus:(Machine.pieces machine) in
        K.spmm_problem ~machine:m2 ~cols ~batched:true b
      else K.spmm_problem ~machine ~cols ~nonzero_dist:gpu b
  | Spadd3 -> K.spadd3_problem ~machine b
  | Sddmm -> K.sddmm_problem ~machine ~cols b
  | Spttv -> K.spttv_problem ~machine ~nonzero_dist:gpu b
  | Mttkrp -> K.mttkrp_problem ~machine ~cols ~nonzero_dist:gpu b

let run_spdistal ~kernel ~machine ~cols ?(batched = false) ?(auto = false)
    ?iterations ?(cache = true) b =
  let problem = problem_for ~kernel ~machine ~cols ~batched b in
  let problem = if auto then Spdistal_opt.Auto.schedule problem else problem in
  of_spdistal (S.run ?iterations ~cache problem)

(* Baseline systems have no partition cache: an N-iteration solve re-pays
   the full launch (scatter + compute) every iteration, so the simulated
   time scales linearly (PETSc re-runs its VecScatter per MatMult). *)
let scale_iterations iterations (r : Common.result) =
  match (iterations, r.Common.dnc) with
  | Some n, None when n > 1 -> { r with Common.time = r.Common.time *. float_of_int n }
  | _ -> r

let run ~kernel ~system ~machine ?(cols = 32) ?(auto = false) ?iterations
    ?(cache = true) b =
  match system with
  | Spdistal -> run_spdistal ~kernel ~machine ~cols ~auto ?iterations ~cache b
  | Spdistal_cpu_leaf ->
      (* SpDISTAL's CPU kernel on the same number of nodes (paper Fig. 11/12
         compare against "SpDISTAL's CPU kernel using all the resources on a
         node"). *)
      let nodes =
        match machine.Machine.kind with
        | Machine.Cpu -> Machine.pieces machine
        | Machine.Gpu -> Machine.nodes machine
      in
      run_spdistal ~kernel ~machine:(cpu_machine ~nodes) ~cols ~auto
        ?iterations ~cache b
  | Spdistal_batched ->
      if kernel <> Spmm then Common.dnc "batched schedule is SpMM-only"
      else
        run_spdistal ~kernel ~machine ~cols ~batched:true ~auto ?iterations
          ~cache b
  | Petsc ->
      scale_iterations iterations
      @@ (
      match kernel with
      | Spmv ->
          let x = K.dense_vec "x" b.Tensor.dims.(1)
          and y = Dense.vec_create "y" b.Tensor.dims.(0) in
          Petsc.spmv ~machine b ~x ~y
      | Spmm ->
          let c = K.dense_mat "C" b.Tensor.dims.(1) cols
          and a = Dense.mat_create "A" b.Tensor.dims.(0) cols in
          Petsc.spmm ~machine b ~c ~a
      | Spadd3 ->
          let c = K.shift_last_dim ~name:"C" ~by:1 b
          and d = K.shift_last_dim ~name:"D" ~by:2 b in
          snd (Petsc.spadd3 ~machine b c d)
      | Sddmm | Spttv | Mttkrp ->
          Common.dnc ("PETSc: " ^ kernel_name kernel ^ " unsupported"))
  | Trilinos ->
      scale_iterations iterations
      @@ (
      match kernel with
      | Spmv ->
          let x = K.dense_vec "x" b.Tensor.dims.(1)
          and y = Dense.vec_create "y" b.Tensor.dims.(0) in
          Trilinos.spmv ~machine b ~x ~y
      | Spmm ->
          let c = K.dense_mat "C" b.Tensor.dims.(1) cols
          and a = Dense.mat_create "A" b.Tensor.dims.(0) cols in
          Trilinos.spmm ~machine b ~c ~a
      | Spadd3 ->
          let c = K.shift_last_dim ~name:"C" ~by:1 b
          and d = K.shift_last_dim ~name:"D" ~by:2 b in
          snd (Trilinos.spadd3 ~machine b c d)
      | Sddmm | Spttv | Mttkrp ->
          Common.dnc ("Trilinos: " ^ kernel_name kernel ^ " unsupported"))
  | Ctf ->
      scale_iterations iterations
      @@ (
      if machine.Machine.kind = Machine.Gpu then
        Common.dnc "CTF: no usable GPU backend"
      else
        match kernel with
        | Spmv ->
            let x = K.dense_vec "x" b.Tensor.dims.(1)
            and y = Dense.vec_create "y" b.Tensor.dims.(0) in
            Ctf.spmv ~machine b ~x ~y
        | Spmm ->
            let c = K.dense_mat "C" b.Tensor.dims.(1) cols
            and a = Dense.mat_create "A" b.Tensor.dims.(0) cols in
            Ctf.spmm ~machine b ~c ~a
        | Spadd3 ->
            let c = K.shift_last_dim ~name:"C" ~by:1 b
            and d = K.shift_last_dim ~name:"D" ~by:2 b in
            snd (Ctf.spadd3 ~machine b c d)
        | Sddmm ->
            let c = K.dense_mat "C" b.Tensor.dims.(0) cols
            and d = K.dense_mat "D" cols b.Tensor.dims.(1) in
            let a = Assemble.copy_pattern ~name:"A" b in
            Ctf.sddmm ~machine b ~c ~d ~a
        | Spttv ->
            let c = K.dense_vec "c" b.Tensor.dims.(2)
            and a = Assemble.copy_pattern ~name:"A" ~levels:2 b in
            Ctf.spttv ~machine b ~c ~a
        | Mttkrp ->
            let c = K.dense_mat "C" b.Tensor.dims.(1) cols
            and d = K.dense_mat "D" b.Tensor.dims.(2) cols
            and a = Dense.mat_create "A" b.Tensor.dims.(0) cols in
            Ctf.mttkrp ~machine b ~c ~d ~a)
