(** CSV export of every figure's cells, so the regenerated series can be
    plotted directly against the paper's figures. *)

val fig10 : Fig10.cell list -> string
val fig11 : Fig11.cell list -> string
val fig12 : Fig12.cell list -> string
val fig13 : Fig13.point list -> string

(** One cell of the fault-rate sweep: a kernel run under an injected fault
    schedule, against its fault-free baseline. *)
type fault_row = {
  f_kernel : string;
  f_rate : float;
  f_seed : int;
  f_seconds : float option;  (** [None] = DNC (recovery exhausted) *)
  f_baseline : float;  (** fault-free simulated seconds *)
  f_cost : Spdistal_runtime.Cost.t;
      (** the faulted run's full cost record; serialized with
          {!Spdistal_runtime.Cost.to_csv_row} *)
  f_identical : bool;  (** outputs bitwise equal to the fault-free run *)
}

val faults : fault_row list -> string

(** One point of the iterative-launch amortization curve: a kernel run for
    [a_iterations] iterations on one system, with the SpDISTAL cold/warm
    split when the warm-start context produced per-iteration stats. *)
type amort_row = {
  a_kernel : string;
  a_system : string;
  a_iterations : int;
  a_cached : bool;  (** false = [--no-cache]: partitions rebuilt per iteration *)
  a_seconds : float option;  (** [None] = DNC *)
  a_iter1 : float option;  (** cold first-iteration seconds (SpDISTAL only) *)
  a_warm : float option;  (** mean warm-iteration seconds (SpDISTAL only) *)
  a_hits : int;
  a_misses : int;
}

val amortization : amort_row list -> string

(** [write_faults ~dir rows] writes faults.csv under [dir] (created if
    missing) and returns the path. *)
val write_faults : dir:string -> fault_row list -> string

(** [write_amortization ~dir rows] writes amortization.csv under [dir]
    (created if missing) and returns the path. *)
val write_amortization : dir:string -> amort_row list -> string

(** [write_all ~dir ...] writes fig10.csv .. fig13.csv under [dir] (created
    if missing) and returns the paths. *)
val write_all :
  dir:string ->
  fig10:Fig10.cell list ->
  fig11:Fig11.cell list ->
  fig12:Fig12.cell list ->
  fig13:Fig13.point list ->
  string list
