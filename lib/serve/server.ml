(* The serve engine: a virtual-clock FCFS job loop over one shared cache.

   The server is a single service lane on the simulated clock (the same
   clock [Cost] prices): jobs arrive at their trace timestamps, are admitted
   or shed at arrival, run FCFS when the lane frees up, and are cancelled at
   their deadline — charged only for the work actually done.  All contexts
   share one byte-budgeted [Cache], so a popular query's dependent
   partitioning is paid once across every tenant that asks for it.

   Failure handling is layered:

   - inside a launch, [Fault] recovery absorbs transient faults as usual;
   - a job whose recovery is exhausted (a DNC) is re-admitted after
     [Fault.backoff_time], gated by its tenant's retry budget;
   - nodes that crash repeatedly collect strikes; at [blacklist_after]
     strikes a node is blacklisted across iterations — the machine is
     rebuilt on the survivors, every context is rebuilt against it, and
     admission tightens ([Admission.degrade]) so the shrunken server
     promises less instead of missing deadlines.  The server itself never
     stops answering: at least one node always remains. *)

open Spdistal_runtime
module Trace = Spdistal_obs.Trace
module Metrics = Spdistal_obs.Metrics
module Log = Spdistal_obs.Log
module Cache = Spdistal_exec.Cache
module Spdistal = Core.Spdistal

type config = {
  s_nodes : int;
  s_queue_bound : int;
  s_cache_cap : int;
  s_cache_budget : int option;  (* cache byte budget; [None] = unlimited *)
  s_retry_budget : int;  (* per-tenant re-admissions *)
  s_blacklist_after : int;  (* crash strikes before a node is blacklisted *)
  s_faults : Fault.config;
  s_auto : bool;  (* auto-schedule catalog problems (winners share the cache) *)
}

let default_config =
  {
    s_nodes = 4;
    s_queue_bound = 32;
    s_cache_cap = 64;
    s_cache_budget = Some 1_048_576;
    s_retry_budget = 2;
    s_blacklist_after = 3;
    s_faults = Fault.disabled;
    s_auto = false;
  }

let validate cfg =
  if cfg.s_nodes < 1 then
    Error.fail Error.Config "serve nodes %d must be >= 1" cfg.s_nodes;
  if cfg.s_blacklist_after < 1 then
    Error.fail Error.Config "serve blacklist threshold %d must be >= 1"
      cfg.s_blacklist_after

type outcome =
  | Completed of float  (* response time (wait + service), sim seconds *)
  | Shed of Error.t  (* rejected at admission; cost the server nothing *)
  | Deadline_exceeded of float  (* work charged before cancellation *)
  | Failed of Error.t  (* DNC with the retry budget exhausted *)

type job_log = {
  l_job : Workload.job;
  l_outcome : outcome;
  l_attempts : int;  (* admissions actually run: 1 + retries *)
  l_hits : int;  (* cache hits this job observed *)
}

type report = {
  r_config : config;
  r_jobs : int;
  r_completed : int;
  r_shed : int;
  r_deadline : int;
  r_failed : int;
  r_retries : int;
  r_p50_ms : float;
  r_p95_ms : float;
  r_p99_ms : float;
  r_mean_ms : float;  (* all over completed jobs' response times *)
  r_hit_rate : float;  (* cache hits / lookups across the whole run *)
  r_shed_rate : float;  (* shed / submitted *)
  r_throughput : float;  (* completed jobs per simulated second *)
  r_makespan : float;  (* last completion (or arrival), sim seconds *)
  r_busy : float;  (* sim seconds the service lane was occupied *)
  r_baseline_throughput : float option;
      (* single-tenant reference: every job cold, no sharing *)
  r_cache : Cache.stats;
  r_blacklisted : int list;  (* original node ids, sorted *)
  r_final_bound : int;  (* queue bound after degradation *)
  r_tenants : Tenant.t list;
  r_log : job_log list;  (* per-job outcomes, trace order *)
}

(* ------------------------------------------------------------------ *)
(* Engine state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  cfg : config;
  cache : Cache.t;
  mutable machine : Machine.t;
  mutable alive : int array;  (* current node index -> original node id *)
  strikes : (int, int) Hashtbl.t;  (* original node id -> crash strikes *)
  mutable blacklisted : int list;  (* original node ids *)
  contexts : (string, Spdistal.Context.ctx) Hashtbl.t;  (* one per query *)
  admission : Admission.t;
  mutable free : float;  (* when the service lane frees up *)
  mutable busy : float;
  mutable finishes : float list;  (* admitted jobs' finish times, for depth *)
}

let scaled_params () =
  Machine.scale_params Spdistal_workloads.Datasets.scale Machine.lassen

let make_machine nodes =
  Machine.make ~params:(scaled_params ()) ~kind:Machine.Cpu [| nodes |]

let create cfg =
  validate cfg;
  {
    cfg;
    cache = Cache.create ~cap:cfg.s_cache_cap ?byte_budget:cfg.s_cache_budget ();
    machine = make_machine cfg.s_nodes;
    alive = Array.init cfg.s_nodes Fun.id;
    strikes = Hashtbl.create 8;
    blacklisted = [];
    contexts = Hashtbl.create 16;
    admission = Admission.create ~queue_bound:cfg.s_queue_bound;
    free = 0.;
    busy = 0.;
    finishes = [];
  }

let context t query =
  match Hashtbl.find_opt t.contexts query with
  | Some ctx -> ctx
  | None ->
      let problem = Catalog.problem ~machine:t.machine query in
      (* Auto mode reschedules each catalog problem once per (machine,
         pattern): the winner is remembered in the shared cache, so later
         contexts (and machine rebuilds after blacklisting) replan for
         free. *)
      let problem =
        if t.cfg.s_auto then Spdistal_opt.Auto.schedule ~cache:t.cache problem
        else problem
      in
      let ctx = Spdistal.Context.create ~shared_cache:t.cache problem in
      Hashtbl.replace t.contexts query ctx;
      ctx

(* Record crash strikes against the *original* ids of the nodes that
   crashed; blacklist any node past the threshold (always keeping one node
   alive), rebuild the machine on the survivors and tighten admission.
   Contexts are dropped — their problems name the dead machine — and the
   shared cache stays: stale entries can never be found again (the digest
   covers the machine) and the LRU evicts them under byte pressure. *)
let strike t crashed =
  List.iter
    (fun node ->
      if node >= 0 && node < Array.length t.alive then begin
        let orig = t.alive.(node) in
        let n = Option.value ~default:0 (Hashtbl.find_opt t.strikes orig) in
        Hashtbl.replace t.strikes orig (n + 1)
      end)
    crashed;
  let doomed, survivors =
    Array.to_list t.alive
    |> List.partition (fun orig ->
           Option.value ~default:0 (Hashtbl.find_opt t.strikes orig)
           >= t.cfg.s_blacklist_after)
  in
  if doomed <> [] then begin
    let survivors =
      match survivors with
      | [] ->
          (* Every node is past the threshold; keep the lowest-numbered one
             so the server keeps answering (degraded, never dead). *)
          [ List.fold_left min max_int doomed ]
      | s -> s
    in
    t.blacklisted <-
      List.sort_uniq compare
        (List.filter (fun o -> not (List.mem o survivors)) doomed
        @ t.blacklisted);
    t.alive <- Array.of_list survivors;
    t.machine <- make_machine (List.length survivors);
    Hashtbl.reset t.contexts;
    Admission.degrade t.admission ~alive:(List.length survivors)
      ~total:t.cfg.s_nodes;
    let m = Metrics.default () in
    if Metrics.enabled m then
      Metrics.set m ~help:"nodes blacklisted after repeated crash strikes"
        "spdistal_serve_blacklisted_nodes"
        (float_of_int (List.length t.blacklisted));
    let lg = Log.default () in
    if Log.enabled lg then
      Log.event lg ~level:Log.Warn
        ~fields:
          [
            ( "blacklisted",
              Trace.S
                (String.concat ","
                   (List.map string_of_int t.blacklisted)) );
            ("alive", Trace.I (List.length survivors));
          ]
        "node_blacklisted"
  end

(* Per-(job, attempt) fault seeding: every admission of every job draws an
   independent deterministic schedule, so a retry is not doomed to replay
   the exact crash that killed the previous attempt. *)
let job_faults cfg ~job ~attempt =
  if Fault.enabled cfg.s_faults then
    Some
      {
        cfg.s_faults with
        Fault.seed = cfg.s_faults.Fault.seed + (997 * job) + attempt;
      }
  else None

(* ------------------------------------------------------------------ *)
(* One admitted job                                                    *)
(* ------------------------------------------------------------------ *)

let hits_of before after =
  match (before, after) with
  | Some (b : Cache.stats), Some (a : Cache.stats) -> a.Cache.hits - b.Cache.hits
  | _ -> 0

(* Run one admitted job to its outcome, starting service at [start]
   (>= arrival).  Returns (outcome, finish time, attempts run, hits). *)
let run_job t ?domains ?leaf_backend ~trace ~tenant (job : Workload.job) ~start
    =
  let deadline_abs = job.Workload.j_arrival +. job.Workload.j_deadline in
  let rec go start attempt hits =
    if start >= deadline_abs then
      (* The lane freed up past the deadline: cancelled before any work ran,
         charged nothing. *)
      (Deadline_exceeded 0., start, attempt, hits)
    else begin
      let ctx = context t job.Workload.j_query in
      let before = Spdistal.Context.cache_stats ctx in
      let result =
        match job_faults t.cfg ~job:job.Workload.j_id ~attempt with
        | Some faults ->
            Spdistal.Context.run ?domains ?leaf_backend ~trace ~faults ctx
        | None -> Spdistal.Context.run ?domains ?leaf_backend ~trace ctx
      in
      let hits = hits + hits_of before (Spdistal.Context.cache_stats ctx) in
      strike t result.Spdistal.crashed;
      let service = result.Spdistal.cost.Cost.total in
      match result.Spdistal.dnc with
      | None ->
          (* Feed the true service time into admission regardless of the
             deadline outcome — the estimate should reflect reality. *)
          Admission.observe t.admission job.Workload.j_query service;
          if start +. service > deadline_abs then begin
            let charged = deadline_abs -. start in
            t.busy <- t.busy +. charged;
            (Deadline_exceeded charged, deadline_abs, attempt, hits)
          end
          else begin
            t.busy <- t.busy +. service;
            ( Completed (start +. service -. job.Workload.j_arrival),
              start +. service,
              attempt,
              hits )
          end
      | Some reason ->
          (* The attempt died (recovery exhausted).  Charge the work done up
             to the deadline, then re-admit after backoff if the tenant has
             retry budget left and the deadline leaves room. *)
          let charged = min service (deadline_abs -. start) in
          t.busy <- t.busy +. charged;
          let now = start +. charged in
          if now >= deadline_abs then
            (Deadline_exceeded charged, deadline_abs, attempt, hits)
          else if Tenant.try_retry tenant then
            go (now +. Fault.backoff_time t.cfg.s_faults attempt) (attempt + 1)
              hits
          else
            let err =
              {
                Error.phase = Error.Recovery;
                kernel = Some job.Workload.j_query;
                piece = None;
                node =
                  (match result.Spdistal.crashed with
                  | n :: _ -> Some n
                  | [] -> None);
                what = reason ^ "; tenant retry budget exhausted";
              }
            in
            (Failed err, now, attempt, hits)
    end
  in
  go start 1 0

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) i))

let outcome_label = function
  | Completed _ -> "completed"
  | Shed e -> Error.phase_name e.Error.phase ^ "-shed"
  | Deadline_exceeded _ -> "deadline-exceeded"
  | Failed _ -> "failed"

(* Per-job serve metrics and log events, emitted on the (sequential) serve
   loop after each job settles — so the series are deterministic whenever
   the run is.  Latencies go into three histogram families (aggregate,
   per-tenant, per-query — separate families so label cardinality stays
   additive), and the headline gauges (pXX_ms, shed/hit rate) are re-derived
   after every job so scrape windows always see current values. *)
let note_job_metrics t ~submitted ~shed_total (entry : job_log) =
  let m = Metrics.default () in
  if Metrics.enabled m then begin
    let job = entry.l_job in
    let outcome =
      match entry.l_outcome with
      | Completed _ -> "completed"
      | Shed _ -> "shed"
      | Deadline_exceeded _ -> "deadline"
      | Failed _ -> "failed"
    in
    Metrics.inc m
      ~labels:[ ("outcome", outcome) ]
      ~help:"jobs settled by outcome" "spdistal_serve_jobs_total";
    (match entry.l_outcome with
    | Completed resp ->
        Metrics.observe m ~help:"response time (wait + service), sim seconds"
          "spdistal_serve_latency_seconds" resp;
        Metrics.observe m
          ~labels:[ ("tenant", string_of_int job.Workload.j_tenant) ]
          "spdistal_serve_tenant_latency_seconds" resp;
        Metrics.observe m
          ~labels:[ ("query", job.Workload.j_query) ]
          "spdistal_serve_query_latency_seconds" resp
    | _ -> ());
    let q suffix p =
      match Metrics.quantile m "spdistal_serve_latency_seconds" p with
      | Some s ->
          Metrics.set m
            ~help:"completed-job latency quantile (histogram bucket bound)"
            ("spdistal_serve_" ^ suffix) (1e3 *. s)
      | None -> ()
    in
    q "p50_ms" 0.50;
    q "p95_ms" 0.95;
    q "p99_ms" 0.99;
    Metrics.set m ~help:"shed / submitted so far" "spdistal_serve_shed_rate"
      (float_of_int shed_total /. float_of_int (max 1 submitted));
    let cs = Cache.stats t.cache in
    let lookups = cs.Cache.hits + cs.Cache.misses in
    Metrics.set m
      ~help:"shared-cache hits / lookups (lookups happen only for admitted attempts)"
      "spdistal_serve_hit_rate"
      (if lookups = 0 then 0.
       else float_of_int cs.Cache.hits /. float_of_int lookups)
  end

let note_job_log (entry : job_log) =
  let lg = Log.default () in
  if Log.enabled lg then begin
    let job = entry.l_job in
    let span = Printf.sprintf "job %d %s" job.Workload.j_id job.Workload.j_query in
    let track = Trace.Tenant job.Workload.j_tenant in
    let base =
      [
        ("job", Trace.I job.Workload.j_id);
        ("query", Trace.S job.Workload.j_query);
        ("attempts", Trace.I entry.l_attempts);
        ("hits", Trace.I entry.l_hits);
      ]
    in
    match entry.l_outcome with
    | Completed resp ->
        Log.event lg ~time:(job.Workload.j_arrival +. resp) ~track ~span
          ~fields:(base @ [ ("resp_ms", Trace.F (1e3 *. resp)) ])
          "job_completed"
    | Shed err ->
        Log.event lg ~level:Log.Warn ~time:job.Workload.j_arrival ~track ~span
          ~fields:(base @ [ ("reason", Trace.S (Error.to_string err)) ])
          "job_shed"
    | Deadline_exceeded charged ->
        Log.event lg ~level:Log.Warn
          ~time:(job.Workload.j_arrival +. job.Workload.j_deadline)
          ~track ~span
          ~fields:(base @ [ ("charged_s", Trace.F charged) ])
          "job_deadline_exceeded"
    | Failed err ->
        Log.event lg ~level:Log.Error ~time:job.Workload.j_arrival ~track ~span
          ~fields:(base @ [ ("error", Trace.S (Error.to_string err)) ])
          "job_failed"
  end

let serve ?domains ?leaf_backend ?(trace = Trace.null) ?scrape t
    (w : Workload.t) =
  let tenants =
    Array.init (max 1 w.Workload.w_tenants)
      (Tenant.create ~retry_budget:t.cfg.s_retry_budget)
  in
  let jobs =
    List.sort
      (fun a b -> compare a.Workload.j_arrival b.Workload.j_arrival)
      w.Workload.w_jobs
  in
  let log = ref [] in
  let shed_total = ref 0 in
  let submitted = ref 0 in
  List.iter
    (fun (job : Workload.job) ->
      let tenant =
        tenants.(job.Workload.j_tenant mod Array.length tenants)
      in
      tenant.Tenant.submitted <- tenant.Tenant.submitted + 1;
      incr submitted;
      let arrival = job.Workload.j_arrival in
      (* Snapshot every interval boundary the virtual clock has crossed
         before this arrival mutates anything. *)
      Option.iter (fun s -> Metrics.Scrape.tick s ~now:arrival) scrape;
      (* Queue depth at arrival: admitted jobs that have not finished. *)
      t.finishes <- List.filter (fun f -> f > arrival) t.finishes;
      let depth = List.length t.finishes in
      let backlog = Float.max 0. (t.free -. arrival) in
      let decision =
        Admission.decide t.admission ~query:job.Workload.j_query ~depth
          ~backlog ~deadline:job.Workload.j_deadline
      in
      let entry =
        match decision with
        | Admission.Reject err ->
            incr shed_total;
            tenant.Tenant.shed <- tenant.Tenant.shed + 1;
            { l_job = job; l_outcome = Shed err; l_attempts = 0; l_hits = 0 }
        | Admission.Admit ->
            (let lg = Log.default () in
             if Log.enabled lg then
               Log.event lg ~level:Log.Debug ~time:arrival
                 ~track:(Trace.Tenant job.Workload.j_tenant)
                 ~span:
                   (Printf.sprintf "job %d %s" job.Workload.j_id
                      job.Workload.j_query)
                 ~fields:
                   [
                     ("job", Trace.I job.Workload.j_id);
                     ("depth", Trace.I depth);
                     ("backlog_s", Trace.F backlog);
                   ]
                 "job_admitted");
            let start = Float.max arrival t.free in
            let busy_before = t.busy in
            let outcome, finish, attempts, hits =
              run_job t ?domains ?leaf_backend ~trace ~tenant job ~start
            in
            (let m = Metrics.default () in
             if Metrics.enabled m then
               Metrics.inc m
                 ~by:(t.busy -. busy_before)
                 ~help:"sim seconds the service lane was occupied"
                 "spdistal_serve_busy_seconds_total");
            t.free <- Float.max t.free finish;
            t.finishes <- finish :: t.finishes;
            (match outcome with
            | Completed resp ->
                tenant.Tenant.completed <- tenant.Tenant.completed + 1;
                tenant.Tenant.busy <- tenant.Tenant.busy +. resp
            | Deadline_exceeded charged ->
                tenant.Tenant.deadline_exceeded <-
                  tenant.Tenant.deadline_exceeded + 1;
                tenant.Tenant.busy <- tenant.Tenant.busy +. charged
            | Failed _ -> tenant.Tenant.failed <- tenant.Tenant.failed + 1
            | Shed _ -> ());
            { l_job = job; l_outcome = outcome; l_attempts = attempts; l_hits = hits }
      in
      (if Trace.enabled trace then begin
         let finish =
           match entry.l_outcome with
           | Shed _ -> arrival
           | Completed resp -> arrival +. resp
           | Deadline_exceeded _ -> arrival +. job.Workload.j_deadline
           | Failed _ -> Float.max arrival t.free
         in
         Trace.span trace
           ~track:(Trace.Tenant job.Workload.j_tenant)
           ~clock:Trace.Sim ~cat:"job"
           ~args:
             [
               ("status", Trace.S (outcome_label entry.l_outcome));
               ("query", Trace.S job.Workload.j_query);
               ("attempts", Trace.I entry.l_attempts);
             ]
           ~start:arrival
           ~dur:(Float.max 0. (finish -. arrival))
           (Printf.sprintf "job %d %s" job.Workload.j_id job.Workload.j_query);
         let cs = Cache.stats t.cache in
         Trace.counter trace ~name:"serve" ~time:arrival
           [
             ("queue_depth", float_of_int depth);
             ("shed_total", float_of_int !shed_total);
             ("cache_bytes", float_of_int cs.Cache.bytes);
           ]
       end);
      note_job_metrics t ~submitted:!submitted ~shed_total:!shed_total entry;
      note_job_log entry;
      log := entry :: !log)
    jobs;
  let log = List.rev !log in
  let latencies =
    List.filter_map
      (fun l -> match l.l_outcome with Completed r -> Some r | _ -> None)
      log
  in
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  let completed = Array.length sorted in
  let count f = List.length (List.filter f log) in
  let shed = count (fun l -> match l.l_outcome with Shed _ -> true | _ -> false) in
  let deadline =
    count (fun l ->
        match l.l_outcome with Deadline_exceeded _ -> true | _ -> false)
  in
  let failed =
    count (fun l -> match l.l_outcome with Failed _ -> true | _ -> false)
  in
  let retries =
    Array.to_list tenants |> List.map (fun t -> t.Tenant.retries)
    |> List.fold_left ( + ) 0
  in
  let makespan =
    List.fold_left
      (fun acc l ->
        match l.l_outcome with
        | Completed r -> Float.max acc (l.l_job.Workload.j_arrival +. r)
        | _ -> Float.max acc l.l_job.Workload.j_arrival)
      0. log
  in
  (* Close the scrape series: any boundaries the tail of the run crossed,
     plus one final row at the makespan (the partial last window). *)
  Option.iter
    (fun s ->
      Metrics.Scrape.tick s ~now:makespan;
      Metrics.Scrape.force s ~now:makespan)
    scrape;
  let cs = Cache.stats t.cache in
  let lookups = cs.Cache.hits + cs.Cache.misses in
  let total = List.length log in
  let mean =
    if completed = 0 then 0.
    else Array.fold_left ( +. ) 0. sorted /. float_of_int completed
  in
  {
    r_config = t.cfg;
    r_jobs = total;
    r_completed = completed;
    r_shed = shed;
    r_deadline = deadline;
    r_failed = failed;
    r_retries = retries;
    r_p50_ms = 1e3 *. percentile sorted 0.50;
    r_p95_ms = 1e3 *. percentile sorted 0.95;
    r_p99_ms = 1e3 *. percentile sorted 0.99;
    r_mean_ms = 1e3 *. mean;
    r_hit_rate =
      (if lookups = 0 then 0.
       else float_of_int cs.Cache.hits /. float_of_int lookups);
    r_shed_rate =
      (if total = 0 then 0. else float_of_int shed /. float_of_int total);
    r_throughput =
      (if makespan > 0. then float_of_int completed /. makespan else 0.);
    r_makespan = makespan;
    r_busy = t.busy;
    r_baseline_throughput = None;
    r_cache = cs;
    r_blacklisted = t.blacklisted;
    r_final_bound = Admission.bound t.admission;
    r_tenants = Array.to_list tenants;
    r_log = log;
  }

(* ------------------------------------------------------------------ *)
(* Single-tenant baseline                                              *)
(* ------------------------------------------------------------------ *)

(* The reference a multi-tenant serve run is compared against: one tenant,
   no queue, no sharing — every job runs cold on a fresh context and waits
   for the previous one.  Since fault-free service time is a deterministic
   function of the query, one cold run per distinct query prices the whole
   trace. *)
let baseline_throughput ?domains ?leaf_backend ~nodes (w : Workload.t) =
  let machine = make_machine nodes in
  let costs = Hashtbl.create 8 in
  let total =
    List.fold_left
      (fun acc (job : Workload.job) ->
        let c =
          match Hashtbl.find_opt costs job.Workload.j_query with
          | Some c -> c
          | None ->
              let problem = Catalog.problem ~machine job.Workload.j_query in
              (* [~iterations:1] = the warm-start protocol on a fresh
                 context, so the cold run pays dependent partitioning — the
                 same price every serve-side cold miss pays. *)
              let r =
                Spdistal.run ?domains ?leaf_backend ~faults:Fault.disabled
                  ~trace:Trace.null ~iterations:1 problem
              in
              let c = r.Spdistal.cost.Cost.total in
              Hashtbl.replace costs job.Workload.j_query c;
              c
        in
        acc +. c)
      0. w.Workload.w_jobs
  in
  if total > 0. then float_of_int (List.length w.Workload.w_jobs) /. total
  else 0.

let with_baseline ?domains ?leaf_backend report =
  let w =
    {
      Workload.w_tenants = 1;
      w_jobs = List.map (fun l -> l.l_job) report.r_log;
    }
  in
  {
    report with
    r_baseline_throughput =
      Some
        (baseline_throughput ?domains ?leaf_backend
           ~nodes:report.r_config.s_nodes w);
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* hit_rate's denominator is every shared-cache lookup, and lookups happen
   only for admitted job attempts (completed, deadline-exceeded or failed —
   each attempt that reaches Context.run does exactly one); shed jobs never
   touch the cache, so a heavily-shedding run can report a high hit rate on
   very little traffic. *)
let csv_comment =
  "# hit_rate = shared-cache hits / lookups; only admitted attempts \
   (completed/deadline/failed) perform lookups — shed jobs never reach the \
   cache"

let csv_header =
  "scenario,nodes,jobs,completed,shed,deadline,failed,retries,p50_ms,p95_ms,\
   p99_ms,mean_ms,hit_rate,shed_rate,throughput_jobs_s,baseline_jobs_s,\
   speedup,makespan_s,busy_s,cache_bytes_peak,cache_evictions,blacklisted,\
   final_bound"

let csv_row ~scenario r =
  let baseline, speedup =
    match r.r_baseline_throughput with
    | Some b when b > 0. -> (Printf.sprintf "%.3f" b, Printf.sprintf "%.3f" (r.r_throughput /. b))
    | Some b -> (Printf.sprintf "%.3f" b, "")
    | None -> ("", "")
  in
  Printf.sprintf
    "%s,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f,%.3f,%s,%s,%.4f,%.4f,%d,%d,%d,%d"
    scenario r.r_config.s_nodes r.r_jobs r.r_completed r.r_shed r.r_deadline
    r.r_failed r.r_retries r.r_p50_ms r.r_p95_ms r.r_p99_ms r.r_mean_ms
    r.r_hit_rate r.r_shed_rate r.r_throughput baseline speedup r.r_makespan
    r.r_busy r.r_cache.Cache.bytes_peak r.r_cache.Cache.evictions
    (List.length r.r_blacklisted) r.r_final_bound

(* Per-tenant breakdown: the tenant counters plus latency percentiles over
   that tenant's completed jobs (from the job log, so the export needs no
   extra state in the engine). *)
let tenants_csv_header =
  "scenario,tenant,submitted,completed,shed,deadline,failed,retries,\
   retry_budget,busy_s,p50_ms,p95_ms,p99_ms"

let tenants_csv_rows ~scenario r =
  List.map
    (fun (tn : Tenant.t) ->
      let lat =
        List.filter_map
          (fun l ->
            match l.l_outcome with
            | Completed resp when l.l_job.Workload.j_tenant = tn.Tenant.t_id ->
                Some resp
            | _ -> None)
          r.r_log
      in
      let sorted = Array.of_list lat in
      Array.sort compare sorted;
      Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.3f,%.3f,%.3f" scenario
        tn.Tenant.t_id tn.Tenant.submitted tn.Tenant.completed tn.Tenant.shed
        tn.Tenant.deadline_exceeded tn.Tenant.failed tn.Tenant.retries
        tn.Tenant.budget0 tn.Tenant.busy
        (1e3 *. percentile sorted 0.50)
        (1e3 *. percentile sorted 0.95)
        (1e3 *. percentile sorted 0.99))
    r.r_tenants

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>jobs %d: %d completed, %d shed (%.1f%%), %d deadline-exceeded, %d \
     failed, %d retries@,\
     latency ms: p50 %.3f p99 %.3f mean %.3f@,\
     throughput %.3f jobs/s%s (makespan %.4f s, busy %.4f s)@,\
     cache: %.1f%% hits, %d B peak (%d evictions)@,\
     degradation: %d blacklisted%s, queue bound %d@,%a@]"
    r.r_jobs r.r_completed r.r_shed (100. *. r.r_shed_rate) r.r_deadline
    r.r_failed r.r_retries r.r_p50_ms r.r_p99_ms r.r_mean_ms r.r_throughput
    (match r.r_baseline_throughput with
    | Some b when b > 0. ->
        Printf.sprintf " (%.2fx single-tenant %.3f)" (r.r_throughput /. b) b
    | _ -> "")
    r.r_makespan r.r_busy (100. *. r.r_hit_rate) r.r_cache.Cache.bytes_peak
    r.r_cache.Cache.evictions
    (List.length r.r_blacklisted)
    (match r.r_blacklisted with
    | [] -> ""
    | ns ->
        Printf.sprintf " (nodes %s)"
          (String.concat "," (List.map string_of_int ns)))
    r.r_final_bound
    (Format.pp_print_list Tenant.pp)
    r.r_tenants

(* Convenience wrapper: build a server, serve the trace, optionally price
   the single-tenant baseline. *)
let run ?domains ?leaf_backend ?trace ?scrape ?(baseline = false) cfg w =
  let t = create cfg in
  let report = serve ?domains ?leaf_backend ?trace ?scrape t w in
  if baseline then with_baseline ?domains ?leaf_backend report else report
