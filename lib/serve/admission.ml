(* Admission control: the bounded front door of the serve loop.

   Two structured rejection reasons, both cheap to compute at arrival time
   so a shed job costs the server nothing:

   - [Admission] — the queue is full.  The bound is the backpressure
     mechanism: beyond it, latency grows without helping throughput, so
     excess jobs are rejected immediately instead of queuing into an
     unbounded-latency (and unbounded-memory) backlog.

   - [Deadline] — the job cannot meet its deadline even if admitted: the
     current backlog plus the estimated service time (an EWMA of past
     simulated costs of the same query, priced by the cost clock) already
     exceeds it.  Running it would waste capacity on an answer nobody can
     use, which under load is what collapses a server.

   Degradation ladder: admission tightens as the cluster shrinks.  When
   nodes are blacklisted the service scale (total/alive) inflates every
   estimate and the queue bound contracts proportionally, so a degraded
   server sheds more and promises less instead of missing deadlines it can
   no longer meet. *)

open Spdistal_runtime
module Metrics = Spdistal_obs.Metrics

type t = {
  base_bound : int;
  mutable bound : int;  (* current queue bound (degradation-scaled) *)
  mutable scale : float;  (* service-time inflation, total/alive nodes *)
  estimates : (string, float) Hashtbl.t;  (* per-query EWMA, sim seconds *)
  mutable depth_peak : int;
  mutable sheds_full : int;
  mutable sheds_hopeless : int;
}

let ewma_alpha = 0.3

let create ~queue_bound =
  if queue_bound < 1 then
    Error.fail Error.Config "admission queue bound %d must be >= 1" queue_bound;
  {
    base_bound = queue_bound;
    bound = queue_bound;
    scale = 1.;
    estimates = Hashtbl.create 16;
    depth_peak = 0;
    sheds_full = 0;
    sheds_hopeless = 0;
  }

let estimate t query =
  Option.map (fun e -> e *. t.scale) (Hashtbl.find_opt t.estimates query)

(* Feed one observed service time (simulated seconds, from the cost clock)
   back into the per-query estimate.  Observations are recorded at scale 1
   (the estimate is per-node-count-adjusted on read). *)
let observe t query seconds =
  let seconds = seconds /. t.scale in
  (match Hashtbl.find_opt t.estimates query with
  | None -> Hashtbl.replace t.estimates query seconds
  | Some e ->
      Hashtbl.replace t.estimates query
        (((1. -. ewma_alpha) *. e) +. (ewma_alpha *. seconds)));
  let m = Metrics.default () in
  if Metrics.enabled m then
    Metrics.set m
      ~labels:[ ("query", query) ]
      ~help:"per-query EWMA service-time estimate (scale-1 sim seconds)"
      "spdistal_serve_estimate_seconds"
      (Hashtbl.find t.estimates query)

(* One rung down the degradation ladder: [alive] of [total] nodes remain.
   The queue bound contracts with capacity (floored at 1 so the server
   keeps answering), and estimates inflate by the lost parallelism. *)
let degrade t ~alive ~total =
  if alive < 1 || total < alive then
    Error.fail Error.Config "degrade: alive %d of total %d" alive total;
  t.scale <- float_of_int total /. float_of_int alive;
  t.bound <-
    max 1 (t.base_bound * alive / total)

type decision = Admit | Reject of Error.t

let reject t job_what phase fmt =
  Printf.ksprintf
    (fun what ->
      let reason =
        match phase with
        | Error.Admission ->
            t.sheds_full <- t.sheds_full + 1;
            "queue_full"
        | _ ->
            t.sheds_hopeless <- t.sheds_hopeless + 1;
            "hopeless_deadline"
      in
      let m = Metrics.default () in
      if Metrics.enabled m then
        Metrics.inc m
          ~labels:[ ("reason", reason) ]
          ~help:"jobs shed at admission by reason" "spdistal_serve_shed_total";
      Reject
        { Error.phase; kernel = Some job_what; piece = None; node = None; what })
    fmt

let bound t = t.bound
let depth_peak t = t.depth_peak
let sheds_full t = t.sheds_full
let sheds_hopeless t = t.sheds_hopeless

let decide t ~query ~depth ~backlog ~deadline =
  t.depth_peak <- max t.depth_peak depth;
  let m = Metrics.default () in
  if Metrics.enabled m then begin
    Metrics.set m ~help:"admitted jobs in flight at the last arrival"
      "spdistal_serve_queue_depth" (float_of_int depth);
    Metrics.set m ~help:"current admission queue bound (degradation-scaled)"
      "spdistal_serve_queue_bound" (float_of_int t.bound)
  end;
  if depth >= t.bound then
    reject t query Error.Admission
      "queue full: depth %d >= bound %d (backlog %.4f s); retry later" depth
      t.bound backlog
  else
    match estimate t query with
    | Some est when backlog +. est > deadline ->
        reject t query Error.Deadline
          "cannot meet deadline %.4f s: backlog %.4f s + estimated service \
           %.4f s"
          deadline backlog est
    | _ -> Admit
