(* Per-tenant accounting: a retry budget that isolates one tenant's failing
   query from everyone else's latency, and the per-tenant slice of every
   serve metric.

   The budget is the serving analog of [Fault.max_retries]: recovery inside
   a launch retries transient faults, but when a whole job dies (recovery
   exhausted — a DNC), re-admitting it costs server time that other tenants'
   queued jobs are waiting behind.  Each tenant gets a fixed number of
   re-admissions for the whole trace; once spent, that tenant's failing jobs
   fail fast with a structured error instead of burning another slot. *)

open Spdistal_runtime
module Metrics = Spdistal_obs.Metrics

type t = {
  t_id : int;
  budget0 : int;
  mutable budget : int;  (* re-admissions left *)
  mutable submitted : int;
  mutable completed : int;
  mutable shed : int;
  mutable deadline_exceeded : int;
  mutable failed : int;
  mutable retries : int;  (* re-admissions actually used *)
  mutable busy : float;  (* simulated server seconds charged to this tenant *)
}

let create ~retry_budget id =
  if retry_budget < 0 then
    Error.fail Error.Config "tenant retry budget %d must be >= 0" retry_budget;
  {
    t_id = id;
    budget0 = retry_budget;
    budget = retry_budget;
    submitted = 0;
    completed = 0;
    shed = 0;
    deadline_exceeded = 0;
    failed = 0;
    retries = 0;
    busy = 0.;
  }

(* Spend one re-admission; [false] when the budget is exhausted (the caller
   must fail the job instead of retrying). *)
let try_retry t =
  if t.budget > 0 then begin
    t.budget <- t.budget - 1;
    t.retries <- t.retries + 1;
    let m = Metrics.default () in
    if Metrics.enabled m then
      Metrics.inc m
        ~labels:[ ("tenant", string_of_int t.t_id) ]
        ~help:"job re-admissions spent from tenant retry budgets"
        "spdistal_serve_retries_total";
    true
  end
  else false

let pp fmt t =
  Format.fprintf fmt
    "tenant %d: %d submitted, %d completed, %d shed, %d deadline, %d failed, \
     %d/%d retries used, %.4f s busy"
    t.t_id t.submitted t.completed t.shed t.deadline_exceeded t.failed
    t.retries t.budget0 t.busy
