(** Deterministic workload traces for the serving front-end.

    A trace is a stream of (tenant, query, arrival, deadline) jobs: query
    popularity is Zipf over the catalog, arrivals are Poisson (optionally
    with an overload burst window), deadlines are spread around a mean.
    Generation is a pure function of the seed (built on
    {!Spdistal_runtime.Srng}), so a serve run replays bit-for-bit from its
    generator parameters — or from a saved trace file. *)

type job = {
  j_id : int;
  j_tenant : int;
  j_query : string;  (** catalog name, see {!Catalog} *)
  j_arrival : float;  (** simulated seconds since serve start *)
  j_deadline : float;  (** relative deadline, simulated seconds *)
}

type t = { w_tenants : int; w_jobs : job list (** ascending arrival *) }

type gen = {
  g_seed : int;
  g_jobs : int;
  g_tenants : int;
  g_rate : float;  (** mean arrivals per simulated second *)
  g_alpha : float;  (** Zipf exponent of query popularity *)
  g_deadline : float;  (** mean relative deadline, simulated seconds *)
  g_burst : (float * float * float) option;
      (** (start, length, multiplier): the overload window *)
}

(** 200 jobs, 4 tenants, 200 jobs/s, alpha 1.1, 0.5 s deadlines, no
    burst. *)
val default_gen : gen

(** [generate ?gen ~catalog ()] draws a trace over the query names in
    [catalog].  Raises {!Spdistal_runtime.Error.Error} ([Config]) on
    non-finite or out-of-range generator parameters and on an empty
    catalog. *)
val generate : ?gen:gen -> catalog:string list -> unit -> t

(** Bit-exact round trip ([%h] floats). *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** Read/write a trace file; [load] raises {!Spdistal_runtime.Error.Error}
    ([Config]) on a malformed file. *)
val load : string -> t

val save : string -> t -> unit
