(** The query catalog a serve instance answers: named (kernel, tensor-ref)
    computations over deterministic synthetic tensors.  Tensors are memoized
    per query, so every job for a query shares one tensor instance and one
    cache digest — the precondition for cross-job cache hits. *)

open Spdistal_runtime

type entry = {
  c_name : string;
  c_tensor : Spdistal_formats.Tensor.t Lazy.t;
  c_problem : machine:Machine.t -> Core.Spdistal.problem;
}

val all : entry list

(** Catalog names, the domain of {!Workload.generate}'s [catalog]. *)
val names : string list

(** Raises {!Spdistal_runtime.Error.Error} ([Config]) on unknown names. *)
val find : string -> entry

val problem : machine:Machine.t -> string -> Core.Spdistal.problem
