(* The query catalog: the fixed menu of (kernel, tensor-ref) computations a
   serve instance answers.  Jobs reference queries by name; the tensors
   behind them are deterministic synthetic analogs (memoized, so every job
   for a query shares one tensor instance — the "tensor-ref" of the job
   stream, and the reason cache digests collide across jobs and hit).

   Sizes are deliberately modest: a serve run executes hundreds of jobs, and
   the interesting behavior (admission, deadlines, eviction, degradation)
   lives in the queue and the cache, not in the leaf flops. *)

open Spdistal_runtime
open Spdistal_workloads

type entry = {
  c_name : string;
  c_tensor : Spdistal_formats.Tensor.t Lazy.t;
  c_problem : machine:Machine.t -> Core.Spdistal.problem;
}

let mk name tensor problem =
  { c_name = name; c_tensor = tensor; c_problem = problem }

let all =
  let spmv_web =
    lazy
      (Synth.power_law ~name:"B" ~rows:1_200 ~cols:1_200 ~nnz:18_000 ~alpha:1.1
         ~seed:901)
  in
  let spmv_banded = lazy (Synth.banded ~name:"B" ~n:2_000 ~band:10) in
  let spmm_uniform =
    lazy (Synth.uniform ~name:"B" ~rows:800 ~cols:800 ~nnz:12_000 ~seed:902)
  in
  let sddmm_social =
    lazy
      (Synth.power_law ~name:"B" ~rows:1_000 ~cols:1_000 ~nnz:15_000 ~alpha:1.2
         ~seed:903)
  in
  let spadd3_stencil = lazy (Synth.stencil ~name:"B" ~n:1_500 ~points:5) in
  let spttv_events =
    lazy
      (Synth.tensor3_uniform ~name:"B" ~dims:[| 200; 150; 100 |] ~nnz:8_000
         ~seed:904)
  in
  let mttkrp_reviews =
    lazy
      (Synth.tensor3_skewed ~name:"B" ~dims:[| 180; 140; 90 |] ~nnz:8_000
         ~alpha:1.0 ~seed:905)
  in
  [
    mk "spmv-web" spmv_web (fun ~machine ->
        Core.Kernels.spmv_problem ~machine (Lazy.force spmv_web));
    mk "spmv-banded" spmv_banded (fun ~machine ->
        Core.Kernels.spmv_problem ~machine (Lazy.force spmv_banded));
    mk "spmm-dense8" spmm_uniform (fun ~machine ->
        Core.Kernels.spmm_problem ~machine ~cols:8 (Lazy.force spmm_uniform));
    mk "sddmm-social" sddmm_social (fun ~machine ->
        Core.Kernels.sddmm_problem ~machine ~cols:8 (Lazy.force sddmm_social));
    mk "spadd3-stencil" spadd3_stencil (fun ~machine ->
        Core.Kernels.spadd3_problem ~machine (Lazy.force spadd3_stencil));
    mk "spttv-events" spttv_events (fun ~machine ->
        Core.Kernels.spttv_problem ~machine (Lazy.force spttv_events));
    mk "mttkrp-reviews" mttkrp_reviews (fun ~machine ->
        Core.Kernels.mttkrp_problem ~machine ~cols:8
          (Lazy.force mttkrp_reviews));
  ]

let names = List.map (fun e -> e.c_name) all

let find name =
  match List.find_opt (fun e -> e.c_name = name) all with
  | Some e -> e
  | None -> Error.fail Error.Config "unknown catalog query %S" name

let problem ~machine name = (find name).c_problem ~machine
