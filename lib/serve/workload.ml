(* Deterministic workload traces for the serving front-end.

   A trace is a stream of (tenant, query, arrival, deadline) jobs.  Query
   popularity is Zipf-distributed over the catalog (a few queries dominate,
   as in any production query mix — exactly the regime where a shared
   partition/kernel cache pays), arrivals follow a Poisson process
   (exponential inter-arrival times), optionally with a burst window where
   the rate is multiplied (the overload scenario).  Everything is a pure
   function of the seed, like [Fault]'s schedule and [Synth]'s tensors, so a
   serve run is replayable bit-for-bit from its generator parameters — or
   from a saved trace file. *)

open Spdistal_runtime

type job = {
  j_id : int;
  j_tenant : int;
  j_query : string;
  j_arrival : float;  (* simulated seconds since serve start *)
  j_deadline : float;  (* relative deadline, simulated seconds *)
}

type t = { w_tenants : int; w_jobs : job list }

type gen = {
  g_seed : int;
  g_jobs : int;
  g_tenants : int;
  g_rate : float;  (* mean arrivals per simulated second *)
  g_alpha : float;  (* Zipf exponent of query popularity *)
  g_deadline : float;  (* mean relative deadline, simulated seconds *)
  g_burst : (float * float * float) option;
      (* (start, length, multiplier): arrival rate is [g_rate * multiplier]
         inside the window — the overload burst *)
}

let default_gen =
  {
    g_seed = 42;
    g_jobs = 200;
    g_tenants = 4;
    g_rate = 200.;
    g_alpha = 1.1;
    g_deadline = 0.5;
    g_burst = None;
  }

let validate g =
  let bad fmt = Error.fail Error.Config fmt in
  if g.g_jobs < 1 then bad "workload jobs %d must be >= 1" g.g_jobs;
  if g.g_tenants < 1 then bad "workload tenants %d must be >= 1" g.g_tenants;
  if not (Float.is_finite g.g_rate && g.g_rate > 0.) then
    bad "workload arrival rate %g must be finite and > 0" g.g_rate;
  if not (Float.is_finite g.g_alpha && g.g_alpha > 0.) then
    bad "workload zipf alpha %g must be finite and > 0" g.g_alpha;
  if not (Float.is_finite g.g_deadline && g.g_deadline > 0.) then
    bad "workload deadline %g must be finite and > 0" g.g_deadline;
  match g.g_burst with
  | Some (s, l, m) ->
      if not (Float.is_finite s && s >= 0.) then
        bad "burst start %g must be finite and >= 0" s;
      if not (Float.is_finite l && l > 0.) then
        bad "burst length %g must be finite and > 0" l;
      if not (Float.is_finite m && m >= 1.) then
        bad "burst multiplier %g must be finite and >= 1" m
  | None -> ()

let rate_at g t =
  match g.g_burst with
  | Some (s, l, m) when t >= s && t < s +. l -> g.g_rate *. m
  | _ -> g.g_rate

let generate ?(gen = default_gen) ~catalog () =
  validate gen;
  if catalog = [] then
    Error.fail Error.Config "workload generation needs a non-empty catalog";
  let qnames = Array.of_list catalog in
  let rng = Srng.create gen.g_seed in
  let t = ref 0. in
  let jobs =
    List.init gen.g_jobs (fun id ->
        (* Exponential inter-arrival at the current (possibly bursting)
           rate; [1. -. float] is in (0, 1] so the log is finite. *)
        let dt = -.log (1. -. Srng.float rng) /. rate_at gen !t in
        t := !t +. dt;
        let q = Srng.zipf rng ~n:(Array.length qnames) ~alpha:gen.g_alpha in
        let tenant = Srng.int rng gen.g_tenants in
        (* Deadlines spread uniformly in [0.5, 1.5) x the mean, so some jobs
           are tight and some are lax at every load level. *)
        let deadline = gen.g_deadline *. (0.5 +. Srng.float rng) in
        {
          j_id = id;
          j_tenant = tenant;
          j_query = qnames.(q);
          j_arrival = !t;
          j_deadline = deadline;
        })
  in
  { w_tenants = gen.g_tenants; w_jobs = jobs }

(* ------------------------------------------------------------------ *)
(* Trace files                                                         *)
(* ------------------------------------------------------------------ *)

(* Line format, one job per line after the header:
     spdistal-workload v1 tenants=<n>
     job <id> <tenant> <query> <arrival> <deadline>
   Floats are rendered in hex (%h) so a round trip is bit-exact. *)

let magic = "spdistal-workload v1"

let to_string w =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%s tenants=%d\n" magic w.w_tenants);
  List.iter
    (fun j ->
      Buffer.add_string buf
        (Printf.sprintf "job %d %d %s %h %h\n" j.j_id j.j_tenant j.j_query
           j.j_arrival j.j_deadline))
    w.w_jobs;
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Result.Error m) fmt in
  match String.split_on_char '\n' s with
  | [] -> fail "empty workload trace"
  | header :: lines -> (
      match String.index_opt header '=' with
      | Some i
        when String.length header > String.length magic
             && String.sub header 0 (String.length magic) = magic -> (
          let tenants_str =
            String.sub header (i + 1) (String.length header - i - 1)
          in
          match int_of_string_opt (String.trim tenants_str) with
          | None -> fail "bad workload header %S" header
          | Some tenants -> (
              let jobs = ref [] and err = ref None in
              List.iteri
                (fun n line ->
                  let line = String.trim line in
                  if line <> "" && !err = None then
                    match String.split_on_char ' ' line with
                    | [ "job"; id; tenant; query; arrival; deadline ] -> (
                        match
                          ( int_of_string_opt id,
                            int_of_string_opt tenant,
                            float_of_string_opt arrival,
                            float_of_string_opt deadline )
                        with
                        | Some id, Some tenant, Some arrival, Some deadline ->
                            jobs :=
                              {
                                j_id = id;
                                j_tenant = tenant;
                                j_query = query;
                                j_arrival = arrival;
                                j_deadline = deadline;
                              }
                              :: !jobs
                        | _ -> err := Some (n + 2))
                    | _ -> err := Some (n + 2))
                lines;
              match !err with
              | Some line -> fail "bad workload trace line %d" line
              | None -> Ok { w_tenants = tenants; w_jobs = List.rev !jobs }))
      | _ -> fail "not a workload trace (missing %S header)" magic)

let load path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match of_string s with
  | Ok w -> w
  | Result.Error msg -> Error.fail Error.Config "%s: %s" path msg

let save path w =
  let oc = open_out path in
  output_string oc (to_string w);
  close_out oc
