(** Per-tenant accounting: retry budgets (failure isolation) and the
    per-tenant slice of the serve metrics. *)

type t = {
  t_id : int;
  budget0 : int;  (** the budget the tenant started with *)
  mutable budget : int;  (** re-admissions left after a job-level failure *)
  mutable submitted : int;
  mutable completed : int;
  mutable shed : int;
  mutable deadline_exceeded : int;
  mutable failed : int;
  mutable retries : int;
  mutable busy : float;  (** simulated server seconds charged *)
}

(** Raises {!Spdistal_runtime.Error.Error} ([Config]) on a negative
    budget. *)
val create : retry_budget:int -> int -> t

(** Spend one re-admission; [false] when exhausted — the job must fail fast
    instead of being retried, so the tenant cannot starve others. *)
val try_retry : t -> bool

val pp : Format.formatter -> t -> unit
