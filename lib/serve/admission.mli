(** Admission control: a bounded queue with structured load-shedding
    rejections and deadline-aware early shedding, tightening as the cluster
    degrades. *)

open Spdistal_runtime

type t

(** Raises {!Spdistal_runtime.Error.Error} ([Config]) when [queue_bound] <
    1. *)
val create : queue_bound:int -> t

(** Degradation-scaled estimated service time of a query (simulated
    seconds), [None] until {!observe}d at least once. *)
val estimate : t -> string -> float option

(** Feed one observed service time (simulated seconds) into the per-query
    EWMA. *)
val observe : t -> string -> float -> unit

(** One rung down the degradation ladder: [alive] of [total] nodes remain.
    Contracts the queue bound proportionally (floored at 1) and inflates
    estimates by [total/alive]. *)
val degrade : t -> alive:int -> total:int -> unit

type decision =
  | Admit
  | Reject of Error.t
      (** phase [Admission] (queue full — backpressure) or [Deadline]
          (cannot meet the deadline even if admitted) *)

(** [decide t ~query ~depth ~backlog ~deadline] — [depth] is the number of
    admitted-unfinished jobs, [backlog] the simulated seconds of queued work
    ahead, [deadline] the job's relative deadline. *)
val decide :
  t -> query:string -> depth:int -> backlog:float -> deadline:float -> decision

(** {1 Counters} *)

val bound : t -> int
val depth_peak : t -> int

(** Rejections with phase [Admission] (queue full). *)
val sheds_full : t -> int

(** Rejections with phase [Deadline] (hopeless before admission). *)
val sheds_hopeless : t -> int
