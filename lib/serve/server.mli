(** The serve engine: a multi-tenant job-queue front-end over one shared
    partition/kernel cache and one simulated machine.

    Jobs arrive at their trace timestamps on the simulated clock, pass
    {!Admission} (bounded queue + deadline-aware shedding), run FCFS on a
    single service lane priced by the cost clock, and are cancelled at their
    deadline — charged only for the work actually done.  Contexts for every
    catalog query share one byte-budgeted {!Spdistal_exec.Cache}.  Jobs
    whose fault recovery is exhausted are re-admitted after
    {!Spdistal_runtime.Fault.backoff_time}, gated by per-tenant retry
    budgets; repeatedly crashing nodes are blacklisted, the machine rebuilt
    on the survivors and admission tightened — graceful degradation, never a
    server crash. *)

open Spdistal_runtime
module Cache = Spdistal_exec.Cache

type config = {
  s_nodes : int;
  s_queue_bound : int;
  s_cache_cap : int;
  s_cache_budget : int option;  (** cache byte budget; [None] = unlimited *)
  s_retry_budget : int;  (** per-tenant re-admissions after a DNC *)
  s_blacklist_after : int;
      (** crash strikes before a node is blacklisted *)
  s_faults : Fault.config;
  s_auto : bool;
      (** replace each catalog problem's hand schedule with the
          auto-scheduler's pick ({!Spdistal_opt.Auto.schedule}); winners are
          remembered in the shared cache, so rescheduling is priced once per
          (machine, pattern).  The single-tenant baseline keeps the hand
          schedules. *)
}

(** 4 nodes, queue bound 32, 1 MiB cache budget, 2 retries/tenant,
    blacklist after 3 strikes, faults disabled, auto-scheduling off. *)
val default_config : config

type outcome =
  | Completed of float
      (** response time (queue wait + service), simulated seconds *)
  | Shed of Error.t
      (** rejected at admission ([Admission] or [Deadline] phase); cost the
          server nothing *)
  | Deadline_exceeded of float
      (** cancelled at the deadline; carries the simulated seconds of work
          actually charged *)
  | Failed of Error.t  (** DNC with the tenant's retry budget exhausted *)

type job_log = {
  l_job : Workload.job;
  l_outcome : outcome;
  l_attempts : int;  (** admissions actually run: 1 + retries *)
  l_hits : int;  (** cache hits this job observed *)
}

type report = {
  r_config : config;
  r_jobs : int;
  r_completed : int;
  r_shed : int;
  r_deadline : int;
  r_failed : int;
  r_retries : int;
  r_p50_ms : float;
  r_p95_ms : float;
  r_p99_ms : float;
  r_mean_ms : float;  (** over completed jobs' response times *)
  r_hit_rate : float;
  r_shed_rate : float;
  r_throughput : float;  (** completed jobs per simulated second *)
  r_makespan : float;
  r_busy : float;  (** simulated seconds the service lane was occupied *)
  r_baseline_throughput : float option;
      (** single-tenant reference (every job cold, no sharing); see
          {!with_baseline} *)
  r_cache : Cache.stats;
  r_blacklisted : int list;  (** original node ids, sorted *)
  r_final_bound : int;  (** queue bound after degradation *)
  r_tenants : Tenant.t list;
  r_log : job_log list;  (** per-job outcomes in trace order *)
}

type t

(** Raises {!Spdistal_runtime.Error.Error} ([Config]) on nonsensical
    bounds. *)
val create : config -> t

(** Serve a whole trace.  [trace] (default
    {!Spdistal_obs.Trace.null}) gets a simulated-clock job span per job on
    its tenant's track plus queue-depth/shed/cache-bytes counters — and is
    also passed to every underlying {!Core.Spdistal.Context.run}.

    [scrape] is ticked on the serve loop's virtual clock: at every job
    arrival it snapshots each interval boundary the clock has crossed, and
    at the end of the run it appends one final row at the makespan.  Because
    ticking happens on the sequential loop, the scraped series are
    bit-identical across [domains] whenever the run itself is. *)
val serve :
  ?domains:int ->
  ?leaf_backend:Spdistal_exec.Compile_leaf.backend ->
  ?trace:Spdistal_obs.Trace.t ->
  ?scrape:Spdistal_obs.Metrics.Scrape.t ->
  t ->
  Workload.t ->
  report

(** Price the single-tenant baseline (one tenant, no queue, no cache
    sharing: every job pays its query's cold fault-free cost serially) and
    attach it to the report. *)
val with_baseline :
  ?domains:int ->
  ?leaf_backend:Spdistal_exec.Compile_leaf.backend ->
  report ->
  report

(** {!create} + {!serve} (+ {!with_baseline} when [baseline]). *)
val run :
  ?domains:int ->
  ?leaf_backend:Spdistal_exec.Compile_leaf.backend ->
  ?trace:Spdistal_obs.Trace.t ->
  ?scrape:Spdistal_obs.Metrics.Scrape.t ->
  ?baseline:bool ->
  config ->
  Workload.t ->
  report

(** {1 Rendering} *)

val outcome_label : outcome -> string

(** Documents the [hit_rate] denominator (shed jobs never reach the cache);
    written above {!csv_header} in results files. *)
val csv_comment : string

val csv_header : string
val csv_row : scenario:string -> report -> string

(** Per-tenant breakdown of a report: one row per tenant with the counter
    slice and latency percentiles over that tenant's completed jobs. *)
val tenants_csv_header : string

val tenants_csv_rows : scenario:string -> report -> string list
val pp_report : Format.formatter -> report -> unit
