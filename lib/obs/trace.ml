type track =
  | Runtime
  | Piece of { node : int; piece : int }
  | Host of int
  | Tenant of int

type clock = Sim | Wall

type value = I of int | F of float | S of string | B of bool

type span = {
  sp_track : track;
  sp_clock : clock;
  sp_cat : string;
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_args : (string * value) list;
}

type counter = {
  ct_name : string;
  ct_time : float;
  ct_series : (string * float) list;
}

type t = {
  on : bool;
  epoch : float;
  mutable spans : span list;  (* newest first *)
  mutable counters : counter list;  (* newest first *)
  edges : (int * int, float ref) Hashtbl.t;
  mutable meta : (string * string) list;
}

let create () =
  {
    on = true;
    epoch = Unix.gettimeofday ();
    spans = [];
    counters = [];
    edges = Hashtbl.create 16;
    meta = [];
  }

let null =
  {
    on = false;
    epoch = 0.;
    spans = [];
    counters = [];
    edges = Hashtbl.create 1;
    meta = [];
  }

let enabled t = t.on

let default_trace = ref null
let default () = !default_trace
let set_default t = default_trace := t

let now t = if t.on then Unix.gettimeofday () -. t.epoch else 0.
let epoch t = t.epoch

let span t ~track ~clock ~cat ?(args = []) ~start ~dur name =
  if t.on then
    t.spans <-
      {
        sp_track = track;
        sp_clock = clock;
        sp_cat = cat;
        sp_name = name;
        sp_start = start;
        sp_dur = dur;
        sp_args = args;
      }
      :: t.spans

let with_wall_span t ~track ~cat ~name f =
  if not t.on then f ()
  else begin
    let start = now t in
    let v = f () in
    span t ~track ~clock:Wall ~cat ~start ~dur:(now t -. start) name;
    v
  end

let counter t ~name ~time series =
  if t.on then
    t.counters <- { ct_name = name; ct_time = time; ct_series = series } :: t.counters

let comm_edge t ~src ~dst bytes =
  if t.on && bytes > 0. then
    match Hashtbl.find_opt t.edges (src, dst) with
    | Some r -> r := !r +. bytes
    | None -> Hashtbl.add t.edges (src, dst) (ref bytes)

let set_meta t k v =
  if t.on then t.meta <- (k, v) :: List.remove_assoc k t.meta

let spans t = List.rev t.spans
let counters t = List.rev t.counters

let comm_matrix ?(min_nodes = 0) t =
  let n =
    Hashtbl.fold (fun (s, d) _ acc -> max acc (max s d + 1)) t.edges min_nodes
  in
  let m = Array.make_matrix n n 0. in
  Hashtbl.iter (fun (s, d) r -> m.(s).(d) <- !r) t.edges;
  m

let meta t = List.rev t.meta

let track_label = function
  | Runtime -> "runtime"
  | Piece { node; piece } -> Printf.sprintf "node %d / piece %d" node piece
  | Host d -> Printf.sprintf "host domain %d" d
  | Tenant t -> Printf.sprintf "tenant %d" t
