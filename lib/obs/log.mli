(** Leveled, structured event logging (JSONL).

    Events carry the simulated time (when known), the same {!Trace.track}
    ids the Chrome-trace exporter uses (rendered as [pid]/[tid] so a log
    line can be correlated with a span in the exported trace), an optional
    correlating span name, and typed fields.

    Like [Trace] and [Metrics], emission happens on the reducing domain or
    the sequential serve loop, so a log is byte-identical across
    [--domains]; {!null} is a shared disabled log (one branch per call). *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option

type entry = {
  e_seq : int;  (** emission order, 0-based *)
  e_time : float option;  (** simulated seconds, when the site has a clock *)
  e_level : level;
  e_event : string;  (** e.g. ["job_admitted"], ["cache_evicted"] *)
  e_track : Trace.track option;
  e_span : string option;  (** name of the correlating Chrome-trace span *)
  e_fields : (string * Trace.value) list;
}

type t

(** [create ?level ()] — a fresh enabled log keeping entries at [>= level]
    (default [Info]; [Debug] keeps everything). *)
val create : ?level:level -> unit -> t

(** The shared disabled log: every emission is a no-op. *)
val null : t

val enabled : t -> bool

(** {1 Ambient default} — mirrors [Metrics.default]; initial default {!null}. *)

val default : unit -> t

val set_default : t -> unit

(** [event t ?level ?time ?track ?span ?fields name] records one entry
    (dropped when below the log's level). *)
val event :
  t ->
  ?level:level ->
  ?time:float ->
  ?track:Trace.track ->
  ?span:string ->
  ?fields:(string * Trace.value) list ->
  string ->
  unit

(** In emission order. *)
val entries : t -> entry list

(** One JSON object per entry:
    [{"seq":..,"t":..,"level":..,"event":..,"track":..,"pid":..,"tid":..,
      "span":..,"fields":{..}}] — [pid]/[tid] match the Chrome-trace
    exporter's track layout. *)
val to_jsonl : t -> string

(** Write {!to_jsonl} to [path]. *)
val write : t -> path:string -> unit
