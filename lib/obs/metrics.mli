(** Live metrics: a process-wide registry of labeled counters, gauges and
    histograms, with Prometheus-style text exposition and a sim-clock-driven
    snapshot scraper (cf. Legion's runtime accounting, reproduced here as a
    service-side metrics plane rather than a post-hoc profile).

    {b Determinism.} Like [Trace] spans, every metric on the simulated clock
    is emitted on the reducing domain in piece order (or on the sequential
    serve loop), so snapshots and exposition text are byte-identical across
    [--domains] settings.  Histograms are log-bucketed with precomputed
    boundaries: an observation lands in a bucket by binary search (no libm
    calls) and quantiles are read off bucket upper boundaries from integer
    counts alone, so p50/p95/p99 carry no float-summation-order hazard.
    Metric families that are inherently wall-clock or configuration
    dependent (pool worker counts, auto-search wall seconds) are registered
    with [~wall:true] and excluded from snapshots and exposition unless
    explicitly requested.

    {b Cost when disabled.} {!null} is a shared disabled registry; every
    mutation first checks {!enabled} (one immutable bool field), so an
    uninstrumented hot path pays a single branch and allocates nothing.

    {b Label cardinality.} Labels multiply series: keep every label drawn
    from a small closed set (outcome, shed reason, fault kind, query name,
    tenant id).  Never label by job id, digest, or timestamp. *)

type kind = Counter | Gauge | Histogram

type t

(** A fresh enabled registry. *)
val create : unit -> t

(** The shared disabled registry: every mutation is a no-op. *)
val null : t

val enabled : t -> bool

(** {1 Ambient default}

    Mirrors [Trace.default]/[Fault.default]: the CLI installs a registry for
    the whole process; instrumented libraries write to this.  The initial
    default is {!null}. *)

val default : unit -> t

val set_default : t -> unit

(** {1 Mutation}

    Families are created on first use with the kind implied by the mutation
    ([inc] → counter, [set] → gauge, [observe] → histogram); using one name
    with two kinds raises [Invalid_argument].  A family's [~wall]/[~help]/
    [~buckets] attributes are fixed by whichever call creates it.  Labels
    are sorted internally, so label order never distinguishes series. *)

(** [inc t ?labels ?by name] adds [by] (default [1.]) to a counter.
    Negative or non-finite increments raise [Invalid_argument]. *)
val inc :
  t ->
  ?labels:(string * string) list ->
  ?by:float ->
  ?help:string ->
  ?wall:bool ->
  string ->
  unit

(** [set t ?labels name v] sets a gauge to [v]. *)
val set :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  ?wall:bool ->
  string ->
  float ->
  unit

(** [observe t ?labels name v] records [v] into a histogram.  Buckets default
    to powers of two from [2^-20] (~1 µs) to [2^14] s; pass [?buckets]
    (strictly increasing, finite) on the call that creates the family to
    override. *)
val observe :
  t ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  ?help:string ->
  ?wall:bool ->
  string ->
  float ->
  unit

(** {1 Reading} *)

(** Current value of a counter or gauge series, if it exists. *)
val value : t -> ?labels:(string * string) list -> string -> float option

(** [quantile t ?labels name q] for [q] in [(0, 1]]: the upper boundary of
    the histogram bucket containing observation rank [ceil (q * count)]
    (the last finite boundary for overflow observations).  [None] if the
    series is missing or empty.  Deterministic: a pure function of integer
    bucket counts and the precomputed boundaries. *)
val quantile : t -> ?labels:(string * string) list -> string -> float -> float option

(** Count and sum of a histogram series, if it exists. *)
val hist_stats : t -> ?labels:(string * string) list -> string -> (int * float) option

type sample = {
  sm_name : string;  (** family name, or derived [_count]/[_sum]/[_p50]/[_p95]/[_p99] *)
  sm_labels : (string * string) list;  (** sorted by label name *)
  sm_value : float;
}

(** Flat view of the registry, sorted by (name, labels).  Histogram series
    flatten to [_count]/[_sum]/[_p50]/[_p95]/[_p99] samples (quantiles are
    omitted while a histogram is empty).  Wall-flagged families are skipped
    unless [~wall:true]. *)
val snapshot : ?wall:bool -> t -> sample list

(** [name{k=v;k2=v2}] — the CSV/JSONL series id ([;]-separated so the id
    never contains a comma). *)
val sample_id : sample -> string

(** Prometheus text exposition ([# HELP]/[# TYPE], [_bucket{le=...}],
    [_sum], [_count]); families sorted by name, series by labels.
    Wall-flagged families are skipped unless [~wall:true]. *)
val expose : ?wall:bool -> t -> string

(** {1 Snapshot scraping}

    A scraper ties a registry to the simulated clock: the serve loop calls
    {!Scrape.tick} as virtual time advances, and the scraper appends one
    snapshot row per elapsed interval boundary.  Boundary times are the
    deterministic sequence [interval, 2*interval, ...], so the scraped
    series is byte-identical whenever the underlying run is. *)
module Scrape : sig
  type registry := t
  type t

  (** [create ?interval reg] (default interval [0.05] simulated seconds).
      Non-positive or non-finite intervals raise [Invalid_argument]. *)
  val create : ?interval:float -> registry -> t

  (** Snapshot every interval boundary [<= now] not yet scraped. *)
  val tick : t -> now:float -> unit

  (** Unconditionally snapshot at [now] (the final partial window). *)
  val force : t -> now:float -> unit

  val rows : t -> (float * sample list) list

  (** Long-format CSV: [t_s,metric,value], one row per (window, sample). *)
  val to_csv : t -> string

  (** One JSON object per (window, sample):
      [{"t":..,"metric":..,"labels":{..},"value":..}]. *)
  val to_jsonl : t -> string
end
