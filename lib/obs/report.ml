type launch = {
  l_ix : int;
  l_name : string;
  l_start : float;
  l_dur : float;
  l_crit_piece : int;
  l_comm : float;
  l_compute : float;
  l_overhead : float;
  l_bytes : float;
  l_msgs : int;
  l_piece_max : float;
  l_piece_mean : float;
  l_p50 : float;
  l_p99 : float;
}

type node_util = {
  n_node : int;
  n_slots : int;
  n_comm : float;
  n_compute : float;
}

type iter_row = {
  ir_index : int;
  ir_cache : string;  (** "hit" | "miss" | "bypass" *)
  ir_start : float;
  ir_dur : float;
  ir_partition : float;
}

type t = {
  r_total : float;
  r_launches : launch list;
  r_nodes : node_util list;
  r_comm : float array array;
  r_imbalance : float;
  r_iterations : iter_row list;
  r_cache_hits : int;
  r_cache_misses : int;
  r_cache_invalidations : int;
  r_host_wall : float;
  r_host_busy : (int * float) list;
  r_meta : (string * string) list;
}

let arg_i args k =
  match List.assoc_opt k args with Some (Trace.I i) -> i | _ -> -1

let arg_f args k =
  match List.assoc_opt k args with
  | Some (Trace.F f) -> f
  | Some (Trace.I i) -> float_of_int i
  | _ -> 0.

let arg_s args k =
  match List.assoc_opt k args with Some (Trace.S s) -> s | _ -> ""

(* Interpolated percentile of an unsorted sample ([p] in [0, 100]). *)
let percentile p xs =
  match xs with
  | [] -> 0.
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let r = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor r) in
      let hi = min (n - 1) (lo + 1) in
      let frac = r -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let of_trace tr =
  let spans = Trace.spans tr in
  (* Per-piece simulated busy time, and per-(launch, piece) totals. *)
  let piece_busy = Hashtbl.create 64 in
  (* (node, piece) -> (comm, compute) *)
  let launch_pieces = Hashtbl.create 64 in
  (* launch ix -> piece total list (reversed) *)
  let host_busy = Hashtbl.create 8 in
  let host_lo = ref Float.infinity and host_hi = ref Float.neg_infinity in
  List.iter
    (fun (sp : Trace.span) ->
      match sp.Trace.sp_track with
      | Trace.Piece { node; piece } when sp.Trace.sp_clock = Trace.Sim ->
          let c0, l0 =
            try Hashtbl.find piece_busy (node, piece) with Not_found -> (0., 0.)
          in
          (match sp.Trace.sp_cat with
          | "comm" -> Hashtbl.replace piece_busy (node, piece) (c0 +. sp.Trace.sp_dur, l0)
          | "compute" ->
              Hashtbl.replace piece_busy (node, piece) (c0, l0 +. sp.Trace.sp_dur)
          | _ -> ());
          if sp.Trace.sp_cat = "comm" || sp.Trace.sp_cat = "compute" then begin
            let ix = arg_i sp.Trace.sp_args "launch" in
            let cur = try Hashtbl.find launch_pieces ix with Not_found -> [] in
            (* comm and compute spans of one piece are adjacent: fold the
               pair into one total by accumulating per (launch, piece). *)
            let cur =
              match cur with
              | (p, t) :: rest when p = piece -> (p, t +. sp.Trace.sp_dur) :: rest
              | rest -> (piece, sp.Trace.sp_dur) :: rest
            in
            Hashtbl.replace launch_pieces ix cur
          end
      | Trace.Host d ->
          let b = try Hashtbl.find host_busy d with Not_found -> 0. in
          if sp.Trace.sp_cat = "pool" then Hashtbl.replace host_busy d (b +. sp.Trace.sp_dur);
          host_lo := Float.min !host_lo sp.Trace.sp_start;
          host_hi := Float.max !host_hi (sp.Trace.sp_start +. sp.Trace.sp_dur)
      | _ -> ())
    spans;
  let launches =
    List.filter_map
      (fun (sp : Trace.span) ->
        if sp.Trace.sp_track <> Trace.Runtime || sp.Trace.sp_cat <> "launch" then None
        else begin
          let ix = arg_i sp.Trace.sp_args "launch" in
          let totals =
            try List.rev_map snd (Hashtbl.find launch_pieces ix) with Not_found -> []
          in
          let pmax = List.fold_left Float.max 0. totals in
          let mean =
            match totals with
            | [] -> 0.
            | _ ->
                List.fold_left ( +. ) 0. totals /. float_of_int (List.length totals)
          in
          Some
            {
              l_ix = ix;
              l_name = sp.Trace.sp_name;
              l_start = sp.Trace.sp_start;
              l_dur = sp.Trace.sp_dur;
              l_crit_piece = arg_i sp.Trace.sp_args "crit_piece";
              l_comm = arg_f sp.Trace.sp_args "crit_comm";
              l_compute = arg_f sp.Trace.sp_args "crit_compute";
              l_overhead = arg_f sp.Trace.sp_args "overhead";
              l_bytes = arg_f sp.Trace.sp_args "bytes";
              l_msgs = (match arg_i sp.Trace.sp_args "messages" with -1 -> 0 | m -> m);
              l_piece_max = pmax;
              l_piece_mean = mean;
              l_p50 = percentile 50. totals;
              l_p99 = percentile 99. totals;
            }
        end)
      spans
  in
  let total =
    List.fold_left (fun acc l -> Float.max acc (l.l_start +. l.l_dur)) 0. launches
  in
  let nodes =
    let per_node = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (node, _) (c, l) ->
        let slots, c0, l0 =
          try Hashtbl.find per_node node with Not_found -> (0, 0., 0.)
        in
        Hashtbl.replace per_node node (slots + 1, c0 +. c, l0 +. l))
      piece_busy;
    Hashtbl.fold
      (fun node (slots, c, l) acc ->
        { n_node = node; n_slots = slots; n_comm = c; n_compute = l } :: acc)
      per_node []
    |> List.sort (fun a b -> compare a.n_node b.n_node)
  in
  let imbalance =
    List.fold_left
      (fun acc l ->
        if l.l_piece_mean > 0. then Float.max acc (l.l_piece_max /. l.l_piece_mean)
        else acc)
      1. launches
  in
  (* Warm-start runs: one "iteration" span per iteration and zero-duration
     "cache" instants (hit/miss/invalidate), all on the runtime spine. *)
  let iterations =
    List.filter_map
      (fun (sp : Trace.span) ->
        if sp.Trace.sp_track = Trace.Runtime && sp.Trace.sp_cat = "iteration"
        then
          Some
            {
              ir_index = arg_i sp.Trace.sp_args "iteration";
              ir_cache = arg_s sp.Trace.sp_args "cache";
              ir_start = sp.Trace.sp_start;
              ir_dur = sp.Trace.sp_dur;
              ir_partition = arg_f sp.Trace.sp_args "partition_seconds";
            }
        else None)
      spans
    |> List.sort (fun a b -> compare a.ir_index b.ir_index)
  in
  let cache_count name =
    List.length
      (List.filter
         (fun (sp : Trace.span) ->
           sp.Trace.sp_cat = "cache" && sp.Trace.sp_name = name)
         spans)
  in
  {
    r_total = total;
    r_launches = launches;
    r_nodes = nodes;
    r_comm = Trace.comm_matrix tr;
    r_imbalance = imbalance;
    r_iterations = iterations;
    r_cache_hits = cache_count "cache_hit";
    r_cache_misses = cache_count "cache_miss";
    r_cache_invalidations = cache_count "cache_invalidate";
    r_host_wall = (if !host_hi > !host_lo then !host_hi -. !host_lo else 0.);
    r_host_busy =
      Hashtbl.fold (fun d b acc -> (d, b) :: acc) host_busy []
      |> List.sort compare;
    r_meta = Trace.meta tr;
  }

let utilization t n =
  if t.r_total <= 0. || n.n_slots = 0 then 0.
  else (n.n_comm +. n.n_compute) /. (float_of_int n.n_slots *. t.r_total)

let si_bytes b =
  if b >= 1e9 then Printf.sprintf "%.2f GB" (b /. 1e9)
  else if b >= 1e6 then Printf.sprintf "%.2f MB" (b /. 1e6)
  else if b >= 1e3 then Printf.sprintf "%.2f kB" (b /. 1e3)
  else Printf.sprintf "%.0f B" b

let pp fmt t =
  let open Format in
  (match List.assoc_opt "kernel" t.r_meta with
  | Some k -> fprintf fmt "=== profile: %s ===@\n" k
  | None -> fprintf fmt "=== profile ===@\n");
  List.iter
    (fun (k, v) -> if k <> "kernel" then fprintf fmt "%s: %s@\n" k v)
    t.r_meta;
  fprintf fmt "simulated total: %.6fs over %d launch(es)@\n" t.r_total
    (List.length t.r_launches);
  if t.r_iterations <> [] then begin
    fprintf fmt
      "@\namortization by iteration (cache: %d hit(s), %d miss(es), %d \
       invalidation(s)):@\n"
      t.r_cache_hits t.r_cache_misses t.r_cache_invalidations;
    fprintf fmt "  %4s %-7s %12s %14s %14s@\n" "#" "cache" "total(s)"
      "partition(s)" "launches(s)";
    List.iter
      (fun ir ->
        fprintf fmt "  %4d %-7s %12.6f %14.6f %14.6f@\n" ir.ir_index
          ir.ir_cache ir.ir_dur ir.ir_partition
          (ir.ir_dur -. ir.ir_partition))
      t.r_iterations
  end;
  fprintf fmt "@\ncritical path by launch:@\n";
  fprintf fmt
    "  %3s %-14s %10s %10s %10s %10s %5s %10s %8s %10s %10s@\n" "#" "kernel"
    "start(s)" "crit(s)" "comm(s)" "compute(s)" "piece" "overhead" "max/mean"
    "p50(s)" "p99(s)";
  List.iter
    (fun l ->
      fprintf fmt
        "  %3d %-14s %10.6f %10.6f %10.6f %10.6f %5d %10.2e %8.2f %10.6f %10.6f@\n"
        l.l_ix l.l_name l.l_start l.l_dur l.l_comm l.l_compute l.l_crit_piece
        l.l_overhead
        (if l.l_piece_mean > 0. then l.l_piece_max /. l.l_piece_mean else 1.)
        l.l_p50 l.l_p99)
    t.r_launches;
  fprintf fmt "@\nnode utilization (busy / slots x total):@\n";
  List.iter
    (fun n ->
      fprintf fmt
        "  node %2d: %5.1f%% busy  (comm %.6fs, compute %.6fs, %d piece slot(s))@\n"
        n.n_node
        (100. *. utilization t n)
        n.n_comm n.n_compute n.n_slots)
    t.r_nodes;
  let nn = Array.length t.r_comm in
  if nn > 0 then begin
    fprintf fmt "@\ncommunication matrix (bytes, src row -> dst column):@\n";
    fprintf fmt "  %8s" "";
    for d = 0 to nn - 1 do
      fprintf fmt " %10s" (Printf.sprintf "n%d" d)
    done;
    fprintf fmt "@\n";
    Array.iteri
      (fun s row ->
        fprintf fmt "  %8s" (Printf.sprintf "n%d" s);
        Array.iter (fun b -> fprintf fmt " %10s" (if b = 0. then "." else si_bytes b)) row;
        fprintf fmt "@\n")
      t.r_comm
  end;
  fprintf fmt "@\npiece-time imbalance (worst launch, max/mean): %.2fx@\n" t.r_imbalance;
  if t.r_host_wall > 0. then begin
    fprintf fmt "host: %.3fs wall inside instrumented phases@\n" t.r_host_wall;
    List.iter
      (fun (d, b) ->
        fprintf fmt "  domain %d: %.3fs busy simulating pieces (%.1f%% of wall)@\n"
          d b
          (100. *. b /. t.r_host_wall))
      t.r_host_busy
  end

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "launch,kernel,sim_start_seconds,duration_seconds,crit_comm_seconds,crit_compute_seconds,overhead_seconds,crit_piece,bytes,messages,piece_max_seconds,piece_mean_seconds,piece_p50_seconds,piece_p99_seconds\n";
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%.9f,%.9f,%.9f,%.9f,%.9f,%d,%.3e,%d,%.9f,%.9f,%.9f,%.9f\n"
           l.l_ix l.l_name l.l_start l.l_dur l.l_comm l.l_compute l.l_overhead
           l.l_crit_piece l.l_bytes l.l_msgs l.l_piece_max l.l_piece_mean
           l.l_p50 l.l_p99))
    t.r_launches;
  Buffer.add_string b
    (Printf.sprintf "total,,0,%.9f,,,,,,,,,,\n" t.r_total);
  Buffer.contents b
