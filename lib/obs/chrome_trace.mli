(** Chrome trace-event export (loadable in Perfetto / [chrome://tracing]).

    Layout: one process group per simulated node ([pid = 100 + node], one
    thread per piece hosted there), a "sim runtime" process ([pid = 1]) for
    launch/phase spans and counters, and a "host" process ([pid = 2]) with
    one thread per OCaml domain for compile phases and pool occupancy.

    Simulated-clock spans use simulated microseconds as [ts]; host-clock
    spans use wall microseconds since the trace epoch.  The two clocks never
    share a track (Perfetto renders each thread independently, so the mixed
    units are safe; see DESIGN.md "Observability").

    Within every track, events are written sorted by [ts] — the property
    {!validate} (and the CI smoke job) checks.

    Pressure counters named ["cache_bytes"] and ["pool_occupancy"] are
    routed to dedicated process groups ([pid = 4] "cache pressure" and
    [pid = 5] "domain pool") so they render as standalone counter tracks;
    all other counters share the runtime spine. *)

(** The [(pid, tid)] pair a track's events carry in the exported file.
    [Log] renders the same ids on its JSONL lines so log entries correlate
    with spans. *)
val track_ids : Trace.track -> int * int

(** JSON string-body escaping (shared with [Log]'s JSONL rendering). *)
val escape : string -> string

val to_json : Trace.t -> string

(** Write {!to_json} to [path]. *)
val write : Trace.t -> path:string -> unit

(** Check that a string is well-formed trace-event JSON: parses, has a
    [traceEvents] array of objects each carrying a [ph], every ["X"] event
    has numeric [ts]/[dur >= 0], and [ts] is non-decreasing per
    [(pid, tid)] track in file order. *)
val validate : string -> (unit, string) result
