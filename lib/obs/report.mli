(** Post-mortem analysis of a {!Trace} (cf. Legion Prof's summaries): where
    simulated time went, per launch and per node.

    All simulated-clock quantities are exact — they are read back from the
    same spans the interpreter emitted while advancing the [Cost] clock, so
    the sum of launch-row durations equals the run's [Cost.total] (a tested
    invariant). *)

type launch = {
  l_ix : int;  (** launch index within the run *)
  l_name : string;  (** kernel (or ["reduce"] for output reductions) *)
  l_start : float;  (** simulated start, seconds *)
  l_dur : float;  (** critical path + launch overhead, seconds *)
  l_crit_piece : int;  (** piece on the critical path (-1 if pieceless) *)
  l_comm : float;  (** communication component of the critical path *)
  l_compute : float;  (** compute component of the critical path *)
  l_overhead : float;  (** runtime launch overhead *)
  l_bytes : float;  (** bytes moved over all pieces *)
  l_msgs : int;
  l_piece_max : float;  (** max over pieces of comm+compute *)
  l_piece_mean : float;
  l_p50 : float;  (** median piece time *)
  l_p99 : float;
}

type node_util = {
  n_node : int;
  n_slots : int;  (** pieces hosted on the node *)
  n_comm : float;  (** busy simulated seconds moving data *)
  n_compute : float;  (** busy simulated seconds in leaves *)
}

(** One warm-start iteration, read back from the execution context's
    "iteration" spans: how its launch plan was obtained and where its time
    went ([ir_partition] is non-zero exactly on cold iterations). *)
type iter_row = {
  ir_index : int;
  ir_cache : string;  (** "hit" | "miss" | "bypass" (caching disabled) *)
  ir_start : float;
  ir_dur : float;
  ir_partition : float;
}

type t = {
  r_total : float;  (** simulated seconds (== [Cost.total]) *)
  r_launches : launch list;  (** in execution order *)
  r_nodes : node_util list;  (** ascending node id *)
  r_comm : float array array;  (** [src.(dst)] bytes between simulated nodes *)
  r_imbalance : float;  (** worst per-launch max/mean piece-time ratio *)
  r_iterations : iter_row list;
      (** warm-start iterations in order; empty on single-shot runs *)
  r_cache_hits : int;
  r_cache_misses : int;
  r_cache_invalidations : int;
  r_host_wall : float;  (** wall seconds spanned by host-track spans *)
  r_host_busy : (int * float) list;  (** per host domain, busy wall seconds *)
  r_meta : (string * string) list;
}

val of_trace : Trace.t -> t

(** Utilization of a node: busy / (slots x total run). *)
val utilization : t -> node_util -> float

val pp : Format.formatter -> t -> unit

(** Metrics CSV: one header plus one row per launch, then one [total] row. *)
val to_csv : t -> string
