(* Labeled counters / gauges / histograms with deterministic rendering.
   See metrics.mli for the determinism contract; the short version is that
   every mutation happens on the reducing domain (or the sequential serve
   loop), histograms are pure integer bucket counts over precomputed
   boundaries, and wall-clock families are flagged out of the default
   snapshot so exposition text is byte-identical across --domains. *)

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type hist = {
  bounds : float array;  (* strictly increasing upper boundaries *)
  counts : int array;  (* length bounds + 1; last bucket is overflow *)
  mutable h_sum : float;
  mutable h_count : int;
}

type cell = Scalar of { mutable v : float } | Hist of hist

type series = { s_labels : (string * string) list; s_cell : cell }

type family = {
  f_name : string;
  f_kind : kind;
  f_help : string;
  f_wall : bool;  (* wall-clock / config-dependent: hidden by default *)
  f_buckets : float array;  (* histogram boundaries for new series *)
  f_series : (string, series) Hashtbl.t;  (* keyed by canonical labels *)
}

type t = { on : bool; fams : (string, family) Hashtbl.t }

let create () = { on = true; fams = Hashtbl.create 32 }
let null = { on = false; fams = Hashtbl.create 0 }
let enabled t = t.on

let default_registry = ref null
let default () = !default_registry
let set_default t = default_registry := t

(* ------------------------------------------------------------------ *)
(* Names, labels, families                                             *)
(* ------------------------------------------------------------------ *)

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let check_name what s =
  if not (valid_name s) then
    invalid_arg (Printf.sprintf "Metrics: invalid %s %S" what s)

(* Canonical label form: sorted by key, no duplicates. *)
let normalize_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Metrics: duplicate label %S" a);
        check rest
    | _ -> ()
  in
  List.iter (fun (k, _) -> check_name "label name" k) sorted;
  check sorted;
  sorted

let series_key labels =
  String.concat "\x00" (List.map (fun (k, v) -> k ^ "\x01" ^ v) labels)

(* Powers of two from ~1 µs to ~4.5 h: log-bucketed, every boundary exact
   in binary, coarse enough that 35 buckets cover any simulated latency. *)
let default_buckets = Array.init 35 (fun i -> 2. ** float_of_int (i - 20))

let check_buckets b =
  if Array.length b = 0 then invalid_arg "Metrics: empty bucket array";
  Array.iteri
    (fun i x ->
      if not (Float.is_finite x) then invalid_arg "Metrics: non-finite bucket";
      if i > 0 && x <= b.(i - 1) then
        invalid_arg "Metrics: buckets must be strictly increasing")
    b

let family t kind ?(help = "") ?(wall = false) ?buckets name =
  check_name "metric name" name;
  match Hashtbl.find_opt t.fams name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s is a %s, not a %s" name
             (kind_name f.f_kind) (kind_name kind));
      f
  | None ->
      let buckets =
        match buckets with
        | Some b ->
            check_buckets b;
            Array.copy b
        | None -> default_buckets
      in
      let f =
        {
          f_name = name;
          f_kind = kind;
          f_help = help;
          f_wall = wall;
          f_buckets = buckets;
          f_series = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.fams name f;
      f

let series f labels =
  let labels = normalize_labels labels in
  let key = series_key labels in
  match Hashtbl.find_opt f.f_series key with
  | Some s -> s
  | None ->
      let cell =
        match f.f_kind with
        | Counter | Gauge -> Scalar { v = 0. }
        | Histogram ->
            Hist
              {
                bounds = f.f_buckets;
                counts = Array.make (Array.length f.f_buckets + 1) 0;
                h_sum = 0.;
                h_count = 0;
              }
      in
      let s = { s_labels = labels; s_cell = cell } in
      Hashtbl.add f.f_series key s;
      s

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let inc t ?(labels = []) ?(by = 1.) ?help ?wall name =
  if t.on then begin
    if by < 0. || not (Float.is_finite by) then
      invalid_arg (Printf.sprintf "Metrics: bad counter increment for %s" name);
    match (series (family t Counter ?help ?wall name) labels).s_cell with
    | Scalar c -> c.v <- c.v +. by
    | Hist _ -> assert false
  end

let set t ?(labels = []) ?help ?wall name v =
  if t.on then
    match (series (family t Gauge ?help ?wall name) labels).s_cell with
    | Scalar c -> c.v <- v
    | Hist _ -> assert false

(* Index of the bucket for [v]: smallest [i] with [v <= bounds.(i)], or
   [length bounds] (overflow).  Binary search over the boundary array — no
   [log] calls, so bucketing is exact and portable. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  if v <= bounds.(0) then 0
  else if v > bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let observe t ?(labels = []) ?buckets ?help ?wall name v =
  if t.on then begin
    if Float.is_nan v then
      invalid_arg (Printf.sprintf "Metrics: NaN observation for %s" name);
    match (series (family t Histogram ?help ?wall ?buckets name) labels).s_cell with
    | Hist h ->
        let i = bucket_index h.bounds v in
        h.counts.(i) <- h.counts.(i) + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_count <- h.h_count + 1
    | Scalar _ -> assert false
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let find_series t name labels =
  match Hashtbl.find_opt t.fams name with
  | None -> None
  | Some f -> Hashtbl.find_opt f.f_series (series_key (normalize_labels labels))

let value t ?(labels = []) name =
  match find_series t name labels with
  | Some { s_cell = Scalar c; _ } -> Some c.v
  | _ -> None

(* Rank-based quantile: the upper boundary of the bucket holding observation
   rank [ceil (q * count)].  Overflow observations report the last finite
   boundary (the estimate saturates there by construction). *)
let hist_quantile h q =
  if h.h_count = 0 then None
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count))) in
    let rank = min rank h.h_count in
    let n = Array.length h.bounds in
    let rec go i seen =
      if i >= n then Some h.bounds.(n - 1)
      else
        let seen = seen + h.counts.(i) in
        if seen >= rank then Some h.bounds.(i) else go (i + 1) seen
    in
    go 0 0
  end

let quantile t ?(labels = []) name q =
  if q <= 0. || q > 1. then invalid_arg "Metrics.quantile: q outside (0, 1]";
  match find_series t name labels with
  | Some { s_cell = Hist h; _ } -> hist_quantile h q
  | _ -> None

let hist_stats t ?(labels = []) name =
  match find_series t name labels with
  | Some { s_cell = Hist h; _ } -> Some (h.h_count, h.h_sum)
  | _ -> None

type sample = {
  sm_name : string;
  sm_labels : (string * string) list;
  sm_value : float;
}

let sorted_families ?(wall = false) t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.fams []
  |> List.filter (fun f -> wall || not f.f_wall)
  |> List.sort (fun a b -> compare a.f_name b.f_name)

let sorted_series f =
  Hashtbl.fold (fun _ s acc -> s :: acc) f.f_series []
  |> List.sort (fun a b -> compare a.s_labels b.s_labels)

let snapshot ?(wall = false) t =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun s ->
          match s.s_cell with
          | Scalar c -> [ { sm_name = f.f_name; sm_labels = s.s_labels; sm_value = c.v } ]
          | Hist h ->
              let d suffix v =
                { sm_name = f.f_name ^ suffix; sm_labels = s.s_labels; sm_value = v }
              in
              let qs =
                if h.h_count = 0 then []
                else
                  List.filter_map
                    (fun (suffix, q) ->
                      Option.map (d suffix) (hist_quantile h q))
                    [ ("_p50", 0.50); ("_p95", 0.95); ("_p99", 0.99) ]
              in
              d "_count" (float_of_int h.h_count) :: d "_sum" h.h_sum :: qs)
        (sorted_series f))
    (sorted_families ~wall t)

(* Deterministic value rendering: integral values print as integers
   (counter semantics), everything else as %.9g — a fixed function of the
   double, so equal values always render equal bytes. *)
let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let sample_id s =
  match s.sm_labels with
  | [] -> s.sm_name
  | ls ->
      s.sm_name ^ "{"
      ^ String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      ^ "}"

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let prom_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ prom_escape v ^ "\"") ls)
      ^ "}"

let expose ?(wall = false) t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun f ->
      if f.f_help <> "" then line "# HELP %s %s" f.f_name (prom_escape f.f_help);
      line "# TYPE %s %s" f.f_name (kind_name f.f_kind);
      List.iter
        (fun s ->
          match s.s_cell with
          | Scalar c ->
              line "%s%s %s" f.f_name (prom_labels s.s_labels) (render_value c.v)
          | Hist h ->
              let cum = ref 0 in
              Array.iteri
                (fun i n ->
                  if i < Array.length h.bounds then begin
                    cum := !cum + n;
                    line "%s_bucket%s %d" f.f_name
                      (prom_labels (s.s_labels @ [ ("le", render_value h.bounds.(i)) ]))
                      !cum
                  end)
                h.counts;
              line "%s_bucket%s %d" f.f_name
                (prom_labels (s.s_labels @ [ ("le", "+Inf") ]))
                h.h_count;
              line "%s_sum%s %s" f.f_name (prom_labels s.s_labels)
                (render_value h.h_sum);
              line "%s_count%s %d" f.f_name (prom_labels s.s_labels) h.h_count)
        (sorted_series f))
    (sorted_families ~wall t);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scraper                                                             *)
(* ------------------------------------------------------------------ *)

module Scrape = struct
  type registry = t

  type t = {
    sc_reg : registry;
    sc_interval : float;
    mutable sc_next : float;
    mutable sc_rows : (float * sample list) list;  (* newest first *)
  }

  let create ?(interval = 0.05) reg =
    if interval <= 0. || not (Float.is_finite interval) then
      invalid_arg "Metrics.Scrape: interval must be positive and finite";
    { sc_reg = reg; sc_interval = interval; sc_next = interval; sc_rows = [] }

  let tick s ~now =
    if s.sc_reg.on then
      while s.sc_next <= now do
        s.sc_rows <- (s.sc_next, snapshot s.sc_reg) :: s.sc_rows;
        s.sc_next <- s.sc_next +. s.sc_interval
      done

  let force s ~now =
    if s.sc_reg.on then begin
      s.sc_rows <- (now, snapshot s.sc_reg) :: s.sc_rows;
      (* subsequent ticks resume after the forced row *)
      while s.sc_next <= now do
        s.sc_next <- s.sc_next +. s.sc_interval
      done
    end

  let rows s = List.rev s.sc_rows

  let to_csv s =
    let b = Buffer.create 4096 in
    Buffer.add_string b
      "# one row per (window, series); metric = family{label=value;...}\n";
    Buffer.add_string b "t_s,metric,value\n";
    List.iter
      (fun (t, samples) ->
        List.iter
          (fun sm ->
            Buffer.add_string b
              (Printf.sprintf "%s,%s,%s\n" (render_value t) (sample_id sm)
                 (render_value sm.sm_value)))
          samples)
      (rows s);
    Buffer.contents b

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_jsonl s =
    let b = Buffer.create 4096 in
    List.iter
      (fun (t, samples) ->
        List.iter
          (fun sm ->
            let labels =
              String.concat ","
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                   sm.sm_labels)
            in
            Buffer.add_string b
              (Printf.sprintf
                 "{\"t\":%s,\"metric\":\"%s\",\"labels\":{%s},\"value\":%s}\n"
                 (render_value t) (json_escape sm.sm_name) labels
                 (render_value sm.sm_value)))
          samples)
      (rows s);
    Buffer.contents b
end
