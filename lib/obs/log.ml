(* Structured JSONL event log.  Rendering reuses the Chrome-trace escaping
   and track ids so a log line names the exact (pid, tid) its correlating
   span lives on in the exported trace. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type entry = {
  e_seq : int;
  e_time : float option;
  e_level : level;
  e_event : string;
  e_track : Trace.track option;
  e_span : string option;
  e_fields : (string * Trace.value) list;
}

type t = {
  on : bool;
  min_level : level;
  mutable l_entries : entry list;  (* newest first *)
  mutable l_seq : int;
}

let create ?(level = Info) () =
  { on = true; min_level = level; l_entries = []; l_seq = 0 }

let null = { on = false; min_level = Error; l_entries = []; l_seq = 0 }
let enabled t = t.on

let default_log = ref null
let default () = !default_log
let set_default t = default_log := t

let event t ?(level = Info) ?time ?track ?span ?(fields = []) name =
  if t.on && level_rank level >= level_rank t.min_level then begin
    t.l_entries <-
      {
        e_seq = t.l_seq;
        e_time = time;
        e_level = level;
        e_event = name;
        e_track = track;
        e_span = span;
        e_fields = fields;
      }
      :: t.l_entries;
    t.l_seq <- t.l_seq + 1
  end

let entries t = List.rev t.l_entries

let jstr s = "\"" ^ Chrome_trace.escape s ^ "\""

let jfloat f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let jvalue = function
  | Trace.I i -> string_of_int i
  | Trace.F f -> jfloat f
  | Trace.S s -> jstr s
  | Trace.B b -> string_of_bool b

let entry_json e =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"seq\":%d" e.e_seq);
  (match e.e_time with
  | Some t -> Buffer.add_string b (Printf.sprintf ",\"t\":%s" (jfloat t))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf ",\"level\":%s,\"event\":%s" (jstr (level_name e.e_level))
       (jstr e.e_event));
  (match e.e_track with
  | Some tr ->
      let pid, tid = Chrome_trace.track_ids tr in
      Buffer.add_string b
        (Printf.sprintf ",\"track\":%s,\"pid\":%d,\"tid\":%d"
           (jstr (Trace.track_label tr)) pid tid)
  | None -> ());
  (match e.e_span with
  | Some sp -> Buffer.add_string b (Printf.sprintf ",\"span\":%s" (jstr sp))
  | None -> ());
  Buffer.add_string b ",\"fields\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (jstr k);
      Buffer.add_char b ':';
      Buffer.add_string b (jvalue v))
    e.e_fields;
  Buffer.add_string b "}}";
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (entry_json e);
      Buffer.add_char b '\n')
    (entries t);
  Buffer.contents b

let write t ~path =
  let oc = open_out path in
  output_string oc (to_jsonl t);
  close_out oc
