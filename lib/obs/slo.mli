(** Declarative service-level objectives over metric snapshot windows.

    An objective file holds one objective per line ([#] comments allowed):

    {v
    p99_ms <= 200
    shed_rate <= 0.05 budget=0.1
    hit_rate >= 0.4
    v}

    Objectives are evaluated over a series of {e windows} (scraped metric
    snapshots, or rows of a wide CSV like [results/serve.csv]).  A metric
    name resolves against the window keys by exact match, then by base name
    (labels stripped), then by unique ["_"]-suffix — so [p99_ms] finds
    [spdistal_serve_p99_ms].  When a name matches several series (e.g. a
    labeled family), every matched series must satisfy the objective.

    A window {e violates} an objective when any matched value fails the
    comparison; the {e burn} is the violating fraction of evaluated windows,
    compared against the objective's error budget (default [0]: any
    violation fails). *)

type op = Le | Ge | Lt | Gt

type objective = {
  o_metric : string;
  o_op : op;
  o_bound : float;
  o_budget : float;  (** allowed violating window fraction, in [[0, 1]] *)
}

val op_name : op -> string

(** [parse text] — the whole objective file.  [Error] names the offending
    line. *)
val parse : string -> (objective list, string) result

(** [load path] — {!parse} of the file's contents. *)
val load : string -> (objective list, string) result

val objective_to_string : objective -> string

(** {1 Windows} *)

type window = {
  w_time : float;
  w_tags : (string * string) list;  (** non-numeric columns of a wide CSV *)
  w_values : (string * float) list;
}

(** From scraped snapshot rows (see [Metrics.Scrape.rows]). *)
val windows_of_samples : (float * Metrics.sample list) list -> window list

(** Parse a CSV into windows, sniffing the format from the header: the
    scraper's long format ([t_s,metric,value], one window per distinct
    time) or a wide format (one window per data row, numeric columns as
    values, other columns as tags — e.g. [results/serve.csv]).  [#]-prefixed
    lines are comments. *)
val windows_of_csv : string -> (window list, string) result

(** Keep windows whose tag [key] equals [value] (e.g.
    [~key:"scenario" ~value:"chaos"] on [results/serve.csv]). *)
val select : key:string -> value:string -> window list -> window list

(** {1 Verdicts} *)

type verdict = {
  d_objective : objective;
  d_keys : string list;  (** the series the metric name resolved to *)
  d_windows : int;  (** windows where at least one matched series appeared *)
  d_violations : int;
  d_burn : float;  (** [violations / windows] *)
  d_ok : bool;  (** [burn <= budget] *)
  d_worst : (float * float) option;  (** (window time, value) furthest past the bound *)
}

(** [Error] when some objective's metric matches no series in any window,
    or when there are no windows at all. *)
val evaluate : objective list -> window list -> (verdict list, string) result

val ok : verdict list -> bool

(** Human-readable multi-line report with error-budget burn per objective. *)
val report : verdict list -> string
