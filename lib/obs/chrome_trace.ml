(* Export and validation of the Chrome trace-event format.  Hand-rolled JSON
   (the repository deliberately has no JSON dependency); the validator is a
   minimal recursive-descent parser over the same subset. *)

let pid_runtime = 1
let pid_host = 2
let pid_tenants = 3
let pid_cache = 4
let pid_pool = 5
let pid_of_node n = 100 + n

let track_ids = function
  | Trace.Runtime -> (pid_runtime, 0)
  | Trace.Piece { node; piece } -> (pid_of_node node, piece)
  | Trace.Host d -> (pid_host, d)
  | Trace.Tenant t -> (pid_tenants, t)

(* Pressure counters get their own process groups so Perfetto draws them as
   standalone counter tracks instead of burying them under the runtime
   spine; everything else stays on the runtime track. *)
let counter_pid = function
  | "cache_bytes" -> pid_cache
  | "pool_occupancy" -> pid_pool
  | _ -> pid_runtime

let counter_pid_name = function
  | "cache_bytes" -> Some "cache pressure"
  | "pool_occupancy" -> Some "domain pool"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""

(* JSON has no NaN/Infinity; clamp (timestamps/durations are finite in any
   correct trace, this is belt-and-braces for exporting a broken one). *)
let jfloat f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.6f" f

let jvalue = function
  | Trace.I i -> string_of_int i
  | Trace.F f -> jfloat f
  | Trace.S s -> jstr s
  | Trace.B b -> string_of_bool b

let jargs args =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ jvalue v) args)
  ^ "}"

let usec s = s *. 1e6

let span_event (sp : Trace.span) =
  let pid, tid = track_ids sp.Trace.sp_track in
  let args =
    ("clock", Trace.S (match sp.Trace.sp_clock with Trace.Sim -> "sim" | Trace.Wall -> "wall"))
    :: sp.Trace.sp_args
  in
  Printf.sprintf
    "{\"ph\":\"X\",\"name\":%s,\"cat\":%s,\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}"
    (jstr sp.Trace.sp_name) (jstr sp.Trace.sp_cat) pid tid
    (jfloat (usec sp.Trace.sp_start))
    (jfloat (usec sp.Trace.sp_dur))
    (jargs args)

let counter_event (c : Trace.counter) =
  Printf.sprintf
    "{\"ph\":\"C\",\"name\":%s,\"pid\":%d,\"tid\":0,\"ts\":%s,\"args\":%s}"
    (jstr c.Trace.ct_name)
    (counter_pid c.Trace.ct_name)
    (jfloat (usec c.Trace.ct_time))
    (jargs (List.map (fun (k, v) -> (k, Trace.F v)) c.Trace.ct_series))

let meta_event ~pid ?tid ~name value =
  match tid with
  | None ->
      Printf.sprintf
        "{\"ph\":\"M\",\"name\":%s,\"pid\":%d,\"args\":{\"name\":%s}}"
        (jstr name) pid (jstr value)
  | Some tid ->
      Printf.sprintf
        "{\"ph\":\"M\",\"name\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}"
        (jstr name) pid tid (jstr value)

let to_json t =
  let spans = Trace.spans t in
  (* Name the tracks that actually appear. *)
  let tracks = Hashtbl.create 16 in
  List.iter
    (fun (sp : Trace.span) ->
      if not (Hashtbl.mem tracks sp.Trace.sp_track) then
        Hashtbl.add tracks sp.Trace.sp_track ())
    spans;
  let metas = ref [] in
  let seen_pid = Hashtbl.create 8 in
  let add_pid pid name =
    if not (Hashtbl.mem seen_pid pid) then begin
      Hashtbl.add seen_pid pid ();
      metas := meta_event ~pid ~name:"process_name" name :: !metas
    end
  in
  add_pid pid_runtime "sim runtime";
  List.iter
    (fun (c : Trace.counter) ->
      match counter_pid_name c.Trace.ct_name with
      | Some name -> add_pid (counter_pid c.Trace.ct_name) name
      | None -> ())
    (Trace.counters t);
  Hashtbl.iter
    (fun tr () ->
      match tr with
      | Trace.Runtime -> ()
      | Trace.Piece { node; piece } ->
          add_pid (pid_of_node node) (Printf.sprintf "sim node %d" node);
          metas :=
            meta_event ~pid:(pid_of_node node) ~tid:piece ~name:"thread_name"
              (Printf.sprintf "piece %d" piece)
            :: !metas
      | Trace.Host d ->
          add_pid pid_host "host (wall clock)";
          metas :=
            meta_event ~pid:pid_host ~tid:d ~name:"thread_name"
              (Printf.sprintf "domain %d" d)
            :: !metas
      | Trace.Tenant tn ->
          add_pid pid_tenants "serve tenants";
          metas :=
            meta_event ~pid:pid_tenants ~tid:tn ~name:"thread_name"
              (Printf.sprintf "tenant %d" tn)
            :: !metas)
    tracks;
  (* Group events per track and sort each track by start time, so the file
     satisfies the monotone-per-track property the validator checks
     (host-domain spans are emitted in piece order, not time order, and
     retro-dated iteration/cache spans land after the launches they cover).
     Counter samples share the runtime track and must merge into the same
     time order. *)
  let tagged =
    List.map
      (fun (sp : Trace.span) ->
        (track_ids sp.Trace.sp_track, sp.Trace.sp_start, span_event sp))
      spans
    @ List.map
        (fun (c : Trace.counter) ->
          ((counter_pid c.Trace.ct_name, 0), c.Trace.ct_time, counter_event c))
        (Trace.counters t)
  in
  let by_track = Hashtbl.create 16 in
  List.iter
    (fun ((key, _, _) as ev) ->
      let cur = try Hashtbl.find by_track key with Not_found -> [] in
      Hashtbl.replace by_track key (ev :: cur))
    tagged;
  let track_events =
    Hashtbl.fold (fun key evs acc -> (key, List.rev evs) :: acc) by_track []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.concat_map (fun (_, evs) ->
           List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b) evs
           |> List.map (fun (_, _, ev) -> ev))
  in
  let events = List.rev !metas @ track_events in
  let other =
    ("tool", "spdistal") :: Trace.meta t
    |> List.map (fun (k, v) -> jstr k ^ ":" ^ jstr v)
    |> String.concat ","
  in
  "{\"traceEvents\":[\n"
  ^ String.concat ",\n" events
  ^ "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{" ^ other ^ "}}\n"

let write t ~path =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected %c at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then raise (Bad "bad escape");
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then raise (Bad "bad \\u escape");
              (* decode to '?' — content is irrelevant to validation *)
              pos := !pos + 4;
              Buffer.add_char b '?'
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> raise (Bad (Printf.sprintf "bad object at offset %d" !pos))
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> raise (Bad (Printf.sprintf "bad array at offset %d" !pos))
          in
          Arr (items [])
        end
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else raise (Bad "bad literal")
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else raise (Bad "bad literal")
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else raise (Bad "bad literal")
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        let num_char = function
          | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
          | _ -> false
        in
        while !pos < n && num_char s.[!pos] do
          advance ()
        done;
        (match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> Num f
        | None -> raise (Bad (Printf.sprintf "bad number at offset %d" start)))
    | _ -> raise (Bad (Printf.sprintf "unexpected input at offset %d" !pos))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad (Printf.sprintf "trailing input at offset %d" !pos));
  v

let field k = function Obj fs -> List.assoc_opt k fs | _ -> None

let validate text =
  try
    let root = parse_json text in
    let events =
      match field "traceEvents" root with
      | Some (Arr evs) -> evs
      | _ -> raise (Bad "no traceEvents array")
    in
    let last_ts = Hashtbl.create 32 in
    List.iteri
      (fun i ev ->
        let fail msg = raise (Bad (Printf.sprintf "event %d: %s" i msg)) in
        let ph =
          match field "ph" ev with
          | Some (Str p) -> p
          | _ -> fail "missing ph"
        in
        match ph with
        | "M" -> ()
        | "X" | "C" ->
            let num k =
              match field k ev with
              | Some (Num f) -> f
              | _ -> fail (Printf.sprintf "missing numeric %s" k)
            in
            let ts = num "ts" in
            if ph = "X" && num "dur" < 0. then fail "negative dur";
            let track = (num "pid", num "tid") in
            (match Hashtbl.find_opt last_ts track with
            | Some prev when ts < prev ->
                fail
                  (Printf.sprintf
                     "non-monotone ts on track (%.0f,%.0f): %.3f after %.3f"
                     (fst track) (snd track) ts prev)
            | _ -> ());
            Hashtbl.replace last_ts track ts
        | p -> fail (Printf.sprintf "unsupported phase %S" p))
      events;
    Ok ()
  with
  | Bad msg -> Error msg
  | Not_found -> Error "malformed event"
