(* Declarative SLOs evaluated over metric snapshot windows.  Pure string and
   float plumbing — no dependency on the runtime, so the CLI can check a CSV
   without constructing a server. *)

type op = Le | Ge | Lt | Gt

let op_name = function Le -> "<=" | Ge -> ">=" | Lt -> "<" | Gt -> ">"

type objective = {
  o_metric : string;
  o_op : op;
  o_bound : float;
  o_budget : float;
}

let objective_to_string o =
  let base = Printf.sprintf "%s %s %g" o.o_metric (op_name o.o_op) o.o_bound in
  if o.o_budget > 0. then Printf.sprintf "%s budget=%g" base o.o_budget
  else base

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Find the first comparison operator; two-char forms first so "<=" is not
   read as "<". *)
let split_op line =
  let ops = [ ("<=", Le); (">=", Ge); ("<", Lt); (">", Gt) ] in
  let rec find = function
    | [] -> None
    | (sym, op) :: rest -> (
        let sl = String.length sym and n = String.length line in
        let rec at i =
          if i + sl > n then None
          else if String.sub line i sl = sym then Some i
          else at (i + 1)
        in
        match at 0 with
        | Some i ->
            Some (String.sub line 0 i, op, String.sub line (i + sl) (n - i - sl))
        | None -> find rest)
  in
  find ops

let parse_line line =
  let body = String.trim (strip_comment line) in
  if body = "" then Ok None
  else
    match split_op body with
    | None -> Error (Printf.sprintf "no comparison operator in %S" line)
    | Some (lhs, op, rhs) -> (
        let metric = String.trim lhs in
        if metric = "" then Error (Printf.sprintf "missing metric name in %S" line)
        else
          let rhs_parts =
            String.split_on_char ' ' (String.trim rhs)
            |> List.filter (fun s -> s <> "")
          in
          match rhs_parts with
          | [] -> Error (Printf.sprintf "missing bound in %S" line)
          | bound_s :: rest -> (
              match float_of_string_opt bound_s with
              | None -> Error (Printf.sprintf "bad bound %S in %S" bound_s line)
              | Some bound -> (
                  let budget =
                    match rest with
                    | [] -> Ok 0.
                    | [ kv ] -> (
                        match String.split_on_char '=' kv with
                        | [ "budget"; v ] -> (
                            match float_of_string_opt v with
                            | Some b when b >= 0. && b <= 1. -> Ok b
                            | _ ->
                                Error
                                  (Printf.sprintf "bad budget %S in %S" v line))
                        | _ -> Error (Printf.sprintf "unexpected %S in %S" kv line))
                    | _ -> Error (Printf.sprintf "trailing garbage in %S" line)
                  in
                  match budget with
                  | Error e -> Error e
                  | Ok budget ->
                      Ok
                        (Some
                           {
                             o_metric = metric;
                             o_op = op;
                             o_bound = bound;
                             o_budget = budget;
                           }))))

let parse text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Error e -> Error e
        | Ok None -> go acc rest
        | Ok (Some o) -> go (o :: acc) rest)
  in
  match go [] (String.split_on_char '\n' text) with
  | Ok [] -> Error "no objectives in SLO file"
  | r -> r

let load path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | text -> parse text

(* ------------------------------------------------------------------ *)
(* Windows                                                             *)
(* ------------------------------------------------------------------ *)

type window = {
  w_time : float;
  w_tags : (string * string) list;
  w_values : (string * float) list;
}

let windows_of_samples rows =
  List.map
    (fun (t, samples) ->
      {
        w_time = t;
        w_tags = [];
        w_values =
          List.map
            (fun sm -> (Metrics.sample_id sm, sm.Metrics.sm_value))
            samples;
      })
    rows

let data_lines text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line =
           (* tolerate CRLF *)
           if String.length line > 0 && line.[String.length line - 1] = '\r'
           then String.sub line 0 (String.length line - 1)
           else line
         in
         if line = "" || line.[0] = '#' then None else Some line)

let windows_of_long_csv lines =
  (* t_s,metric,value — windows in order of first appearance of each time *)
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  let rec go i = function
    | [] -> Ok ()
    | line :: rest -> (
        match String.split_on_char ',' line with
        | [ t_s; metric; v_s ] -> (
            match (float_of_string_opt t_s, float_of_string_opt v_s) with
            | Some t, Some v ->
                if not (Hashtbl.mem tbl t) then begin
                  Hashtbl.add tbl t (ref []);
                  order := t :: !order
                end;
                let cell = Hashtbl.find tbl t in
                cell := (metric, v) :: !cell;
                go (i + 1) rest
            | _ -> Error (Printf.sprintf "bad numeric field on data line %d" i))
        | _ -> Error (Printf.sprintf "expected 3 fields on data line %d" i))
  in
  match go 1 lines with
  | Error e -> Error e
  | Ok () ->
      Ok
        (List.rev_map
           (fun t ->
             { w_time = t; w_tags = []; w_values = List.rev !(Hashtbl.find tbl t) })
           !order)

let windows_of_wide_csv header lines =
  let cols = String.split_on_char ',' header in
  let time_col =
    List.find_opt (fun c -> c = "t_s" || c = "time" || c = "time_s") cols
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let cells = String.split_on_char ',' line in
        if List.length cells <> List.length cols then
          Error
            (Printf.sprintf "data line %d has %d fields, header has %d" i
               (List.length cells) (List.length cols))
        else begin
          let values = ref [] and tags = ref [] and time = ref None in
          List.iter2
            (fun col cell ->
              match float_of_string_opt cell with
              | Some v ->
                  if Some col = time_col then time := Some v
                  else values := (col, v) :: !values
              | None -> tags := (col, cell) :: !tags)
            cols cells;
          let w =
            {
              w_time =
                (match !time with Some t -> t | None -> float_of_int (i - 1));
              w_tags = List.rev !tags;
              w_values = List.rev !values;
            }
          in
          go (i + 1) (w :: acc) rest
        end
  in
  go 1 [] lines

let windows_of_csv text =
  match data_lines text with
  | [] -> Error "empty CSV"
  | header :: rest ->
      if
        String.length header >= 14
        && String.sub header 0 14 = "t_s,metric,val"
      then windows_of_long_csv rest
      else windows_of_wide_csv header rest

let select ~key ~value windows =
  List.filter (fun w -> List.assoc_opt key w.w_tags = Some value) windows

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type verdict = {
  d_objective : objective;
  d_keys : string list;
  d_windows : int;
  d_violations : int;
  d_burn : float;
  d_ok : bool;
  d_worst : (float * float) option;
}

let base_name key =
  match String.index_opt key '{' with
  | Some i -> String.sub key 0 i
  | None -> key

let ends_with ~suffix s =
  let sl = String.length suffix and n = String.length s in
  n >= sl && String.sub s (n - sl) sl = suffix

(* Resolution ladder: exact series id, exact base name, then "_"-suffix of
   the base name.  The first rung with any match wins, so a fully-qualified
   name never accidentally widens to a suffix family. *)
let resolve_keys keys metric =
  let pick f = List.filter f keys in
  match pick (fun k -> String.equal k metric) with
  | _ :: _ as exact -> exact
  | [] -> (
      match pick (fun k -> String.equal (base_name k) metric) with
      | _ :: _ as base -> base
      | [] -> pick (fun k -> ends_with ~suffix:("_" ^ metric) (base_name k)))

let holds op bound v =
  match op with
  | Le -> v <= bound
  | Ge -> v >= bound
  | Lt -> v < bound
  | Gt -> v > bound

(* How far past the bound (positive = violating); used only to pick the
   worst sample for the report. *)
let deviation op bound v =
  match op with Le | Lt -> v -. bound | Ge | Gt -> bound -. v

let evaluate objectives windows =
  if windows = [] then Error "no windows to evaluate"
  else begin
    let all_keys =
      List.concat_map (fun w -> List.map fst w.w_values) windows
      |> List.sort_uniq compare
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | o :: rest -> (
          match resolve_keys all_keys o.o_metric with
          | [] ->
              Error
                (Printf.sprintf "SLO metric %S matches no series (have: %s)"
                   o.o_metric
                   (String.concat ", " all_keys))
          | keys ->
              let windows_seen = ref 0 in
              let violations = ref 0 in
              let worst = ref None in
              List.iter
                (fun w ->
                  let present =
                    List.filter_map
                      (fun k -> List.assoc_opt k w.w_values)
                      keys
                  in
                  if present <> [] then begin
                    incr windows_seen;
                    let bad =
                      List.filter (fun v -> not (holds o.o_op o.o_bound v)) present
                    in
                    if bad <> [] then begin
                      incr violations;
                      List.iter
                        (fun v ->
                          let d = deviation o.o_op o.o_bound v in
                          match !worst with
                          | Some (_, _, wd) when wd >= d -> ()
                          | _ -> worst := Some (w.w_time, v, d))
                        bad
                    end
                  end)
                windows;
              if !windows_seen = 0 then
                Error
                  (Printf.sprintf "SLO metric %S appears in no window"
                     o.o_metric)
              else begin
                let burn =
                  float_of_int !violations /. float_of_int !windows_seen
                in
                let v =
                  {
                    d_objective = o;
                    d_keys = keys;
                    d_windows = !windows_seen;
                    d_violations = !violations;
                    d_burn = burn;
                    d_ok = burn <= o.o_budget;
                    d_worst = Option.map (fun (t, v, _) -> (t, v)) !worst;
                  }
                in
                go (v :: acc) rest
              end)
    in
    go [] objectives
  end

let ok verdicts = List.for_all (fun v -> v.d_ok) verdicts

let report verdicts =
  let b = Buffer.create 512 in
  List.iter
    (fun v ->
      let o = v.d_objective in
      Buffer.add_string b
        (Printf.sprintf "%-4s %s [via %s]: %d/%d windows violated, burn %.3f %s budget %.3f"
           (if v.d_ok then "ok" else "FAIL")
           (objective_to_string o)
           (String.concat "+" v.d_keys)
           v.d_violations v.d_windows v.d_burn
           (if v.d_ok then "<=" else ">")
           o.o_budget);
      (match v.d_worst with
      | Some (t, value) ->
          Buffer.add_string b
            (Printf.sprintf " (worst %.6g at t=%.6g)" value t)
      | None -> ());
      Buffer.add_char b '\n')
    verdicts;
  Buffer.add_string b
    (if ok verdicts then "SLO: all objectives met\n"
     else "SLO: objectives violated\n");
  Buffer.contents b
