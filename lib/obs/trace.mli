(** Structured tracing for the simulated runtime (cf. Legion Prof).

    A {!t} records typed spans and counters on {e two clocks}:

    - the {b simulated clock} — seconds of {!section-"sim"} time as accounted
      by [Cost] (launch critical paths, per-piece communication and compute,
      fault recovery);
    - the {b host clock} — wall-clock seconds of the simulating process
      (compile phases, domain-pool worker occupancy), measured relative to
      the trace's creation epoch.

    Every span says which clock it is on; the two never mix on one track.

    {b Determinism.} Tracing never changes simulated results: worker domains
    produce pure per-piece records and all trace emission happens on the
    reducing domain in piece order, so a traced run computes bit-identical
    tensors and an identical [Cost] total to an untraced one, at every
    [--domains] degree.  The only nondeterministic values in a trace are
    host-clock timestamps (wall clock is wall clock).

    {b Cost when disabled.} {!null} is a shared disabled trace; every
    emission function first checks {!enabled} (one immutable bool field), so
    an untraced hot path pays a single branch and allocates nothing. *)

(** Where an event is drawn.  One track per simulated node (with a sub-track
    per piece, since GPU machines put several pieces on a node), one per
    host domain, plus the runtime spine that carries launches and phases. *)
type track =
  | Runtime  (** simulated-clock spine: launches, reductions, phases *)
  | Piece of { node : int; piece : int }
      (** simulated clock, grouped under the piece's node *)
  | Host of int  (** host clock, one per OCaml domain (by domain id) *)
  | Tenant of int
      (** simulated clock, one per serving-front-end tenant: job lifecycle
          spans (admitted/shed/deadline/failed) *)

type clock = Sim | Wall

type value = I of int | F of float | S of string | B of bool

type span = {
  sp_track : track;
  sp_clock : clock;
  sp_cat : string;
      (** "phase" | "launch" | "comm" | "compute" | "fault" | "pool" | "dep" *)
  sp_name : string;
  sp_start : float;  (** seconds on [sp_clock]; host spans are epoch-relative *)
  sp_dur : float;
  sp_args : (string * value) list;
}

type counter = {
  ct_name : string;
  ct_time : float;  (** simulated seconds *)
  ct_series : (string * float) list;
}

type t

(** A fresh enabled trace; the host epoch is the current wall clock. *)
val create : unit -> t

(** The shared disabled trace: every emission is a no-op. *)
val null : t

val enabled : t -> bool

(** {1 Ambient default}

    Mirrors [Fault.default]/[Machine.sim_domains]: the CLI installs a trace
    for the whole process; library entry points take [?trace] and fall back
    to this.  The initial default is {!null}. *)

val default : unit -> t

val set_default : t -> unit

(** {1 Emission} *)

(** Wall-clock seconds since the trace's epoch (0. on a disabled trace). *)
val now : t -> float

(** Absolute [Unix.gettimeofday] of the trace's creation, for converting
    externally captured wall timestamps (e.g. pool occupancy) to
    epoch-relative span starts. *)
val epoch : t -> float

(** [span t ~track ~clock ~cat ?args ~start ~dur name] records one span. *)
val span :
  t ->
  track:track ->
  clock:clock ->
  cat:string ->
  ?args:(string * value) list ->
  start:float ->
  dur:float ->
  string ->
  unit

(** [with_wall_span t ~track ~cat ~name f] times [f ()] on the host clock
    and records it (even if [f] raises, the span is dropped — phases that
    die are reported through errors, not the trace). *)
val with_wall_span :
  t -> track:track -> cat:string -> name:string -> (unit -> 'a) -> 'a

val counter : t -> name:string -> time:float -> (string * float) list -> unit

(** Accumulate [bytes] onto the [src -> dst] simulated-node communication
    edge.  The matrix is folded on the reducing domain in piece order, so
    it is deterministic. *)
val comm_edge : t -> src:int -> dst:int -> float -> unit

(** Free-form run metadata (kernel, machine, dataset...), latest write wins. *)
val set_meta : t -> string -> string -> unit

(** {1 Reading a finished trace} *)

val spans : t -> span list
(** In emission order. *)

val counters : t -> counter list

(** Dense [src.(dst)] byte matrix over nodes [0 .. n-1] where [n] is one
    more than the largest node id seen on any edge (or [min_nodes]). *)
val comm_matrix : ?min_nodes:int -> t -> float array array

val meta : t -> (string * string) list

val track_label : track -> string
