type axis = Flat | Grid_dim of int

type t = {
  parent : Iset.t;
  subsets : Iset.t array;
  disjoint : bool;
  axis : axis;
}

let compute_disjoint subsets =
  (* Pairwise disjointness via a running union: total cardinality of the
     union equals the sum of cardinalities iff all subsets are disjoint. *)
  let sum = Array.fold_left (fun n s -> n + Iset.cardinal s) 0 subsets in
  let uni = Iset.union_list (Array.to_list subsets) in
  Iset.cardinal uni = sum

let make ?(axis = Flat) parent subsets =
  Array.iter
    (fun s ->
      if not (Iset.subset s parent) then
        Error.fail Error.Partition_eval "Partition.make: subset escapes parent")
    subsets;
  { parent; subsets; disjoint = compute_disjoint subsets; axis }

let colors t = Array.length t.subsets
let subset t c = t.subsets.(c)
let axis t = t.axis

let block_bounds lo hi pieces =
  (* [pieces] near-equal inclusive blocks covering [lo..hi]. *)
  let n = hi - lo + 1 in
  Array.init pieces (fun c ->
      let b_lo = lo + c * n / pieces and b_hi = lo + ((c + 1) * n / pieces) - 1 in
      (b_lo, b_hi))

let equal_blocks ?(axis = Flat) is pieces =
  if pieces <= 0 then
    Error.fail Error.Partition_eval "Partition.equal_blocks: %d pieces" pieces;
  if Iset.is_empty is then
    { parent = is; subsets = Array.make pieces Iset.empty; disjoint = true; axis }
  else
    let lo = Iset.min_elt is and hi = Iset.max_elt is in
    let subsets =
      Array.map
        (fun (blo, bhi) -> Iset.inter is (Iset.interval blo bhi))
        (block_bounds lo hi pieces)
    in
    { parent = is; subsets; disjoint = true; axis }

let equal_cardinality ?(axis = Flat) is pieces =
  if pieces <= 0 then
    Error.fail Error.Partition_eval "Partition.equal_cardinality: %d pieces" pieces;
  let n = Iset.cardinal is in
  let subsets =
    Array.init pieces (fun c ->
        let k_lo = c * n / pieces and k_hi = ((c + 1) * n / pieces) - 1 in
        if k_hi < k_lo then Iset.empty
        else
          (* Elements of rank k_lo..k_hi. Both ranks map to concrete elements;
             the subset is the intersection with that element interval, which
             is exact because ranks are contiguous. *)
          let e_lo = Iset.nth is k_lo and e_hi = Iset.nth is k_hi in
          Iset.inter is (Iset.interval e_lo e_hi))
  in
  { parent = is; subsets; disjoint = true; axis }

let by_bounds ?(axis = Flat) is bounds =
  let subsets =
    Array.map (fun (lo, hi) -> Iset.inter is (Iset.interval lo hi)) bounds
  in
  { parent = is; subsets; disjoint = compute_disjoint subsets; axis }

let by_bounds_strided ?(axis = Flat) is ~dim bounds =
  if dim <= 0 then Error.fail Error.Partition_eval "by_bounds_strided: dim %d" dim;
  let last = if Iset.is_empty is then -1 else Iset.max_elt is in
  let subsets =
    Array.map
      (fun (lo, hi) ->
        let ivs = ref [] in
        let base = ref 0 in
        while !base <= last do
          ivs := (!base + lo, !base + hi) :: !ivs;
          base := !base + dim
        done;
        Iset.inter is (Iset.of_intervals !ivs))
      bounds
  in
  { parent = is; subsets; disjoint = compute_disjoint subsets; axis }

let by_value_ranges ?(axis = Flat) ~values is ranges =
  let buckets = Array.map (fun _ -> ref []) ranges in
  Iset.iter
    (fun i ->
      let v = Region.get values i in
      Array.iteri
        (fun c (lo, hi) -> if v >= lo && v <= hi then buckets.(c) := i :: !(buckets.(c)))
        ranges)
    is;
  let subsets = Array.map (fun b -> Iset.of_list !b) buckets in
  { parent = is; subsets; disjoint = compute_disjoint subsets; axis }

let union_of_colors t = Iset.union_list (Array.to_list t.subsets)
let is_complete t = Iset.equal (union_of_colors t) t.parent

let pp fmt t =
  Format.fprintf fmt "@[<v>partition (%s) of %a:@,"
    (if t.disjoint then "disjoint" else "aliased")
    Iset.pp t.parent;
  Array.iteri (fun c s -> Format.fprintf fmt "  %d -> %a@," c Iset.pp s) t.subsets;
  Format.fprintf fmt "@]"
