(** Simulated-time accounting.

    A [Cost.t] is the simulated clock of one experiment iteration.  The
    runtime executes every kernel for real (numeric results are exact); only
    {e time} is simulated, accumulated here from the {!Machine} model.
    Distributed launches advance the clock by the {e maximum} over pieces of
    per-piece (communication + compute) time, the BSP-style critical path. *)

type t = {
  mutable total : float;  (** simulated seconds *)
  mutable compute : float;  (** critical-path compute component *)
  mutable comm : float;  (** critical-path communication component *)
  mutable overhead : float;  (** runtime/launch/synchronization component *)
  mutable bytes_moved : float;  (** total bytes over all links *)
  mutable messages : int;
  mutable launches : int;
  mutable flops : float;  (** total flops over all pieces *)
  mutable recovery : float;
      (** simulated seconds spent recovering from injected faults (summed
          over pieces; the clock impact flows through the launch critical
          path) *)
  mutable retries : int;  (** fault-recovery re-executions and re-sends *)
  mutable resent_bytes : float;  (** bytes re-transferred by recovery *)
  mutable faults : int;  (** injected fault events recovered from *)
  mutable partitioning : float;
      (** simulated seconds of dependent partitioning, charged only on a
          cold execution-context cache miss (warm iterations reuse the
          cached partitions and pay nothing) *)
  mutable part_ops : int;  (** dependent-partitioning operations charged *)
}

val create : unit -> t
val reset : t -> unit

(** Immutable snapshot of the record (a fresh copy; mutating one does not
    affect the other). *)
val copy : t -> t

(** [diff after before] — field-wise [after - before], for per-iteration
    deltas carved out of an aggregate clock. *)
val diff : t -> t -> t

(** Add sequential (non-overlapped) time of the given breakdown component. *)
val add_compute : t -> float -> unit

val add_comm : t -> ?bytes:float -> ?messages:int -> float -> unit
val add_overhead : t -> float -> unit
val add_flops : t -> float -> unit

(** Charge [dt] simulated seconds of dependent partitioning ([ops]
    operations).  Advances [total]; the execution context calls this only on
    a cold cache miss. *)
val add_partitioning : t -> ?ops:int -> float -> unit

(** Book-keep fault-recovery overhead: [dt] simulated seconds of recovery
    work, re-sent [bytes] (also counted into [bytes_moved]) and [messages].
    Does {e not} advance [total] — recovery inflates the per-piece times fed
    to {!record_launch_split}, which carries the clock. *)
val add_recovery :
  t -> ?retries:int -> ?faults:int -> ?bytes:float -> ?messages:int -> float -> unit

(** [record_launch t ~machine ~piece_times] advances the clock by the max of
    per-piece times plus the machine's launch overhead. *)
val record_launch : t -> machine:Machine.t -> piece_times:float array -> unit

(** [record_launch_split t ~machine ~comm_times ~leaf_times] advances the
    clock by [max over pieces (comm + leaf)] plus launch overhead, splitting
    the breakdown between the comm and compute components. *)
val record_launch_split :
  t -> machine:Machine.t -> comm_times:float array -> leaf_times:float array -> unit

val total : t -> float
val pp : Format.formatter -> t -> unit

(** Header matching {!to_csv_row} (no trailing newline). *)
val csv_header : string

(** The record as one CSV row, column-compatible with {!csv_header}. *)
val to_csv_row : t -> string

(** Monotone per-run counter series, for trace counter events: cumulative
    bytes moved, messages, flops, retries and fault events. *)
val counters : t -> (string * float) list
