(** A reusable pool of worker domains for the interpreter's per-piece
    simulation.

    Worker domains are spawned once and dispatch closures from a shared
    queue; {!map} fans a piece-indexed function out across the workers (the
    calling domain participates too) and returns the results {e in index
    order}, so callers can reduce deterministically.  A pool with zero
    workers degrades to plain sequential evaluation in ascending index
    order on the calling domain — the reference execution that parallel
    runs must reproduce bit-for-bit. *)

type t

(** [create n] spawns [n] worker domains ([n <= 0] gives a sequential
    pool). *)
val create : int -> t

(** Number of worker domains (0 for a sequential pool). *)
val workers : t -> int

(** [map t f n] evaluates [f 0 .. f (n-1)] and returns the results indexed
    by input.  With workers the evaluation order is unspecified; without,
    it is ascending.  If any [f i] raised, the exception of the
    smallest-index failure is re-raised {e exactly once}, on the calling
    domain, with its original backtrace, and only after every job has
    drained — the pool stays reusable and no worker domain dies. *)
val map : t -> (int -> 'a) -> int -> 'a array

(** Host wall-clock occupancy of one {!map_prof} job: which domain ran it
    and when (absolute [Unix.gettimeofday] seconds). *)
type job_prof = { pj_domain : int; pj_start : float; pj_stop : float }

(** {!map} plus per-job occupancy, for the observability layer.  Results are
    still in index order; only the wall-clock fields vary run to run. *)
val map_prof : t -> (int -> 'a) -> int -> ('a * job_prof) array

(** Lifetime counters of the shared job queue, for the observability layer
    and the serving front-end's backpressure reporting. *)
type stats = {
  st_jobs_run : int;  (** jobs dequeued (by workers or the helping caller) *)
  st_peak_queue : int;  (** deepest the shared queue has ever been *)
}

val stats : t -> stats

(** Stop and join the workers.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [get n] returns a shared pool with exactly [n] workers, creating it on
    first use.  Shared pools are joined automatically at exit. *)
val get : int -> t

(** Shut down every pool created by {!get}. *)
val shutdown_all : unit -> unit

(** Worker count for a requested simulation degree: [0] when [requested <= 1]
    (sequential), else [min (requested - 1) (Domain.recommended_domain_count
    () - 1)], floored at one worker so the parallel path exists even on
    single-core hosts. *)
val effective_workers : int -> int
