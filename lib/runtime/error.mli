(** Structured runtime errors.

    A real Legion runtime distinguishes a task that {e faulted} (and may be
    re-executed from its region arguments) from a program that is simply
    wrong.  This repo's analog: real bugs in the compiler/runtime/leaf
    kernels raise {!Error} carrying phase, kernel and piece context, while
    injected faults live entirely inside {!Fault} (they never surface as
    exceptions unless recovery is exhausted, and then with the {!Recovery}
    phase).  Catching [Error {phase = Recovery; _}] is therefore always a
    fault-tolerance outcome, never a masked bug. *)

type phase =
  | Compile  (** lowering/scheduling rejected the program *)
  | Partition_eval  (** dependent-partitioning evaluation *)
  | Placement  (** data-distribution lowering *)
  | Launch  (** distributed-launch setup (piece/color mapping) *)
  | Leaf  (** leaf kernel execution *)
  | Reduce  (** reducing piece results / stitching outputs *)
  | Recovery  (** fault recovery exhausted (injected faults only) *)
  | Config  (** invalid configuration / unbound operands *)
  | Admission  (** job shed by the serving front-end's admission control *)
  | Deadline  (** job cancelled: its deadline passed or cannot be met *)

type t = {
  phase : phase;
  kernel : string option;  (** kernel or tensor the failure is scoped to *)
  piece : int option;  (** piece of the distributed launch, when known *)
  node : int option;  (** simulated node the failure is pinned to, when known *)
  what : string;
}

exception Error of t

val phase_name : phase -> string
val to_string : t -> string

(** [fail ?kernel ?piece ?node phase fmt ...] raises {!Error} with a
    formatted message. *)
val fail :
  ?kernel:string -> ?piece:int -> ?node:int -> phase -> ('a, unit, string, 'b) format4 -> 'a
