(** Regions: typed multi-element arrays addressed by a (linearized) index
    space, the Legion-style storage abstraction of the runtime (paper §III-A).

    A region couples an index space — the set of valid indices — with backing
    storage.  Sub-regions produced by partitioning share the parent's backing
    storage, exactly as Legion logical sub-regions view the same field data;
    only the index space shrinks. *)

type 'a t = private {
  name : string;
  id : int;  (** unique per allocation (sub-regions share their parent's) *)
  ispace : Iset.t;  (** valid indices *)
  data : 'a array;  (** backing store, addressed by global index *)
}

(** [create name n init] makes a region over [{0..n-1}] filled with [init]. *)
val create : string -> int -> 'a -> 'a t

(** [of_array name a] wraps an existing array (no copy). *)
val of_array : string -> 'a array -> 'a t

(** [subregion r is] is the view of [r] restricted to [is] (shared storage).
    Raises [Invalid_argument] if [is] is not a subset of [r]'s index space. *)
val subregion : 'a t -> Iset.t -> 'a t

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val size : 'a t -> int

(** Number of addressable slots in the backing store (the parent extent). *)
val extent : 'a t -> int

(** [iter f r] applies [f idx value] over the region's index space. *)
val iter : (int -> 'a -> unit) -> 'a t -> unit

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** Footprint in bytes given per-element size. *)
val bytes : elt_bytes:int -> 'a t -> int

(** Float regions over Bigarray storage: unboxed, GC-opaque, C-layout value
    buffers, matching the flat buffers a real runtime hands to compiled leaf
    tasks.  Used for tensor values; index (pos/crd) storage stays on ['a t]. *)
module F : sig
  type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = private {
    name : string;
    id : int;  (** unique per allocation *)
    ispace : Iset.t;  (** valid indices *)
    data : buf;  (** backing store, addressed by global index *)
  }

  (** [create name n init] makes a region over [{0..n-1}] filled with
      [init] (Bigarray buffers are not zero-initialized by default). *)
  val create : string -> int -> float -> t

  (** [of_array name a] copies [a] into a fresh buffer. *)
  val of_array : string -> float array -> t

  val to_array : t -> float array

  (** Fresh region (new id) with a copied buffer. *)
  val copy : t -> t

  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val size : t -> int

  (** Number of addressable slots in the backing store. *)
  val extent : t -> int

  val iter : (int -> float -> unit) -> t -> unit
  val fold : (int -> float -> 'b -> 'b) -> t -> 'b -> 'b

  (** Footprint in bytes (8 B elements). *)
  val bytes : t -> int
end
