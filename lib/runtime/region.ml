type 'a t = { name : string; id : int; ispace : Iset.t; data : 'a array }

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let create name n init =
  { name; id = next_id (); ispace = Iset.range n; data = Array.make (max n 0) init }

let of_array name a =
  { name; id = next_id (); ispace = Iset.range (Array.length a); data = a }

let subregion r is =
  if not (Iset.subset is r.ispace) then
    invalid_arg (Printf.sprintf "Region.subregion: %s: not a subset" r.name);
  { r with ispace = is }

let get r i =
  assert (Iset.mem i r.ispace);
  r.data.(i)

let set r i v =
  assert (Iset.mem i r.ispace);
  r.data.(i) <- v

let size r = Iset.cardinal r.ispace
let extent r = Array.length r.data
let iter f r = Iset.iter (fun i -> f i r.data.(i)) r.ispace
let fold f r init = Iset.fold (fun i acc -> f i r.data.(i) acc) r.ispace init
let bytes ~elt_bytes r = elt_bytes * size r

(* Float regions over Bigarray storage: unboxed, GC-opaque, C-layout value
   buffers for tensor values, matching the flat buffers a real runtime hands
   to compiled leaf tasks.  Index storage stays on ['a t] (OCaml int arrays
   are already unboxed). *)
module F = struct
  module A1 = Bigarray.Array1

  type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

  type t = { name : string; id : int; ispace : Iset.t; data : buf }

  let alloc n : buf = A1.create Bigarray.float64 Bigarray.c_layout (max n 0)

  let create name n init =
    let data = alloc n in
    A1.fill data init;
    { name; id = next_id (); ispace = Iset.range n; data }

  let of_array name (a : float array) =
    let n = Array.length a in
    let data = alloc n in
    for i = 0 to n - 1 do
      A1.unsafe_set data i (Array.unsafe_get a i)
    done;
    { name; id = next_id (); ispace = Iset.range n; data }

  let to_array r = Array.init (A1.dim r.data) (A1.get r.data)

  let copy r =
    let data = alloc (A1.dim r.data) in
    A1.blit r.data data;
    { r with id = next_id (); data }

  let get r i =
    assert (Iset.mem i r.ispace);
    A1.get r.data i

  let set r i v =
    assert (Iset.mem i r.ispace);
    A1.set r.data i v

  let size r = Iset.cardinal r.ispace
  let extent r = A1.dim r.data
  let iter f r = Iset.iter (fun i -> f i (A1.get r.data i)) r.ispace
  let fold f r init = Iset.fold (fun i acc -> f i (A1.get r.data i) acc) r.ispace init
  let bytes r = 8 * size r
end
