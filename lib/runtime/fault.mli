(** Deterministic fault injection and Legion-style recovery.

    The simulated runtime inherits Legion's execution semantics: tasks are
    deterministic functions of their region arguments, so a failed piece can
    be re-executed (possibly elsewhere) without changing the computed
    tensors.  This module decides {e which} faults happen — a pure,
    seed-driven schedule over (launch, node/piece, message, attempt)
    coordinates built on {!Srng} — and prices their recovery: bounded
    retries with exponential backoff, crashed nodes' pieces remapped onto
    surviving slots (re-fetching their whole input footprint), lost messages
    re-sent, and stragglers speculatively re-launched past a deadline.

    Invariant: under any schedule, outputs are bit-identical to the
    fault-free run; only {!Cost} changes.  Injection is also independent of
    the host's [--domains] degree because every draw is a pure function of
    its event coordinates. *)

type config = {
  seed : int;
  crash_rate : float;  (** P(node crash) per (launch, node, attempt) *)
  loss_rate : float;  (** P(message loss) per (launch, piece, msg, attempt) *)
  straggle_rate : float;  (** P(straggler) per (launch, piece) *)
  straggle_factor : float;  (** leaf-time inflation of a straggler *)
  max_retries : int;  (** bounded retries before {!Error.Recovery} *)
  backoff : float;  (** base simulated backoff (doubles per attempt) *)
  deadline_factor : float;
      (** speculate when the straggler exceeds this multiple of its nominal
          leaf time *)
}

(** All rates zero: injection fully bypassed, costs identical to a build
    without this module. *)
val disabled : config

val enabled : config -> bool

(** [make ()] builds a config; [rate] seeds all three failure classes and
    [crash]/[loss]/[straggle] override per class.  Raises
    {!Error.Error} ([Config]) on out-of-range values. *)
val make :
  ?seed:int ->
  ?rate:float ->
  ?crash:float ->
  ?loss:float ->
  ?straggle:float ->
  ?factor:float ->
  ?retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  unit ->
  config

(** ["seed=7,rate=0.1,loss=0.2,factor=8,retries=5,..."]; a bare number is a
    rate for all classes. *)
val of_string : string -> (config, string) result

(** [SPDISTAL_FAULTS] *)
val env_var : string

(** Parse {!env_var} if set.  Raises {!Error.Error} ([Config]) on a
    malformed value. *)
val of_env : unit -> config option

(** Process-wide default used by the interpreter when no explicit config is
    passed: the {!set_default} override, else {!of_env}, else
    {!disabled}. *)
val default : unit -> config

val set_default : config -> unit

(** {2 The schedule — pure per-event draws} *)

val node_crashed : config -> launch:int -> node:int -> attempt:int -> bool
val msg_lost : config -> launch:int -> piece:int -> msg:int -> attempt:int -> bool

(** [Some factor] when the piece straggles in this launch. *)
val straggler : config -> launch:int -> piece:int -> float option

(** Simulated detection/backoff wait before retry [attempt] (exponential). *)
val backoff_time : config -> int -> float

(** Nodes whose first attempt crashes in [launch].  Empty on single-node
    machines: there is no fault domain to fail over to. *)
val crashed_nodes : config -> machine:Machine.t -> launch:int -> int list

(** {2 Recovery pricing} *)

type recovery = {
  extra_comm : float;  (** seconds added to the piece's comm/wait path *)
  extra_leaf : float;  (** seconds added to the piece's compute path *)
  resent_bytes : float;  (** bytes re-transferred by recovery *)
  resent_msgs : int;
  retries : int;  (** re-executions and re-sends *)
  crashes : int;
  losses : int;
  stragglers : int;
}

val no_recovery : recovery

(** Injected fault events priced into [r]. *)
val events : recovery -> int

(** The recovery as trace-span args, for fault-event instants on piece
    tracks. *)
val trace_args : recovery -> (string * Spdistal_obs.Trace.value) list

(** [recover_piece cfg ~machine ~launch ~piece ~msg_bytes ~footprint
    ~comm_time ~leaf_time] plays out the piece's fault schedule for this
    launch and prices the recovery.  [msg_bytes] are the piece's transfer
    sizes in issue order, [footprint] its resident bytes, [comm_time] and
    [leaf_time] its fault-free components.  Raises {!Error.Error}
    ([Recovery]) when a fault recurs beyond [max_retries]. *)
val recover_piece :
  config ->
  machine:Machine.t ->
  launch:int ->
  piece:int ->
  msg_bytes:float list ->
  footprint:float ->
  comm_time:float ->
  leaf_time:float ->
  recovery
