type proc_kind = Cpu | Gpu

type params = {
  cpu_cores : int;
  cpu_mem_bw : float;
  cpu_flops : float;
  node_mem : float;
  gpus_per_node : int;
  gpu_mem_bw : float;
  gpu_flops : float;
  gpu_mem : float;
  nvlink_bw : float;
  net_bw : float;
  net_alpha : float;
  task_overhead : float;
  meta_per_piece : float;
  barrier_alpha : float;
  atomic_penalty_cpu : float;
  atomic_penalty_gpu : float;
  uvm_page_bw : float;
  legion_leaf_efficiency : float;
}

(* Lassen (LLNL): dual-socket Power9 (40 usable cores, ~340 GB/s node memory
   bandwidth, ~1 Tflop/s DP), 4x V100 (900 GB/s HBM2, 7.8 Tflop/s DP, 16 GB)
   on NVLink 2.0 (~75 GB/s), Infiniband EDR (~12.5 GB/s per NIC, ~1.5 us).
   Runtime constants follow the paper's attributions: Legion's deferred
   execution amortizes launch costs; MPI baselines pay per-operation
   synchronization; non-zero-split leaves pay for reduction atomics (cheap on
   GPUs, expensive relative to the scalar loop on CPUs). *)
let lassen =
  {
    cpu_cores = 40;
    cpu_mem_bw = 340e9;
    cpu_flops = 1.0e12;
    node_mem = 256e9;
    gpus_per_node = 4;
    (* Effective sparse-kernel throughput, ~20% of the V100's peak (900 GB/s
       HBM2, 7.8 Tflop/s DP): irregular gathers and reduction atomics keep
       sparse tensor kernels far from peak, and the paper's GPU-vs-CPU
       medians (2.0-2.2x per node on SpTTV/SpMTTKRP, Fig. 12) pin the
       effective ratio against the 40-core Power9 node. *)
    gpu_mem_bw = 170e9;
    gpu_flops = 2.0e12;
    gpu_mem = 16e9;
    nvlink_bw = 75e9;
    net_bw = 12.5e9;
    net_alpha = 1.5e-6;
    task_overhead = 8e-6;
    meta_per_piece = 0.35e-6;
    barrier_alpha = 2.0e-6;
    atomic_penalty_cpu = 1.45;
    atomic_penalty_gpu = 1.06;
    uvm_page_bw = 20e9;
    legion_leaf_efficiency = 0.92;
  }

let scale_params s p =
  {
    p with
    cpu_mem_bw = p.cpu_mem_bw /. s;
    cpu_flops = p.cpu_flops /. s;
    node_mem = p.node_mem /. s;
    gpu_mem_bw = p.gpu_mem_bw /. s;
    gpu_flops = p.gpu_flops /. s;
    gpu_mem = p.gpu_mem /. s;
    nvlink_bw = p.nvlink_bw /. s;
    net_bw = p.net_bw /. s;
    uvm_page_bw = p.uvm_page_bw /. s;
  }

type t = { grid : int array; kind : proc_kind; params : params }

let make ?(params = lassen) ~kind grid =
  if Array.length grid = 0 || Array.exists (fun d -> d <= 0) grid then
    invalid_arg "Machine.make: grid dimensions must be positive";
  { grid; kind; params }

let pieces t = Array.fold_left ( * ) 1 t.grid

let node_of_piece t p =
  match t.kind with Cpu -> p | Gpu -> p / t.params.gpus_per_node

let nodes t =
  match t.kind with
  | Cpu -> pieces t
  | Gpu -> (pieces t + t.params.gpus_per_node - 1) / t.params.gpus_per_node

let pieces_on_node t n =
  List.filter (fun p -> node_of_piece t p = n) (List.init (pieces t) Fun.id)

let compute_time t ~flops ~bytes =
  let rate, bw =
    match t.kind with
    | Cpu -> (t.params.cpu_flops, t.params.cpu_mem_bw)
    | Gpu -> (t.params.gpu_flops, t.params.gpu_mem_bw)
  in
  Float.max (flops /. rate) (bytes /. bw)

let p2p_time t ~intra_node ~bytes =
  if bytes <= 0. then 0.
  else if intra_node then
    match t.kind with
    | Cpu -> 0. (* CPU pieces are whole nodes: intra-node moves are free *)
    | Gpu -> bytes /. t.params.nvlink_bw
  else t.params.net_alpha +. (bytes /. t.params.net_bw)

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) ((n + 1) / 2) in
  go 0 n

let bcast_time t ~bytes =
  let p = pieces t in
  if p <= 1 || bytes <= 0. then 0.
  else
    (* Pipelined binomial tree over the network; intra-node stages for GPU
       machines ride NVLink and are dominated by the network stages. *)
    (float_of_int (log2i (nodes t)) *. t.params.net_alpha)
    +. (bytes /. t.params.net_bw)

let reduce_time t ~bytes =
  let p = pieces t in
  if p <= 1 || bytes <= 0. then 0.
  else
    (float_of_int (log2i (nodes t)) *. t.params.net_alpha)
    +. (2. *. bytes /. t.params.net_bw)

let launch_overhead t =
  t.params.task_overhead +. (float_of_int (pieces t) *. t.params.meta_per_piece)

let barrier_time t =
  float_of_int (log2i (pieces t)) *. t.params.barrier_alpha

let piece_mem t =
  match t.kind with Cpu -> t.params.node_mem | Gpu -> t.params.gpu_mem

(* ------------------------------------------------------------------ *)
(* Host-side simulation parallelism.                                    *)
(*                                                                      *)
(* Orthogonal to the simulated machine spec above: how many OCaml       *)
(* domains the interpreter may use to simulate the pieces of one        *)
(* distributed launch concurrently.  Defaults to sequential; the        *)
(* SPDISTAL_DOMAINS environment variable or an explicit setter (the     *)
(* CLI's --domains) raises it.                                          *)
(* ------------------------------------------------------------------ *)

let domains_env_var = "SPDISTAL_DOMAINS"

let sim_domains_override = ref None

let set_sim_domains n = sim_domains_override := Some (max 1 n)

let sim_domains () =
  match !sim_domains_override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt domains_env_var with
      | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
      | None -> 1)

let pp fmt t =
  Format.fprintf fmt "%s machine %a (%d pieces)"
    (match t.kind with Cpu -> "CPU" | Gpu -> "GPU")
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "x")
       Format.pp_print_int)
    (Array.to_list t.grid) (pieces t)
