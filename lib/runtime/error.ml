type phase =
  | Compile
  | Partition_eval
  | Placement
  | Launch
  | Leaf
  | Reduce
  | Recovery
  | Config
  | Admission
  | Deadline

type t = {
  phase : phase;
  kernel : string option;
  piece : int option;
  node : int option;
  what : string;
}

exception Error of t

let phase_name = function
  | Compile -> "compile"
  | Partition_eval -> "partition-eval"
  | Placement -> "placement"
  | Launch -> "launch"
  | Leaf -> "leaf"
  | Reduce -> "reduce"
  | Recovery -> "recovery"
  | Config -> "config"
  | Admission -> "admission"
  | Deadline -> "deadline"

let to_string e =
  let b = Buffer.create 64 in
  Buffer.add_string b (phase_name e.phase);
  (match e.kernel with
  | Some k ->
      Buffer.add_char b '[';
      Buffer.add_string b k;
      Buffer.add_char b ']'
  | None -> ());
  (match e.piece with
  | Some p -> Buffer.add_string b (Printf.sprintf " piece %d" p)
  | None -> ());
  (match e.node with
  | Some n -> Buffer.add_string b (Printf.sprintf " node %d" n)
  | None -> ());
  Buffer.add_string b ": ";
  Buffer.add_string b e.what;
  Buffer.contents b

let fail ?kernel ?piece ?node phase fmt =
  Printf.ksprintf
    (fun what -> raise (Error { phase; kernel; piece; node; what }))
    fmt

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Spdistal error: " ^ to_string e)
    | _ -> None)
