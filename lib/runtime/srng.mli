(** Deterministic splitmix64 random streams — every workload is reproducible
    from its seed, independent of OCaml's global RNG state. *)

type t

val create : int -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Zipf-like integer in [0, n) with exponent [alpha] (approximated by
    inverse-power transform; alpha > 0 skews toward small values). *)
val zipf : t -> n:int -> alpha:float -> int
