type t = {
  mutable total : float;
  mutable compute : float;
  mutable comm : float;
  mutable overhead : float;
  mutable bytes_moved : float;
  mutable messages : int;
  mutable launches : int;
  mutable flops : float;
  mutable recovery : float;
  mutable retries : int;
  mutable resent_bytes : float;
  mutable faults : int;
  mutable partitioning : float;
  mutable part_ops : int;
}

let create () =
  {
    total = 0.;
    compute = 0.;
    comm = 0.;
    overhead = 0.;
    bytes_moved = 0.;
    messages = 0;
    launches = 0;
    flops = 0.;
    recovery = 0.;
    retries = 0;
    resent_bytes = 0.;
    faults = 0;
    partitioning = 0.;
    part_ops = 0;
  }

let reset t =
  t.total <- 0.;
  t.compute <- 0.;
  t.comm <- 0.;
  t.overhead <- 0.;
  t.bytes_moved <- 0.;
  t.messages <- 0;
  t.launches <- 0;
  t.flops <- 0.;
  t.recovery <- 0.;
  t.retries <- 0;
  t.resent_bytes <- 0.;
  t.faults <- 0;
  t.partitioning <- 0.;
  t.part_ops <- 0

let copy t = { t with total = t.total }

let diff after before =
  {
    total = after.total -. before.total;
    compute = after.compute -. before.compute;
    comm = after.comm -. before.comm;
    overhead = after.overhead -. before.overhead;
    bytes_moved = after.bytes_moved -. before.bytes_moved;
    messages = after.messages - before.messages;
    launches = after.launches - before.launches;
    flops = after.flops -. before.flops;
    recovery = after.recovery -. before.recovery;
    retries = after.retries - before.retries;
    resent_bytes = after.resent_bytes -. before.resent_bytes;
    faults = after.faults - before.faults;
    partitioning = after.partitioning -. before.partitioning;
    part_ops = after.part_ops - before.part_ops;
  }

let add_compute t dt =
  t.compute <- t.compute +. dt;
  t.total <- t.total +. dt

let add_comm t ?(bytes = 0.) ?(messages = 0) dt =
  t.comm <- t.comm +. dt;
  t.bytes_moved <- t.bytes_moved +. bytes;
  t.messages <- t.messages + messages;
  t.total <- t.total +. dt

let add_overhead t dt =
  t.overhead <- t.overhead +. dt;
  t.total <- t.total +. dt

let add_flops t f = t.flops <- t.flops +. f

(* Dependent-partitioning time: charged by the execution context on a cache
   miss (the cold iteration of a warm-start run); warm iterations reuse the
   cached partitions and skip it entirely, Legion-style. *)
let add_partitioning t ?(ops = 0) dt =
  t.partitioning <- t.partitioning +. dt;
  t.part_ops <- t.part_ops + ops;
  t.total <- t.total +. dt

(* Recovery is book-keeping: the clock impact of fault recovery flows
   through the inflated per-piece times of [record_launch_split] (critical
   path), exactly like [bytes_moved] tracks volume without advancing the
   clock.  [dt] here is the sum of per-piece recovery seconds. *)
let add_recovery t ?(retries = 0) ?(faults = 0) ?(bytes = 0.) ?(messages = 0)
    dt =
  t.recovery <- t.recovery +. dt;
  t.retries <- t.retries + retries;
  t.faults <- t.faults + faults;
  t.resent_bytes <- t.resent_bytes +. bytes;
  t.bytes_moved <- t.bytes_moved +. bytes;
  t.messages <- t.messages + messages

let record_launch t ~machine ~piece_times =
  let critical = Array.fold_left Float.max 0. piece_times in
  t.launches <- t.launches + 1;
  add_compute t critical;
  add_overhead t (Machine.launch_overhead machine)

let record_launch_split t ~machine ~comm_times ~leaf_times =
  let critical = ref 0. and leaf_max = ref 0. in
  Array.iteri
    (fun i c ->
      critical := Float.max !critical (c +. leaf_times.(i));
      leaf_max := Float.max !leaf_max leaf_times.(i))
    comm_times;
  t.launches <- t.launches + 1;
  add_compute t !leaf_max;
  add_comm t (Float.max 0. (!critical -. !leaf_max));
  add_overhead t (Machine.launch_overhead machine)

let total t = t.total

let csv_header =
  "total_seconds,compute_seconds,comm_seconds,overhead_seconds,bytes_moved,\
   messages,launches,flops,recovery_seconds,retries,resent_bytes,fault_events,\
   partitioning_seconds,partitioning_ops"

let to_csv_row t =
  Printf.sprintf "%.9f,%.9f,%.9f,%.9f,%.3e,%d,%d,%.3e,%.9f,%d,%.3e,%d,%.9f,%d"
    t.total t.compute t.comm t.overhead t.bytes_moved t.messages t.launches
    t.flops t.recovery t.retries t.resent_bytes t.faults t.partitioning
    t.part_ops

let counters t =
  [
    ("bytes_moved", t.bytes_moved);
    ("messages", float_of_int t.messages);
    ("flops", t.flops);
    ("retries", float_of_int t.retries);
    ("fault_events", float_of_int t.faults);
  ]

let pp fmt t =
  Format.fprintf fmt
    "%.6fs (compute %.6fs, comm %.6fs, overhead %.6fs; %.3e B moved, %d msgs, \
     %d launches, %.3e flops)"
    t.total t.compute t.comm t.overhead t.bytes_moved t.messages t.launches
    t.flops;
  if t.partitioning > 0. then
    Format.fprintf fmt " [partitioning %.6fs, %d dep ops]" t.partitioning
      t.part_ops;
  if t.faults > 0 then
    Format.fprintf fmt
      " [%d faults recovered: %.6fs, %d retries, %.3e B resent]" t.faults
      t.recovery t.retries t.resent_bytes
