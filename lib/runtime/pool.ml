type t = {
  mutex : Mutex.t;
  pending : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  nworkers : int;
  mutable jobs_run : int;  (** jobs dequeued over the pool's lifetime *)
  mutable peak_queue : int;  (** deepest the shared queue has ever been *)
}

type stats = { st_jobs_run : int; st_peak_queue : int }

let workers t = t.nworkers

(* Must be called with [t.mutex] held. *)
let note_dequeue t = t.jobs_run <- t.jobs_run + 1

let stats t =
  Mutex.lock t.mutex;
  let s = { st_jobs_run = t.jobs_run; st_peak_queue = t.peak_queue } in
  Mutex.unlock t.mutex;
  s

let worker_loop t () =
  let rec take () =
    Mutex.lock t.mutex;
    let rec wait () =
      if t.stopping then begin
        Mutex.unlock t.mutex;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some job ->
            note_dequeue t;
            Mutex.unlock t.mutex;
            Some job
        | None ->
            Condition.wait t.pending t.mutex;
            wait ()
    in
    match wait () with
    | None -> ()
    | Some job ->
        (* Jobs enqueued by [map] capture their own exceptions, but a worker
           domain must never die of one that escapes anyway: a dead worker
           silently shrinks the pool for every later launch and poisons
           [shutdown]'s join with a stale exception.  Swallow as a last
           resort — the error surfaces through [map]'s capture path. *)
        (try job () with _ -> ());
        take ()
  in
  take ()

let create n =
  let n = max 0 n in
  let t =
    {
      mutex = Mutex.create ();
      pending = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
      nworkers = n;
      jobs_run = 0;
      peak_queue = 0;
    }
  in
  t.domains <- List.init n (fun _ -> Domain.spawn (worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.pending;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Evaluate [f 0 .. f (n-1)] strictly in index order on the calling domain.
   [Array.init]'s evaluation order is unspecified, and callers rely on the
   sequential path being the ascending-order reference execution. *)
let seq_init n f =
  if n = 0 then [||]
  else begin
    let r0 = f 0 in
    let a = Array.make n r0 in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

let run_map t f n =
  if n <= 0 then [||]
  else if t.nworkers = 0 || n = 1 then seq_init n f
  else begin
    let results = Array.make n None in
    let done_m = Mutex.create () and done_c = Condition.create () in
    let remaining = ref n in
    (* Exactly one exception (the smallest-index failure, with its original
       backtrace) is re-raised on the calling domain, and only after every
       job has drained — the pool is left reusable. *)
    let first_error = ref None in
    let job i () =
      let r =
        try Ok (f i) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock done_m;
      (match r with
      | Ok v -> results.(i) <- Some v
      | Error err -> (
          match !first_error with
          | Some (j, _) when j < i -> ()
          | _ -> first_error := Some (i, err)));
      decr remaining;
      if !remaining = 0 then Condition.broadcast done_c;
      Mutex.unlock done_m
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.queue
    done;
    t.peak_queue <- max t.peak_queue (Queue.length t.queue);
    Condition.broadcast t.pending;
    Mutex.unlock t.mutex;
    (* The caller works the queue too instead of sitting idle, so a pool of
       [w] workers computes with [w + 1] domains. *)
    let rec help () =
      Mutex.lock t.mutex;
      let j = Queue.take_opt t.queue in
      if Option.is_some j then note_dequeue t;
      Mutex.unlock t.mutex;
      match j with
      | Some job ->
          job ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_m;
    while !remaining > 0 do
      Condition.wait done_c done_m
    done;
    Mutex.unlock done_m;
    match !first_error with
    | Some (_, (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.mapi
          (fun i -> function
            | Some v -> v
            | None ->
                Error.fail ~piece:i Error.Launch
                  "domain pool: piece job %d of %d finished without a result"
                  i n)
          results
  end

(* Ambient metrics, noted on the calling domain after the launch drains so
   the counters are deterministic (piece counts don't depend on --domains).
   Worker count and queue depth are configuration/wall facts, so those two
   gauges are wall-flagged out of the deterministic snapshot. *)
let note_metrics t n =
  let m = Spdistal_obs.Metrics.default () in
  if Spdistal_obs.Metrics.enabled m then begin
    let open Spdistal_obs in
    Metrics.inc m ~by:(float_of_int n)
      ~help:"pieces mapped through the domain pool" "spdistal_pool_jobs_total";
    Metrics.set m
      ~help:"pieces in flight in the most recent pool launch"
      "spdistal_pool_occupancy" (float_of_int n);
    Metrics.set m ~wall:true "spdistal_pool_workers" (float_of_int t.nworkers);
    let s = stats t in
    Metrics.set m ~wall:true "spdistal_pool_queue_peak"
      (float_of_int s.st_peak_queue)
  end

let map t f n =
  let r = run_map t f n in
  if n > 0 then note_metrics t n;
  r

(* ------------------------------------------------------------------ *)
(* Profiled mapping: worker occupancy for the observability layer.      *)
(* ------------------------------------------------------------------ *)

type job_prof = { pj_domain : int; pj_start : float; pj_stop : float }

let map_prof t f n =
  map t
    (fun i ->
      let start = Unix.gettimeofday () in
      let v = f i in
      ( v,
        {
          pj_domain = (Domain.self () :> int);
          pj_start = start;
          pj_stop = Unix.gettimeofday ();
        } ))
    n

(* ------------------------------------------------------------------ *)
(* Shared pools, keyed by worker count.                                 *)
(* ------------------------------------------------------------------ *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()

let get n =
  let n = max 0 n in
  Mutex.lock registry_mutex;
  let p =
    match Hashtbl.find_opt registry n with
    | Some p -> p
    | None ->
        let p = create n in
        Hashtbl.add registry n p;
        p
  in
  Mutex.unlock registry_mutex;
  p

let shutdown_all () =
  Mutex.lock registry_mutex;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex;
  List.iter shutdown pools

let () = at_exit shutdown_all

let effective_workers requested =
  if requested <= 1 then 0
  else
    (* The reducing domain participates, so [requested] parallel pieces need
       [requested - 1] extra domains; cap at the host's recommendation but
       keep at least one worker so the parallel path stays exercisable (and
       testable) on single-core hosts. *)
    min (requested - 1) (max 1 (Domain.recommended_domain_count () - 1))
