(* Deterministic fault injection and Legion-style recovery for the simulated
   distributed runtime.

   Three failure models, mirroring what Legion's runtime tolerates:
   - node crash: every piece mapped to a node dies mid-launch and is
     re-executed on a surviving grid slot (which holds none of the task's
     inputs, so the whole footprint is re-fetched over the network);
   - message loss: a transfer times out and is retried with exponential
     backoff;
   - straggler: a piece's leaf time is inflated; past a deadline a
     speculative copy is launched on a fresh slot and the first finisher
     wins.

   Because tasks are deterministic functions of their region arguments
   (Legion's execution model, which the interpreter reproduces by committing
   each leaf exactly once, on the reducing domain, in piece order), recovery
   never changes computed tensors: every fault is charged purely to
   simulated time and traffic via {!Cost}.  The schedule is a pure function
   of (seed, event coordinates) — never of execution order — so injection is
   identical at every --domains degree. *)

type config = {
  seed : int;
  crash_rate : float;
  loss_rate : float;
  straggle_rate : float;
  straggle_factor : float;
  max_retries : int;
  backoff : float;
  deadline_factor : float;
}

let disabled =
  {
    seed = 0;
    crash_rate = 0.;
    loss_rate = 0.;
    straggle_rate = 0.;
    straggle_factor = 8.;
    max_retries = 5;
    backoff = 1e-4;
    deadline_factor = 2.;
  }

let enabled c = c.crash_rate > 0. || c.loss_rate > 0. || c.straggle_rate > 0.

(* All guards are phrased positively ([not (good r)]) so that NaN — which
   fails every comparison, including [r < 0.] — is rejected rather than
   silently accepted as a rate/factor/backoff. *)
let check_rate what r =
  if not (r >= 0. && r < 1.) then
    Error.fail Error.Config "fault %s rate %g outside [0, 1)" what r

let make ?(seed = 42) ?(rate = 0.) ?crash ?loss ?straggle ?(factor = 8.)
    ?(retries = 5) ?(backoff = 1e-4) ?(deadline = 2.) () =
  let pick = function Some r -> r | None -> rate in
  let crash_rate = pick crash
  and loss_rate = pick loss
  and straggle_rate = pick straggle in
  check_rate "crash" crash_rate;
  check_rate "loss" loss_rate;
  check_rate "straggle" straggle_rate;
  if not (Float.is_finite factor && factor >= 1.) then
    Error.fail Error.Config "straggle factor %g must be finite and >= 1" factor;
  if retries < 1 then
    Error.fail Error.Config "max-retries %d must be >= 1" retries;
  if not (Float.is_finite backoff && backoff >= 0.) then
    Error.fail Error.Config "backoff %g must be finite and >= 0" backoff;
  if not (Float.is_finite deadline && deadline >= 1.) then
    Error.fail Error.Config "deadline factor %g must be finite and >= 1" deadline;
  {
    seed;
    crash_rate;
    loss_rate;
    straggle_rate;
    straggle_factor = factor;
    max_retries = retries;
    backoff;
    deadline_factor = deadline;
  }

(* ------------------------------------------------------------------ *)
(* Configuration sources: SPDISTAL_FAULTS / CLI override.              *)
(* ------------------------------------------------------------------ *)

let env_var = "SPDISTAL_FAULTS"

(* "seed=7,rate=0.1" or per-class overrides:
   "seed=7,crash=0.05,loss=0.1,straggle=0.2,factor=8,retries=5,backoff=1e-4,deadline=2".
   A bare number is a rate for all three classes. *)
let of_string s =
  try
    let seed = ref 42
    and rate = ref 0.
    and crash = ref None
    and loss = ref None
    and straggle = ref None
    and factor = ref 8.
    and retries = ref 5
    and backoff = ref 1e-4
    and deadline = ref 2. in
    String.split_on_char ',' (String.trim s)
    |> List.iter (fun field ->
           let field = String.trim field in
           if field <> "" then
             match String.index_opt field '=' with
             | None -> rate := float_of_string field
             | Some i ->
                 let k = String.trim (String.sub field 0 i)
                 and v =
                   String.trim
                     (String.sub field (i + 1) (String.length field - i - 1))
                 in
                 (match k with
                 | "seed" -> seed := int_of_string v
                 | "rate" -> rate := float_of_string v
                 | "crash" -> crash := Some (float_of_string v)
                 | "loss" -> loss := Some (float_of_string v)
                 | "straggle" -> straggle := Some (float_of_string v)
                 | "factor" -> factor := float_of_string v
                 | "retries" -> retries := int_of_string v
                 | "backoff" -> backoff := float_of_string v
                 | "deadline" -> deadline := float_of_string v
                 | _ -> Error.fail Error.Config "unknown fault key %s" k));
    Ok
      (make ~seed:!seed ~rate:!rate ?crash:!crash ?loss:!loss
         ?straggle:!straggle ~factor:!factor ~retries:!retries
         ~backoff:!backoff ~deadline:!deadline ())
  with
  | Error.Error e -> Result.Error (Error.to_string e)
  | Failure _ -> Result.Error (Printf.sprintf "unparsable fault spec %S" s)

let of_env () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
      match of_string s with
      | Ok c -> Some c
      | Result.Error msg -> Error.fail Error.Config "%s: %s" env_var msg)

let default_override = ref None
let set_default c = default_override := Some c

let default () =
  match !default_override with
  | Some c -> c
  | None -> ( match of_env () with Some c -> c | None -> disabled)

(* ------------------------------------------------------------------ *)
(* The schedule: pure per-event draws.                                 *)
(* ------------------------------------------------------------------ *)

(* One splitmix64 step per event, seeded by an integer hash of the event's
   coordinates.  No shared stream: the draw for (launch, piece, msg,
   attempt) is the same whatever order pieces are simulated in. *)
let mixi h k =
  let h = h lxor ((k + 0x9E3779B9) * 0x85EBCA6B) in
  let h = (h lxor (h lsr 13)) * 0xC2B2AE35 in
  h lxor (h lsr 16)

let draw cfg stream coords =
  Srng.float (Srng.create (List.fold_left mixi (mixi cfg.seed stream) coords))

let node_crashed cfg ~launch ~node ~attempt =
  cfg.crash_rate > 0. && draw cfg 1 [ launch; node; attempt ] < cfg.crash_rate

let msg_lost cfg ~launch ~piece ~msg ~attempt =
  cfg.loss_rate > 0.
  && draw cfg 2 [ launch; piece; msg; attempt ] < cfg.loss_rate

let straggler cfg ~launch ~piece =
  if cfg.straggle_rate > 0. && draw cfg 3 [ launch; piece ] < cfg.straggle_rate
  then Some cfg.straggle_factor
  else None

let backoff_time cfg attempt = cfg.backoff *. float_of_int (1 lsl min attempt 20)

(* A single-node "cluster" has no fault domain to fail over to, so crashes
   are only injected when there is somewhere to recover. *)
let crashed_nodes cfg ~machine ~launch =
  let nodes = Machine.nodes machine in
  if cfg.crash_rate <= 0. || nodes <= 1 then []
  else
    List.filter
      (fun n -> node_crashed cfg ~launch ~node:n ~attempt:0)
      (List.init nodes Fun.id)

(* ------------------------------------------------------------------ *)
(* Recovery: convert one piece's injected faults into simulated cost.  *)
(* ------------------------------------------------------------------ *)

type recovery = {
  extra_comm : float;
  extra_leaf : float;
  resent_bytes : float;
  resent_msgs : int;
  retries : int;
  crashes : int;
  losses : int;
  stragglers : int;
}

let no_recovery =
  {
    extra_comm = 0.;
    extra_leaf = 0.;
    resent_bytes = 0.;
    resent_msgs = 0;
    retries = 0;
    crashes = 0;
    losses = 0;
    stragglers = 0;
  }

let events r = r.crashes + r.losses + r.stragglers

let trace_args r =
  let open Spdistal_obs.Trace in
  [
    ("crashes", I r.crashes);
    ("losses", I r.losses);
    ("stragglers", I r.stragglers);
    ("retries", I r.retries);
    ("extra_comm", F r.extra_comm);
    ("extra_leaf", F r.extra_leaf);
    ("resent_bytes", F r.resent_bytes);
  ]

let recover_piece cfg ~machine ~launch ~piece ~msg_bytes ~footprint ~comm_time
    ~leaf_time =
  if not (enabled cfg) then no_recovery
  else begin
    let extra_comm = ref 0.
    and extra_leaf = ref 0.
    and bytes = ref 0.
    and msgs = ref 0
    and retries = ref 0
    and crashes = ref 0
    and losses = ref 0
    and stragglers = ref 0 in
    let refetch () =
      bytes := !bytes +. footprint;
      incr msgs;
      Machine.p2p_time machine ~intra_node:false ~bytes:footprint
    in
    (* --- node crash: the attempt dies mid-launch (half its comm + compute
       is wasted on average); after detection backoff the piece is remapped
       onto a surviving slot, which must re-fetch the entire input footprint
       before re-executing the leaf from its region arguments. *)
    if Machine.nodes machine > 1 then begin
      let node = Machine.node_of_piece machine piece in
      let rec attempt a =
        if node_crashed cfg ~launch ~node ~attempt:a then begin
          if a + 1 > cfg.max_retries then
            Error.fail ~piece ~node Error.Recovery
              "node %d crashed %d consecutive times in launch %d \
               (max-retries %d)"
              node (a + 1) launch cfg.max_retries;
          incr crashes;
          incr retries;
          extra_comm :=
            !extra_comm
            +. (0.5 *. (comm_time +. leaf_time))
            +. backoff_time cfg a +. refetch ();
          extra_leaf := !extra_leaf +. leaf_time;
          attempt (a + 1)
        end
      in
      attempt 0
    end;
    (* --- message loss: a lost transfer is detected after a timeout that
       backs off exponentially, then re-sent over the network. *)
    List.iteri
      (fun m b ->
        let rec attempt a =
          if msg_lost cfg ~launch ~piece ~msg:m ~attempt:a then begin
            if a + 1 > cfg.max_retries then
              Error.fail ~piece Error.Recovery
                "message %d (%.0f B) lost %d consecutive times in launch %d \
                 (max-retries %d)"
                m b (a + 1) launch cfg.max_retries;
            incr losses;
            incr retries;
            bytes := !bytes +. b;
            incr msgs;
            extra_comm :=
              !extra_comm +. backoff_time cfg a
              +. Machine.p2p_time machine ~intra_node:false ~bytes:b;
            attempt (a + 1)
          end
        in
        attempt 0)
      msg_bytes;
    (* --- straggler: the leaf runs [straggle_factor] times slower.  Past
       the speculation deadline a backup copy is launched on a fresh slot
       (re-fetching the footprint); the piece completes when the first copy
       does. *)
    (match straggler cfg ~launch ~piece with
    | Some f when leaf_time > 0. ->
        incr stragglers;
        let inflated = leaf_time *. f in
        let deadline = leaf_time *. cfg.deadline_factor in
        let finished =
          if inflated > deadline then begin
            incr retries;
            Float.min inflated (deadline +. refetch () +. leaf_time)
          end
          else inflated
        in
        extra_leaf := !extra_leaf +. (finished -. leaf_time)
    | Some _ | None -> ());
    {
      extra_comm = !extra_comm;
      extra_leaf = !extra_leaf;
      resent_bytes = !bytes;
      resent_msgs = !msgs;
      retries = !retries;
      crashes = !crashes;
      losses = !losses;
      stragglers = !stragglers;
    }
  end
