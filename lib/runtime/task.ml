type transfer = { bytes : float; intra_node : bool; messages : int }

type work = {
  flops : float;
  bytes_read : float;
  bytes_written : float;
  atomics : bool;
}

let no_work = { flops = 0.; bytes_read = 0.; bytes_written = 0.; atomics = false }

let ( ++ ) a b =
  {
    flops = a.flops +. b.flops;
    bytes_read = a.bytes_read +. b.bytes_read;
    bytes_written = a.bytes_written +. b.bytes_written;
    atomics = a.atomics || b.atomics;
  }

let transfers_time machine ts =
  List.fold_left
    (fun acc t ->
      acc
      +. Machine.p2p_time machine ~intra_node:t.intra_node ~bytes:t.bytes
      +. (float_of_int (max 0 (t.messages - 1)) *. machine.Machine.params.net_alpha))
    0. ts

let leaf_time machine w =
  let base =
    Machine.compute_time machine ~flops:w.flops
      ~bytes:(w.bytes_read +. w.bytes_written)
  in
  if w.atomics then
    let penalty =
      match machine.Machine.kind with
      | Machine.Cpu -> machine.Machine.params.atomic_penalty_cpu
      | Machine.Gpu -> machine.Machine.params.atomic_penalty_gpu
    in
    base *. penalty
  else base

module Trace = Spdistal_obs.Trace

let index_launch cost machine ?(trace = Trace.null) ?(name = "index_launch")
    ?faults ?(launch = 0) ?(iterations = 1) ?(comm = fun _ -> []) ~work () =
  let fcfg =
    match faults with Some c when Fault.enabled c -> Some c | _ -> None
  in
  let p = Machine.pieces machine in
  (* Iterative applications of a baseline system replay the whole launch
     every iteration — there is no partition cache to amortize into (PETSc
     re-runs its VecScatter per MatMult).  Each repeat advances the launch
     coordinate so the fault schedule progresses exactly as in a sequence of
     separate launches. *)
  for it = 0 to iterations - 1 do
  let launch = launch + it in
  let t0 = Cost.total cost in
  let piece_times = Array.make p 0. in
  let comm_times = Array.make p 0. and lf_times = Array.make p 0. in
  let total_bytes = ref 0. and total_msgs = ref 0 in
  for i = 0 to p - 1 do
    let ts = comm i in
    List.iter
      (fun t ->
        total_bytes := !total_bytes +. t.bytes;
        total_msgs := !total_msgs + t.messages;
        (* Transfers carry no source; attribute intra-node moves to the
           piece's own node and remote ones to node 0 (the data's home). *)
        if Trace.enabled trace then
          Trace.comm_edge trace
            ~src:(if t.intra_node then Machine.node_of_piece machine i else 0)
            ~dst:(Machine.node_of_piece machine i)
            t.bytes)
      ts;
    let w = work i in
    Cost.add_flops cost w.flops;
    let ct = transfers_time machine ts and lt = leaf_time machine w in
    let ec, el =
      match fcfg with
      | None -> (0., 0.)
      | Some cfg ->
          let r =
            Fault.recover_piece cfg ~machine ~launch ~piece:i
              ~msg_bytes:(List.map (fun t -> t.bytes) ts)
              ~footprint:(List.fold_left (fun a t -> a +. t.bytes) 0. ts)
              ~comm_time:ct ~leaf_time:lt
          in
          Cost.add_recovery cost ~retries:r.Fault.retries
            ~faults:(Fault.events r) ~bytes:r.Fault.resent_bytes
            ~messages:r.Fault.resent_msgs
            (r.Fault.extra_comm +. r.Fault.extra_leaf);
          if Trace.enabled trace && Fault.events r > 0 then
            Trace.span trace
              ~track:(Trace.Piece { node = Machine.node_of_piece machine i; piece = i })
              ~clock:Trace.Sim ~cat:"fault" ~args:(Fault.trace_args r)
              ~start:(t0 +. ct +. lt) ~dur:0. "recovery";
          (r.Fault.extra_comm, r.Fault.extra_leaf)
    in
    comm_times.(i) <- ct +. ec;
    lf_times.(i) <- lt +. el;
    piece_times.(i) <- ct +. lt +. ec +. el
  done;
  (* Book-keep volume without double-advancing the clock: the critical path
     already includes per-piece comm time. *)
  Cost.add_comm cost ~bytes:!total_bytes ~messages:!total_msgs 0.;
  Cost.record_launch cost ~machine ~piece_times;
  if Trace.enabled trace then begin
    let crit = ref 0 in
    Array.iteri (fun i t -> if t > piece_times.(!crit) then crit := i) piece_times;
    for i = 0 to p - 1 do
      let node = Machine.node_of_piece machine i in
      let track = Trace.Piece { node; piece = i } in
      Trace.span trace ~track ~clock:Trace.Sim ~cat:"comm"
        ~args:[ ("launch", Trace.I launch) ]
        ~start:t0 ~dur:comm_times.(i) "fetch";
      Trace.span trace ~track ~clock:Trace.Sim ~cat:"compute"
        ~args:[ ("launch", Trace.I launch) ]
        ~start:(t0 +. comm_times.(i))
        ~dur:lf_times.(i) name
    done;
    Trace.span trace ~track:Trace.Runtime ~clock:Trace.Sim ~cat:"launch"
      ~args:
        [
          ("launch", Trace.I launch);
          ("pieces", Trace.I p);
          ("crit_piece", Trace.I !crit);
          ("crit_comm", Trace.F comm_times.(!crit));
          ("crit_compute", Trace.F lf_times.(!crit));
          ("overhead", Trace.F (Machine.launch_overhead machine));
          ("bytes", Trace.F !total_bytes);
          ("messages", Trace.I !total_msgs);
        ]
      ~start:t0
      ~dur:(Cost.total cost -. t0)
      name;
    Trace.counter trace ~name:"cost" ~time:(Cost.total cost) (Cost.counters cost)
  end
  done
