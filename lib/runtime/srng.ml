type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  (* splitmix64 *)
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Srng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.

let zipf t ~n ~alpha =
  (* Inverse-power transform of a uniform draw: heavier head for larger
     alpha. *)
  let u = float t in
  let x = u ** (1. /. (1. +. alpha)) in
  (* map [0,1) -> [0,n) concentrating near 0 *)
  let v = (1. -. x) *. float_of_int n *. 2. in
  min (n - 1) (int_of_float v)
