(** Abstract distributed machines and their performance model.

    A machine is an n-dimensional grid of {e pieces} (paper §II: [Machine
    M(Grid(pieces))]).  For CPU experiments a piece is a whole node (all
    cores, as SpDISTAL runs one rank per node); for GPU experiments a piece is
    a single GPU, grouped [gpus_per_node] to a node.

    The performance parameters stand in for the Lassen supercomputer of the
    paper's evaluation (40-core dual-socket Power9 nodes, 4 NVIDIA V100s per
    node on NVLink 2.0, Infiniband EDR).  Simulated time is derived from these
    parameters; the shapes of the evaluation (who wins, crossovers, OOM
    boundaries) depend only on their ratios, which come from published
    hardware specs. *)

type proc_kind = Cpu | Gpu

type params = {
  cpu_cores : int;  (** cores per node *)
  cpu_mem_bw : float;  (** node aggregate memory bandwidth, B/s *)
  cpu_flops : float;  (** node aggregate double-precision flop/s *)
  node_mem : float;  (** node memory capacity, bytes *)
  gpus_per_node : int;
  gpu_mem_bw : float;  (** per-GPU HBM bandwidth, B/s *)
  gpu_flops : float;  (** per-GPU double-precision flop/s *)
  gpu_mem : float;  (** per-GPU memory capacity, bytes *)
  nvlink_bw : float;  (** intra-node GPU interconnect, B/s *)
  net_bw : float;  (** per-node NIC bandwidth, B/s *)
  net_alpha : float;  (** per-message network latency, s *)
  task_overhead : float;
      (** deferred-execution amortized cost of one distributed launch, s *)
  meta_per_piece : float;
      (** runtime mapping/analysis work per piece per launch, s *)
  barrier_alpha : float;
      (** per-round cost of an explicit synchronization (used by the
          MPI-style baselines; Legion's deferred execution avoids it), s *)
  atomic_penalty_cpu : float;
      (** leaf-time multiplier for reduction atomics under non-zero-split
          parallelization on CPUs (paper §VI-A1) *)
  atomic_penalty_gpu : float;  (** same on GPUs (paper §VI-A2) *)
  uvm_page_bw : float;  (** CUDA-UVM paging bandwidth, B/s (Trilinos) *)
  legion_leaf_efficiency : float;
      (** CPU leaf throughput relative to hand-rolled MPI code (region
          accessor overhead; paper Fig. 13 shows SpDISTAL at 90-92% of PETSc
          on uniform banded matrices) *)
}

(** Lassen-derived default parameters. *)
val lassen : params

(** [scale_params s p] divides every {e rate} (flop/s, bandwidths) and every
    {e capacity} by [s], leaving latencies untouched.  Running a workload
    scaled down [s]x in data volume on a machine scaled [s]x reproduces the
    full-size run's absolute times and memory boundaries exactly — this is
    how the repository's ~5000x-scaled dataset analogs stay faithful to the
    paper's OOM cells and bandwidth/latency tradeoffs. *)
val scale_params : float -> params -> params

type t = {
  grid : int array;  (** machine grid dimensions; pieces = product *)
  kind : proc_kind;
  params : params;
}

(** [make ?params ~kind grid]. Raises on empty/non-positive grid. *)
val make : ?params:params -> kind:proc_kind -> int array -> t

val pieces : t -> int

(** Node that hosts a piece (identity for CPU machines). *)
val node_of_piece : t -> int -> int

val nodes : t -> int

(** Pieces hosted by a node, in ascending order (the fault domain lost when
    that node crashes). *)
val pieces_on_node : t -> int -> int list

(** {1 Time model} *)

(** Roofline leaf time for one piece: [max (flops/rate) (bytes/bw)]. *)
val compute_time : t -> flops:float -> bytes:float -> float

(** Point-to-point transfer into a piece's memory. [intra_node] transfers ride
    NVLink (GPU) or are free (CPU pieces share node memory). *)
val p2p_time : t -> intra_node:bool -> bytes:float -> float

(** Pipelined binomial broadcast of [bytes] to all pieces. *)
val bcast_time : t -> bytes:float -> float

(** Reduction of [bytes] across all pieces (allreduce-shaped). *)
val reduce_time : t -> bytes:float -> float

(** Per-launch runtime overhead of one distributed index launch. *)
val launch_overhead : t -> float

(** Cost of an explicit barrier/synchronization across pieces. *)
val barrier_time : t -> float

(** Memory capacity of one piece, bytes. *)
val piece_mem : t -> float

val pp : Format.formatter -> t -> unit

(** {1 Host-side simulation parallelism}

    How many OCaml domains the interpreter may use to simulate the pieces
    of one distributed launch concurrently.  This is a property of the
    simulation host, not of the simulated machine: it never changes
    simulated times or numeric results (the interpreter reduces piece
    results in piece order), only wall-clock. *)

(** Name of the environment variable consulted by {!sim_domains}
    (["SPDISTAL_DOMAINS"]). *)
val domains_env_var : string

(** Process-wide default degree: the last {!set_sim_domains} value, else
    [$SPDISTAL_DOMAINS], else 1 (sequential). *)
val sim_domains : unit -> int

(** Override the process-wide default degree (clamped to >= 1). *)
val set_sim_domains : int -> unit
