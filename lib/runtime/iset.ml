(* Canonical form: sorted list of disjoint inclusive intervals with no two
   intervals adjacent (hi + 1 < next lo). *)

type t = (int * int) list

let empty = []
let interval lo hi = if hi < lo then [] else [ (lo, hi) ]
let singleton x = [ (x, x) ]
let range n = interval 0 (n - 1)

(* Merge a sorted-by-lo interval list into canonical form. *)
let normalize_sorted l =
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
        match acc with
        | (alo, ahi) :: acc' when lo <= ahi + 1 ->
            go ((alo, max ahi hi) :: acc') rest
        | _ -> go ((lo, hi) :: acc) rest)
  in
  go [] l

let of_intervals l =
  l
  |> List.filter (fun (lo, hi) -> lo <= hi)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> normalize_sorted

let of_list xs = of_intervals (List.map (fun x -> (x, x)) xs)
let is_empty t = t = []

let rec mem x = function
  | [] -> false
  | (lo, hi) :: rest -> if x < lo then false else x <= hi || mem x rest

let cardinal t = List.fold_left (fun n (lo, hi) -> n + hi - lo + 1) 0 t
let interval_count = List.length
let min_elt = function [] -> raise Not_found | (lo, _) :: _ -> lo

let max_elt = function
  | [] -> raise Not_found
  | l -> snd (List.nth l (List.length l - 1))

let equal (a : t) (b : t) = a = b

let union a b =
  (* Merge two canonical lists.  Tail-recursive: partitions over large
     fragmented index spaces routinely produce interval lists in the
     millions, where a naive [x :: merge a' b] would overflow the stack. *)
  let rec merge acc a b =
    match (a, b) with
    | [], l | l, [] -> List.rev_append acc l
    | ((alo, _) as x) :: a', ((blo, _) as y) :: b' ->
        if alo <= blo then merge (x :: acc) a' b else merge (y :: acc) a b'
  in
  normalize_sorted (merge [] a b)

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (alo, ahi) :: a', (blo, bhi) :: b' ->
        let lo = max alo blo and hi = min ahi bhi in
        let acc = if lo <= hi then (lo, hi) :: acc else acc in
        if ahi < bhi then go a' b acc else go a b' acc
  in
  go a b []

let diff a b =
  (* Subtract canonical [b] from canonical [a]. *)
  let rec go a b acc =
    match (a, b) with
    | [], _ -> List.rev acc
    | a, [] -> List.rev_append acc a
    | (alo, ahi) :: a', (blo, bhi) :: b' ->
        if bhi < alo then go a b' acc
        else if ahi < blo then go a' b ((alo, ahi) :: acc)
        else
          (* Overlap. Keep the part of [a]'s head left of [blo]; continue with
             the part right of [bhi]. *)
          let acc = if alo < blo then (alo, blo - 1) :: acc else acc in
          if bhi < ahi then go ((bhi + 1, ahi) :: a') b acc else go a' b acc
  in
  go a b []

let union_list ts = List.fold_left union empty ts

let subset a b = is_empty (diff a b)
let disjoint a b = is_empty (inter a b)

let rec intersects_interval t lo hi =
  if hi < lo then false (* inverted query intervals are empty *)
  else
    match t with
    | [] -> false
    | (alo, ahi) :: rest ->
        if ahi < lo then intersects_interval rest lo hi
        else alo <= hi (* alo <= hi && ahi >= lo: overlap *)

let to_intervals t = t
let fold_intervals f t init = List.fold_left (fun acc (lo, hi) -> f lo hi acc) init t
let iter_intervals f t = List.iter (fun (lo, hi) -> f lo hi) t

let iter f t =
  List.iter
    (fun (lo, hi) ->
      for x = lo to hi do
        f x
      done)
    t

let fold f t init =
  List.fold_left
    (fun acc (lo, hi) ->
      let r = ref acc in
      for x = lo to hi do
        r := f x !r
      done;
      !r)
    init t

let elements t = List.rev (fold (fun x acc -> x :: acc) t [])

let nth t k =
  if k < 0 then invalid_arg "Iset.nth";
  let rec go k = function
    | [] -> invalid_arg "Iset.nth"
    | (lo, hi) :: rest ->
        let len = hi - lo + 1 in
        if k < len then lo + k else go (k - len) rest
  in
  go k t

let pp fmt t =
  Format.fprintf fmt "{";
  List.iteri
    (fun i (lo, hi) ->
      if i > 0 then Format.fprintf fmt ", ";
      if lo = hi then Format.fprintf fmt "%d" lo
      else Format.fprintf fmt "%d..%d" lo hi)
    t;
  Format.fprintf fmt "}"
