(** Index-task launches: execute a shard function on every piece of a machine
    and advance the simulated clock by the BSP critical path.

    The shard function performs the {e real} computation for its piece (over
    the sub-regions the caller selected) and reports the work it did; the
    launch converts work and communication into simulated time via the
    machine model. *)

type transfer = { bytes : float; intra_node : bool; messages : int }

type work = {
  flops : float;
  bytes_read : float;
  bytes_written : float;
  atomics : bool;
      (** leaf performs reduction atomics (non-zero-split schedules) *)
}

val no_work : work
val ( ++ ) : work -> work -> work

(** [index_launch cost machine ~comm ~work] runs [work p] for every piece [p]
    (sequentially in the host process — the simulated machine is parallel,
    the simulator is deterministic), charging per-piece time
    [comm_time p + leaf_time p] and taking the max across pieces, plus launch
    overhead.  [comm p] lists the transfers that must land in piece [p]'s
    memory before its task runs.

    When [faults] is enabled, each piece additionally plays out its
    deterministic fault schedule (crashes, lost transfers, stragglers) for
    [launch] and its recovery overhead inflates the piece's time; see
    {!Fault.recover_piece}.

    When [trace] is an enabled {!Spdistal_obs.Trace.t}, the launch emits
    sim-clock spans: one per-piece comm ("fetch") and compute span on the
    piece's track, a "launch" span on the runtime track carrying the
    critical-path breakdown, fault-recovery instants, comm-matrix edges and
    a cumulative cost counter sample.  [name] labels the compute and launch
    spans.

    [iterations] (default 1) replays the launch that many times — the
    baseline systems' iterative protocol, which re-pays communication and
    overhead every iteration (no partition cache to amortize into).  Repeat
    [k] uses fault-schedule coordinate [launch + k]. *)
val index_launch :
  Cost.t ->
  Machine.t ->
  ?trace:Spdistal_obs.Trace.t ->
  ?name:string ->
  ?faults:Fault.config ->
  ?launch:int ->
  ?iterations:int ->
  ?comm:(int -> transfer list) ->
  work:(int -> work) ->
  unit ->
  unit

(** Time of a list of transfers into one piece (serialized on its NIC). *)
val transfers_time : Machine.t -> transfer list -> float

(** Leaf execution time of [work] on one piece, including the atomic
    penalty when [atomics] is set. *)
val leaf_time : Machine.t -> work -> float
