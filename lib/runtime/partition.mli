(** Partitions: mappings from colors to (potentially overlapping) subsets of
    an index space (paper §III-A).

    A partition of an index space induces a partition of every region over
    that index space; sub-regions are obtained with {!Region.subregion}.
    Aliased (overlapping) partitions are first-class — preimages of shared
    structure routinely produce them (paper Fig. 6b). *)

(** Which index space a partition's colors enumerate.  [Flat] partitions
    are colored by piece id directly (one color per machine piece);
    [Grid_dim d] partitions are colored by the machine grid's dimension [d]
    (e.g. a row partition on a [gx * gy] grid has [gx] colors and every
    piece in the same grid row selects the same color).  The interpreter
    dispatches on this tag to map a piece id to its color — color {e
    counts} are ambiguous on square grids, where [grid.(0) = grid.(1)]. *)
type axis = Flat | Grid_dim of int

type t = {
  parent : Iset.t;  (** the partitioned index space *)
  subsets : Iset.t array;  (** indexed by color *)
  disjoint : bool;  (** [true] when subsets are pairwise disjoint *)
  axis : axis;  (** what the colors enumerate *)
}

(** [make ?axis parent subsets] checks each subset is contained in [parent]
    and computes disjointness.  [axis] defaults to [Flat]. *)
val make : ?axis:axis -> Iset.t -> Iset.t array -> t

val colors : t -> int
val subset : t -> int -> Iset.t
val axis : t -> axis

(** [equal_blocks is pieces] partitions [is] into [pieces] contiguous blocks
    of near-equal {e universe} extent: the span [min..max] of [is] is divided
    evenly and each block keeps the members of [is] that fall inside it.  This
    is the paper's {e universe partition} (§II-B). *)
val equal_blocks : ?axis:axis -> Iset.t -> int -> t

(** [equal_cardinality is pieces] partitions [is] into [pieces] contiguous
    groups of near-equal {e cardinality} — the paper's {e non-zero partition}
    (the tilde operator, §II-B). *)
val equal_cardinality : ?axis:axis -> Iset.t -> int -> t

(** [by_bounds is bounds] partitions by explicit per-color inclusive index
    bounds — the [partitionByBounds] operation of Table I. *)
val by_bounds : ?axis:axis -> Iset.t -> (int * int) array -> t

(** [by_bounds_strided is ~dim bounds] partitions a position space built of
    consecutive blocks of [dim] positions (a dense level under a sparse
    parent: position = parent * dim + coordinate): color [c] takes offsets
    [bounds.(c)] {e within every block}.  With one block it coincides with
    {!by_bounds}. *)
val by_bounds_strided : ?axis:axis -> Iset.t -> dim:int -> (int * int) array -> t

(** [by_value_ranges ~values is ranges] colors index [i] of [is] with color
    [c] iff [values.(i)] falls in [ranges.(c)] — the [partitionByValueRanges]
    operation of Table I, used to bucket [crd] arrays by coordinate value. *)
val by_value_ranges :
  ?axis:axis -> values:int Region.t -> Iset.t -> (int * int) array -> t

(** [union_of_colors p] is the set of indices covered by some color. *)
val union_of_colors : t -> Iset.t

(** [is_complete p] holds when every parent index is covered. *)
val is_complete : t -> bool

val pp : Format.formatter -> t -> unit
