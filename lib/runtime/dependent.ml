let image_ranges (pos : (int * int) Region.t) (p : Partition.t) (target : Iset.t)
    =
  let subsets =
    Array.map
      (fun src ->
        let ivals =
          Iset.fold
            (fun i acc ->
              let lo, hi = Region.get pos i in
              if hi < lo then acc else (lo, hi) :: acc)
            src []
        in
        Iset.inter target (Iset.of_intervals ivals))
      p.Partition.subsets
  in
  Partition.make ~axis:p.Partition.axis target subsets

let preimage_ranges (pos : (int * int) Region.t) (p : Partition.t) =
  let buckets = Array.map (fun _ -> ref []) p.Partition.subsets in
  Region.iter
    (fun i (lo, hi) ->
      if lo <= hi then
        Array.iteri
          (fun c dst ->
            if Iset.intersects_interval dst lo hi then
              buckets.(c) := (i, i) :: !(buckets.(c)))
          p.Partition.subsets)
    pos;
  let subsets = Array.map (fun b -> Iset.of_intervals !b) buckets in
  Partition.make ~axis:p.Partition.axis pos.Region.ispace subsets

let image_values (crd : int Region.t) (p : Partition.t) (target : Iset.t) =
  let subsets =
    Array.map
      (fun src ->
        let vals = Iset.fold (fun i acc -> Region.get crd i :: acc) src [] in
        Iset.inter target (Iset.of_list vals))
      p.Partition.subsets
  in
  Partition.make ~axis:p.Partition.axis target subsets

let preimage_values (crd : int Region.t) (p : Partition.t) =
  let buckets = Array.map (fun _ -> ref []) p.Partition.subsets in
  Region.iter
    (fun i v ->
      Array.iteri
        (fun c dst -> if Iset.mem v dst then buckets.(c) := (i, i) :: !(buckets.(c)))
        p.Partition.subsets)
    crd;
  let subsets = Array.map (fun b -> Iset.of_intervals !b) buckets in
  Partition.make ~axis:p.Partition.axis crd.Region.ispace subsets
