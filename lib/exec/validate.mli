(** Dense reference evaluation of TIN statements, for correctness checking.

    Evaluates the statement by brute force over the full Cartesian product of
    index domains — trustworthy but only usable on small inputs (tests). *)

module Tin := Spdistal_ir.Tin

(** [reference bindings stmt] computes the statement's result densely into a
    fresh map keyed by lhs coordinates (zero entries omitted). *)
val reference : Operand.bindings -> Tin.stmt -> (int list, float) Hashtbl.t

(** [max_error bindings stmt] compares the bound output operand against the
    dense reference and returns the largest absolute difference. *)
val max_error : Operand.bindings -> Tin.stmt -> float

(** {1 Tolerance-aware comparison}

    The fuzzer's differential oracle: every lhs coordinate is compared
    against the dense reference; coordinates failing
    [|want - got| <= atol + rtol * |want|] are mismatches. *)

type diff = { coords : int list; expected : float; actual : float }

type comparison = {
  checked : int;  (** lhs coordinates compared *)
  mismatched : int;  (** coordinates outside tolerance *)
  max_abs_err : float;  (** largest absolute difference seen *)
  samples : diff list;  (** first few mismatches, iteration order *)
}

(** [compare ?rtol ?atol ?max_samples bindings stmt]; tolerances default to 0
    (exact), [max_samples] (recorded mismatches) to 5. *)
val compare :
  ?rtol:float ->
  ?atol:float ->
  ?max_samples:int ->
  Operand.bindings ->
  Tin.stmt ->
  comparison

(** No mismatches. *)
val ok : comparison -> bool

(** Human-readable summary: mismatch counts plus the sample coordinates with
    both values. *)
val pp_diff : Format.formatter -> comparison -> unit

val diff_to_string : comparison -> string
