(* Compiled leaf kernels: monomorphized per-(format x expression) closures.

   The interpreter in {!Leaf} walks the memoized coordinate expansion of the
   driver and re-dispatches on the kernel shape per element.  This pass runs
   once per lowered program (at [Spdistal.compile] / [Interp.prepare] time)
   and specializes each leaf into a closed closure: level iterators from
   {!Level_funcs} are pre-resolved per level kind, the kernel shape is
   matched once, and the hot loop touches only flat arrays and Bigarray
   value buffers — no IR dispatch and no per-element allocation.  The
   classification ({!Leaf.plan_mul}) and work model ({!Leaf.mul_work}) are
   shared with the interpreter, which stays around as the differential
   oracle (`spdistal fuzz` cross-checks the two for bit-identical outputs
   and Cost).

   Reentrancy: one compiled leaf is executed concurrently by the domains
   simulating the pieces of a distributed launch, so all mutable walk state
   (coordinate/position scratch, counters) is allocated per [execute] call;
   the closure itself only captures immutable structure.  Output storage is
   re-resolved per call because warm-start iterations swap the output
   slot's backing data between launches. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
module A1 = Bigarray.Array1

(* ------------------------------------------------------------------ *)
(* Backend selector                                                     *)
(* ------------------------------------------------------------------ *)

type backend = Interp | Compiled

let backend_env_var = "SPDISTAL_LEAF_BACKEND"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "interp" | "interpreter" -> Ok Interp
  | "compiled" | "compile" -> Ok Compiled
  | other ->
      Error
        (Printf.sprintf "unknown leaf backend %S (expected interp or compiled)"
           other)

let backend_name = function Interp -> "interp" | Compiled -> "compiled"

let backend_override : backend option ref = ref None
let set_backend b = backend_override := Some b

let default_backend () =
  match !backend_override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt backend_env_var with
      | None -> Compiled
      | Some s -> ( match backend_of_string s with Ok b -> b | Error _ -> Compiled))

(* ------------------------------------------------------------------ *)
(* Compiled form                                                        *)
(* ------------------------------------------------------------------ *)

(* Fused fast paths for CSR-driver kernels (the paper's fig. 10 hot loops:
   SpMV / SpMM / SDDMM).  Everything else runs the generic specialized
   walker, which is still free of per-element IR dispatch. *)
type fast =
  | Generic
  | Fast_spmv of { x : float array }
  | Fast_spmm of { c : float array; ccols : int }
  | Fast_sddmm of { c : float array; ccols : int; d : float array; dcols : int }

type mul = {
  m_bindings : Operand.bindings;
  m_plan : Leaf.plan;
  m_ord : int;
  m_mode_order : int array;
  m_walkers : Level_funcs.level_iter array;
  m_dvals : Region.F.buf;
  m_csr_hi : int array;
      (* CSR fast paths only: flat row-end positions (snd of the level-1 pos
         ranges), pre-extracted so the hot loop never chases a tuple *)
  m_csr_crd : int array;
  m_fast : fast;
}

type merge = {
  g_ops : Leaf.merge_op list;
  g_cols : int;
  g_use_workspace : bool;
}

type t = C_mul of mul | C_merge of merge

(* ------------------------------------------------------------------ *)
(* Compilation                                                          *)
(* ------------------------------------------------------------------ *)

let is_csr (t : Tensor.t) =
  Tensor.order t = 2
  && t.Tensor.mode_order = [| 0; 1 |]
  &&
  match t.Tensor.levels with
  | [| Level.Dense _; Level.Compressed _ |] -> true
  | _ -> false

let detect_fast ~(plan : Leaf.plan) ~(driver : Tensor.t) =
  if not (is_csr driver) then Generic
  else
    match
      ( plan.Leaf.pl_inner_out,
        plan.Leaf.pl_inner_red,
        plan.Leaf.pl_factors,
        plan.Leaf.pl_sink )
    with
    | false, false, [| Leaf.F_vec (x, Leaf.Driver_dim 1) |], Leaf.Sp_vec (Leaf.Driver_dim 0)
      ->
        Fast_spmv { x }
    | ( true,
        false,
        [| Leaf.F_mat (c, ccols, Leaf.Driver_dim 1, Leaf.Inner_out) |],
        Leaf.Sp_mat (Leaf.Driver_dim 0, Leaf.Inner_out) ) ->
        Fast_spmm { c; ccols }
    | ( false,
        true,
        [|
          Leaf.F_mat (c, ccols, Leaf.Driver_dim 0, Leaf.Inner_red);
          Leaf.F_mat (d, dcols, Leaf.Inner_red, Leaf.Driver_dim 1);
        |],
        Leaf.Sp_sparse None ) ->
        Fast_sddmm { c; ccols; d; dcols }
    | _ -> Generic

let compile ~bindings (leaf : Loop_ir.leaf) =
  match leaf.Loop_ir.driver with
  | Loop_ir.Merge_driver tensors ->
      let ops, cols = Leaf.merge_ops ~bindings ~tensors in
      C_merge { g_ops = ops; g_cols = cols; g_use_workspace = leaf.Loop_ir.use_workspace }
  | Loop_ir.Sparse_driver driver_name ->
      let plan = Leaf.plan_mul ~bindings ~leaf ~driver_name in
      let driver = Operand.find_sparse bindings driver_name in
      let fast = detect_fast ~plan ~driver in
      let csr_hi, csr_crd =
        match (fast, driver.Tensor.levels) with
        | (Fast_spmv _ | Fast_spmm _ | Fast_sddmm _), [| _; Level.Compressed { pos; crd } |]
          ->
            (Array.map snd pos.Region.data, crd.Region.data)
        | _ -> ([||], [||])
      in
      C_mul
        {
          m_bindings = bindings;
          m_plan = plan;
          m_ord = Tensor.order driver;
          m_mode_order = driver.Tensor.mode_order;
          m_walkers = Array.map Level_funcs.iter_of_level driver.Tensor.levels;
          m_dvals = driver.Tensor.vals.Region.F.data;
          m_csr_hi = csr_hi;
          m_csr_crd = csr_crd;
          m_fast = fast;
        }

(* ------------------------------------------------------------------ *)
(* Generic specialized walker                                           *)
(* ------------------------------------------------------------------ *)

let src_reader coords (s : Leaf.idx_src) : int -> int -> int =
  match s with
  | Leaf.Driver_dim d -> fun _ _ -> coords.(d)
  | Leaf.Inner_out -> fun j _ -> j
  | Leaf.Inner_red -> fun _ k -> k

let factor_reader coords (f : Leaf.factor) : int -> int -> float =
  match f with
  | Leaf.F_vec (d, Leaf.Driver_dim i) -> fun _ _ -> d.(coords.(i))
  | Leaf.F_vec (d, Leaf.Inner_out) -> fun j _ -> d.(j)
  | Leaf.F_vec (d, Leaf.Inner_red) -> fun _ k -> d.(k)
  | Leaf.F_mat (d, cols, sr, sc) -> (
      match (sr, sc) with
      | Leaf.Driver_dim a, Leaf.Driver_dim b ->
          fun _ _ -> d.((coords.(a) * cols) + coords.(b))
      | Leaf.Driver_dim a, Leaf.Inner_out -> fun j _ -> d.((coords.(a) * cols) + j)
      | Leaf.Driver_dim a, Leaf.Inner_red -> fun _ k -> d.((coords.(a) * cols) + k)
      | Leaf.Inner_out, Leaf.Driver_dim b -> fun j _ -> d.((j * cols) + coords.(b))
      | Leaf.Inner_red, Leaf.Driver_dim b -> fun _ k -> d.((k * cols) + coords.(b))
      | _ ->
          let ra = src_reader coords sr and rb = src_reader coords sc in
          fun j k -> d.((ra j k * cols) + rb j k))

(* The factor product, folded left-to-right starting from the literal scale
   — the same association order as the interpreter's accumulator, so
   rounding is bit-identical. *)
let eval_of coords (plan : Leaf.plan) : int -> int -> float =
  Array.fold_left
    (fun acc f ->
      let r = factor_reader coords f in
      fun j k -> acc j k *. r j k)
    (fun _ _ -> plan.Leaf.pl_scale)
    plan.Leaf.pl_factors

(* [add p j k y]: reduce [y] into the output.  Resolved per call. *)
let sink_adder ~bindings ~coords ~lvlpos (plan : Leaf.plan) :
    int -> int -> int -> float -> unit =
  match ((Operand.find bindings plan.Leaf.pl_out_name).Operand.data, plan.Leaf.pl_sink) with
  | Operand.Vec v, Leaf.Sp_vec s ->
      let d = v.Dense.data in
      let rs = src_reader coords s in
      fun _p j k y ->
        let i = rs j k in
        d.(i) <- d.(i) +. y
  | Operand.Mat m, Leaf.Sp_mat (sr, sc) ->
      let d = m.Dense.data and cols = m.Dense.cols in
      let rr = src_reader coords sr and rc = src_reader coords sc in
      fun _p j k y ->
        let i = (rr j k * cols) + rc j k in
        d.(i) <- d.(i) +. y
  | Operand.Sparse ot, Leaf.Sp_sparse None ->
      let d = ot.Tensor.vals.Region.F.data in
      fun p _j _k y -> A1.set d p (A1.get d p +. y)
  | Operand.Sparse ot, Leaf.Sp_sparse (Some lvl) ->
      let d = ot.Tensor.vals.Region.F.data in
      fun _p _j _k y ->
        let q = lvlpos.(lvl) in
        A1.set d q (A1.get d q +. y)
  | _ ->
      Error.fail ~kernel:plan.Leaf.pl_out_name Error.Leaf
        "compiled leaf: output slot changed shape since compilation"

exception Past_end

let run_generic (m : mul) ~shard ~col_range =
  let plan = m.m_plan in
  let ord = m.m_ord in
  let coords = Array.make (max ord 1) 0 in
  let lvlpos = Array.make (max ord 1) 0 in
  let path = Array.make (max ord 1) 0 in
  let add = sink_adder ~bindings:m.m_bindings ~coords ~lvlpos plan in
  let eval = eval_of coords plan in
  let jlo, jhi = Leaf.j_bounds plan ~col_range in
  let klo, khi = Leaf.k_bounds plan in
  let dvals = m.m_dvals in
  let nnz = ref 0 and rows_touched = ref 0 and last_row = ref (-1) in
  let tally () =
    incr nnz;
    if coords.(0) <> !last_row then begin
      incr rows_touched;
      last_row := coords.(0)
    end
  in
  let body : int -> unit =
    match (plan.Leaf.pl_inner_out, plan.Leaf.pl_inner_red) with
    | false, false ->
        fun p ->
          tally ();
          add p 0 0 (A1.get dvals p *. eval 0 0)
    | true, false -> (
        match plan.Leaf.pl_sink with
        | Leaf.Sp_sparse _ ->
            fun _p ->
              tally ();
              if jlo <= jhi then
                Error.fail ~kernel:plan.Leaf.pl_driver_name Error.Leaf
                  "inner-out with sparse output"
        | _ ->
            fun p ->
              tally ();
              let dv = A1.get dvals p in
              for j = jlo to jhi do
                add p j 0 (dv *. eval j 0)
              done)
    | false, true ->
        fun p ->
          tally ();
          let acc = ref 0. in
          for k = klo to khi do
            acc := !acc +. eval 0 k
          done;
          add p 0 0 (A1.get dvals p *. !acc)
    | true, true ->
        fun _p ->
          tally ();
          Error.fail ~kernel:plan.Leaf.pl_driver_name Error.Leaf
            "simultaneous inner output and reduction vars"
  in
  let walkers = m.m_walkers and mo = m.m_mode_order in
  (* Seek the spine of the interval's first leaf position, then walk the
     nest in storage order until the leaf passes the interval's end. *)
  let walk_interval plo phi =
    path.(ord - 1) <- plo;
    for kk = ord - 2 downto 0 do
      path.(kk) <- walkers.(kk + 1).Level_funcs.li_locate path.(kk + 1)
    done;
    let rec go kk parent start =
      walkers.(kk).Level_funcs.li_iter ~parent ~from:start (fun c p ->
          coords.(mo.(kk)) <- c;
          lvlpos.(kk) <- p;
          if kk = ord - 1 then begin
            if p > phi then raise_notrace Past_end;
            body p
          end
          else go (kk + 1) p (if p = path.(kk) then path.(kk + 1) else -1))
    in
    try go 0 0 path.(0) with Past_end -> ()
  in
  Iset.iter_intervals walk_interval shard;
  {
    Leaf.work =
      Leaf.mul_work plan ~nnz:!nnz ~rows_touched:!rows_touched
        ~js:(jhi - jlo + 1) ~ks:(khi - klo + 1);
    partial = None;
  }

(* ------------------------------------------------------------------ *)
(* CSR fast paths                                                       *)
(* ------------------------------------------------------------------ *)

(* Row cursor over the flat row-end positions: positions are visited in
   ascending order, so the cursor only moves forward within an interval,
   skipping empty rows (whose hi precedes their lo).  Each interval is cut
   into per-row segments; a segment accumulates into a register seeded from
   the output cell and stores once — the identical left-to-right addition
   sequence as the interpreter's per-element read-modify-write, so rounding
   is bit-identical. *)

let run_spmv (m : mul) ~shard ~x =
  let plan = m.m_plan in
  let hi = m.m_csr_hi and crdd = m.m_csr_crd and dvals = m.m_dvals in
  let scale = plan.Leaf.pl_scale in
  let y =
    match (Operand.find m.m_bindings plan.Leaf.pl_out_name).Operand.data with
    | Operand.Vec v -> v.Dense.data
    | _ ->
        Error.fail ~kernel:plan.Leaf.pl_out_name Error.Leaf
          "compiled leaf: output slot changed shape since compilation"
  in
  let nnz = ref 0 and rows_touched = ref 0 and last_row = ref (-1) in
  Iset.iter_intervals
    (fun plo phi ->
      nnz := !nnz + (phi - plo + 1);
      let r = ref (m.m_walkers.(1).Level_funcs.li_locate plo) in
      let p = ref plo in
      while !p <= phi do
        let row = !r in
        let rhi = Array.unsafe_get hi row in
        if !p > rhi then incr r
        else begin
          let seg_hi = if rhi < phi then rhi else phi in
          if row <> !last_row then begin
            incr rows_touched;
            last_row := row
          end;
          let acc = ref (Array.unsafe_get y row) in
          for q = !p to seg_hi do
            acc :=
              !acc
              +. A1.unsafe_get dvals q
                 *. (scale *. Array.unsafe_get x (Array.unsafe_get crdd q))
          done;
          Array.unsafe_set y row !acc;
          p := seg_hi + 1;
          incr r
        end
      done)
    shard;
  {
    Leaf.work =
      Leaf.mul_work plan ~nnz:!nnz ~rows_touched:!rows_touched ~js:0 ~ks:0;
    partial = None;
  }

let run_spmm (m : mul) ~shard ~col_range ~c ~ccols =
  let plan = m.m_plan in
  let hi = m.m_csr_hi and crdd = m.m_csr_crd and dvals = m.m_dvals in
  let scale = plan.Leaf.pl_scale in
  let jlo, jhi = Leaf.j_bounds plan ~col_range in
  let a, acols =
    match (Operand.find m.m_bindings plan.Leaf.pl_out_name).Operand.data with
    | Operand.Mat mt -> (mt.Dense.data, mt.Dense.cols)
    | _ ->
        Error.fail ~kernel:plan.Leaf.pl_out_name Error.Leaf
          "compiled leaf: output slot changed shape since compilation"
  in
  let nnz = ref 0 and rows_touched = ref 0 and last_row = ref (-1) in
  Iset.iter_intervals
    (fun plo phi ->
      nnz := !nnz + (phi - plo + 1);
      let r = ref (m.m_walkers.(1).Level_funcs.li_locate plo) in
      let p = ref plo in
      while !p <= phi do
        let row = !r in
        let rhi = Array.unsafe_get hi row in
        if !p > rhi then incr r
        else begin
          let seg_hi = if rhi < phi then rhi else phi in
          if row <> !last_row then begin
            incr rows_touched;
            last_row := row
          end;
          let abase = row * acols in
          for q = !p to seg_hi do
            let col = Array.unsafe_get crdd q in
            let dv = A1.unsafe_get dvals q in
            let cbase = col * ccols in
            for j = jlo to jhi do
              let y0 = dv *. (scale *. Array.unsafe_get c (cbase + j)) in
              Array.unsafe_set a (abase + j)
                (Array.unsafe_get a (abase + j) +. y0)
            done
          done;
          p := seg_hi + 1;
          incr r
        end
      done)
    shard;
  {
    Leaf.work =
      Leaf.mul_work plan ~nnz:!nnz ~rows_touched:!rows_touched
        ~js:(jhi - jlo + 1) ~ks:0;
    partial = None;
  }

let run_sddmm (m : mul) ~shard ~c ~ccols ~d ~dcols =
  let plan = m.m_plan in
  let hi = m.m_csr_hi and crdd = m.m_csr_crd and dvals = m.m_dvals in
  let scale = plan.Leaf.pl_scale in
  let klo, khi = Leaf.k_bounds plan in
  let out =
    match (Operand.find m.m_bindings plan.Leaf.pl_out_name).Operand.data with
    | Operand.Sparse ot -> ot.Tensor.vals.Region.F.data
    | _ ->
        Error.fail ~kernel:plan.Leaf.pl_out_name Error.Leaf
          "compiled leaf: output slot changed shape since compilation"
  in
  let nnz = ref 0 and rows_touched = ref 0 and last_row = ref (-1) in
  Iset.iter_intervals
    (fun plo phi ->
      nnz := !nnz + (phi - plo + 1);
      let r = ref (m.m_walkers.(1).Level_funcs.li_locate plo) in
      let p = ref plo in
      while !p <= phi do
        let row = !r in
        let rhi = Array.unsafe_get hi row in
        if !p > rhi then incr r
        else begin
          let seg_hi = if rhi < phi then rhi else phi in
          if row <> !last_row then begin
            incr rows_touched;
            last_row := row
          end;
          let cbase = row * ccols in
          for q = !p to seg_hi do
            let col = Array.unsafe_get crdd q in
            let acc = ref 0. in
            for k = klo to khi do
              acc :=
                !acc
                +. (scale *. Array.unsafe_get c (cbase + k))
                   *. Array.unsafe_get d ((k * dcols) + col)
            done;
            let y0 = A1.unsafe_get dvals q *. !acc in
            A1.unsafe_set out q (A1.unsafe_get out q +. y0)
          done;
          p := seg_hi + 1;
          incr r
        end
      done)
    shard;
  {
    Leaf.work =
      Leaf.mul_work plan ~nnz:!nnz ~rows_touched:!rows_touched ~js:0
        ~ks:(khi - klo + 1);
    partial = None;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let execute t ~shard_vals ~rows ~col_range () =
  match t with
  | C_merge g -> (
      match rows with
      | Some r ->
          Leaf.merge_core ~ops:g.g_ops ~cols:g.g_cols ~rows:r
            ~use_workspace:g.g_use_workspace
      | None -> Error.fail Error.Leaf "merge kernel needs a row set")
  | C_mul m -> (
      let shard = shard_vals m.m_plan.Leaf.pl_driver_name in
      match m.m_fast with
      | Fast_spmv { x } -> run_spmv m ~shard ~x
      | Fast_spmm { c; ccols } -> run_spmm m ~shard ~col_range ~c ~ccols
      | Fast_sddmm { c; ccols; d; dcols } -> run_sddmm m ~shard ~c ~ccols ~d ~dcols
      | Generic -> run_generic m ~shard ~col_range)
