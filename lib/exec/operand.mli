(** Runtime operand bindings: the data a lowered program executes against.

    Dense operands are mutated in place; sparse outputs with unknown patterns
    (additive merges) are re-assembled, so every binding is a mutable slot. *)

open Spdistal_formats

type data = Sparse of Tensor.t | Vec of Dense.vec | Mat of Dense.mat
type slot = { mutable data : data }
type bindings = (string * slot) list

val sparse : Tensor.t -> slot
val vec : Dense.vec -> slot
val mat : Dense.mat -> slot

val find : bindings -> string -> slot
val find_sparse : bindings -> string -> Tensor.t
val find_vec : bindings -> string -> Dense.vec
val find_mat : bindings -> string -> Dense.mat

(** Size of dimension [d] of the operand. *)
val dim : data -> int -> int

val order : data -> int

(** Bytes of one element of dimension [d]'s cross-section: 8 for a vector
    element, [8*cols] for a matrix row ([d]=0), [8*rows] for a column
    ([d]=1). *)
val slice_bytes : data -> int -> float

(** Total payload bytes of the operand. *)
val bytes : data -> float

(** Deep copy: fresh backing arrays, identical values and structure.  Used
    by the execution context to snapshot (and later restore) the output
    operand across warm-start iterations. *)
val copy_data : data -> data

(** The {!Spdistal_ir.Lower.env} entry this operand induces. *)
val meta : data -> Spdistal_ir.Lower.operand

(** Build a lowering environment from bindings. *)
val env_of_bindings : bindings -> Spdistal_ir.Lower.env
