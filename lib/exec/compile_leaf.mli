(** Compiled leaf kernels: monomorphized per-(format × expression) closures.

    The reference interpreter in {!Leaf} re-dispatches on the kernel shape
    for every stored element.  This pass runs once per lowered program (at
    [Spdistal.compile] / {!Interp.prepare} time) and specializes each leaf
    loop into a closed closure: level iterators from
    {!Spdistal_ir.Level_funcs} are pre-resolved per level kind
    (dense / compressed / compressed-non-unique / singleton), the kernel
    shape is matched once, and the hot loop touches only flat arrays and
    the Bigarray value buffers ({!Spdistal_runtime.Region.F}) — no IR
    dispatch and no per-element allocation.

    Classification ({!Leaf.plan_mul}), inner-loop bounds and the simulated
    work model ({!Leaf.mul_work}) are shared verbatim with the interpreter,
    which remains the differential oracle: outputs, launch records and Cost
    are bit-identical across backends (checked by [spdistal fuzz] and the
    test suite). *)

open Spdistal_runtime

(** {1 Backend selection} *)

type backend = Interp | Compiled

(** [SPDISTAL_LEAF_BACKEND] — consulted by {!default_backend} when no
    explicit override is set. *)
val backend_env_var : string

(** Parse ["interp"]/["interpreter"]/["compiled"]/["compile"]
    (case-insensitive); [Error msg] otherwise. *)
val backend_of_string : string -> (backend, string) result

val backend_name : backend -> string

(** Process-wide override (the CLI's [--leaf-backend]); takes precedence
    over the environment variable. *)
val set_backend : backend -> unit

(** Override > [SPDISTAL_LEAF_BACKEND] > [Compiled].  An unparseable
    environment value silently falls back to the default; the CLI flag
    errors loudly instead. *)
val default_backend : unit -> backend

(** {1 Compilation and execution} *)

(** A leaf specialized for its driver format and expression shape.  The
    closure captures only immutable structure (plans, resolved level
    iterators, input arrays); all mutable walk state is allocated per
    {!execute} call, so one compiled leaf may simulate the pieces of a
    distributed launch concurrently.  Output storage is re-resolved per
    call because warm-start iterations swap the output slot's backing
    data between launches. *)
type t

(** Specialize one leaf.  Raises {!Spdistal_runtime.Error.Error} on the
    same unsupported shapes as the interpreter ({!Leaf.plan_mul}). *)
val compile : bindings:Operand.bindings -> Spdistal_ir.Loop_ir.leaf -> t

(** Drop-in replacement for {!Leaf.execute} (same piece-shard arguments,
    same {!Leaf.result}, same deferred per-element error semantics). *)
val execute :
  t ->
  shard_vals:(string -> Iset.t) ->
  rows:Iset.t option ->
  col_range:(int * int) option ->
  unit ->
  Leaf.result
