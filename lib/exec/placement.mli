(** Initial data residency: where each operand lives before the computation,
    as declared by its TDN data distribution.

    The interpreter charges communication only for data a piece needs that
    its declared distribution does not already put there — this is how the
    paper's "matched data and computation distributions avoid unnecessary
    communication" (§II-D) and the mismatch penalty both emerge. *)

open Spdistal_runtime

type residency =
  | Replicated_everywhere
  | Vals_partitioned of Partition.t
      (** sparse operand: piece [c] holds leaf positions [subset c] *)
  | Dim_partitioned of { dim : int; part : Partition.t }
      (** dense operand: piece [c] holds slices [subset c] of [dim] *)
  | Not_resident  (** everything must be fetched *)

type t = (string * residency) list

val find : t -> string -> residency

(** Materialize a TDN declaration for one operand into its residency on the
    given machine, by lowering the TDN's partitioning program and executing
    it (paper §V-C).  For [Tdn.Replicated] no program runs.  [stats]
    accumulates the dependent-partitioning work this lowering performed, for
    the execution context's cold-miss cost model. *)
val of_tdn :
  ?stats:Part_eval.stats ->
  machine:Machine.t -> bindings:Operand.bindings -> string -> Spdistal_ir.Tdn.t ->
  residency

(** [remap_piece ~machine ~crashed piece] is the surviving grid slot that
    re-executes [piece] when the nodes in [crashed] died: deterministic
    round-robin over the pieces of surviving nodes (identity when [crashed]
    is empty).  Raises {!Spdistal_runtime.Error.Error} ([Recovery]) when no
    node survives. *)
val remap_piece : machine:Machine.t -> crashed:int list -> int -> int

(** [resident_set placement ~tensor ~comm_dim ~piece ~colors_of] is the set
    already on [piece] for the given communicated dimension ([-1] = leaf
    positions of a sparse operand), or [None] when fully resident. *)
val resident_set :
  t ->
  tensor:string ->
  comm_dim:int ->
  piece_subset:(Partition.t -> Iset.t) ->
  [ `All | `Set of Iset.t | `Nothing ]
