(** Evaluation of partitioning statements: executes the coloring loops and
    [partitionBy*]/image/preimage IR of a lowered program against bound
    operands, materializing real {!Spdistal_runtime.Partition} values.  This
    is the runtime-analysis half of SpDISTAL's implementation (paper §V-A):
    what Legion's dependent partitioning performs for the generated code. *)

open Spdistal_runtime
open Spdistal_ir

(** A coloring under construction: accumulated entries (kept reversed) plus
    the grid axis its colors enumerate, inherited by partitions built from
    it. *)
type coloring_state = {
  mutable entries : (int * int) list;
  c_axis : Partition.axis;
}

type env = {
  bindings : Operand.bindings;
  colorings : (string, coloring_state) Hashtbl.t;
  partitions : (string, Partition.t) Hashtbl.t;
  mutable dep_ops : int;  (** dependent-partitioning operations executed *)
  mutable dep_elems : int;
      (** total region entries scanned by dependent-partitioning ops — the
          work the cost model prices on a cold cache miss *)
  mutable parts : int;  (** partitions materialized ([Def_partition]s run) *)
  trace : Spdistal_obs.Trace.t;
      (** sink for host-clock spans around dependent-partitioning ops *)
}

(** Partitioning-work tally accumulated across the environments one problem
    setup creates (placement lowering + the main program), consumed by the
    execution context's partitioning cost model. *)
type stats = {
  mutable s_parts : int;
  mutable s_dep_ops : int;
  mutable s_dep_elems : int;
}

val stats : unit -> stats

(** Fold [env]'s counters into the tally. *)
val accum_stats : stats -> env -> unit

(** [create ?trace bindings] — [trace] (default
    {!Spdistal_obs.Trace.null}) receives one host-clock "dep" span per
    dependent-partitioning operation. *)
val create : ?trace:Spdistal_obs.Trace.t -> Operand.bindings -> env

(** Resolve a symbolic dimension. *)
val eval_dim : env -> Loop_ir.dim_expr -> int

(** Resolve arithmetic under a color binding. *)
val eval_aexpr : env -> color:(string * int) -> Loop_ir.aexpr -> int

(** Index space of a region reference. *)
val rref_ispace : env -> Loop_ir.rref -> Iset.t

(** Execute one partitioning statement ([Distributed_for] is rejected —
    that belongs to the interpreter). *)
val eval_stmt : env -> Loop_ir.stmt -> unit

(** Execute every partitioning statement of a program, stopping at (and
    returning) the distributed loops. *)
val eval_partitions : env -> Loop_ir.prog -> Loop_ir.stmt list

val find_partition : env -> string -> Partition.t
