(** Execution of lowered programs against the simulated machine.

    The interpreter plays the role Legion plays for SpDISTAL's generated
    code: it materializes the program's partitions (dependent partitioning,
    §V-A), launches the distributed loop, moves the sub-regions each piece
    needs, runs the leaf kernels for real, and advances the simulated clock.

    Timing semantics: one [run] is one {e timed iteration} of the paper's
    benchmark protocol.  Partitioning happens at setup and is not charged.
    Dense operands are assumed invalidated between iterations (they are the
    vectors/factors an iterative application updates), so their
    communication recurs, exactly like PETSc's per-MatMult VecScatter;
    sparse inputs are charged only for the difference between their declared
    data distribution and what the computation needs (paper §II-D).
    {!Spdistal_runtime.Memstate} enforces capacities: [Oom] escapes to the
    caller, which reports a DNC cell (paper Fig. 11).

    Host parallelism: the pieces of each distributed launch are simulated
    concurrently on a domain pool when [domains >= 2] (explicitly, via
    {!Spdistal_runtime.Machine.set_sim_domains}, or via [SPDISTAL_DOMAINS]).
    Results are {e bit-identical} to a sequential run: piece simulations are
    pure records, every leaf that reduces into overlapping output locations
    runs on the reducing domain, and all shared state (Cost, Memstate,
    message totals, stitched outputs) is updated there in ascending piece
    order, preserving float accumulation order exactly.  The only observable
    difference is on the [Oom] path, where leaves of pieces past the
    offending one may already have run — outputs were already unspecified on
    that path. *)

open Spdistal_runtime

(** [run ~machine ~bindings ~placement ?memstate ~cost ?domains ?faults prog]
    executes [prog].  [domains] caps the OCaml domains used to simulate
    pieces of one launch concurrently (default
    {!Spdistal_runtime.Machine.sim_domains}; [<= 1] means sequential).

    [faults] (default {!Spdistal_runtime.Fault.default}, i.e. the CLI
    override or [SPDISTAL_FAULTS], else disabled) injects a deterministic
    fault schedule — node crashes, message loss, stragglers — and prices
    Legion-style recovery into [cost]: leaves still commit exactly once on
    the reducing domain, so computed tensors are {e bit-identical} to the
    fault-free run under any schedule; only per-piece times, moved bytes and
    the recovery counters change.  Recovery exhaustion (a fault recurring
    past [max_retries], or a crash with no surviving node) raises
    {!Spdistal_runtime.Error.Error} with the [Recovery] phase.

    [trace] (default {!Spdistal_obs.Trace.default}) receives the run's
    events: per-launch critical-path spans on the runtime track, per-piece
    fetch/compute spans (plus UVM paging and fault-recovery instants) on
    piece tracks, dependent-partitioning and pool-occupancy spans on the
    host clock, comm-matrix edges and cumulative cost counters.  Tracing
    never changes computed tensors or [cost] — all emission happens on the
    reducing domain in piece order.

    [backend] selects the leaf execution backend for this run (default
    {!Compile_leaf.default_backend}): [Compiled] runs the monomorphized
    closures from {!Compile_leaf}, [Interp] the reference interpreter in
    {!Leaf}.  Both are bit-identical in outputs, launch records and Cost.
    Ignored when [prepared] is given (the prepared value fixes the backend).

    [prepared] supplies a pre-materialized {!prepared} value from
    {!prepare} (e.g. the execution context's cache), skipping partition
    evaluation and leaf specialization; [launch_base] offsets the run's
    launch indices, so iteration [i] of a warm-start run draws the same
    fault schedule whether or not its partitions came from the cache. *)

(** A prepared program: the partition environment, its distributed loops,
    and — under the compiled backend — one specialized closure per loop
    (aligned with [pp_loops]; [None] entries fall back to the
    interpreter). *)
type prepared = {
  pp_penv : Part_eval.env;
  pp_loops : Spdistal_ir.Loop_ir.stmt list;
  pp_leaves : Compile_leaf.t option list;
  pp_backend : Compile_leaf.backend;
}

val run :
  machine:Machine.t ->
  bindings:Operand.bindings ->
  placement:Placement.t ->
  ?memstate:Memstate.t ->
  cost:Cost.t ->
  ?domains:int ->
  ?faults:Fault.config ->
  ?trace:Spdistal_obs.Trace.t ->
  ?backend:Compile_leaf.backend ->
  ?prepared:prepared ->
  ?launch_base:int ->
  Spdistal_ir.Loop_ir.prog ->
  unit

(** Materialize [prog]'s partitions — and, under the compiled backend
    (default {!Compile_leaf.default_backend}), specialize its leaf loops —
    without executing its distributed loops: the value [run] accepts via
    [?prepared].  [trace] (default {!Spdistal_obs.Trace.null}) receives the
    "part_eval" and "compile_leaves" phase spans. *)
val prepare :
  ?trace:Spdistal_obs.Trace.t ->
  ?backend:Compile_leaf.backend ->
  bindings:Operand.bindings ->
  Spdistal_ir.Loop_ir.prog ->
  prepared

(** Swap a prepared program to [backend], reusing its materialized
    partitions (the expensive part) and respecializing only the leaves.
    Returns [p] unchanged when its backend already matches. *)
val relink :
  ?trace:Spdistal_obs.Trace.t ->
  bindings:Operand.bindings ->
  backend:Compile_leaf.backend ->
  prepared ->
  prepared

(** Partition-evaluation environment of the last [run], for inspection in
    tests (partitions by name). *)
val last_env : unit -> Part_eval.env option

(** Color of [part] selected by piece [piece] on [grid] (exposed for tests).
    Dispatches on the partition's {!Spdistal_runtime.Partition.axis}: [Flat]
    partitions are indexed by piece id; [Grid_dim d] partitions by the
    piece's coordinate along grid dimension [d] (pieces are row-major over
    the grid). *)
val color_for :
  grid:int array -> pieces:int -> Partition.t -> int -> int
