(** The execution-context cache behind warm-start (iterative) runs.

    SpDISTAL inherits Legion's amortization of dependent partitioning: an
    iterative solver (CG around SpMV, fig10/fig11) launches the same kernel
    over the same partitions hundreds of times, so partitioning, placement
    and lowering run once — on the {e cold miss} — and every later iteration
    replays the cached launch plan for the price of the index launches
    alone.

    Keys are structural digests of (tensor index notation, operand formats
    and sparsity {e structure}, data-distribution notation, schedule,
    machine).  Stored {e values} of operands are deliberately excluded: an
    iterative application updates them between launches without changing any
    partition.  A node crash invalidates the entry (its placements name dead
    slots); the next iteration re-partitions and pays the cold cost again. *)

open Spdistal_runtime
open Spdistal_ir

type entry = {
  e_key : string;
  e_placement : Placement.t;
  e_prog : Loop_ir.prog;
  mutable e_prepared : Interp.prepared;
      (** materialized partitions, distributed loops and (compiled backend)
          specialized leaf closures; swapped in place via {!Interp.relink}
          when a later run requests the other backend *)
  e_launches : int;
      (** per-iteration launch stride: length of the prepared loop list *)
  e_part_seconds : float;
      (** simulated dependent-partitioning seconds charged on the miss *)
  e_part_ops : int;
  e_part_elems : int;
  e_bytes : int;
      (** accounted footprint (see {!approx_bytes}), charged against the
          byte budget *)
  mutable e_hits : int;
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  entries : int;  (** live entries *)
  bytes : int;  (** current accounted footprint of all live entries *)
  bytes_peak : int;
      (** largest resting footprint ever reached (sampled after eviction, so
          it never exceeds the byte budget) *)
  evictions : int;  (** entries dropped by the cap or the byte budget *)
}

type t

(** [create ?cap ?byte_budget ()] — [cap] (default 64) bounds live entries
    and [byte_budget] (default unlimited) bounds their accounted bytes; the
    least recently {e used} entry is evicted first (entries are cheap to
    rebuild).  An entry bigger than the whole budget is never kept.  Raises
    {!Spdistal_runtime.Error.Error} ([Config]) on a non-positive budget. *)
val create : ?cap:int -> ?byte_budget:int -> unit -> t

(** Deterministic footprint estimate of an entry: fixed record overhead plus
    per-piece placement state, per-launch prepared-loop state and ~16 B per
    dependently-partitioned region element. *)
val approx_bytes : pieces:int -> launches:int -> part_elems:int -> int

(** Structural digest of a problem.  Injective in practice on distinct
    (tin, formats, tdn, schedule, machine) tuples (an MD5 over a canonical
    rendering); sparse operands contribute their coordinate structure, dense
    operands only their shape. *)
val digest :
  machine:Machine.t ->
  operands:(string * Operand.slot * Tdn.t) list ->
  stmt:Tin.stmt ->
  schedule:Schedule.t ->
  string

(** Digest for auto-scheduler winners: {!digest} minus exactly what the
    search chooses — the schedule and the per-operand TDNs — so a remembered
    winner is found again for the same (machine, TIN, sparsity pattern)
    whatever schedule/TDNs the caller arrived with. *)
val winner_digest :
  machine:Machine.t ->
  operands:(string * Operand.slot * Tdn.t) list ->
  stmt:Tin.stmt ->
  string

(** A schedule the auto-scheduler settled on, remembered under
    {!winner_digest}.  Winners are tiny; they share the entry cap but not
    the byte budget. *)
type winner = {
  w_label : string;  (** search-family label of the winning candidate *)
  w_schedule : Schedule.t;
  w_tdns : (string * Tdn.t) list;
  w_total : float;  (** priced cost of the winner, simulated seconds *)
}

(** Lookup a remembered winner (refreshes recency; does not touch the
    hit/miss counters — those count launch-plan lookups). *)
val find_winner : t -> string -> winner option

(** Remember a winner (no-op if the key is present); evicts the least
    recently used winner past the entry cap. *)
val remember_winner : t -> string -> winner -> unit

(** Simulated price of the dependent-partitioning work tallied in [stats]:
    one launch overhead per partition/query op plus the scanned region
    entries at memory bandwidth.  Charged by the execution context only on a
    cold miss. *)
val partition_seconds : Machine.t -> Part_eval.stats -> float

(** Lookup; counts a hit or a miss.  A hit refreshes the entry's recency
    (true LRU, not insertion-order FIFO). *)
val find : t -> string -> entry option

(** Insert (no-op if the key is already present), then evict least recently
    used entries until the cap and the byte budget hold — possibly including
    the entry just inserted, when it alone exceeds the budget. *)
val add : t -> entry -> unit

(** Drop the entry for [key] after the nodes in [crashed] died: validates
    that every piece they hosted still has a surviving slot (via
    {!Placement.remap_piece}; raises {!Spdistal_runtime.Error.Error} with
    the [Recovery] phase when none survives), then forces the next iteration
    to re-partition. *)
val invalidate : t -> machine:Machine.t -> crashed:int list -> string -> unit

val stats : t -> stats
