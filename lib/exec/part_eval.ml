open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir

type coloring_state = {
  mutable entries : (int * int) list;  (* reversed *)
  c_axis : Partition.axis;
}

module Trace = Spdistal_obs.Trace

type env = {
  bindings : Operand.bindings;
  colorings : (string, coloring_state) Hashtbl.t;
  partitions : (string, Partition.t) Hashtbl.t;
  mutable dep_ops : int;
  mutable dep_elems : int;
  mutable parts : int;
  trace : Trace.t;
}

type stats = {
  mutable s_parts : int;
  mutable s_dep_ops : int;
  mutable s_dep_elems : int;
}

let stats () = { s_parts = 0; s_dep_ops = 0; s_dep_elems = 0 }

let accum_stats s env =
  s.s_parts <- s.s_parts + env.parts;
  s.s_dep_ops <- s.s_dep_ops + env.dep_ops;
  s.s_dep_elems <- s.s_dep_elems + env.dep_elems

let create ?(trace = Trace.null) bindings =
  {
    bindings;
    colorings = Hashtbl.create 16;
    partitions = Hashtbl.create 16;
    dep_ops = 0;
    dep_elems = 0;
    parts = 0;
    trace;
  }

(* A dependent-partitioning operation (the paper's image/preimage/value-range
   queries): counted always — [elems] is the number of region entries the op
   scans, the basis of its simulated price — and timed on the host clock when
   tracing. *)
let dep_op env name ~elems f =
  env.dep_ops <- env.dep_ops + 1;
  env.dep_elems <- env.dep_elems + elems;
  Trace.with_wall_span env.trace
    ~track:(Trace.Host (Domain.self () :> int))
    ~cat:"dep" ~name f

let data env name = (Operand.find env.bindings name).Operand.data

let sparse env name =
  match data env name with
  | Operand.Sparse t -> t
  | Operand.Vec _ | Operand.Mat _ ->
      Error.fail ~kernel:name Error.Partition_eval "operand is not sparse"

let eval_dim env = function
  | Loop_ir.Dim_of_level (t, k) -> (
      match data env t with
      | Operand.Sparse tn -> tn.Tensor.dims.(tn.Tensor.mode_order.(k))
      | Operand.Vec v ->
          if k <> 0 then Error.fail Error.Partition_eval "vector level %d" k;
          v.Dense.n
      | Operand.Mat m -> if k = 0 then m.Dense.rows else m.Dense.cols)
  | Loop_ir.Extent_of_level (t, k) -> Tensor.level_extent (sparse env t) k
  | Loop_ir.Nnz_of t -> Tensor.nnz (sparse env t)
  | Loop_ir.Int_dim n -> n

let rec eval_aexpr env ~color e =
  let cvar, cval = color in
  match e with
  | Loop_ir.Int n -> n
  | Loop_ir.Color_var v ->
      if v = cvar then cval
      else Error.fail Error.Partition_eval "unbound color var %s" v
  | Loop_ir.Dim d -> eval_dim env d
  | Loop_ir.Add (a, b) -> eval_aexpr env ~color a + eval_aexpr env ~color b
  | Loop_ir.Sub (a, b) -> eval_aexpr env ~color a - eval_aexpr env ~color b
  | Loop_ir.Mul (a, b) -> eval_aexpr env ~color a * eval_aexpr env ~color b
  | Loop_ir.Div (a, b) -> eval_aexpr env ~color a / eval_aexpr env ~color b

let rref_ispace env = function
  | Loop_ir.Pos_r (t, k) -> (Tensor.pos_of (sparse env t) k).Region.ispace
  | Loop_ir.Crd_r (t, k) -> (Tensor.crd_of (sparse env t) k).Region.ispace
  | Loop_ir.Vals_r t -> (sparse env t).Tensor.vals.Region.F.ispace
  | Loop_ir.Dom_r (t, k) -> (
      match data env t with
      | Operand.Sparse tn -> Iset.range (Tensor.level_extent tn k)
      | Operand.Vec v ->
          if k <> 0 then Error.fail Error.Partition_eval "vector dom %d" k;
          Iset.range v.Dense.n
      | Operand.Mat m -> Iset.range (if k = 0 then m.Dense.rows else m.Dense.cols))

let find_partition env name =
  match Hashtbl.find_opt env.partitions name with
  | Some p -> p
  | None -> Error.fail Error.Partition_eval "undefined partition %s" name

let coloring_state env name =
  match Hashtbl.find_opt env.colorings name with
  | Some st -> st
  | None -> Error.fail Error.Partition_eval "undefined coloring %s" name

let coloring_bounds env name =
  let st = coloring_state env name in
  (Array.of_list (List.rev st.entries), st.c_axis)

let scale_subsets ~f part =
  let subsets =
    Array.map
      (fun s ->
        Iset.of_intervals
          (Iset.fold_intervals (fun lo hi acc -> f lo hi :: acc) s []))
      part.Partition.subsets
  in
  subsets

let eval_pexpr env = function
  | Loop_ir.By_bounds { target; coloring } ->
      let bounds, axis = coloring_bounds env coloring in
      Partition.by_bounds ~axis (rref_ispace env target) bounds
  | Loop_ir.By_bounds_strided { target; coloring; dim } ->
      let d = eval_dim env dim in
      let bounds, axis = coloring_bounds env coloring in
      Partition.by_bounds_strided ~axis (rref_ispace env target) ~dim:d bounds
  | Loop_ir.By_value_ranges { target; coloring } ->
      let crd =
        match target with
        | Loop_ir.Crd_r (t, k) -> Tensor.crd_of (sparse env t) k
        | _ -> Error.fail Error.Partition_eval "value ranges need a crd region"
      in
      let bounds, axis = coloring_bounds env coloring in
      let tgt = rref_ispace env target in
      dep_op env "by_value_ranges" ~elems:(Iset.cardinal tgt) (fun () ->
          Partition.by_value_ranges ~axis ~values:crd tgt bounds)
  | Loop_ir.Image_range { pos; part; target } ->
      let posr =
        match pos with
        | Loop_ir.Pos_r (t, k) -> Tensor.pos_of (sparse env t) k
        | _ -> Error.fail Error.Partition_eval "image needs a pos region"
      in
      dep_op env "image_range" ~elems:(Iset.cardinal posr.Region.ispace)
        (fun () ->
          Dependent.image_ranges posr (find_partition env part)
            (rref_ispace env target))
  | Loop_ir.Preimage_range { pos; part } ->
      let posr =
        match pos with
        | Loop_ir.Pos_r (t, k) -> Tensor.pos_of (sparse env t) k
        | _ -> Error.fail Error.Partition_eval "preimage needs a pos region"
      in
      dep_op env "preimage_range" ~elems:(Iset.cardinal posr.Region.ispace)
        (fun () -> Dependent.preimage_ranges posr (find_partition env part))
  | Loop_ir.Image_values { crd; part; target } ->
      let crdr =
        match crd with
        | Loop_ir.Crd_r (t, k) -> Tensor.crd_of (sparse env t) k
        | _ -> Error.fail Error.Partition_eval "imageValues needs a crd region"
      in
      dep_op env "image_values" ~elems:(Iset.cardinal crdr.Region.ispace)
        (fun () ->
          Dependent.image_values crdr (find_partition env part)
            (rref_ispace env target))
  | Loop_ir.Copy_part p -> find_partition env p
  | Loop_ir.Scale_dense { part; dim } ->
      let d = eval_dim env dim in
      let p = find_partition env part in
      let subsets = scale_subsets ~f:(fun lo hi -> (lo * d, ((hi + 1) * d) - 1)) p in
      let parent =
        if Iset.is_empty p.Partition.parent then Iset.empty
        else
          Iset.interval
            (Iset.min_elt p.Partition.parent * d)
            (((Iset.max_elt p.Partition.parent + 1) * d) - 1)
      in
      Partition.make ~axis:p.Partition.axis parent subsets
  | Loop_ir.Unscale_dense { part; dim } ->
      let d = eval_dim env dim in
      let p = find_partition env part in
      let subsets = scale_subsets ~f:(fun lo hi -> (lo / d, hi / d)) p in
      let parent =
        if Iset.is_empty p.Partition.parent then Iset.empty
        else Iset.interval (Iset.min_elt p.Partition.parent / d) (Iset.max_elt p.Partition.parent / d)
      in
      Partition.make ~axis:p.Partition.axis parent subsets

let rec eval_stmt env = function
  | Loop_ir.Comment _ -> ()
  | Loop_ir.Init_coloring { coloring; axis } ->
      Hashtbl.replace env.colorings coloring { entries = []; c_axis = axis }
  | Loop_ir.For_colors { cvar; count; body } ->
      for c = 0 to count - 1 do
        List.iter
          (function
            | Loop_ir.Coloring_entry { coloring; lo; hi } ->
                let l = eval_aexpr env ~color:(cvar, c) lo
                and h = eval_aexpr env ~color:(cvar, c) hi in
                let st =
                  match Hashtbl.find_opt env.colorings coloring with
                  | Some st -> st
                  | None -> Error.fail Error.Partition_eval "entry before init"
                in
                st.entries <- (l, h) :: st.entries
            | s -> eval_stmt env s)
          body
      done
  | Loop_ir.Coloring_entry _ ->
      Error.fail Error.Partition_eval "coloring entry outside a color loop"
  | Loop_ir.Def_partition { pname; expr } ->
      env.parts <- env.parts + 1;
      Hashtbl.replace env.partitions pname (eval_pexpr env expr)
  | Loop_ir.Distributed_for _ ->
      Error.fail Error.Partition_eval "distributed loop reached partition evaluator"

let eval_partitions env prog =
  let loops = ref [] in
  List.iter
    (fun s ->
      match s with
      | Loop_ir.Distributed_for _ -> loops := s :: !loops
      | _ -> eval_stmt env s)
    prog.Loop_ir.stmts;
  List.rev !loops
