open Spdistal_formats
open Spdistal_ir

(* Domain of every index variable, from the operands it indexes. *)
let var_domains bindings (stmt : Tin.stmt) =
  let doms = Hashtbl.create 8 in
  let note (acc : Tin.access) =
    let d = (Operand.find bindings acc.Tin.tensor).Operand.data in
    List.iteri
      (fun i v ->
        let n = Operand.dim d i in
        match Hashtbl.find_opt doms v with
        | None -> Hashtbl.replace doms v n
        | Some m ->
            if m <> n then
              invalid_arg
                (Printf.sprintf "Validate: inconsistent domain for %s (%d vs %d)"
                   v m n))
      acc.Tin.indices
  in
  note stmt.Tin.lhs;
  List.iter note (Tin.rhs_accesses stmt);
  doms

let value_at bindings (acc : Tin.access) env =
  let coords =
    Array.of_list (List.map (fun v -> Hashtbl.find env v) acc.Tin.indices)
  in
  match (Operand.find bindings acc.Tin.tensor).Operand.data with
  | Operand.Sparse t -> Tensor.get t coords
  | Operand.Vec v -> Dense.vec_get v coords.(0)
  | Operand.Mat m -> Dense.mat_get m coords.(0) coords.(1)

let rec eval_expr bindings env = function
  | Tin.Access a -> value_at bindings a env
  | Tin.Add (a, b) -> eval_expr bindings env a +. eval_expr bindings env b
  | Tin.Mul (a, b) -> eval_expr bindings env a *. eval_expr bindings env b
  | Tin.Lit f -> f

let reference bindings (stmt : Tin.stmt) =
  let doms = var_domains bindings stmt in
  let vars = Tin.index_vars stmt in
  let env = Hashtbl.create 8 in
  let out = Hashtbl.create 64 in
  let rec loop = function
    | [] ->
        let v = eval_expr bindings env stmt.Tin.rhs in
        if v <> 0. then begin
          let key = List.map (fun iv -> Hashtbl.find env iv) stmt.Tin.lhs.Tin.indices in
          let prev = Option.value ~default:0. (Hashtbl.find_opt out key) in
          Hashtbl.replace out key (prev +. v)
        end
    | v :: rest ->
        for x = 0 to Hashtbl.find doms v - 1 do
          Hashtbl.replace env v x;
          loop rest
        done
  in
  loop vars;
  out

type diff = { coords : int list; expected : float; actual : float }

type comparison = {
  checked : int;
  mismatched : int;
  max_abs_err : float;
  samples : diff list;
}

let ok c = c.mismatched = 0

let compare ?(rtol = 0.) ?(atol = 0.) ?(max_samples = 5) bindings
    (stmt : Tin.stmt) =
  let expected = reference bindings stmt in
  let doms = var_domains bindings stmt in
  let dims = List.map (fun v -> Hashtbl.find doms v) stmt.Tin.lhs.Tin.indices in
  let checked = ref 0 and mismatched = ref 0 and max_err = ref 0. in
  let samples = ref [] and nsamples = ref 0 in
  let rec loop prefix = function
    | [] ->
        let key = List.rev prefix in
        let want = Option.value ~default:0. (Hashtbl.find_opt expected key) in
        let got =
          value_at bindings stmt.Tin.lhs
            (let env = Hashtbl.create 4 in
             List.iter2 (fun v x -> Hashtbl.replace env v x)
               stmt.Tin.lhs.Tin.indices key;
             env)
        in
        incr checked;
        let err = Float.abs (want -. got) in
        if err > !max_err then max_err := err;
        if err > atol +. (rtol *. Float.abs want) then begin
          incr mismatched;
          if !nsamples < max_samples then begin
            samples := { coords = key; expected = want; actual = got } :: !samples;
            incr nsamples
          end
        end
    | n :: rest ->
        for x = 0 to n - 1 do
          loop (x :: prefix) rest
        done
  in
  loop [] dims;
  {
    checked = !checked;
    mismatched = !mismatched;
    max_abs_err = !max_err;
    samples = List.rev !samples;
  }

let pp_diff fmt c =
  if c.mismatched = 0 then
    Format.fprintf fmt "all %d coordinates match (max |err| %g)" c.checked
      c.max_abs_err
  else begin
    Format.fprintf fmt "%d/%d coordinates mismatch (max |err| %g):"
      c.mismatched c.checked c.max_abs_err;
    List.iter
      (fun d ->
        Format.fprintf fmt "@\n  (%s): expected %.17g, got %.17g"
          (String.concat "," (List.map string_of_int d.coords))
          d.expected d.actual)
      c.samples
  end

let diff_to_string c = Format.asprintf "%a" pp_diff c

let max_error bindings (stmt : Tin.stmt) =
  (compare ~atol:infinity bindings stmt).max_abs_err
