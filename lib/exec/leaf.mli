(** Leaf kernels: the per-piece computation at the bottom of a distributed
    loop (paper Fig. 9b label (4)).

    The executor derives the iteration shape mechanically from the TIN
    statement: iterate the stored values of the sparse driver (or co-iterate
    rows of several operands for additive merges), evaluate the dense factors,
    and write/reduce into the output — covering SpMV, SpMM, SpAdd3, SDDMM,
    SpTTV and SpMTTKRP with four loop shapes.  Results are numerically exact;
    the returned {!Spdistal_runtime.Task.work} feeds the time model. *)

open Spdistal_runtime

(** A shard's locally-assembled rows of an unknown-pattern sparse output
    (two-phase assembly, §V-B); stitched globally by the interpreter. *)
type merge_partial = {
  mrows : int array;  (** row ids, increasing *)
  mcounts : int array;  (** output non-zeros per row *)
  mcrd : int array;
  mvals : float array;
}

type result = { work : Task.work; partial : merge_partial option }

(** [execute ~bindings ~leaf ~shard_vals ~rows ~col_range ()] runs the leaf
    for one piece.  [shard_vals t] is the piece's subset of tensor [t]'s leaf
    positions; [rows] is the piece's row set (merge kernels); [col_range] an
    inclusive dense-column chunk (batched SpMM). *)
val execute :
  bindings:Operand.bindings ->
  leaf:Spdistal_ir.Loop_ir.leaf ->
  shard_vals:(string -> Iset.t) ->
  rows:Iset.t option ->
  col_range:(int * int) option ->
  unit ->
  result

(** Drop memoized coordinate expansions (frees memory between experiments). *)
val clear_cache : unit -> unit

(** Build (and memoize) the coordinate expansion of a tensor now.  The
    interpreter calls this on the reducing domain before simulating pieces in
    parallel, so worker domains only hit the (mutex-guarded) cache. *)
val prewarm : Spdistal_formats.Tensor.t -> unit
