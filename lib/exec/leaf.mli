(** Leaf kernels: the per-piece computation at the bottom of a distributed
    loop (paper Fig. 9b label (4)).

    The executor derives the iteration shape mechanically from the TIN
    statement: iterate the stored values of the sparse driver (or co-iterate
    rows of several operands for additive merges), evaluate the dense factors,
    and write/reduce into the output — covering SpMV, SpMM, SpAdd3, SDDMM,
    SpTTV and SpMTTKRP with four loop shapes.  Results are numerically exact;
    the returned {!Spdistal_runtime.Task.work} feeds the time model. *)

open Spdistal_runtime

(** A shard's locally-assembled rows of an unknown-pattern sparse output
    (two-phase assembly, §V-B); stitched globally by the interpreter. *)
type merge_partial = {
  mrows : int array;  (** row ids, increasing *)
  mcounts : int array;  (** output non-zeros per row *)
  mcrd : int array;
  mvals : float array;
}

type result = { work : Task.work; partial : merge_partial option }

(** {1 Shared kernel classification}

    The compiled backend ({!Compile_leaf}) reuses the interpreter's
    classification and work model, so the two backends cannot disagree on a
    kernel's shape or its Cost accounting; only the element loop differs. *)

(** Where an index of a dense operand access comes from. *)
type idx_src =
  | Driver_dim of int  (** slot of the driver's access *)
  | Inner_out  (** dense output var the driver doesn't bind *)
  | Inner_red  (** dense reduction var *)

type factor =
  | F_vec of float array * idx_src
  | F_mat of float array * int * idx_src * idx_src

(** Output shape; storage is re-resolved per execute call because warm-start
    iterations swap the output slot's backing data between launches. *)
type sink_spec =
  | Sp_vec of idx_src
  | Sp_mat of idx_src * idx_src
  | Sp_sparse of int option
      (** [Some level]: leaf positions map to output positions at that
          storage level; [None] writes at the leaf *)

type plan = {
  pl_driver_name : string;
  pl_out_name : string;
  pl_nslots : int;
  pl_inner_out : bool;
  pl_inner_red : bool;
  pl_jext : int;
  pl_kext : int;
  pl_factors : factor array;
  pl_sink : sink_spec;
  pl_scale : float;
  pl_nnz_split : bool;
}

(** Classify a multiplicative leaf. Raises [Error.Leaf] on unsupported
    shapes (second sparse operand, arity mismatches, missing extents). *)
val plan_mul :
  bindings:Operand.bindings ->
  leaf:Spdistal_ir.Loop_ir.leaf ->
  driver_name:string ->
  plan

(** Inclusive inner-loop bounds for one piece (empty as [(0, -1)]). *)
val j_bounds : plan -> col_range:(int * int) option -> int * int

val k_bounds : plan -> int * int

(** The simulated-work model of a multiplicative leaf, shared verbatim by
    both backends.  [js]/[ks] are the executed inner extents
    ([jhi - jlo + 1]). *)
val mul_work :
  plan -> nnz:int -> rows_touched:int -> js:int -> ks:int -> Task.work

(** Per-operand resolved storage of a merge: (pos, crd, vals) triples. *)
type merge_op = (int * int) array * int array * Region.F.buf

(** Resolve the merge operands' storage and the shared column extent. *)
val merge_ops :
  bindings:Operand.bindings -> tensors:string list -> merge_op list * int

(** The k-way merge / workspace core, shared by both backends. *)
val merge_core :
  ops:merge_op list ->
  cols:int ->
  rows:Iset.t ->
  use_workspace:bool ->
  result

(** [execute ~bindings ~leaf ~shard_vals ~rows ~col_range ()] runs the leaf
    for one piece.  [shard_vals t] is the piece's subset of tensor [t]'s leaf
    positions; [rows] is the piece's row set (merge kernels); [col_range] an
    inclusive dense-column chunk (batched SpMM). *)
val execute :
  bindings:Operand.bindings ->
  leaf:Spdistal_ir.Loop_ir.leaf ->
  shard_vals:(string -> Iset.t) ->
  rows:Iset.t option ->
  col_range:(int * int) option ->
  unit ->
  result

(** Drop memoized coordinate expansions (frees memory between experiments). *)
val clear_cache : unit -> unit

(** Build (and memoize) the coordinate expansion of a tensor now.  The
    interpreter calls this on the reducing domain before simulating pieces in
    parallel, so worker domains only hit the (mutex-guarded) cache. *)
val prewarm : Spdistal_formats.Tensor.t -> unit
