open Spdistal_formats
module Error = Spdistal_runtime.Error

type data = Sparse of Tensor.t | Vec of Dense.vec | Mat of Dense.mat
type slot = { mutable data : data }
type bindings = (string * slot) list

let sparse t = { data = Sparse t }
let vec v = { data = Vec v }
let mat m = { data = Mat m }

let find bindings name =
  match List.assoc_opt name bindings with
  | Some s -> s
  | None -> Error.fail Error.Config "unbound operand %s" name

let find_sparse bindings name =
  match (find bindings name).data with
  | Sparse t -> t
  | Vec _ | Mat _ -> Error.fail ~kernel:name Error.Config "operand is not sparse"

let find_vec bindings name =
  match (find bindings name).data with
  | Vec v -> v
  | Sparse _ | Mat _ -> Error.fail ~kernel:name Error.Config "operand is not a vector"

let find_mat bindings name =
  match (find bindings name).data with
  | Mat m -> m
  | Sparse _ | Vec _ -> Error.fail ~kernel:name Error.Config "operand is not a matrix"

let dim data d =
  match data with
  | Sparse t -> t.Tensor.dims.(d)
  | Vec v ->
      if d <> 0 then Error.fail Error.Config "Operand.dim: vector has one dimension";
      v.Dense.n
  | Mat m -> (
      match d with
      | 0 -> m.Dense.rows
      | 1 -> m.Dense.cols
      | _ -> Error.fail Error.Config "Operand.dim: bad dimension %d" d)

let order = function
  | Sparse t -> Tensor.order t
  | Vec _ -> 1
  | Mat _ -> 2

let slice_bytes data d =
  match data with
  | Sparse t ->
      (* Bytes per leaf position: value + one crd entry per compressed
         level (pos arrays amortize over rows). *)
      let compressed =
        Array.fold_left
          (fun n l ->
            match l with
            | Level.Compressed _ | Level.Singleton _ -> n + 1
            | Level.Dense _ -> n)
          0 t.Tensor.levels
      in
      8. +. (8. *. float_of_int compressed)
  | Vec _ -> 8.
  | Mat m -> (
      match d with
      | 0 -> 8. *. float_of_int m.Dense.cols
      | 1 -> 8. *. float_of_int m.Dense.rows
      | _ -> Error.fail Error.Config "Operand.slice_bytes: bad dimension %d" d)

let bytes = function
  | Sparse t -> float_of_int (Tensor.bytes t)
  | Vec v -> Dense.vec_bytes v
  | Mat m -> Dense.mat_bytes m

(* Deep copy of an operand's payload: fresh backing arrays, identical values
   and structure.  The execution context snapshots the output operand with
   this so each warm-start iteration can restart from the pristine state and
   recompute exactly what a single application computes. *)
let copy_region r =
  Spdistal_runtime.Region.of_array r.Spdistal_runtime.Region.name
    (Array.copy r.Spdistal_runtime.Region.data)

let copy_data = function
  | Vec v -> Vec { v with Dense.data = Array.copy v.Dense.data }
  | Mat m -> Mat { m with Dense.data = Array.copy m.Dense.data }
  | Sparse t ->
      Sparse
        {
          t with
          Tensor.dims = Array.copy t.Tensor.dims;
          mode_order = Array.copy t.Tensor.mode_order;
          levels =
            Array.map
              (function
                | Level.Dense _ as l -> l
                | Level.Compressed { pos; crd } ->
                    Level.Compressed
                      { pos = copy_region pos; crd = copy_region crd }
                | Level.Singleton { crd } ->
                    Level.Singleton { crd = copy_region crd })
              t.Tensor.levels;
          vals = Spdistal_runtime.Region.F.copy t.Tensor.vals;
        }

let meta = function
  | Sparse t ->
      Spdistal_ir.Lower.Sparse_op
        {
          formats = Array.map Level.kind t.Tensor.levels;
          mode_order = t.Tensor.mode_order;
        }
  | Vec _ -> Spdistal_ir.Lower.Vec_op
  | Mat _ -> Spdistal_ir.Lower.Mat_op

let env_of_bindings bindings =
  List.map (fun (name, slot) -> (name, meta slot.data)) bindings
