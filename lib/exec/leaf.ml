open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
module A1 = Bigarray.Array1

type merge_partial = {
  mrows : int array;
  mcounts : int array;
  mcrd : int array;
  mvals : float array;
}

type result = { work : Task.work; partial : merge_partial option }

(* ------------------------------------------------------------------ *)
(* Coordinate expansion: logical coordinates and per-level positions of
   every leaf position, memoized per tensor.                            *)
(* ------------------------------------------------------------------ *)

type expansion = {
  ecoords : int array array;  (* [logical dim][leaf pos] *)
  epos : int array array;  (* [level][leaf pos] *)
}

let cache : (int, expansion) Hashtbl.t = Hashtbl.create 16

(* The cache is shared across the domains that simulate the pieces of one
   distributed launch; every access goes through this lock.  The interpreter
   additionally pre-warms the driver's entry before fanning out, so workers
   only ever take the fast hit path. *)
let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let expand (t : Tensor.t) =
  (* Keyed by the vals region's unique allocation id: tensor names repeat
     across problems, physical storage does not. *)
  let key = t.Tensor.vals.Region.F.id in
  Mutex.lock cache_mutex;
  match Hashtbl.find_opt cache key with
  | Some e ->
      Mutex.unlock cache_mutex;
      e
  | None ->
      let ord = Tensor.order t in
      let n = Tensor.nnz t in
      let ecoords = Array.init ord (fun _ -> Array.make n 0) in
      let epos = Array.init ord (fun _ -> Array.make n 0) in
      let coords = Array.make ord 0 and positions = Array.make ord 0 in
      let rec go k parent_pos =
        if k = ord then
          for d = 0 to ord - 1 do
            ecoords.(t.Tensor.mode_order.(d)).(parent_pos) <- coords.(d);
            epos.(d).(parent_pos) <- positions.(d)
          done
        else
          match t.Tensor.levels.(k) with
          | Level.Dense { dim } ->
              for c = 0 to dim - 1 do
                coords.(k) <- c;
                positions.(k) <- (parent_pos * dim) + c;
                go (k + 1) positions.(k)
              done
          | Level.Compressed { pos; crd } ->
              let lo, hi = Region.get pos parent_pos in
              for p = lo to hi do
                coords.(k) <- Region.get crd p;
                positions.(k) <- p;
                go (k + 1) p
              done
          | Level.Singleton { crd } ->
              coords.(k) <- Region.get crd parent_pos;
              positions.(k) <- parent_pos;
              go (k + 1) parent_pos
      in
      if n > 0 then go 0 0;
      let e = { ecoords; epos } in
      Hashtbl.replace cache key e;
      Mutex.unlock cache_mutex;
      e

let prewarm t = ignore (expand t)

(* ------------------------------------------------------------------ *)
(* Kernel classification, shared between the interpreter and the        *)
(* compiled backend so the two cannot disagree on a kernel's shape.     *)
(* ------------------------------------------------------------------ *)

type idx_src = Driver_dim of int | Inner_out | Inner_red

type factor =
  | F_vec of float array * idx_src
  | F_mat of float array * int * idx_src * idx_src

(* Where the output lives — resolved to storage per execute call, because
   warm-start iterations swap the output slot's backing data between
   launches. *)
type sink_spec =
  | Sp_vec of idx_src
  | Sp_mat of idx_src * idx_src
  | Sp_sparse of int option
      (* [Some level] maps leaf positions to output positions at that storage
         level (pattern shared above the leaf); [None] writes at the leaf. *)

type plan = {
  pl_driver_name : string;
  pl_out_name : string;
  pl_nslots : int;  (* arity of the driver's access *)
  pl_inner_out : bool;  (* has a dense output var the driver doesn't bind *)
  pl_inner_red : bool;  (* has a dense reduction var *)
  pl_jext : int;  (* inner-out extent (0 when absent) *)
  pl_kext : int;  (* inner-red extent (0 when absent) *)
  pl_factors : factor array;
  pl_sink : sink_spec;
  pl_scale : float;  (* product of literal coefficients *)
  pl_nnz_split : bool;
}

let var_pos_opt (acc : Tin.access) v =
  let rec go i = function
    | [] -> None
    | x :: _ when x = v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 acc.Tin.indices

let src_of_var ~driver_acc ~inner_out ~inner_red v =
  if Some v = inner_out then Inner_out
  else if Some v = inner_red then Inner_red
  else
    match var_pos_opt driver_acc v with
    | Some i -> Driver_dim i
    | None -> Error.fail Error.Leaf "variable %s has no source" v

let eval_src coords ~j ~k = function
  | Driver_dim d -> coords.(d)
  | Inner_out -> j
  | Inner_red -> k

let plan_mul ~bindings ~(leaf : Loop_ir.leaf) ~driver_name =
  let stmt = leaf.Loop_ir.leaf_stmt in
  let driver = Operand.find_sparse bindings driver_name in
  let ord = Tensor.order driver in
  let driver_acc =
    match
      List.find_opt (fun a -> a.Tin.tensor = driver_name) (Tin.rhs_accesses stmt)
    with
    | Some a -> a
    | None -> Error.fail ~kernel:driver_name Error.Leaf "driver access missing"
  in
  let out = stmt.Tin.lhs in
  let inner_out =
    List.find_opt (fun v -> var_pos_opt driver_acc v = None) out.Tin.indices
  in
  let inner_red =
    List.find_opt
      (fun v ->
        var_pos_opt driver_acc v = None && not (List.mem v out.Tin.indices))
      (Tin.index_vars stmt)
  in
  let src = src_of_var ~driver_acc ~inner_out ~inner_red in
  let factors =
    List.filter_map
      (fun (a : Tin.access) ->
        if a.Tin.tensor = driver_name then None
        else
          match (Operand.find bindings a.Tin.tensor).Operand.data with
          | Operand.Vec v -> (
              match a.Tin.indices with
              | [ iv ] -> Some (F_vec (v.Dense.data, src iv))
              | _ -> Error.fail ~kernel:a.Tin.tensor Error.Leaf "vector arity")
          | Operand.Mat m -> (
              match a.Tin.indices with
              | [ r; c ] ->
                  Some (F_mat (m.Dense.data, m.Dense.cols, src r, src c))
              | _ -> Error.fail ~kernel:a.Tin.tensor Error.Leaf "matrix arity")
          | Operand.Sparse _ ->
              Error.fail ~kernel:a.Tin.tensor Error.Leaf
                "second sparse operand in a product")
      (Tin.rhs_accesses stmt)
    |> Array.of_list
  in
  let sink =
    match (Operand.find bindings out.Tin.tensor).Operand.data with
    | Operand.Vec _ -> (
        match out.Tin.indices with
        | [ iv ] -> Sp_vec (src iv)
        | _ -> Error.fail ~kernel:out.Tin.tensor Error.Leaf "output vector arity")
    | Operand.Mat _ -> (
        match out.Tin.indices with
        | [ r; c ] -> Sp_mat (src r, src c)
        | _ -> Error.fail ~kernel:out.Tin.tensor Error.Leaf "output matrix arity")
    | Operand.Sparse _ ->
        let depth = List.length out.Tin.indices in
        if depth = ord then Sp_sparse None else Sp_sparse (Some (depth - 1))
  in
  let extent_of_inner v =
    let rec find = function
      | [] -> Error.fail ~kernel:driver_name Error.Leaf "no extent for %s" v
      | (a : Tin.access) :: rest -> (
          match var_pos_opt a v with
          | Some p when a.Tin.tensor <> driver_name ->
              Operand.dim (Operand.find bindings a.Tin.tensor).Operand.data p
          | _ -> find rest)
    in
    find (out :: Tin.rhs_accesses stmt)
  in
  let jext = match inner_out with None -> 0 | Some v -> extent_of_inner v in
  let kext = match inner_red with None -> 0 | Some v -> extent_of_inner v in
  (* Literal coefficients multiply through the (fragment-validated: pure)
     product; they were silently dropped before the fuzzer caught it. *)
  let rec lit_product = function
    | Tin.Lit f -> f
    | Tin.Mul (a, b) -> lit_product a *. lit_product b
    | Tin.Access _ | Tin.Add _ -> 1.
  in
  {
    pl_driver_name = driver_name;
    pl_out_name = out.Tin.tensor;
    pl_nslots = List.length driver_acc.Tin.indices;
    pl_inner_out = inner_out <> None;
    pl_inner_red = inner_red <> None;
    pl_jext = jext;
    pl_kext = kext;
    pl_factors = factors;
    pl_sink = sink;
    pl_scale = lit_product stmt.Tin.rhs;
    pl_nnz_split = leaf.Loop_ir.nnz_split;
  }

(* Inner-loop bounds for one piece (inclusive; empty as [(0, -1)]). *)
let j_bounds plan ~col_range =
  match (plan.pl_inner_out, col_range) with
  | false, _ -> (0, -1)
  | true, None -> (0, plan.pl_jext - 1)
  | true, Some (lo, hi) -> (lo, hi)

let k_bounds plan = if plan.pl_inner_red then (0, plan.pl_kext - 1) else (0, -1)

(* Work model: bytes move once per executed access; the output row amortizes
   over the row's non-zeros (detected by row changes in the sorted
   iteration).  Shared verbatim by both backends so Cost totals cannot
   drift. *)
let mul_work plan ~nnz ~rows_touched ~js ~ks =
  let n = float_of_int nnz in
  let rows = float_of_int (max 1 rows_touched) in
  let nff = float_of_int (Array.length plan.pl_factors) in
  let js = float_of_int (max 0 js) and ks = float_of_int (max 0 ks) in
  let flops, read, written =
    match (plan.pl_inner_out, plan.pl_inner_red) with
    | false, false -> (2. *. n, (16. +. (8. *. nff)) *. n, 8. *. rows)
    | true, false ->
        ( 2. *. n *. js,
          (16. *. n) +. (8. *. n *. js) +. (8. *. rows *. js),
          8. *. rows *. js )
    | false, true -> ((2. *. ks +. 2.) *. n, (16. *. n) +. (16. *. n *. ks), 8. *. n)
    | true, true -> (0., 0., 0.)
  in
  let atomics =
    plan.pl_nnz_split
    && (match plan.pl_sink with Sp_sparse None -> false | _ -> true)
  in
  { Task.flops; bytes_read = read; bytes_written = written; atomics }

(* ------------------------------------------------------------------ *)
(* Multiplicative kernels (interpreter)                                  *)
(* ------------------------------------------------------------------ *)

(* Resolved sink storage: looked up per call (see {!sink_spec}). *)
type sink =
  | S_vec of float array * idx_src
  | S_mat of float array * int * idx_src * idx_src
  | S_sparse of Region.F.buf * int array option

let resolve_sink ~bindings ~exp plan =
  match (Operand.find bindings plan.pl_out_name).Operand.data with
  | Operand.Vec v -> (
      match plan.pl_sink with
      | Sp_vec s -> S_vec (v.Dense.data, s)
      | _ -> Error.fail ~kernel:plan.pl_out_name Error.Leaf "output slot changed shape")
  | Operand.Mat m -> (
      match plan.pl_sink with
      | Sp_mat (sr, sc) -> S_mat (m.Dense.data, m.Dense.cols, sr, sc)
      | _ -> Error.fail ~kernel:plan.pl_out_name Error.Leaf "output slot changed shape")
  | Operand.Sparse ot -> (
      match plan.pl_sink with
      | Sp_sparse None -> S_sparse (ot.Tensor.vals.Region.F.data, None)
      | Sp_sparse (Some lvl) ->
          S_sparse (ot.Tensor.vals.Region.F.data, Some exp.epos.(lvl))
      | _ -> Error.fail ~kernel:plan.pl_out_name Error.Leaf "output slot changed shape")

let mul_kernel ~bindings ~(leaf : Loop_ir.leaf) ~driver_name ~shard ~col_range =
  let plan = plan_mul ~bindings ~leaf ~driver_name in
  let driver = Operand.find_sparse bindings driver_name in
  let exp = expand driver in
  let sink = resolve_sink ~bindings ~exp plan in
  let factors = plan.pl_factors in
  let jlo, jhi = j_bounds plan ~col_range in
  let klo, khi = k_bounds plan in
  let dvals = driver.Tensor.vals.Region.F.data in
  let nslots = plan.pl_nslots in
  (* Slot [s] of the driver access binds the driver's logical dimension
     [s]. *)
  let coord_arrays = Array.init nslots (fun s -> exp.ecoords.(s)) in
  let coords = Array.make nslots 0 in
  let nf = Array.length factors in
  let scale = plan.pl_scale in
  let eval_factors ~j ~k =
    let acc = ref scale in
    for f = 0 to nf - 1 do
      acc :=
        !acc
        *.
        (match factors.(f) with
        | F_vec (d, s) -> d.(eval_src coords ~j ~k s)
        | F_mat (d, cols, sr, sc) ->
            d.((eval_src coords ~j ~k sr * cols) + eval_src coords ~j ~k sc))
    done;
    !acc
  in
  let last_row = ref (-1) and rows_touched = ref 0 and nnz = ref 0 in
  Iset.iter_intervals
    (fun plo phi ->
      for p = plo to phi do
        let dv = A1.get dvals p in
        for s = 0 to nslots - 1 do
          coords.(s) <- coord_arrays.(s).(p)
        done;
        if coords.(0) <> !last_row then begin
          incr rows_touched;
          last_row := coords.(0)
        end;
        incr nnz;
        match (plan.pl_inner_out, plan.pl_inner_red) with
        | false, false -> (
            let y = dv *. eval_factors ~j:0 ~k:0 in
            match sink with
            | S_vec (d, s) ->
                let i = eval_src coords ~j:0 ~k:0 s in
                d.(i) <- d.(i) +. y
            | S_mat (d, cols, sr, sc) ->
                let i =
                  (eval_src coords ~j:0 ~k:0 sr * cols) + eval_src coords ~j:0 ~k:0 sc
                in
                d.(i) <- d.(i) +. y
            | S_sparse (d, None) -> A1.set d p (A1.get d p +. y)
            | S_sparse (d, Some lp) ->
                let q = lp.(p) in
                A1.set d q (A1.get d q +. y))
        | true, false ->
            for j = jlo to jhi do
              let y = dv *. eval_factors ~j ~k:0 in
              match sink with
              | S_mat (d, cols, sr, sc) ->
                  let i = (eval_src coords ~j ~k:0 sr * cols) + eval_src coords ~j ~k:0 sc in
                  d.(i) <- d.(i) +. y
              | S_vec (d, s) ->
                  let i = eval_src coords ~j ~k:0 s in
                  d.(i) <- d.(i) +. y
              | S_sparse _ -> Error.fail ~kernel:driver_name Error.Leaf "inner-out with sparse output"
            done
        | false, true -> (
            let acc = ref 0. in
            for k = klo to khi do
              acc := !acc +. eval_factors ~j:0 ~k
            done;
            let y = dv *. !acc in
            match sink with
            | S_sparse (d, None) -> A1.set d p (A1.get d p +. y)
            | S_sparse (d, Some lp) ->
                let q = lp.(p) in
                A1.set d q (A1.get d q +. y)
            | S_vec (d, s) ->
                let i = eval_src coords ~j:0 ~k:0 s in
                d.(i) <- d.(i) +. y
            | S_mat (d, cols, sr, sc) ->
                let i =
                  (eval_src coords ~j:0 ~k:0 sr * cols) + eval_src coords ~j:0 ~k:0 sc
                in
                d.(i) <- d.(i) +. y)
        | true, true ->
            Error.fail ~kernel:driver_name Error.Leaf
              "simultaneous inner output and reduction vars"
      done)
    shard;
  {
    work =
      mul_work plan ~nnz:!nnz ~rows_touched:!rows_touched ~js:(jhi - jlo + 1)
        ~ks:(khi - klo + 1);
    partial = None;
  }

(* ------------------------------------------------------------------ *)
(* Additive merge kernels (SpAdd3): per-row k-way merge with two-phase
   assembly semantics (the count pass is folded into the byte model).   *)
(* ------------------------------------------------------------------ *)

(* Resolved per-operand storage of a merge: (pos, crd, vals) triples. *)
type merge_op = (int * int) array * int array * Region.F.buf

let merge_ops ~bindings ~tensors : merge_op list * int =
  let ops =
    List.map
      (fun name ->
        let t = Operand.find_sparse bindings name in
        if Tensor.order t <> 2 then
          Error.fail ~kernel:name Error.Leaf "merge needs matrices";
        ( (Tensor.pos_of t 1).Region.data,
          (Tensor.crd_of t 1).Region.data,
          t.Tensor.vals.Region.F.data ))
      tensors
  in
  let cols =
    (Operand.find_sparse bindings (List.hd tensors)).Tensor.dims.(1)
  in
  (ops, cols)

(* The merge core is shared by both backends (the compiled backend
   pre-resolves [ops]; the interpreter resolves them per call), so their
   outputs and work accounting are identical by construction. *)
let merge_core ~(ops : merge_op list) ~cols ~rows ~use_workspace =
  let flops = ref 0. and br = ref 0. and bw = ref 0. in
  let rows_list = ref [] and counts = ref [] in
  let crd_acc = ref [] and vals_acc = ref [] in
  (* Workspace strategy (Kjolstad et al. [22]): scatter each operand row
     into a dense accumulator, track touched columns, then sort and emit —
     no k-way comparisons, at the cost of random workspace traffic. *)
  let w = if use_workspace then Array.make cols 0. else [||] in
  let touched = if use_workspace then Array.make cols false else [||] in
  let workspace_row r emit =
    let idx = ref [] in
    List.iter
      (fun ((pos, crd, vals) : merge_op) ->
        let lo, hi = pos.(r) in
        for p = lo to hi do
          let j = crd.(p) in
          if not touched.(j) then begin
            touched.(j) <- true;
            idx := j :: !idx
          end;
          w.(j) <- w.(j) +. A1.get vals p;
          flops := !flops +. 1.;
          (* value + crd reads, workspace read-modify-write *)
          br := !br +. 32.
        done)
      ops;
    let sorted = List.sort compare !idx in
    List.iter
      (fun j ->
        emit j w.(j);
        w.(j) <- 0.;
        touched.(j) <- false)
      sorted
  in
  let merge_row r emit =
    let cursors =
      List.map
        (fun ((pos, crd, vals) : merge_op) ->
          let lo, hi = pos.(r) in
          (ref lo, hi, crd, vals))
        ops
    in
    let rec step () =
      let mincol =
        List.fold_left
          (fun m (i, hi, crd, _) -> if !i <= hi then min m crd.(!i) else m)
          max_int cursors
      in
      if mincol < max_int then begin
        let sum = ref 0. in
        List.iter
          (fun (i, hi, crd, vals) ->
            while !i <= hi && crd.(!i) = mincol do
              sum := !sum +. A1.get vals !i;
              flops := !flops +. 1.;
              br := !br +. 16.;
              incr i
            done)
          cursors;
        emit mincol !sum;
        step ()
      end
    in
    step ()
  in
  let do_row = if use_workspace then workspace_row else merge_row in
  Iset.iter
    (fun r ->
      let row_nnz = ref 0 in
      let row_crd = ref [] and row_vals = ref [] in
      do_row r (fun col v ->
          incr row_nnz;
          row_crd := col :: !row_crd;
          row_vals := v :: !row_vals;
          bw := !bw +. 16.);
      rows_list := r :: !rows_list;
      counts := !row_nnz :: !counts;
      crd_acc := !row_crd @ !crd_acc;
      vals_acc := !row_vals @ !vals_acc)
    rows;
  let partial =
    {
      mrows = Array.of_list (List.rev !rows_list);
      mcounts = Array.of_list (List.rev !counts);
      mcrd = Array.of_list (List.rev !crd_acc);
      mvals = Array.of_list (List.rev !vals_acc);
    }
  in
  if not use_workspace then br := !br *. 2.;
  {
    work =
      { Task.flops = !flops; bytes_read = !br; bytes_written = !bw; atomics = false };
    partial = Some partial;
  }

let merge_kernel ~bindings ~tensors ~rows ~use_workspace =
  let ops, cols = merge_ops ~bindings ~tensors in
  merge_core ~ops ~cols ~rows ~use_workspace

let execute ~bindings ~leaf ~shard_vals ~rows ~col_range () =
  match leaf.Loop_ir.driver with
  | Loop_ir.Sparse_driver driver_name ->
      mul_kernel ~bindings ~leaf ~driver_name ~shard:(shard_vals driver_name)
        ~col_range
  | Loop_ir.Merge_driver tensors -> (
      match rows with
      | Some r ->
          merge_kernel ~bindings ~tensors ~rows:r
            ~use_workspace:leaf.Loop_ir.use_workspace
      | None -> Error.fail Error.Leaf "merge kernel needs a row set")
