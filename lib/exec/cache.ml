(* The execution-context cache: Legion's amortization trick for iterative
   workloads.  Dependent partitioning, piece placement and lowering are pure
   functions of (index notation, operand formats and sparsity structure,
   data-distribution notation, schedule, machine); an iterative solver runs
   the same kernel over the same partitions hundreds of times, so the
   runtime pays those analyses once and replays the cached launch plan on
   every subsequent iteration.  Entries are keyed by a structural digest of
   exactly those inputs; a node crash invalidates the entry (its placements
   name dead slots), forcing a re-partition on the next iteration. *)

open Spdistal_runtime
open Spdistal_ir
module Metrics = Spdistal_obs.Metrics
module Log = Spdistal_obs.Log

type entry = {
  e_key : string;
  e_placement : Placement.t;
  e_prog : Loop_ir.prog;
  mutable e_prepared : Interp.prepared;
      (** materialized partitions, distributed loops and (compiled backend)
          specialized leaf closures; swapped in place via {!Interp.relink}
          when a later run requests the other backend *)
  e_launches : int;
      (** per-iteration launch stride: length of the prepared loop list *)
  e_part_seconds : float;
  e_part_ops : int;
  e_part_elems : int;
  e_bytes : int;
      (** accounted footprint of the entry (see {!approx_bytes}), charged
          against the cache's byte budget *)
  mutable e_hits : int;
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  entries : int;
  bytes : int;
  bytes_peak : int;
  evictions : int;
}

(* A schedule the auto-scheduler settled on for a (machine, TIN, sparsity
   pattern) — the value side of {!winner_digest}.  Winners are tiny (a
   schedule and a TDN per operand), so they live in a side table bounded by
   the same entry cap but outside the byte budget: evicting a multi-MB
   launch plan to make room for a 100-byte schedule would be backwards. *)
type winner = {
  w_label : string;
  w_schedule : Schedule.t;
  w_tdns : (string * Tdn.t) list;
  w_total : float;  (** priced cost of the winning candidate, sim seconds *)
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* most recently used first; LRU is last *)
  cap : int;
  byte_budget : int option;
  mutable bytes : int;
  mutable bytes_peak : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
  winners : (string, winner) Hashtbl.t;
  mutable winner_order : string list;  (* MRU first, like [order] *)
}

let create ?(cap = 64) ?byte_budget () =
  (match byte_budget with
  | Some b when b <= 0 ->
      Error.fail Error.Config "cache byte budget %d must be > 0" b
  | _ -> ());
  {
    tbl = Hashtbl.create 16;
    order = [];
    cap = max cap 1;
    byte_budget;
    bytes = 0;
    bytes_peak = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
    winners = Hashtbl.create 16;
    winner_order = [];
  }

(* ------------------------------------------------------------------ *)
(* Keying                                                              *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the structural (pattern) arrays of a sparse operand.  The
   partitions an entry caches depend on the coordinate structure — not on
   the stored values, which an iterative application is free to update
   between launches (that is the whole point of warm starts). *)
let fnv_prime = 0x100000001b3L
let fnv1a h i = Int64.mul (Int64.logxor h (Int64.of_int i)) fnv_prime

let hash_ints a = Array.fold_left fnv1a 0xcbf29ce484222325L a

let hash_pairs a =
  Array.fold_left (fun h (lo, hi) -> fnv1a (fnv1a h lo) hi) 0xcbf29ce484222325L a

let data_fingerprint buf data =
  let open Spdistal_formats in
  match data with
  | Operand.Vec v -> Buffer.add_string buf (Printf.sprintf "vec:%d" v.Dense.n)
  | Operand.Mat m ->
      Buffer.add_string buf (Printf.sprintf "mat:%dx%d" m.Dense.rows m.Dense.cols)
  | Operand.Sparse t ->
      Buffer.add_string buf "sparse:";
      Array.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%d," d)) t.Tensor.dims;
      Buffer.add_char buf '/';
      Array.iter
        (fun d -> Buffer.add_string buf (Printf.sprintf "%d," d))
        t.Tensor.mode_order;
      Array.iter
        (fun l ->
          match l with
          | Level.Dense { dim } -> Buffer.add_string buf (Printf.sprintf ";D%d" dim)
          | Level.Compressed { pos; crd } ->
              Buffer.add_string buf
                (Printf.sprintf ";C%Lx:%Lx"
                   (hash_pairs pos.Region.data)
                   (hash_ints crd.Region.data))
          | Level.Singleton { crd } ->
              Buffer.add_string buf
                (Printf.sprintf ";S%Lx" (hash_ints crd.Region.data)))
        t.Tensor.levels

(* Explicit field-by-field rendering of the machine params.  Marshal's byte
   layout is not a stable canonical form (it varies with sharing, flags and
   compiler version), so digests built from it are fragile across processes;
   %h renders each float exactly (hex significand), and the record pattern
   forces this function to be revisited whenever a field is added. *)
let params_repr (p : Machine.params) =
  let {
    Machine.cpu_cores;
    cpu_mem_bw;
    cpu_flops;
    node_mem;
    gpus_per_node;
    gpu_mem_bw;
    gpu_flops;
    gpu_mem;
    nvlink_bw;
    net_bw;
    net_alpha;
    task_overhead;
    meta_per_piece;
    barrier_alpha;
    atomic_penalty_cpu;
    atomic_penalty_gpu;
    uvm_page_bw;
    legion_leaf_efficiency;
  } =
    p
  in
  Printf.sprintf
    "cores=%d;cbw=%h;cfl=%h;nmem=%h;gpn=%d;gbw=%h;gfl=%h;gmem=%h;nv=%h;net=%h;\
     alpha=%h;task=%h;meta=%h;barrier=%h;apc=%h;apg=%h;uvm=%h;lle=%h"
    cpu_cores cpu_mem_bw cpu_flops node_mem gpus_per_node gpu_mem_bw gpu_flops
    gpu_mem nvlink_bw net_bw net_alpha task_overhead meta_per_piece
    barrier_alpha atomic_penalty_cpu atomic_penalty_gpu uvm_page_bw
    legion_leaf_efficiency

(* Shared digest body.  The launch-plan digest keys on everything execution
   depends on (schedule and TDNs included); the winner digest drops exactly
   the parts the auto-scheduler chooses — schedule and per-operand TDN — so
   a cached winner is found again for the same (machine, TIN, sparsity
   pattern) whatever schedule the caller arrived with. *)
let digest_buf ?schedule ~with_tdn ~machine ~operands ~stmt () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (match machine.Machine.kind with Machine.Cpu -> "cpu[" | Machine.Gpu -> "gpu[");
  Array.iter
    (fun d -> Buffer.add_string buf (string_of_int d ^ ","))
    machine.Machine.grid;
  Buffer.add_string buf "]";
  Buffer.add_string buf (params_repr machine.Machine.params);
  Buffer.add_string buf "|tin:";
  Buffer.add_string buf (Tin.to_string stmt);
  (match schedule with
  | None -> ()
  | Some s ->
      Buffer.add_string buf "|sched:";
      Buffer.add_string buf (Schedule.to_string s));
  List.iter
    (fun (name, (slot : Operand.slot), tdn) ->
      Buffer.add_string buf "|op:";
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      data_fingerprint buf slot.Operand.data;
      if with_tdn then begin
        Buffer.add_string buf "@";
        Buffer.add_string buf (Format.asprintf "%a" (Tdn.pp ~tensor:name) tdn)
      end)
    operands;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest ~machine ~operands ~stmt ~schedule =
  digest_buf ~schedule ~with_tdn:true ~machine ~operands ~stmt ()

let winner_digest ~machine ~operands ~stmt =
  digest_buf ~with_tdn:false ~machine ~operands ~stmt ()

(* ------------------------------------------------------------------ *)
(* Cost model of a cold miss                                           *)
(* ------------------------------------------------------------------ *)

(* Each partition materialization / dependent-partitioning query is itself
   an index launch in Legion, so it pays the machine's launch overhead; the
   image/preimage/value-range scans additionally stream their region entries
   (16 B per entry: an 8 B coordinate or pos bound read plus the coloring
   write) through memory. *)
let partition_seconds machine (s : Part_eval.stats) =
  let ops = s.Part_eval.s_parts + s.Part_eval.s_dep_ops in
  (float_of_int ops *. Machine.launch_overhead machine)
  +. Machine.compute_time machine ~flops:0.
       ~bytes:(16. *. float_of_int s.Part_eval.s_dep_elems)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

(* Accounted footprint of one entry.  Not a heap measurement (entries alias
   operand tensors; [Obj.reachable_words] would double-charge shared data)
   but a deterministic estimate monotone in what the entry actually pins:
   the prepared partition environment streams ~16 B per dependently
   partitioned region element, placements and loop closures scale with the
   pieces and launches, plus a fixed overhead for the records themselves. *)
let approx_bytes ~pieces ~launches ~part_elems =
  4096 + (128 * pieces) + (96 * launches) + (16 * part_elems)

(* Move [key] to the MRU head.  [order] is a short list (bounded by [cap]),
   so the linear filter is fine. *)
let touch t key =
  t.order <- key :: List.filter (fun k -> k <> key) t.order

(* Ambient metrics.  All cache traffic happens on the driving domain (the
   serve loop or Context.run), so the counters are deterministic; the
   lookup fast path pays one enabled-check branch. *)
let note_lookup result =
  let m = Metrics.default () in
  if Metrics.enabled m then
    Metrics.inc m
      ~labels:[ ("result", result) ]
      ~help:"launch-plan cache lookups by outcome" "spdistal_cache_lookups_total"

let note_occupancy t =
  let m = Metrics.default () in
  if Metrics.enabled m then begin
    Metrics.set m ~help:"accounted bytes resident in the launch-plan cache"
      "spdistal_cache_bytes" (float_of_int t.bytes);
    Metrics.set m "spdistal_cache_entries"
      (float_of_int (Hashtbl.length t.tbl))
  end

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.hits <- t.hits + 1;
      e.e_hits <- e.e_hits + 1;
      note_lookup "hit";
      (* A hit is a use: refresh recency so eviction is true LRU, not
         insertion-order FIFO. *)
      touch t key;
      Some e
  | None ->
      t.misses <- t.misses + 1;
      note_lookup "miss";
      None

let remove_key t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.tbl key;
      t.bytes <- t.bytes - e.e_bytes;
      t.order <- List.filter (fun k -> k <> key) t.order

let over_budget t =
  match t.byte_budget with Some b -> t.bytes > b | None -> false

(* Evict from the LRU tail until both the entry cap and the byte budget
   hold.  The loop may evict the entry just inserted (an entry bigger than
   the whole budget is never cached — the budget is a hard bound, not a
   target). *)
let rec evict_to_fit t =
  if Hashtbl.length t.tbl > t.cap || over_budget t then
    match List.rev t.order with
    | lru :: _ ->
        let freed =
          match Hashtbl.find_opt t.tbl lru with
          | Some e -> e.e_bytes
          | None -> 0
        in
        remove_key t lru;
        t.evictions <- t.evictions + 1;
        let m = Metrics.default () in
        if Metrics.enabled m then
          Metrics.inc m ~help:"entries evicted to satisfy cap or byte budget"
            "spdistal_cache_evictions_total";
        let lg = Log.default () in
        if Log.enabled lg then
          Log.event lg ~level:Log.Debug
            ~fields:
              [
                ("key", Spdistal_obs.Trace.S lru);
                ("bytes", Spdistal_obs.Trace.I freed);
              ]
            "cache_evicted";
        evict_to_fit t
    | [] -> ()

let add t entry =
  if not (Hashtbl.mem t.tbl entry.e_key) then begin
    Hashtbl.replace t.tbl entry.e_key entry;
    t.bytes <- t.bytes + entry.e_bytes;
    t.order <- entry.e_key :: t.order;
    evict_to_fit t;
    (* The peak is sampled after eviction: it tracks the cache's resting
       footprint, which never exceeds the budget. *)
    t.bytes_peak <- max t.bytes_peak t.bytes;
    note_occupancy t
  end

(* ------------------------------------------------------------------ *)
(* Auto-scheduler winners                                              *)
(* ------------------------------------------------------------------ *)

let find_winner t key =
  match Hashtbl.find_opt t.winners key with
  | Some w ->
      t.winner_order <- key :: List.filter (fun k -> k <> key) t.winner_order;
      Some w
  | None -> None

let remember_winner t key w =
  if not (Hashtbl.mem t.winners key) then begin
    Hashtbl.replace t.winners key w;
    t.winner_order <- key :: t.winner_order;
    while Hashtbl.length t.winners > t.cap do
      match List.rev t.winner_order with
      | lru :: _ ->
          Hashtbl.remove t.winners lru;
          t.winner_order <- List.filter (fun k -> k <> lru) t.winner_order
      | [] -> ()
    done
  end

(* A crash killed nodes whose slots the cached placements name: check every
   piece they hosted still has a surviving slot (raises [Error.Recovery]
   otherwise, exactly like the in-flight launch would), then drop the entry
   so the next iteration re-runs dependent partitioning against the
   shrunken machine — Legion re-derives partitions after a node is lost. *)
let invalidate t ~machine ~crashed key =
  (match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some _ ->
      List.iter
        (fun node ->
          List.iter
            (fun piece -> ignore (Placement.remap_piece ~machine ~crashed piece))
            (Machine.pieces_on_node machine node))
        crashed;
      remove_key t key);
  t.invalidations <- t.invalidations + 1;
  let m = Metrics.default () in
  if Metrics.enabled m then begin
    Metrics.inc m ~help:"entries dropped after node crashes"
      "spdistal_cache_invalidations_total";
    note_occupancy t
  end

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.tbl;
    bytes = t.bytes;
    bytes_peak = t.bytes_peak;
    evictions = t.evictions;
  }
