open Spdistal_runtime
open Spdistal_ir

type residency =
  | Replicated_everywhere
  | Vals_partitioned of Partition.t
  | Dim_partitioned of { dim : int; part : Partition.t }
  | Not_resident

type t = (string * residency) list

let find t name =
  match List.assoc_opt name t with Some r -> r | None -> Not_resident

let of_tdn ?stats ~machine ~bindings name tdn =
  match ((Operand.find bindings name).Operand.data, tdn) with
  | _, Tdn.Replicated -> Replicated_everywhere
  | Operand.Vec _, Tdn.Blocked _ ->
      let v = Operand.find_vec bindings name in
      Dim_partitioned
        {
          dim = 0;
          part = Partition.equal_blocks (Iset.range v.Spdistal_formats.Dense.n) (Machine.pieces machine);
        }
  | Operand.Mat _, Tdn.Blocked { tensor_dim; _ } ->
      let m = Operand.find_mat bindings name in
      let n =
        if tensor_dim = 0 then m.Spdistal_formats.Dense.rows
        else m.Spdistal_formats.Dense.cols
      in
      Dim_partitioned
        {
          dim = tensor_dim;
          part = Partition.equal_blocks (Iset.range n) (Machine.pieces machine);
        }
  | Operand.Mat _, Tdn.Tiled { mappings = (tensor_dim, machine_dim) :: _ } ->
      let m = Operand.find_mat bindings name in
      let n =
        if tensor_dim = 0 then m.Spdistal_formats.Dense.rows
        else m.Spdistal_formats.Dense.cols
      in
      (* Blocked by the named machine grid dimension; the partition carries
         that axis so the interpreter can map a piece id to its color even
         when grid dimensions have equal sizes. *)
      let count, axis =
        if Array.length machine.Machine.grid > machine_dim then
          (machine.Machine.grid.(machine_dim), Partition.Grid_dim machine_dim)
        else (Machine.pieces machine, Partition.Flat)
      in
      Dim_partitioned
        { dim = tensor_dim; part = Partition.equal_blocks ~axis (Iset.range n) count }
  | Operand.Sparse tensor, _ ->
      (* Lower the TDN's partitioning program (§V-C) and execute it; the
         tensor's vals partition is its residency. *)
      let env_l = Operand.env_of_bindings bindings in
      let prog =
        Lower.placement_of_tdn ~env:env_l ~grid:machine.Machine.grid ~tensor:name
          ~order:(Spdistal_formats.Tensor.order tensor)
          tdn
      in
      let penv = Part_eval.create bindings in
      ignore (Part_eval.eval_partitions penv prog);
      Option.iter (fun s -> Part_eval.accum_stats s penv) stats;
      Vals_partitioned (Part_eval.find_partition penv (name ^ "ValsPart"))
  | (Operand.Vec _ | Operand.Mat _), _ ->
      Error.fail ~kernel:name Error.Placement "unsupported dense distribution"

(* Remap a piece whose node crashed onto a surviving grid slot:
   deterministic round-robin over the pieces of surviving nodes, mirroring a
   Legion mapper re-mapping a task whose target processor died.  Slots are
   homogeneous and the replacement re-fetches its inputs over the network
   either way, so the target's identity matters for liveness (no survivors
   means the cluster is gone), not for the cost model. *)
let remap_piece ~machine ~crashed piece =
  if crashed = [] then piece
  else
    let survivors =
      List.filter
        (fun p -> not (List.mem (Machine.node_of_piece machine p) crashed))
        (List.init (Machine.pieces machine) Fun.id)
    in
    match survivors with
    | [] ->
        Error.fail ~piece Error.Recovery
          "all %d nodes crashed; no surviving slot to remap onto"
          (Machine.nodes machine)
    | _ -> List.nth survivors (piece mod List.length survivors)

let resident_set t ~tensor ~comm_dim ~piece_subset =
  match find t tensor with
  | Replicated_everywhere -> `All
  | Not_resident -> `Nothing
  | Vals_partitioned part ->
      if comm_dim = -1 then `Set (piece_subset part) else `Nothing
  | Dim_partitioned { dim; part } ->
      if dim = comm_dim then `Set (piece_subset part) else `Nothing
