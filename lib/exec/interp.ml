open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir

let last : Part_eval.env option ref = ref None
let last_env () = !last

(* Map a piece id to the color of a partition that may have been built for a
   single dimension of the machine grid (2-D batched schedules partition rows
   by the grid's first dimension and columns by the second).  Pieces are laid
   out row-major over the grid, so a [Grid_dim d] partition's color is the
   piece's coordinate along dimension [d]. *)
let color_for ~grid ~pieces part piece =
  let colors = Partition.colors part in
  match Partition.axis part with
  | Partition.Flat ->
      if colors = pieces then piece
      else
        Error.fail ~piece Error.Launch "flat partition with %d colors on %d pieces"
          colors pieces
  | Partition.Grid_dim d ->
      let nd = Array.length grid in
      if d < 0 || d >= nd then
        Error.fail ~piece Error.Launch "partition axis %d on a %d-d grid" d nd;
      if colors <> grid.(d) then
        Error.fail ~piece Error.Launch
          "axis-%d partition with %d colors but grid dim has %d" d colors
          grid.(d);
      let stride = ref 1 in
      for k = d + 1 to nd - 1 do
        stride := !stride * grid.(k)
      done;
      piece / !stride mod grid.(d)

let stitch_merge ~bindings ~out_name ~nrows ~ncols partials =
  (* Per-piece row blocks are disjoint and ordered; concatenate them. *)
  let pos = Array.make nrows (0, -1) in
  let total =
    List.fold_left
      (fun acc (p : Leaf.merge_partial) ->
        acc + Array.fold_left ( + ) 0 p.Leaf.mcounts)
      0 partials
  in
  let crd = Array.make (max total 1) 0 in
  let vals = Array.make (max total 1) 0. in
  let cursor = ref 0 in
  List.iter
    (fun (p : Leaf.merge_partial) ->
      let k = ref 0 in
      Array.iteri
        (fun i r ->
          let c = p.Leaf.mcounts.(i) in
          pos.(r) <- (!cursor, !cursor + c - 1);
          for _ = 1 to c do
            crd.(!cursor) <- p.Leaf.mcrd.(!k);
            vals.(!cursor) <- p.Leaf.mvals.(!k);
            incr cursor;
            incr k
          done)
        p.Leaf.mrows)
    partials;
  (* Normalize empty rows into monotone empty ranges. *)
  let cur = ref 0 in
  for r = 0 to nrows - 1 do
    let lo, hi = pos.(r) in
    if hi < lo then pos.(r) <- (!cur, !cur - 1) else cur := hi + 1
  done;
  let t =
    {
      Tensor.name = out_name;
      dims = [| nrows; ncols |];
      mode_order = [| 0; 1 |];
      levels =
        [|
          Level.Dense { dim = nrows };
          Level.Compressed
            {
              pos = Region.of_array (out_name ^ ".pos") pos;
              crd = Region.of_array (out_name ^ ".crd") crd;
            };
        |];
      vals = Region.F.of_array (out_name ^ ".vals") vals;
    }
  in
  (Operand.find bindings out_name).Operand.data <- Operand.Sparse t

(* What simulating one piece of a distributed launch produces.  Pure data:
   worker domains build these records; all mutation of shared simulation
   state (Cost, Memstate, message totals) happens on the reducing domain, in
   piece order, so results are bit-identical to a sequential run (float
   accumulation order is preserved exactly). *)
type piece_sim = {
  ps_comm_time : float;  (** data movement into the piece, before paging *)
  ps_footprint : float;  (** bytes the piece must hold resident *)
  ps_msg_bytes : float list;  (** per-message byte counts, in issue order *)
  ps_edges : (int * float) list;
      (** (source node, bytes) attribution of the piece's transfers, in
          issue order; only populated when tracing *)
  ps_leaf : Leaf.result option;
      (** [None] when the leaf writes overlap across pieces ([out_reduce])
          and execution was deferred to the reducing domain *)
}

module Trace = Spdistal_obs.Trace
module Metrics = Spdistal_obs.Metrics

(* Ambient fault counters, bumped on the reducing domain in piece order (the
   same place recovery is priced) so the series is deterministic at every
   --domains degree. *)
let note_fault_metrics r =
  let m = Metrics.default () in
  if Metrics.enabled m then begin
    let kind k n =
      if n > 0 then
        Metrics.inc m
          ~labels:[ ("kind", k) ]
          ~by:(float_of_int n)
          ~help:"injected fault events by kind" "spdistal_fault_events_total"
    in
    kind "crash" r.Fault.crashes;
    kind "loss" r.Fault.losses;
    kind "straggler" r.Fault.stragglers;
    if r.Fault.retries > 0 then
      Metrics.inc m
        ~by:(float_of_int r.Fault.retries)
        ~help:"piece re-executions forced by injected faults"
        "spdistal_fault_retries_total"
  end

(* A prepared program: materialized partitions, the distributed loops, and —
   under the compiled backend — one monomorphized closure per loop, aligned
   with [pp_loops]. *)
type prepared = {
  pp_penv : Part_eval.env;
  pp_loops : Loop_ir.stmt list;
  pp_leaves : Compile_leaf.t option list;
  pp_backend : Compile_leaf.backend;
}

(* Materialize a program's partitions (and, under the compiled backend,
   specialize its leaf loops) ahead of execution.  [run] does this itself
   when no [?prepared] value is passed; the execution context calls it once
   on a cold cache miss and replays the result on every warm iteration, so
   warm iterations skip specialization too. *)
let leaves_for ~trace ~bindings ~backend loops =
  match backend with
  | Compile_leaf.Interp -> List.map (fun _ -> None) loops
  | Compile_leaf.Compiled ->
      Trace.with_wall_span trace
        ~track:(Trace.Host (Domain.self () :> int))
        ~cat:"phase" ~name:"compile_leaves"
        (fun () ->
          List.map
            (function
              | Loop_ir.Distributed_for { leaf; _ } ->
                  Some (Compile_leaf.compile ~bindings leaf)
              | _ -> None)
            loops)

let prepare ?(trace = Trace.null) ?backend ~bindings prog =
  let backend =
    match backend with Some b -> b | None -> Compile_leaf.default_backend ()
  in
  let penv = Part_eval.create ~trace bindings in
  let loops =
    Trace.with_wall_span trace
      ~track:(Trace.Host (Domain.self () :> int))
      ~cat:"phase" ~name:"part_eval"
      (fun () -> Part_eval.eval_partitions penv prog)
  in
  let leaves = leaves_for ~trace ~bindings ~backend loops in
  { pp_penv = penv; pp_loops = loops; pp_leaves = leaves; pp_backend = backend }

(* Swap a prepared program to the other leaf backend, reusing its
   materialized partitions (the expensive part).  The execution context uses
   this when a cached entry was prepared under one backend and a later run
   asks for the other. *)
let relink ?(trace = Trace.null) ~bindings ~backend (p : prepared) =
  if p.pp_backend = backend then p
  else
    {
      p with
      pp_leaves = leaves_for ~trace ~bindings ~backend p.pp_loops;
      pp_backend = backend;
    }

let stmt_ctor = function
  | Loop_ir.Comment _ -> "comment"
  | Loop_ir.Init_coloring _ -> "init_coloring"
  | Loop_ir.For_colors _ -> "for_colors"
  | Loop_ir.Coloring_entry _ -> "coloring_entry"
  | Loop_ir.Def_partition _ -> "def_partition"
  | Loop_ir.Distributed_for _ -> "distributed_for"

let run ~machine ~bindings ~placement ?memstate ~cost ?domains ?faults ?trace
    ?backend ?prepared ?(launch_base = 0) prog =
  let pieces = Loop_ir.pieces prog in
  if pieces <> Machine.pieces machine then
    Error.fail Error.Config "program lowered for a different machine size";
  let domains =
    match domains with Some d -> d | None -> Machine.sim_domains ()
  in
  let fcfg =
    let c = match faults with Some c -> c | None -> Fault.default () in
    if Fault.enabled c then Some c else None
  in
  (* Launch index within this run: a coordinate of the fault schedule, so a
     fault in launch 2 stays in launch 2 whatever the domain degree.
     Warm-start iteration [i] of an iterative run passes [launch_base] =
     [i * launches-per-iteration], so both the cached and the uncached
     execution of the same iteration see identical fault coordinates. *)
  let launch_ix = ref (launch_base - 1) in
  let trace = match trace with Some t -> t | None -> Trace.default () in
  let pool = Pool.get (Pool.effective_workers domains) in
  let grid = prog.Loop_ir.grid in
  let prep =
    match prepared with
    | Some p -> p
    | None -> prepare ~trace ?backend ~bindings prog
  in
  let penv = prep.pp_penv and loops = prep.pp_loops in
  last := Some penv;
  let part name = Part_eval.find_partition penv name in
  let subset_for p piece =
    Partition.subset p (color_for ~grid ~pieces p piece)
  in
  let data name = (Operand.find bindings name).Operand.data in
  let intra = Machine.nodes machine = 1 in
  (* Source attribution of a fetch, for the trace's comm matrix: walk owner
     pieces in ascending order, hand each the overlap of its resident subset
     with what is still missing; whatever nobody holds is charged to node 0
     (the home of undistributed data).  Deterministic, and row sums equal
     the fetched byte volume by construction. *)
  let edge_srcs ~tensor ~comm_dim ~elt missing =
    let left = ref missing and acc = ref [] in
    (try
       for o = 0 to pieces - 1 do
         if Iset.is_empty !left then raise Exit;
         match
           Placement.resident_set placement ~tensor ~comm_dim
             ~piece_subset:(fun p -> subset_for p o)
         with
         | `Nothing -> ()
         | `All ->
             acc :=
               ( Machine.node_of_piece machine o,
                 float_of_int (Iset.cardinal !left) *. elt )
               :: !acc;
             left := Iset.empty
         | `Set r ->
             let take = Iset.inter !left r in
             if not (Iset.is_empty take) then begin
               left := Iset.diff !left take;
               acc :=
                 ( Machine.node_of_piece machine o,
                   float_of_int (Iset.cardinal take) *. elt )
                 :: !acc
             end
       done
     with Exit -> ());
    if not (Iset.is_empty !left) then
      acc := (0, float_of_int (Iset.cardinal !left) *. elt) :: !acc;
    List.rev !acc
  in
  List.iter2
    (fun stmt compiled ->
      match stmt with
      | Loop_ir.Distributed_for { shard_parts; comms; out_comm; leaf; _ } ->
          incr launch_ix;
          let launch = !launch_ix in
          (* Nodes whose first attempt crashes during this launch: every
             piece they host pays crash recovery, and each must have a
             surviving slot to be remapped onto. *)
          let crashed =
            match fcfg with
            | None -> []
            | Some cfg -> Fault.crashed_nodes cfg ~machine ~launch
          in
          let kernel = leaf.Loop_ir.leaf_stmt.Tin.lhs.Tin.tensor in
          (* Leaf execution for one piece.  Runs on a worker domain when the
             launch's output writes are disjoint across pieces; launches that
             reduce into overlapping locations ([out_reduce]) run on the
             reducing domain instead, in piece order. *)
          let exec_leaf c =
            let shard_vals tname =
              match List.assoc_opt tname shard_parts with
              | Some pname -> subset_for (part pname) c
              | None ->
                  Error.fail ~kernel ~piece:c Error.Leaf "no shard for %s"
                    tname
            in
            let rows =
              Option.map
                (fun pname -> subset_for (part pname) c)
                leaf.Loop_ir.leaf_row_part
            in
            let col_range =
              if leaf.Loop_ir.col_split > 1 then begin
                let py = grid.(1) in
                let cy = c mod py in
                (* Column extent from the output's last dimension. *)
                let out_acc = leaf.Loop_ir.leaf_stmt.Tin.lhs in
                let od = data out_acc.Tin.tensor in
                let e = Operand.dim od (Operand.order od - 1) in
                Some ((cy * e / py, ((cy + 1) * e / py) - 1))
              end
              else None
            in
            match compiled with
            | Some cl -> Compile_leaf.execute cl ~shard_vals ~rows ~col_range ()
            | None -> Leaf.execute ~bindings ~leaf ~shard_vals ~rows ~col_range ()
          in
          (* Materialize the driver's coordinate expansion on this domain so
             worker domains only read the memoized entry.  Compiled leaves
             walk the level storage directly and need no expansion. *)
          (match (leaf.Loop_ir.driver, compiled) with
          | Loop_ir.Sparse_driver d, None ->
              Leaf.prewarm (Operand.find_sparse bindings d)
          | _ -> ());
          (* --- simulate pieces (parallel when a pool is configured) --- *)
          let simulate c =
            let comm_time = ref 0. in
            let footprint = ref 0. in
            let msgs = ref [] in
            let edges = ref [] in
            List.iter
              (fun (cm : Loop_ir.comm) ->
                let d = data cm.Loop_ir.comm_tensor in
                let elt =
                  Operand.slice_bytes d (max cm.Loop_ir.comm_dim 0)
                  /. float_of_int cm.Loop_ir.divide_by
                in
                let full_count =
                  match (d, cm.Loop_ir.comm_dim) with
                  | Operand.Sparse t, -1 -> Tensor.nnz t
                  | _, dim -> Operand.dim d (max dim 0)
                in
                match cm.Loop_ir.comm_part with
                | None -> (
                    (* Whole operand needed: a broadcast, unless already
                       replicated by the data distribution. *)
                    let bytes = float_of_int full_count *. elt in
                    footprint := !footprint +. bytes;
                    match
                      Placement.resident_set placement
                        ~tensor:cm.Loop_ir.comm_tensor
                        ~comm_dim:cm.Loop_ir.comm_dim
                        ~piece_subset:(fun p -> subset_for p c)
                    with
                    | `All -> ()
                    | `Set _ | `Nothing ->
                        comm_time :=
                          !comm_time +. Machine.bcast_time machine ~bytes;
                        msgs := bytes :: !msgs;
                        if Trace.enabled trace then
                          edges := (0, bytes) :: !edges)
                | Some pname ->
                    let needed = subset_for (part pname) c in
                    let needed_bytes =
                      float_of_int (Iset.cardinal needed) *. elt
                    in
                    footprint := !footprint +. needed_bytes;
                    let missing =
                      match
                        Placement.resident_set placement
                          ~tensor:cm.Loop_ir.comm_tensor
                          ~comm_dim:cm.Loop_ir.comm_dim
                          ~piece_subset:(fun p -> subset_for p c)
                      with
                      | `All -> Iset.empty
                      | `Nothing -> needed
                      | `Set r -> Iset.diff needed r
                    in
                    let bytes = float_of_int (Iset.cardinal missing) *. elt in
                    if bytes > 0. then begin
                      comm_time :=
                        !comm_time
                        +. Machine.p2p_time machine ~intra_node:intra ~bytes;
                      msgs := bytes :: !msgs;
                      if Trace.enabled trace then
                        edges :=
                          List.rev_append
                            (edge_srcs ~tensor:cm.Loop_ir.comm_tensor
                               ~comm_dim:cm.Loop_ir.comm_dim ~elt missing)
                            !edges
                    end)
              comms;
            let ps_leaf =
              if leaf.Loop_ir.out_reduce then None else Some (exec_leaf c)
            in
            {
              ps_comm_time = !comm_time;
              ps_footprint = !footprint;
              ps_msg_bytes = List.rev !msgs;
              ps_edges = List.rev !edges;
              ps_leaf;
            }
          in
          let sims =
            if Trace.enabled trace then begin
              (* Profiled map: same results, plus which domain simulated each
                 piece and when (host clock, for the occupancy tracks). *)
              let prof = Pool.map_prof pool simulate pieces in
              Array.iteri
                (fun c ((_ : piece_sim), pj) ->
                  Trace.span trace
                    ~track:(Trace.Host pj.Pool.pj_domain)
                    ~clock:Trace.Wall ~cat:"pool"
                    ~args:[ ("launch", Trace.I launch); ("piece", Trace.I c) ]
                    ~start:(pj.Pool.pj_start -. Trace.epoch trace)
                    ~dur:(pj.Pool.pj_stop -. pj.Pool.pj_start)
                    "simulate")
                prof;
              Array.map fst prof
            end
            else Pool.map pool simulate pieces
          in
          let t0 = Cost.total cost in
          (* --- reduce piece results, in piece order --- *)
          let comm_times = Array.make pieces 0. in
          let leaf_times = Array.make pieces 0. in
          let partials = ref [] in
          let total_bytes = ref 0. and total_msgs = ref 0 in
          Array.iteri
            (fun c ps ->
              List.iter
                (fun bytes ->
                  total_bytes := !total_bytes +. bytes;
                  incr total_msgs)
                ps.ps_msg_bytes;
              let comm_time = ref ps.ps_comm_time in
              (* --- capacity check (OOM / UVM paging) --- *)
              (match memstate with
              | None -> ()
              | Some ms -> (
                  match
                    Memstate.ensure ms ~piece:c
                      ~key:(Printf.sprintf "launch:%d" c)
                      ~bytes:ps.ps_footprint
                  with
                  | Memstate.Hit | Memstate.Miss _ -> ()
                  | Memstate.Paged overflow ->
                      (* Page the overflow in and out once per iteration. *)
                      let pt =
                        2. *. overflow /. machine.Machine.params.uvm_page_bw
                      in
                      comm_time := !comm_time +. pt;
                      Trace.span trace
                        ~track:
                          (Trace.Piece
                             { node = Machine.node_of_piece machine c; piece = c })
                        ~clock:Trace.Sim ~cat:"comm"
                        ~args:
                          [
                            ("launch", Trace.I launch);
                            ("overflow_bytes", Trace.F overflow);
                          ]
                        ~start:(t0 +. ps.ps_comm_time) ~dur:pt "uvm_page"));
              let res =
                match ps.ps_leaf with Some r -> r | None -> exec_leaf c
              in
              (match res.Leaf.partial with
              | Some p -> partials := p :: !partials
              | None -> ());
              Cost.add_flops cost res.Leaf.work.Task.flops;
              let lt = Task.leaf_time machine res.Leaf.work in
              let lt =
                if machine.Machine.kind = Machine.Cpu then
                  if not leaf.Loop_ir.parallel then
                    lt *. float_of_int machine.Machine.params.cpu_cores
                  else lt /. machine.Machine.params.legion_leaf_efficiency
                else lt
              in
              (* --- fault injection & Legion-style recovery ---
                 The leaf above committed exactly once; injected faults are
                 priced as the wasted attempts and re-executions that the
                 real runtime would deterministically replay from region
                 arguments, so only times/traffic change, never tensors.
                 Evaluated here, on the reducing domain in piece order, so
                 the schedule and its costs are identical at every
                 --domains degree. *)
              (match fcfg with
              | None ->
                  comm_times.(c) <- !comm_time;
                  leaf_times.(c) <- lt
              | Some cfg ->
                  (* A piece on a crashed node must have a surviving slot
                     (raises [Error.Recovery] when the whole cluster is
                     gone). *)
                  if List.mem (Machine.node_of_piece machine c) crashed then
                    ignore (Placement.remap_piece ~machine ~crashed c);
                  let r =
                    Fault.recover_piece cfg ~machine ~launch ~piece:c
                      ~msg_bytes:ps.ps_msg_bytes ~footprint:ps.ps_footprint
                      ~comm_time:!comm_time ~leaf_time:lt
                  in
                  Cost.add_recovery cost ~retries:r.Fault.retries
                    ~faults:(Fault.events r) ~bytes:r.Fault.resent_bytes
                    ~messages:r.Fault.resent_msgs
                    (r.Fault.extra_comm +. r.Fault.extra_leaf);
                  comm_times.(c) <- !comm_time +. r.Fault.extra_comm;
                  leaf_times.(c) <- lt +. r.Fault.extra_leaf;
                  note_fault_metrics r;
                  if Trace.enabled trace && Fault.events r > 0 then
                    Trace.span trace
                      ~track:
                        (Trace.Piece
                           { node = Machine.node_of_piece machine c; piece = c })
                      ~clock:Trace.Sim ~cat:"fault"
                      ~args:(Fault.trace_args r)
                      ~start:(t0 +. comm_times.(c) +. leaf_times.(c))
                      ~dur:0. "recovery");
              if Trace.enabled trace then begin
                let node = Machine.node_of_piece machine c in
                List.iter
                  (fun (src, b) -> Trace.comm_edge trace ~src ~dst:node b)
                  ps.ps_edges;
                let track = Trace.Piece { node; piece = c } in
                Trace.span trace ~track ~clock:Trace.Sim ~cat:"comm"
                  ~args:[ ("launch", Trace.I launch) ]
                  ~start:t0 ~dur:comm_times.(c) "fetch";
                Trace.span trace ~track ~clock:Trace.Sim ~cat:"compute"
                  ~args:[ ("launch", Trace.I launch) ]
                  ~start:(t0 +. comm_times.(c))
                  ~dur:leaf_times.(c) kernel
              end)
            sims;
          let partials = List.rev !partials in
          Cost.add_comm cost ~bytes:!total_bytes ~messages:!total_msgs 0.;
          Cost.record_launch_split cost ~machine ~comm_times ~leaf_times;
          if Trace.enabled trace then begin
            let crit = ref 0 and best = ref neg_infinity in
            Array.iteri
              (fun i ct ->
                let t = ct +. leaf_times.(i) in
                if t > !best then begin
                  best := t;
                  crit := i
                end)
              comm_times;
            (* The launch span is the [Cost.total] delta, so the sum of
               launch (+ reduce) span durations reconstructs the clock
               exactly. *)
            Trace.span trace ~track:Trace.Runtime ~clock:Trace.Sim
              ~cat:"launch"
              ~args:
                [
                  ("launch", Trace.I launch);
                  ("pieces", Trace.I pieces);
                  ("crit_piece", Trace.I !crit);
                  ("crit_comm", Trace.F comm_times.(!crit));
                  ("crit_compute", Trace.F leaf_times.(!crit));
                  ("overhead", Trace.F (Machine.launch_overhead machine));
                  ("bytes", Trace.F !total_bytes);
                  ("messages", Trace.I !total_msgs);
                ]
              ~start:t0
              ~dur:(Cost.total cost -. t0)
              kernel;
            (* Live pool pressure on its own counter track: pieces in
               flight jump at launch start and drain at launch end (both
               sim-clock, so the sawtooth is deterministic). *)
            Trace.counter trace ~name:"pool_occupancy" ~time:t0
              [ ("pieces", float_of_int pieces) ];
            Trace.counter trace ~name:"pool_occupancy" ~time:(Cost.total cost)
              [ ("pieces", 0.) ]
          end;
          (* --- output reduction for aliased ownership --- *)
          (match out_comm with
          | None -> ()
          | Some cm ->
              let total, union =
                match cm.Loop_ir.comm_part with
                | Some pname ->
                    let p = part pname in
                    ( Array.fold_left
                        (fun acc s -> acc + Iset.cardinal s)
                        0 p.Partition.subsets,
                      Iset.cardinal (Partition.union_of_colors p) )
                | None ->
                    (* Every piece holds a full partial output (distributed
                       reduction loop): overlap = (pieces-1) copies. *)
                    let n =
                      Operand.dim (data cm.Loop_ir.comm_tensor)
                        (max cm.Loop_ir.comm_dim 0)
                    in
                    (pieces * n, n)
              in
              let overlap = max 0 (total - union) in
              if overlap > 0 then begin
                let d = data cm.Loop_ir.comm_tensor in
                let elt =
                  Operand.slice_bytes d (max cm.Loop_ir.comm_dim 0)
                  /. float_of_int cm.Loop_ir.divide_by
                in
                let bytes =
                  float_of_int overlap *. elt /. float_of_int pieces
                in
                let r0 = Cost.total cost in
                Cost.add_comm cost
                  ~bytes:(float_of_int overlap *. elt)
                  ~messages:pieces
                  (Machine.reduce_time machine ~bytes);
                if Trace.enabled trace then begin
                  (* Each piece ships its overlapping share home to the
                     output's owner on node 0. *)
                  for c = 0 to pieces - 1 do
                    Trace.comm_edge trace
                      ~src:(Machine.node_of_piece machine c)
                      ~dst:0 bytes
                  done;
                  Trace.span trace ~track:Trace.Runtime ~clock:Trace.Sim
                    ~cat:"launch"
                    ~args:
                      [
                        ("launch", Trace.I launch);
                        ("bytes", Trace.F (float_of_int overlap *. elt));
                        ("messages", Trace.I pieces);
                      ]
                    ~start:r0
                    ~dur:(Cost.total cost -. r0)
                    (kernel ^ ":reduce")
                end
              end);
          if Trace.enabled trace then
            Trace.counter trace ~name:"cost" ~time:(Cost.total cost)
              (Cost.counters cost);
          (* --- stitch unknown-pattern outputs --- *)
          if partials <> [] then begin
            let out_acc = leaf.Loop_ir.leaf_stmt.Tin.lhs in
            let first_in =
              match leaf.Loop_ir.driver with
              | Loop_ir.Merge_driver (t :: _) -> t
              | _ -> Error.fail ~kernel Error.Reduce "partials from a non-merge leaf"
            in
            let src = Operand.find_sparse bindings first_in in
            stitch_merge ~bindings ~out_name:out_acc.Tin.tensor
              ~nrows:src.Tensor.dims.(0) ~ncols:src.Tensor.dims.(1) partials
          end
      | other ->
          (* [Part_eval.eval_partitions] returns only the executable
             distributed loops; anything else here is a lowering bug worth a
             precise report rather than a crash. *)
          let kernel =
            List.find_map
              (function
                | Loop_ir.Distributed_for { leaf; _ } ->
                    Some leaf.Loop_ir.leaf_stmt.Tin.lhs.Tin.tensor
                | _ -> None)
              loops
          in
          Error.fail ?kernel Error.Launch
            "unexpected %s construct in the prepared launch list (only \
             distributed_for loops are executable)"
            (stmt_ctor other))
    loops prep.pp_leaves
