open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir

let last : Part_eval.env option ref = ref None
let last_env () = !last

(* Map a piece id to the color of a partition that may have been built for a
   single dimension of the machine grid (2-D batched schedules partition rows
   by the grid's first dimension and columns by the second).  Pieces are laid
   out row-major over the grid, so a [Grid_dim d] partition's color is the
   piece's coordinate along dimension [d]. *)
let color_for ~grid ~pieces part piece =
  let colors = Partition.colors part in
  match Partition.axis part with
  | Partition.Flat ->
      if colors = pieces then piece
      else
        Error.fail ~piece Error.Launch "flat partition with %d colors on %d pieces"
          colors pieces
  | Partition.Grid_dim d ->
      let nd = Array.length grid in
      if d < 0 || d >= nd then
        Error.fail ~piece Error.Launch "partition axis %d on a %d-d grid" d nd;
      if colors <> grid.(d) then
        Error.fail ~piece Error.Launch
          "axis-%d partition with %d colors but grid dim has %d" d colors
          grid.(d);
      let stride = ref 1 in
      for k = d + 1 to nd - 1 do
        stride := !stride * grid.(k)
      done;
      piece / !stride mod grid.(d)

let stitch_merge ~bindings ~out_name ~nrows ~ncols partials =
  (* Per-piece row blocks are disjoint and ordered; concatenate them. *)
  let pos = Array.make nrows (0, -1) in
  let total =
    List.fold_left
      (fun acc (p : Leaf.merge_partial) ->
        acc + Array.fold_left ( + ) 0 p.Leaf.mcounts)
      0 partials
  in
  let crd = Array.make (max total 1) 0 in
  let vals = Array.make (max total 1) 0. in
  let cursor = ref 0 in
  List.iter
    (fun (p : Leaf.merge_partial) ->
      let k = ref 0 in
      Array.iteri
        (fun i r ->
          let c = p.Leaf.mcounts.(i) in
          pos.(r) <- (!cursor, !cursor + c - 1);
          for _ = 1 to c do
            crd.(!cursor) <- p.Leaf.mcrd.(!k);
            vals.(!cursor) <- p.Leaf.mvals.(!k);
            incr cursor;
            incr k
          done)
        p.Leaf.mrows)
    partials;
  (* Normalize empty rows into monotone empty ranges. *)
  let cur = ref 0 in
  for r = 0 to nrows - 1 do
    let lo, hi = pos.(r) in
    if hi < lo then pos.(r) <- (!cur, !cur - 1) else cur := hi + 1
  done;
  let t =
    {
      Tensor.name = out_name;
      dims = [| nrows; ncols |];
      mode_order = [| 0; 1 |];
      levels =
        [|
          Level.Dense { dim = nrows };
          Level.Compressed
            {
              pos = Region.of_array (out_name ^ ".pos") pos;
              crd = Region.of_array (out_name ^ ".crd") crd;
            };
        |];
      vals = Region.of_array (out_name ^ ".vals") vals;
    }
  in
  (Operand.find bindings out_name).Operand.data <- Operand.Sparse t

(* What simulating one piece of a distributed launch produces.  Pure data:
   worker domains build these records; all mutation of shared simulation
   state (Cost, Memstate, message totals) happens on the reducing domain, in
   piece order, so results are bit-identical to a sequential run (float
   accumulation order is preserved exactly). *)
type piece_sim = {
  ps_comm_time : float;  (** data movement into the piece, before paging *)
  ps_footprint : float;  (** bytes the piece must hold resident *)
  ps_msg_bytes : float list;  (** per-message byte counts, in issue order *)
  ps_leaf : Leaf.result option;
      (** [None] when the leaf writes overlap across pieces ([out_reduce])
          and execution was deferred to the reducing domain *)
}

let run ~machine ~bindings ~placement ?memstate ~cost ?domains ?faults prog =
  let pieces = Loop_ir.pieces prog in
  if pieces <> Machine.pieces machine then
    Error.fail Error.Config "program lowered for a different machine size";
  let domains =
    match domains with Some d -> d | None -> Machine.sim_domains ()
  in
  let fcfg =
    let c = match faults with Some c -> c | None -> Fault.default () in
    if Fault.enabled c then Some c else None
  in
  (* Launch index within this run: a coordinate of the fault schedule, so a
     fault in launch 2 stays in launch 2 whatever the domain degree. *)
  let launch_ix = ref (-1) in
  let pool = Pool.get (Pool.effective_workers domains) in
  let grid = prog.Loop_ir.grid in
  let penv = Part_eval.create bindings in
  let loops = Part_eval.eval_partitions penv prog in
  last := Some penv;
  let part name = Part_eval.find_partition penv name in
  let subset_for p piece =
    Partition.subset p (color_for ~grid ~pieces p piece)
  in
  let data name = (Operand.find bindings name).Operand.data in
  let intra = Machine.nodes machine = 1 in
  List.iter
    (function
      | Loop_ir.Distributed_for { shard_parts; comms; out_comm; leaf; _ } ->
          incr launch_ix;
          let launch = !launch_ix in
          (* Nodes whose first attempt crashes during this launch: every
             piece they host pays crash recovery, and each must have a
             surviving slot to be remapped onto. *)
          let crashed =
            match fcfg with
            | None -> []
            | Some cfg -> Fault.crashed_nodes cfg ~machine ~launch
          in
          let kernel = leaf.Loop_ir.leaf_stmt.Tin.lhs.Tin.tensor in
          (* Leaf execution for one piece.  Runs on a worker domain when the
             launch's output writes are disjoint across pieces; launches that
             reduce into overlapping locations ([out_reduce]) run on the
             reducing domain instead, in piece order. *)
          let exec_leaf c =
            let shard_vals tname =
              match List.assoc_opt tname shard_parts with
              | Some pname -> subset_for (part pname) c
              | None ->
                  Error.fail ~kernel ~piece:c Error.Leaf "no shard for %s"
                    tname
            in
            let rows =
              Option.map
                (fun pname -> subset_for (part pname) c)
                leaf.Loop_ir.leaf_row_part
            in
            let col_range =
              if leaf.Loop_ir.col_split > 1 then begin
                let py = grid.(1) in
                let cy = c mod py in
                (* Column extent from the output's last dimension. *)
                let out_acc = leaf.Loop_ir.leaf_stmt.Tin.lhs in
                let od = data out_acc.Tin.tensor in
                let e = Operand.dim od (Operand.order od - 1) in
                Some ((cy * e / py, ((cy + 1) * e / py) - 1))
              end
              else None
            in
            Leaf.execute ~bindings ~leaf ~shard_vals ~rows ~col_range ()
          in
          (* Materialize the driver's coordinate expansion on this domain so
             worker domains only read the memoized entry. *)
          (match leaf.Loop_ir.driver with
          | Loop_ir.Sparse_driver d ->
              Leaf.prewarm (Operand.find_sparse bindings d)
          | Loop_ir.Merge_driver _ -> ());
          (* --- simulate pieces (parallel when a pool is configured) --- *)
          let simulate c =
            let comm_time = ref 0. in
            let footprint = ref 0. in
            let msgs = ref [] in
            List.iter
              (fun (cm : Loop_ir.comm) ->
                let d = data cm.Loop_ir.comm_tensor in
                let elt =
                  Operand.slice_bytes d (max cm.Loop_ir.comm_dim 0)
                  /. float_of_int cm.Loop_ir.divide_by
                in
                let full_count =
                  match (d, cm.Loop_ir.comm_dim) with
                  | Operand.Sparse t, -1 -> Tensor.nnz t
                  | _, dim -> Operand.dim d (max dim 0)
                in
                match cm.Loop_ir.comm_part with
                | None -> (
                    (* Whole operand needed: a broadcast, unless already
                       replicated by the data distribution. *)
                    let bytes = float_of_int full_count *. elt in
                    footprint := !footprint +. bytes;
                    match
                      Placement.resident_set placement
                        ~tensor:cm.Loop_ir.comm_tensor
                        ~comm_dim:cm.Loop_ir.comm_dim
                        ~piece_subset:(fun p -> subset_for p c)
                    with
                    | `All -> ()
                    | `Set _ | `Nothing ->
                        comm_time :=
                          !comm_time +. Machine.bcast_time machine ~bytes;
                        msgs := bytes :: !msgs)
                | Some pname ->
                    let needed = subset_for (part pname) c in
                    let needed_bytes =
                      float_of_int (Iset.cardinal needed) *. elt
                    in
                    footprint := !footprint +. needed_bytes;
                    let missing =
                      match
                        Placement.resident_set placement
                          ~tensor:cm.Loop_ir.comm_tensor
                          ~comm_dim:cm.Loop_ir.comm_dim
                          ~piece_subset:(fun p -> subset_for p c)
                      with
                      | `All -> Iset.empty
                      | `Nothing -> needed
                      | `Set r -> Iset.diff needed r
                    in
                    let bytes = float_of_int (Iset.cardinal missing) *. elt in
                    if bytes > 0. then begin
                      comm_time :=
                        !comm_time
                        +. Machine.p2p_time machine ~intra_node:intra ~bytes;
                      msgs := bytes :: !msgs
                    end)
              comms;
            let ps_leaf =
              if leaf.Loop_ir.out_reduce then None else Some (exec_leaf c)
            in
            {
              ps_comm_time = !comm_time;
              ps_footprint = !footprint;
              ps_msg_bytes = List.rev !msgs;
              ps_leaf;
            }
          in
          let sims = Pool.map pool simulate pieces in
          (* --- reduce piece results, in piece order --- *)
          let comm_times = Array.make pieces 0. in
          let leaf_times = Array.make pieces 0. in
          let partials = ref [] in
          let total_bytes = ref 0. and total_msgs = ref 0 in
          Array.iteri
            (fun c ps ->
              List.iter
                (fun bytes ->
                  total_bytes := !total_bytes +. bytes;
                  incr total_msgs)
                ps.ps_msg_bytes;
              let comm_time = ref ps.ps_comm_time in
              (* --- capacity check (OOM / UVM paging) --- *)
              (match memstate with
              | None -> ()
              | Some ms -> (
                  match
                    Memstate.ensure ms ~piece:c
                      ~key:(Printf.sprintf "launch:%d" c)
                      ~bytes:ps.ps_footprint
                  with
                  | Memstate.Hit | Memstate.Miss _ -> ()
                  | Memstate.Paged overflow ->
                      (* Page the overflow in and out once per iteration. *)
                      comm_time :=
                        !comm_time
                        +. (2. *. overflow /. machine.Machine.params.uvm_page_bw)));
              let res =
                match ps.ps_leaf with Some r -> r | None -> exec_leaf c
              in
              (match res.Leaf.partial with
              | Some p -> partials := p :: !partials
              | None -> ());
              Cost.add_flops cost res.Leaf.work.Task.flops;
              let lt = Task.leaf_time machine res.Leaf.work in
              let lt =
                if machine.Machine.kind = Machine.Cpu then
                  if not leaf.Loop_ir.parallel then
                    lt *. float_of_int machine.Machine.params.cpu_cores
                  else lt /. machine.Machine.params.legion_leaf_efficiency
                else lt
              in
              (* --- fault injection & Legion-style recovery ---
                 The leaf above committed exactly once; injected faults are
                 priced as the wasted attempts and re-executions that the
                 real runtime would deterministically replay from region
                 arguments, so only times/traffic change, never tensors.
                 Evaluated here, on the reducing domain in piece order, so
                 the schedule and its costs are identical at every
                 --domains degree. *)
              (match fcfg with
              | None ->
                  comm_times.(c) <- !comm_time;
                  leaf_times.(c) <- lt
              | Some cfg ->
                  (* A piece on a crashed node must have a surviving slot
                     (raises [Error.Recovery] when the whole cluster is
                     gone). *)
                  if List.mem (Machine.node_of_piece machine c) crashed then
                    ignore (Placement.remap_piece ~machine ~crashed c);
                  let r =
                    Fault.recover_piece cfg ~machine ~launch ~piece:c
                      ~msg_bytes:ps.ps_msg_bytes ~footprint:ps.ps_footprint
                      ~comm_time:!comm_time ~leaf_time:lt
                  in
                  Cost.add_recovery cost ~retries:r.Fault.retries
                    ~faults:(Fault.events r) ~bytes:r.Fault.resent_bytes
                    ~messages:r.Fault.resent_msgs
                    (r.Fault.extra_comm +. r.Fault.extra_leaf);
                  comm_times.(c) <- !comm_time +. r.Fault.extra_comm;
                  leaf_times.(c) <- lt +. r.Fault.extra_leaf))
            sims;
          let partials = List.rev !partials in
          Cost.add_comm cost ~bytes:!total_bytes ~messages:!total_msgs 0.;
          Cost.record_launch_split cost ~machine ~comm_times ~leaf_times;
          (* --- output reduction for aliased ownership --- *)
          (match out_comm with
          | None -> ()
          | Some cm ->
              let total, union =
                match cm.Loop_ir.comm_part with
                | Some pname ->
                    let p = part pname in
                    ( Array.fold_left
                        (fun acc s -> acc + Iset.cardinal s)
                        0 p.Partition.subsets,
                      Iset.cardinal (Partition.union_of_colors p) )
                | None ->
                    (* Every piece holds a full partial output (distributed
                       reduction loop): overlap = (pieces-1) copies. *)
                    let n =
                      Operand.dim (data cm.Loop_ir.comm_tensor)
                        (max cm.Loop_ir.comm_dim 0)
                    in
                    (pieces * n, n)
              in
              let overlap = max 0 (total - union) in
              if overlap > 0 then begin
                let d = data cm.Loop_ir.comm_tensor in
                let elt =
                  Operand.slice_bytes d (max cm.Loop_ir.comm_dim 0)
                  /. float_of_int cm.Loop_ir.divide_by
                in
                let bytes =
                  float_of_int overlap *. elt /. float_of_int pieces
                in
                Cost.add_comm cost
                  ~bytes:(float_of_int overlap *. elt)
                  ~messages:pieces
                  (Machine.reduce_time machine ~bytes)
              end);
          (* --- stitch unknown-pattern outputs --- *)
          if partials <> [] then begin
            let out_acc = leaf.Loop_ir.leaf_stmt.Tin.lhs in
            let first_in =
              match leaf.Loop_ir.driver with
              | Loop_ir.Merge_driver (t :: _) -> t
              | _ -> Error.fail ~kernel Error.Reduce "partials from a non-merge leaf"
            in
            let src = Operand.find_sparse bindings first_in in
            stitch_merge ~bindings ~out_name:out_acc.Tin.tensor
              ~nrows:src.Tensor.dims.(0) ~ncols:src.Tensor.dims.(1) partials
          end
      | _ -> assert false)
    loops
