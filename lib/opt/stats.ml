(* Per-index sparsity statistics, derived from the actual level structures
   the operands are bound to (not from metadata the user asserts).  This is
   the Galley half of the auto-scheduler: cardinality, distinct-coordinate
   and fill estimates per tensor dimension feed the candidate pricer's leaf
   work model, complementing the dependent-partitioning work already tallied
   by [Part_eval.stats]. *)

open Spdistal_exec
open Spdistal_formats

type t = {
  ts_name : string;
  ts_sparse : bool;
  ts_dims : int array;
  ts_nnz : int;  (* stored values; dense operands count every element *)
  ts_distinct : int array;  (* distinct stored coordinates per dimension *)
  ts_fill : float array;  (* distinct / extent, in [0, 1] *)
  ts_bytes : float;  (* payload footprint *)
}

let of_operand name (d : Operand.data) =
  match d with
  | Operand.Sparse t ->
      let dims = t.Tensor.dims in
      let nd = Array.length dims in
      let seen = Array.map (fun n -> Array.make (max n 1) false) dims in
      let distinct = Array.make nd 0 in
      Tensor.iter_nnz t (fun coords _ _ ->
          for k = 0 to nd - 1 do
            let c = coords.(k) in
            if not seen.(k).(c) then begin
              seen.(k).(c) <- true;
              distinct.(k) <- distinct.(k) + 1
            end
          done);
      {
        ts_name = name;
        ts_sparse = true;
        ts_dims = Array.copy dims;
        ts_nnz = Tensor.nnz t;
        ts_distinct = distinct;
        ts_fill =
          Array.mapi
            (fun k n -> float_of_int distinct.(k) /. float_of_int (max n 1))
            dims;
        ts_bytes = Operand.bytes d;
      }
  | Operand.Vec _ | Operand.Mat _ ->
      let nd = Operand.order d in
      let dims = Array.init nd (Operand.dim d) in
      {
        ts_name = name;
        ts_sparse = false;
        ts_dims = dims;
        ts_nnz = Array.fold_left ( * ) 1 dims;
        ts_distinct = Array.copy dims;
        ts_fill = Array.map (fun _ -> 1.) dims;
        ts_bytes = Operand.bytes d;
      }

let of_bindings (b : Operand.bindings) =
  List.map (fun (name, (slot : Operand.slot)) -> of_operand name slot.Operand.data) b

let find stats name =
  match List.find_opt (fun s -> s.ts_name = name) stats with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Stats.find: no statistics for %s" name)

let density s =
  let cells = Array.fold_left ( * ) 1 s.ts_dims in
  float_of_int s.ts_nnz /. float_of_int (max cells 1)

let avg_slice_nnz s =
  float_of_int s.ts_nnz /. float_of_int (max s.ts_distinct.(0) 1)

(* Distinct leading coordinates a shard of [nnz_shard] stored values is
   expected to touch, under the proportionality model (shards are
   position-space or row-block contiguous, both of which sample rows roughly
   in proportion to their non-zero mass).  Clamped into [1, min distinct
   nnz_shard] so degenerate shards stay sane. *)
let rows_estimate s ~nnz_shard =
  if nnz_shard <= 0 then 0
  else
    let d0 = max s.ts_distinct.(0) 1 in
    let est =
      int_of_float
        (Float.ceil
           (float_of_int nnz_shard *. float_of_int d0
           /. float_of_int (max s.ts_nnz 1)))
    in
    max 1 (min (min d0 nnz_shard) est)

let pp fmt s =
  Format.fprintf fmt "%s: nnz=%d dims=[%s] distinct=[%s] fill=[%s]" s.ts_name
    s.ts_nnz
    (String.concat ";" (Array.to_list (Array.map string_of_int s.ts_dims)))
    (String.concat ";" (Array.to_list (Array.map string_of_int s.ts_distinct)))
    (String.concat ";"
       (Array.to_list (Array.map (Printf.sprintf "%.3f") s.ts_fill)))
