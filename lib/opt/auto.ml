(* The auto-scheduler front door: enumerate candidates (plus the problem's
   own hand schedule), price them all, pick the cheapest, and optionally
   remember the winner in the execution cache keyed by the sparsity-pattern
   digest — so a serving front-end prices each (machine, TIN, pattern) once
   and replans every later arrival for free. *)

open Spdistal_exec
module Spdistal = Core.Spdistal
module Metrics = Spdistal_obs.Metrics
module Log = Spdistal_obs.Log

type verdict = {
  v_label : string;
  v_candidate : Search.candidate;
  v_priced : (Price.priced, string) result;
}

type report = {
  rp_verdicts : verdict list;  (* generated candidates + hand, search order *)
  rp_naive : (Price.priced, string) result;
  rp_winner : (Search.candidate * Price.priced) option;
}

type choice = {
  ch_problem : Spdistal.problem;  (* the problem, re-planned *)
  ch_label : string;
  ch_total : float;
  ch_cached : bool;  (* the winner came from the cache, unpriced *)
}

let hand_candidate (p : Spdistal.problem) =
  {
    Search.c_label = "hand";
    c_schedule = p.Spdistal.schedule;
    c_tdns = List.map (fun (n, _, tdn) -> (n, tdn)) p.Spdistal.operands;
  }

(* Price the generated candidates and the hand schedule.  Generated
   candidates come first so a generated point that ties the hand price wins
   the tie — the differential suite exercises the interesting path. *)
let evaluate p =
  let cands = Search.candidates p @ [ hand_candidate p ] in
  List.map
    (fun c ->
      {
        v_label = c.Search.c_label;
        v_candidate = c;
        v_priced = Price.price (Search.apply p c);
      })
    cands

let best verdicts =
  List.fold_left
    (fun acc v ->
      match (acc, v.v_priced) with
      | None, Ok pr -> Some (v.v_candidate, pr)
      | Some (_, b), Ok pr when pr.Price.pr_total < b.Price.pr_total ->
          Some (v.v_candidate, pr)
      | _ -> acc)
    None verdicts

let report p =
  let verdicts = evaluate p in
  {
    rp_verdicts = verdicts;
    rp_naive = Price.price (Search.apply p (Search.naive p));
    rp_winner = best verdicts;
  }

(* Ambient search metrics: decision counts and candidates priced are pure
   facts of the problem stream (deterministic); the search wall time is a
   host-clock fact and therefore wall-flagged out of the deterministic
   snapshot.  The decision itself is also logged. *)
let note_decision ~label ~total ~cached ~candidates ~seconds =
  let m = Metrics.default () in
  if Metrics.enabled m then begin
    Metrics.inc m ~help:"auto-scheduler decisions" "spdistal_auto_searches_total";
    if cached then
      Metrics.inc m ~help:"decisions served from the winner cache"
        "spdistal_auto_winner_cache_hits_total"
    else begin
      Metrics.inc m
        ~by:(float_of_int candidates)
        ~help:"schedule candidates priced by the auto-scheduler"
        "spdistal_auto_candidates_priced_total";
      Metrics.inc m ~by:seconds ~wall:true "spdistal_auto_search_seconds_total"
    end
  end;
  let lg = Log.default () in
  if Log.enabled lg then
    Log.event lg
      ~fields:
        [
          ("winner", Spdistal_obs.Trace.S label);
          ("total_s", Spdistal_obs.Trace.F total);
          ("cached", Spdistal_obs.Trace.B cached);
          ("candidates", Spdistal_obs.Trace.I candidates);
        ]
      "auto_search_decided"

let choose ?cache (p : Spdistal.problem) =
  let key () =
    Cache.winner_digest ~machine:p.Spdistal.machine
      ~operands:p.Spdistal.operands ~stmt:p.Spdistal.stmt
  in
  let cached =
    match cache with
    | None -> None
    | Some c -> Cache.find_winner c (key ())
  in
  match cached with
  | Some w ->
      note_decision ~label:w.Cache.w_label ~total:w.Cache.w_total ~cached:true
        ~candidates:0 ~seconds:0.;
      Some
        {
          ch_problem =
            Spdistal.with_schedule p ~schedule:w.Cache.w_schedule
              ~tdns:w.Cache.w_tdns;
          ch_label = w.Cache.w_label;
          ch_total = w.Cache.w_total;
          ch_cached = true;
        }
  | None -> (
      let t0 = Sys.time () in
      let verdicts = evaluate p in
      let seconds = Sys.time () -. t0 in
      match best verdicts with
      | None -> None
      | Some (c, pr) ->
          (match cache with
          | None -> ()
          | Some cch ->
              Cache.remember_winner cch (key ())
                {
                  Cache.w_label = c.Search.c_label;
                  w_schedule = c.Search.c_schedule;
                  w_tdns = c.Search.c_tdns;
                  w_total = pr.Price.pr_total;
                });
          note_decision ~label:c.Search.c_label ~total:pr.Price.pr_total
            ~cached:false ~candidates:(List.length verdicts) ~seconds;
          Some
            {
              ch_problem = Search.apply p c;
              ch_label = c.Search.c_label;
              ch_total = pr.Price.pr_total;
              ch_cached = false;
            })

let schedule ?cache p =
  match choose ?cache p with Some c -> c.ch_problem | None -> p
