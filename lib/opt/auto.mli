(** The auto-scheduler: statistics-driven schedule/TDN search.

    [choose] prices every {!Search} candidate plus the problem's own hand
    schedule with {!Price} and picks the cheapest, so the result never
    prices worse than the schedule the caller wrote.  With a [cache], the
    winner is remembered under {!Spdistal_exec.Cache.winner_digest} (machine
    + TIN + sparsity pattern, schedule- and TDN-free) and replayed without
    pricing on later calls. *)

open Spdistal_exec

type verdict = {
  v_label : string;
  v_candidate : Search.candidate;
  v_priced : (Price.priced, string) result;  (** [Error] = infeasible *)
}

type report = {
  rp_verdicts : verdict list;
      (** generated candidates then the hand schedule, in search order *)
  rp_naive : (Price.priced, string) result;
  rp_winner : (Search.candidate * Price.priced) option;
}

type choice = {
  ch_problem : Core.Spdistal.problem;  (** the problem, re-planned *)
  ch_label : string;
  ch_total : float;  (** priced cost of the winner, simulated seconds *)
  ch_cached : bool;  (** replayed from the winner cache without pricing *)
}

(** Full pricing table (no cache interaction) — the view [spdistal auto]
    and the tournament print. *)
val report : Core.Spdistal.problem -> report

(** Pick (and, given [cache], remember or replay) the cheapest feasible
    candidate.  [None] when nothing prices — the caller keeps its hand
    schedule. *)
val choose : ?cache:Cache.t -> Core.Spdistal.problem -> choice option

(** [choose] with the identity fallback: the re-planned problem, or [p]
    unchanged when no candidate is feasible. *)
val schedule : ?cache:Cache.t -> Core.Spdistal.problem -> Core.Spdistal.problem
